#include "graph/connectivity.h"

#include <queue>

namespace dpsp {

std::vector<std::vector<VertexId>> ConnectedComponents::Members() const {
  std::vector<std::vector<VertexId>> members(
      static_cast<size_t>(num_components));
  for (VertexId v = 0; v < static_cast<VertexId>(component.size()); ++v) {
    members[static_cast<size_t>(component[static_cast<size_t>(v)])].push_back(
        v);
  }
  return members;
}

namespace {

// BFS over the undirected view: for directed graphs we need reverse
// adjacency too, so build a symmetric neighbor list once.
std::vector<std::vector<VertexId>> UndirectedNeighbors(const Graph& graph) {
  std::vector<std::vector<VertexId>> nbrs(
      static_cast<size_t>(graph.num_vertices()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeEndpoints& ep = graph.edge(e);
    nbrs[static_cast<size_t>(ep.u)].push_back(ep.v);
    nbrs[static_cast<size_t>(ep.v)].push_back(ep.u);
  }
  return nbrs;
}

}  // namespace

ConnectedComponents FindConnectedComponents(const Graph& graph) {
  ConnectedComponents out;
  out.component.assign(static_cast<size_t>(graph.num_vertices()), -1);
  std::vector<std::vector<VertexId>> nbrs = UndirectedNeighbors(graph);

  for (VertexId start = 0; start < graph.num_vertices(); ++start) {
    if (out.component[static_cast<size_t>(start)] != -1) continue;
    int id = out.num_components++;
    std::queue<VertexId> queue;
    queue.push(start);
    out.component[static_cast<size_t>(start)] = id;
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop();
      for (VertexId v : nbrs[static_cast<size_t>(u)]) {
        if (out.component[static_cast<size_t>(v)] == -1) {
          out.component[static_cast<size_t>(v)] = id;
          queue.push(v);
        }
      }
    }
  }
  return out;
}

bool IsConnected(const Graph& graph) {
  if (graph.num_vertices() <= 1) return true;
  return FindConnectedComponents(graph).num_components == 1;
}

Result<std::vector<int>> TwoColor(const Graph& graph) {
  std::vector<int> color(static_cast<size_t>(graph.num_vertices()), -1);
  std::vector<std::vector<VertexId>> nbrs = UndirectedNeighbors(graph);
  for (VertexId start = 0; start < graph.num_vertices(); ++start) {
    if (color[static_cast<size_t>(start)] != -1) continue;
    color[static_cast<size_t>(start)] = 0;
    std::queue<VertexId> queue;
    queue.push(start);
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop();
      for (VertexId v : nbrs[static_cast<size_t>(u)]) {
        if (color[static_cast<size_t>(v)] == -1) {
          color[static_cast<size_t>(v)] = 1 - color[static_cast<size_t>(u)];
          queue.push(v);
        } else if (color[static_cast<size_t>(v)] ==
                   color[static_cast<size_t>(u)]) {
          return Status::FailedPrecondition("graph contains an odd cycle");
        }
      }
    }
  }
  return color;
}

bool IsBipartite(const Graph& graph) { return TwoColor(graph).ok(); }

}  // namespace dpsp
