// Graph and weight generators for tests, examples and experiment harnesses.
//
// Includes: elementary families (paths, cycles, grids, stars, complete and
// complete-bipartite graphs), tree families (balanced, uniform random via
// Pruefer, random recursive, caterpillars), random graphs (connected
// Erdos-Renyi, random geometric), a synthetic road-network generator with
// congestion-correlated weights (the paper's motivating workload, see
// DESIGN.md §1.3), and the three lower-bound gadget graphs:
//   Figure 2     — parallel-edge path gadget (shortest-path lower bound),
//   Figure 3 (L) — parallel-edge star gadget (MST lower bound),
//   Figure 3 (R) — hourglass gadget union (matching lower bound).

#ifndef DPSP_GRAPH_GENERATORS_H_
#define DPSP_GRAPH_GENERATORS_H_

#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

// ---------------------------------------------------------------------------
// Elementary topologies.
// ---------------------------------------------------------------------------

/// Path 0 - 1 - ... - n-1. Requires n >= 1.
Result<Graph> MakePathGraph(int n);

/// Cycle on n >= 3 vertices.
Result<Graph> MakeCycleGraph(int n);

/// rows x cols grid, row-major vertex ids, 4-neighbor edges.
Result<Graph> MakeGridGraph(int rows, int cols);

/// Complete graph K_n.
Result<Graph> MakeCompleteGraph(int n);

/// Star with center 0 and n-1 leaves.
Result<Graph> MakeStarGraph(int n);

/// Complete bipartite K_{left,right}; left vertices are 0..left-1.
Result<Graph> MakeCompleteBipartiteGraph(int left, int right);

// ---------------------------------------------------------------------------
// Tree families.
// ---------------------------------------------------------------------------

/// Balanced `branching`-ary tree with n vertices (vertex i's parent is
/// (i-1)/branching). Requires n >= 1, branching >= 1.
Result<Graph> MakeBalancedTree(int n, int branching);

/// Uniformly random labelled tree on n >= 1 vertices (Pruefer decode).
Result<Graph> MakeRandomTree(int n, Rng* rng);

/// Random recursive tree: vertex i attaches to a uniform vertex < i.
Result<Graph> MakeRandomRecursiveTree(int n, Rng* rng);

/// Caterpillar: spine path of `spine` vertices, each with `legs` leaves.
Result<Graph> MakeCaterpillarTree(int spine, int legs);

// ---------------------------------------------------------------------------
// Random graphs.
// ---------------------------------------------------------------------------

/// Connected Erdos-Renyi-style graph: a uniform random spanning tree plus
/// each remaining pair independently with probability p. Simple graph.
Result<Graph> MakeConnectedErdosRenyi(int n, double p, Rng* rng);

/// Random geometric graph in the unit square with the given connection
/// radius; components are stitched together by their closest vertex pairs
/// so the result is connected. Returns the graph and the coordinates.
struct GeometricGraph {
  Graph graph;
  std::vector<std::pair<double, double>> coords;
};
Result<GeometricGraph> MakeRandomGeometricGraph(int n, double radius,
                                                Rng* rng);

// ---------------------------------------------------------------------------
// Synthetic road networks (substitute for real road/traffic data).
// ---------------------------------------------------------------------------

/// Grid street network with a fraction of diagonal shortcut streets;
/// distances are euclidean street lengths.
struct RoadNetwork {
  Graph graph;
  std::vector<std::pair<double, double>> coords;
  /// Free-flow travel time per edge (euclidean length).
  EdgeWeights base_weights;
};
Result<RoadNetwork> MakeSyntheticRoadNetwork(int rows, int cols,
                                             double diagonal_prob, Rng* rng);

/// Traffic-time weights for a road network: base length scaled up around
/// `num_hotspots` random congestion centers (gaussian falloff), plus small
/// multiplicative jitter. Always >= base_weights.
EdgeWeights MakeCongestionWeights(const RoadNetwork& network, int num_hotspots,
                                  double peak_factor, Rng* rng);

// ---------------------------------------------------------------------------
// Weight generators.
// ---------------------------------------------------------------------------

/// All edges weight `value`.
EdgeWeights MakeConstantWeights(const Graph& graph, double value);

/// i.i.d. Uniform[lo, hi) weights.
EdgeWeights MakeUniformWeights(const Graph& graph, double lo, double hi,
                               Rng* rng);

// ---------------------------------------------------------------------------
// Lower-bound gadgets.
// ---------------------------------------------------------------------------

/// A gadget graph whose weight assignments encode bit strings x in {0,1}^n.
/// `EdgeFor(i, b)` is the edge whose weight is set to 0 when the i-th bit
/// equals b (and 1 otherwise).
struct BitGadgetGraph {
  Graph graph;
  int n = 0;

  /// The edge carrying value b for bit i (i in [0, n)).
  EdgeId EdgeFor(int i, int b) const { return 2 * i + b; }

  /// w_x from the reduction: w(e_i^{x_i}) = 0, w(e_i^{1-x_i}) = 1.
  EdgeWeights EncodeBits(const std::vector<int>& bits) const;
};

/// Figure 2: vertices 0..n, two parallel edges between i and i+1.
/// Shortest-path lower bound gadget (s = 0, t = n).
Result<BitGadgetGraph> MakeShortestPathGadget(int n);

/// Figure 3 (left): center 0, two parallel edges to each of 1..n.
/// MST lower bound gadget.
Result<BitGadgetGraph> MakeMstGadget(int n);

/// Figure 3 (right): n disjoint hourglass gadgets; gadget c has vertices
/// (b1, b2) with id 4c + 2 b1 + b2 and the four edges (0,b)-(1,b').
/// Matching lower bound gadget.
struct HourglassGadgetGraph {
  Graph graph;
  int n = 0;

  /// Vertex (b1, b2, c) of the paper's construction.
  VertexId VertexFor(int b1, int b2, int c) const {
    return 4 * c + 2 * b1 + b2;
  }
  /// Edge from (0, b_left, c) to (1, b_right, c).
  EdgeId EdgeFor(int c, int b_left, int b_right) const {
    return 4 * c + 2 * b_left + b_right;
  }
  /// w_x: edge (0,1,c)-(1, 1-x_c, c) has weight 1, all others weight 0.
  EdgeWeights EncodeBits(const std::vector<int>& bits) const;
};
Result<HourglassGadgetGraph> MakeMatchingGadget(int n);

}  // namespace dpsp

#endif  // DPSP_GRAPH_GENERATORS_H_
