#include "graph/shortest_path.h"

#include <algorithm>
#include <queue>

#include "common/table.h"

namespace dpsp {

namespace {

ShortestPathTree MakeEmptyTree(const Graph& graph, VertexId source) {
  ShortestPathTree tree;
  tree.source = source;
  tree.distance.assign(static_cast<size_t>(graph.num_vertices()),
                       kInfiniteDistance);
  tree.parent_edge.assign(static_cast<size_t>(graph.num_vertices()), -1);
  tree.parent_vertex.assign(static_cast<size_t>(graph.num_vertices()), -1);
  tree.distance[static_cast<size_t>(source)] = 0.0;
  return tree;
}

Status ValidateSource(const Graph& graph, VertexId source) {
  if (!graph.HasVertex(source)) {
    return Status::InvalidArgument(
        StrFormat("source vertex %d out of range [0, %d)", source,
                  graph.num_vertices()));
  }
  return Status::Ok();
}

struct HeapGreater {
  bool operator()(const std::pair<double, VertexId>& a,
                  const std::pair<double, VertexId>& b) const {
    return a > b;
  }
};

}  // namespace

void DijkstraKernel(const Graph& graph, const EdgeWeights& w, VertexId source,
                    ShortestPathTree& tree, DijkstraWorkspace& ws) {
  tree.source = source;
  size_t n = static_cast<size_t>(graph.num_vertices());
  tree.distance.assign(n, kInfiniteDistance);
  tree.parent_edge.assign(n, -1);
  tree.parent_vertex.assign(n, -1);
  tree.distance[static_cast<size_t>(source)] = 0.0;

  // Hot loop over the raw CSR arrays: the offset/head/edge triplet streams
  // contiguously per vertex instead of chasing a per-vertex allocation.
  const uint32_t* off = graph.AdjacencyOffsets().data();
  const VertexId* head = graph.AdjacencyHeads().data();
  const EdgeId* eid = graph.AdjacencyEdges().data();
  const double* weight = w.data();
  double* dist_out = tree.distance.data();

  auto& heap = ws.heap;
  heap.clear();
  heap.emplace_back(0.0, source);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), HeapGreater{});
    auto [dist, u] = heap.back();
    heap.pop_back();
    if (dist > dist_out[static_cast<size_t>(u)]) continue;  // stale
    uint32_t begin = off[static_cast<size_t>(u)];
    uint32_t end = off[static_cast<size_t>(u) + 1];
    for (uint32_t i = begin; i < end; ++i) {
      VertexId to = head[i];
      EdgeId e = eid[i];
      double candidate = dist + weight[static_cast<size_t>(e)];
      if (candidate < dist_out[static_cast<size_t>(to)]) {
        dist_out[static_cast<size_t>(to)] = candidate;
        tree.parent_edge[static_cast<size_t>(to)] = e;
        tree.parent_vertex[static_cast<size_t>(to)] = u;
        heap.emplace_back(candidate, to);
        std::push_heap(heap.begin(), heap.end(), HeapGreater{});
      }
    }
  }
}

Result<ShortestPathTree> Dijkstra(const Graph& graph, const EdgeWeights& w,
                                  VertexId source) {
  DPSP_RETURN_IF_ERROR(ValidateSource(graph, source));
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));

  ShortestPathTree tree;
  DijkstraWorkspace ws;
  DijkstraKernel(graph, w, source, tree, ws);
  return tree;
}

Result<ShortestPathTree> BellmanFord(const Graph& graph, const EdgeWeights& w,
                                     VertexId source) {
  DPSP_RETURN_IF_ERROR(ValidateSource(graph, source));
  DPSP_RETURN_IF_ERROR(graph.ValidateWeights(w));

  ShortestPathTree tree = MakeEmptyTree(graph, source);
  int n = graph.num_vertices();

  auto relax_all = [&]() {
    bool changed = false;
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const EdgeEndpoints& ep = graph.edge(e);
      double we = w[static_cast<size_t>(e)];
      auto relax = [&](VertexId from, VertexId to) {
        double base = tree.distance[static_cast<size_t>(from)];
        if (base == kInfiniteDistance) return;
        double candidate = base + we;
        if (candidate < tree.distance[static_cast<size_t>(to)]) {
          tree.distance[static_cast<size_t>(to)] = candidate;
          tree.parent_edge[static_cast<size_t>(to)] = e;
          tree.parent_vertex[static_cast<size_t>(to)] = from;
          changed = true;
        }
      };
      relax(ep.u, ep.v);
      if (!graph.directed()) relax(ep.v, ep.u);
    }
    return changed;
  };

  bool changed = true;
  for (int round = 0; round < n - 1 && changed; ++round) changed = relax_all();
  if (changed && relax_all()) {
    return Status::FailedPrecondition(
        "negative cycle reachable from the source");
  }
  return tree;
}

Result<std::vector<int>> HopDistances(const Graph& graph, VertexId source) {
  DPSP_RETURN_IF_ERROR(ValidateSource(graph, source));
  std::vector<int> hops(static_cast<size_t>(graph.num_vertices()),
                        kUnreachableHops);
  hops[static_cast<size_t>(source)] = 0;
  std::queue<VertexId> queue;
  queue.push(source);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop();
    for (const AdjacencyEntry& adj : graph.Neighbors(u)) {
      if (hops[static_cast<size_t>(adj.to)] == kUnreachableHops) {
        hops[static_cast<size_t>(adj.to)] = hops[static_cast<size_t>(u)] + 1;
        queue.push(adj.to);
      }
    }
  }
  return hops;
}

Result<std::vector<EdgeId>> ExtractPathEdges(const Graph& graph,
                                             const ShortestPathTree& tree,
                                             VertexId target) {
  if (!graph.HasVertex(target)) {
    return Status::InvalidArgument("target vertex out of range");
  }
  if (!tree.Reachable(target)) {
    return Status::NotFound(
        StrFormat("vertex %d unreachable from source %d", target,
                  tree.source));
  }
  std::vector<EdgeId> edges;
  VertexId v = target;
  while (v != tree.source) {
    EdgeId e = tree.parent_edge[static_cast<size_t>(v)];
    DPSP_CHECK_MSG(e >= 0, "broken parent chain in shortest-path tree");
    edges.push_back(e);
    v = tree.parent_vertex[static_cast<size_t>(v)];
  }
  std::reverse(edges.begin(), edges.end());
  return edges;
}

Result<std::vector<VertexId>> ExtractPathVertices(const Graph& graph,
                                                  const ShortestPathTree& tree,
                                                  VertexId target) {
  DPSP_ASSIGN_OR_RETURN(std::vector<EdgeId> edges,
                        ExtractPathEdges(graph, tree, target));
  std::vector<VertexId> vertices;
  vertices.push_back(tree.source);
  VertexId at = tree.source;
  for (EdgeId e : edges) {
    at = graph.OtherEndpoint(e, at);
    vertices.push_back(at);
  }
  (void)target;
  return vertices;
}

Status ValidatePath(const Graph& graph, const std::vector<EdgeId>& edges,
                    VertexId from, VertexId to) {
  if (!graph.HasVertex(from) || !graph.HasVertex(to)) {
    return Status::InvalidArgument("path endpoints out of range");
  }
  VertexId at = from;
  for (size_t i = 0; i < edges.size(); ++i) {
    EdgeId e = edges[i];
    if (e < 0 || e >= graph.num_edges()) {
      return Status::InvalidArgument(StrFormat("edge id %d out of range", e));
    }
    const EdgeEndpoints& ep = graph.edge(e);
    if (graph.directed()) {
      if (ep.u != at) {
        return Status::InvalidArgument(
            StrFormat("edge %zu does not continue the walk at vertex %d", i,
                      at));
      }
      at = ep.v;
    } else {
      if (ep.u == at) {
        at = ep.v;
      } else if (ep.v == at) {
        at = ep.u;
      } else {
        return Status::InvalidArgument(
            StrFormat("edge %zu does not continue the walk at vertex %d", i,
                      at));
      }
    }
  }
  if (at != to) {
    return Status::InvalidArgument(
        StrFormat("walk ends at vertex %d, expected %d", at, to));
  }
  return Status::Ok();
}

}  // namespace dpsp
