// Single-source shortest paths: Dijkstra for non-negative weights,
// Bellman-Ford for arbitrary weights, BFS for hop (unweighted) distance.
// These are the exact (non-private) primitives that the paper's mechanisms
// post-process.

#ifndef DPSP_GRAPH_SHORTEST_PATH_H_
#define DPSP_GRAPH_SHORTEST_PATH_H_

#include <limits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

/// Distance value used for unreachable vertices.
inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

/// Hop count used for unreachable vertices.
inline constexpr int kUnreachableHops = -1;

/// Shortest-path tree from a single source: per-vertex distance and the
/// parent edge/vertex on one optimal path (-1 at the source and at
/// unreachable vertices).
struct ShortestPathTree {
  VertexId source = 0;
  std::vector<double> distance;
  std::vector<EdgeId> parent_edge;
  std::vector<VertexId> parent_vertex;

  bool Reachable(VertexId v) const {
    return distance[static_cast<size_t>(v)] < kInfiniteDistance;
  }
};

/// Dijkstra with a binary heap; O((V + E) log V). Requires non-negative
/// weights (validated) and a valid source.
Result<ShortestPathTree> Dijkstra(const Graph& graph, const EdgeWeights& w,
                                  VertexId source);

/// Reusable scratch for repeated Dijkstra runs: the heap buffer survives
/// across calls so a multi-source sweep does not reallocate per source.
struct DijkstraWorkspace {
  std::vector<std::pair<double, VertexId>> heap;
};

/// Unvalidated Dijkstra over the graph's raw CSR arrays, writing into a
/// reusable `tree`. Callers must guarantee a valid source and non-negative
/// weights of the right length — the parallel multi-source build validates
/// once up front and fans sources out over worker threads, each with its
/// own workspace.
void DijkstraKernel(const Graph& graph, const EdgeWeights& w, VertexId source,
                    ShortestPathTree& tree, DijkstraWorkspace& ws);

/// Bellman-Ford; O(V * E). Handles negative weights. Fails with
/// FailedPrecondition on a negative cycle reachable from the source.
Result<ShortestPathTree> BellmanFord(const Graph& graph, const EdgeWeights& w,
                                     VertexId source);

/// Hop distances (number of edges on a fewest-edge path) from `source` via
/// BFS; kUnreachableHops where unreachable.
Result<std::vector<int>> HopDistances(const Graph& graph, VertexId source);

/// Edge ids of the tree path from the SPT source to `target`, in order from
/// source to target. Fails if `target` is unreachable.
Result<std::vector<EdgeId>> ExtractPathEdges(const Graph& graph,
                                             const ShortestPathTree& tree,
                                             VertexId target);

/// Vertex sequence of the tree path from the SPT source to `target`
/// (inclusive of both endpoints). Fails if unreachable.
Result<std::vector<VertexId>> ExtractPathVertices(const Graph& graph,
                                                  const ShortestPathTree& tree,
                                                  VertexId target);

/// Checks that `edges` forms a contiguous walk from `from` to `to` in the
/// graph. Used to validate released paths.
Status ValidatePath(const Graph& graph, const std::vector<EdgeId>& edges,
                    VertexId from, VertexId to);

}  // namespace dpsp

#endif  // DPSP_GRAPH_SHORTEST_PATH_H_
