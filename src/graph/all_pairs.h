// Exact all-pairs shortest distances: repeated Dijkstra for sparse
// non-negative inputs, Floyd-Warshall for dense or negative inputs. These
// are the ground truth the experiment harnesses compare private releases
// against, and the exact subroutine inside Algorithm 2 (distances among the
// covering set Z).

#ifndef DPSP_GRAPH_ALL_PAIRS_H_
#define DPSP_GRAPH_ALL_PAIRS_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

/// Dense V x V distance matrix. distance(u, v) is kInfiniteDistance when v
/// is unreachable from u.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(int n);

  int size() const { return n_; }
  double at(VertexId u, VertexId v) const {
    return data_[Index(u, v)];
  }
  void set(VertexId u, VertexId v, double d) { data_[Index(u, v)] = d; }

  /// The flat row-major n*n storage — the serialization image the store
  /// layer persists.
  const std::vector<double>& data() const { return data_; }

  /// Rebuilds a matrix from its flat row-major image (the persistence
  /// inverse of data()). Fails unless data holds exactly n*n values.
  static Result<DistanceMatrix> FromData(int n, std::vector<double> data) {
    if (n < 0 ||
        data.size() != static_cast<size_t>(n) * static_cast<size_t>(n)) {
      return Status::InvalidArgument(
          "distance matrix image does not hold n*n values");
    }
    DistanceMatrix matrix(n);
    matrix.data_ = std::move(data);
    return matrix;
  }

 private:
  size_t Index(VertexId u, VertexId v) const {
    return static_cast<size_t>(u) * static_cast<size_t>(n_) +
           static_cast<size_t>(v);
  }
  int n_;
  std::vector<double> data_;
};

/// All-pairs distances by running Dijkstra from every vertex, sources
/// fanned out over worker threads (shared CSR, thread-local heaps).
/// O(V (V + E) log V) work. Requires non-negative weights.
Result<DistanceMatrix> AllPairsDijkstra(const Graph& graph,
                                        const EdgeWeights& w);

/// All-pairs distances by Floyd-Warshall. O(V^3). Handles negative weights;
/// fails on a negative cycle.
Result<DistanceMatrix> FloydWarshall(const Graph& graph, const EdgeWeights& w);

/// Distances from each vertex in `sources` to every vertex, one Dijkstra
/// per source. Row i of the result corresponds to sources[i]. Validates
/// once, then runs one source per task across worker threads over the
/// shared CSR arrays with thread-local heaps — the bounded-weight oracle's
/// Z-center build path. `max_threads` = 0 uses hardware concurrency; 1
/// forces the serial build. Results are identical at any thread count.
Result<std::vector<std::vector<double>>> MultiSourceDistances(
    const Graph& graph, const EdgeWeights& w,
    const std::vector<VertexId>& sources, int max_threads = 0);

}  // namespace dpsp

#endif  // DPSP_GRAPH_ALL_PAIRS_H_
