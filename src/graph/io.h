// Text serialization and visualization for graphs and weight functions.
//
// Format (line-oriented, whitespace separated, '#' comments):
//   dpsp-graph 1            header: format name + version
//   directed 0|1
//   vertices <V>
//   edges <E>
//   <u> <v>                 E lines, one per edge, in edge-id order
//
// Weights are stored separately (they are the private data; a deployment
// will usually persist topology publicly and weights under access
// control):
//   dpsp-weights 1
//   count <E>
//   <w_0> ... newline separated
//
// Also provides Graphviz DOT export with optional weight labels and path /
// tree / matching edge highlighting — used by the examples to visualize
// released objects.

#ifndef DPSP_GRAPH_IO_H_
#define DPSP_GRAPH_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

/// Serializes the topology.
std::string SerializeGraph(const Graph& graph);

/// Parses a topology serialized by SerializeGraph. Fails on malformed
/// input with a line-precise message.
Result<Graph> DeserializeGraph(const std::string& text);

/// Serializes a weight vector.
std::string SerializeWeights(const EdgeWeights& weights);

/// Parses a weight vector serialized by SerializeWeights.
Result<EdgeWeights> DeserializeWeights(const std::string& text);

/// Options for DOT export.
struct DotOptions {
  /// Label edges with their weights (%.3g).
  bool show_weights = true;
  /// Edge ids to render bold/red (a released path, tree or matching).
  std::vector<EdgeId> highlight;
  /// Graph name in the DOT header.
  std::string name = "dpsp";
};

/// Renders the graph in Graphviz DOT format. Weights may be empty (no
/// labels) or must have one entry per edge.
Result<std::string> ToDot(const Graph& graph, const EdgeWeights& weights,
                          const DotOptions& options);

}  // namespace dpsp

#endif  // DPSP_GRAPH_IO_H_
