#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

#include "common/table.h"
#include "graph/connectivity.h"

namespace dpsp {

namespace {

Status RequireAtLeast(int n, int minimum, const char* what) {
  if (n < minimum) {
    return Status::InvalidArgument(
        StrFormat("%s requires >= %d vertices, got %d", what, minimum, n));
  }
  return Status::Ok();
}

}  // namespace

Result<Graph> MakePathGraph(int n) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 1, "path graph"));
  std::vector<EdgeEndpoints> edges;
  edges.reserve(static_cast<size_t>(n - 1));
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return Graph::Create(n, std::move(edges));
}

Result<Graph> MakeCycleGraph(int n) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 3, "cycle graph"));
  std::vector<EdgeEndpoints> edges;
  edges.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n});
  return Graph::Create(n, std::move(edges));
}

Result<Graph> MakeGridGraph(int rows, int cols) {
  if (rows < 1 || cols < 1) {
    return Status::InvalidArgument("grid requires rows, cols >= 1");
  }
  std::vector<EdgeEndpoints> edges;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return Graph::Create(rows * cols, std::move(edges));
}

Result<Graph> MakeCompleteGraph(int n) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 1, "complete graph"));
  std::vector<EdgeEndpoints> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  return Graph::Create(n, std::move(edges));
}

Result<Graph> MakeStarGraph(int n) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 1, "star graph"));
  std::vector<EdgeEndpoints> edges;
  for (int i = 1; i < n; ++i) edges.push_back({0, i});
  return Graph::Create(n, std::move(edges));
}

Result<Graph> MakeCompleteBipartiteGraph(int left, int right) {
  if (left < 1 || right < 1) {
    return Status::InvalidArgument("bipartite sides must be >= 1");
  }
  std::vector<EdgeEndpoints> edges;
  for (int i = 0; i < left; ++i) {
    for (int j = 0; j < right; ++j) edges.push_back({i, left + j});
  }
  return Graph::Create(left + right, std::move(edges));
}

Result<Graph> MakeBalancedTree(int n, int branching) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 1, "balanced tree"));
  if (branching < 1) {
    return Status::InvalidArgument("branching factor must be >= 1");
  }
  std::vector<EdgeEndpoints> edges;
  for (int i = 1; i < n; ++i) edges.push_back({(i - 1) / branching, i});
  return Graph::Create(n, std::move(edges));
}

Result<Graph> MakeRandomTree(int n, Rng* rng) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 1, "random tree"));
  if (n <= 2) {
    std::vector<EdgeEndpoints> edges;
    if (n == 2) edges.push_back({0, 1});
    return Graph::Create(n, std::move(edges));
  }
  // Pruefer decode: uniform over labelled trees.
  std::vector<int> seq(static_cast<size_t>(n - 2));
  for (int& s : seq) s = static_cast<int>(rng->UniformInt(0, n - 1));
  std::vector<int> degree(static_cast<size_t>(n), 1);
  for (int s : seq) ++degree[static_cast<size_t>(s)];
  std::set<int> leaves;
  for (int v = 0; v < n; ++v) {
    if (degree[static_cast<size_t>(v)] == 1) leaves.insert(v);
  }
  std::vector<EdgeEndpoints> edges;
  for (int s : seq) {
    int leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    edges.push_back({leaf, s});
    if (--degree[static_cast<size_t>(s)] == 1) leaves.insert(s);
  }
  int a = *leaves.begin();
  int b = *std::next(leaves.begin());
  edges.push_back({a, b});
  return Graph::Create(n, std::move(edges));
}

Result<Graph> MakeRandomRecursiveTree(int n, Rng* rng) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 1, "random recursive tree"));
  std::vector<EdgeEndpoints> edges;
  for (int i = 1; i < n; ++i) {
    edges.push_back({static_cast<int>(rng->UniformInt(0, i - 1)), i});
  }
  return Graph::Create(n, std::move(edges));
}

Result<Graph> MakeCaterpillarTree(int spine, int legs) {
  if (spine < 1 || legs < 0) {
    return Status::InvalidArgument("caterpillar requires spine>=1, legs>=0");
  }
  int n = spine * (1 + legs);
  std::vector<EdgeEndpoints> edges;
  for (int i = 0; i + 1 < spine; ++i) edges.push_back({i, i + 1});
  int next = spine;
  for (int i = 0; i < spine; ++i) {
    for (int l = 0; l < legs; ++l) edges.push_back({i, next++});
  }
  return Graph::Create(n, std::move(edges));
}

Result<Graph> MakeConnectedErdosRenyi(int n, double p, Rng* rng) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 1, "Erdos-Renyi graph"));
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("edge probability must be in [0,1]");
  }
  // Uniform random spanning tree over K_n (Pruefer), plus extra edges.
  DPSP_ASSIGN_OR_RETURN(Graph tree, MakeRandomTree(n, rng));
  std::set<std::pair<int, int>> present;
  std::vector<EdgeEndpoints> edges;
  for (EdgeId e = 0; e < tree.num_edges(); ++e) {
    EdgeEndpoints ep = tree.edge(e);
    int a = std::min(ep.u, ep.v);
    int b = std::max(ep.u, ep.v);
    present.insert({a, b});
    edges.push_back({a, b});
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (present.count({i, j})) continue;
      if (rng->Bernoulli(p)) edges.push_back({i, j});
    }
  }
  return Graph::Create(n, std::move(edges));
}

Result<GeometricGraph> MakeRandomGeometricGraph(int n, double radius,
                                                Rng* rng) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 1, "geometric graph"));
  if (radius <= 0.0) {
    return Status::InvalidArgument("radius must be positive");
  }
  std::vector<std::pair<double, double>> coords(static_cast<size_t>(n));
  for (auto& c : coords) c = {rng->Uniform(), rng->Uniform()};
  auto dist2 = [&](int a, int b) {
    double dx = coords[static_cast<size_t>(a)].first -
                coords[static_cast<size_t>(b)].first;
    double dy = coords[static_cast<size_t>(a)].second -
                coords[static_cast<size_t>(b)].second;
    return dx * dx + dy * dy;
  };
  std::vector<EdgeEndpoints> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (dist2(i, j) <= radius * radius) edges.push_back({i, j});
    }
  }
  DPSP_ASSIGN_OR_RETURN(Graph graph, Graph::Create(n, edges));
  // Stitch components by closest cross-component vertex pairs.
  ConnectedComponents cc = FindConnectedComponents(graph);
  while (cc.num_components > 1) {
    double best = std::numeric_limits<double>::infinity();
    int bi = -1, bj = -1;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (cc.component[static_cast<size_t>(i)] ==
            cc.component[static_cast<size_t>(j)]) {
          continue;
        }
        double d = dist2(i, j);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    edges.push_back({bi, bj});
    DPSP_ASSIGN_OR_RETURN(graph, Graph::Create(n, edges));
    cc = FindConnectedComponents(graph);
  }
  return GeometricGraph{std::move(graph), std::move(coords)};
}

Result<RoadNetwork> MakeSyntheticRoadNetwork(int rows, int cols,
                                             double diagonal_prob, Rng* rng) {
  if (rows < 2 || cols < 2) {
    return Status::InvalidArgument("road network requires rows, cols >= 2");
  }
  if (diagonal_prob < 0.0 || diagonal_prob > 1.0) {
    return Status::InvalidArgument("diagonal_prob must be in [0,1]");
  }
  auto id = [cols](int r, int c) { return r * cols + c; };
  int n = rows * cols;
  std::vector<std::pair<double, double>> coords(static_cast<size_t>(n));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Slightly jittered street intersections.
      coords[static_cast<size_t>(id(r, c))] = {
          static_cast<double>(c) + rng->Uniform(-0.2, 0.2),
          static_cast<double>(r) + rng->Uniform(-0.2, 0.2)};
    }
  }
  std::vector<EdgeEndpoints> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
      if (r + 1 < rows && c + 1 < cols && rng->Bernoulli(diagonal_prob)) {
        edges.push_back({id(r, c), id(r + 1, c + 1)});
      }
    }
  }
  RoadNetwork network{Graph::Create(n, edges).value(), std::move(coords), {}};
  network.base_weights.resize(edges.size());
  for (EdgeId e = 0; e < network.graph.num_edges(); ++e) {
    const EdgeEndpoints& ep = network.graph.edge(e);
    double dx = network.coords[static_cast<size_t>(ep.u)].first -
                network.coords[static_cast<size_t>(ep.v)].first;
    double dy = network.coords[static_cast<size_t>(ep.u)].second -
                network.coords[static_cast<size_t>(ep.v)].second;
    network.base_weights[static_cast<size_t>(e)] = std::sqrt(dx * dx + dy * dy);
  }
  return network;
}

EdgeWeights MakeCongestionWeights(const RoadNetwork& network, int num_hotspots,
                                  double peak_factor, Rng* rng) {
  DPSP_CHECK_MSG(num_hotspots >= 0, "num_hotspots must be non-negative");
  DPSP_CHECK_MSG(peak_factor >= 0.0, "peak_factor must be non-negative");
  std::vector<std::pair<double, double>> hotspots(
      static_cast<size_t>(num_hotspots));
  double max_x = 0.0, max_y = 0.0;
  for (const auto& c : network.coords) {
    max_x = std::max(max_x, c.first);
    max_y = std::max(max_y, c.second);
  }
  for (auto& h : hotspots) {
    h = {rng->Uniform(0.0, max_x), rng->Uniform(0.0, max_y)};
  }
  double sigma = std::max(max_x, max_y) / 6.0 + 1e-9;

  EdgeWeights weights = network.base_weights;
  for (EdgeId e = 0; e < network.graph.num_edges(); ++e) {
    const EdgeEndpoints& ep = network.graph.edge(e);
    double mx = (network.coords[static_cast<size_t>(ep.u)].first +
                 network.coords[static_cast<size_t>(ep.v)].first) /
                2.0;
    double my = (network.coords[static_cast<size_t>(ep.u)].second +
                 network.coords[static_cast<size_t>(ep.v)].second) /
                2.0;
    double congestion = 0.0;
    for (const auto& h : hotspots) {
      double dx = mx - h.first;
      double dy = my - h.second;
      congestion +=
          peak_factor * std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
    }
    double jitter = rng->Uniform(1.0, 1.1);
    weights[static_cast<size_t>(e)] *= (1.0 + congestion) * jitter;
  }
  return weights;
}

EdgeWeights MakeConstantWeights(const Graph& graph, double value) {
  return EdgeWeights(static_cast<size_t>(graph.num_edges()), value);
}

EdgeWeights MakeUniformWeights(const Graph& graph, double lo, double hi,
                               Rng* rng) {
  EdgeWeights weights(static_cast<size_t>(graph.num_edges()));
  for (double& w : weights) w = rng->Uniform(lo, hi);
  return weights;
}

EdgeWeights BitGadgetGraph::EncodeBits(const std::vector<int>& bits) const {
  DPSP_CHECK_MSG(static_cast<int>(bits.size()) == n,
                 "bit string length mismatch");
  EdgeWeights weights(static_cast<size_t>(graph.num_edges()), 0.0);
  for (int i = 0; i < n; ++i) {
    int xi = bits[static_cast<size_t>(i)];
    DPSP_CHECK_MSG(xi == 0 || xi == 1, "bits must be 0/1");
    weights[static_cast<size_t>(EdgeFor(i, 1 - xi))] = 1.0;
  }
  return weights;
}

Result<BitGadgetGraph> MakeShortestPathGadget(int n) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 1, "shortest-path gadget"));
  std::vector<EdgeEndpoints> edges;
  edges.reserve(static_cast<size_t>(2 * n));
  for (int i = 0; i < n; ++i) {
    edges.push_back({i, i + 1});  // e_i^(0)
    edges.push_back({i, i + 1});  // e_i^(1)
  }
  DPSP_ASSIGN_OR_RETURN(Graph graph, Graph::Create(n + 1, std::move(edges)));
  return BitGadgetGraph{std::move(graph), n};
}

Result<BitGadgetGraph> MakeMstGadget(int n) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 1, "MST gadget"));
  std::vector<EdgeEndpoints> edges;
  edges.reserve(static_cast<size_t>(2 * n));
  for (int i = 0; i < n; ++i) {
    edges.push_back({0, i + 1});  // e_i^(0)
    edges.push_back({0, i + 1});  // e_i^(1)
  }
  DPSP_ASSIGN_OR_RETURN(Graph graph, Graph::Create(n + 1, std::move(edges)));
  return BitGadgetGraph{std::move(graph), n};
}

EdgeWeights HourglassGadgetGraph::EncodeBits(
    const std::vector<int>& bits) const {
  DPSP_CHECK_MSG(static_cast<int>(bits.size()) == n,
                 "bit string length mismatch");
  EdgeWeights weights(static_cast<size_t>(graph.num_edges()), 0.0);
  for (int c = 0; c < n; ++c) {
    int xc = bits[static_cast<size_t>(c)];
    DPSP_CHECK_MSG(xc == 0 || xc == 1, "bits must be 0/1");
    weights[static_cast<size_t>(EdgeFor(c, 1, 1 - xc))] = 1.0;
  }
  return weights;
}

Result<HourglassGadgetGraph> MakeMatchingGadget(int n) {
  DPSP_RETURN_IF_ERROR(RequireAtLeast(n, 1, "matching gadget"));
  std::vector<EdgeEndpoints> edges;
  edges.reserve(static_cast<size_t>(4 * n));
  for (int c = 0; c < n; ++c) {
    for (int b_left = 0; b_left < 2; ++b_left) {
      for (int b_right = 0; b_right < 2; ++b_right) {
        // (0, b_left, c) -- (1, b_right, c)
        edges.push_back({4 * c + b_left, 4 * c + 2 + b_right});
      }
    }
  }
  DPSP_ASSIGN_OR_RETURN(Graph graph, Graph::Create(4 * n, std::move(edges)));
  return HourglassGadgetGraph{std::move(graph), n};
}

}  // namespace dpsp
