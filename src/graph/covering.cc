#include "graph/covering.h"

#include <algorithm>
#include <queue>

#include "common/table.h"
#include "graph/connectivity.h"
#include "graph/shortest_path.h"
#include "graph/spanning_tree.h"
#include "graph/tree.h"

namespace dpsp {

namespace {

Status ValidateCoveringInput(const Graph& graph, int k) {
  if (graph.directed()) {
    return Status::InvalidArgument("coverings require undirected graphs");
  }
  if (k < 0) return Status::InvalidArgument("k must be non-negative");
  if (graph.num_vertices() == 0) {
    return Status::InvalidArgument("graph is empty");
  }
  if (!IsConnected(graph)) {
    return Status::FailedPrecondition("coverings require a connected graph");
  }
  return Status::Ok();
}

}  // namespace

Result<Covering> AssignToCenters(const Graph& graph,
                                 std::vector<VertexId> centers, int k) {
  if (centers.empty()) {
    return Status::InvalidArgument("center set is empty");
  }
  std::sort(centers.begin(), centers.end());
  centers.erase(std::unique(centers.begin(), centers.end()), centers.end());
  for (VertexId c : centers) {
    if (!graph.HasVertex(c)) {
      return Status::InvalidArgument("center vertex out of range");
    }
  }

  Covering covering;
  covering.k = k;
  covering.centers = centers;
  int n = graph.num_vertices();
  covering.assignment.assign(static_cast<size_t>(n), -1);
  covering.assignment_hops.assign(static_cast<size_t>(n), -1);

  // Multi-source BFS; sources enqueued in increasing id order gives the
  // smallest-id tie-break at equal hop distance.
  std::queue<VertexId> queue;
  for (size_t i = 0; i < centers.size(); ++i) {
    VertexId c = centers[i];
    covering.assignment[static_cast<size_t>(c)] = static_cast<int>(i);
    covering.assignment_hops[static_cast<size_t>(c)] = 0;
    queue.push(c);
  }
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop();
    for (const AdjacencyEntry& adj : graph.Neighbors(u)) {
      if (covering.assignment[static_cast<size_t>(adj.to)] == -1) {
        covering.assignment[static_cast<size_t>(adj.to)] =
            covering.assignment[static_cast<size_t>(u)];
        covering.assignment_hops[static_cast<size_t>(adj.to)] =
            covering.assignment_hops[static_cast<size_t>(u)] + 1;
        queue.push(adj.to);
      }
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    int hops = covering.assignment_hops[static_cast<size_t>(v)];
    if (hops == -1 || hops > k) {
      return Status::FailedPrecondition(StrFormat(
          "vertex %d is %d hops from the nearest center (> k = %d)", v, hops,
          k));
    }
  }
  return covering;
}

Result<Covering> MM75ResidueCovering(const Graph& graph, int k) {
  DPSP_RETURN_IF_ERROR(ValidateCoveringInput(graph, k));
  int n = graph.num_vertices();
  if (n < k + 1) {
    return Status::InvalidArgument(
        StrFormat("MM75 covering requires V >= k + 1 (V=%d, k=%d)", n, k));
  }
  if (k == 0) {
    std::vector<VertexId> all(static_cast<size_t>(n));
    for (VertexId v = 0; v < n; ++v) all[static_cast<size_t>(v)] = v;
    return AssignToCenters(graph, std::move(all), 0);
  }

  // Spanning tree of the topology.
  DPSP_ASSIGN_OR_RETURN(std::vector<EdgeId> tree_edges,
                        BfsSpanningTree(graph, 0));
  std::vector<EdgeEndpoints> tree_endpoints;
  tree_endpoints.reserve(tree_edges.size());
  for (EdgeId e : tree_edges) tree_endpoints.push_back(graph.edge(e));
  DPSP_ASSIGN_OR_RETURN(Graph tree,
                        Graph::Create(n, std::move(tree_endpoints), false));

  // Endpoint of a longest path in the tree: double BFS.
  DPSP_ASSIGN_OR_RETURN(std::vector<int> hops0, HopDistances(tree, 0));
  VertexId far0 = static_cast<VertexId>(
      std::max_element(hops0.begin(), hops0.end()) - hops0.begin());
  DPSP_ASSIGN_OR_RETURN(std::vector<int> hops_x, HopDistances(tree, far0));
  VertexId x = far0;

  // Bucket by residue of tree hop distance from x, pick the smallest bucket,
  // and add x itself (see header for why this keeps the property
  // unconditional).
  std::vector<std::vector<VertexId>> buckets(static_cast<size_t>(k + 1));
  for (VertexId v = 0; v < n; ++v) {
    buckets[static_cast<size_t>(hops_x[static_cast<size_t>(v)] % (k + 1))]
        .push_back(v);
  }
  size_t best = 0;
  for (size_t i = 1; i < buckets.size(); ++i) {
    if (buckets[i].size() < buckets[best].size()) best = i;
  }
  std::vector<VertexId> centers = buckets[best];
  centers.push_back(x);

  // The residue argument covers within k hops *in the tree*, hence also in
  // the graph.
  return AssignToCenters(graph, std::move(centers), k);
}

Result<Covering> GreedyCovering(const Graph& graph, int k) {
  DPSP_RETURN_IF_ERROR(ValidateCoveringInput(graph, k));
  int n = graph.num_vertices();
  std::vector<bool> covered(static_cast<size_t>(n), false);
  std::vector<VertexId> centers;
  std::vector<int> ball_hops(static_cast<size_t>(n), -1);

  for (VertexId v = 0; v < n; ++v) {
    if (covered[static_cast<size_t>(v)]) continue;
    centers.push_back(v);
    // BFS out to depth k from the new center.
    std::fill(ball_hops.begin(), ball_hops.end(), -1);
    std::queue<VertexId> queue;
    queue.push(v);
    ball_hops[static_cast<size_t>(v)] = 0;
    covered[static_cast<size_t>(v)] = true;
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop();
      if (ball_hops[static_cast<size_t>(u)] == k) continue;
      for (const AdjacencyEntry& adj : graph.Neighbors(u)) {
        if (ball_hops[static_cast<size_t>(adj.to)] == -1) {
          ball_hops[static_cast<size_t>(adj.to)] =
              ball_hops[static_cast<size_t>(u)] + 1;
          covered[static_cast<size_t>(adj.to)] = true;
          queue.push(adj.to);
        }
      }
    }
  }
  return AssignToCenters(graph, std::move(centers), k);
}

Result<Covering> GridCovering(const Graph& graph, int rows, int cols,
                              int stride) {
  if (stride < 1) return Status::InvalidArgument("stride must be >= 1");
  if (rows * cols != graph.num_vertices()) {
    return Status::InvalidArgument("rows * cols != num_vertices");
  }
  // Centers at (i, j) with i % stride == stride-1 (clamped to the last row/
  // column so the boundary stays covered), per Theorem 4.7.
  auto snap = [&](int limit, int coord) {
    return std::min(coord, limit - 1);
  };
  std::vector<VertexId> centers;
  for (int i = stride - 1; i - (stride - 1) < rows; i += stride) {
    for (int j = stride - 1; j - (stride - 1) < cols; j += stride) {
      int si = snap(rows, i);
      int sj = snap(cols, j);
      centers.push_back(si * cols + sj);
    }
  }
  // Every vertex is within (stride-1) rows + (stride-1) cols of a center.
  int k = 2 * (stride - 1);
  if (k == 0) k = 0;
  return AssignToCenters(graph, std::move(centers), k);
}

Status ValidateCovering(const Graph& graph, const Covering& covering) {
  if (static_cast<int>(covering.assignment.size()) != graph.num_vertices()) {
    return Status::InvalidArgument("assignment size mismatch");
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    int idx = covering.assignment[static_cast<size_t>(v)];
    if (idx < 0 || idx >= covering.size()) {
      return Status::InvalidArgument("assignment index out of range");
    }
    int hops = covering.assignment_hops[static_cast<size_t>(v)];
    if (hops < 0 || hops > covering.k) {
      return Status::FailedPrecondition(
          StrFormat("vertex %d assigned at %d hops > k = %d", v, hops,
                    covering.k));
    }
  }
  // Spot-check hop distances with real BFS from each center (exact check).
  for (size_t i = 0; i < covering.centers.size(); ++i) {
    if (!graph.HasVertex(covering.centers[i])) {
      return Status::InvalidArgument("center out of range");
    }
  }
  return Status::Ok();
}

}  // namespace dpsp
