// Connectivity and bipartiteness queries over the public topology.

#ifndef DPSP_GRAPH_CONNECTIVITY_H_
#define DPSP_GRAPH_CONNECTIVITY_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

/// Connected components of the underlying undirected topology.
struct ConnectedComponents {
  /// component[v] in [0, num_components).
  std::vector<int> component;
  int num_components = 0;

  /// Vertex lists per component, in increasing vertex order.
  std::vector<std::vector<VertexId>> Members() const;
};

/// Computes connected components (edge direction is ignored).
ConnectedComponents FindConnectedComponents(const Graph& graph);

/// True iff the (undirected view of the) graph is connected. Empty graphs
/// and single vertices count as connected.
bool IsConnected(const Graph& graph);

/// Attempts a 2-coloring of the undirected topology. Returns the color
/// vector (0/1 per vertex) or FailedPrecondition if an odd cycle exists.
Result<std::vector<int>> TwoColor(const Graph& graph);

/// True iff the graph is bipartite.
bool IsBipartite(const Graph& graph);

}  // namespace dpsp

#endif  // DPSP_GRAPH_CONNECTIVITY_H_
