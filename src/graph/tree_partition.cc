#include "graph/tree_partition.h"

#include <algorithm>
#include <unordered_map>

#include "common/table.h"

namespace dpsp {

SubtreeView FullTreeView(const RootedTree& tree) {
  SubtreeView view;
  view.root = tree.root();
  view.vertices = tree.bfs_order();
  return view;
}

Status ValidateSubtreeView(const RootedTree& tree, const SubtreeView& view) {
  if (view.vertices.empty()) {
    return Status::InvalidArgument("subtree view is empty");
  }
  std::unordered_map<VertexId, bool> member;
  member.reserve(view.vertices.size() * 2);
  for (VertexId v : view.vertices) {
    if (v < 0 || v >= tree.num_vertices()) {
      return Status::InvalidArgument("subtree view vertex out of range");
    }
    if (member.count(v)) {
      return Status::InvalidArgument("subtree view contains duplicates");
    }
    member[v] = true;
  }
  if (!member.count(view.root)) {
    return Status::InvalidArgument("subtree view root not in vertex set");
  }
  for (VertexId v : view.vertices) {
    if (v == view.root) continue;
    VertexId p = tree.parent(v);
    if (p == -1 || !member.count(p)) {
      return Status::InvalidArgument(StrFormat(
          "subtree view not parent-closed: vertex %d's parent missing", v));
    }
  }
  return Status::Ok();
}

Result<TreeSplit> SplitSubtree(const RootedTree& tree,
                               const SubtreeView& view) {
  int n = view.size();
  if (n < 2) {
    return Status::InvalidArgument("SplitSubtree requires >= 2 vertices");
  }

  // Membership, children-within-view, and subtree sizes within the view.
  std::unordered_map<VertexId, int> index;  // vertex -> position in view
  index.reserve(view.vertices.size() * 2);
  for (int i = 0; i < n; ++i) index[view.vertices[static_cast<size_t>(i)]] = i;

  std::vector<std::vector<VertexId>> children(static_cast<size_t>(n));
  for (VertexId v : view.vertices) {
    if (v == view.root) continue;
    VertexId p = tree.parent(v);
    auto it = index.find(p);
    if (it == index.end()) {
      return Status::InvalidArgument("subtree view not parent-closed");
    }
    children[static_cast<size_t>(it->second)].push_back(v);
  }

  // Sizes by decreasing original depth (children before parents: a child is
  // always deeper than its parent in the original tree).
  std::vector<VertexId> by_depth = view.vertices;
  std::sort(by_depth.begin(), by_depth.end(), [&](VertexId a, VertexId b) {
    return tree.depth(a) > tree.depth(b);
  });
  std::vector<int> size(static_cast<size_t>(n), 1);
  for (VertexId v : by_depth) {
    if (v == view.root) continue;
    VertexId p = tree.parent(v);
    size[static_cast<size_t>(index[p])] += size[static_cast<size_t>(index[v])];
  }

  // Walk down from the root while some child subtree still exceeds n/2.
  double half = static_cast<double>(n) / 2.0;
  VertexId v_star = view.root;
  while (true) {
    VertexId heavy_child = -1;
    for (VertexId c : children[static_cast<size_t>(index[v_star])]) {
      if (static_cast<double>(size[static_cast<size_t>(index[c])]) > half) {
        heavy_child = c;
        break;
      }
    }
    if (heavy_child == -1) break;
    v_star = heavy_child;
  }

  TreeSplit split;
  split.v_star = v_star;
  split.child_roots = children[static_cast<size_t>(index[v_star])];

  // Collect each child subtree by stack traversal within the view.
  std::vector<bool> in_child(static_cast<size_t>(n), false);
  for (VertexId c : split.child_roots) {
    SubtreeView child_view;
    child_view.root = c;
    std::vector<VertexId> stack{c};
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      child_view.vertices.push_back(v);
      in_child[static_cast<size_t>(index[v])] = true;
      for (VertexId grandchild : children[static_cast<size_t>(index[v])]) {
        stack.push_back(grandchild);
      }
    }
    split.child_subtrees.push_back(std::move(child_view));
  }

  split.rest.root = view.root;
  for (int i = 0; i < n; ++i) {
    if (!in_child[static_cast<size_t>(i)]) {
      split.rest.vertices.push_back(view.vertices[static_cast<size_t>(i)]);
    }
  }

  // Invariants from the proof of Theorem 4.1: every child subtree has at
  // most n/2 vertices, and since size(v*) >= floor(n/2)+1 the remainder
  // T_0 = view \ (T_1 u ... u T_t) has at most ceil(n/2) vertices.
  for (const SubtreeView& child : split.child_subtrees) {
    DPSP_CHECK_MSG(static_cast<double>(child.size()) <= half,
                   "child subtree exceeds half the view");
  }
  DPSP_CHECK_MSG(split.rest.size() <= (n + 1) / 2,
                 "rest subtree exceeds ceil(n/2)");
  return split;
}

}  // namespace dpsp
