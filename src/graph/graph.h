// Graph topology and edge weights, modelling the paper's privacy split:
// the topology (V, E) is public data; the weight function w : E -> R+ is the
// private database. The two are therefore separate types: an immutable
// `Graph` and a plain `EdgeWeights` vector indexed by edge id.
//
// The graph is a multigraph (parallel edges allowed) because the lower-bound
// constructions of Section 5.1 and Appendix B use parallel edge pairs.
// Self-loops are rejected: no algorithm in the paper uses them and they only
// complicate path semantics.

#ifndef DPSP_GRAPH_GRAPH_H_
#define DPSP_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"

namespace dpsp {

/// Vertex id: 0 .. num_vertices()-1.
using VertexId = int;
/// Edge id: 0 .. num_edges()-1, in insertion order.
using EdgeId = int;

/// An undirected or directed edge between two endpoints. For undirected
/// graphs the (u, v) order is storage order only.
struct EdgeEndpoints {
  VertexId u = 0;
  VertexId v = 0;
};

/// One adjacency entry: the incident edge and the neighbor it leads to.
struct AdjacencyEntry {
  EdgeId edge = 0;
  VertexId to = 0;
};

/// The private database: one non-negative weight per edge id. (MST and
/// matching in Appendix B also permit negative weights; algorithms that
/// require non-negativity validate it themselves.)
using EdgeWeights = std::vector<double>;

/// Immutable (multi)graph topology. Adjacency is stored in compressed
/// sparse row (CSR) form as a struct-of-arrays (neighbor, edge-id) split:
/// one offset array plus two parallel flat arrays, so traversal kernels
/// (Dijkstra, BFS, tree orientation) stream contiguous memory instead of
/// chasing one heap allocation per vertex.
class Graph {
 public:
  /// Lightweight view over the CSR adjacency of one vertex. Iterates as
  /// AdjacencyEntry values; the underlying storage stays struct-of-arrays.
  class NeighborRange {
   public:
    class Iterator {
     public:
      Iterator(const VertexId* to, const EdgeId* edge) : to_(to), edge_(edge) {}
      AdjacencyEntry operator*() const { return {*edge_, *to_}; }
      Iterator& operator++() {
        ++to_;
        ++edge_;
        return *this;
      }
      bool operator==(const Iterator& o) const { return to_ == o.to_; }
      bool operator!=(const Iterator& o) const { return to_ != o.to_; }

     private:
      const VertexId* to_;
      const EdgeId* edge_;
    };

    NeighborRange(const VertexId* to, const EdgeId* edge, size_t count)
        : to_(to), edge_(edge), count_(count) {}
    Iterator begin() const { return Iterator(to_, edge_); }
    Iterator end() const { return Iterator(to_ + count_, edge_ + count_); }
    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    AdjacencyEntry operator[](size_t i) const { return {edge_[i], to_[i]}; }

   private:
    const VertexId* to_;
    const EdgeId* edge_;
    size_t count_;
  };

  /// Validates endpoints and builds adjacency. Fails on out-of-range
  /// endpoints or self-loops. `directed` edges go u -> v only.
  static Result<Graph> Create(int num_vertices,
                              std::vector<EdgeEndpoints> edges,
                              bool directed = false);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  bool directed() const { return directed_; }

  /// Endpoints of edge `e`.
  const EdgeEndpoints& edge(EdgeId e) const {
    return edges_[static_cast<size_t>(e)];
  }

  /// Out-adjacency of `u` (full adjacency for undirected graphs).
  NeighborRange Neighbors(VertexId u) const {
    uint32_t begin = adj_offset_[static_cast<size_t>(u)];
    uint32_t end = adj_offset_[static_cast<size_t>(u) + 1];
    return NeighborRange(adj_to_.data() + begin, adj_edge_.data() + begin,
                         end - begin);
  }

  /// Raw CSR arrays for flat traversal kernels: AdjacencyOffsets()[u] ..
  /// AdjacencyOffsets()[u+1] indexes into the parallel AdjacencyHeads()
  /// (neighbor vertex) and AdjacencyEdges() (incident edge id) arrays.
  std::span<const uint32_t> AdjacencyOffsets() const { return adj_offset_; }
  std::span<const VertexId> AdjacencyHeads() const { return adj_to_; }
  std::span<const EdgeId> AdjacencyEdges() const { return adj_edge_; }

  /// Given an edge and one endpoint, the opposite endpoint.
  VertexId OtherEndpoint(EdgeId e, VertexId from) const;

  /// Out-degree of `u` (degree for undirected graphs), counting parallels.
  int Degree(VertexId u) const {
    return static_cast<int>(adj_offset_[static_cast<size_t>(u) + 1] -
                            adj_offset_[static_cast<size_t>(u)]);
  }

  /// True iff `u` is a valid vertex id.
  bool HasVertex(VertexId u) const { return u >= 0 && u < num_vertices_; }

  /// OK iff `w` has exactly one entry per edge.
  Status ValidateWeights(const EdgeWeights& w) const;

  /// OK iff `w` matches the edge count and every entry is non-negative.
  Status ValidateNonNegativeWeights(const EdgeWeights& w) const;

  /// Short human-readable description ("Graph(V=5, E=7, undirected)").
  std::string ToString() const;

 private:
  Graph(int num_vertices, std::vector<EdgeEndpoints> edges, bool directed);

  int num_vertices_;
  bool directed_;
  std::vector<EdgeEndpoints> edges_;
  // CSR adjacency, struct-of-arrays: entry i of vertex u lives at
  // adj_offset_[u] + i in the parallel adj_to_ / adj_edge_ arrays.
  // Cache-line aligned so traversal kernels start on a line boundary.
  AlignedVector<uint32_t> adj_offset_;
  AlignedVector<VertexId> adj_to_;
  AlignedVector<EdgeId> adj_edge_;
};

/// Total weight of a set of edges.
double TotalWeight(const EdgeWeights& weights, const std::vector<EdgeId>& edges);

}  // namespace dpsp

#endif  // DPSP_GRAPH_GRAPH_H_
