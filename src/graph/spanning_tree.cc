#include "graph/spanning_tree.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "graph/union_find.h"

namespace dpsp {

namespace {

Status ValidateMstInput(const Graph& graph, const EdgeWeights& w) {
  if (graph.directed()) {
    return Status::InvalidArgument("spanning trees require undirected graphs");
  }
  DPSP_RETURN_IF_ERROR(graph.ValidateWeights(w));
  if (graph.num_vertices() == 0) {
    return Status::InvalidArgument("graph is empty");
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<EdgeId>> KruskalMst(const Graph& graph,
                                       const EdgeWeights& w) {
  DPSP_RETURN_IF_ERROR(ValidateMstInput(graph, w));
  std::vector<EdgeId> order(static_cast<size_t>(graph.num_edges()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    double wa = w[static_cast<size_t>(a)];
    double wb = w[static_cast<size_t>(b)];
    if (wa != wb) return wa < wb;
    return a < b;  // deterministic tie-break
  });

  UnionFind dsu(graph.num_vertices());
  std::vector<EdgeId> tree;
  tree.reserve(static_cast<size_t>(graph.num_vertices()) - 1);
  for (EdgeId e : order) {
    const EdgeEndpoints& ep = graph.edge(e);
    if (dsu.Union(ep.u, ep.v)) tree.push_back(e);
  }
  if (static_cast<int>(tree.size()) != graph.num_vertices() - 1) {
    return Status::FailedPrecondition("graph is not connected");
  }
  return tree;
}

Result<std::vector<EdgeId>> PrimMst(const Graph& graph, const EdgeWeights& w) {
  DPSP_RETURN_IF_ERROR(ValidateMstInput(graph, w));
  int n = graph.num_vertices();
  std::vector<bool> in_tree(static_cast<size_t>(n), false);
  std::vector<EdgeId> tree;
  using HeapEntry = std::pair<double, EdgeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;

  auto add_vertex = [&](VertexId u) {
    in_tree[static_cast<size_t>(u)] = true;
    for (const AdjacencyEntry& adj : graph.Neighbors(u)) {
      if (!in_tree[static_cast<size_t>(adj.to)]) {
        heap.emplace(w[static_cast<size_t>(adj.edge)], adj.edge);
      }
    }
  };
  add_vertex(0);
  while (!heap.empty() && static_cast<int>(tree.size()) < n - 1) {
    auto [we, e] = heap.top();
    heap.pop();
    const EdgeEndpoints& ep = graph.edge(e);
    VertexId fresh;
    if (!in_tree[static_cast<size_t>(ep.u)]) {
      fresh = ep.u;
    } else if (!in_tree[static_cast<size_t>(ep.v)]) {
      fresh = ep.v;
    } else {
      continue;  // both endpoints already inside
    }
    tree.push_back(e);
    add_vertex(fresh);
  }
  if (static_cast<int>(tree.size()) != n - 1) {
    return Status::FailedPrecondition("graph is not connected");
  }
  return tree;
}

Result<std::vector<EdgeId>> BfsSpanningTree(const Graph& graph,
                                            VertexId root) {
  if (graph.directed()) {
    return Status::InvalidArgument("spanning trees require undirected graphs");
  }
  if (!graph.HasVertex(root)) {
    return Status::InvalidArgument("root vertex out of range");
  }
  std::vector<bool> seen(static_cast<size_t>(graph.num_vertices()), false);
  seen[static_cast<size_t>(root)] = true;
  std::vector<EdgeId> tree;
  std::queue<VertexId> queue;
  queue.push(root);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop();
    for (const AdjacencyEntry& adj : graph.Neighbors(u)) {
      if (!seen[static_cast<size_t>(adj.to)]) {
        seen[static_cast<size_t>(adj.to)] = true;
        tree.push_back(adj.edge);
        queue.push(adj.to);
      }
    }
  }
  if (static_cast<int>(tree.size()) != graph.num_vertices() - 1) {
    return Status::FailedPrecondition("graph is not connected");
  }
  return tree;
}

bool IsSpanningTree(const Graph& graph, const std::vector<EdgeId>& edges) {
  if (static_cast<int>(edges.size()) != graph.num_vertices() - 1) return false;
  UnionFind dsu(graph.num_vertices());
  for (EdgeId e : edges) {
    if (e < 0 || e >= graph.num_edges()) return false;
    const EdgeEndpoints& ep = graph.edge(e);
    if (!dsu.Union(ep.u, ep.v)) return false;  // cycle
  }
  return dsu.num_sets() == 1;
}

}  // namespace dpsp
