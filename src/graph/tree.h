// Rooted-tree utilities: orientation of an undirected tree graph at a root,
// subtree sizes, depths, and lowest common ancestors via binary lifting.
// These back the tree-distance algorithms of Section 4.1.

#ifndef DPSP_GRAPH_TREE_H_
#define DPSP_GRAPH_TREE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

/// A tree graph oriented away from a chosen root. Parent pointers, children
/// lists, depths, BFS order, and subtree sizes are precomputed.
class RootedTree {
 public:
  /// Orients `graph` at `root`. Fails unless the graph is an undirected
  /// tree (connected, exactly V-1 edges, no parallel edges forming cycles).
  static Result<RootedTree> FromGraph(const Graph& graph, VertexId root);

  VertexId root() const { return root_; }
  int num_vertices() const { return static_cast<int>(parent_.size()); }

  /// Parent of v (-1 at the root).
  VertexId parent(VertexId v) const { return parent_[static_cast<size_t>(v)]; }

  /// Edge to the parent (-1 at the root).
  EdgeId parent_edge(VertexId v) const {
    return parent_edge_[static_cast<size_t>(v)];
  }

  /// Children of v in adjacency order. A view into the flat offset+index
  /// child storage (CSR layout): no per-vertex heap allocation.
  std::span<const VertexId> children(VertexId v) const {
    uint32_t begin = child_offset_[static_cast<size_t>(v)];
    uint32_t end = child_offset_[static_cast<size_t>(v) + 1];
    return {child_list_.data() + begin, static_cast<size_t>(end - begin)};
  }

  /// Hop depth of v (0 at the root).
  int depth(VertexId v) const { return depth_[static_cast<size_t>(v)]; }

  /// Number of vertices in the subtree rooted at v (>= 1).
  int subtree_size(VertexId v) const {
    return subtree_size_[static_cast<size_t>(v)];
  }

  /// Vertices in BFS order from the root (root first). Reverse iteration
  /// visits children before parents.
  const std::vector<VertexId>& bfs_order() const { return bfs_order_; }

  /// Weighted distance from the root to every vertex (sum of parent-edge
  /// weights along the unique root path).
  std::vector<double> RootDistances(const EdgeWeights& w) const;

 private:
  RootedTree() = default;

  VertexId root_ = 0;
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parent_edge_;
  // Flat CSR child storage: children of v occupy child_list_[
  // child_offset_[v] .. child_offset_[v+1]) in adjacency order.
  // Cache-line aligned like the graph CSR arrays.
  AlignedVector<uint32_t> child_offset_;
  AlignedVector<VertexId> child_list_;
  std::vector<int> depth_;
  std::vector<int> subtree_size_;
  std::vector<VertexId> bfs_order_;
};

/// Lowest-common-ancestor queries in O(log V) after O(V log V) setup
/// (binary lifting over the parent pointers).
class LcaIndex {
 public:
  explicit LcaIndex(const RootedTree& tree);

  /// The lowest common ancestor of u and v.
  VertexId Lca(VertexId u, VertexId v) const;

  /// Hop distance between u and v through their LCA.
  int HopDistance(VertexId u, VertexId v) const;

 private:
  VertexId Ancestor(VertexId v, int steps) const;

  const RootedTree* tree_;
  int log_ = 1;
  // up_[k][v]: the 2^k-th ancestor of v (-1 past the root).
  std::vector<std::vector<VertexId>> up_;
};

/// Constant-time lowest-common-ancestor queries via an Euler tour and a
/// sparse table (range-minimum over tour depths). O(V log V) setup memory
/// and time, O(1) per query — the structure the batched tree oracles share
/// so a batch costs one array lookup per pair instead of a lifting walk.
///
/// The sparse table is one row-major buffer with a power-of-two row
/// stride: level k starts at k << stride_shift_, so a query computes both
/// cell addresses with shifts and adds — no per-level vector indirection.
/// Each cell packs (depth << 32) | vertex, making the range-min a single
/// 64-bit compare with no lookup back into the depth array.
class EulerTourLca {
 public:
  explicit EulerTourLca(const RootedTree& tree);

  /// The lowest common ancestor of u and v. O(1). Bounds-checked.
  VertexId Lca(VertexId u, VertexId v) const;

  /// Lca without the bounds check: callers must guarantee valid vertex
  /// ids. The batched-query hot path.
  VertexId LcaUnchecked(VertexId u, VertexId v) const {
    uint32_t a = first_visit_[static_cast<size_t>(u)];
    uint32_t b = first_visit_[static_cast<size_t>(v)];
    if (a > b) std::swap(a, b);
    uint32_t k = log2_floor_[static_cast<size_t>(b - a + 1)];
    const uint64_t* row = table_.data() + (static_cast<size_t>(k)
                                           << stride_shift_);
    uint64_t key = std::min(row[a], row[b - (1u << k) + 1]);
    return static_cast<VertexId>(key & 0xffffffffu);
  }

  /// Hop distance between u and v through their LCA. O(1).
  int HopDistance(VertexId u, VertexId v) const;

  /// Length of the Euler tour (2V - 1).
  int tour_size() const { return tour_len_; }

  /// Raw pointers into the packed structure, for the batch SIMD kernels:
  /// everything LcaUnchecked touches, with no indirection through `this`.
  struct FlatView {
    const uint32_t* first_visit;
    const uint8_t* log2_floor;
    const uint64_t* table;
    unsigned stride_shift;
    int num_vertices;
  };
  FlatView Flat() const {
    return {first_visit_.data(), log2_floor_.data(), table_.data(),
            stride_shift_, n_};
  }

  /// Byte sizes of the packed buffers, for memory-placement callers.
  size_t table_bytes() const { return table_.size() * sizeof(uint64_t); }
  size_t first_visit_bytes() const {
    return first_visit_.size() * sizeof(uint32_t);
  }

  /// True iff every table index fits an int32 — the precondition for the
  /// AVX2 gather path (32-bit gather indices). Holds for every V the
  /// oracles accept; false only past ~2^26 vertices.
  bool SimdCompatible() const {
    return table_.size() < (static_cast<size_t>(1) << 31);
  }

 private:
  const RootedTree* tree_;
  int n_ = 0;         // cached vertex count (query hot path)
  int tour_len_ = 0;  // Euler tour length (2V - 1)
  unsigned stride_shift_ = 0;          // row stride = 1 << stride_shift_
  AlignedVector<uint32_t> first_visit_;  // vertex -> first tour index
  AlignedVector<uint8_t> log2_floor_;    // precomputed floor(log2(i))
  // Row-major sparse table: table_[(k << stride_shift_) + i] packs
  // (depth << 32) | vertex for the min-depth vertex in tour[i .. i + 2^k).
  // Cache-line aligned: the gather path reads 4 cells per lane-group.
  AlignedVector<uint64_t> table_;
};

/// True iff the undirected graph is a tree (connected, V-1 edges).
bool IsTree(const Graph& graph);

}  // namespace dpsp

#endif  // DPSP_GRAPH_TREE_H_
