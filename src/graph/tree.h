// Rooted-tree utilities: orientation of an undirected tree graph at a root,
// subtree sizes, depths, and lowest common ancestors via binary lifting.
// These back the tree-distance algorithms of Section 4.1.

#ifndef DPSP_GRAPH_TREE_H_
#define DPSP_GRAPH_TREE_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

/// A tree graph oriented away from a chosen root. Parent pointers, children
/// lists, depths, BFS order, and subtree sizes are precomputed.
class RootedTree {
 public:
  /// Orients `graph` at `root`. Fails unless the graph is an undirected
  /// tree (connected, exactly V-1 edges, no parallel edges forming cycles).
  static Result<RootedTree> FromGraph(const Graph& graph, VertexId root);

  VertexId root() const { return root_; }
  int num_vertices() const { return static_cast<int>(parent_.size()); }

  /// Parent of v (-1 at the root).
  VertexId parent(VertexId v) const { return parent_[static_cast<size_t>(v)]; }

  /// Edge to the parent (-1 at the root).
  EdgeId parent_edge(VertexId v) const {
    return parent_edge_[static_cast<size_t>(v)];
  }

  /// Children of v in adjacency order.
  const std::vector<VertexId>& children(VertexId v) const {
    return children_[static_cast<size_t>(v)];
  }

  /// Hop depth of v (0 at the root).
  int depth(VertexId v) const { return depth_[static_cast<size_t>(v)]; }

  /// Number of vertices in the subtree rooted at v (>= 1).
  int subtree_size(VertexId v) const {
    return subtree_size_[static_cast<size_t>(v)];
  }

  /// Vertices in BFS order from the root (root first). Reverse iteration
  /// visits children before parents.
  const std::vector<VertexId>& bfs_order() const { return bfs_order_; }

  /// Weighted distance from the root to every vertex (sum of parent-edge
  /// weights along the unique root path).
  std::vector<double> RootDistances(const EdgeWeights& w) const;

 private:
  RootedTree() = default;

  VertexId root_ = 0;
  std::vector<VertexId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::vector<VertexId>> children_;
  std::vector<int> depth_;
  std::vector<int> subtree_size_;
  std::vector<VertexId> bfs_order_;
};

/// Lowest-common-ancestor queries in O(log V) after O(V log V) setup
/// (binary lifting over the parent pointers).
class LcaIndex {
 public:
  explicit LcaIndex(const RootedTree& tree);

  /// The lowest common ancestor of u and v.
  VertexId Lca(VertexId u, VertexId v) const;

  /// Hop distance between u and v through their LCA.
  int HopDistance(VertexId u, VertexId v) const;

 private:
  VertexId Ancestor(VertexId v, int steps) const;

  const RootedTree* tree_;
  int log_ = 1;
  // up_[k][v]: the 2^k-th ancestor of v (-1 past the root).
  std::vector<std::vector<VertexId>> up_;
};

/// Constant-time lowest-common-ancestor queries via an Euler tour and a
/// sparse table (range-minimum over tour depths). O(V log V) setup memory
/// and time, O(1) per query — the structure the batched tree oracles share
/// so a batch costs one array lookup per pair instead of a lifting walk.
class EulerTourLca {
 public:
  explicit EulerTourLca(const RootedTree& tree);

  /// The lowest common ancestor of u and v. O(1).
  VertexId Lca(VertexId u, VertexId v) const;

  /// Hop distance between u and v through their LCA. O(1).
  int HopDistance(VertexId u, VertexId v) const;

  /// Length of the Euler tour (2V - 1).
  int tour_size() const { return static_cast<int>(tour_.size()); }

 private:
  const RootedTree* tree_;
  int n_ = 0;                      // cached vertex count (query hot path)
  std::vector<VertexId> tour_;     // vertices in Euler-tour order
  std::vector<int> first_visit_;   // vertex -> first tour index
  std::vector<int> log2_floor_;    // precomputed floor(log2(i))
  // sparse_[k][i]: tour index of the min-depth vertex in
  // tour[i .. i + 2^k).
  std::vector<std::vector<int>> sparse_;

  // The tour index with the smaller depth.
  int MinByDepth(int a, int b) const;
};

/// True iff the undirected graph is a tree (connected, V-1 edges).
bool IsTree(const Graph& graph);

}  // namespace dpsp

#endif  // DPSP_GRAPH_TREE_H_
