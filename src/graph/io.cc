#include "graph/io.h"

#include <algorithm>
#include <sstream>

#include "common/table.h"

namespace dpsp {

namespace {

// Reads the next non-comment, non-empty line into `line`; false at EOF.
bool NextLine(std::istringstream* in, std::string* line) {
  while (std::getline(*in, *line)) {
    size_t hash = line->find('#');
    if (hash != std::string::npos) line->erase(hash);
    // Trim.
    size_t begin = line->find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    size_t end = line->find_last_not_of(" \t\r");
    *line = line->substr(begin, end - begin + 1);
    return true;
  }
  return false;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(
      StrFormat("malformed serialization: %s", what));
}

}  // namespace

std::string SerializeGraph(const Graph& graph) {
  std::string out;
  out += "dpsp-graph 1\n";
  out += StrFormat("directed %d\n", graph.directed() ? 1 : 0);
  out += StrFormat("vertices %d\n", graph.num_vertices());
  out += StrFormat("edges %d\n", graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeEndpoints& ep = graph.edge(e);
    out += StrFormat("%d %d\n", ep.u, ep.v);
  }
  return out;
}

Result<Graph> DeserializeGraph(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  if (!NextLine(&in, &line)) return Malformed("empty input");
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != "dpsp-graph" || version != 1) {
      return Malformed("expected 'dpsp-graph 1' header");
    }
  }

  auto read_int_field = [&](const char* key, int* value) -> Status {
    if (!NextLine(&in, &line)) return Malformed("truncated header");
    std::istringstream fields(line);
    std::string name;
    fields >> name >> *value;
    if (fields.fail() || name != key) {
      return Malformed(StrFormat("expected '%s <int>'", key).c_str());
    }
    return Status::Ok();
  };

  int directed = 0, vertices = 0, edges = 0;
  DPSP_RETURN_IF_ERROR(read_int_field("directed", &directed));
  DPSP_RETURN_IF_ERROR(read_int_field("vertices", &vertices));
  DPSP_RETURN_IF_ERROR(read_int_field("edges", &edges));
  if (directed != 0 && directed != 1) return Malformed("directed not 0/1");
  if (vertices < 0 || edges < 0) return Malformed("negative counts");

  std::vector<EdgeEndpoints> endpoints;
  endpoints.reserve(static_cast<size_t>(edges));
  for (int i = 0; i < edges; ++i) {
    if (!NextLine(&in, &line)) return Malformed("truncated edge list");
    std::istringstream fields(line);
    EdgeEndpoints ep;
    fields >> ep.u >> ep.v;
    if (fields.fail()) return Malformed("edge line must be '<u> <v>'");
    endpoints.push_back(ep);
  }
  if (NextLine(&in, &line)) return Malformed("trailing content");
  return Graph::Create(vertices, std::move(endpoints), directed == 1);
}

std::string SerializeWeights(const EdgeWeights& weights) {
  std::string out;
  out += "dpsp-weights 1\n";
  out += StrFormat("count %zu\n", weights.size());
  for (double w : weights) out += StrFormat("%.17g\n", w);
  return out;
}

Result<EdgeWeights> DeserializeWeights(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!NextLine(&in, &line)) return Malformed("empty input");
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != "dpsp-weights" || version != 1) {
      return Malformed("expected 'dpsp-weights 1' header");
    }
  }
  if (!NextLine(&in, &line)) return Malformed("missing count");
  size_t count = 0;
  {
    std::istringstream fields(line);
    std::string name;
    fields >> name >> count;
    if (fields.fail() || name != "count") {
      return Malformed("expected 'count <n>'");
    }
  }
  EdgeWeights weights;
  weights.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (!NextLine(&in, &line)) return Malformed("truncated weights");
    std::istringstream fields(line);
    double w = 0.0;
    fields >> w;
    if (fields.fail()) return Malformed("weight line must be a number");
    weights.push_back(w);
  }
  if (NextLine(&in, &line)) return Malformed("trailing content");
  return weights;
}

Result<std::string> ToDot(const Graph& graph, const EdgeWeights& weights,
                          const DotOptions& options) {
  if (!weights.empty() &&
      static_cast<int>(weights.size()) != graph.num_edges()) {
    return Status::InvalidArgument("weights size mismatch");
  }
  std::vector<bool> highlighted(static_cast<size_t>(graph.num_edges()),
                                false);
  for (EdgeId e : options.highlight) {
    if (e < 0 || e >= graph.num_edges()) {
      return Status::InvalidArgument("highlight edge id out of range");
    }
    highlighted[static_cast<size_t>(e)] = true;
  }

  std::string out;
  const char* kind = graph.directed() ? "digraph" : "graph";
  const char* arrow = graph.directed() ? " -> " : " -- ";
  out += StrFormat("%s %s {\n", kind, options.name.c_str());
  out += "  node [shape=circle, fontsize=10];\n";
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeEndpoints& ep = graph.edge(e);
    std::string attrs;
    if (options.show_weights && !weights.empty()) {
      attrs += StrFormat("label=\"%.3g\"", weights[static_cast<size_t>(e)]);
    }
    if (highlighted[static_cast<size_t>(e)]) {
      if (!attrs.empty()) attrs += ", ";
      attrs += "color=red, penwidth=2.0";
    }
    out += StrFormat("  %d%s%d", ep.u, arrow, ep.v);
    if (!attrs.empty()) out += " [" + attrs + "]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace dpsp
