#include "graph/union_find.h"

#include <numeric>
#include <utility>

#include "common/status.h"

namespace dpsp {

UnionFind::UnionFind(int n)
    : parent_(static_cast<size_t>(n)),
      size_(static_cast<size_t>(n), 1),
      num_sets_(n) {
  DPSP_CHECK_MSG(n >= 0, "UnionFind size must be non-negative");
  std::iota(parent_.begin(), parent_.end(), 0);
}

int UnionFind::Find(int x) {
  DPSP_CHECK_MSG(x >= 0 && x < static_cast<int>(parent_.size()),
                 "UnionFind::Find out of range");
  int root = x;
  while (parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  while (parent_[static_cast<size_t>(x)] != root) {
    int next = parent_[static_cast<size_t>(x)];
    parent_[static_cast<size_t>(x)] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return false;
  if (size_[static_cast<size_t>(ra)] < size_[static_cast<size_t>(rb)]) {
    std::swap(ra, rb);
  }
  parent_[static_cast<size_t>(rb)] = ra;
  size_[static_cast<size_t>(ra)] += size_[static_cast<size_t>(rb)];
  --num_sets_;
  return true;
}

}  // namespace dpsp
