#include "graph/graph.h"

#include "common/table.h"

namespace dpsp {

Graph::Graph(int num_vertices, std::vector<EdgeEndpoints> edges, bool directed)
    : num_vertices_(num_vertices),
      directed_(directed),
      edges_(std::move(edges)) {
  // CSR build: count degrees, prefix-sum into offsets, then scatter. Entry
  // order per vertex matches the old per-vertex push_back order (edge
  // insertion order), which BFS-based constructions rely on.
  adj_offset_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const EdgeEndpoints& ep : edges_) {
    ++adj_offset_[static_cast<size_t>(ep.u) + 1];
    if (!directed_) ++adj_offset_[static_cast<size_t>(ep.v) + 1];
  }
  for (size_t u = 0; u < static_cast<size_t>(num_vertices); ++u) {
    adj_offset_[u + 1] += adj_offset_[u];
  }
  size_t slots = adj_offset_[static_cast<size_t>(num_vertices)];
  adj_to_.resize(slots);
  adj_edge_.resize(slots);
  std::vector<uint32_t> cursor(adj_offset_.begin(), adj_offset_.end() - 1);
  for (EdgeId e = 0; e < static_cast<EdgeId>(edges_.size()); ++e) {
    const EdgeEndpoints& ep = edges_[static_cast<size_t>(e)];
    uint32_t slot = cursor[static_cast<size_t>(ep.u)]++;
    adj_to_[slot] = ep.v;
    adj_edge_[slot] = e;
    if (!directed_) {
      slot = cursor[static_cast<size_t>(ep.v)]++;
      adj_to_[slot] = ep.u;
      adj_edge_[slot] = e;
    }
  }
}

Result<Graph> Graph::Create(int num_vertices, std::vector<EdgeEndpoints> edges,
                            bool directed) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("num_vertices must be non-negative");
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    const EdgeEndpoints& ep = edges[i];
    if (ep.u < 0 || ep.u >= num_vertices || ep.v < 0 || ep.v >= num_vertices) {
      return Status::InvalidArgument(
          StrFormat("edge %zu endpoints (%d, %d) out of range [0, %d)", i,
                    ep.u, ep.v, num_vertices));
    }
    if (ep.u == ep.v) {
      return Status::InvalidArgument(
          StrFormat("edge %zu is a self-loop at vertex %d", i, ep.u));
    }
  }
  return Graph(num_vertices, std::move(edges), directed);
}

VertexId Graph::OtherEndpoint(EdgeId e, VertexId from) const {
  const EdgeEndpoints& ep = edge(e);
  DPSP_CHECK_MSG(ep.u == from || ep.v == from,
                 "OtherEndpoint: vertex not incident to edge");
  return ep.u == from ? ep.v : ep.u;
}

Status Graph::ValidateWeights(const EdgeWeights& w) const {
  if (static_cast<int>(w.size()) != num_edges()) {
    return Status::InvalidArgument(
        StrFormat("weight vector has %zu entries, graph has %d edges",
                  w.size(), num_edges()));
  }
  return Status::Ok();
}

Status Graph::ValidateNonNegativeWeights(const EdgeWeights& w) const {
  DPSP_RETURN_IF_ERROR(ValidateWeights(w));
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i] < 0.0) {
      return Status::InvalidArgument(
          StrFormat("weight of edge %zu is negative (%g)", i, w[i]));
    }
  }
  return Status::Ok();
}

std::string Graph::ToString() const {
  return StrFormat("Graph(V=%d, E=%d, %s)", num_vertices(), num_edges(),
                   directed_ ? "directed" : "undirected");
}

double TotalWeight(const EdgeWeights& weights,
                   const std::vector<EdgeId>& edges) {
  double sum = 0.0;
  for (EdgeId e : edges) sum += weights[static_cast<size_t>(e)];
  return sum;
}

}  // namespace dpsp
