// Disjoint-set union with path compression and union by size.

#ifndef DPSP_GRAPH_UNION_FIND_H_
#define DPSP_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <vector>

namespace dpsp {

/// Classic DSU over {0, ..., n-1}.
class UnionFind {
 public:
  explicit UnionFind(int n);

  /// Representative of x's set (with path compression).
  int Find(int x);

  /// Merges the sets of a and b; returns false if already merged.
  bool Union(int a, int b);

  /// True iff a and b are in the same set.
  bool Connected(int a, int b) { return Find(a) == Find(b); }

  /// Number of elements in x's set.
  int SetSize(int x) { return size_[static_cast<size_t>(Find(x))]; }

  /// Current number of disjoint sets.
  int num_sets() const { return num_sets_; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int num_sets_;
};

}  // namespace dpsp

#endif  // DPSP_GRAPH_UNION_FIND_H_
