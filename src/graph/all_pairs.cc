#include "graph/all_pairs.h"

#include <algorithm>

#include "graph/shortest_path.h"

namespace dpsp {

DistanceMatrix::DistanceMatrix(int n)
    : n_(n),
      data_(static_cast<size_t>(n) * static_cast<size_t>(n),
            kInfiniteDistance) {
  for (VertexId v = 0; v < n; ++v) set(v, v, 0.0);
}

Result<DistanceMatrix> AllPairsDijkstra(const Graph& graph,
                                        const EdgeWeights& w) {
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  DistanceMatrix matrix(graph.num_vertices());
  for (VertexId s = 0; s < graph.num_vertices(); ++s) {
    DPSP_ASSIGN_OR_RETURN(ShortestPathTree tree, Dijkstra(graph, w, s));
    for (VertexId t = 0; t < graph.num_vertices(); ++t) {
      matrix.set(s, t, tree.distance[static_cast<size_t>(t)]);
    }
  }
  return matrix;
}

Result<DistanceMatrix> FloydWarshall(const Graph& graph,
                                     const EdgeWeights& w) {
  DPSP_RETURN_IF_ERROR(graph.ValidateWeights(w));
  int n = graph.num_vertices();
  DistanceMatrix matrix(n);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeEndpoints& ep = graph.edge(e);
    double we = w[static_cast<size_t>(e)];
    matrix.set(ep.u, ep.v, std::min(matrix.at(ep.u, ep.v), we));
    if (!graph.directed()) {
      matrix.set(ep.v, ep.u, std::min(matrix.at(ep.v, ep.u), we));
    }
  }
  for (VertexId k = 0; k < n; ++k) {
    for (VertexId i = 0; i < n; ++i) {
      double dik = matrix.at(i, k);
      if (dik == kInfiniteDistance) continue;
      for (VertexId j = 0; j < n; ++j) {
        double dkj = matrix.at(k, j);
        if (dkj == kInfiniteDistance) continue;
        if (dik + dkj < matrix.at(i, j)) matrix.set(i, j, dik + dkj);
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (matrix.at(v, v) < 0.0) {
      return Status::FailedPrecondition("graph contains a negative cycle");
    }
  }
  return matrix;
}

Result<std::vector<std::vector<double>>> MultiSourceDistances(
    const Graph& graph, const EdgeWeights& w,
    const std::vector<VertexId>& sources) {
  std::vector<std::vector<double>> rows;
  rows.reserve(sources.size());
  for (VertexId s : sources) {
    DPSP_ASSIGN_OR_RETURN(ShortestPathTree tree, Dijkstra(graph, w, s));
    rows.push_back(std::move(tree.distance));
  }
  return rows;
}

}  // namespace dpsp
