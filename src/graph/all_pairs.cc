#include "graph/all_pairs.h"

#include <algorithm>

#include "common/parallel.h"
#include "graph/shortest_path.h"

namespace dpsp {

DistanceMatrix::DistanceMatrix(int n)
    : n_(n),
      data_(static_cast<size_t>(n) * static_cast<size_t>(n),
            kInfiniteDistance) {
  for (VertexId v = 0; v < n; ++v) set(v, v, 0.0);
}

Result<DistanceMatrix> AllPairsDijkstra(const Graph& graph,
                                        const EdgeWeights& w) {
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  int n = graph.num_vertices();
  DistanceMatrix matrix(n);
  // One source per task; each worker keeps a thread-local heap and tree
  // across its sources, writing rows of the matrix directly.
  ParallelFor(
      static_cast<size_t>(n), /*max_threads=*/0,
      [&](size_t begin, size_t end) {
        ShortestPathTree tree;
        DijkstraWorkspace ws;
        for (size_t s = begin; s < end; ++s) {
          DijkstraKernel(graph, w, static_cast<VertexId>(s), tree, ws);
          for (VertexId t = 0; t < n; ++t) {
            matrix.set(static_cast<VertexId>(s), t,
                       tree.distance[static_cast<size_t>(t)]);
          }
        }
      },
      /*min_items_per_worker=*/1);
  return matrix;
}

Result<DistanceMatrix> FloydWarshall(const Graph& graph,
                                     const EdgeWeights& w) {
  DPSP_RETURN_IF_ERROR(graph.ValidateWeights(w));
  int n = graph.num_vertices();
  DistanceMatrix matrix(n);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeEndpoints& ep = graph.edge(e);
    double we = w[static_cast<size_t>(e)];
    matrix.set(ep.u, ep.v, std::min(matrix.at(ep.u, ep.v), we));
    if (!graph.directed()) {
      matrix.set(ep.v, ep.u, std::min(matrix.at(ep.v, ep.u), we));
    }
  }
  for (VertexId k = 0; k < n; ++k) {
    for (VertexId i = 0; i < n; ++i) {
      double dik = matrix.at(i, k);
      if (dik == kInfiniteDistance) continue;
      for (VertexId j = 0; j < n; ++j) {
        double dkj = matrix.at(k, j);
        if (dkj == kInfiniteDistance) continue;
        if (dik + dkj < matrix.at(i, j)) matrix.set(i, j, dik + dkj);
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (matrix.at(v, v) < 0.0) {
      return Status::FailedPrecondition("graph contains a negative cycle");
    }
  }
  return matrix;
}

Result<std::vector<std::vector<double>>> MultiSourceDistances(
    const Graph& graph, const EdgeWeights& w,
    const std::vector<VertexId>& sources, int max_threads) {
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  for (VertexId s : sources) {
    if (!graph.HasVertex(s)) {
      return Status::InvalidArgument("source vertex out of range");
    }
  }
  std::vector<std::vector<double>> rows(sources.size());
  ParallelFor(
      sources.size(), max_threads,
      [&](size_t begin, size_t end) {
        ShortestPathTree tree;
        DijkstraWorkspace ws;
        for (size_t i = begin; i < end; ++i) {
          DijkstraKernel(graph, w, sources[i], tree, ws);
          rows[i] = std::move(tree.distance);
        }
      },
      /*min_items_per_worker=*/1);
  return rows;
}

}  // namespace dpsp
