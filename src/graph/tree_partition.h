// The Figure-1 tree splitter used by Algorithm 1 (Rooted tree distances).
//
// Given a rooted tree with n vertices, there is a unique-down-a-chain vertex
// v* whose subtree contains more than n/2 vertices while the subtree of each
// of its children contains at most n/2. Splitting at v* partitions the
// vertex set into the child subtrees T_1..T_t (each of size <= n/2) and the
// remainder T_0 (of size <= ceil(n/2), containing the root and v*), which
// bounds the recursion depth of Algorithm 1 by ceil(log2 n) + 1.
//
// The splitter here works on an arbitrary *subset* of a RootedTree's
// vertices (the recursion operates on smaller and smaller subtrees without
// re-building graphs), described by a parent function restricted to the
// subset.

#ifndef DPSP_GRAPH_TREE_PARTITION_H_
#define DPSP_GRAPH_TREE_PARTITION_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/tree.h"

namespace dpsp {

/// A subtree of a RootedTree given as an explicit vertex set with its own
/// root. `vertices` always contains `root`, and every non-root member's
/// parent (in the original tree) is also a member.
struct SubtreeView {
  VertexId root = 0;
  std::vector<VertexId> vertices;

  int size() const { return static_cast<int>(vertices.size()); }
};

/// The result of splitting a subtree at its balanced separator v*.
struct TreeSplit {
  /// The separator vertex v* (may equal the subtree root).
  VertexId v_star = 0;
  /// Children of v* inside the subtree, i.e. the roots of T_1..T_t.
  std::vector<VertexId> child_roots;
  /// T_0: remaining vertices (contains root and v*), rooted at the original
  /// subtree root.
  SubtreeView rest;
  /// T_1..T_t, aligned with child_roots.
  std::vector<SubtreeView> child_subtrees;
};

/// Finds v* for the given subtree view and produces the partition of
/// Figure 1. Requires view.size() >= 2.
Result<TreeSplit> SplitSubtree(const RootedTree& tree, const SubtreeView& view);

/// The whole tree as a subtree view (root = tree root, all vertices).
SubtreeView FullTreeView(const RootedTree& tree);

/// Validates the SubtreeView invariants (root membership, closure under
/// parent within the set). For tests and debugging.
Status ValidateSubtreeView(const RootedTree& tree, const SubtreeView& view);

}  // namespace dpsp

#endif  // DPSP_GRAPH_TREE_PARTITION_H_
