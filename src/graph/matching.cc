#include "graph/matching.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/table.h"
#include "graph/connectivity.h"

namespace dpsp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Minimum-weight edge between each pair of subset vertices (parallel edges
// collapse to the cheapest). Returns cost and edge-id matrices indexed by
// subset position.
struct PairCosts {
  std::vector<std::vector<double>> cost;
  std::vector<std::vector<EdgeId>> edge;
};

PairCosts BuildPairCosts(const Graph& graph, const EdgeWeights& w,
                         const std::vector<VertexId>& subset) {
  int m = static_cast<int>(subset.size());
  PairCosts pc;
  pc.cost.assign(static_cast<size_t>(m),
                 std::vector<double>(static_cast<size_t>(m), kInf));
  pc.edge.assign(static_cast<size_t>(m),
                 std::vector<EdgeId>(static_cast<size_t>(m), -1));
  std::unordered_map<VertexId, int> pos;
  for (int i = 0; i < m; ++i) pos[subset[static_cast<size_t>(i)]] = i;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeEndpoints& ep = graph.edge(e);
    auto iu = pos.find(ep.u);
    auto iv = pos.find(ep.v);
    if (iu == pos.end() || iv == pos.end()) continue;
    double we = w[static_cast<size_t>(e)];
    int a = iu->second;
    int b = iv->second;
    if (we < pc.cost[static_cast<size_t>(a)][static_cast<size_t>(b)]) {
      pc.cost[static_cast<size_t>(a)][static_cast<size_t>(b)] = we;
      pc.cost[static_cast<size_t>(b)][static_cast<size_t>(a)] = we;
      pc.edge[static_cast<size_t>(a)][static_cast<size_t>(b)] = e;
      pc.edge[static_cast<size_t>(b)][static_cast<size_t>(a)] = e;
    }
  }
  return pc;
}

}  // namespace

Result<Matching> MinWeightPerfectMatchingDp(
    const Graph& graph, const EdgeWeights& w,
    const std::vector<VertexId>& subset) {
  int m = static_cast<int>(subset.size());
  if (m % 2 != 0) {
    return Status::FailedPrecondition(
        "odd vertex set has no perfect matching");
  }
  if (m > kMaxDpVertices) {
    return Status::InvalidArgument(
        StrFormat("DP matcher limited to %d vertices, got %d",
                  kMaxDpVertices, m));
  }
  if (m == 0) return Matching{};

  PairCosts pc = BuildPairCosts(graph, w, subset);

  size_t full = size_t{1} << m;
  std::vector<double> dp(full, kInf);
  std::vector<int> choice_i(full, -1);
  std::vector<int> choice_j(full, -1);
  dp[0] = 0.0;
  for (size_t mask = 1; mask < full; ++mask) {
    // Lowest set bit must be matched with someone in the mask.
    int i = 0;
    while (!(mask & (size_t{1} << i))) ++i;
    size_t without_i = mask & ~(size_t{1} << i);
    for (int j = i + 1; j < m; ++j) {
      if (!(mask & (size_t{1} << j))) continue;
      double cij = pc.cost[static_cast<size_t>(i)][static_cast<size_t>(j)];
      if (cij == kInf) continue;
      size_t rest = without_i & ~(size_t{1} << j);
      if (dp[rest] == kInf) continue;
      double cand = dp[rest] + cij;
      if (cand < dp[mask]) {
        dp[mask] = cand;
        choice_i[mask] = i;
        choice_j[mask] = j;
      }
    }
  }
  if (dp[full - 1] == kInf) {
    return Status::FailedPrecondition("no perfect matching exists");
  }

  Matching matching;
  size_t mask = full - 1;
  while (mask != 0) {
    int i = choice_i[mask];
    int j = choice_j[mask];
    DPSP_CHECK(i >= 0 && j >= 0);
    matching.edges.push_back(
        pc.edge[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    mask &= ~(size_t{1} << i);
    mask &= ~(size_t{1} << j);
  }
  return matching;
}

Result<Matching> MinWeightPerfectMatchingHungarian(
    const Graph& graph, const EdgeWeights& w,
    const std::vector<VertexId>& left, const std::vector<VertexId>& right) {
  int n = static_cast<int>(left.size());
  if (n != static_cast<int>(right.size())) {
    return Status::FailedPrecondition(
        "bipartite sides differ in size; no perfect matching");
  }
  if (n == 0) return Matching{};

  // Cost matrix between the sides (min over parallel edges).
  std::unordered_map<VertexId, int> lpos, rpos;
  for (int i = 0; i < n; ++i) lpos[left[static_cast<size_t>(i)]] = i;
  for (int j = 0; j < n; ++j) rpos[right[static_cast<size_t>(j)]] = j;
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n), kInf));
  std::vector<std::vector<EdgeId>> edge_of(
      static_cast<size_t>(n), std::vector<EdgeId>(static_cast<size_t>(n), -1));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeEndpoints& ep = graph.edge(e);
    auto il = lpos.find(ep.u);
    auto jr = rpos.find(ep.v);
    if (il == lpos.end() || jr == rpos.end()) {
      il = lpos.find(ep.v);
      jr = rpos.find(ep.u);
    }
    if (il == lpos.end() || jr == rpos.end()) continue;
    double we = w[static_cast<size_t>(e)];
    if (we < cost[static_cast<size_t>(il->second)]
                 [static_cast<size_t>(jr->second)]) {
      cost[static_cast<size_t>(il->second)][static_cast<size_t>(jr->second)] =
          we;
      edge_of[static_cast<size_t>(il->second)]
             [static_cast<size_t>(jr->second)] = e;
    }
  }

  // Hungarian algorithm with potentials (supports arbitrary real costs;
  // infinite entries encode non-edges). 1-indexed internal arrays.
  std::vector<double> u(static_cast<size_t>(n + 1), 0.0);
  std::vector<double> v(static_cast<size_t>(n + 1), 0.0);
  std::vector<int> p(static_cast<size_t>(n + 1), 0);    // p[j]: row matched to col j
  std::vector<int> way(static_cast<size_t>(n + 1), 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(n + 1), kInf);
    std::vector<bool> used(static_cast<size_t>(n + 1), false);
    do {
      used[static_cast<size_t>(j0)] = true;
      int i0 = p[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        double cur = cost[static_cast<size_t>(i0 - 1)][static_cast<size_t>(
                         j - 1)] -
                     u[static_cast<size_t>(i0)] - v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      if (j1 == -1 || delta == kInf) {
        return Status::FailedPrecondition("no perfect matching exists");
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(p[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<size_t>(j0)] != 0);
    do {
      int j1 = way[static_cast<size_t>(j0)];
      p[static_cast<size_t>(j0)] = p[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  Matching matching;
  for (int j = 1; j <= n; ++j) {
    int i = p[static_cast<size_t>(j)];
    EdgeId e = edge_of[static_cast<size_t>(i - 1)][static_cast<size_t>(j - 1)];
    if (e < 0) {
      return Status::FailedPrecondition("no perfect matching exists");
    }
    matching.edges.push_back(e);
  }
  return matching;
}

Result<Matching> MinWeightPerfectMatching(const Graph& graph,
                                          const EdgeWeights& w) {
  if (graph.directed()) {
    return Status::InvalidArgument("matching requires an undirected graph");
  }
  DPSP_RETURN_IF_ERROR(graph.ValidateWeights(w));
  if (graph.num_vertices() % 2 != 0) {
    return Status::FailedPrecondition(
        "odd vertex count has no perfect matching");
  }

  ConnectedComponents components = FindConnectedComponents(graph);
  Matching matching;
  for (const std::vector<VertexId>& members : components.Members()) {
    if (members.size() % 2 != 0) {
      return Status::FailedPrecondition(
          "a connected component has odd size; no perfect matching");
    }
    Result<Matching> part = Status::Internal("unset");
    if (static_cast<int>(members.size()) <= kMaxDpVertices) {
      part = MinWeightPerfectMatchingDp(graph, w, members);
    } else {
      Result<std::vector<int>> colors = TwoColor(graph);
      if (!colors.ok()) {
        return Status::Unimplemented(
            "general matching on large non-bipartite components requires a "
            "Blossom solver (see DESIGN.md)");
      }
      std::vector<VertexId> left, right;
      for (VertexId v : members) {
        if ((*colors)[static_cast<size_t>(v)] == 0) {
          left.push_back(v);
        } else {
          right.push_back(v);
        }
      }
      part = MinWeightPerfectMatchingHungarian(graph, w, left, right);
    }
    if (!part.ok()) return part.status();
    for (EdgeId e : part->edges) matching.edges.push_back(e);
  }
  return matching;
}

bool IsPerfectMatching(const Graph& graph, const Matching& matching) {
  if (static_cast<int>(matching.edges.size()) * 2 != graph.num_vertices()) {
    return false;
  }
  std::vector<bool> used(static_cast<size_t>(graph.num_vertices()), false);
  for (EdgeId e : matching.edges) {
    if (e < 0 || e >= graph.num_edges()) return false;
    const EdgeEndpoints& ep = graph.edge(e);
    if (used[static_cast<size_t>(ep.u)] || used[static_cast<size_t>(ep.v)]) {
      return false;
    }
    used[static_cast<size_t>(ep.u)] = true;
    used[static_cast<size_t>(ep.v)] = true;
  }
  return true;
}

}  // namespace dpsp
