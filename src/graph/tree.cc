#include "graph/tree.h"

#include <queue>
#include <utility>

#include "graph/connectivity.h"

namespace dpsp {

Result<RootedTree> RootedTree::FromGraph(const Graph& graph, VertexId root) {
  if (graph.directed()) {
    return Status::InvalidArgument("RootedTree requires an undirected graph");
  }
  if (!graph.HasVertex(root)) {
    return Status::InvalidArgument("root vertex out of range");
  }
  int n = graph.num_vertices();
  if (graph.num_edges() != n - 1) {
    return Status::InvalidArgument(
        "graph is not a tree: edge count != V - 1");
  }

  RootedTree tree;
  tree.root_ = root;
  tree.parent_.assign(static_cast<size_t>(n), -1);
  tree.parent_edge_.assign(static_cast<size_t>(n), -1);
  tree.children_.assign(static_cast<size_t>(n), {});
  tree.depth_.assign(static_cast<size_t>(n), 0);
  tree.subtree_size_.assign(static_cast<size_t>(n), 1);

  std::vector<bool> seen(static_cast<size_t>(n), false);
  seen[static_cast<size_t>(root)] = true;
  std::queue<VertexId> queue;
  queue.push(root);
  tree.bfs_order_.reserve(static_cast<size_t>(n));
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop();
    tree.bfs_order_.push_back(u);
    for (const AdjacencyEntry& adj : graph.Neighbors(u)) {
      if (seen[static_cast<size_t>(adj.to)]) continue;
      seen[static_cast<size_t>(adj.to)] = true;
      tree.parent_[static_cast<size_t>(adj.to)] = u;
      tree.parent_edge_[static_cast<size_t>(adj.to)] = adj.edge;
      tree.children_[static_cast<size_t>(u)].push_back(adj.to);
      tree.depth_[static_cast<size_t>(adj.to)] =
          tree.depth_[static_cast<size_t>(u)] + 1;
      queue.push(adj.to);
    }
  }
  if (static_cast<int>(tree.bfs_order_.size()) != n) {
    return Status::InvalidArgument("graph is not a tree: not connected");
  }
  // Children-before-parents accumulation of subtree sizes.
  for (auto it = tree.bfs_order_.rbegin(); it != tree.bfs_order_.rend();
       ++it) {
    VertexId v = *it;
    VertexId p = tree.parent_[static_cast<size_t>(v)];
    if (p != -1) {
      tree.subtree_size_[static_cast<size_t>(p)] +=
          tree.subtree_size_[static_cast<size_t>(v)];
    }
  }
  return tree;
}

std::vector<double> RootedTree::RootDistances(const EdgeWeights& w) const {
  std::vector<double> dist(parent_.size(), 0.0);
  for (VertexId v : bfs_order_) {
    VertexId p = parent(v);
    if (p != -1) {
      dist[static_cast<size_t>(v)] =
          dist[static_cast<size_t>(p)] +
          w[static_cast<size_t>(parent_edge(v))];
    }
  }
  return dist;
}

LcaIndex::LcaIndex(const RootedTree& tree) : tree_(&tree) {
  int n = tree.num_vertices();
  while ((1 << log_) < n) ++log_;
  up_.assign(static_cast<size_t>(log_ + 1),
             std::vector<VertexId>(static_cast<size_t>(n), -1));
  for (VertexId v = 0; v < n; ++v) up_[0][static_cast<size_t>(v)] = tree.parent(v);
  for (int k = 1; k <= log_; ++k) {
    for (VertexId v = 0; v < n; ++v) {
      VertexId mid = up_[static_cast<size_t>(k - 1)][static_cast<size_t>(v)];
      up_[static_cast<size_t>(k)][static_cast<size_t>(v)] =
          mid == -1 ? -1
                    : up_[static_cast<size_t>(k - 1)][static_cast<size_t>(mid)];
    }
  }
}

VertexId LcaIndex::Ancestor(VertexId v, int steps) const {
  for (int k = 0; k <= log_ && v != -1; ++k) {
    if (steps & (1 << k)) v = up_[static_cast<size_t>(k)][static_cast<size_t>(v)];
  }
  return v;
}

VertexId LcaIndex::Lca(VertexId u, VertexId v) const {
  DPSP_CHECK_MSG(u >= 0 && u < tree_->num_vertices() && v >= 0 &&
                     v < tree_->num_vertices(),
                 "LCA query out of range");
  if (tree_->depth(u) < tree_->depth(v)) std::swap(u, v);
  u = Ancestor(u, tree_->depth(u) - tree_->depth(v));
  if (u == v) return u;
  for (int k = log_; k >= 0; --k) {
    VertexId au = up_[static_cast<size_t>(k)][static_cast<size_t>(u)];
    VertexId av = up_[static_cast<size_t>(k)][static_cast<size_t>(v)];
    if (au != av) {
      u = au;
      v = av;
    }
  }
  return tree_->parent(u);
}

int LcaIndex::HopDistance(VertexId u, VertexId v) const {
  VertexId z = Lca(u, v);
  return tree_->depth(u) + tree_->depth(v) - 2 * tree_->depth(z);
}

EulerTourLca::EulerTourLca(const RootedTree& tree)
    : tree_(&tree), n_(tree.num_vertices()) {
  int n = n_;
  tour_.reserve(static_cast<size_t>(2 * n - 1));
  first_visit_.assign(static_cast<size_t>(n), -1);

  // Iterative DFS; the tour records a vertex on entry and again after each
  // child returns, so consecutive tour entries differ by one tree edge.
  std::vector<std::pair<VertexId, size_t>> stack;
  stack.reserve(static_cast<size_t>(n));
  first_visit_[static_cast<size_t>(tree.root())] = 0;
  tour_.push_back(tree.root());
  stack.emplace_back(tree.root(), 0);
  while (!stack.empty()) {
    auto& [v, next_child] = stack.back();
    const std::vector<VertexId>& kids = tree.children(v);
    if (next_child < kids.size()) {
      VertexId c = kids[next_child++];
      first_visit_[static_cast<size_t>(c)] = static_cast<int>(tour_.size());
      tour_.push_back(c);
      stack.emplace_back(c, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) tour_.push_back(stack.back().first);
    }
  }

  int m = static_cast<int>(tour_.size());
  log2_floor_.assign(static_cast<size_t>(m + 1), 0);
  for (int i = 2; i <= m; ++i) {
    log2_floor_[static_cast<size_t>(i)] =
        log2_floor_[static_cast<size_t>(i / 2)] + 1;
  }
  int levels = log2_floor_[static_cast<size_t>(m)] + 1;
  sparse_.assign(static_cast<size_t>(levels),
                 std::vector<int>(static_cast<size_t>(m)));
  for (int i = 0; i < m; ++i) sparse_[0][static_cast<size_t>(i)] = i;
  for (int k = 1; k < levels; ++k) {
    int half = 1 << (k - 1);
    for (int i = 0; i + (1 << k) <= m; ++i) {
      sparse_[static_cast<size_t>(k)][static_cast<size_t>(i)] =
          MinByDepth(sparse_[static_cast<size_t>(k - 1)][static_cast<size_t>(i)],
                     sparse_[static_cast<size_t>(k - 1)]
                            [static_cast<size_t>(i + half)]);
    }
  }
}

int EulerTourLca::MinByDepth(int a, int b) const {
  return tree_->depth(tour_[static_cast<size_t>(a)]) <=
                 tree_->depth(tour_[static_cast<size_t>(b)])
             ? a
             : b;
}

VertexId EulerTourLca::Lca(VertexId u, VertexId v) const {
  DPSP_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_,
                 "LCA query out of range");
  int a = first_visit_[static_cast<size_t>(u)];
  int b = first_visit_[static_cast<size_t>(v)];
  if (a > b) std::swap(a, b);
  int k = log2_floor_[static_cast<size_t>(b - a + 1)];
  int idx = MinByDepth(
      sparse_[static_cast<size_t>(k)][static_cast<size_t>(a)],
      sparse_[static_cast<size_t>(k)][static_cast<size_t>(b - (1 << k) + 1)]);
  return tour_[static_cast<size_t>(idx)];
}

int EulerTourLca::HopDistance(VertexId u, VertexId v) const {
  VertexId z = Lca(u, v);
  return tree_->depth(u) + tree_->depth(v) - 2 * tree_->depth(z);
}

bool IsTree(const Graph& graph) {
  if (graph.directed()) return false;
  if (graph.num_edges() != graph.num_vertices() - 1) return false;
  return IsConnected(graph);
}

}  // namespace dpsp
