#include "graph/tree.h"

#include <queue>
#include <utility>

#include "graph/connectivity.h"

namespace dpsp {

Result<RootedTree> RootedTree::FromGraph(const Graph& graph, VertexId root) {
  if (graph.directed()) {
    return Status::InvalidArgument("RootedTree requires an undirected graph");
  }
  if (!graph.HasVertex(root)) {
    return Status::InvalidArgument("root vertex out of range");
  }
  int n = graph.num_vertices();
  if (graph.num_edges() != n - 1) {
    return Status::InvalidArgument(
        "graph is not a tree: edge count != V - 1");
  }

  RootedTree tree;
  tree.root_ = root;
  tree.parent_.assign(static_cast<size_t>(n), -1);
  tree.parent_edge_.assign(static_cast<size_t>(n), -1);
  tree.depth_.assign(static_cast<size_t>(n), 0);
  tree.subtree_size_.assign(static_cast<size_t>(n), 1);

  std::vector<bool> seen(static_cast<size_t>(n), false);
  seen[static_cast<size_t>(root)] = true;
  std::queue<VertexId> queue;
  queue.push(root);
  tree.bfs_order_.reserve(static_cast<size_t>(n));
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop();
    tree.bfs_order_.push_back(u);
    for (const AdjacencyEntry& adj : graph.Neighbors(u)) {
      if (seen[static_cast<size_t>(adj.to)]) continue;
      seen[static_cast<size_t>(adj.to)] = true;
      tree.parent_[static_cast<size_t>(adj.to)] = u;
      tree.parent_edge_[static_cast<size_t>(adj.to)] = adj.edge;
      tree.depth_[static_cast<size_t>(adj.to)] =
          tree.depth_[static_cast<size_t>(u)] + 1;
      queue.push(adj.to);
    }
  }
  if (static_cast<int>(tree.bfs_order_.size()) != n) {
    return Status::InvalidArgument("graph is not a tree: not connected");
  }
  // Flat CSR child lists: count, prefix-sum, scatter. Appending in BFS
  // order reproduces the per-parent adjacency discovery order.
  tree.child_offset_.assign(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    VertexId p = tree.parent_[static_cast<size_t>(v)];
    if (p != -1) ++tree.child_offset_[static_cast<size_t>(p) + 1];
  }
  for (size_t u = 0; u < static_cast<size_t>(n); ++u) {
    tree.child_offset_[u + 1] += tree.child_offset_[u];
  }
  tree.child_list_.resize(static_cast<size_t>(n > 0 ? n - 1 : 0));
  std::vector<uint32_t> cursor(tree.child_offset_.begin(),
                               tree.child_offset_.end() - 1);
  for (VertexId v : tree.bfs_order_) {
    VertexId p = tree.parent_[static_cast<size_t>(v)];
    if (p != -1) tree.child_list_[cursor[static_cast<size_t>(p)]++] = v;
  }
  // Children-before-parents accumulation of subtree sizes.
  for (auto it = tree.bfs_order_.rbegin(); it != tree.bfs_order_.rend();
       ++it) {
    VertexId v = *it;
    VertexId p = tree.parent_[static_cast<size_t>(v)];
    if (p != -1) {
      tree.subtree_size_[static_cast<size_t>(p)] +=
          tree.subtree_size_[static_cast<size_t>(v)];
    }
  }
  return tree;
}

std::vector<double> RootedTree::RootDistances(const EdgeWeights& w) const {
  std::vector<double> dist(parent_.size(), 0.0);
  for (VertexId v : bfs_order_) {
    VertexId p = parent(v);
    if (p != -1) {
      dist[static_cast<size_t>(v)] =
          dist[static_cast<size_t>(p)] +
          w[static_cast<size_t>(parent_edge(v))];
    }
  }
  return dist;
}

LcaIndex::LcaIndex(const RootedTree& tree) : tree_(&tree) {
  int n = tree.num_vertices();
  while ((1 << log_) < n) ++log_;
  up_.assign(static_cast<size_t>(log_ + 1),
             std::vector<VertexId>(static_cast<size_t>(n), -1));
  for (VertexId v = 0; v < n; ++v) up_[0][static_cast<size_t>(v)] = tree.parent(v);
  for (int k = 1; k <= log_; ++k) {
    for (VertexId v = 0; v < n; ++v) {
      VertexId mid = up_[static_cast<size_t>(k - 1)][static_cast<size_t>(v)];
      up_[static_cast<size_t>(k)][static_cast<size_t>(v)] =
          mid == -1 ? -1
                    : up_[static_cast<size_t>(k - 1)][static_cast<size_t>(mid)];
    }
  }
}

VertexId LcaIndex::Ancestor(VertexId v, int steps) const {
  for (int k = 0; k <= log_ && v != -1; ++k) {
    if (steps & (1 << k)) v = up_[static_cast<size_t>(k)][static_cast<size_t>(v)];
  }
  return v;
}

VertexId LcaIndex::Lca(VertexId u, VertexId v) const {
  DPSP_CHECK_MSG(u >= 0 && u < tree_->num_vertices() && v >= 0 &&
                     v < tree_->num_vertices(),
                 "LCA query out of range");
  if (tree_->depth(u) < tree_->depth(v)) std::swap(u, v);
  u = Ancestor(u, tree_->depth(u) - tree_->depth(v));
  if (u == v) return u;
  for (int k = log_; k >= 0; --k) {
    VertexId au = up_[static_cast<size_t>(k)][static_cast<size_t>(u)];
    VertexId av = up_[static_cast<size_t>(k)][static_cast<size_t>(v)];
    if (au != av) {
      u = au;
      v = av;
    }
  }
  return tree_->parent(u);
}

int LcaIndex::HopDistance(VertexId u, VertexId v) const {
  VertexId z = Lca(u, v);
  return tree_->depth(u) + tree_->depth(v) - 2 * tree_->depth(z);
}

EulerTourLca::EulerTourLca(const RootedTree& tree)
    : tree_(&tree), n_(tree.num_vertices()) {
  int n = n_;
  // The tour records a vertex on entry and again after each child returns,
  // so consecutive tour entries differ by one tree edge. Only the level-0
  // table row is the tour itself; no separate tour array is kept.
  std::vector<VertexId> tour;
  tour.reserve(static_cast<size_t>(2 * n - 1));
  first_visit_.assign(static_cast<size_t>(n), 0);

  std::vector<std::pair<VertexId, size_t>> stack;
  stack.reserve(static_cast<size_t>(n));
  first_visit_[static_cast<size_t>(tree.root())] = 0;
  tour.push_back(tree.root());
  stack.emplace_back(tree.root(), 0);
  while (!stack.empty()) {
    auto& [v, next_child] = stack.back();
    std::span<const VertexId> kids = tree.children(v);
    if (next_child < kids.size()) {
      VertexId c = kids[next_child++];
      first_visit_[static_cast<size_t>(c)] =
          static_cast<uint32_t>(tour.size());
      tour.push_back(c);
      stack.emplace_back(c, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) tour.push_back(stack.back().first);
    }
  }

  int m = static_cast<int>(tour.size());
  tour_len_ = m;
  log2_floor_.assign(static_cast<size_t>(m + 1), 0);
  for (int i = 2; i <= m; ++i) {
    log2_floor_[static_cast<size_t>(i)] =
        static_cast<uint8_t>(log2_floor_[static_cast<size_t>(i / 2)] + 1);
  }
  int levels = log2_floor_[static_cast<size_t>(m)] + 1;

  // One row-major buffer; the row stride is the next power of two >= m so
  // a level's base address is a shift of the level index.
  stride_shift_ = 0;
  while ((1u << stride_shift_) < static_cast<unsigned>(m)) ++stride_shift_;
  size_t stride = static_cast<size_t>(1) << stride_shift_;
  table_.assign(static_cast<size_t>(levels) * stride, 0);
  for (int i = 0; i < m; ++i) {
    VertexId v = tour[static_cast<size_t>(i)];
    table_[static_cast<size_t>(i)] =
        (static_cast<uint64_t>(tree.depth(v)) << 32) |
        static_cast<uint32_t>(v);
  }
  for (int k = 1; k < levels; ++k) {
    const uint64_t* prev = table_.data() + (static_cast<size_t>(k - 1)
                                            << stride_shift_);
    uint64_t* row = table_.data() + (static_cast<size_t>(k) << stride_shift_);
    int half = 1 << (k - 1);
    for (int i = 0; i + (1 << k) <= m; ++i) {
      row[i] = std::min(prev[i], prev[i + half]);
    }
  }
}

VertexId EulerTourLca::Lca(VertexId u, VertexId v) const {
  DPSP_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_,
                 "LCA query out of range");
  return LcaUnchecked(u, v);
}

int EulerTourLca::HopDistance(VertexId u, VertexId v) const {
  VertexId z = Lca(u, v);
  return tree_->depth(u) + tree_->depth(v) - 2 * tree_->depth(z);
}

bool IsTree(const Graph& graph) {
  if (graph.directed()) return false;
  if (graph.num_edges() != graph.num_vertices() - 1) return false;
  return IsConnected(graph);
}

}  // namespace dpsp
