// Spanning trees: Kruskal and Prim for minimum-weight spanning trees
// (negative weights permitted, as Appendix B.1 requires), plus a BFS
// spanning tree of the unweighted topology (used by the k-covering
// construction of Lemma 4.4).

#ifndef DPSP_GRAPH_SPANNING_TREE_H_
#define DPSP_GRAPH_SPANNING_TREE_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

/// Minimum spanning tree via Kruskal. Fails on directed or disconnected
/// graphs. Returns the edge ids of the tree (V-1 edges).
Result<std::vector<EdgeId>> KruskalMst(const Graph& graph,
                                       const EdgeWeights& w);

/// Minimum spanning tree via Prim (binary heap). Same contract as Kruskal.
Result<std::vector<EdgeId>> PrimMst(const Graph& graph, const EdgeWeights& w);

/// BFS spanning tree of the undirected topology rooted at `root`. Fails if
/// the graph is disconnected or directed.
Result<std::vector<EdgeId>> BfsSpanningTree(const Graph& graph, VertexId root);

/// True iff `edges` has V-1 entries and connects all vertices (i.e. forms a
/// spanning tree of the topology).
bool IsSpanningTree(const Graph& graph, const std::vector<EdgeId>& edges);

}  // namespace dpsp

#endif  // DPSP_GRAPH_SPANNING_TREE_H_
