// k-coverings (Definition 4.1): a vertex subset Z such that every vertex is
// within hop distance k of some member of Z. Three constructions:
//
//  * MM75ResidueCovering — the Meir-Moon construction behind Lemma 4.4:
//    take a spanning tree, pick an endpoint x of one of its longest paths,
//    bucket vertices by (tree hop distance from x) mod (k+1), and return the
//    smallest bucket. We additionally insert x itself, which makes the
//    covering property unconditional (vertices closer than k hops to x are
//    covered by x; vertices farther see all k+1 residues on their tree path
//    toward x within their first k+1 steps). Size <= floor(V/(k+1)) + 1.
//
//  * GreedyCovering — repeatedly pick an uncovered vertex and cover its
//    k-ball. Often smaller in practice; used to show the "for specific
//    graphs we can do better" remark after Theorem 4.6.
//
//  * GridCovering — the explicit sqrt(V) x sqrt(V) grid covering from
//    Theorem 4.7: vertices whose row and column are both ≡ -1 mod s form a
//    2s-covering of size ~ V/s^2.

#ifndef DPSP_GRAPH_COVERING_H_
#define DPSP_GRAPH_COVERING_H_

#include <vector>

#include "common/aligned.h"
#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

/// A k-covering with the per-vertex assignment z(v) of Algorithm 2.
struct Covering {
  int k = 0;
  /// Covering vertices in increasing order.
  std::vector<VertexId> centers;
  /// For each vertex v, the index into `centers` of a covering vertex
  /// within k hops (the nearest in hops, ties to the smallest id).
  /// Cache-aligned: the batch kernels gather from it per query.
  AlignedVector<int> assignment;
  /// Hop distance from each vertex to its assigned center.
  std::vector<int> assignment_hops;

  int size() const { return static_cast<int>(centers.size()); }
  VertexId CenterOf(VertexId v) const {
    return centers[static_cast<size_t>(assignment[static_cast<size_t>(v)])];
  }
};

/// Lemma 4.4 construction. Requires a connected undirected graph and
/// k >= 0 with V >= k + 1. Size <= floor(V/(k+1)) + 1.
Result<Covering> MM75ResidueCovering(const Graph& graph, int k);

/// Greedy k-ball covering. Requires a connected undirected graph.
Result<Covering> GreedyCovering(const Graph& graph, int k);

/// Theorem 4.7 covering for the rows x cols grid produced by
/// GridGraph(rows, cols) (row-major vertex ids). `stride` is the spacing s;
/// the result is a (2s)-covering... precisely: it is a k-covering for
/// k = (rows and cols pattern) validated internally. Fails if stride < 1.
Result<Covering> GridCovering(const Graph& graph, int rows, int cols,
                              int stride);

/// Checks the covering property (every vertex within k hops of a center)
/// and the assignment consistency. Used by tests and DPSP_CHECKed by the
/// mechanisms in debug runs.
Status ValidateCovering(const Graph& graph, const Covering& covering);

/// Recomputes the nearest-center assignment for a given center set via
/// multi-source BFS; fails if some vertex is farther than k hops from all
/// centers.
Result<Covering> AssignToCenters(const Graph& graph,
                                 std::vector<VertexId> centers, int k);

}  // namespace dpsp

#endif  // DPSP_GRAPH_COVERING_H_
