// Minimum-weight perfect matching, the exact subroutine behind the private
// matching mechanism of Appendix B.2. Negative weights are permitted (the
// Laplace mechanism can push weights negative).
//
// Solver strategy (see DESIGN.md §1.3): the input is decomposed into
// connected components; each component is solved by
//   * exact bitmask dynamic programming when it has <= kMaxDpVertices
//     vertices (covers the paper's hourglass-gadget graphs, whose
//     components have 4 vertices), else
//   * the Hungarian algorithm when the component is bipartite with equal
//     sides (covers complete bipartite workloads), else
//   * Unimplemented (a general Blossom solver is out of scope; no paper
//     experiment needs it).

#ifndef DPSP_GRAPH_MATCHING_H_
#define DPSP_GRAPH_MATCHING_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

/// Components larger than this fall through to Hungarian (bipartite) or
/// Unimplemented.
inline constexpr int kMaxDpVertices = 20;

/// A perfect matching: one edge id per matched pair (V/2 edges total).
struct Matching {
  std::vector<EdgeId> edges;

  /// Sum of the matched edges' weights.
  double Weight(const EdgeWeights& w) const { return TotalWeight(w, edges); }
};

/// Minimum-weight perfect matching of the whole graph. Fails with
/// FailedPrecondition if no perfect matching exists, Unimplemented for
/// large non-bipartite components.
Result<Matching> MinWeightPerfectMatching(const Graph& graph,
                                          const EdgeWeights& w);

/// Exact exponential solver on an explicit vertex subset (all of whose
/// matched partners must also lie in the subset). Exposed for testing.
/// Requires subset size even and <= kMaxDpVertices.
Result<Matching> MinWeightPerfectMatchingDp(const Graph& graph,
                                            const EdgeWeights& w,
                                            const std::vector<VertexId>& subset);

/// Hungarian algorithm on a bipartite component given by its two sides.
/// Requires |left| == |right|. Exposed for testing.
Result<Matching> MinWeightPerfectMatchingHungarian(
    const Graph& graph, const EdgeWeights& w,
    const std::vector<VertexId>& left, const std::vector<VertexId>& right);

/// True iff `matching` covers every vertex exactly once with valid edges.
bool IsPerfectMatching(const Graph& graph, const Matching& matching);

}  // namespace dpsp

#endif  // DPSP_GRAPH_MATCHING_H_
