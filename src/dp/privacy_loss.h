// The privacy-loss value type behind the pluggable accounting API.
//
// A release is not inherently an "(epsilon, delta) spend": a Laplace
// release is pure eps-DP, a Gaussian release is most naturally
// rho-zero-concentrated-DP (zCDP), and either can be certified in the
// other currency at a known exchange rate. PrivacyLoss records a release
// in its natural currency together with the certificates the accountants
// consume:
//
//   * pure eps-DP          => exactly (eps^2 / 2)-zCDP  [BS16, Prop 1.4]
//   * rho-zCDP             => (rho + 2 sqrt(rho ln(1/delta)), delta)-DP
//                             for every delta in (0, 1)  [BS16, Prop 1.3;
//                             the optimal-alpha closed form of the RDP
//                             conversion]
//   * Gaussian, stddev sigma on an l2-sensitivity-s query
//                          => exactly (s^2 / (2 sigma^2))-zCDP
//   * approximate (eps, delta)-DP has NO exact zCDP rate, so such a loss
//     carries only its (eps, delta) certificate and a zCDP accountant
//     refuses it.
//
// Accountants (dp/accountant.h) compose whole ledgers of these; mechanisms
// charge the loss they actually consume instead of being flattened to
// (eps, delta) at the door.

#ifndef DPSP_DP_PRIVACY_LOSS_H_
#define DPSP_DP_PRIVACY_LOSS_H_

#include <string>

#include "common/status.h"
#include "dp/privacy.h"

namespace dpsp {

/// The natural currency of one release.
enum class LossKind {
  /// Pure eps-DP (Laplace with delta == 0). Carries an exact zCDP rate.
  kPure = 0,
  /// Approximate (eps, delta)-DP (Laplace calibrated through advanced
  /// composition). No exact zCDP rate exists.
  kApproximate = 1,
  /// rho-zCDP (the Gaussian mechanism's natural rate).
  kZcdp = 2,
};

/// Human-readable kind name ("pure", "approximate", "zcdp").
const char* LossKindName(LossKind kind);

/// The (eps, delta)-DP guarantee certified by rho-zCDP at target delta:
///   eps = rho + 2 sqrt(rho ln(1/delta))
/// (the alpha* = 1 + sqrt(ln(1/delta)/rho) optimum of the Renyi-DP
/// conversion). Requires rho >= 0 and delta in (0, 1); rho == 0 gives 0.
double ZcdpEpsilon(double rho, double delta);

/// The exact zCDP rate of a Gaussian release with noise stddev `sigma` on
/// a query of l2 sensitivity `l2_sensitivity` (already including any
/// neighbor-bound scaling): rho = l2_sensitivity^2 / (2 sigma^2).
double GaussianRho(double l2_sensitivity, double sigma);

/// One release's privacy loss: the natural currency plus the certificates
/// every accounting policy can consume. Construct through the factories;
/// a default-constructed PrivacyLoss is invalid (Validate() fails), which
/// ReleaseContext uses as the "charge the context's params" sentinel.
struct PrivacyLoss {
  LossKind kind = LossKind::kPure;
  /// The (eps, delta)-DP certificate (basic/advanced composition consume
  /// this). Always present.
  double epsilon = 0.0;
  double delta = 0.0;
  /// The zCDP certificate (rho-sum accountants consume this). Present for
  /// every kind except kApproximate.
  double rho = 0.0;

  /// Pure eps-DP: certificate (eps, 0), exact rate rho = eps^2 / 2.
  static PrivacyLoss Pure(double epsilon);

  /// Approximate (eps, delta)-DP with delta > 0. Carries no zCDP rate.
  static PrivacyLoss Approximate(double epsilon, double delta);

  /// Raw rho-zCDP. The (eps, delta) certificate is the conversion at the
  /// caller-chosen `certificate_delta` (defaults to 1e-9), so every loss
  /// remains composable under basic composition too.
  static Result<PrivacyLoss> Zcdp(double rho, double certificate_delta = 1e-9);

  /// A Gaussian release: stddev `sigma` on effective l2 sensitivity
  /// `l2_sensitivity`, with the classic-calibration (eps, delta) the noise
  /// was sized for as its approximate-DP certificate. rho is the exact
  /// rate l2_sensitivity^2 / (2 sigma^2).
  static Result<PrivacyLoss> Gaussian(double l2_sensitivity, double sigma,
                                      double certificate_epsilon,
                                      double certificate_delta);

  /// The loss of one classic-calibrated Gaussian release at `params`
  /// (dp/gaussian_mechanism.h, sigma = sqrt(2 ln(1.25/delta)) s / eps):
  /// rho = eps^2 / (4 ln(1.25/delta)), independent of the sensitivity —
  /// which is what lets the release pipeline budget-check a Gaussian
  /// build BEFORE the released vector's size is known. Requires
  /// 0 < eps < 1 and delta > 0 (the classic calibration's domain).
  static Result<PrivacyLoss> GaussianFromParams(const PrivacyParams& params);

  /// The loss one release of `params` costs under the Laplace-family
  /// calibration the mechanisms use: Pure(eps) when delta == 0, otherwise
  /// Approximate(eps, delta).
  static PrivacyLoss FromParams(const PrivacyParams& params);

  /// True when this loss carries an exact zCDP rate.
  bool has_rho() const { return kind != LossKind::kApproximate; }

  /// The exact zCDP rate; fails for kApproximate (no exact conversion
  /// from approximate DP to zCDP exists).
  Result<double> Rho() const;

  /// The (eps, delta)-DP guarantee at a caller-chosen delta: the exact
  /// conversion ZcdpEpsilon(rho, delta) for kinds carrying a rho, and the
  /// recorded certificate for kApproximate (whose own delta must not
  /// exceed `delta`).
  Result<PrivacyParams> ApproxDp(double delta) const;

  Status Validate() const;

  std::string ToString() const;
};

}  // namespace dpsp

#endif  // DPSP_DP_PRIVACY_LOSS_H_
