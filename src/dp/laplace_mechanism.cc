#include "dp/laplace_mechanism.h"

#include <cmath>

namespace dpsp {

Result<double> LaplaceScale(double sensitivity, const PrivacyParams& params) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  if (!(sensitivity > 0.0) || !std::isfinite(sensitivity)) {
    return Status::InvalidArgument("sensitivity must be positive and finite");
  }
  return sensitivity * params.neighbor_l1_bound / params.epsilon;
}

Result<std::vector<double>> LaplaceMechanism(const std::vector<double>& values,
                                             double sensitivity,
                                             const PrivacyParams& params,
                                             Rng* rng) {
  DPSP_ASSIGN_OR_RETURN(double scale, LaplaceScale(sensitivity, params));
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = values[i] + rng->Laplace(scale);
  }
  return out;
}

Result<double> LaplaceMechanismScalar(double value, double sensitivity,
                                      const PrivacyParams& params, Rng* rng) {
  DPSP_ASSIGN_OR_RETURN(double scale, LaplaceScale(sensitivity, params));
  return value + rng->Laplace(scale);
}

Status ValidateGamma(double gamma) {
  if (!(gamma > 0.0 && gamma < 1.0) || !std::isfinite(gamma)) {
    return Status::InvalidArgument("gamma must be in (0, 1)");
  }
  return Status::Ok();
}

Result<double> LaplaceTailBound(double scale, double gamma) {
  DPSP_RETURN_IF_ERROR(ValidateGamma(gamma));
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    return Status::InvalidArgument("scale must be positive and finite");
  }
  return scale * std::log(1.0 / gamma);
}

Result<double> LaplaceSumBound(double scale, int t, double gamma) {
  DPSP_RETURN_IF_ERROR(ValidateGamma(gamma));
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    return Status::InvalidArgument("scale must be positive and finite");
  }
  if (t < 0) {
    return Status::InvalidArgument("summand count must be non-negative");
  }
  return 4.0 * scale * std::sqrt(static_cast<double>(t) *
                                 std::log(2.0 / gamma));
}

}  // namespace dpsp
