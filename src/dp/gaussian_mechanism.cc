#include "dp/gaussian_mechanism.h"

#include <cmath>

namespace dpsp {

Result<double> GaussianSigma(double l2_sensitivity,
                             const PrivacyParams& params) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  if (!(l2_sensitivity > 0.0) || !std::isfinite(l2_sensitivity)) {
    return Status::InvalidArgument("l2 sensitivity must be positive");
  }
  if (params.epsilon >= 1.0) {
    return Status::InvalidArgument(
        "classic Gaussian mechanism requires eps < 1");
  }
  if (params.delta <= 0.0) {
    return Status::InvalidArgument("Gaussian mechanism requires delta > 0");
  }
  return std::sqrt(2.0 * std::log(1.25 / params.delta)) * l2_sensitivity *
         params.neighbor_l1_bound / params.epsilon;
}

Result<std::vector<double>> GaussianMechanism(
    const std::vector<double>& values, double l2_sensitivity,
    const PrivacyParams& params, Rng* rng) {
  DPSP_ASSIGN_OR_RETURN(double sigma, GaussianSigma(l2_sensitivity, params));
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = values[i] + rng->Gaussian(sigma);
  }
  return out;
}

double DistanceVectorL2Sensitivity(int num_queries) {
  DPSP_CHECK_MSG(num_queries >= 0, "query count must be non-negative");
  return std::sqrt(static_cast<double>(num_queries));
}

}  // namespace dpsp
