#include "dp/release_context.h"

#include <algorithm>
#include <limits>

#include "common/table.h"

namespace dpsp {

std::string ReleaseTelemetry::ToString() const {
  return StrFormat(
      "%s: %s sensitivity=%g scale=%g draws=%d wall=%.3fms",
      mechanism.c_str(), loss.Validate().ok()
                             ? loss.ToString().c_str()
                             : StrFormat("eps=%g delta=%g", epsilon,
                                         delta).c_str(),
      sensitivity, noise_scale, noise_draws, wall_ms);
}

ReleaseContext::ReleaseContext(const PrivacyParams& params, uint64_t seed,
                               AccountingPolicy policy)
    : params_(params),
      rng_(std::make_unique<Rng>(seed)),
      accountant_(Accountant::Create(policy)) {}

Result<ReleaseContext> ReleaseContext::Create(const PrivacyParams& params,
                                              uint64_t seed,
                                              AccountingPolicy policy) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  return ReleaseContext(params, seed, policy);
}

void ReleaseContext::SetTotalBudget(const PrivacyParams& budget,
                                    double delta_slack) {
  // A slack outside (0, 1) is a programming error: it would not fail
  // here but as a permanent, misleading "budget exhausted" on every
  // later charge (the zCDP conversion returns +inf epsilon).
  DPSP_CHECK_MSG(delta_slack > 0.0 && delta_slack < 1.0,
                 "delta_slack must be in (0, 1)");
  has_total_budget_ = true;
  total_budget_ = budget;
  delta_slack_ = delta_slack;
}

PrivacyParams ReleaseContext::SpentTotal() const {
  return accountant_->Total(delta_slack_);
}

PrivacyParams ReleaseContext::RemainingBudget() const {
  PrivacyParams remaining;
  if (!has_total_budget_) {
    remaining.epsilon = std::numeric_limits<double>::infinity();
    remaining.delta = std::numeric_limits<double>::infinity();
    return remaining;
  }
  // Headroom must predict ADMISSION: on a heterogeneous basic-policy
  // ledger the reported Total() can exceed the budget while the
  // uniformized advanced bound still admits, and clients pacing their
  // releases off this number must not stop while the server would grant.
  PrivacyParams spent =
      accountant_->AdmissionTotal(total_budget_, delta_slack_);
  remaining.epsilon = std::max(0.0, total_budget_.epsilon - spent.epsilon);
  remaining.delta = std::max(0.0, total_budget_.delta - spent.delta);
  return remaining;
}

Status ReleaseContext::CheckProspective(const std::string& label,
                                        const PrivacyLoss& loss) const {
  // Validate (and policy-check) the loss even without a ceiling, so a
  // release the active accountant cannot compose fails BEFORE any noise
  // is drawn rather than at the recording step. Only a budgeted context
  // pays for the prospective ledger copy.
  if (!has_total_budget_) return accountant_->CanRecord(loss);
  std::unique_ptr<Accountant> prospective = accountant_->Clone();
  DPSP_RETURN_IF_ERROR(prospective->Record(label, loss));
  if (prospective->WithinBudget(total_budget_, delta_slack_)) {
    return Status::Ok();
  }
  PrivacyParams total = prospective->Total(delta_slack_);
  return Status::FailedPrecondition(StrFormat(
      "privacy budget exhausted: release '%s' would bring the %s-composed "
      "total to eps=%g delta=%g, over the budget eps=%g delta=%g",
      label.c_str(), AccountingPolicyName(accountant_->policy()),
      total.epsilon, total.delta, total_budget_.epsilon,
      total_budget_.delta));
}

Status ReleaseContext::CheckBudgetFor(const std::string& label,
                                      const PrivacyLoss& loss) const {
  return CheckProspective(label, loss);
}

Status ReleaseContext::CheckBudgetFor(const std::string& label) const {
  return CheckProspective(label, ReleaseLoss());
}

Status ReleaseContext::LogIntentIfHooked(const std::string& label,
                                         const PrivacyLoss& loss,
                                         uint64_t* intent_lsn) {
  if (durability_hook_ == nullptr) {
    *intent_lsn = 0;
    return Status::Ok();
  }
  DPSP_ASSIGN_OR_RETURN(*intent_lsn, durability_hook_->LogIntent(label, loss));
  return Status::Ok();
}

Status ReleaseContext::ChargeReleaseLogged(std::string label, PrivacyLoss loss,
                                           uint64_t intent_lsn) {
  DPSP_RETURN_IF_ERROR(CheckProspective(label, loss));
  // Direct ChargeRelease callers reach here with no intent yet; log one
  // before the ledger moves so the WAL's intent-is-spent recovery rule
  // covers every mutation path.
  if (durability_hook_ != nullptr && intent_lsn == 0) {
    DPSP_RETURN_IF_ERROR(LogIntentIfHooked(label, loss, &intent_lsn));
  }
  DPSP_RETURN_IF_ERROR(accountant_->Record(label, loss));
  if (durability_hook_ != nullptr) {
    // A failed commit record leaves the charge in memory and an intent-
    // only record on disk — both sides still count it as spent, which is
    // the conservative direction. Surface the durability failure.
    DPSP_RETURN_IF_ERROR(durability_hook_->LogCommit(intent_lsn));
  }
  return Status::Ok();
}

Status ReleaseContext::ChargeRelease(std::string label, PrivacyLoss loss) {
  return ChargeReleaseLogged(std::move(label), loss, 0);
}

Status ReleaseContext::ChargeRelease(std::string label, double epsilon,
                                     double delta) {
  // PrivacyLoss::Validate (via the budget check) rejects out-of-range
  // (epsilon, delta) — no need to duplicate the bounds here.
  return ChargeRelease(std::move(label),
                       delta == 0.0
                           ? PrivacyLoss::Pure(epsilon)
                           : PrivacyLoss::Approximate(epsilon, delta));
}

Status ReleaseContext::ChargeRelease(std::string label) {
  return ChargeRelease(std::move(label), ReleaseLoss());
}

Status ReleaseContext::CommitRelease(ReleaseTelemetry t) {
  return CommitRelease(std::move(t), 0);
}

Status ReleaseContext::CommitRelease(ReleaseTelemetry t, uint64_t intent_lsn) {
  if (!t.loss.Validate().ok()) t.loss = ReleaseLoss();
  t.epsilon = t.loss.epsilon;
  t.delta = t.loss.delta;
  DPSP_RETURN_IF_ERROR(ChargeReleaseLogged(t.mechanism, t.loss, intent_lsn));
  telemetry_.push_back(std::move(t));
  return Status::Ok();
}

ReleaseContext ReleaseContext::Fork() {
  return ReleaseContext(params_, rng_->NextSeed(), accountant_->policy());
}

Status ReleaseContext::AbsorbShard(const ReleaseContext& shard) {
  // All-or-nothing: replay the shard's ledger — each entry in its
  // original PrivacyLoss currency — onto a scratch accountant first so a
  // budget failure leaves this context unchanged.
  std::unique_ptr<Accountant> prospective = accountant_->Clone();
  for (const AccountantEntry& e : shard.accountant().entries()) {
    DPSP_RETURN_IF_ERROR(prospective->Record(e.label, e.loss));
  }
  if (has_total_budget_ &&
      !prospective->WithinBudget(total_budget_, delta_slack_)) {
    PrivacyParams total = prospective->Total(delta_slack_);
    return Status::FailedPrecondition(StrFormat(
        "privacy budget exhausted: absorbing a shard of %d releases "
        "would bring the %s-composed total to eps=%g delta=%g, over the "
        "budget eps=%g delta=%g",
        shard.accountant().num_releases(),
        AccountingPolicyName(accountant_->policy()), total.epsilon,
        total.delta, total_budget_.epsilon, total_budget_.delta));
  }
  // Absorbed shard ledgers hit the WAL here, once, from the parent: each
  // entry gets its intent/commit pair before the in-memory install (the
  // usual WAL ordering). A logging failure aborts the absorb with this
  // ledger unchanged; whatever records made it down replay as spent,
  // which is the conservative direction.
  if (durability_hook_ != nullptr) {
    for (const AccountantEntry& e : shard.accountant().entries()) {
      DPSP_ASSIGN_OR_RETURN(uint64_t lsn,
                            durability_hook_->LogIntent(e.label, e.loss));
      DPSP_RETURN_IF_ERROR(durability_hook_->LogCommit(lsn));
    }
  }
  accountant_ = std::move(prospective);
  telemetry_.insert(telemetry_.end(), shard.telemetry_.begin(),
                    shard.telemetry_.end());
  return Status::Ok();
}

void ReleaseContext::RecordTelemetry(ReleaseTelemetry t) {
  telemetry_.push_back(std::move(t));
}

const ReleaseTelemetry* ReleaseContext::last_telemetry() const {
  return telemetry_.empty() ? nullptr : &telemetry_.back();
}

std::string ReleaseContext::ToString() const {
  std::string out = "ReleaseContext(\n  params: " + params_.ToString() + "\n";
  if (has_total_budget_) {
    out += "  total budget: " + total_budget_.ToString() + "\n";
  }
  out += "  " + accountant_->ToString() + "\n";
  for (const ReleaseTelemetry& t : telemetry_) {
    out += "  release " + t.ToString() + "\n";
  }
  out += ")";
  return out;
}

}  // namespace dpsp
