#include "dp/release_context.h"

#include "common/table.h"

namespace dpsp {

std::string ReleaseTelemetry::ToString() const {
  return StrFormat(
      "%s: eps=%g delta=%g sensitivity=%g scale=%g draws=%d wall=%.3fms",
      mechanism.c_str(), epsilon, delta, sensitivity, noise_scale,
      noise_draws, wall_ms);
}

ReleaseContext::ReleaseContext(const PrivacyParams& params, uint64_t seed)
    : params_(params),
      rng_(std::make_unique<Rng>(seed)),
      accountant_(std::make_unique<PrivacyAccountant>()) {}

Result<ReleaseContext> ReleaseContext::Create(const PrivacyParams& params,
                                              uint64_t seed) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  return ReleaseContext(params, seed);
}

void ReleaseContext::SetTotalBudget(const PrivacyParams& budget,
                                    double delta_slack) {
  has_total_budget_ = true;
  total_budget_ = budget;
  delta_slack_ = delta_slack;
}

namespace {

bool Fits(const PrivacyParams& total, const PrivacyParams& budget) {
  return total.epsilon <= budget.epsilon + 1e-12 &&
         total.delta <= budget.delta + 1e-12;
}

}  // namespace

Status ReleaseContext::CheckProspective(const std::string& label,
                                        double epsilon, double delta) const {
  if (!has_total_budget_) return Status::Ok();
  // Check against a scratch copy so nothing is recorded.
  PrivacyAccountant prospective = *accountant_;
  DPSP_RETURN_IF_ERROR(prospective.Record(label, epsilon, delta));
  // The total fits if EITHER composition theorem certifies it: a pure
  // (delta = 0) budget is satisfiable by the basic total even when the
  // smaller-epsilon advanced total carries the delta_slack.
  if (Fits(prospective.BasicTotal(), total_budget_)) return Status::Ok();
  Result<PrivacyParams> advanced = prospective.AdvancedTotal(delta_slack_);
  if (advanced.ok() && Fits(*advanced, total_budget_)) return Status::Ok();
  PrivacyParams total = prospective.BestTotal(delta_slack_);
  return Status::FailedPrecondition(StrFormat(
      "privacy budget exhausted: release '%s' would bring the total to "
      "eps=%g delta=%g, over the budget eps=%g delta=%g",
      label.c_str(), total.epsilon, total.delta, total_budget_.epsilon,
      total_budget_.delta));
}

Status ReleaseContext::CheckBudgetFor(const std::string& label) const {
  return CheckProspective(label, params_.epsilon, params_.delta);
}

Status ReleaseContext::ChargeRelease(std::string label, double epsilon,
                                     double delta) {
  DPSP_RETURN_IF_ERROR(CheckProspective(label, epsilon, delta));
  return accountant_->Record(std::move(label), epsilon, delta);
}

Status ReleaseContext::ChargeRelease(std::string label) {
  return ChargeRelease(std::move(label), params_.epsilon, params_.delta);
}

Status ReleaseContext::CommitRelease(ReleaseTelemetry t) {
  t.epsilon = params_.epsilon;
  t.delta = params_.delta;
  DPSP_RETURN_IF_ERROR(
      ChargeRelease(t.mechanism, t.epsilon, t.delta));
  telemetry_.push_back(std::move(t));
  return Status::Ok();
}

ReleaseContext ReleaseContext::Fork() {
  return ReleaseContext(params_, rng_->NextSeed());
}

Status ReleaseContext::AbsorbShard(const ReleaseContext& shard) {
  // All-or-nothing: replay the shard's ledger onto a scratch accountant
  // first so a budget failure leaves this context unchanged.
  PrivacyAccountant prospective = *accountant_;
  for (const AccountantEntry& e : shard.accountant().entries()) {
    DPSP_RETURN_IF_ERROR(prospective.Record(e.label, e.epsilon, e.delta));
  }
  if (has_total_budget_) {
    bool fits = Fits(prospective.BasicTotal(), total_budget_);
    if (!fits) {
      Result<PrivacyParams> advanced = prospective.AdvancedTotal(delta_slack_);
      fits = advanced.ok() && Fits(*advanced, total_budget_);
    }
    if (!fits) {
      PrivacyParams total = prospective.BestTotal(delta_slack_);
      return Status::FailedPrecondition(StrFormat(
          "privacy budget exhausted: absorbing a shard of %d releases "
          "would bring the total to eps=%g delta=%g, over the budget "
          "eps=%g delta=%g",
          shard.accountant().num_releases(), total.epsilon, total.delta,
          total_budget_.epsilon, total_budget_.delta));
    }
  }
  *accountant_ = std::move(prospective);
  telemetry_.insert(telemetry_.end(), shard.telemetry_.begin(),
                    shard.telemetry_.end());
  return Status::Ok();
}

void ReleaseContext::RecordTelemetry(ReleaseTelemetry t) {
  telemetry_.push_back(std::move(t));
}

const ReleaseTelemetry* ReleaseContext::last_telemetry() const {
  return telemetry_.empty() ? nullptr : &telemetry_.back();
}

std::string ReleaseContext::ToString() const {
  std::string out = "ReleaseContext(\n  params: " + params_.ToString() + "\n";
  if (has_total_budget_) {
    out += "  total budget: " + total_budget_.ToString() + "\n";
  }
  out += "  " + accountant_->ToString() + "\n";
  for (const ReleaseTelemetry& t : telemetry_) {
    out += "  release " + t.ToString() + "\n";
  }
  out += ")";
  return out;
}

}  // namespace dpsp
