// The Laplace mechanism (Lemma 3.2): release f(w) + Lap(sensitivity/eps)^k.
//
// In the private edge-weight model a query's sensitivity is measured
// against the l1 neighboring relation, so the effective noise scale is
// sensitivity * neighbor_l1_bound / epsilon.

#ifndef DPSP_DP_LAPLACE_MECHANISM_H_
#define DPSP_DP_LAPLACE_MECHANISM_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dp/privacy.h"

namespace dpsp {

/// Adds i.i.d. Laplace(sensitivity * rho / epsilon) noise to each coordinate
/// of `values`, where rho = params.neighbor_l1_bound. `sensitivity` is the
/// l1 sensitivity of the whole vector-valued query per unit of l1 change in
/// the weights. Uses only params.epsilon (pure DP); callers that spend an
/// approximate-DP budget derive their per-query epsilon via composition.h
/// first.
Result<std::vector<double>> LaplaceMechanism(const std::vector<double>& values,
                                             double sensitivity,
                                             const PrivacyParams& params,
                                             Rng* rng);

/// Single-value convenience overload.
Result<double> LaplaceMechanismScalar(double value, double sensitivity,
                                      const PrivacyParams& params, Rng* rng);

/// The noise scale the mechanism would use; exposed so analyses and tests
/// can reason about it.
Result<double> LaplaceScale(double sensitivity, const PrivacyParams& params);

/// OK iff gamma is a usable failure probability (0 < gamma < 1). The
/// shared validation every gamma-taking entry point goes through.
Status ValidateGamma(double gamma);

/// Tail bound helper: with probability 1 - gamma a Lap(b) sample has
/// magnitude at most b * ln(1/gamma) (Definition 3.1). Fails (instead of
/// aborting the process) on non-positive scale or gamma outside (0, 1) —
/// gamma often arrives from user-supplied options.
Result<double> LaplaceTailBound(double scale, double gamma);

/// Concentration helper (Lemma 3.1, [CSS10]): the sum of t independent
/// Lap(b) samples has magnitude at most 4 b sqrt(t ln(2/gamma)) with
/// probability 1 - gamma. Same validation behaviour as LaplaceTailBound.
Result<double> LaplaceSumBound(double scale, int t, double gamma);

}  // namespace dpsp

#endif  // DPSP_DP_LAPLACE_MECHANISM_H_
