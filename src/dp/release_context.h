// The shared execution context every release pipeline runs through.
//
// A deployment serving many mechanisms needs one place that (a) validates
// the privacy parameters exactly once, (b) meters every release through the
// budget accountant, (c) supplies the seeded randomness, and (d) collects
// release telemetry (sensitivity, noise scale, draw count, wall time) for
// monitoring. ReleaseContext bundles all four; OracleRegistry factories
// (core/oracle_registry.h) take one instead of raw (params, rng) pairs.
//
// Accounting is pluggable: Create(params, seed, policy) selects which
// composition theorem the ledger certifies totals and admits releases by
// (dp/accountant.h). Every release is metered as a PrivacyLoss — its
// natural currency (pure / approximate / zCDP) — so a Gaussian release can
// spend its exact rho rate instead of being flattened to (eps, delta).

#ifndef DPSP_DP_RELEASE_CONTEXT_H_
#define DPSP_DP_RELEASE_CONTEXT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/table.h"
#include "dp/accountant.h"
#include "dp/privacy.h"
#include "dp/privacy_loss.h"

namespace dpsp {

/// What one release through the pipeline did, for monitoring dashboards.
struct ReleaseTelemetry {
  /// Mechanism name as registered (e.g. "tree-recursive").
  std::string mechanism;
  /// Budget drawn for the release, as its (eps, delta) certificate.
  double epsilon = 0.0;
  double delta = 0.0;
  /// The loss the release was metered at. Left default (invalid), the
  /// committing context fills it with ReleaseLoss().
  PrivacyLoss loss;
  /// The l1 sensitivity the noise was calibrated to (0 when exact).
  double sensitivity = 0.0;
  /// Per-value noise scale of the release (0 when exact).
  double noise_scale = 0.0;
  /// Number of noise draws the release consumed (0 when exact).
  int noise_draws = 0;
  /// Wall-clock construction time of the released object.
  double wall_ms = 0.0;

  std::string ToString() const;
};

/// Bundles the per-release PrivacyParams (validated once at construction),
/// the budget accountant, the seeded Rng, and release telemetry. Movable,
/// not copyable: a context is one ledger.
class ReleaseContext {
 public:
  /// Validates `params` once; every release built through this context may
  /// rely on them being valid. The context owns a fresh Rng seeded with
  /// `seed` and an empty accountant for `policy` (kBasic preserves the
  /// historical totals and admission bit-for-bit).
  static Result<ReleaseContext> Create(
      const PrivacyParams& params, uint64_t seed,
      AccountingPolicy policy = AccountingPolicy::kBasic);

  ReleaseContext(ReleaseContext&&) = default;
  ReleaseContext& operator=(ReleaseContext&&) = default;
  ReleaseContext(const ReleaseContext&) = delete;
  ReleaseContext& operator=(const ReleaseContext&) = delete;

  /// The per-release budget mechanisms draw. Always valid.
  const PrivacyParams& params() const { return params_; }
  Rng* rng() { return rng_.get(); }
  Accountant& accountant() { return *accountant_; }
  const Accountant& accountant() const { return *accountant_; }
  AccountingPolicy policy() const { return accountant_->policy(); }

  /// Write-ahead persistence for the ledger. When a hook is installed,
  /// every charge brackets the in-memory mutation with an intent record
  /// (before the mechanism runs — a crash mid-build replays as spent,
  /// never resurrected) and a commit record (after the accountant
  /// records). The dp layer stays storage-free: the hook interface is
  /// implemented over the src/store budget WAL by the serving layer.
  class DurabilityHook {
   public:
    virtual ~DurabilityHook() = default;
    /// Durably logs that `loss` is about to be charged under `label`;
    /// returns an opaque intent id (LSN). Failure refuses the charge
    /// before the ledger moves.
    virtual Result<uint64_t> LogIntent(const std::string& label,
                                       const PrivacyLoss& loss) = 0;
    /// Durably logs that the intent's charge landed in the ledger.
    virtual Status LogCommit(uint64_t intent_lsn) = 0;
  };

  /// Installs (or, with nullptr, removes) the durability hook. Non-owning;
  /// the hook must outlive every charge. Fork() children do NOT inherit
  /// the hook — shard ledgers are logged once, at AbsorbShard time, by
  /// the parent.
  void SetDurabilityHook(DurabilityHook* hook) { durability_hook_ = hook; }
  DurabilityHook* durability_hook() const { return durability_hook_; }

  /// The loss one release of params() costs under the Laplace-family
  /// calibration: Pure(eps) when delta == 0, Approximate otherwise.
  /// Gaussian-calibrated factories charge PrivacyLoss::GaussianFromParams
  /// instead (their natural zCDP rate).
  PrivacyLoss ReleaseLoss() const { return PrivacyLoss::FromParams(params_); }

  /// Installs a cross-release ceiling: subsequent ChargeRelease calls fail
  /// (without recording) once the accountant's composed total would exceed
  /// `budget` under the active policy. `delta_slack` is the advanced-
  /// composition slack and the zCDP conversion's target delta.
  void SetTotalBudget(const PrivacyParams& budget, double delta_slack = 1e-9);
  bool has_total_budget() const { return has_total_budget_; }
  const PrivacyParams& total_budget() const { return total_budget_; }
  double delta_slack() const { return delta_slack_; }

  /// The policy-certified total of everything charged so far.
  PrivacyParams SpentTotal() const;

  /// Headroom left under the total budget before admission refuses:
  /// budget minus the accountant's AdmissionTotal, clamped at zero —
  /// which can exceed budget minus SpentTotal() on ledgers the admission
  /// rule certifies through a tighter sound bound than the reported
  /// total. Infinite in both coordinates when no total budget is
  /// installed.
  PrivacyParams RemainingBudget() const;

  /// Meters one release of `loss` under `label`. With a total budget
  /// installed, fails with FailedPrecondition when the ledger would exceed
  /// it under the active policy, leaving the ledger unchanged.
  Status ChargeRelease(std::string label, PrivacyLoss loss);

  /// Legacy (eps, delta) metering (pure when delta == 0).
  Status ChargeRelease(std::string label, double epsilon, double delta);

  /// Meters one release of the context's own params().
  Status ChargeRelease(std::string label);

  /// The same budget check as ChargeRelease without recording anything:
  /// OK iff one more release of `loss` would still fit. Factories call
  /// this BEFORE building so an exhausted context refuses without paying
  /// construction cost or drawing noise.
  Status CheckBudgetFor(const std::string& label, const PrivacyLoss& loss) const;

  /// CheckBudgetFor one release of params() (ReleaseLoss()).
  Status CheckBudgetFor(const std::string& label) const;

  /// Atomically meters and records one release built by a factory: charges
  /// t.loss (filling it with ReleaseLoss() when left default), mirrors its
  /// (eps, delta) certificate into t.epsilon/t.delta, and appends the
  /// telemetry — or, when the total budget would be exceeded, records
  /// nothing and fails, in which case the caller must discard the built
  /// object unreleased. Factories call this AFTER a successful build so
  /// failed builds never consume budget.
  Status CommitRelease(ReleaseTelemetry t);

  /// CommitRelease against an intent already logged by the durability
  /// hook (the MeteredBuild/MeteredUpdate path; `intent_lsn` == 0 means
  /// "no intent yet" and a hooked context logs one here).
  Status CommitRelease(ReleaseTelemetry t, uint64_t intent_lsn);

  /// The one metering protocol every factory runs: check the budget BEFORE
  /// building (an exhausted context refuses without paying construction
  /// cost or drawing noise), time the build, then atomically commit the
  /// release — so a mechanism cannot mis-order the sequence. `loss` is the
  /// PrivacyLoss the release consumes (the context's ReleaseLoss() in the
  /// three-argument overload; Gaussian-calibrated factories pass their
  /// zCDP rate). `build` is a nullary callable returning Result<P> for
  /// some pointer-like P (the factories return
  /// Result<std::unique_ptr<Oracle>>); `annotate` fills the mechanism-
  /// specific telemetry fields (sensitivity, noise scale, draw count) from
  /// the built object: annotate(*pointer, telemetry). Wall time and the
  /// charged loss are filled here. When the commit fails the built object
  /// is discarded unreleased and nothing is recorded.
  template <typename Builder, typename Annotate>
  auto MeteredBuild(const std::string& mechanism, const PrivacyLoss& loss,
                    Builder&& build, Annotate&& annotate) -> decltype(build()) {
    WallTimer timer;
    DPSP_RETURN_IF_ERROR(CheckBudgetFor(mechanism, loss));
    // With a durability hook: log the intent BEFORE the mechanism draws
    // noise, so a crash mid-build recovers as spent (the build may have
    // released output we can no longer see).
    uint64_t intent_lsn = 0;
    DPSP_RETURN_IF_ERROR(LogIntentIfHooked(mechanism, loss, &intent_lsn));
    auto built = build();
    if (!built.ok()) return built.status();
    ReleaseTelemetry t;
    t.mechanism = mechanism;
    t.loss = loss;
    annotate(*built.value(), t);
    t.wall_ms = timer.Ms();
    DPSP_RETURN_IF_ERROR(CommitRelease(std::move(t), intent_lsn));
    return built;
  }

  template <typename Builder, typename Annotate>
  auto MeteredBuild(const std::string& mechanism, Builder&& build,
                    Annotate&& annotate) -> decltype(build()) {
    return MeteredBuild(mechanism, ReleaseLoss(),
                        std::forward<Builder>(build),
                        std::forward<Annotate>(annotate));
  }

  /// The metering protocol for PARTIAL releases — an updatable oracle
  /// redrawing only its dirty blocks. Same discipline as MeteredBuild,
  /// adapted to in-place mutation: the budget is checked for `loss` (the
  /// dirty fraction of a full release, planned by the caller BEFORE any
  /// mutation) first, so an exhausted context refuses with the released
  /// structure untouched; then `apply` (a nullary callable returning
  /// Status) mutates the structure; then the charge and telemetry commit
  /// atomically. `annotate` fills the update-specific telemetry fields:
  /// annotate(telemetry). The commit re-runs the same deterministic check
  /// the protocol opened with, so on a single-threaded ledger it cannot
  /// fail after apply succeeded.
  template <typename Apply, typename Annotate>
  Status MeteredUpdate(const std::string& mechanism, const PrivacyLoss& loss,
                       Apply&& apply, Annotate&& annotate) {
    WallTimer timer;
    DPSP_RETURN_IF_ERROR(CheckBudgetFor(mechanism, loss));
    // Intent goes down before apply() mutates the released structure:
    // a crash mid-epoch recovers as spent.
    uint64_t intent_lsn = 0;
    DPSP_RETURN_IF_ERROR(LogIntentIfHooked(mechanism, loss, &intent_lsn));
    DPSP_RETURN_IF_ERROR(apply());
    ReleaseTelemetry t;
    t.mechanism = mechanism;
    t.loss = loss;
    annotate(t);
    t.wall_ms = timer.Ms();
    return CommitRelease(std::move(t), intent_lsn);
  }

  /// A shard-local child context for sharded build/serve pipelines: the
  /// same validated params and accounting policy, a fresh Rng seeded from
  /// this context's stream, an empty ledger, and no total budget (the
  /// parent's ceiling is enforced when the shard is absorbed). Build
  /// per-shard releases through the child, then compose the spend back
  /// with AbsorbShard.
  ReleaseContext Fork();

  /// Composes a shard's ledger into this one atomically: every PrivacyLoss
  /// recorded by `shard` is re-charged here — in its original currency —
  /// under the parent's total budget; all of them, or (when the composed
  /// total would exceed the budget) none, with FailedPrecondition — and
  /// the shard's telemetry is appended. The resulting ledger is identical
  /// to having built the shard's releases through this context directly.
  Status AbsorbShard(const ReleaseContext& shard);

  /// Appends one telemetry record without charging (used by the exact,
  /// non-private oracle).
  void RecordTelemetry(ReleaseTelemetry t);
  const std::vector<ReleaseTelemetry>& telemetry() const {
    return telemetry_;
  }
  /// The most recent record, or nullptr when nothing was released yet.
  const ReleaseTelemetry* last_telemetry() const;

  /// Ledger plus telemetry summary, human-readable.
  std::string ToString() const;

 private:
  ReleaseContext(const PrivacyParams& params, uint64_t seed,
                 AccountingPolicy policy);

  Status CheckProspective(const std::string& label,
                          const PrivacyLoss& loss) const;

  // The single charge choke point: prospective check, optional WAL
  // intent (when none was logged yet), accountant record, WAL commit.
  Status ChargeReleaseLogged(std::string label, PrivacyLoss loss,
                             uint64_t intent_lsn);

  // LogIntent through the hook when one is installed; no-op otherwise.
  Status LogIntentIfHooked(const std::string& label, const PrivacyLoss& loss,
                           uint64_t* intent_lsn);

  PrivacyParams params_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<Accountant> accountant_;
  std::vector<ReleaseTelemetry> telemetry_;
  bool has_total_budget_ = false;
  PrivacyParams total_budget_;
  double delta_slack_ = 1e-9;
  // Non-owning; see SetDurabilityHook.
  DurabilityHook* durability_hook_ = nullptr;
};

}  // namespace dpsp

#endif  // DPSP_DP_RELEASE_CONTEXT_H_
