// The (classic) Gaussian mechanism: an alternative (eps, delta)-DP
// calibration for vector releases.
//
// Not used by the paper, which calibrates Laplace noise through advanced
// composition (Lemma 3.4). Both routes add per-coordinate noise
// ~ sqrt(q)/eps when releasing q sensitivity-1 values; the constants
// differ, and the Gaussian's lighter tails often win on max-error over
// many queries. BoundedWeightOracle exposes both so bench_bounded_weight's
// ablation can compare them (DESIGN.md E4).
//
// Calibration (Dwork & Roth, Thm A.1): for eps in (0, 1),
//   sigma = sqrt(2 ln(1.25/delta)) * l2_sensitivity / eps.

#ifndef DPSP_DP_GAUSSIAN_MECHANISM_H_
#define DPSP_DP_GAUSSIAN_MECHANISM_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dp/privacy.h"

namespace dpsp {

/// The noise stddev the Gaussian mechanism uses for the given l2
/// sensitivity (per unit of l1 weight change; multiplied by
/// params.neighbor_l1_bound). Requires 0 < eps < 1 and delta > 0.
Result<double> GaussianSigma(double l2_sensitivity,
                             const PrivacyParams& params);

/// Adds i.i.d. N(0, sigma^2) noise to each coordinate, with sigma from
/// GaussianSigma. (eps, delta)-DP for a query whose l2 sensitivity against
/// neighboring weights is `l2_sensitivity * neighbor_l1_bound`.
Result<std::vector<double>> GaussianMechanism(const std::vector<double>& values,
                                              double l2_sensitivity,
                                              const PrivacyParams& params,
                                              Rng* rng);

/// l2 sensitivity of releasing q distances, each of which changes by at
/// most 1 per unit l1 weight change: sqrt(q).
double DistanceVectorL2Sensitivity(int num_queries);

}  // namespace dpsp

#endif  // DPSP_DP_GAUSSIAN_MECHANISM_H_
