// Composition theorems (Lemmas 3.3 and 3.4) and their numeric inversion.
//
// Basic composition: k mechanisms, each (eps0, delta0)-DP, compose to
// (k eps0, k delta0)-DP.
//
// Advanced composition [DRV10, DR13]: k mechanisms, each (eps0, delta0)-DP,
// compose to (eps', k delta0 + delta')-DP with
//     eps' = sqrt(2 k ln(1/delta')) eps0 + k eps0 (e^{eps0} - 1).
//
// Mechanisms in this library spend a *total* (eps, delta) budget, so they
// need the inverse map: the largest per-query eps0 whose k-fold composition
// stays within the budget. The forward formula is strictly increasing in
// eps0, so bisection inverts it exactly (to ~1e-12 relative precision).

#ifndef DPSP_DP_COMPOSITION_H_
#define DPSP_DP_COMPOSITION_H_

#include "common/status.h"

namespace dpsp {

/// Total epsilon under basic composition (Lemma 3.3).
double BasicCompositionEpsilon(int k, double eps0);

/// Total epsilon under advanced composition (Lemma 3.4) with slack delta'.
/// Requires k >= 1, eps0 > 0, delta_prime in (0, 1).
double AdvancedCompositionEpsilon(int k, double eps0, double delta_prime);

/// Largest per-query eps0 such that k pure-DP queries compose (advanced,
/// slack delta_prime) to total epsilon at most eps_total. Fails on invalid
/// arguments.
Result<double> PerQueryEpsilonAdvanced(int k, double eps_total,
                                       double delta_prime);

/// Per-query epsilon under basic composition: eps_total / k.
Result<double> PerQueryEpsilonBasic(int k, double eps_total);

/// Chooses the better (larger) per-query epsilon between basic composition
/// and advanced composition with slack delta_total: for small k basic wins,
/// for large k advanced wins. delta_total == 0 forces basic.
Result<double> PerQueryEpsilonBest(int k, double eps_total,
                                   double delta_total);

}  // namespace dpsp

#endif  // DPSP_DP_COMPOSITION_H_
