#include "dp/privacy.h"

#include <cmath>

#include "common/table.h"

namespace dpsp {

Status PrivacyParams::Validate() const {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (delta < 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in [0, 1)");
  }
  if (!(neighbor_l1_bound > 0.0) || !std::isfinite(neighbor_l1_bound)) {
    return Status::InvalidArgument("neighbor_l1_bound must be positive");
  }
  return Status::Ok();
}

std::string PrivacyParams::ToString() const {
  return StrFormat("PrivacyParams(eps=%g, delta=%g, rho=%g)", epsilon, delta,
                   neighbor_l1_bound);
}

Result<double> L1Distance(const EdgeWeights& a, const EdgeWeights& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("weight vectors differ in length");
  }
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

Result<bool> AreNeighbors(const EdgeWeights& a, const EdgeWeights& b,
                          const PrivacyParams& params) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_ASSIGN_OR_RETURN(double dist, L1Distance(a, b));
  return dist <= params.neighbor_l1_bound + 1e-12;
}

}  // namespace dpsp
