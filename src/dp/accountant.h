// Privacy budget accounting across multiple releases.
//
// A deployment rarely runs one mechanism once: the navigation example
// releases a weight map every refresh interval. The accountant tracks the
// (eps_i, delta_i) of each registered release and reports the tightest
// total guarantee this library can certify: the better of basic
// composition (Lemma 3.3) and — for homogeneous pure-DP releases —
// advanced composition (Lemma 3.4) at a caller-chosen slack delta'.

#ifndef DPSP_DP_ACCOUNTANT_H_
#define DPSP_DP_ACCOUNTANT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dp/privacy.h"

namespace dpsp {

/// One registered release.
struct AccountantEntry {
  std::string label;
  double epsilon = 0.0;
  double delta = 0.0;
};

/// Tracks spent budget; queries never consume anything.
class PrivacyAccountant {
 public:
  /// Registers a release. Fails on non-positive epsilon or delta outside
  /// [0, 1).
  Status Record(std::string label, double epsilon, double delta);

  /// Convenience overload for PrivacyParams.
  Status Record(std::string label, const PrivacyParams& params);

  int num_releases() const { return static_cast<int>(entries_.size()); }
  const std::vector<AccountantEntry>& entries() const { return entries_; }

  /// Total guarantee under basic composition: (sum eps_i, sum delta_i).
  PrivacyParams BasicTotal() const;

  /// Total guarantee under advanced composition with slack delta_prime,
  /// treating every release as (eps_max, delta_max)-DP where eps_max /
  /// delta_max are the largest registered values (Lemma 3.4 requires a
  /// uniform per-mechanism guarantee). Fails if nothing was recorded or
  /// delta_prime is outside (0, 1).
  Result<PrivacyParams> AdvancedTotal(double delta_prime) const;

  /// The smaller-epsilon of BasicTotal and AdvancedTotal(delta_prime);
  /// falls back to basic when advanced is inapplicable.
  PrivacyParams BestTotal(double delta_prime) const;

  /// True iff BestTotal(delta_prime) fits within `budget`.
  bool WithinBudget(const PrivacyParams& budget, double delta_prime) const;

  /// Human-readable ledger.
  std::string ToString() const;

 private:
  std::vector<AccountantEntry> entries_;
};

}  // namespace dpsp

#endif  // DPSP_DP_ACCOUNTANT_H_
