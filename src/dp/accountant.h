// Pluggable privacy-loss accounting across multiple releases.
//
// A deployment rarely runs one mechanism once: the navigation example
// releases a weight map every refresh interval. The ledger records each
// release as a PrivacyLoss (its natural currency: pure, approximate, or
// zCDP — dp/privacy_loss.h) and an accounting POLICY decides which
// composition theorem certifies the total:
//
//   kBasic     Lemma 3.3 totals (sum eps_i, sum delta_i) — the historical
//              default, bit-compatible with what the pipeline has always
//              reported. Admission still accepts a release when EITHER
//              basic or advanced composition fits (the pipeline's
//              historical behaviour), so switching policies never admits
//              less than before.
//   kAdvanced  the smaller-epsilon of basic and advanced composition
//              (Lemma 3.4) at a caller-chosen slack delta'.
//   kZcdp      rho-sum composition with the optimal-alpha conversion to
//              (eps, delta) at a caller-chosen target delta. Requires
//              every entry to carry an exact zCDP rate (pure or Gaussian
//              releases; approximate-DP entries are refused at Record).
//
// The pipeline composes against the abstract Accountant interface;
// ReleaseContext::Create(params, seed, policy) picks the implementation.

#ifndef DPSP_DP_ACCOUNTANT_H_
#define DPSP_DP_ACCOUNTANT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dp/privacy.h"
#include "dp/privacy_loss.h"

namespace dpsp {

/// Which composition theorem certifies (and admits against) the total.
enum class AccountingPolicy {
  kBasic = 0,
  kAdvanced = 1,
  kZcdp = 2,
};

/// Human-readable policy name ("basic", "advanced", "zcdp").
const char* AccountingPolicyName(AccountingPolicy policy);

/// One registered release.
struct AccountantEntry {
  std::string label;
  PrivacyLoss loss;
};

/// The abstract accounting interface: a ledger of PrivacyLoss entries plus
/// every composition rule the library knows. Queries never consume
/// anything. Subclasses fix the POLICY: which total Total() certifies and
/// which rule WithinBudget() admits by. PrivacyAccountant is the
/// historical name for the interface and remains an alias.
class Accountant {
 public:
  /// The implementation for `policy` with an empty ledger.
  static std::unique_ptr<Accountant> Create(AccountingPolicy policy);

  virtual ~Accountant() = default;

  virtual AccountingPolicy policy() const = 0;

  /// A deep copy (ledger included); used for prospective budget checks.
  virtual std::unique_ptr<Accountant> Clone() const = 0;

  /// Registers a release. Fails — with the ledger unchanged — on an
  /// invalid loss or a loss kind this policy cannot compose (a zCDP
  /// accountant refuses approximate-DP entries).
  Status Record(std::string label, PrivacyLoss loss);

  /// OK iff Record would accept `loss` (validity + policy check) —
  /// without touching the ledger or copying anything.
  Status CanRecord(const PrivacyLoss& loss) const;

  /// Legacy (eps, delta) entry: pure when delta == 0, approximate
  /// otherwise. Fails on non-positive epsilon or delta outside [0, 1).
  Status Record(std::string label, double epsilon, double delta);

  /// Convenience overload for PrivacyParams.
  Status Record(std::string label, const PrivacyParams& params);

  int num_releases() const { return static_cast<int>(entries_.size()); }
  const std::vector<AccountantEntry>& entries() const { return entries_; }

  /// Total guarantee under basic composition (Lemma 3.3) of every entry's
  /// (eps, delta) certificate: (sum eps_i, sum delta_i). Defined for every
  /// ledger — it is the baseline the tighter policies are compared to.
  PrivacyParams BasicTotal() const;

  /// Total guarantee under advanced composition (Lemma 3.4) with slack
  /// delta_prime. Lemma 3.4 requires a uniform per-mechanism guarantee, so
  /// a HETEROGENEOUS ledger fails with a detail naming the maximal entry
  /// rather than silently uniformizing every release to (eps_max,
  /// delta_max) and certifying a misleadingly loose total. Also fails if
  /// nothing was recorded or delta_prime is outside (0, 1).
  Result<PrivacyParams> AdvancedTotal(double delta_prime) const;

  /// The smaller-epsilon of BasicTotal and AdvancedTotal(delta_prime);
  /// falls back to basic when advanced is inapplicable.
  PrivacyParams BestTotal(double delta_prime) const;

  /// Sum of the entries' exact zCDP rates; fails if any entry carries
  /// none (kApproximate). An empty ledger sums to 0.
  Result<double> TotalRho() const;

  /// The total this accountant's policy certifies for the ledger, at
  /// slack / target delta `delta_slack` (advanced composition's delta',
  /// the zCDP conversion's target delta). Empty ledgers total (0, 0).
  virtual PrivacyParams Total(double delta_slack) const = 0;

  /// The smallest-epsilon total among the sound bounds this policy's
  /// ADMISSION rule could certify `budget` through — what WithinBudget
  /// effectively compares to it. For the basic and advanced policies this
  /// takes the uniformized Lemma 3.4 bound into account where its delta
  /// fits the budget (a pure budget only ever admits through Lemma 3.3),
  /// so it can be smaller than the reported Total(); headroom derived
  /// from it (ReleaseContext::RemainingBudget) predicts admission instead
  /// of under- or over-reporting it.
  virtual PrivacyParams AdmissionTotal(const PrivacyParams& budget,
                                       double delta_slack) const;

  /// True iff the composed spend fits within `budget` under this policy.
  /// The basic and advanced policies admit when EITHER Lemma 3.3 or 3.4
  /// certifies the fit — for heterogeneous ledgers the 3.4 bound is taken
  /// over the ledger uniformized to (eps_max, delta_max), a sound upper
  /// bound, so admission matches the pipeline's historical rule even
  /// where AdvancedTotal refuses to report that number. The zCDP policy
  /// requires its converted total to fit, so the budget must carry
  /// delta >= delta_slack once anything was recorded.
  virtual bool WithinBudget(const PrivacyParams& budget,
                            double delta_slack) const = 0;

  /// Human-readable ledger.
  std::string ToString() const;

 protected:
  /// Policy-specific acceptance check for one (already-validated) loss.
  virtual Status CheckLoss(const PrivacyLoss& loss) const;

  /// The ledger-total line ToString ends with; policies override to show
  /// their own currency.
  virtual std::string TotalLine() const;

  std::vector<AccountantEntry> entries_;
};

/// Historical name of the accounting interface.
using PrivacyAccountant = Accountant;

/// Lemma 3.3 totals; historical admission (fits under either theorem).
class BasicAccountant final : public Accountant {
 public:
  AccountingPolicy policy() const override { return AccountingPolicy::kBasic; }
  std::unique_ptr<Accountant> Clone() const override {
    return std::make_unique<BasicAccountant>(*this);
  }
  PrivacyParams Total(double delta_slack) const override;
  bool WithinBudget(const PrivacyParams& budget,
                    double delta_slack) const override;
};

/// Best-of basic/advanced totals; same admission rule as kBasic.
class AdvancedAccountant final : public Accountant {
 public:
  AccountingPolicy policy() const override {
    return AccountingPolicy::kAdvanced;
  }
  std::unique_ptr<Accountant> Clone() const override {
    return std::make_unique<AdvancedAccountant>(*this);
  }
  PrivacyParams Total(double delta_slack) const override;
  bool WithinBudget(const PrivacyParams& budget,
                    double delta_slack) const override;
};

/// rho-sum composition: Total(delta_slack) = (ZcdpEpsilon(sum rho_i,
/// delta_slack), delta_slack). Refuses approximate-DP entries at Record.
class ZcdpAccountant final : public Accountant {
 public:
  AccountingPolicy policy() const override { return AccountingPolicy::kZcdp; }
  std::unique_ptr<Accountant> Clone() const override {
    return std::make_unique<ZcdpAccountant>(*this);
  }
  PrivacyParams Total(double delta_slack) const override;
  /// zCDP admission compares exactly Total() to the budget — except that
  /// a budget whose delta cannot carry the conversion's target delta will
  /// refuse every admission, which is reported as no headroom at all.
  PrivacyParams AdmissionTotal(const PrivacyParams& budget,
                               double delta_slack) const override;
  bool WithinBudget(const PrivacyParams& budget,
                    double delta_slack) const override;

 protected:
  Status CheckLoss(const PrivacyLoss& loss) const override;
  std::string TotalLine() const override;
};

}  // namespace dpsp

#endif  // DPSP_DP_ACCOUNTANT_H_
