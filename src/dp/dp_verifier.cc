#include "dp/dp_verifier.h"

#include <algorithm>
#include <cmath>

#include "common/statistics.h"

namespace dpsp {

Result<double> EstimatePrivacyLoss(const ScalarMechanism& on_w,
                                   const ScalarMechanism& on_w_prime,
                                   const DpVerifierOptions& options,
                                   Rng* rng) {
  if (options.num_samples < 100) {
    return Status::InvalidArgument("need at least 100 samples");
  }
  if (options.num_bins < 2) {
    return Status::InvalidArgument("need at least 2 bins");
  }
  if (!(options.range_hi > options.range_lo)) {
    return Status::InvalidArgument("empty histogram range");
  }

  Histogram hist_w(options.range_lo, options.range_hi, options.num_bins);
  Histogram hist_wp(options.range_lo, options.range_hi, options.num_bins);
  for (int i = 0; i < options.num_samples; ++i) {
    hist_w.Add(on_w(rng));
    hist_wp.Add(on_w_prime(rng));
  }

  double eps_hat = 0.0;
  for (int bin = 0; bin < options.num_bins; ++bin) {
    if (hist_w.count(bin) + hist_wp.count(bin) < options.min_bin_total) {
      continue;
    }
    double p = hist_w.SmoothedMass(bin);
    double q = hist_wp.SmoothedMass(bin);
    eps_hat = std::max(eps_hat, std::fabs(std::log(p / q)));
  }
  return eps_hat;
}

}  // namespace dpsp
