// Warner randomized response [War65], the mechanism whose reconstruction
// resistance Lemma 5.3 shows is optimal: flip each bit with probability
// 1/(1+e^eps). Used as the comparator in the lower-bound experiments
// (bench_lower_bound): no differentially private path release can
// reconstruct inputs better than randomized response allows.

#ifndef DPSP_DP_RANDOMIZED_RESPONSE_H_
#define DPSP_DP_RANDOMIZED_RESPONSE_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace dpsp {

/// Releases each bit unchanged with probability e^eps/(1+e^eps) and flipped
/// otherwise; eps-DP per bit with respect to changing that bit.
Result<std::vector<int>> RandomizedResponse(const std::vector<int>& bits,
                                            double epsilon, Rng* rng);

/// Expected per-bit disagreement probability, 1/(1+e^eps) — the Lemma 5.3
/// bound at delta = 0.
double RandomizedResponseFlipProbability(double epsilon);

/// Hamming distance between equal-length bit vectors.
Result<int> HammingDistance(const std::vector<int>& a,
                            const std::vector<int>& b);

}  // namespace dpsp

#endif  // DPSP_DP_RANDOMIZED_RESPONSE_H_
