#include "dp/randomized_response.h"

#include <cmath>

namespace dpsp {

double RandomizedResponseFlipProbability(double epsilon) {
  DPSP_CHECK_MSG(epsilon >= 0.0, "epsilon must be non-negative");
  return 1.0 / (1.0 + std::exp(epsilon));
}

Result<std::vector<int>> RandomizedResponse(const std::vector<int>& bits,
                                            double epsilon, Rng* rng) {
  if (epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  double flip = RandomizedResponseFlipProbability(epsilon);
  std::vector<int> out(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != 0 && bits[i] != 1) {
      return Status::InvalidArgument("bits must be 0/1");
    }
    out[i] = rng->Bernoulli(flip) ? 1 - bits[i] : bits[i];
  }
  return out;
}

Result<int> HammingDistance(const std::vector<int>& a,
                            const std::vector<int>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("bit vectors differ in length");
  }
  int distance = 0;
  for (size_t i = 0; i < a.size(); ++i) distance += (a[i] != b[i]) ? 1 : 0;
  return distance;
}

}  // namespace dpsp
