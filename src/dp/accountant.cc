#include "dp/accountant.h"

#include <algorithm>
#include <cmath>

#include "common/table.h"
#include "dp/composition.h"

namespace dpsp {

Status PrivacyAccountant::Record(std::string label, double epsilon,
                                 double delta) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (delta < 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in [0, 1)");
  }
  entries_.push_back({std::move(label), epsilon, delta});
  return Status::Ok();
}

Status PrivacyAccountant::Record(std::string label,
                                 const PrivacyParams& params) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  return Record(std::move(label), params.epsilon, params.delta);
}

PrivacyParams PrivacyAccountant::BasicTotal() const {
  PrivacyParams total;
  total.epsilon = 0.0;
  total.delta = 0.0;
  for (const AccountantEntry& entry : entries_) {
    total.epsilon += entry.epsilon;
    total.delta += entry.delta;
  }
  total.delta = std::min(total.delta, 1.0 - 1e-12);
  return total;
}

Result<PrivacyParams> PrivacyAccountant::AdvancedTotal(
    double delta_prime) const {
  if (entries_.empty()) {
    return Status::FailedPrecondition("no releases recorded");
  }
  if (!(delta_prime > 0.0 && delta_prime < 1.0)) {
    return Status::InvalidArgument("delta' must be in (0, 1)");
  }
  double eps_max = 0.0;
  double delta_sum = 0.0;
  for (const AccountantEntry& entry : entries_) {
    eps_max = std::max(eps_max, entry.epsilon);
    delta_sum += entry.delta;
  }
  int k = num_releases();
  PrivacyParams total;
  total.epsilon = AdvancedCompositionEpsilon(k, eps_max, delta_prime);
  total.delta = std::min(delta_sum + delta_prime, 1.0 - 1e-12);
  return total;
}

PrivacyParams PrivacyAccountant::BestTotal(double delta_prime) const {
  PrivacyParams basic = BasicTotal();
  Result<PrivacyParams> advanced = AdvancedTotal(delta_prime);
  if (!advanced.ok()) return basic;
  return advanced->epsilon < basic.epsilon ? *advanced : basic;
}

bool PrivacyAccountant::WithinBudget(const PrivacyParams& budget,
                                     double delta_prime) const {
  PrivacyParams total = BestTotal(delta_prime);
  return total.epsilon <= budget.epsilon + 1e-12 &&
         total.delta <= budget.delta + 1e-12;
}

std::string PrivacyAccountant::ToString() const {
  std::string out = "PrivacyAccountant(\n";
  for (const AccountantEntry& entry : entries_) {
    out += StrFormat("  %s: eps=%g delta=%g\n", entry.label.c_str(),
                     entry.epsilon, entry.delta);
  }
  PrivacyParams basic = BasicTotal();
  out += StrFormat("  basic total: eps=%g delta=%g\n)", basic.epsilon,
                   basic.delta);
  return out;
}

}  // namespace dpsp
