#include "dp/accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/table.h"
#include "dp/composition.h"

namespace dpsp {

namespace {

constexpr double kBudgetTolerance = 1e-12;

bool Fits(const PrivacyParams& total, const PrivacyParams& budget) {
  return total.epsilon <= budget.epsilon + kBudgetTolerance &&
         total.delta <= budget.delta + kBudgetTolerance;
}

/// Lemma 3.4 over the ledger uniformized to (eps_max, delta_max) — a
/// sound upper bound for ANY ledger (each release is also (eps_max,
/// delta_max)-DP), so admission may use it even where the strict
/// AdvancedTotal refuses to REPORT it as the certified total.
Result<PrivacyParams> UniformizedAdvancedTotal(const Accountant& ledger,
                                               double delta_prime) {
  if (ledger.num_releases() == 0) {
    return Status::FailedPrecondition("no releases recorded");
  }
  if (!(delta_prime > 0.0 && delta_prime < 1.0)) {
    return Status::InvalidArgument("delta' must be in (0, 1)");
  }
  double eps_max = 0.0;
  double delta_sum = 0.0;
  for (const AccountantEntry& entry : ledger.entries()) {
    eps_max = std::max(eps_max, entry.loss.epsilon);
    delta_sum += entry.loss.delta;
  }
  PrivacyParams total;
  total.epsilon =
      AdvancedCompositionEpsilon(ledger.num_releases(), eps_max, delta_prime);
  total.delta = std::min(delta_sum + delta_prime, 1.0 - 1e-12);
  return total;
}

/// The historical admission rule: a ledger fits when EITHER basic or
/// (uniformized) advanced composition certifies it — a pure (delta = 0)
/// budget is satisfiable by the basic total even when the smaller-epsilon
/// advanced total carries the delta_slack, and a heterogeneous ledger
/// still admits through the uniformized bound exactly as it always has.
bool FitsEitherComposition(const Accountant& ledger,
                           const PrivacyParams& budget, double delta_slack) {
  if (Fits(ledger.BasicTotal(), budget)) return true;
  Result<PrivacyParams> advanced =
      UniformizedAdvancedTotal(ledger, delta_slack);
  return advanced.ok() && Fits(*advanced, budget);
}

}  // namespace

const char* AccountingPolicyName(AccountingPolicy policy) {
  switch (policy) {
    case AccountingPolicy::kBasic:
      return "basic";
    case AccountingPolicy::kAdvanced:
      return "advanced";
    case AccountingPolicy::kZcdp:
      return "zcdp";
  }
  return "unknown";
}

std::unique_ptr<Accountant> Accountant::Create(AccountingPolicy policy) {
  switch (policy) {
    case AccountingPolicy::kBasic:
      return std::make_unique<BasicAccountant>();
    case AccountingPolicy::kAdvanced:
      return std::make_unique<AdvancedAccountant>();
    case AccountingPolicy::kZcdp:
      return std::make_unique<ZcdpAccountant>();
  }
  return nullptr;
}

Status Accountant::CheckLoss(const PrivacyLoss&) const { return Status::Ok(); }

Status Accountant::CanRecord(const PrivacyLoss& loss) const {
  DPSP_RETURN_IF_ERROR(loss.Validate());
  return CheckLoss(loss);
}

Status Accountant::Record(std::string label, PrivacyLoss loss) {
  DPSP_RETURN_IF_ERROR(CanRecord(loss));
  entries_.push_back({std::move(label), loss});
  return Status::Ok();
}

Status Accountant::Record(std::string label, double epsilon, double delta) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (delta < 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in [0, 1)");
  }
  return Record(std::move(label),
                delta == 0.0 ? PrivacyLoss::Pure(epsilon)
                             : PrivacyLoss::Approximate(epsilon, delta));
}

Status Accountant::Record(std::string label, const PrivacyParams& params) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  return Record(std::move(label), params.epsilon, params.delta);
}

PrivacyParams Accountant::BasicTotal() const {
  PrivacyParams total;
  total.epsilon = 0.0;
  total.delta = 0.0;
  for (const AccountantEntry& entry : entries_) {
    total.epsilon += entry.loss.epsilon;
    total.delta += entry.loss.delta;
  }
  total.delta = std::min(total.delta, 1.0 - 1e-12);
  return total;
}

Result<PrivacyParams> Accountant::AdvancedTotal(double delta_prime) const {
  DPSP_ASSIGN_OR_RETURN(PrivacyParams total,
                        UniformizedAdvancedTotal(*this, delta_prime));
  // Lemma 3.4 requires a uniform per-mechanism guarantee. Refuse to
  // REPORT a heterogeneous ledger's uniformized total as "the" advanced
  // total — with a trace naming the maximal entry the uniformization
  // would have used — instead of silently certifying a misleadingly
  // loose number. (Admission still uses the uniformized bound, which is
  // sound; see FitsEitherComposition.)
  const AccountantEntry* max_entry = &entries_.front();
  for (const AccountantEntry& entry : entries_) {
    if (entry.loss.epsilon > max_entry->loss.epsilon ||
        (entry.loss.epsilon == max_entry->loss.epsilon &&
         entry.loss.delta > max_entry->loss.delta)) {
      max_entry = &entry;
    }
  }
  for (const AccountantEntry& entry : entries_) {
    if (entry.loss.epsilon != max_entry->loss.epsilon ||
        entry.loss.delta != max_entry->loss.delta) {
      return Status::FailedPrecondition(StrFormat(
          "advanced composition (Lemma 3.4) requires a homogeneous ledger: "
          "uniformizing to the maximal entry '%s' (eps=%g, delta=%g) would "
          "certify a misleadingly loose total for entry '%s' (eps=%g, "
          "delta=%g); use BasicTotal or a per-release homogeneous ledger",
          max_entry->label.c_str(), max_entry->loss.epsilon,
          max_entry->loss.delta, entry.label.c_str(), entry.loss.epsilon,
          entry.loss.delta));
    }
  }
  return total;
}

PrivacyParams Accountant::BestTotal(double delta_prime) const {
  PrivacyParams basic = BasicTotal();
  Result<PrivacyParams> advanced = AdvancedTotal(delta_prime);
  if (!advanced.ok()) return basic;
  return advanced->epsilon < basic.epsilon ? *advanced : basic;
}

PrivacyParams Accountant::AdmissionTotal(const PrivacyParams& budget,
                                         double delta_slack) const {
  // Only bounds whose delta fits the budget can ever admit: a pure
  // (delta = 0) budget admits through Lemma 3.3 alone, and headroom
  // reported off an unfundable bound's epsilon would overstate what
  // admission will actually grant.
  PrivacyParams basic = BasicTotal();
  bool basic_fundable = basic.delta <= budget.delta + kBudgetTolerance;
  Result<PrivacyParams> advanced =
      UniformizedAdvancedTotal(*this, delta_slack);
  bool advanced_fundable =
      advanced.ok() && advanced->delta <= budget.delta + kBudgetTolerance;
  if (advanced_fundable &&
      (!basic_fundable || advanced->epsilon < basic.epsilon)) {
    return *advanced;
  }
  if (basic_fundable) return basic;
  // The ledger's delta already exceeds the budget under every bound, so
  // every further release will be refused: infinite spend, zero
  // headroom, matching the zCDP policy's unfundable-slack case.
  basic.epsilon = std::numeric_limits<double>::infinity();
  return basic;
}

Result<double> Accountant::TotalRho() const {
  double total = 0.0;
  for (const AccountantEntry& entry : entries_) {
    DPSP_ASSIGN_OR_RETURN(double rho, entry.loss.Rho());
    total += rho;
  }
  return total;
}

std::string Accountant::ToString() const {
  std::string out =
      StrFormat("PrivacyAccountant(policy=%s\n", AccountingPolicyName(policy()));
  for (const AccountantEntry& entry : entries_) {
    out += StrFormat("  %s: %s\n", entry.label.c_str(),
                     entry.loss.ToString().c_str());
  }
  out += "  " + TotalLine() + "\n)";
  return out;
}

std::string Accountant::TotalLine() const {
  PrivacyParams basic = BasicTotal();
  return StrFormat("basic total: eps=%g delta=%g", basic.epsilon,
                   basic.delta);
}

// ------------------------------------------------------------- policies --

PrivacyParams BasicAccountant::Total(double) const { return BasicTotal(); }

bool BasicAccountant::WithinBudget(const PrivacyParams& budget,
                                   double delta_slack) const {
  return FitsEitherComposition(*this, budget, delta_slack);
}

PrivacyParams AdvancedAccountant::Total(double delta_slack) const {
  return BestTotal(delta_slack);
}

bool AdvancedAccountant::WithinBudget(const PrivacyParams& budget,
                                      double delta_slack) const {
  return FitsEitherComposition(*this, budget, delta_slack);
}

Status ZcdpAccountant::CheckLoss(const PrivacyLoss& loss) const {
  if (!loss.has_rho()) {
    return Status::InvalidArgument(
        "zCDP accounting cannot compose an approximate-DP release (no "
        "exact rho exists); record it as pure DP, at its Gaussian rho, or "
        "use the basic/advanced policy");
  }
  return Status::Ok();
}

PrivacyParams ZcdpAccountant::AdmissionTotal(const PrivacyParams& budget,
                                             double delta_slack) const {
  // Any nonempty ledger's converted total carries delta = delta_slack; a
  // budget that cannot fit it will refuse every release, so reporting
  // the (empty-ledger) zero spend as full headroom would tell remote
  // clients to retry forever. No admissible bound exists: infinite
  // spend, zero headroom.
  if (budget.delta + kBudgetTolerance < delta_slack) {
    PrivacyParams total;
    total.epsilon = std::numeric_limits<double>::infinity();
    total.delta = delta_slack;
    return total;
  }
  return Total(delta_slack);
}

PrivacyParams ZcdpAccountant::Total(double delta_slack) const {
  PrivacyParams total;
  total.epsilon = 0.0;
  total.delta = 0.0;
  if (entries_.empty()) return total;
  if (!(delta_slack > 0.0 && delta_slack < 1.0)) {
    // No valid target delta => no finite (eps, delta) certificate.
    total.epsilon = std::numeric_limits<double>::infinity();
    return total;
  }
  // CheckLoss guarantees every entry carries a rho.
  double rho = TotalRho().value();
  total.epsilon = ZcdpEpsilon(rho, delta_slack);
  total.delta = delta_slack;
  return total;
}

bool ZcdpAccountant::WithinBudget(const PrivacyParams& budget,
                                  double delta_slack) const {
  return Fits(Total(delta_slack), budget);
}

std::string ZcdpAccountant::TotalLine() const {
  double rho = entries_.empty() ? 0.0 : TotalRho().value();
  return StrFormat("total rho: %g", rho);
}

}  // namespace dpsp
