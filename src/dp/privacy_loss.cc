#include "dp/privacy_loss.h"

#include <cmath>

#include "common/table.h"

namespace dpsp {

const char* LossKindName(LossKind kind) {
  switch (kind) {
    case LossKind::kPure:
      return "pure";
    case LossKind::kApproximate:
      return "approximate";
    case LossKind::kZcdp:
      return "zcdp";
  }
  return "unknown";
}

double ZcdpEpsilon(double rho, double delta) {
  DPSP_CHECK_MSG(rho >= 0.0 && std::isfinite(rho), "rho must be >= 0");
  DPSP_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  if (rho == 0.0) return 0.0;
  return rho + 2.0 * std::sqrt(rho * std::log(1.0 / delta));
}

double GaussianRho(double l2_sensitivity, double sigma) {
  DPSP_CHECK_MSG(l2_sensitivity > 0.0, "l2 sensitivity must be positive");
  DPSP_CHECK_MSG(sigma > 0.0, "sigma must be positive");
  return l2_sensitivity * l2_sensitivity / (2.0 * sigma * sigma);
}

PrivacyLoss PrivacyLoss::Pure(double epsilon) {
  PrivacyLoss loss;
  loss.kind = LossKind::kPure;
  loss.epsilon = epsilon;
  loss.delta = 0.0;
  loss.rho = 0.5 * epsilon * epsilon;
  return loss;
}

PrivacyLoss PrivacyLoss::Approximate(double epsilon, double delta) {
  PrivacyLoss loss;
  loss.kind = LossKind::kApproximate;
  loss.epsilon = epsilon;
  loss.delta = delta;
  loss.rho = 0.0;
  return loss;
}

Result<PrivacyLoss> PrivacyLoss::Zcdp(double rho, double certificate_delta) {
  if (!(rho > 0.0) || !std::isfinite(rho)) {
    return Status::InvalidArgument("rho must be positive and finite");
  }
  if (!(certificate_delta > 0.0 && certificate_delta < 1.0)) {
    return Status::InvalidArgument("certificate delta must be in (0, 1)");
  }
  PrivacyLoss loss;
  loss.kind = LossKind::kZcdp;
  loss.rho = rho;
  loss.epsilon = ZcdpEpsilon(rho, certificate_delta);
  loss.delta = certificate_delta;
  return loss;
}

Result<PrivacyLoss> PrivacyLoss::Gaussian(double l2_sensitivity, double sigma,
                                          double certificate_epsilon,
                                          double certificate_delta) {
  if (!(l2_sensitivity > 0.0) || !std::isfinite(l2_sensitivity)) {
    return Status::InvalidArgument("l2 sensitivity must be positive");
  }
  if (!(sigma > 0.0) || !std::isfinite(sigma)) {
    return Status::InvalidArgument("sigma must be positive");
  }
  if (!(certificate_epsilon > 0.0) || !std::isfinite(certificate_epsilon)) {
    return Status::InvalidArgument("certificate epsilon must be positive");
  }
  if (!(certificate_delta > 0.0 && certificate_delta < 1.0)) {
    return Status::InvalidArgument("certificate delta must be in (0, 1)");
  }
  PrivacyLoss loss;
  loss.kind = LossKind::kZcdp;
  loss.rho = GaussianRho(l2_sensitivity, sigma);
  loss.epsilon = certificate_epsilon;
  loss.delta = certificate_delta;
  return loss;
}

Result<PrivacyLoss> PrivacyLoss::GaussianFromParams(
    const PrivacyParams& params) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  if (params.epsilon >= 1.0) {
    return Status::InvalidArgument(
        "classic Gaussian calibration requires eps < 1");
  }
  if (params.delta <= 0.0) {
    return Status::InvalidArgument(
        "classic Gaussian calibration requires delta > 0");
  }
  // sigma = sqrt(2 ln(1.25/delta)) s / eps  =>  s^2 / (2 sigma^2)
  //       = eps^2 / (4 ln(1.25/delta)), sensitivity-free.
  PrivacyLoss loss;
  loss.kind = LossKind::kZcdp;
  loss.rho = params.epsilon * params.epsilon /
             (4.0 * std::log(1.25 / params.delta));
  loss.epsilon = params.epsilon;
  loss.delta = params.delta;
  return loss;
}

PrivacyLoss PrivacyLoss::FromParams(const PrivacyParams& params) {
  return params.delta == 0.0 ? Pure(params.epsilon)
                             : Approximate(params.epsilon, params.delta);
}

Result<double> PrivacyLoss::Rho() const {
  if (!has_rho()) {
    return Status::FailedPrecondition(
        "approximate (eps, delta)-DP has no exact zCDP rate; record the "
        "release as pure DP or at its Gaussian rho");
  }
  return rho;
}

Result<PrivacyParams> PrivacyLoss::ApproxDp(double delta) const {
  DPSP_RETURN_IF_ERROR(Validate());
  if (!(delta > 0.0 && delta < 1.0) && !(kind == LossKind::kPure)) {
    return Status::InvalidArgument("target delta must be in (0, 1)");
  }
  PrivacyParams out;
  switch (kind) {
    case LossKind::kPure:
      out.epsilon = epsilon;
      out.delta = 0.0;
      return out;
    case LossKind::kApproximate:
      if (this->delta > delta + 1e-18) {
        return Status::InvalidArgument(StrFormat(
            "loss carries delta=%g, looser than the target delta=%g",
            this->delta, delta));
      }
      out.epsilon = epsilon;
      out.delta = this->delta;
      return out;
    case LossKind::kZcdp:
      out.epsilon = ZcdpEpsilon(rho, delta);
      out.delta = delta;
      return out;
  }
  return Status::Internal("unknown loss kind");
}

Status PrivacyLoss::Validate() const {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("loss epsilon must be positive and finite");
  }
  switch (kind) {
    case LossKind::kPure:
      if (delta != 0.0) {
        return Status::InvalidArgument("pure loss must have delta == 0");
      }
      break;
    case LossKind::kApproximate:
      if (!(delta > 0.0 && delta < 1.0)) {
        return Status::InvalidArgument(
            "approximate loss delta must be in (0, 1)");
      }
      break;
    case LossKind::kZcdp:
      if (!(rho > 0.0) || !std::isfinite(rho)) {
        return Status::InvalidArgument("zCDP loss rho must be positive");
      }
      if (!(delta > 0.0 && delta < 1.0)) {
        return Status::InvalidArgument(
            "zCDP certificate delta must be in (0, 1)");
      }
      break;
  }
  return Status::Ok();
}

std::string PrivacyLoss::ToString() const {
  switch (kind) {
    case LossKind::kPure:
      return StrFormat("eps=%g (pure, rho=%g)", epsilon, rho);
    case LossKind::kApproximate:
      return StrFormat("eps=%g delta=%g (approximate)", epsilon, delta);
    case LossKind::kZcdp:
      return StrFormat("rho=%g (zcdp, cert eps=%g delta=%g)", rho, epsilon,
                       delta);
  }
  return "invalid";
}

}  // namespace dpsp
