// Empirical differential-privacy verification.
//
// For a randomized mechanism M and a *fixed* pair of neighboring inputs
// (w, w'), sample M(w) and M(w') many times, histogram a scalar projection
// of the output, and estimate the empirical privacy loss
//     eps_hat = max_bin | ln( P[M(w) in bin] / P[M(w') in bin] ) |
// with add-one smoothing. For an (eps, 0)-DP mechanism, eps_hat converges
// (from below, up to sampling error) to something <= eps. The property
// tests assert eps_hat <= eps + slack on adversarially chosen neighbor
// pairs, and — as a power check — that a deliberately broken mechanism
// FAILS the same test. This cannot prove privacy, but it catches
// calibration bugs (wrong sensitivity, wrong scale) immediately.

#ifndef DPSP_DP_DP_VERIFIER_H_
#define DPSP_DP_DP_VERIFIER_H_

#include <functional>

#include "common/random.h"
#include "common/status.h"

namespace dpsp {

/// Configuration for the empirical estimator.
struct DpVerifierOptions {
  /// Samples drawn from the mechanism per input.
  int num_samples = 20000;
  /// Histogram bins over [range_lo, range_hi].
  int num_bins = 24;
  double range_lo = -10.0;
  double range_hi = 10.0;
  /// Bins whose combined count (across both histograms) is below this are
  /// excluded: with only a handful of samples the add-one smoothing term
  /// dominates and log-ratios reflect noise, not privacy loss. A bin where
  /// a genuine violation concentrates mass necessarily has a large count
  /// on at least one side and is never skipped.
  int min_bin_total = 400;
};

/// A mechanism under test: draws one scalar output on the given input.
/// The verifier owns the Rng passed to each call.
using ScalarMechanism = std::function<double(Rng*)>;

/// Estimates the empirical privacy loss between the output distributions of
/// `on_w` and `on_w_prime` (each should run the mechanism on one of the two
/// neighboring inputs). Returns eps_hat >= 0.
Result<double> EstimatePrivacyLoss(const ScalarMechanism& on_w,
                                   const ScalarMechanism& on_w_prime,
                                   const DpVerifierOptions& options,
                                   Rng* rng);

}  // namespace dpsp

#endif  // DPSP_DP_DP_VERIFIER_H_
