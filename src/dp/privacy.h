// The private edge-weight model (Section 2).
//
// The database is the weight function w : E -> R+; the topology is public.
// Two weight functions are neighbors when ||w - w'||_1 <= neighbor bound
// (1.0 in the paper; the "Scaling" paragraph of §1.2 notes an individual
// may instead influence weights by rho, and every error bound scales by
// rho — PrivacyParams carries that knob).

#ifndef DPSP_DP_PRIVACY_H_
#define DPSP_DP_PRIVACY_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace dpsp {

/// An (epsilon, delta) differential-privacy budget plus the neighboring
/// relation's l1 radius.
struct PrivacyParams {
  /// epsilon > 0.
  double epsilon = 1.0;
  /// delta in [0, 1); 0 means pure DP.
  double delta = 0.0;
  /// Neighboring weight functions differ by at most this much in l1 norm
  /// (the paper's rho; 1.0 by default). All mechanisms calibrate their
  /// noise to `sensitivity * neighbor_l1_bound`.
  double neighbor_l1_bound = 1.0;

  bool pure() const { return delta == 0.0; }

  /// OK iff epsilon > 0, delta in [0,1), neighbor bound > 0.
  Status Validate() const;

  std::string ToString() const;
};

/// ||a - b||_1; the vectors must have equal length.
Result<double> L1Distance(const EdgeWeights& a, const EdgeWeights& b);

/// True iff a and b are neighboring under the given params
/// (l1 distance <= neighbor_l1_bound).
Result<bool> AreNeighbors(const EdgeWeights& a, const EdgeWeights& b,
                          const PrivacyParams& params);

}  // namespace dpsp

#endif  // DPSP_DP_PRIVACY_H_
