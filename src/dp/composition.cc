#include "dp/composition.h"

#include <algorithm>
#include <cmath>

namespace dpsp {

double BasicCompositionEpsilon(int k, double eps0) {
  DPSP_CHECK_MSG(k >= 0 && eps0 >= 0.0, "invalid composition arguments");
  return static_cast<double>(k) * eps0;
}

double AdvancedCompositionEpsilon(int k, double eps0, double delta_prime) {
  DPSP_CHECK_MSG(k >= 1, "k must be >= 1");
  DPSP_CHECK_MSG(eps0 > 0.0, "eps0 must be positive");
  DPSP_CHECK_MSG(delta_prime > 0.0 && delta_prime < 1.0,
                 "delta' must be in (0,1)");
  double kd = static_cast<double>(k);
  return std::sqrt(2.0 * kd * std::log(1.0 / delta_prime)) * eps0 +
         kd * eps0 * std::expm1(eps0);
}

Result<double> PerQueryEpsilonAdvanced(int k, double eps_total,
                                       double delta_prime) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (!(eps_total > 0.0)) {
    return Status::InvalidArgument("eps_total must be positive");
  }
  if (!(delta_prime > 0.0 && delta_prime < 1.0)) {
    return Status::InvalidArgument("delta' must be in (0,1)");
  }
  // AdvancedCompositionEpsilon is strictly increasing in eps0 with value 0
  // at eps0 -> 0+, so bisect. Upper bracket: eps_total itself always
  // overshoots (sqrt(2k ln(1/d')) >= 1 for any k >= 1, d' < e^{-1/2}; for
  // larger d' grow the bracket geometrically).
  double lo = 0.0;
  double hi = eps_total;
  while (AdvancedCompositionEpsilon(k, hi, delta_prime) < eps_total) {
    hi *= 2.0;
    if (hi > 1e9) return Status::Internal("bisection bracket failure");
  }
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (AdvancedCompositionEpsilon(k, mid, delta_prime) <= eps_total) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (lo <= 0.0) return Status::Internal("bisection collapsed to zero");
  return lo;
}

Result<double> PerQueryEpsilonBasic(int k, double eps_total) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (!(eps_total > 0.0)) {
    return Status::InvalidArgument("eps_total must be positive");
  }
  return eps_total / static_cast<double>(k);
}

Result<double> PerQueryEpsilonBest(int k, double eps_total,
                                   double delta_total) {
  DPSP_ASSIGN_OR_RETURN(double basic, PerQueryEpsilonBasic(k, eps_total));
  if (delta_total <= 0.0) return basic;
  DPSP_ASSIGN_OR_RETURN(double advanced,
                        PerQueryEpsilonAdvanced(k, eps_total, delta_total));
  return std::max(basic, advanced);
}

}  // namespace dpsp
