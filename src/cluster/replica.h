// The replicated read tier's read side: a Replica subscribes a replica-
// mode QueryServer to a Coordinator's replication stream and keeps its
// handle table bit-identical to the coordinator's.
//
// The sync loop is a single thread: connect, subscribe with the last
// applied LSN, then apply whatever arrives — a SnapshotChunk replaces a
// handle's image wholesale (per-section CRC32C verified against freshly
// computed ones first), a DeltaFrame patches the dirty byte ranges in
// place (post-CRC verified by store::ApplySectionDelta). Every applied
// frame re-materializes the oracle through the registry loader and swaps
// it into the server, then acks the LSN back with the node's serve
// counters (the coordinator's lag/aggregation input).
//
// Failure policy: any install failure — CRC mismatch, a delta for a
// handle this replica never saw, a failpoint — resets the replica to
// LSN 0 and reconnects, so the coordinator answers the resubscribe with
// a full resync. Already-installed oracles keep serving (stale) until
// their replacement lands; queries never observe a half-applied image
// because the server swap is a whole-oracle pointer swap. A torn frame
// (header arrives, body stalls) trips the socket's receive timeout
// instead of hanging the loop forever.

#ifndef DPSP_CLUSTER_REPLICA_H_
#define DPSP_CLUSTER_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/handle_image.h"

namespace dpsp {
namespace cluster {

struct ReplicaOptions {
  std::string coordinator_address = "127.0.0.1";
  uint16_t coordinator_port = 0;
  /// Operator-visible name sent in the subscribe frame.
  std::string name = "replica";
  /// Capped exponential backoff between reconnect attempts.
  int reconnect_backoff_ms = 50;
  int max_reconnect_backoff_ms = 1000;
  /// Receive timeout while MID-frame (SO_RCVTIMEO): a coordinator that
  /// sends a frame header and then wedges fails the read after this long
  /// instead of hanging the sync loop. Waiting for the NEXT frame is not
  /// bounded by this (an idle coordinator is normal).
  int read_timeout_ms = 2000;
};

class Replica {
 public:
  /// `server` must be a replica-mode QueryServer (no ledger) and must
  /// outlive the replica.
  Replica(ReplicaOptions options, net::QueryServer* server);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Starts the sync thread (connects and resubscribes forever).
  Status Start();

  /// Disconnects and joins the sync thread. Idempotent; also run by the
  /// destructor. Installed handles keep serving.
  void Stop();

  /// Highest epoch applied and acked (0 after a resync).
  uint64_t last_applied_lsn() const { return last_applied_.load(); }

  /// The coordinator LSN last heard of (the catch-up marker) — the
  /// target last_applied_lsn converges to.
  uint64_t coordinator_lsn() const { return coordinator_lsn_.load(); }

  uint64_t deltas_applied() const { return deltas_applied_.load(); }
  uint64_t full_installs() const { return full_installs_.load(); }

  /// Times this replica reset to LSN 0 after an install failure.
  uint64_t resyncs() const { return resyncs_.load(); }

  bool connected() const { return connected_.load(); }

  /// Blocks until last_applied_lsn() >= target (kUnavailable on timeout)
  /// — the test/smoke harness's convergence barrier.
  Status WaitForLsn(uint64_t target, int timeout_ms);

 private:
  void SyncLoop();
  /// One connection's lifetime: subscribe, apply frames until the stream
  /// errors or Stop shuts the socket down.
  Status RunSession(net::Socket& socket);
  /// Both return the applied frame's epoch LSN. The caller bumps the
  /// public counters BEFORE publishing the LSN (AdvanceLsn wakes
  /// WaitForLsn waiters, who may read those counters immediately).
  Result<uint64_t> InstallChunk(const net::Frame& frame);
  Result<uint64_t> ApplyDeltaFrame(const net::Frame& frame);
  /// Rebuilds the handle's oracle from `image` and swaps it into the
  /// server, bumping the server's epoch clock.
  Status MaterializeAndInstall(uint32_t handle_id,
                               const serve::HandleImage& image);
  Status SendAck(net::Socket& socket);
  /// Forget everything and resubscribe from scratch.
  void Resync();
  void AdvanceLsn(uint64_t lsn);
  /// Interruptible reconnect backoff; returns false when stopping.
  bool SleepBackoff(int* backoff_ms);

  const ReplicaOptions options_;
  net::QueryServer* const server_;

  /// Ground-truth images per handle id (sync thread only).
  std::unordered_map<uint32_t, serve::HandleImage> images_;

  std::atomic<uint64_t> last_applied_{0};
  std::atomic<uint64_t> coordinator_lsn_{0};
  std::atomic<uint64_t> deltas_applied_{0};
  std::atomic<uint64_t> full_installs_{0};
  std::atomic<uint64_t> resyncs_{0};
  std::atomic<bool> connected_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> running_{false};

  // WaitForLsn and the backoff sleeper wait here; AdvanceLsn and Stop
  // notify.
  mutable std::mutex mu_;
  std::condition_variable cv_;

  // Stop must unblock a sync thread parked in WaitReadable/ReadAll: it
  // shuts down the live socket, whose pointer is published here.
  std::mutex socket_mutex_;
  net::Socket* active_socket_ = nullptr;

  std::thread sync_thread_;
};

}  // namespace cluster
}  // namespace dpsp

#endif  // DPSP_CLUSTER_REPLICA_H_
