// The replicated read tier's write side: a Coordinator wraps the one
// budget-holding QueryServer and streams its release/update images to
// subscribed read replicas over a dedicated replication listener.
//
// The coordinator is the ONLY node that executes releases and weight
// updates — it alone holds the ReleaseContext ledger, so budget is
// charged exactly once no matter how many replicas serve the result.
// Replication ships post-DP bytes only (the same released sections the
// PR 7 snapshots persist), which is the trust argument: adding replicas
// adds query throughput without touching privacy accounting.
//
// Shipping policy per epoch (fed by QueryServer::ReplicationObserver, in
// LSN order under the ledger lock):
//   * a new release, an unknown handle, or a shape-changing update ships
//     a full SnapshotChunk (per-section CRC32C, verified on install) and
//     rebases the handle's delta log on it;
//   * an update epoch against a known image ships a DeltaFrame holding
//     only the dirty byte ranges (store/snapshot_delta.h), so steady-
//     state replication cost tracks the update's dirty fraction, not the
//     image size;
//   * once a handle's logged delta bytes exceed compaction_factor x its
//     base image, the log is compacted: the current image becomes the
//     new base and future subscribers start from one chunk instead of a
//     long replay.
// Late joiners (or replicas that resynced after a failure) subscribe
// with the last LSN they applied; the coordinator answers with whatever
// closes the gap — base chunk + delta replay, or just the missed deltas
// — followed by a ReplicaStats marker carrying its own LSN so the
// replica knows the target it is converging to.

#ifndef DPSP_CLUSTER_COORDINATOR_H_
#define DPSP_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"

namespace dpsp {
namespace cluster {

struct CoordinatorOptions {
  /// Address the replication listener binds (loopback by default, like
  /// the query listener: exposing replication is a deployment decision).
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with replication_port().
  uint16_t replication_port = 0;
  /// Compact a handle's delta log once it outweighs this many times the
  /// base image (catch-up cost ceiling). <= 0 compacts every epoch.
  double compaction_factor = 4.0;
  /// Subscriptions beyond this are refused with a typed kOverloaded.
  int max_replicas = 16;
  /// Deadline for a fresh connection to present its ReplicaSubscribe
  /// frame (a wedged dialer must not stall the accept loop).
  int subscribe_timeout_ms = 2000;
};

/// Cumulative replication output, counted once per logical frame at
/// encode time (catch-up replays of already-logged frames don't count) —
/// the "deltas only" byte accounting the replication test asserts on.
struct ShipStats {
  uint64_t full_frames = 0;
  uint64_t delta_frames = 0;
  uint64_t full_bytes = 0;
  uint64_t delta_bytes = 0;
};

class Coordinator : public net::QueryServer::ReplicationObserver {
 public:
  /// `server` must be a budget-holding (non-replica) QueryServer and must
  /// outlive the coordinator. Start() promotes it to NodeRole::kCoordinator
  /// and subscribes to its image stream.
  Coordinator(CoordinatorOptions options, net::QueryServer* server);
  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the replication listener and starts accepting subscribers.
  Status Start();

  /// Unsubscribes from the server, closes every replica session, joins
  /// all threads. Idempotent; also run by the destructor.
  void Stop();

  /// The bound replication port (useful with replication_port = 0).
  uint16_t replication_port() const { return listener_.port(); }

  /// QueryServer::ReplicationObserver: one granted release or applied
  /// update epoch, in LSN order.
  void OnHandleImage(uint32_t handle_id, uint64_t epoch_lsn, bool is_update,
                     const std::string& name, const std::string& mechanism,
                     const std::string& workload,
                     std::vector<ReleasedSection> sections) override;

  ShipStats ship_stats() const;

  /// Live subscriber count.
  int connected_replicas() const;

  /// The lowest LSN any live replica has acked (the server's own LSN when
  /// no replica is subscribed) — the fleet's replication low-water mark.
  uint64_t min_acked_lsn() const;

 private:
  /// One frame queued for a session's writer (bodies are shared across
  /// sessions so a broadcast never copies a released image per replica).
  struct Outbound {
    net::MessageType type = net::MessageType::kError;
    std::shared_ptr<const std::vector<uint8_t>> body;
  };

  /// One subscribed replica: a writer thread draining the frame queue and
  /// a reader thread consuming its ReplicaStats acks.
  struct Session {
    std::string name;
    net::Socket socket;
    std::thread writer;
    std::thread reader;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Outbound> queue;
    std::atomic<bool> done{false};
    std::atomic<uint64_t> acked_lsn{0};
    std::atomic<uint64_t> queries_served{0};
    std::atomic<uint64_t> pairs_served{0};
  };

  struct LoggedDelta {
    uint64_t lsn = 0;
    std::shared_ptr<const std::vector<uint8_t>> body;
  };

  /// Replication state for one handle: the base image subscribers start
  /// from, the current image deltas are computed against, and the delta
  /// log replayed to stragglers.
  struct HandleState {
    std::string name;
    std::string mechanism;
    std::string workload;
    uint64_t base_lsn = 0;
    std::vector<ReleasedSection> base_sections;
    std::vector<ReleasedSection> current_sections;
    std::vector<LoggedDelta> delta_log;
    uint64_t logged_delta_bytes = 0;
  };

  void AcceptLoop();
  /// Validates the opening ReplicaSubscribe (old-stamped or non-subscribe
  /// frames get a typed kMalformed, a full roster gets kOverloaded),
  /// builds the catch-up replay, and registers the session.
  void ServeSubscriber(net::Socket socket);
  void WriterLoop(Session* session);
  void ReaderLoop(Session* session);
  /// Joins and erases finished sessions (accept-loop housekeeping).
  void ReapSessions();
  /// Enqueues one frame on every live session.
  void Broadcast(net::MessageType type,
                 std::shared_ptr<const std::vector<uint8_t>> body);
  /// Marks every session done and shuts its socket (replicas reconnect
  /// and resync) — the ship-failpoint failure path.
  void DropAllSessions();
  /// Encodes `state`'s base image as a SnapshotChunk body at base_lsn.
  /// Call with state_mutex_ held.
  std::shared_ptr<const std::vector<uint8_t>> EncodeBaseChunk(
      uint32_t handle_id, const HandleState& state) const;

  const CoordinatorOptions options_;
  net::QueryServer* const server_;

  // Handle replication state; OnHandleImage (ledger-ordered) writes it,
  // the accept loop reads it for catch-up.
  mutable std::mutex state_mutex_;
  std::map<uint32_t, HandleState> states_;

  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;

  struct ShipCounters {
    std::atomic<uint64_t> full_frames{0};
    std::atomic<uint64_t> delta_frames{0};
    std::atomic<uint64_t> full_bytes{0};
    std::atomic<uint64_t> delta_bytes{0};
  };
  ShipCounters ship_;

  net::Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace cluster
}  // namespace dpsp

#endif  // DPSP_CLUSTER_COORDINATOR_H_
