#include "cluster/coordinator.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"

namespace dpsp {
namespace cluster {

Coordinator::Coordinator(CoordinatorOptions options, net::QueryServer* server)
    : options_(std::move(options)), server_(server) {}

Coordinator::~Coordinator() { Stop(); }

Status Coordinator::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("coordinator already started");
  }
  if (server_ == nullptr || server_->replica_mode()) {
    return Status::InvalidArgument(
        "coordinator needs a budget-holding QueryServer");
  }
  DPSP_ASSIGN_OR_RETURN(
      listener_,
      net::Listener::Bind(options_.bind_address, options_.replication_port));
  stopping_.store(false);
  running_.store(true);
  server_->set_role(net::NodeRole::kCoordinator);
  server_->SetReplicationObserver(this);
  server_->SetClusterStatsProvider([this](net::ServerStats& stats) {
    const uint64_t lsn = server_->last_epoch_lsn();
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    uint64_t min_acked = lsn;
    for (const std::unique_ptr<Session>& session : sessions_) {
      if (session->done.load()) continue;
      ++stats.num_replicas;
      min_acked = std::min(min_acked, session->acked_lsn.load());
      stats.replica_queries_served += session->queries_served.load();
      stats.replica_pairs_served += session->pairs_served.load();
    }
    stats.replica_lag = lsn - min_acked;
  });
  accept_thread_ = std::thread(&Coordinator::AcceptLoop, this);
  return Status::Ok();
}

void Coordinator::Stop() {
  if (!running_.exchange(false)) return;
  // Unhook from the server first: no new images or stats callbacks may
  // reach a coordinator that is tearing down.
  server_->SetReplicationObserver(nullptr);
  server_->SetClusterStatsProvider(nullptr);
  stopping_.store(true);
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  DropAllSessions();
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (std::unique_ptr<Session>& session : sessions_) {
    if (session->writer.joinable()) session->writer.join();
    if (session->reader.joinable()) session->reader.join();
  }
  sessions_.clear();
}

void Coordinator::OnHandleImage(uint32_t handle_id, uint64_t epoch_lsn,
                                bool is_update, const std::string& name,
                                const std::string& mechanism,
                                const std::string& workload,
                                std::vector<ReleasedSection> sections) {
  net::MessageType type = net::MessageType::kSnapshotChunk;
  std::shared_ptr<const std::vector<uint8_t>> body;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    HandleState& state = states_[handle_id];
    bool ship_full = !is_update || state.mechanism.empty();
    std::vector<store::SectionPatch> patches;
    if (!ship_full) {
      Result<std::vector<store::SectionPatch>> delta =
          store::ComputeSectionDelta(state.current_sections, sections);
      if (delta.ok()) {
        patches = std::move(delta).value();
      } else {
        // Section shape changed (labels, counts, sizes): a delta cannot
        // express it, rebase on a full chunk.
        ship_full = true;
      }
    }
    if (ship_full) {
      net::SnapshotChunk chunk;
      chunk.handle_id = handle_id;
      chunk.epoch_lsn = epoch_lsn;
      chunk.handle_name = name;
      chunk.mechanism = mechanism;
      chunk.workload = workload;
      chunk.sections = sections;
      body = std::make_shared<const std::vector<uint8_t>>(
          net::EncodeSnapshotChunk(chunk));
      type = net::MessageType::kSnapshotChunk;
      state.name = name;
      state.mechanism = mechanism;
      state.workload = workload;
      state.base_lsn = epoch_lsn;
      state.base_sections = std::move(chunk.sections);
      state.current_sections = std::move(sections);
      state.delta_log.clear();
      state.logged_delta_bytes = 0;
      ship_.full_frames.fetch_add(1);
      ship_.full_bytes.fetch_add(body->size());
    } else {
      net::DeltaFrame frame;
      frame.handle_id = handle_id;
      frame.epoch_lsn = epoch_lsn;
      frame.patches = std::move(patches);
      body = std::make_shared<const std::vector<uint8_t>>(
          net::EncodeDeltaFrame(frame));
      type = net::MessageType::kDeltaFrame;
      state.current_sections = std::move(sections);
      state.delta_log.push_back(LoggedDelta{epoch_lsn, body});
      state.logged_delta_bytes += body->size();
      ship_.delta_frames.fetch_add(1);
      ship_.delta_bytes.fetch_add(body->size());
      uint64_t base_bytes = 0;
      for (const ReleasedSection& section : state.base_sections) {
        base_bytes += section.bytes.size();
      }
      if (static_cast<double>(state.logged_delta_bytes) >
          options_.compaction_factor * static_cast<double>(base_bytes)) {
        // Compact: the current image becomes the base, so a subscriber's
        // catch-up cost stays bounded by ~(1 + factor) x image size.
        state.base_lsn = epoch_lsn;
        state.base_sections = state.current_sections;
        state.delta_log.clear();
        state.logged_delta_bytes = 0;
      }
    }
  }
  const char* site = type == net::MessageType::kSnapshotChunk
                         ? failpoints::kClusterShipSnapshot
                         : failpoints::kClusterShipDelta;
  if (!EvalFailpoint(site).ok()) {
    // Injected ship failure: drop every session. Replicas reconnect and
    // catch up from the (already updated) handle state, so no epoch is
    // lost — only re-sent.
    DropAllSessions();
    return;
  }
  Broadcast(type, std::move(body));
}

ShipStats Coordinator::ship_stats() const {
  ShipStats stats;
  stats.full_frames = ship_.full_frames.load();
  stats.delta_frames = ship_.delta_frames.load();
  stats.full_bytes = ship_.full_bytes.load();
  stats.delta_bytes = ship_.delta_bytes.load();
  return stats;
}

int Coordinator::connected_replicas() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  int live = 0;
  for (const std::unique_ptr<Session>& session : sessions_) {
    if (!session->done.load()) ++live;
  }
  return live;
}

uint64_t Coordinator::min_acked_lsn() const {
  uint64_t min_acked = server_->last_epoch_lsn();
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (const std::unique_ptr<Session>& session : sessions_) {
    if (session->done.load()) continue;
    min_acked = std::min(min_acked, session->acked_lsn.load());
  }
  return min_acked;
}

void Coordinator::AcceptLoop() {
  while (!stopping_.load()) {
    ReapSessions();
    Result<net::Socket> accepted = listener_.Accept(200);
    if (!accepted.ok()) continue;  // timeout poll or listener closing
    ServeSubscriber(std::move(accepted).value());
  }
}

void Coordinator::ServeSubscriber(net::Socket socket) {
  // A dialer that never sends its subscribe must not stall the accept
  // loop: bound the whole handshake read.
  (void)socket.SetRecvTimeout(options_.subscribe_timeout_ms);
  Result<net::Frame> first = net::ReadFrame(socket);
  if (!first.ok()) return;
  net::Frame frame = std::move(first).value();
  if (frame.type != net::MessageType::kReplicaSubscribe) {
    std::vector<uint8_t> error = net::EncodeError(
        net::ErrorKind::kMalformed,
        Status::InvalidArgument(
            "replication listener expects a ReplicaSubscribe frame"));
    (void)net::WriteFrame(socket, net::MessageType::kError, error,
                          frame.version);
    return;
  }
  if (frame.version < net::kReplicationProtocolVersion) {
    // The peer's own protocol version does not define replication frames
    // — reject, never act on a frame from before the exchange existed.
    std::vector<uint8_t> error = net::EncodeError(
        net::ErrorKind::kMalformed,
        Status::InvalidArgument(
            "replication frames require protocol v5; peer stamped an "
            "older version"));
    (void)net::WriteFrame(socket, net::MessageType::kError, error,
                          frame.version);
    return;
  }
  Result<net::ReplicaSubscribe> decoded =
      net::DecodeReplicaSubscribe(frame.body);
  if (!decoded.ok()) {
    std::vector<uint8_t> error =
        net::EncodeError(net::ErrorKind::kMalformed, decoded.status());
    (void)net::WriteFrame(socket, net::MessageType::kError, error,
                          frame.version);
    return;
  }
  net::ReplicaSubscribe subscribe = std::move(decoded).value();
  if (connected_replicas() >= options_.max_replicas) {
    std::vector<uint8_t> error = net::EncodeError(
        net::ErrorKind::kOverloaded,
        Status::Unavailable("replica roster is full; retry later"));
    (void)net::WriteFrame(socket, net::MessageType::kError, error,
                          frame.version);
    return;
  }
  // The subscribe deadline served its purpose; from here the writer owns
  // the socket and the reader blocks on acks indefinitely.
  (void)socket.SetRecvTimeout(0);

  // Catch-up: everything the replica is missing, in LSN order. Taking
  // state_mutex_ here serializes against OnHandleImage, so a concurrent
  // epoch is either in the replay or broadcast after the session joins
  // the roster below — never lost, never duplicated.
  std::vector<std::pair<uint64_t, Outbound>> replay;
  auto session = std::make_unique<Session>();
  {
    std::lock_guard<std::mutex> state_lock(state_mutex_);
    for (const auto& [handle_id, state] : states_) {
      if (state.mechanism.empty()) continue;
      if (subscribe.last_epoch_lsn < state.base_lsn) {
        replay.emplace_back(
            state.base_lsn,
            Outbound{net::MessageType::kSnapshotChunk,
                     EncodeBaseChunk(handle_id, state)});
        for (const LoggedDelta& delta : state.delta_log) {
          replay.emplace_back(
              delta.lsn,
              Outbound{net::MessageType::kDeltaFrame, delta.body});
        }
      } else {
        for (const LoggedDelta& delta : state.delta_log) {
          if (delta.lsn <= subscribe.last_epoch_lsn) continue;
          replay.emplace_back(
              delta.lsn,
              Outbound{net::MessageType::kDeltaFrame, delta.body});
        }
      }
    }
    std::sort(replay.begin(), replay.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // The catch-up marker: the coordinator's LSN at subscribe time, so
    // the replica knows when it has converged.
    net::ReplicaStatsFrame marker;
    marker.role = static_cast<uint16_t>(net::NodeRole::kCoordinator);
    marker.last_epoch_lsn = server_->last_epoch_lsn();
    replay.emplace_back(
        ~uint64_t{0},
        Outbound{net::MessageType::kReplicaStats,
                 std::make_shared<const std::vector<uint8_t>>(
                     net::EncodeReplicaStatsFrame(marker))});

    session->name = subscribe.replica_name;
    session->socket = std::move(socket);
    session->acked_lsn.store(subscribe.last_epoch_lsn);
    for (auto& [lsn, outbound] : replay) {
      session->queue.push_back(std::move(outbound));
    }
    // Register under state_mutex_ still held: an OnHandleImage racing in
    // right now blocks until the roster already includes this session.
    std::lock_guard<std::mutex> sessions_lock(sessions_mutex_);
    Session* raw = session.get();
    raw->writer = std::thread(&Coordinator::WriterLoop, this, raw);
    raw->reader = std::thread(&Coordinator::ReaderLoop, this, raw);
    sessions_.push_back(std::move(session));
  }
}

void Coordinator::WriterLoop(Session* session) {
  for (;;) {
    Outbound out;
    {
      std::unique_lock<std::mutex> lock(session->mu);
      session->cv.wait(lock, [session] {
        return session->done.load() || !session->queue.empty();
      });
      if (session->done.load()) return;
      out = std::move(session->queue.front());
      session->queue.pop_front();
    }
    Status written = net::WriteFrame(session->socket, out.type, *out.body);
    if (!written.ok()) {
      session->done.store(true);
      session->socket.ShutdownBoth();
      session->cv.notify_all();
      return;
    }
  }
}

void Coordinator::ReaderLoop(Session* session) {
  for (;;) {
    Result<net::Frame> read = net::ReadFrame(session->socket);
    if (!read.ok()) break;
    net::Frame frame = std::move(read).value();
    if (frame.type != net::MessageType::kReplicaStats) continue;
    Result<net::ReplicaStatsFrame> stats =
        net::DecodeReplicaStatsFrame(frame.body);
    if (!stats.ok()) break;
    session->acked_lsn.store(stats->last_epoch_lsn);
    session->queries_served.store(stats->queries_served);
    session->pairs_served.store(stats->pairs_served);
  }
  session->done.store(true);
  session->socket.ShutdownBoth();
  session->cv.notify_all();
}

void Coordinator::ReapSessions() {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (!(*it)->done.load()) {
      ++it;
      continue;
    }
    if ((*it)->writer.joinable()) (*it)->writer.join();
    if ((*it)->reader.joinable()) (*it)->reader.join();
    it = sessions_.erase(it);
  }
}

void Coordinator::Broadcast(
    net::MessageType type,
    std::shared_ptr<const std::vector<uint8_t>> body) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (std::unique_ptr<Session>& session : sessions_) {
    if (session->done.load()) continue;
    std::lock_guard<std::mutex> session_lock(session->mu);
    session->queue.push_back(Outbound{type, body});
    session->cv.notify_all();
  }
}

void Coordinator::DropAllSessions() {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (std::unique_ptr<Session>& session : sessions_) {
    session->done.store(true);
    session->socket.ShutdownBoth();
    session->cv.notify_all();
  }
}

std::shared_ptr<const std::vector<uint8_t>> Coordinator::EncodeBaseChunk(
    uint32_t handle_id, const HandleState& state) const {
  net::SnapshotChunk chunk;
  chunk.handle_id = handle_id;
  chunk.epoch_lsn = state.base_lsn;
  chunk.handle_name = state.name;
  chunk.mechanism = state.mechanism;
  chunk.workload = state.workload;
  chunk.sections = state.base_sections;
  return std::make_shared<const std::vector<uint8_t>>(
      net::EncodeSnapshotChunk(chunk));
}

}  // namespace cluster
}  // namespace dpsp
