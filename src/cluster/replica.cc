#include "cluster/replica.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/table.h"

namespace dpsp {
namespace cluster {

Replica::Replica(ReplicaOptions options, net::QueryServer* server)
    : options_(std::move(options)), server_(server) {}

Replica::~Replica() { Stop(); }

Status Replica::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("replica already started");
  }
  if (server_ == nullptr || !server_->replica_mode()) {
    return Status::InvalidArgument(
        "cluster::Replica needs a replica-mode QueryServer (no ledger)");
  }
  stopping_.store(false);
  running_.store(true);
  server_->SetClusterStatsProvider([this](net::ServerStats& stats) {
    const uint64_t target = coordinator_lsn_.load();
    const uint64_t applied = last_applied_.load();
    stats.replica_lag = target > applied ? target - applied : 0;
  });
  sync_thread_ = std::thread(&Replica::SyncLoop, this);
  return Status::Ok();
}

void Replica::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(socket_mutex_);
    if (active_socket_ != nullptr) active_socket_->ShutdownBoth();
  }
  cv_.notify_all();
  if (sync_thread_.joinable()) sync_thread_.join();
  server_->SetClusterStatsProvider(nullptr);
}

Status Replica::WaitForLsn(uint64_t target, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  bool reached = cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms),
      [this, target] { return last_applied_.load() >= target; });
  if (!reached) {
    return Status::Unavailable(
        StrFormat("replica stuck at epoch %llu waiting for %llu",
                  static_cast<unsigned long long>(last_applied_.load()),
                  static_cast<unsigned long long>(target)));
  }
  return Status::Ok();
}

void Replica::SyncLoop() {
  int backoff_ms = options_.reconnect_backoff_ms;
  while (!stopping_.load()) {
    Result<net::Socket> dialed =
        net::Connect(options_.coordinator_address, options_.coordinator_port);
    if (!dialed.ok()) {
      if (!SleepBackoff(&backoff_ms)) return;
      continue;
    }
    net::Socket socket = std::move(dialed).value();
    {
      std::lock_guard<std::mutex> lock(socket_mutex_);
      active_socket_ = &socket;
    }
    backoff_ms = options_.reconnect_backoff_ms;
    (void)RunSession(socket);
    {
      std::lock_guard<std::mutex> lock(socket_mutex_);
      active_socket_ = nullptr;
    }
    connected_.store(false);
    if (stopping_.load()) return;
    if (!SleepBackoff(&backoff_ms)) return;
  }
}

Status Replica::RunSession(net::Socket& socket) {
  net::ReplicaSubscribe subscribe;
  subscribe.last_epoch_lsn = last_applied_.load();
  subscribe.replica_name = options_.name;
  std::vector<uint8_t> body = net::EncodeReplicaSubscribe(subscribe);
  DPSP_RETURN_IF_ERROR(
      net::WriteFrame(socket, net::MessageType::kReplicaSubscribe, body));
  // Mid-frame stalls (a torn delta frame) must fail the read, not hang
  // the loop; idle waits between frames go through WaitReadable instead
  // and are not bounded.
  DPSP_RETURN_IF_ERROR(socket.SetRecvTimeout(options_.read_timeout_ms));
  connected_.store(true);
  for (;;) {
    if (stopping_.load()) return Status::Ok();
    Status readable = socket.WaitReadable(500);
    if (!readable.ok()) {
      if (readable.code() == StatusCode::kUnavailable) {
        // Idle tick: push a fresh stats ack so the coordinator's lag and
        // query/pair aggregates stay current even with no epochs moving.
        DPSP_RETURN_IF_ERROR(SendAck(socket));
        continue;
      }
      return readable;
    }
    Result<net::Frame> read =
        net::ReadFrame(socket, net::kMaxReplicationBodyBytes);
    if (!read.ok()) return read.status();
    net::Frame frame = std::move(read).value();
    switch (frame.type) {
      case net::MessageType::kSnapshotChunk: {
        Result<uint64_t> installed = InstallChunk(frame);
        if (!installed.ok()) {
          Resync();
          return installed.status();
        }
        // Counter before LSN: a WaitForLsn waiter woken by AdvanceLsn
        // must already see this install reflected in full_installs().
        full_installs_.fetch_add(1);
        AdvanceLsn(installed.value());
        DPSP_RETURN_IF_ERROR(SendAck(socket));
        break;
      }
      case net::MessageType::kDeltaFrame: {
        Result<uint64_t> applied = ApplyDeltaFrame(frame);
        if (!applied.ok()) {
          Resync();
          return applied.status();
        }
        deltas_applied_.fetch_add(1);
        AdvanceLsn(applied.value());
        DPSP_RETURN_IF_ERROR(SendAck(socket));
        break;
      }
      case net::MessageType::kReplicaStats: {
        // The coordinator's catch-up marker: its LSN at subscribe time.
        DPSP_ASSIGN_OR_RETURN(net::ReplicaStatsFrame marker,
                              net::DecodeReplicaStatsFrame(frame.body));
        uint64_t seen = coordinator_lsn_.load();
        while (marker.last_epoch_lsn > seen &&
               !coordinator_lsn_.compare_exchange_weak(
                   seen, marker.last_epoch_lsn)) {
        }
        // The marker may BE the convergence point (catch-up with no new
        // frames); wake WaitForLsn waiters either way.
        cv_.notify_all();
        break;
      }
      case net::MessageType::kError: {
        DPSP_ASSIGN_OR_RETURN(net::WireError error,
                              net::DecodeError(frame.body));
        return error.ToStatus();
      }
      default:
        return Status::InvalidArgument(
            StrFormat("unexpected frame type %u on the replication stream",
                      static_cast<unsigned>(frame.type)));
    }
  }
}

Result<uint64_t> Replica::InstallChunk(const net::Frame& frame) {
  DPSP_RETURN_IF_ERROR(EvalFailpoint(failpoints::kClusterInstallSnapshot));
  DPSP_ASSIGN_OR_RETURN(net::SnapshotChunk chunk,
                        net::DecodeSnapshotChunk(frame.body));
  // The wire CRCs were computed by the encoder; recompute from the bytes
  // that actually arrived so in-flight corruption fails the install.
  if (chunk.section_crcs.size() != chunk.sections.size()) {
    return Status::InvalidArgument(
        "snapshot chunk CRC list does not match its sections");
  }
  for (size_t i = 0; i < chunk.sections.size(); ++i) {
    const std::vector<uint8_t>& bytes = chunk.sections[i].bytes;
    uint32_t crc = Crc32c(bytes.data(), bytes.size());
    if (crc != chunk.section_crcs[i]) {
      return Status::InvalidArgument(
          StrFormat("snapshot chunk section '%s' failed its CRC32C check",
                    chunk.sections[i].label.c_str()));
    }
  }
  const uint32_t handle_id = chunk.handle_id;
  const uint64_t epoch_lsn = chunk.epoch_lsn;
  serve::HandleImage& image = images_[handle_id];
  image.InstallFull(std::move(chunk.handle_name), std::move(chunk.mechanism),
                    std::move(chunk.workload), std::move(chunk.sections),
                    epoch_lsn);
  DPSP_RETURN_IF_ERROR(MaterializeAndInstall(handle_id, image));
  return epoch_lsn;
}

Result<uint64_t> Replica::ApplyDeltaFrame(const net::Frame& frame) {
  DPSP_RETURN_IF_ERROR(EvalFailpoint(failpoints::kClusterInstallDelta));
  DPSP_ASSIGN_OR_RETURN(net::DeltaFrame delta,
                        net::DecodeDeltaFrame(frame.body));
  auto it = images_.find(delta.handle_id);
  if (it == images_.end()) {
    return Status::InvalidArgument(
        StrFormat("delta for handle %u this replica holds no image of",
                  delta.handle_id));
  }
  DPSP_RETURN_IF_ERROR(it->second.ApplyDelta(delta.patches, delta.epoch_lsn));
  DPSP_RETURN_IF_ERROR(MaterializeAndInstall(delta.handle_id, it->second));
  return delta.epoch_lsn;
}

Status Replica::MaterializeAndInstall(uint32_t handle_id,
                                      const serve::HandleImage& image) {
  const Graph* graph = server_->WorkloadGraph(image.workload());
  const EdgeWeights* weights = server_->WorkloadWeights(image.workload());
  if (graph == nullptr || weights == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("replica has no workload '%s' loaded",
                  image.workload().c_str()));
  }
  DPSP_ASSIGN_OR_RETURN(
      std::shared_ptr<DistanceOracle> oracle,
      image.Materialize(*graph, *weights, &server_->executor()));
  DPSP_RETURN_IF_ERROR(server_->InstallReplicaHandle(
      handle_id, image.name(), image.mechanism(), image.workload(),
      std::move(oracle)));
  server_->BumpEpochLsn(image.epoch_lsn());
  return Status::Ok();
}

Status Replica::SendAck(net::Socket& socket) {
  net::ServerStats stats = server_->stats();
  net::ReplicaStatsFrame ack;
  ack.role = static_cast<uint16_t>(net::NodeRole::kReplica);
  ack.last_epoch_lsn = last_applied_.load();
  ack.queries_served = stats.queries_served;
  ack.pairs_served = stats.pairs_served;
  std::vector<uint8_t> body = net::EncodeReplicaStatsFrame(ack);
  return net::WriteFrame(socket, net::MessageType::kReplicaStats, body);
}

void Replica::Resync() {
  // The image set is suspect; forget it and resubscribe from LSN 0 so
  // the coordinator ships fresh full chunks. Installed oracles keep
  // serving (stale) until their replacements land.
  images_.clear();
  last_applied_.store(0);
  resyncs_.fetch_add(1);
}

void Replica::AdvanceLsn(uint64_t lsn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t current = last_applied_.load();
    last_applied_.store(std::max(current, lsn));
    // An applied frame at LSN x is proof the coordinator reached x —
    // don't wait for the next catch-up marker to say so.
    uint64_t seen = coordinator_lsn_.load();
    while (lsn > seen &&
           !coordinator_lsn_.compare_exchange_weak(seen, lsn)) {
    }
  }
  cv_.notify_all();
}

bool Replica::SleepBackoff(int* backoff_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(*backoff_ms),
               [this] { return stopping_.load(); });
  *backoff_ms = std::min(*backoff_ms * 2, options_.max_reconnect_backoff_ms);
  return !stopping_.load();
}

}  // namespace cluster
}  // namespace dpsp
