// Private shortest paths (Section 5.2, Algorithm 3, Theorem 5.5).
//
// Release w'(e) = w(e) + Lap(1/eps) + (1/eps) log(E/gamma) for every edge —
// a single Laplace mechanism invocation on the identity query (sensitivity
// 1) plus a data-independent offset, so the release is eps-DP. Every path
// query is post-processing: the approximate shortest path between x and y
// is the exact shortest path in (G, w'). The offset biases the released
// weights upward, which makes the error of a released path proportional to
// its *hop count*: conditioned on all |noise| <= (1/eps) log(E/gamma)
// (probability >= 1 - gamma),
//     w(e) <= w'(e) <= w(e) + (2/eps) log(E/gamma),
// so against any k-hop competitor path the released path is at most
// (2k/eps) log(E/gamma) longer (Theorem 5.5), and at most
// (2V/eps) log(E/gamma) in the worst case (Corollary 5.6).
//
// Released weights are clamped at 0 (post-processing) so Dijkstra applies;
// see DESIGN.md §4 for why this is privacy-free and does not disturb the
// bound outside the gamma-probability bad event.

#ifndef DPSP_CORE_PRIVATE_SHORTEST_PATH_H_
#define DPSP_CORE_PRIVATE_SHORTEST_PATH_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "dp/privacy.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace dpsp {

/// Options for Algorithm 3.
struct PrivateShortestPathOptions {
  PrivacyParams params;
  /// Failure probability gamma of the high-probability guarantee; also
  /// sets the hop-penalty offset (1/eps) log(E/gamma).
  double gamma = 0.01;
};

/// The released object of Algorithm 3: the noisy offset weights w'.
/// All path/distance queries are post-processing of it.
class PrivateShortestPaths {
 public:
  /// Runs Algorithm 3. Works on directed and undirected graphs (the
  /// shortest-path results of Section 5 apply to both).
  static Result<PrivateShortestPaths> Release(
      const Graph& graph, const EdgeWeights& w,
      const PrivateShortestPathOptions& options, Rng* rng);

  /// The released weight function w' (public).
  const EdgeWeights& released_weights() const { return released_; }

  /// The additive hop penalty (1/eps) log(E/gamma).
  double offset() const { return offset_; }

  /// The approximate shortest path from u to v: edge ids of SP_{w'}(u, v).
  Result<std::vector<EdgeId>> Path(VertexId u, VertexId v) const;

  /// All approximate shortest paths from u (one Dijkstra on w').
  Result<ShortestPathTree> PathTree(VertexId u) const;

  /// Theorem 5.5 bound: a released path loses at most
  /// (2k/eps) log(E/gamma) * rho against any k-hop competitor.
  double ErrorBoundForHops(int k) const;

 private:
  PrivateShortestPaths(const Graph* graph, EdgeWeights released,
                       double offset, double scale);

  const Graph* graph_;  // not owned; must outlive this object
  EdgeWeights released_;
  double offset_;
  double noise_scale_;
};

}  // namespace dpsp

#endif  // DPSP_CORE_PRIVATE_SHORTEST_PATH_H_
