// AVX2 kernel bodies. This is the only translation unit compiled with
// -mavx2; nothing here runs unless the dispatch layer (SimdKernelsEnabled)
// confirmed the CPU reports AVX2 at runtime.

#include "core/simd_kernels.h"

#if defined(DPSP_HAVE_AVX2)

#include <immintrin.h>

namespace dpsp {

namespace simd {

namespace {

// Deinterleaves 4 packed (u, v) int32 pairs into a u lane-group and a v
// lane-group.
inline void LoadPairs4(const int32_t* p, __m128i* u, __m128i* v) {
  __m256i packed =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  __m256i perm = _mm256_permutevar8x32_epi32(
      packed, _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7));
  *u = _mm256_castsi256_si128(perm);
  *v = _mm256_extracti128_si256(perm, 1);
}

// First lane with an id outside [0, n) — the unsigned compare catches
// negatives as huge values, mirroring the scalar
// `static_cast<unsigned>(u) >= n` check. Returns 4 when all lanes pass.
inline int FirstInvalidLane(__m128i u, __m128i v, int n) {
  __m128i nv = _mm_set1_epi32(n);
  __m128i bad = _mm_or_si128(
      _mm_cmpeq_epi32(_mm_max_epu32(u, nv), u),
      _mm_cmpeq_epi32(_mm_max_epu32(v, nv), v));
  int mask = _mm_movemask_ps(_mm_castsi128_ps(bad));
  return mask == 0 ? 4 : __builtin_ctz(mask);
}

// 4 simultaneous Euler-tour LCA lookups: the vector twin of
// EulerTourLca::LcaUnchecked. All index math is exact integer arithmetic,
// so the result is identical to four scalar calls.
inline __m128i LcaLookup4(const EulerTourLca::FlatView& lca, __m128i u,
                          __m128i v) {
  const int* fv = reinterpret_cast<const int*>(lca.first_visit);
  __m128i a = _mm_i32gather_epi32(fv, u, 4);
  __m128i b = _mm_i32gather_epi32(fv, v, 4);
  __m128i lo = _mm_min_epu32(a, b);
  __m128i hi = _mm_max_epu32(a, b);
  __m128i one = _mm_set1_epi32(1);
  __m128i d = _mm_add_epi32(_mm_sub_epi32(hi, lo), one);
  // floor(log2(d)) from the float exponent. cvtepi32_ps can round d up to
  // the next power of two once d exceeds the 24-bit mantissa, so correct
  // k downward where 2^k overshoots d.
  __m128i k = _mm_sub_epi32(
      _mm_srli_epi32(_mm_castps_si128(_mm_cvtepi32_ps(d)), 23),
      _mm_set1_epi32(127));
  k = _mm_add_epi32(k, _mm_cmpgt_epi32(_mm_sllv_epi32(one, k), d));
  __m128i pow2 = _mm_sllv_epi32(one, k);
  // Cell addresses: row k starts at k << stride_shift; the two covering
  // windows start at lo and hi - 2^k + 1.
  __m128i base =
      _mm_sll_epi32(k, _mm_cvtsi32_si128(static_cast<int>(lca.stride_shift)));
  __m128i i1 = _mm_add_epi32(base, lo);
  __m128i i2 =
      _mm_add_epi32(base, _mm_add_epi32(_mm_sub_epi32(hi, pow2), one));
  const long long* tbl = reinterpret_cast<const long long*>(lca.table);
  __m256i k1 = _mm256_i32gather_epi64(tbl, i1, 8);
  __m256i k2 = _mm256_i32gather_epi64(tbl, i2, 8);
  // Keys pack (depth << 32) | vertex with depth < 2^31, so every key is
  // below 2^63 and the signed 64-bit min equals the unsigned min.
  __m256i key = _mm256_blendv_epi8(k1, k2, _mm256_cmpgt_epi64(k1, k2));
  // The low 32 bits of each key are the LCA vertex id.
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
      key, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
}

// Scalar LcaUnchecked against a FlatView, for tails and invalid-id exits.
inline int32_t ScalarLca(const EulerTourLca::FlatView& lca, int u, int v) {
  uint32_t a = lca.first_visit[static_cast<size_t>(u)];
  uint32_t b = lca.first_visit[static_cast<size_t>(v)];
  if (a > b) {
    uint32_t t = a;
    a = b;
    b = t;
  }
  uint32_t k = lca.log2_floor[static_cast<size_t>(b - a + 1)];
  const uint64_t* row =
      lca.table + (static_cast<size_t>(k) << lca.stride_shift);
  uint64_t key = row[a] < row[b - (1u << k) + 1] ? row[a]
                                                 : row[b - (1u << k) + 1];
  return static_cast<int32_t>(key & 0xffffffffu);
}

}  // namespace

int LcaBatchAvx2(const EulerTourLca::FlatView& lca, const int32_t* pairs,
                 int count, int32_t* out_lca) {
  int n = lca.num_vertices;
  int i = 0;
  // 8 pairs per iteration as two independent lane groups: the sparse
  // table misses to DRAM on large trees, so the win is memory-level
  // parallelism — both groups' gathers are in flight together.
  for (; i + 8 <= count; i += 8) {
    __m128i u0, v0, u1, v1;
    LoadPairs4(pairs + 2 * static_cast<size_t>(i), &u0, &v0);
    LoadPairs4(pairs + 2 * static_cast<size_t>(i) + 8, &u1, &v1);
    if (FirstInvalidLane(u0, v0, n) < 4 || FirstInvalidLane(u1, v1, n) < 4) {
      break;  // finish in the 4-wide loop / scalar tail below
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out_lca + i),
                     LcaLookup4(lca, u0, v0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out_lca + i + 4),
                     LcaLookup4(lca, u1, v1));
  }
  for (; i + 4 <= count; i += 4) {
    __m128i u, v;
    LoadPairs4(pairs + 2 * static_cast<size_t>(i), &u, &v);
    if (FirstInvalidLane(u, v, n) < 4) break;  // finish scalar below
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out_lca + i),
                     LcaLookup4(lca, u, v));
  }
  for (; i < count; ++i) {
    int u = pairs[2 * static_cast<size_t>(i)];
    int v = pairs[2 * static_cast<size_t>(i) + 1];
    if (static_cast<unsigned>(u) >= static_cast<unsigned>(n) ||
        static_cast<unsigned>(v) >= static_cast<unsigned>(n)) {
      return i;
    }
    out_lca[i] = ScalarLca(lca, u, v);
  }
  return -1;
}

int TreeCombineAvx2(const EulerTourLca::FlatView& lca, const double* est,
                    const int32_t* pairs, int count, double* out) {
  int n = lca.num_vertices;
  const __m256d two = _mm256_set1_pd(2.0);
  int i = 0;
  // Four independent lane groups (16 pairs) per iteration: each group's
  // chain is two dependent gather rounds (sparse table, then est[z]), so
  // only independent groups keep the load ports saturated while a chain
  // waits on DRAM. The fixed-trip inner loops unroll completely.
  constexpr int kGroups = 4;
  for (; i + 4 * kGroups <= count; i += 4 * kGroups) {
    __m128i u[kGroups], v[kGroups];
    int bad = 0;
    for (int g = 0; g < kGroups; ++g) {
      LoadPairs4(pairs + 2 * static_cast<size_t>(i) + 8 * g, &u[g], &v[g]);
      bad |= FirstInvalidLane(u[g], v[g], n) < 4;
    }
    if (bad) break;  // finish in the 4-wide loop / scalar tail below
    __m128i z[kGroups];
    for (int g = 0; g < kGroups; ++g) z[g] = LcaLookup4(lca, u[g], v[g]);
    for (int g = 0; g < kGroups; ++g) {
      __m256d eu = _mm256_i32gather_pd(est, u[g], 8);
      __m256d ev = _mm256_i32gather_pd(est, v[g], 8);
      __m256d ez = _mm256_i32gather_pd(est, z[g], 8);
      _mm256_storeu_pd(out + i + 4 * g,
                       _mm256_sub_pd(_mm256_add_pd(eu, ev),
                                     _mm256_mul_pd(two, ez)));
    }
  }
  for (; i + 4 <= count; i += 4) {
    __m128i u, v;
    LoadPairs4(pairs + 2 * static_cast<size_t>(i), &u, &v);
    if (FirstInvalidLane(u, v, n) < 4) break;  // finish scalar below
    __m128i z = LcaLookup4(lca, u, v);
    __m256d eu = _mm256_i32gather_pd(est, u, 8);
    __m256d ev = _mm256_i32gather_pd(est, v, 8);
    __m256d ez = _mm256_i32gather_pd(est, z, 8);
    // Same IEEE order as the scalar combine: (est[u] + est[v]) -
    // (2.0 * est[z]); -ffp-contract=off keeps both sides FMA-free.
    _mm256_storeu_pd(
        out + i, _mm256_sub_pd(_mm256_add_pd(eu, ev), _mm256_mul_pd(two, ez)));
  }
  for (; i < count; ++i) {
    int u = pairs[2 * static_cast<size_t>(i)];
    int v = pairs[2 * static_cast<size_t>(i) + 1];
    if (static_cast<unsigned>(u) >= static_cast<unsigned>(n) ||
        static_cast<unsigned>(v) >= static_cast<unsigned>(n)) {
      return i;
    }
    int z = ScalarLca(lca, u, v);
    out[i] = est[static_cast<size_t>(u)] + est[static_cast<size_t>(v)] -
             2.0 * est[static_cast<size_t>(z)];
  }
  return -1;
}

int BoundedLookupAvx2(const double* table, int stride,
                      const int32_t* assign, int n, const int32_t* pairs,
                      int count, double* out) {
  const __m128i stride_v = _mm_set1_epi32(stride);
  const __m256d zero = _mm256_setzero_pd();
  int i = 0;
  // Two independent lane groups per iteration (see LcaBatchAvx2).
  for (; i + 8 <= count; i += 8) {
    __m128i u0, v0, u1, v1;
    LoadPairs4(pairs + 2 * static_cast<size_t>(i), &u0, &v0);
    LoadPairs4(pairs + 2 * static_cast<size_t>(i) + 8, &u1, &v1);
    if (FirstInvalidLane(u0, v0, n) < 4 || FirstInvalidLane(u1, v1, n) < 4) {
      break;  // finish in the 4-wide loop / scalar tail below
    }
    __m128i zu0 = _mm_i32gather_epi32(assign, u0, 4);
    __m128i zv0 = _mm_i32gather_epi32(assign, v0, 4);
    __m128i zu1 = _mm_i32gather_epi32(assign, u1, 4);
    __m128i zv1 = _mm_i32gather_epi32(assign, v1, 4);
    __m128i idx0 = _mm_add_epi32(_mm_mullo_epi32(zu0, stride_v), zv0);
    __m128i idx1 = _mm_add_epi32(_mm_mullo_epi32(zu1, stride_v), zv1);
    __m256d vals0 = _mm256_i32gather_pd(table, idx0, 8);
    __m256d vals1 = _mm256_i32gather_pd(table, idx1, 8);
    __m256d same0 = _mm256_castsi256_pd(
        _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(zu0, zv0)));
    __m256d same1 = _mm256_castsi256_pd(
        _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(zu1, zv1)));
    _mm256_storeu_pd(out + i, _mm256_blendv_pd(vals0, zero, same0));
    _mm256_storeu_pd(out + i + 4, _mm256_blendv_pd(vals1, zero, same1));
  }
  for (; i + 4 <= count; i += 4) {
    __m128i u, v;
    LoadPairs4(pairs + 2 * static_cast<size_t>(i), &u, &v);
    if (FirstInvalidLane(u, v, n) < 4) break;  // finish scalar below
    __m128i zu = _mm_i32gather_epi32(assign, u, 4);
    __m128i zv = _mm_i32gather_epi32(assign, v, 4);
    __m128i idx = _mm_add_epi32(_mm_mullo_epi32(zu, stride_v), zv);
    __m256d vals = _mm256_i32gather_pd(table, idx, 8);
    // Exact 0.0 on the diagonal, like the scalar zu == zv branch.
    __m256d same = _mm256_castsi256_pd(
        _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(zu, zv)));
    _mm256_storeu_pd(out + i, _mm256_blendv_pd(vals, zero, same));
  }
  for (; i < count; ++i) {
    int u = pairs[2 * static_cast<size_t>(i)];
    int v = pairs[2 * static_cast<size_t>(i) + 1];
    if (static_cast<unsigned>(u) >= static_cast<unsigned>(n) ||
        static_cast<unsigned>(v) >= static_cast<unsigned>(n)) {
      return i;
    }
    int zu = assign[static_cast<size_t>(u)];
    int zv = assign[static_cast<size_t>(v)];
    out[i] = zu == zv
                 ? 0.0
                 : table[static_cast<size_t>(zu) * static_cast<size_t>(stride) +
                         static_cast<size_t>(zv)];
  }
  return -1;
}

void DyadicPrefixSumsAvx2(const NoisyDyadicRangeSums::FlatView& view,
                          const int* his, int count, double* out) {
  const int* offs = reinterpret_cast<const int*>(view.level_offset);
  const __m128i ones = _mm_set1_epi32(-1);
  const __m128i one = _mm_set1_epi32(1);
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    __m128i iv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(his + i));
    __m256d sum = _mm256_setzero_pd();
    for (;;) {
      __m128i inactive = _mm_cmpeq_epi32(iv, _mm_setzero_si128());
      if (_mm_movemask_ps(_mm_castsi128_ps(inactive)) == 0xF) break;
      __m128i active = _mm_xor_si128(inactive, ones);
      // Isolate the lowest set bit; its float exponent is exact (it is a
      // power of two), giving the level l of this round's block.
      __m128i lowbit = _mm_and_si128(iv, _mm_sub_epi32(_mm_setzero_si128(),
                                                       iv));
      __m128i l = _mm_sub_epi32(
          _mm_srli_epi32(_mm_castps_si128(_mm_cvtepi32_ps(lowbit)), 23),
          _mm_set1_epi32(127));
      l = _mm_and_si128(l, active);  // finished lanes: clamp to level 0
      __m128i base = _mm_i32gather_epi32(offs, l, 4);
      __m128i slot = _mm_add_epi32(
          base, _mm_sub_epi32(_mm_srlv_epi32(iv, l), one));
      // Masked gather: finished lanes touch no memory; the blend (rather
      // than adding 0.0) keeps their partial sums bit-identical — adding
      // +0.0 would flip a -0.0 lane.
      __m256d active_pd =
          _mm256_castsi256_pd(_mm256_cvtepi32_epi64(active));
      __m256d vals = _mm256_mask_i32gather_pd(_mm256_setzero_pd(),
                                              view.blocks, slot, active_pd, 8);
      sum = _mm256_blendv_pd(sum, _mm256_add_pd(sum, vals), active_pd);
      iv = _mm_and_si128(iv, _mm_sub_epi32(iv, one));
    }
    _mm256_storeu_pd(out + i, sum);
  }
  for (; i < count; ++i) {
    // Scalar lowest-set-bit walk, same order as PrefixSumUnchecked.
    double sum = 0.0;
    for (unsigned x = static_cast<unsigned>(his[i]); x != 0; x &= x - 1) {
      int l = __builtin_ctz(x);
      sum += view.blocks[view.level_offset[static_cast<size_t>(l)] +
                         (x >> l) - 1];
    }
    out[i] = sum;
  }
}

}  // namespace simd

}  // namespace dpsp

#endif  // DPSP_HAVE_AVX2
