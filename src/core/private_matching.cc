#include "core/private_matching.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/table.h"
#include "core/released_state.h"
#include "dp/laplace_mechanism.h"
#include "graph/all_pairs.h"

namespace dpsp {

Result<PrivateMatchingResult> PrivateMatching(const Graph& graph,
                                              const EdgeWeights& w,
                                              const PrivacyParams& params,
                                              Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateWeights(w));
  DPSP_ASSIGN_OR_RETURN(double scale, LaplaceScale(1.0, params));
  DPSP_ASSIGN_OR_RETURN(EdgeWeights noisy,
                        LaplaceMechanism(w, 1.0, params, rng));
  DPSP_ASSIGN_OR_RETURN(Matching matching,
                        MinWeightPerfectMatching(graph, noisy));
  return PrivateMatchingResult{std::move(matching), std::move(noisy), scale};
}

MatchingDistanceOracle::MatchingDistanceOracle(
    PrivateMatchingResult released, DistanceMatrix distances)
    : released_(std::move(released)), distances_(std::move(distances)) {}

Result<std::unique_ptr<MatchingDistanceOracle>> MatchingDistanceOracle::Build(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng) {
  DPSP_ASSIGN_OR_RETURN(PrivateMatchingResult released,
                        PrivateMatching(graph, w, params, rng));
  // Distances are further post-processing of the released noisy weights;
  // clamping at zero keeps Dijkstra applicable (cf. Algorithm 3).
  EdgeWeights clamped = released.noisy_weights;
  for (double& x : clamped) x = std::max(0.0, x);
  DPSP_ASSIGN_OR_RETURN(DistanceMatrix distances,
                        AllPairsDijkstra(graph, clamped));
  return std::unique_ptr<MatchingDistanceOracle>(new MatchingDistanceOracle(
      std::move(released), std::move(distances)));
}

Result<std::unique_ptr<MatchingDistanceOracle>> MatchingDistanceOracle::Build(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx) {
  return ctx.MeteredBuild(
      kName, [&] { return Build(graph, w, ctx.params(), ctx.rng()); },
      [&graph](const MatchingDistanceOracle& oracle, ReleaseTelemetry& t) {
        t.sensitivity = 1.0;  // identity query on the weight vector
        t.noise_scale = oracle.released().noise_scale;
        t.noise_draws = graph.num_edges();
      });
}

Status MatchingDistanceOracle::SaveReleasedState(
    std::vector<ReleasedSection>* out) const {
  out->push_back(released_state::Pack<double>(
      "noisy-weights", std::span<const double>(released_.noisy_weights)));
  out->push_back(
      released_state::PackScalars("meta", {released_.noise_scale}));
  return Status::Ok();
}

Result<std::unique_ptr<DistanceOracle>>
MatchingDistanceOracle::FromReleasedState(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections) {
  (void)w;
  DPSP_ASSIGN_OR_RETURN(std::span<const double> meta,
                        released_state::Require<double>(sections, "meta", 1));
  DPSP_ASSIGN_OR_RETURN(
      std::span<const double> noisy,
      released_state::Require<double>(sections, "noisy-weights",
                                      graph.num_edges()));
  PrivateMatchingResult released;
  released.noisy_weights.assign(noisy.begin(), noisy.end());
  released.noise_scale = meta[0];
  // The matching and the distance matrix are deterministic post-processing
  // of the released noisy weights — replaying them reproduces the saved
  // instance exactly (same solver, same weights, same tie-breaks).
  DPSP_ASSIGN_OR_RETURN(
      released.matching,
      MinWeightPerfectMatching(graph, released.noisy_weights));
  EdgeWeights clamped = released.noisy_weights;
  for (double& x : clamped) x = std::max(0.0, x);
  DPSP_ASSIGN_OR_RETURN(DistanceMatrix distances,
                        AllPairsDijkstra(graph, clamped));
  return std::unique_ptr<DistanceOracle>(new MatchingDistanceOracle(
      std::move(released), std::move(distances)));
}

Result<double> MatchingDistanceOracle::Distance(VertexId u, VertexId v) const {
  if (u < 0 || u >= distances_.size() || v < 0 || v >= distances_.size()) {
    return Status::InvalidArgument("vertex out of range");
  }
  return distances_.at(u, v);
}

Status MatchingDistanceOracle::DistanceInto(std::span<const VertexPair> pairs,
                                            double* out) const {
  const unsigned n = static_cast<unsigned>(distances_.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [u, v] = pairs[i];
    if (static_cast<unsigned>(u) >= n || static_cast<unsigned>(v) >= n) {
      return Status::InvalidArgument("vertex out of range");
    }
    out[i] = distances_.at(u, v);
  }
  return Status::Ok();
}

double PrivateMatchingErrorBound(int num_vertices, int num_edges,
                                 const PrivacyParams& params, double gamma) {
  DPSP_CHECK_MSG(num_vertices >= 2 && num_edges >= 1 && gamma > 0.0 &&
                     gamma < 1.0,
                 "invalid error bound arguments");
  double scale = params.neighbor_l1_bound / params.epsilon;
  return static_cast<double>(num_vertices) * scale *
         std::log(static_cast<double>(num_edges) / gamma);
}

Result<double> PrivateMatchingCost(const Graph& graph, const EdgeWeights& w,
                                   const PrivacyParams& params, Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_ASSIGN_OR_RETURN(Matching matching, MinWeightPerfectMatching(graph, w));
  DPSP_ASSIGN_OR_RETURN(double scale, LaplaceScale(1.0, params));
  return matching.Weight(w) + rng->Laplace(scale);
}

double MatchingLowerBound(int num_vertices, double epsilon, double delta) {
  DPSP_CHECK_MSG(num_vertices >= 4 && epsilon >= 0.0 && delta >= 0.0,
                 "invalid lower bound arguments");
  double numer = 1.0 - (1.0 + std::exp(epsilon)) * delta;
  if (numer < 0.0) numer = 0.0;
  return (static_cast<double>(num_vertices) / 4.0) * numer /
         (1.0 + std::exp(2.0 * epsilon));
}

}  // namespace dpsp
