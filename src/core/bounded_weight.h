// Private all-pairs distances in bounded-weight graphs (Section 4.2,
// Algorithm 2, Theorems 4.3 / 4.5 / 4.6 / 4.7).
//
// Given a k-covering Z (Definition 4.1), release noisy distances between
// all pairs of covering vertices and answer a query (u, v) by the released
// value for (z(u), z(v)). Because every vertex is within k hops of its
// center and weights are at most M, |d(u,v) - d(z(u),z(v))| <= 2kM, and the
// Laplace noise on the Z(Z-1)/2 released values is calibrated by
//   * advanced composition (Theorem 4.5) when delta > 0:  scale ~ Z/eps',
//   * basic composition   (Theorem 4.6) when delta == 0:  scale ~ Z^2/eps.
// Theorem 4.3 picks k to balance the 2kM bias against the noise:
//   k = floor(sqrt(V/(M eps)))      (approximate DP),
//   k = floor(V^{2/3}/(M eps)^{1/3}) (pure DP);
// Theorem 4.7 instead supplies the explicit grid covering.

#ifndef DPSP_CORE_BOUNDED_WEIGHT_H_
#define DPSP_CORE_BOUNDED_WEIGHT_H_

#include <memory>
#include <vector>

#include "common/aligned.h"
#include "common/random.h"
#include "core/distance_oracle.h"
#include "dp/privacy.h"
#include "dp/release_context.h"
#include "graph/covering.h"

namespace dpsp {

/// Options for the bounded-weight oracle.
struct BoundedWeightOptions {
  PrivacyParams params;
  /// Upper bound M on every edge weight (validated against the input).
  double max_weight = 1.0;
  /// Covering radius; 0 = choose automatically per Theorem 4.3.
  int k = 0;
  /// Covering construction when the caller does not supply one.
  enum class CoveringStrategy { kMM75, kGreedy };
  CoveringStrategy strategy = CoveringStrategy::kMM75;

  /// Noise distribution for the Z-to-Z table. kLaplace follows the paper
  /// (advanced composition when delta > 0, basic when pure). kGaussian is
  /// an ablation alternative (requires delta > 0 and eps < 1): calibrated
  /// by the l2 sensitivity sqrt(#queries), same sqrt(Z)/eps rate, lighter
  /// tails. See dp/gaussian_mechanism.h.
  enum class NoiseKind { kLaplace, kGaussian };
  NoiseKind noise = NoiseKind::kLaplace;

  /// Worker threads for the Z-center multi-source Dijkstra that dominates
  /// build time at scale (one source per task, shared CSR, thread-local
  /// heaps). 0 = hardware concurrency, 1 = serial. The released table is
  /// identical at any thread count: noise is drawn serially afterwards.
  int build_threads = 0;
};

/// The Theorem 4.3 automatic choice of k for the given parameters, clamped
/// to [0, V-1].
int AutoCoveringRadius(int num_vertices, double max_weight,
                       const PrivacyParams& params);

/// Algorithm 2 oracle.
class BoundedWeightOracle final : public DistanceOracle {
 public:
  /// Registry name of this mechanism.
  static constexpr const char* kName = "bounded-weight";
  /// Registry name of the Gaussian-noise variant, which is metered at its
  /// natural zCDP rate (dp/privacy_loss.h) instead of the context's
  /// (eps, delta) and requires approximate params (delta > 0, eps < 1).
  static constexpr const char* kGaussianName = "bounded-weight-gaussian";

  /// Builds through the release pipeline: `options.params` is overridden
  /// by ctx.params(), the release is drawn from the accountant, and
  /// telemetry is recorded.
  static Result<std::unique_ptr<BoundedWeightOracle>> Build(
      const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx,
      BoundedWeightOptions options = {});

  /// Legacy entry point without budget accounting. Builds the covering per
  /// `options` and releases the noisy Z-to-Z distance table. Requires a
  /// connected undirected graph and weights in [0, max_weight].
  static Result<std::unique_ptr<BoundedWeightOracle>> Build(
      const Graph& graph, const EdgeWeights& w,
      const BoundedWeightOptions& options, Rng* rng);

  /// Same, with a caller-supplied covering (e.g. GridCovering for
  /// Theorem 4.7).
  static Result<std::unique_ptr<BoundedWeightOracle>> BuildWithCovering(
      const Graph& graph, const EdgeWeights& w, Covering covering,
      const BoundedWeightOptions& options, Rng* rng);

  /// a_{z(u), z(v)} — or exactly 0 when z(u) == z(v) (data-independent).
  Result<double> Distance(VertexId u, VertexId v) const override;
  /// Fused serial kernel: two assignment loads and one flat-table load per
  /// pair.
  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override;
  std::string Name() const override;
  /// The flat buffers the lookup kernel streams: the covering assignment
  /// and the Z x Z noisy table.
  void AppendReleasedBuffers(std::vector<ReleasedBuffer>* out) const override;

  const Covering& covering() const { return covering_; }
  double noise_scale() const { return noise_scale_; }
  /// True when the table noise is Gaussian (the zCDP-metered variant).
  bool gaussian() const { return gaussian_; }
  /// Number of released noisy table entries, for telemetry.
  int num_noisy_values() const { return num_centers_ * (num_centers_ - 1) / 2; }

  /// High-probability per-query error bound as proved: 2kM plus the
  /// Laplace tail over the Z^2 released values.
  double ErrorBound(double gamma) const;

  /// Persists the released Z x Z noisy table plus the covering (centers,
  /// assignment, hop distances) and calibration. The covering is part of
  /// the released object — Algorithm 2 publishes it with the table — so
  /// persisting it verbatim is exact and costs no budget.
  Status SaveReleasedState(std::vector<ReleasedSection>* out) const override;

  /// OracleLoader counterpart (shared by the Laplace and Gaussian registry
  /// entries — the `gaussian` flag travels in the metadata): revalidates
  /// the covering against the public graph and installs the table.
  static Result<std::unique_ptr<DistanceOracle>> FromReleasedState(
      const Graph& graph, const EdgeWeights& w,
      std::span<const ReleasedSectionView> sections);

 private:
  BoundedWeightOracle() = default;

  Covering covering_;
  bool pure_ = true;
  bool gaussian_ = false;
  double max_weight_ = 0.0;
  double noise_scale_ = 0.0;
  // Dense |Z| x |Z| noisy distance table (diagonal zero), flattened
  // row-major: entry (i, j) lives at i * num_centers_ + j. Cache-line
  // aligned: the batch kernel gathers directly from it.
  int num_centers_ = 0;
  AlignedVector<double> noisy_;
};

}  // namespace dpsp

#endif  // DPSP_CORE_BOUNDED_WEIGHT_H_
