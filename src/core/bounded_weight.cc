#include "core/bounded_weight.h"

#include <algorithm>
#include <cmath>

#include "common/cpu.h"
#include "common/table.h"
#include "core/released_state.h"
#include "core/simd_kernels.h"
#include "dp/composition.h"
#include "dp/gaussian_mechanism.h"
#include "dp/laplace_mechanism.h"
#include "graph/all_pairs.h"

namespace dpsp {

int AutoCoveringRadius(int num_vertices, double max_weight,
                       const PrivacyParams& params) {
  DPSP_CHECK_MSG(num_vertices >= 1 && max_weight > 0.0,
                 "invalid AutoCoveringRadius arguments");
  double v = static_cast<double>(num_vertices);
  double me = max_weight * params.epsilon / params.neighbor_l1_bound;
  double k_real;
  if (params.pure()) {
    // Theorem 4.3 (pure): k = floor(V^{2/3} / (M eps)^{1/3}).
    k_real = std::pow(v, 2.0 / 3.0) / std::cbrt(me);
  } else {
    // Theorem 4.3 (approx): k = floor(sqrt(V / (M eps))).
    k_real = std::sqrt(v / me);
  }
  int k = static_cast<int>(std::floor(k_real));
  return std::clamp(k, 0, num_vertices - 1);
}

Result<std::unique_ptr<BoundedWeightOracle>> BoundedWeightOracle::Build(
    const Graph& graph, const EdgeWeights& w,
    const BoundedWeightOptions& options, Rng* rng) {
  DPSP_RETURN_IF_ERROR(options.params.Validate());
  int k = options.k > 0 ? options.k
                        : AutoCoveringRadius(graph.num_vertices(),
                                             options.max_weight,
                                             options.params);
  k = std::clamp(k, 0, std::max(0, graph.num_vertices() - 1));
  Result<Covering> covering = Status::Internal("unset");
  if (options.strategy == BoundedWeightOptions::CoveringStrategy::kGreedy) {
    covering = GreedyCovering(graph, k);
  } else {
    covering = MM75ResidueCovering(graph, k);
  }
  if (!covering.ok()) return covering.status();
  return BuildWithCovering(graph, w, std::move(covering).value(), options,
                           rng);
}

Result<std::unique_ptr<BoundedWeightOracle>> BoundedWeightOracle::Build(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx,
    BoundedWeightOptions options) {
  options.params = ctx.params();
  bool gaussian =
      options.noise == BoundedWeightOptions::NoiseKind::kGaussian;
  // A Gaussian release spends its natural zCDP rate rho = eps^2 /
  // (4 ln(1.25/delta)) — sensitivity-free, so the budget check runs
  // BEFORE the covering (and the released vector's size) is known.
  PrivacyLoss loss = ctx.ReleaseLoss();
  if (gaussian) {
    DPSP_ASSIGN_OR_RETURN(loss,
                          PrivacyLoss::GaussianFromParams(ctx.params()));
  }
  return ctx.MeteredBuild(
      gaussian ? kGaussianName : kName, loss,
      [&] { return Build(graph, w, options, ctx.rng()); },
      [](const BoundedWeightOracle& oracle, ReleaseTelemetry& t) {
        // The released vector of Z(Z-1)/2 sensitivity-1 queries: joint l1
        // sensitivity equal to the query count under basic composition
        // (Laplace), joint l2 sensitivity sqrt(count) for the Gaussian
        // variant — the sensitivity its sigma was actually calibrated to.
        t.sensitivity =
            oracle.gaussian()
                ? DistanceVectorL2Sensitivity(oracle.num_noisy_values())
                : oracle.num_noisy_values();
        t.noise_scale = oracle.noise_scale();
        t.noise_draws = oracle.num_noisy_values();
      });
}

Result<std::unique_ptr<BoundedWeightOracle>>
BoundedWeightOracle::BuildWithCovering(const Graph& graph,
                                       const EdgeWeights& w, Covering covering,
                                       const BoundedWeightOptions& options,
                                       Rng* rng) {
  DPSP_RETURN_IF_ERROR(options.params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  if (!(options.max_weight > 0.0)) {
    return Status::InvalidArgument("max_weight must be positive");
  }
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i] > options.max_weight + 1e-12) {
      return Status::InvalidArgument(
          StrFormat("edge %zu weight %g exceeds max_weight %g", i, w[i],
                    options.max_weight));
    }
  }
  DPSP_RETURN_IF_ERROR(ValidateCovering(graph, covering));

  auto oracle = std::unique_ptr<BoundedWeightOracle>(new BoundedWeightOracle());
  oracle->covering_ = std::move(covering);
  oracle->pure_ = options.params.pure();
  oracle->max_weight_ = options.max_weight;

  const std::vector<VertexId>& centers = oracle->covering_.centers;
  int z = static_cast<int>(centers.size());
  int num_queries = std::max(1, z * (z - 1) / 2);

  // Noise scale: each pairwise distance has sensitivity 1; compose the
  // num_queries releases within the (eps, delta) budget.
  double scale;
  bool gaussian =
      options.noise == BoundedWeightOptions::NoiseKind::kGaussian;
  if (gaussian) {
    if (options.params.pure()) {
      return Status::InvalidArgument(
          "Gaussian noise requires delta > 0 (set NoiseKind::kLaplace)");
    }
    DPSP_ASSIGN_OR_RETURN(
        scale, GaussianSigma(DistanceVectorL2Sensitivity(num_queries),
                             options.params));
  } else if (oracle->pure_) {
    // Basic composition (Theorem 4.6): Lap(num_queries / eps).
    scale = static_cast<double>(num_queries) *
            options.params.neighbor_l1_bound / options.params.epsilon;
  } else {
    // Advanced composition (Theorem 4.5): Lap(1 / eps') with eps' solved
    // from the Lemma 3.4 formula.
    DPSP_ASSIGN_OR_RETURN(
        double eps0, PerQueryEpsilonBest(num_queries, options.params.epsilon,
                                         options.params.delta));
    scale = options.params.neighbor_l1_bound / eps0;
  }
  oracle->gaussian_ = gaussian;
  oracle->noise_scale_ = scale;

  // Exact distances among the centers (private intermediate) — the build
  // bottleneck at scale, fanned out one Dijkstra source per task over the
  // shared CSR — then serial noise so the release is thread-count
  // invariant.
  DPSP_ASSIGN_OR_RETURN(
      std::vector<std::vector<double>> exact,
      MultiSourceDistances(graph, w, centers, options.build_threads));
  oracle->num_centers_ = z;
  oracle->noisy_.assign(static_cast<size_t>(z) * static_cast<size_t>(z),
                        0.0);
  for (int i = 0; i < z; ++i) {
    for (int j = i + 1; j < z; ++j) {
      double truth =
          exact[static_cast<size_t>(i)][static_cast<size_t>(centers[
              static_cast<size_t>(j)])];
      double noise =
          gaussian ? rng->Gaussian(scale) : rng->Laplace(scale);
      double released = truth + noise;
      oracle->noisy_[static_cast<size_t>(i) * static_cast<size_t>(z) +
                     static_cast<size_t>(j)] = released;
      oracle->noisy_[static_cast<size_t>(j) * static_cast<size_t>(z) +
                     static_cast<size_t>(i)] = released;
    }
  }
  return oracle;
}

Result<double> BoundedWeightOracle::Distance(VertexId u, VertexId v) const {
  int n = static_cast<int>(covering_.assignment.size());
  if (u < 0 || u >= n || v < 0 || v >= n) {
    return Status::InvalidArgument("vertex out of range");
  }
  int zu = covering_.assignment[static_cast<size_t>(u)];
  int zv = covering_.assignment[static_cast<size_t>(v)];
  if (zu == zv) return 0.0;
  return noisy_[static_cast<size_t>(zu) * static_cast<size_t>(num_centers_) +
                static_cast<size_t>(zv)];
}

Status BoundedWeightOracle::DistanceInto(std::span<const VertexPair> pairs,
                                         double* out) const {
  const unsigned n = static_cast<unsigned>(covering_.assignment.size());
  const int* assign = covering_.assignment.data();
  const double* table = noisy_.data();
  const size_t stride = static_cast<size_t>(num_centers_);
#if defined(DPSP_HAVE_AVX2)
  // The gather path needs every table index in int32 range: Z^2 < 2^31.
  if (SimdKernelsEnabled() && pairs.size() >= 8 &&
      static_cast<long long>(num_centers_) * num_centers_ <
          (1ll << 31)) {
    static_assert(sizeof(VertexPair) == 2 * sizeof(int32_t),
                  "kernels reinterpret VertexPair as two packed int32s");
    int bad = simd::BoundedLookupAvx2(
        table, num_centers_, assign, static_cast<int>(n),
        reinterpret_cast<const int32_t*>(pairs.data()),
        static_cast<int>(pairs.size()), out);
    if (bad < 0) return Status::Ok();
    return Status::InvalidArgument("vertex out of range");
  }
#endif
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [u, v] = pairs[i];
    if (static_cast<unsigned>(u) >= n || static_cast<unsigned>(v) >= n) {
      return Status::InvalidArgument("vertex out of range");
    }
    size_t zu = static_cast<size_t>(assign[u]);
    size_t zv = static_cast<size_t>(assign[v]);
    out[i] = zu == zv ? 0.0 : table[zu * stride + zv];
  }
  return Status::Ok();
}

void BoundedWeightOracle::AppendReleasedBuffers(
    std::vector<ReleasedBuffer>* out) const {
  out->push_back({"assignment", covering_.assignment.data(),
                  covering_.assignment.size() * sizeof(int)});
  out->push_back({"zz-table", noisy_.data(), noisy_.size() * sizeof(double)});
}

std::string BoundedWeightOracle::Name() const {
  if (gaussian_) return kGaussianName;
  return pure_ ? "bounded-weight(pure)" : "bounded-weight(approx)";
}

Status BoundedWeightOracle::SaveReleasedState(
    std::vector<ReleasedSection>* out) const {
  out->push_back(released_state::Pack<double>(
      "zz-table",
      std::span<const double>(noisy_.data(), noisy_.size())));
  out->push_back(released_state::Pack<VertexId>(
      "centers", std::span<const VertexId>(covering_.centers)));
  out->push_back(released_state::Pack<int>(
      "assignment", std::span<const int>(covering_.assignment.data(),
                                         covering_.assignment.size())));
  out->push_back(released_state::Pack<int>(
      "assignment-hops", std::span<const int>(covering_.assignment_hops)));
  out->push_back(released_state::PackScalars(
      "meta", {static_cast<double>(covering_.k), pure_ ? 1.0 : 0.0,
               gaussian_ ? 1.0 : 0.0, max_weight_, noise_scale_,
               static_cast<double>(num_centers_)}));
  return Status::Ok();
}

Result<std::unique_ptr<DistanceOracle>>
BoundedWeightOracle::FromReleasedState(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections) {
  (void)w;
  DPSP_ASSIGN_OR_RETURN(std::span<const double> meta,
                        released_state::Require<double>(sections, "meta", 6));
  int k;
  DPSP_ASSIGN_OR_RETURN(k, released_state::AsInt(meta[0], "covering radius"));
  int pure;
  DPSP_ASSIGN_OR_RETURN(pure, released_state::AsInt(meta[1], "pure flag"));
  int gaussian;
  DPSP_ASSIGN_OR_RETURN(gaussian,
                        released_state::AsInt(meta[2], "gaussian flag"));
  int num_centers;
  DPSP_ASSIGN_OR_RETURN(num_centers,
                        released_state::AsInt(meta[5], "center count"));
  if ((pure != 0 && pure != 1) || (gaussian != 0 && gaussian != 1)) {
    return Status::InvalidArgument("snapshot noise flags must be 0 or 1");
  }
  if (k < 0 || num_centers <= 0 ||
      num_centers > graph.num_vertices()) {
    return Status::InvalidArgument(
        "snapshot covering shape is inconsistent with the graph");
  }
  const size_t z = static_cast<size_t>(num_centers);
  DPSP_ASSIGN_OR_RETURN(
      std::span<const double> table,
      released_state::Require<double>(sections, "zz-table",
                                      static_cast<long>(z * z)));
  DPSP_ASSIGN_OR_RETURN(
      std::span<const VertexId> centers,
      released_state::Require<VertexId>(sections, "centers",
                                        static_cast<long>(z)));
  DPSP_ASSIGN_OR_RETURN(
      std::span<const int> assignment,
      released_state::Require<int>(sections, "assignment",
                                   graph.num_vertices()));
  DPSP_ASSIGN_OR_RETURN(
      std::span<const int> hops,
      released_state::Require<int>(sections, "assignment-hops",
                                   graph.num_vertices()));

  auto oracle = std::unique_ptr<BoundedWeightOracle>(new BoundedWeightOracle());
  oracle->covering_.k = k;
  oracle->covering_.centers.assign(centers.begin(), centers.end());
  oracle->covering_.assignment.assign(assignment.begin(), assignment.end());
  oracle->covering_.assignment_hops.assign(hops.begin(), hops.end());
  // The covering property and assignment consistency are re-proved against
  // the public graph — a snapshot from a different graph is rejected here.
  DPSP_RETURN_IF_ERROR(ValidateCovering(graph, oracle->covering_));
  oracle->pure_ = pure == 1;
  oracle->gaussian_ = gaussian == 1;
  oracle->max_weight_ = meta[3];
  oracle->noise_scale_ = meta[4];
  oracle->num_centers_ = num_centers;
  oracle->noisy_.assign(table.begin(), table.end());
  return std::unique_ptr<DistanceOracle>(std::move(oracle));
}

double BoundedWeightOracle::ErrorBound(double gamma) const {
  DPSP_CHECK_MSG(gamma > 0.0 && gamma < 1.0, "gamma must be in (0,1)");
  double z = static_cast<double>(covering_.size());
  double bias = 2.0 * static_cast<double>(covering_.k) * max_weight_;
  double tail;
  if (gaussian_) {
    // Gaussian tail: sigma * sqrt(2 ln(q/gamma)) covers all q values.
    tail = noise_scale_ *
           std::sqrt(2.0 * std::log(std::max(2.0, z * z) / gamma));
  } else {
    tail = noise_scale_ * std::log(std::max(2.0, z * z) / gamma);
  }
  return bias + tail;
}

}  // namespace dpsp
