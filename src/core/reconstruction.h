// Reconstruction-attack lower bounds (Section 5.1, Appendix B).
//
// Lemma 5.2 / B.2 / B.5 reduce database reconstruction to private
// path / spanning-tree / matching release on gadget graphs: encode a bit
// string x as a 0/1 weight function w_x, run the private algorithm, decode
// the released combinatorial object back into a bit string y. Because the
// decoder is post-processing of a DP release, Lemma 5.4 lower-bounds the
// expected Hamming distance; since the optimum object has weight 0 and each
// decoded disagreement contributes 1 to the released object's weight,
// E[object error] >= E[d_H(x,y)] >= alpha, where
//   alpha = n (1 - (1+e^eps) delta) / (1 + e^{2 eps})       (Theorem 5.1).
//
// The harness here runs the actual attack against this library's own
// mechanisms (Algorithm 3, PrivateMst, PrivateMatching) and reports the
// measured Hamming distance / object error, alongside alpha and the
// randomized-response comparator (Lemma 5.3).

#ifndef DPSP_CORE_RECONSTRUCTION_H_
#define DPSP_CORE_RECONSTRUCTION_H_

#include <vector>

#include "common/random.h"
#include "dp/privacy.h"
#include "graph/generators.h"

namespace dpsp {

/// alpha(n, eps, delta) from Theorem 5.1 (and B.1; B.4 divides by 4
/// differently — see MatchingLowerBound).
double ReconstructionLowerBound(int n, double epsilon, double delta);

/// Decodes a released s-t path on the Figure-2 gadget: y_i = 0 iff the
/// path uses e_i^(0). Fails if the edge list is not a valid 0 -> n path
/// using exactly one edge per position.
Result<std::vector<int>> DecodePathBits(const BitGadgetGraph& gadget,
                                        const std::vector<EdgeId>& path_edges);

/// Decodes a released spanning tree on the Figure-3-left gadget:
/// y_i = 0 iff the tree uses e_i^(0).
Result<std::vector<int>> DecodeTreeBits(const BitGadgetGraph& gadget,
                                        const std::vector<EdgeId>& tree_edges);

/// Decodes a released perfect matching on the hourglass gadget:
/// y_c = 0 iff vertex (0,1,c) is matched to (1,0,c).
Result<std::vector<int>> DecodeMatchingBits(
    const HourglassGadgetGraph& gadget, const std::vector<EdgeId>& matching);

/// One attack outcome on a single input.
struct AttackOutcome {
  /// d_H(x, y): recovered-bit disagreements.
  int hamming_distance = 0;
  /// Weight of the released object under w_x (equals its approximation
  /// error, since the optimum has weight 0); >= hamming_distance.
  double object_error = 0.0;
};

/// Attacks Algorithm 3 (private shortest paths) on the Figure-2 gadget with
/// input bits x. `gamma` is Algorithm 3's failure parameter.
Result<AttackOutcome> AttackShortestPath(const BitGadgetGraph& gadget,
                                         const std::vector<int>& x,
                                         const PrivacyParams& params,
                                         double gamma, Rng* rng);

/// Attacks PrivateMst on the Figure-3-left gadget.
Result<AttackOutcome> AttackMst(const BitGadgetGraph& gadget,
                                const std::vector<int>& x,
                                const PrivacyParams& params, Rng* rng);

/// Attacks PrivateMatching on the hourglass gadget.
Result<AttackOutcome> AttackMatching(const HourglassGadgetGraph& gadget,
                                     const std::vector<int>& x,
                                     const PrivacyParams& params, Rng* rng);

/// Aggregates an attack over `trials` uniform random inputs.
struct AttackReport {
  int n = 0;
  int trials = 0;
  double mean_hamming = 0.0;
  double mean_object_error = 0.0;
  /// Theorem 5.1 / B.1 alpha for these parameters.
  double alpha = 0.0;
  /// Expected Hamming distance of randomized response at the same eps
  /// (Lemma 5.3 optimum): n / (1 + e^eps).
  double randomized_response_expectation = 0.0;
};

enum class AttackKind { kShortestPath, kMst, kMatching };

/// Runs the chosen attack `trials` times on fresh uniform inputs.
Result<AttackReport> RunReconstructionExperiment(AttackKind kind, int n,
                                                 const PrivacyParams& params,
                                                 int trials, Rng* rng);

}  // namespace dpsp

#endif  // DPSP_CORE_RECONSTRUCTION_H_
