// AVX2 batch kernels for the fused DistanceInto hot paths.
//
// Each kernel is the vector twin of one scalar batch loop, operating on
// the flat released buffers (EulerTourLca::FlatView, the dyadic block
// array, the bounded-weight Z x Z table) through gathers. The kernels are
// bit-identical to their scalar twins by construction: integer index math
// is exact, and every floating-point combine uses the same IEEE operation
// order as the scalar loop (enforced repo-wide with -ffp-contract=off).
// tests/simd_conformance_test.cc asserts the identity across every
// registry oracle.
//
// This header is always safe to include; the definitions exist only when
// the toolchain compiled the AVX2 translation unit (DPSP_HAVE_AVX2), and
// call sites dispatch per call on SimdKernelsEnabled(). Index-width
// contract: every gathered index must fit int32 — callers guard with
// EulerTourLca::SimdCompatible() and the bounded oracle's Z*Z check.

#ifndef DPSP_CORE_SIMD_KERNELS_H_
#define DPSP_CORE_SIMD_KERNELS_H_

#include <cstdint>

#include "core/range_sums.h"
#include "graph/tree.h"

namespace dpsp {

namespace simd {

#if defined(DPSP_HAVE_AVX2)

/// Batched LCA: out_lca[i] = LCA of pairs[2i], pairs[2i+1] (pairs is the
/// flattened (u, v) int array, 2 ints per query). Validates ids like the
/// scalar loop: on the first out-of-range pair, results for every earlier
/// pair are written and its index is returned; -1 means all `count` pairs
/// were valid and written.
int LcaBatchAvx2(const EulerTourLca::FlatView& lca, const int32_t* pairs,
                 int count, int32_t* out_lca);

/// Fused tree-distance kernel: out[i] = est[u] + est[v] - 2 * est[lca],
/// the TreeAllPairsOracle combine, with the LCA lookup inlined. Same
/// validation contract as LcaBatchAvx2.
int TreeCombineAvx2(const EulerTourLca::FlatView& lca, const double* est,
                    const int32_t* pairs, int count, double* out);

/// Fused bounded-weight kernel: out[i] = table[assign[u] * stride +
/// assign[v]], 0 exactly when the assignments coincide. Same validation
/// contract as LcaBatchAvx2 (`n` bounds the vertex ids).
int BoundedLookupAvx2(const double* table, int stride,
                      const int32_t* assign, int n, const int32_t* pairs,
                      int count, double* out);

/// Batched dyadic prefix sums: out[i] = sum of the noisy blocks covering
/// [0, his[i]), added lowest-set-bit first per lane — the scalar
/// PrefixSumUnchecked walk order, so results are bit-identical. Callers
/// guarantee 0 <= his[i] <= size.
void DyadicPrefixSumsAvx2(const NoisyDyadicRangeSums::FlatView& view,
                          const int* his, int count, double* out);

#endif  // DPSP_HAVE_AVX2

}  // namespace simd

}  // namespace dpsp

#endif  // DPSP_CORE_SIMD_KERNELS_H_
