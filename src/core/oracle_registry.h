// The unified mechanism registry: every distance-release mechanism in the
// library is a named factory behind one signature, so benches, examples,
// conformance tests, and serving pipelines sweep all of them uniformly.
// Adding a mechanism to the whole pipeline is one Register() call.
//
// Factories take (graph, weights, ReleaseContext&): the context supplies
// the validated privacy parameters and seeded randomness, meters the
// release through the budget accountant, and collects telemetry
// (dp/release_context.h).

#ifndef DPSP_CORE_ORACLE_REGISTRY_H_
#define DPSP_CORE_ORACLE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/distance_oracle.h"
#include "dp/release_context.h"

namespace dpsp {

/// The input family a registered mechanism accepts. Sweeps use this to
/// pick which mechanisms apply to a given workload (a canonical path graph
/// satisfies every family).
enum class OracleInput {
  /// Any connected undirected graph with non-negative weights.
  kAnyConnected,
  /// An undirected tree.
  kTree,
  /// The canonical path graph (edge i joins vertices i and i+1).
  kPath,
  /// A graph whose minimum perfect matching the graph/matching.h solvers
  /// handle.
  kPerfectMatching,
};

/// Human-readable name of an input family ("any-connected", ...).
const char* OracleInputName(OracleInput input);

/// Builds a released oracle from the public topology, the private weights,
/// and the shared release context.
using OracleFactory = std::function<Result<std::unique_ptr<DistanceOracle>>(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx)>;

/// Rebuilds a released oracle from persisted released-state sections (the
/// output of DistanceOracle::SaveReleasedState, round-tripped through the
/// src/store snapshot format). Restoring is pure post-processing of
/// already-released data: it takes no ReleaseContext, draws no noise, and
/// consumes no budget. The restored oracle answers queries bit-identically
/// to the saved instance.
using OracleLoader = std::function<Result<std::unique_ptr<DistanceOracle>>(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections)>;

/// One registered mechanism.
struct OracleSpec {
  /// Unique registry key; also the oracle's Name() prefix.
  std::string name;
  /// One-line description for listings.
  std::string description;
  OracleInput input = OracleInput::kAnyConnected;
  /// False only for the exact (non-private) oracle.
  bool consumes_budget = true;
  /// The privacy-loss type one release consumes (dp/privacy_loss.h).
  /// Laplace-calibrated mechanisms spend the context's params — kPure
  /// here, metered as approximate when ctx.params().delta > 0; a
  /// Gaussian-calibrated mechanism declares kZcdp and spends its natural
  /// rho rate (it requires delta > 0 and eps < 1 to build). Sweeps and
  /// conformance suites use the declaration to pick compatible params.
  LossKind loss = LossKind::kPure;
  /// True when the built oracle supports incremental weight-update epochs
  /// (DistanceOracle::AsUpdatable() returns non-null) — the routing bit
  /// the serving layers consult before accepting UpdateWeights traffic
  /// for a release of this mechanism.
  bool updatable = false;
  OracleFactory factory;
  /// Snapshot-restore factory, or null for mechanisms that have not opted
  /// into persistence. All builtins register one.
  OracleLoader loader;
};

/// Name -> factory map over every distance-release mechanism.
class OracleRegistry {
 public:
  /// The process-wide registry, pre-populated with every mechanism family
  /// in the library (exact, per-pair-laplace, synthetic-graph,
  /// tree-recursive, tree-hld, path-hierarchy, bounded-weight,
  /// private-mst, private-matching, bounded-weight-gaussian).
  static OracleRegistry& Global();

  /// Registers a mechanism. Fails on an empty or duplicate name or a null
  /// factory.
  Status Register(OracleSpec spec);

  /// Builds the named oracle through the shared pipeline.
  Result<std::unique_ptr<DistanceOracle>> Create(const std::string& name,
                                                 const Graph& graph,
                                                 const EdgeWeights& w,
                                                 ReleaseContext& ctx) const;

  /// Restores the named oracle from persisted released-state sections
  /// (no budget consumed; see OracleLoader). Fails with NotFound for an
  /// unknown name and Unimplemented for a mechanism without a loader.
  Result<std::unique_ptr<DistanceOracle>> Restore(
      const std::string& name, const Graph& graph, const EdgeWeights& w,
      std::span<const ReleasedSectionView> sections) const;

  /// The spec registered under `name`, or nullptr.
  const OracleSpec* Find(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Registered names in registration order.
  std::vector<std::string> Names() const;

  /// Registered names whose input family is satisfied by a workload of
  /// family `input`: a path satisfies kTree and kAnyConnected, a tree
  /// satisfies kAnyConnected. `has_perfect_matching` additionally admits
  /// kPerfectMatching mechanisms (the registry cannot see the workload's
  /// vertex parity).
  std::vector<std::string> NamesForInput(
      OracleInput input, bool has_perfect_matching = false) const;

  int size() const { return static_cast<int>(specs_.size()); }

 private:
  // Small, append-only; linear scans keep iteration deterministic.
  std::vector<OracleSpec> specs_;
};

}  // namespace dpsp

#endif  // DPSP_CORE_ORACLE_REGISTRY_H_
