// Heavy-light tree distance oracle — an alternative all-pairs mechanism
// for trees, composing the paper's two tree results.
//
// Decompose the tree into heavy chains (each root-to-leaf walk crosses at
// most log2 V chains) and release a noisy dyadic range structure
// (core/range_sums.h, i.e. the Appendix-A hierarchy) over each chain's
// edge weights. Every edge lies on exactly one chain and in one block per
// level of that chain's structure, so the joint release has sensitivity
// max_chain(#levels) <= ceil(log2 V): one Laplace mechanism invocation at
// scale (max levels)/eps makes it eps-DP.
//
// A query d(x, y) splits at the LCA and each half climbs chains: at most
// 2 log2 V chain-range queries, each summing at most 2 log2 V noisy
// blocks, so the error is a sum of O(log^2 V) Laplace terms of scale
// O(log V)/eps — O(log^2 V sqrt(log(1/gamma)))/eps by Lemma 3.1, a log^0.5
// factor above Theorem 4.2's recursion. The trade: this oracle's released
// object supports *edge-interval* analytics on chains (subpath sums along
// any chain prefix) that the Algorithm-1 release does not, and its
// construction is a single pass. bench_tree_all_pairs (E2b) compares the
// two empirically.

#ifndef DPSP_CORE_HLD_ORACLE_H_
#define DPSP_CORE_HLD_ORACLE_H_

#include <memory>
#include <vector>

#include "common/aligned.h"
#include "common/random.h"
#include "core/distance_oracle.h"
#include "core/range_sums.h"
#include "dp/privacy.h"
#include "dp/release_context.h"
#include "graph/tree.h"

// Incremental release (continual weight updates): every edge lives in one
// heavy-chain dyadic structure (one block per level of that chain) or in
// one released light scalar. When an epoch drifts k edges, only the
// blocks containing those edges are invalidated and redrawn — the
// Theorem 4.2 / Appendix-A recursion rebuilt on just the dirty subtrees.
// The epoch's sensitivity is g = the deepest dirty stack (max levels over
// dirty chains, 1 if only light edges drifted), so the partial release is
// (g/L) x one full release in the calibration's own currency, where L is
// the build-time sensitivity. ApplyWeightUpdates charges exactly that
// fraction through ReleaseContext::MeteredUpdate.

namespace dpsp {

/// eps-DP all-pairs tree distance oracle via heavy-light decomposition.
/// The first updatable mechanism in the registry: supports incremental
/// weight-update epochs through ApplyWeightUpdates.
class HldTreeOracle final : public UpdatableDistanceOracle {
 public:
  /// Registry name of this mechanism.
  static constexpr const char* kName = "tree-hld";

  /// Builds the oracle through the release pipeline: draws one release of
  /// ctx.params() from the accountant and records telemetry. `graph` must
  /// be an undirected tree with non-negative weights; `root` = -1 picks
  /// vertex 0.
  static Result<std::unique_ptr<HldTreeOracle>> Build(
      const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx,
      VertexId root = -1);

  /// Legacy entry point without budget accounting.
  static Result<std::unique_ptr<HldTreeOracle>> Build(
      const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
      Rng* rng, VertexId root = -1);

  Result<double> Distance(VertexId u, VertexId v) const override;
  /// Fused serial kernel: an O(1) Euler-tour LCA plus two unchecked chain
  /// ascents per pair, full-chain climbs answered by the countr_zero
  /// prefix specialization of the dyadic structure.
  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override;
  std::string Name() const override { return kName; }
  /// The flat buffers the ascent kernel streams: per-vertex chain arrays,
  /// ascent caches, the packed LCA structure, and every chain's dyadic
  /// blocks.
  void AppendReleasedBuffers(std::vector<ReleasedBuffer>* out) const override;

  /// One incremental update epoch: maps each dirty edge to its heavy-
  /// chain block stack (or light scalar), redraws fresh noise for only
  /// those blocks at the build-time scale, recomputes the ascent caches
  /// of the dirty chains, and charges Pure(build_eps * g / sensitivity())
  /// where g is the epoch's own sensitivity (see the header comment).
  /// Budget-exhausted epochs refuse before touching any block.
  Status ApplyWeightUpdates(std::span<const EdgeWeightDelta> deltas,
                            ReleaseContext& ctx) override;

  int num_chains() const { return static_cast<int>(chains_.size()); }
  double noise_scale() const { return noise_scale_; }
  /// Release sensitivity (max chain levels) and total noise draws, for
  /// telemetry.
  int sensitivity() const { return sensitivity_; }
  int num_noisy_values() const { return num_noisy_values_; }

  /// High-probability per-pair error bound with the constants proved in
  /// the header comment (Lemma 3.1 over at most 4 log^2 V summands).
  static double ErrorBound(int num_vertices, const PrivacyParams& params,
                           double gamma);

  /// Persists the released noisy state: every chain's dyadic blocks
  /// (concatenated, with per-chain counts), the light-edge scalars, and
  /// the release calibration. The decomposition itself (chains, LCA,
  /// membership) is deterministic post-processing of the public topology
  /// and is rebuilt at restore.
  Status SaveReleasedState(std::vector<ReleasedSection>* out) const override;

  /// OracleLoader counterpart: rebuilds the deterministic skeleton from
  /// the public tree, then overwrites every noisy value with the
  /// persisted image and recomputes the ascent caches. Queries are
  /// bit-identical to the saved instance. Post-restart update epochs
  /// recompute dirty block sums from the CURRENT workload weights — if
  /// updates had drifted the weights before the snapshot, the first
  /// post-restart epoch re-bases those sums (documented warm-restart
  /// semantic; privacy is unaffected).
  static Result<std::unique_ptr<DistanceOracle>> FromReleasedState(
      const Graph& graph, const EdgeWeights& w,
      std::span<const ReleasedSectionView> sections);

 private:
  HldTreeOracle() = default;

  // Noisy distance from `v` up to its ancestor `z` (sum of chain ranges).
  // Both must be valid vertices with z an ancestor of v.
  double DistanceToAncestor(VertexId v, VertexId z) const;

  // Rebuilds the ascent caches of chain `c` from its (possibly redrawn)
  // released blocks.
  void RecomputeAscentCosts(int c);

  std::unique_ptr<RootedTree> tree_;
  std::unique_ptr<EulerTourLca> lca_;
  double noise_scale_ = 0.0;
  int sensitivity_ = 0;
  int num_noisy_values_ = 0;
  // The per-release epsilon the noise scale was calibrated to at build;
  // incremental epochs charge their dirty fraction of it.
  double release_epsilon_ = 0.0;
  // Heavy-chain bookkeeping. The per-vertex arrays are on the query hot
  // path, hence cache-line aligned.
  AlignedVector<int> chain_of_;      // vertex -> chain index
  AlignedVector<int> pos_in_chain_;  // vertex -> position along its chain
  std::vector<VertexId> chain_head_;  // chain -> shallowest vertex
  // edge id -> the child endpoint whose parent edge it is; the update
  // path's dirty-edge -> (chain, position) map.
  std::vector<VertexId> edge_child_;
  // Flat CSR chain membership (chain -> vertices by position), for
  // recomputing the ascent caches of dirty chains.
  std::vector<uint32_t> chain_member_offset_;
  std::vector<VertexId> chain_member_list_;
  std::vector<NoisyDyadicRangeSums> chains_;  // chain -> released structure
  // chain -> noisy weight of the light edge above its head (0 at the root
  // chain).
  AlignedVector<double> light_noisy_;
  // Ascent hot-path caches, pure post-processing of the release computed
  // once at build: ascent_cost_[v] is the noisy cost of climbing from v
  // off the top of its chain (the chain-prefix block sum plus the light
  // edge — the exact value the ascent loop previously recomputed per
  // query), and head_parent_[c] is the vertex the climb lands on.
  AlignedVector<double> ascent_cost_;
  AlignedVector<VertexId> head_parent_;
};

}  // namespace dpsp

#endif  // DPSP_CORE_HLD_ORACLE_H_
