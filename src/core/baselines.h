// Baseline mechanisms from the introduction of Section 4. All of them apply
// to arbitrary graphs and serve as the comparison points for the paper's
// improved tree / bounded-weight algorithms:
//
//  * Single-pair query — one distance is a sensitivity-1 query, so the
//    Laplace mechanism answers it with Lap(1/eps) noise.
//  * All-pairs, pure DP — basic composition over the V(V-1)/2 pairs; noise
//    scale ~ V^2 / eps per query.
//  * All-pairs, approximate DP — advanced composition (Lemma 3.4); noise
//    scale ~ V sqrt(ln(1/delta)) / eps per query.
//  * Synthetic graph release — add Lap(1/eps) to every edge weight, clamp
//    at zero, publish the weighted graph; all distances (and paths —
//    Algorithm 3 builds on this) are post-processing. Error ~ (V/eps)
//    log(E/gamma) on every distance.
//  * Exact oracle — non-private ground truth for evaluation.
//
// The DRV10 boosting baseline discussed in §1.3 is exponential-time and is
// deliberately not implemented (DESIGN.md §1.3); its error formula is
// reported by bench_baselines for context.

#ifndef DPSP_CORE_BASELINES_H_
#define DPSP_CORE_BASELINES_H_

#include <memory>

#include "common/random.h"
#include "core/distance_oracle.h"
#include "dp/privacy.h"
#include "dp/release_context.h"

namespace dpsp {

/// Registry names of the baseline oracles.
inline constexpr const char* kExactOracleName = "exact";
inline constexpr const char* kPerPairLaplaceOracleName = "per-pair-laplace";
inline constexpr const char* kSyntheticGraphOracleName = "synthetic-graph";

/// One private distance query: dw(u, v) + Lap(rho/eps). Consumes the whole
/// budget for a single pair (Section 4, first paragraph).
Result<double> PrivateSinglePairDistance(const Graph& graph,
                                         const EdgeWeights& w, VertexId u,
                                         VertexId v,
                                         const PrivacyParams& params,
                                         Rng* rng);

/// Exact (non-private!) oracle for evaluation harnesses.
Result<std::unique_ptr<DistanceOracle>> MakeExactOracle(const Graph& graph,
                                                        const EdgeWeights& w);

/// Pipeline variant: charges nothing (the exact oracle is not private) but
/// records a zero-budget telemetry row so sweeps stay uniform.
Result<std::unique_ptr<DistanceOracle>> MakeExactOracle(const Graph& graph,
                                                        const EdgeWeights& w,
                                                        ReleaseContext& ctx);

/// All-pairs Laplace baseline. With params.delta == 0, uses basic
/// composition (noise scale = #pairs * rho / eps); with delta > 0, uses the
/// better of basic and advanced composition. Requires non-negative weights.
Result<std::unique_ptr<DistanceOracle>> MakePerPairLaplaceOracle(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng);

/// Pipeline variant: draws one release of ctx.params() from the accountant
/// and records telemetry.
Result<std::unique_ptr<DistanceOracle>> MakePerPairLaplaceOracle(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx);

/// Synthetic-graph baseline: releases (G, w + Lap(rho/eps) per edge,
/// clamped at 0) and answers queries by Dijkstra on the released weights.
/// Pure eps-DP.
Result<std::unique_ptr<DistanceOracle>> MakeSyntheticGraphOracle(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng);

/// Pipeline variant: draws one release of ctx.params() from the accountant
/// and records telemetry.
Result<std::unique_ptr<DistanceOracle>> MakeSyntheticGraphOracle(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx);

/// Snapshot-restore factories (OracleLoader signature): rebuild each
/// baseline from its persisted released matrix. No budget is consumed.
Result<std::unique_ptr<DistanceOracle>> RestoreExactOracle(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections);
Result<std::unique_ptr<DistanceOracle>> RestorePerPairLaplaceOracle(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections);
Result<std::unique_ptr<DistanceOracle>> RestoreSyntheticGraphOracle(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections);

/// The per-query Laplace noise scale the all-pairs baseline uses, exposed
/// for reporting. `num_pairs` = V(V-1)/2.
Result<double> PerPairLaplaceNoiseScale(int num_pairs,
                                        const PrivacyParams& params);

/// Single-source distances via direct composition (the remark after
/// Theorem 4.6): release the V-1 distances from `source`, each with
/// Laplace noise calibrated by the better of basic and advanced
/// composition. With delta > 0 the per-distance noise scale is
/// O(sqrt(V log(1/delta)))/eps. Unreachable vertices stay infinite.
Result<std::vector<double>> PrivateSingleSourceDistances(
    const Graph& graph, const EdgeWeights& w, VertexId source,
    const PrivacyParams& params, Rng* rng);

/// Error formula of the (unimplemented, exponential-time) DRV10 boosting
/// baseline for integer weights with known ||w||_1, for the comparison
/// table: O~(sqrt(||w||_1) log V log^1.5(1/delta) / eps). Constants set
/// to 1.
double Drv10ErrorFormula(double w1_norm, int num_vertices, double epsilon,
                         double delta);

}  // namespace dpsp

#endif  // DPSP_CORE_BASELINES_H_
