#include "core/distance_oracle.h"

#include <cmath>

#include "common/parallel.h"
#include "common/statistics.h"
#include "graph/shortest_path.h"

namespace dpsp {

Status DistanceOracle::DistanceInto(std::span<const VertexPair> pairs,
                                    double* out) const {
  for (size_t i = 0; i < pairs.size(); ++i) {
    DPSP_ASSIGN_OR_RETURN(out[i],
                          Distance(pairs[i].first, pairs[i].second));
  }
  return Status::Ok();
}

Result<std::vector<double>> DistanceOracle::DistanceBatch(
    std::span<const VertexPair> pairs) const {
  return DistanceBatchOf(*this, pairs);
}

Result<std::vector<double>> DistanceBatchOf(const DistanceOracle& oracle,
                                            std::span<const VertexPair> pairs,
                                            int max_threads) {
  std::vector<double> out(pairs.size(), 0.0);
  // Degenerate batches never touch the fan-out machinery: an empty batch
  // is a well-defined empty result (out.data() may be null, so the kernel
  // must not be handed it), and a single pair runs the kernel inline.
  if (pairs.empty()) return out;
  if (pairs.size() == 1) {
    DPSP_RETURN_IF_ERROR(oracle.DistanceInto(pairs, out.data()));
    return out;
  }
  DPSP_RETURN_IF_ERROR(ParallelForStatus(
      pairs.size(), max_threads, [&](size_t begin, size_t end) {
        return oracle.DistanceInto(pairs.subspan(begin, end - begin),
                                   out.data() + begin);
      }));
  return out;
}

namespace {

Result<OracleErrorReport> Evaluate(const Graph& graph,
                                   const DistanceMatrix& exact,
                                   const DistanceOracle& oracle,
                                   const std::vector<VertexPair>& pairs) {
  for (const auto& [u, v] : pairs) {
    if (!graph.HasVertex(u) || !graph.HasVertex(v)) {
      return Status::InvalidArgument("evaluation pair out of range");
    }
  }
  DPSP_ASSIGN_OR_RETURN(std::vector<double> estimates,
                        oracle.DistanceBatch(pairs));
  std::vector<double> errors;
  errors.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    double truth = exact.at(pairs[i].first, pairs[i].second);
    if (truth == kInfiniteDistance) continue;  // unreachable: skip
    errors.push_back(std::fabs(estimates[i] - truth));
  }
  OracleErrorReport report;
  report.num_pairs = static_cast<int>(errors.size());
  if (!errors.empty()) {
    report.max_abs_error = MaxAbs(errors);
    report.mean_abs_error = Mean(errors);
    report.p50_abs_error = Quantile(errors, 0.5);
    report.p95_abs_error = Quantile(errors, 0.95);
  }
  return report;
}

}  // namespace

Result<OracleErrorReport> EvaluateOracleAllPairs(const Graph& graph,
                                                 const DistanceMatrix& exact,
                                                 const DistanceOracle& oracle) {
  std::vector<VertexPair> pairs;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (VertexId v = u + 1; v < graph.num_vertices(); ++v) {
      pairs.emplace_back(u, v);
    }
  }
  return Evaluate(graph, exact, oracle, pairs);
}

Result<OracleErrorReport> EvaluateOraclePairs(
    const Graph& graph, const DistanceMatrix& exact,
    const DistanceOracle& oracle, const std::vector<VertexPair>& pairs) {
  return Evaluate(graph, exact, oracle, pairs);
}

}  // namespace dpsp
