#include "core/distance_oracle.h"

#include <cmath>

#include "common/statistics.h"
#include "graph/shortest_path.h"

namespace dpsp {

namespace {

Result<OracleErrorReport> Evaluate(
    const Graph& graph, const DistanceMatrix& exact,
    const DistanceOracle& oracle,
    const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  std::vector<double> errors;
  errors.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    if (!graph.HasVertex(u) || !graph.HasVertex(v)) {
      return Status::InvalidArgument("evaluation pair out of range");
    }
    double truth = exact.at(u, v);
    if (truth == kInfiniteDistance) continue;  // unreachable: skip
    DPSP_ASSIGN_OR_RETURN(double estimate, oracle.Distance(u, v));
    errors.push_back(std::fabs(estimate - truth));
  }
  OracleErrorReport report;
  report.num_pairs = static_cast<int>(errors.size());
  if (!errors.empty()) {
    report.max_abs_error = MaxAbs(errors);
    report.mean_abs_error = Mean(errors);
    report.p50_abs_error = Quantile(errors, 0.5);
    report.p95_abs_error = Quantile(errors, 0.95);
  }
  return report;
}

}  // namespace

Result<OracleErrorReport> EvaluateOracleAllPairs(const Graph& graph,
                                                 const DistanceMatrix& exact,
                                                 const DistanceOracle& oracle) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (VertexId v = u + 1; v < graph.num_vertices(); ++v) {
      pairs.emplace_back(u, v);
    }
  }
  return Evaluate(graph, exact, oracle, pairs);
}

Result<OracleErrorReport> EvaluateOraclePairs(
    const Graph& graph, const DistanceMatrix& exact,
    const DistanceOracle& oracle,
    const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  return Evaluate(graph, exact, oracle, pairs);
}

}  // namespace dpsp
