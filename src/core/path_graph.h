// Private all-pairs distances on the path graph (Appendix A / Theorem A.1),
// a restatement of the DNPR10 binary counting mechanism.
//
// The hub hierarchy is instantiated with branching factor 2 (the paper's
// k = log V levels with one-out-of-every-V^{i/k} hubs; with V^{1/k} = 2 the
// level-i hubs are the multiples of 2^i). The noisy value stored for a
// consecutive level-i hub pair (j 2^i, (j+1) 2^i) is exactly the dyadic
// segment sum of edge weights over [j 2^i, (j+1) 2^i), so the release is
// the classic segment-tree of noisy partial sums:
//   * every edge lies in exactly one segment per level -> the full release
//     has sensitivity (#levels), handled by one Laplace mechanism with
//     scale (#levels)/eps;
//   * any query interval [x, y) decomposes into at most 2 #levels aligned
//     segments, so each distance estimate sums <= 2 log2 V noisy values,
//     giving error O(log^1.5 V log(1/gamma))/eps by Lemma 3.1.

#ifndef DPSP_CORE_PATH_GRAPH_H_
#define DPSP_CORE_PATH_GRAPH_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/distance_oracle.h"
#include "dp/privacy.h"
#include "dp/release_context.h"

namespace dpsp {

/// eps-DP all-pairs distance oracle for the path graph 0-1-...-(V-1).
class PathGraphOracle final : public DistanceOracle {
 public:
  /// Registry name of this mechanism.
  static constexpr const char* kName = "path-hierarchy";

  /// Builds the hierarchy through the release pipeline: draws one release
  /// of ctx.params() from the accountant and records telemetry.
  static Result<std::unique_ptr<PathGraphOracle>> Build(
      const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx,
      int branching = 2);

  /// Legacy entry point without budget accounting. `graph` must be
  /// MakePathGraph(V)-shaped: edge i joins vertices i and i+1 (validated).
  /// Weights non-negative.
  ///
  /// `branching` is the paper's V^{1/k} hub spacing ratio: level-i hubs sit
  /// at multiples of branching^i. branching = 2 (default) gives the
  /// k = log2 V instantiation used for Theorem A.1's final bound; larger
  /// values trade fewer levels (lower release sensitivity) for more
  /// segments per query — the Appendix-A tuning knob, exercised by
  /// bench_path_graph's ablation rows.
  static Result<std::unique_ptr<PathGraphOracle>> Build(
      const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
      Rng* rng, int branching = 2);

  /// Estimated distance |path sum| between u and v; symmetric in (u, v).
  Result<double> Distance(VertexId u, VertexId v) const override;
  /// Fused serial kernel: the greedy aligned hub decomposition per pair
  /// with bounds checks folded into the loop.
  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override;
  std::string Name() const override { return kName; }

  /// Number of hub levels (= sensitivity of the release).
  int num_levels() const { return static_cast<int>(levels_.size()); }
  double noise_scale() const { return noise_scale_; }
  /// Total noisy block sums stored, for telemetry.
  int num_noisy_values() const;

  /// Number of noisy values a query for [u, v) sums (for tests).
  Result<int> QuerySegmentCount(VertexId u, VertexId v) const;

  int branching() const { return branching_; }

  /// Persists the released hierarchy: every level's noisy block sums
  /// (flattened, with per-level counts) plus the build parameters. The
  /// level widths are branching^l, rebuilt at restore.
  Status SaveReleasedState(std::vector<ReleasedSection>* out) const override;

  /// OracleLoader counterpart: validates the path shape, rebuilds the
  /// width table, and installs the persisted noisy levels. Bit-identical
  /// queries, no budget consumed.
  static Result<std::unique_ptr<DistanceOracle>> FromReleasedState(
      const Graph& graph, const EdgeWeights& w,
      std::span<const ReleasedSectionView> sections);

 private:
  PathGraphOracle() = default;

  // levels_[l][j]: noisy sum of edges [j b^l, min((j+1) b^l, m)).
  std::vector<std::vector<double>> levels_;
  // widths_[l] = branching^l.
  std::vector<int64_t> widths_;
  int branching_ = 2;
  int num_edges_ = 0;
  int num_vertices_ = 0;
  double noise_scale_ = 0.0;

  // Sums noisy segments covering edge interval [lo, hi); counts segments.
  double QueryRange(int lo, int hi, int* segments) const;
};

/// High-probability per-pair error bound of Theorem A.1 with the proved
/// constants (Lemma 3.1 over at most 2 #levels summands).
double PathGraphErrorBound(int num_vertices, const PrivacyParams& params,
                           double gamma);

}  // namespace dpsp

#endif  // DPSP_CORE_PATH_GRAPH_H_
