#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/table.h"
#include "core/released_state.h"
#include "dp/composition.h"
#include "dp/laplace_mechanism.h"
#include "graph/shortest_path.h"

namespace dpsp {

namespace {

// The three baseline oracles all release a dense matrix; they share one
// persistence image: "matrix" (row-major doubles) + "meta" (n).
Status SaveMatrixState(const DistanceMatrix& matrix,
                       std::vector<ReleasedSection>* out) {
  out->push_back(released_state::Pack<double>(
      "matrix", std::span<const double>(matrix.data())));
  out->push_back(released_state::PackScalars(
      "meta", {static_cast<double>(matrix.size())}));
  return Status::Ok();
}

Result<DistanceMatrix> RestoreMatrixState(
    const Graph& graph, std::span<const ReleasedSectionView> sections) {
  DPSP_ASSIGN_OR_RETURN(std::span<const double> meta,
                        released_state::Require<double>(sections, "meta", 1));
  DPSP_ASSIGN_OR_RETURN(int n,
                        released_state::AsInt(meta[0], "matrix size"));
  if (n != graph.num_vertices()) {
    return Status::InvalidArgument(StrFormat(
        "snapshot matrix is %d x %d but the workload has %d vertices", n, n,
        graph.num_vertices()));
  }
  DPSP_ASSIGN_OR_RETURN(
      std::span<const double> data,
      released_state::Require<double>(
          sections, "matrix", static_cast<long>(n) * static_cast<long>(n)));
  return DistanceMatrix::FromData(
      n, std::vector<double>(data.begin(), data.end()));
}

// Fused serial kernel over a dense distance matrix: one row-major load per
// pair, bounds checks folded into the loop. Shared by the three baseline
// oracles whose released object is a matrix.
Status MatrixDistanceInto(const DistanceMatrix& matrix,
                          std::span<const VertexPair> pairs, double* out) {
  const unsigned n = static_cast<unsigned>(matrix.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [u, v] = pairs[i];
    if (static_cast<unsigned>(u) >= n || static_cast<unsigned>(v) >= n) {
      return Status::InvalidArgument("vertex out of range");
    }
    out[i] = matrix.at(u, v);
  }
  return Status::Ok();
}

class ExactOracle final : public DistanceOracle {
 public:
  explicit ExactOracle(DistanceMatrix matrix) : matrix_(std::move(matrix)) {}

  Result<double> Distance(VertexId u, VertexId v) const override {
    if (u < 0 || u >= matrix_.size() || v < 0 || v >= matrix_.size()) {
      return Status::InvalidArgument("vertex out of range");
    }
    return matrix_.at(u, v);
  }

  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override {
    return MatrixDistanceInto(matrix_, pairs, out);
  }

  std::string Name() const override { return kExactOracleName; }

  Status SaveReleasedState(std::vector<ReleasedSection>* out) const override {
    return SaveMatrixState(matrix_, out);
  }

 private:
  DistanceMatrix matrix_;
};

// Dense symmetric noisy-distance table (also used by the approx variant).
class PerPairLaplaceOracle final : public DistanceOracle {
 public:
  PerPairLaplaceOracle(DistanceMatrix noisy, std::string name)
      : noisy_(std::move(noisy)), name_(std::move(name)) {}

  Result<double> Distance(VertexId u, VertexId v) const override {
    if (u < 0 || u >= noisy_.size() || v < 0 || v >= noisy_.size()) {
      return Status::InvalidArgument("vertex out of range");
    }
    return noisy_.at(u, v);
  }

  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override {
    return MatrixDistanceInto(noisy_, pairs, out);
  }

  std::string Name() const override { return name_; }

  Status SaveReleasedState(std::vector<ReleasedSection>* out) const override {
    DPSP_RETURN_IF_ERROR(SaveMatrixState(noisy_, out));
    // The display name encodes the composition mode chosen at build time
    // (pure vs approx), which restore cannot re-derive without params.
    ReleasedSection name;
    name.label = "name";
    name.bytes.assign(name_.begin(), name_.end());
    out->push_back(std::move(name));
    return Status::Ok();
  }

 private:
  DistanceMatrix noisy_;
  std::string name_;
};

class SyntheticGraphOracle final : public DistanceOracle {
 public:
  explicit SyntheticGraphOracle(DistanceMatrix distances)
      : distances_(std::move(distances)) {}

  Result<double> Distance(VertexId u, VertexId v) const override {
    if (u < 0 || u >= distances_.size() || v < 0 || v >= distances_.size()) {
      return Status::InvalidArgument("vertex out of range");
    }
    return distances_.at(u, v);
  }

  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override {
    return MatrixDistanceInto(distances_, pairs, out);
  }

  std::string Name() const override { return kSyntheticGraphOracleName; }

  Status SaveReleasedState(std::vector<ReleasedSection>* out) const override {
    return SaveMatrixState(distances_, out);
  }

 private:
  DistanceMatrix distances_;
};

}  // namespace

Result<double> PrivateSinglePairDistance(const Graph& graph,
                                         const EdgeWeights& w, VertexId u,
                                         VertexId v,
                                         const PrivacyParams& params,
                                         Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  if (!graph.HasVertex(u) || !graph.HasVertex(v)) {
    return Status::InvalidArgument("vertex out of range");
  }
  DPSP_ASSIGN_OR_RETURN(ShortestPathTree tree, Dijkstra(graph, w, u));
  double truth = tree.distance[static_cast<size_t>(v)];
  if (truth == kInfiniteDistance) {
    return Status::NotFound("vertices are disconnected");
  }
  // A single distance has sensitivity 1 per unit l1 change in the weights.
  return LaplaceMechanismScalar(truth, 1.0, params, rng);
}

Result<std::unique_ptr<DistanceOracle>> MakeExactOracle(const Graph& graph,
                                                        const EdgeWeights& w) {
  DPSP_ASSIGN_OR_RETURN(DistanceMatrix matrix, AllPairsDijkstra(graph, w));
  return std::unique_ptr<DistanceOracle>(new ExactOracle(std::move(matrix)));
}

Result<std::unique_ptr<DistanceOracle>> MakeExactOracle(const Graph& graph,
                                                        const EdgeWeights& w,
                                                        ReleaseContext& ctx) {
  WallTimer timer;
  DPSP_ASSIGN_OR_RETURN(auto oracle, MakeExactOracle(graph, w));
  ReleaseTelemetry t;
  t.mechanism = kExactOracleName;  // eps/delta stay 0: nothing is private
  t.wall_ms = timer.Ms();
  ctx.RecordTelemetry(std::move(t));
  return oracle;
}

Result<double> PerPairLaplaceNoiseScale(int num_pairs,
                                        const PrivacyParams& params) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  if (num_pairs < 1) {
    return Status::InvalidArgument("need at least one pair");
  }
  DPSP_ASSIGN_OR_RETURN(
      double per_query_eps,
      PerQueryEpsilonBest(num_pairs, params.epsilon, params.delta));
  return params.neighbor_l1_bound / per_query_eps;
}

Result<std::unique_ptr<DistanceOracle>> MakePerPairLaplaceOracle(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_ASSIGN_OR_RETURN(DistanceMatrix exact, AllPairsDijkstra(graph, w));
  int n = graph.num_vertices();
  int num_pairs = std::max(1, n * (n - 1) / 2);
  DPSP_ASSIGN_OR_RETURN(double scale,
                        PerPairLaplaceNoiseScale(num_pairs, params));

  DistanceMatrix noisy(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      double truth = exact.at(u, v);
      double released = truth == kInfiniteDistance
                            ? kInfiniteDistance
                            : truth + rng->Laplace(scale);
      noisy.set(u, v, released);
      noisy.set(v, u, released);
    }
  }
  std::string name =
      params.pure() ? "per-pair-laplace(pure)" : "per-pair-laplace(approx)";
  return std::unique_ptr<DistanceOracle>(
      new PerPairLaplaceOracle(std::move(noisy), std::move(name)));
}

Result<std::unique_ptr<DistanceOracle>> MakePerPairLaplaceOracle(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx) {
  return ctx.MeteredBuild(
      kPerPairLaplaceOracleName,
      [&] {
        return MakePerPairLaplaceOracle(graph, w, ctx.params(), ctx.rng());
      },
      [&](const DistanceOracle&, ReleaseTelemetry& t) {
        int n = graph.num_vertices();
        int num_pairs = std::max(1, n * (n - 1) / 2);
        // Joint l1 sensitivity under basic composition.
        t.sensitivity = num_pairs;
        if (Result<double> scale =
                PerPairLaplaceNoiseScale(num_pairs, ctx.params());
            scale.ok()) {
          t.noise_scale = *scale;
        }
        t.noise_draws = num_pairs;
      });
}

Result<std::unique_ptr<DistanceOracle>> MakeSyntheticGraphOracle(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  // Releasing the entire weight vector is a sensitivity-1 query (identity).
  DPSP_ASSIGN_OR_RETURN(EdgeWeights noisy,
                        LaplaceMechanism(w, 1.0, params, rng));
  // Clamping at zero is post-processing and keeps Dijkstra applicable.
  for (double& x : noisy) x = std::max(0.0, x);
  DPSP_ASSIGN_OR_RETURN(DistanceMatrix distances,
                        AllPairsDijkstra(graph, noisy));
  return std::unique_ptr<DistanceOracle>(
      new SyntheticGraphOracle(std::move(distances)));
}

Result<std::unique_ptr<DistanceOracle>> MakeSyntheticGraphOracle(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx) {
  return ctx.MeteredBuild(
      kSyntheticGraphOracleName,
      [&] {
        return MakeSyntheticGraphOracle(graph, w, ctx.params(), ctx.rng());
      },
      [&](const DistanceOracle&, ReleaseTelemetry& t) {
        t.sensitivity = 1.0;  // identity query on the weight vector
        t.noise_scale = ctx.params().neighbor_l1_bound / ctx.params().epsilon;
        t.noise_draws = graph.num_edges();
      });
}

Result<std::vector<double>> PrivateSingleSourceDistances(
    const Graph& graph, const EdgeWeights& w, VertexId source,
    const PrivacyParams& params, Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  if (!graph.HasVertex(source)) {
    return Status::InvalidArgument("source vertex out of range");
  }
  DPSP_ASSIGN_OR_RETURN(ShortestPathTree tree, Dijkstra(graph, w, source));
  int queries = std::max(1, graph.num_vertices() - 1);
  DPSP_ASSIGN_OR_RETURN(
      double per_query_eps,
      PerQueryEpsilonBest(queries, params.epsilon, params.delta));
  double scale = params.neighbor_l1_bound / per_query_eps;
  std::vector<double> out(tree.distance.size(), kInfiniteDistance);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (v == source) {
      out[static_cast<size_t>(v)] = 0.0;
      continue;
    }
    if (tree.Reachable(v)) {
      out[static_cast<size_t>(v)] =
          tree.distance[static_cast<size_t>(v)] + rng->Laplace(scale);
    }
  }
  return out;
}

double Drv10ErrorFormula(double w1_norm, int num_vertices, double epsilon,
                         double delta) {
  DPSP_CHECK_MSG(w1_norm >= 0.0 && num_vertices >= 2 && epsilon > 0.0 &&
                     delta > 0.0 && delta < 1.0,
                 "invalid DRV10 formula arguments");
  double log_v = std::log(static_cast<double>(num_vertices));
  double log_d = std::log(1.0 / delta);
  return std::sqrt(w1_norm) * log_v * std::pow(log_d, 1.5) / epsilon;
}

Result<std::unique_ptr<DistanceOracle>> RestoreExactOracle(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections) {
  (void)w;
  DPSP_ASSIGN_OR_RETURN(DistanceMatrix matrix,
                        RestoreMatrixState(graph, sections));
  return std::unique_ptr<DistanceOracle>(new ExactOracle(std::move(matrix)));
}

Result<std::unique_ptr<DistanceOracle>> RestorePerPairLaplaceOracle(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections) {
  (void)w;
  DPSP_ASSIGN_OR_RETURN(DistanceMatrix matrix,
                        RestoreMatrixState(graph, sections));
  DPSP_ASSIGN_OR_RETURN(ReleasedSectionView name_section,
                        released_state::Find(sections, "name"));
  std::string name(reinterpret_cast<const char*>(name_section.bytes.data()),
                   name_section.bytes.size());
  return std::unique_ptr<DistanceOracle>(
      new PerPairLaplaceOracle(std::move(matrix), std::move(name)));
}

Result<std::unique_ptr<DistanceOracle>> RestoreSyntheticGraphOracle(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections) {
  (void)w;
  DPSP_ASSIGN_OR_RETURN(DistanceMatrix matrix,
                        RestoreMatrixState(graph, sections));
  return std::unique_ptr<DistanceOracle>(
      new SyntheticGraphOracle(std::move(matrix)));
}

}  // namespace dpsp
