#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/table.h"
#include "dp/composition.h"
#include "dp/laplace_mechanism.h"
#include "graph/shortest_path.h"

namespace dpsp {

namespace {

// Fused serial kernel over a dense distance matrix: one row-major load per
// pair, bounds checks folded into the loop. Shared by the three baseline
// oracles whose released object is a matrix.
Status MatrixDistanceInto(const DistanceMatrix& matrix,
                          std::span<const VertexPair> pairs, double* out) {
  const unsigned n = static_cast<unsigned>(matrix.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [u, v] = pairs[i];
    if (static_cast<unsigned>(u) >= n || static_cast<unsigned>(v) >= n) {
      return Status::InvalidArgument("vertex out of range");
    }
    out[i] = matrix.at(u, v);
  }
  return Status::Ok();
}

class ExactOracle final : public DistanceOracle {
 public:
  explicit ExactOracle(DistanceMatrix matrix) : matrix_(std::move(matrix)) {}

  Result<double> Distance(VertexId u, VertexId v) const override {
    if (u < 0 || u >= matrix_.size() || v < 0 || v >= matrix_.size()) {
      return Status::InvalidArgument("vertex out of range");
    }
    return matrix_.at(u, v);
  }

  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override {
    return MatrixDistanceInto(matrix_, pairs, out);
  }

  std::string Name() const override { return kExactOracleName; }

 private:
  DistanceMatrix matrix_;
};

// Dense symmetric noisy-distance table (also used by the approx variant).
class PerPairLaplaceOracle final : public DistanceOracle {
 public:
  PerPairLaplaceOracle(DistanceMatrix noisy, std::string name)
      : noisy_(std::move(noisy)), name_(std::move(name)) {}

  Result<double> Distance(VertexId u, VertexId v) const override {
    if (u < 0 || u >= noisy_.size() || v < 0 || v >= noisy_.size()) {
      return Status::InvalidArgument("vertex out of range");
    }
    return noisy_.at(u, v);
  }

  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override {
    return MatrixDistanceInto(noisy_, pairs, out);
  }

  std::string Name() const override { return name_; }

 private:
  DistanceMatrix noisy_;
  std::string name_;
};

class SyntheticGraphOracle final : public DistanceOracle {
 public:
  explicit SyntheticGraphOracle(DistanceMatrix distances)
      : distances_(std::move(distances)) {}

  Result<double> Distance(VertexId u, VertexId v) const override {
    if (u < 0 || u >= distances_.size() || v < 0 || v >= distances_.size()) {
      return Status::InvalidArgument("vertex out of range");
    }
    return distances_.at(u, v);
  }

  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override {
    return MatrixDistanceInto(distances_, pairs, out);
  }

  std::string Name() const override { return kSyntheticGraphOracleName; }

 private:
  DistanceMatrix distances_;
};

}  // namespace

Result<double> PrivateSinglePairDistance(const Graph& graph,
                                         const EdgeWeights& w, VertexId u,
                                         VertexId v,
                                         const PrivacyParams& params,
                                         Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  if (!graph.HasVertex(u) || !graph.HasVertex(v)) {
    return Status::InvalidArgument("vertex out of range");
  }
  DPSP_ASSIGN_OR_RETURN(ShortestPathTree tree, Dijkstra(graph, w, u));
  double truth = tree.distance[static_cast<size_t>(v)];
  if (truth == kInfiniteDistance) {
    return Status::NotFound("vertices are disconnected");
  }
  // A single distance has sensitivity 1 per unit l1 change in the weights.
  return LaplaceMechanismScalar(truth, 1.0, params, rng);
}

Result<std::unique_ptr<DistanceOracle>> MakeExactOracle(const Graph& graph,
                                                        const EdgeWeights& w) {
  DPSP_ASSIGN_OR_RETURN(DistanceMatrix matrix, AllPairsDijkstra(graph, w));
  return std::unique_ptr<DistanceOracle>(new ExactOracle(std::move(matrix)));
}

Result<std::unique_ptr<DistanceOracle>> MakeExactOracle(const Graph& graph,
                                                        const EdgeWeights& w,
                                                        ReleaseContext& ctx) {
  WallTimer timer;
  DPSP_ASSIGN_OR_RETURN(auto oracle, MakeExactOracle(graph, w));
  ReleaseTelemetry t;
  t.mechanism = kExactOracleName;  // eps/delta stay 0: nothing is private
  t.wall_ms = timer.Ms();
  ctx.RecordTelemetry(std::move(t));
  return oracle;
}

Result<double> PerPairLaplaceNoiseScale(int num_pairs,
                                        const PrivacyParams& params) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  if (num_pairs < 1) {
    return Status::InvalidArgument("need at least one pair");
  }
  DPSP_ASSIGN_OR_RETURN(
      double per_query_eps,
      PerQueryEpsilonBest(num_pairs, params.epsilon, params.delta));
  return params.neighbor_l1_bound / per_query_eps;
}

Result<std::unique_ptr<DistanceOracle>> MakePerPairLaplaceOracle(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_ASSIGN_OR_RETURN(DistanceMatrix exact, AllPairsDijkstra(graph, w));
  int n = graph.num_vertices();
  int num_pairs = std::max(1, n * (n - 1) / 2);
  DPSP_ASSIGN_OR_RETURN(double scale,
                        PerPairLaplaceNoiseScale(num_pairs, params));

  DistanceMatrix noisy(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      double truth = exact.at(u, v);
      double released = truth == kInfiniteDistance
                            ? kInfiniteDistance
                            : truth + rng->Laplace(scale);
      noisy.set(u, v, released);
      noisy.set(v, u, released);
    }
  }
  std::string name =
      params.pure() ? "per-pair-laplace(pure)" : "per-pair-laplace(approx)";
  return std::unique_ptr<DistanceOracle>(
      new PerPairLaplaceOracle(std::move(noisy), std::move(name)));
}

Result<std::unique_ptr<DistanceOracle>> MakePerPairLaplaceOracle(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx) {
  return ctx.MeteredBuild(
      kPerPairLaplaceOracleName,
      [&] {
        return MakePerPairLaplaceOracle(graph, w, ctx.params(), ctx.rng());
      },
      [&](const DistanceOracle&, ReleaseTelemetry& t) {
        int n = graph.num_vertices();
        int num_pairs = std::max(1, n * (n - 1) / 2);
        // Joint l1 sensitivity under basic composition.
        t.sensitivity = num_pairs;
        if (Result<double> scale =
                PerPairLaplaceNoiseScale(num_pairs, ctx.params());
            scale.ok()) {
          t.noise_scale = *scale;
        }
        t.noise_draws = num_pairs;
      });
}

Result<std::unique_ptr<DistanceOracle>> MakeSyntheticGraphOracle(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  // Releasing the entire weight vector is a sensitivity-1 query (identity).
  DPSP_ASSIGN_OR_RETURN(EdgeWeights noisy,
                        LaplaceMechanism(w, 1.0, params, rng));
  // Clamping at zero is post-processing and keeps Dijkstra applicable.
  for (double& x : noisy) x = std::max(0.0, x);
  DPSP_ASSIGN_OR_RETURN(DistanceMatrix distances,
                        AllPairsDijkstra(graph, noisy));
  return std::unique_ptr<DistanceOracle>(
      new SyntheticGraphOracle(std::move(distances)));
}

Result<std::unique_ptr<DistanceOracle>> MakeSyntheticGraphOracle(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx) {
  return ctx.MeteredBuild(
      kSyntheticGraphOracleName,
      [&] {
        return MakeSyntheticGraphOracle(graph, w, ctx.params(), ctx.rng());
      },
      [&](const DistanceOracle&, ReleaseTelemetry& t) {
        t.sensitivity = 1.0;  // identity query on the weight vector
        t.noise_scale = ctx.params().neighbor_l1_bound / ctx.params().epsilon;
        t.noise_draws = graph.num_edges();
      });
}

Result<std::vector<double>> PrivateSingleSourceDistances(
    const Graph& graph, const EdgeWeights& w, VertexId source,
    const PrivacyParams& params, Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  if (!graph.HasVertex(source)) {
    return Status::InvalidArgument("source vertex out of range");
  }
  DPSP_ASSIGN_OR_RETURN(ShortestPathTree tree, Dijkstra(graph, w, source));
  int queries = std::max(1, graph.num_vertices() - 1);
  DPSP_ASSIGN_OR_RETURN(
      double per_query_eps,
      PerQueryEpsilonBest(queries, params.epsilon, params.delta));
  double scale = params.neighbor_l1_bound / per_query_eps;
  std::vector<double> out(tree.distance.size(), kInfiniteDistance);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (v == source) {
      out[static_cast<size_t>(v)] = 0.0;
      continue;
    }
    if (tree.Reachable(v)) {
      out[static_cast<size_t>(v)] =
          tree.distance[static_cast<size_t>(v)] + rng->Laplace(scale);
    }
  }
  return out;
}

double Drv10ErrorFormula(double w1_norm, int num_vertices, double epsilon,
                         double delta) {
  DPSP_CHECK_MSG(w1_norm >= 0.0 && num_vertices >= 2 && epsilon > 0.0 &&
                     delta > 0.0 && delta < 1.0,
                 "invalid DRV10 formula arguments");
  double log_v = std::log(static_cast<double>(num_vertices));
  double log_d = std::log(1.0 / delta);
  return std::sqrt(w1_norm) * log_v * std::pow(log_d, 1.5) / epsilon;
}

}  // namespace dpsp
