#include "core/private_shortest_path.h"

#include <algorithm>
#include <cmath>

#include "dp/laplace_mechanism.h"

namespace dpsp {

PrivateShortestPaths::PrivateShortestPaths(const Graph* graph,
                                           EdgeWeights released, double offset,
                                           double scale)
    : graph_(graph),
      released_(std::move(released)),
      offset_(offset),
      noise_scale_(scale) {}

Result<PrivateShortestPaths> PrivateShortestPaths::Release(
    const Graph& graph, const EdgeWeights& w,
    const PrivateShortestPathOptions& options, Rng* rng) {
  DPSP_RETURN_IF_ERROR(options.params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  DPSP_RETURN_IF_ERROR(ValidateGamma(options.gamma));
  if (graph.num_edges() == 0) {
    return PrivateShortestPaths(&graph, EdgeWeights{}, 0.0, 0.0);
  }

  DPSP_ASSIGN_OR_RETURN(double scale, LaplaceScale(1.0, options.params));
  double offset =
      scale * std::log(static_cast<double>(graph.num_edges()) / options.gamma);

  DPSP_ASSIGN_OR_RETURN(EdgeWeights noisy,
                        LaplaceMechanism(w, 1.0, options.params, rng));
  for (double& x : noisy) x = std::max(0.0, x + offset);
  return PrivateShortestPaths(&graph, std::move(noisy), offset, scale);
}

Result<std::vector<EdgeId>> PrivateShortestPaths::Path(VertexId u,
                                                       VertexId v) const {
  DPSP_ASSIGN_OR_RETURN(ShortestPathTree tree, PathTree(u));
  return ExtractPathEdges(*graph_, tree, v);
}

Result<ShortestPathTree> PrivateShortestPaths::PathTree(VertexId u) const {
  return Dijkstra(*graph_, released_, u);
}

double PrivateShortestPaths::ErrorBoundForHops(int k) const {
  DPSP_CHECK_MSG(k >= 0, "hop count must be non-negative");
  return 2.0 * static_cast<double>(k) * offset_;
}

}  // namespace dpsp
