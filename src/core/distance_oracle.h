// The common interface all distance-release mechanisms implement, plus the
// error-evaluation harness the experiments share. Every mechanism in this
// library (exact, baselines, tree recursion, HLD, path hierarchy,
// bounded-weight covering, MST/matching releases) is a DistanceOracle
// registered in core/oracle_registry.h, so benches and serving pipelines
// sweep them uniformly.

#ifndef DPSP_CORE_DISTANCE_ORACLE_H_
#define DPSP_CORE_DISTANCE_ORACLE_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/all_pairs.h"
#include "graph/graph.h"

namespace dpsp {

/// One (u, v) distance query.
using VertexPair = std::pair<VertexId, VertexId>;

/// A released all-pairs distance estimator. Queries are post-processing of
/// an already-released private object, so calling Distance() or
/// DistanceBatch() any number of times consumes no additional privacy
/// budget. Query methods are const and safe to call concurrently.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Estimated distance between u and v.
  virtual Result<double> Distance(VertexId u, VertexId v) const = 0;

  /// Serial fused kernel: answers `pairs` into out[0 .. pairs.size()) on
  /// the calling thread, one virtual dispatch for the whole span. This is
  /// the unit of work the parallel DistanceBatch fan-out and the sharded
  /// serve::BatchExecutor both schedule, so every execution strategy
  /// produces bit-identical results. Oracles override it with a flat-array
  /// loop (released estimates + O(1) LCA, dense table rows, dyadic
  /// prefixes); the default loops Distance(). On error nothing is
  /// guaranteed about out.
  virtual Status DistanceInto(std::span<const VertexPair> pairs,
                              double* out) const;

  /// Estimated distances for a batch of pairs, in order — the hot path a
  /// query-serving deployment uses. The default implementation chunks the
  /// span across worker threads (valid because this interface requires
  /// const query methods to be concurrency-safe) and runs the
  /// DistanceInto kernel per chunk.
  virtual Result<std::vector<double>> DistanceBatch(
      std::span<const VertexPair> pairs) const;

  /// Mechanism name for reports.
  virtual std::string Name() const = 0;
};

/// Answers `pairs` by running oracle.DistanceInto() chunk-wise across
/// worker threads (the default DistanceBatch body, exposed so callers can
/// cap the thread count). `max_threads` = 1 is the strictly serial
/// reference path the sharded executor tests compare against.
Result<std::vector<double>> DistanceBatchOf(const DistanceOracle& oracle,
                                            std::span<const VertexPair> pairs,
                                            int max_threads = 0);

/// Aggregate error of an oracle against exact distances.
struct OracleErrorReport {
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  double p50_abs_error = 0.0;
  double p95_abs_error = 0.0;
  int num_pairs = 0;
};

/// Compares the oracle against the exact distance matrix over all ordered
/// pairs u < v (skipping unreachable pairs). Queries go through
/// DistanceBatch.
Result<OracleErrorReport> EvaluateOracleAllPairs(const Graph& graph,
                                                 const DistanceMatrix& exact,
                                                 const DistanceOracle& oracle);

/// Compares the oracle against exact distances over an explicit pair list.
Result<OracleErrorReport> EvaluateOraclePairs(
    const Graph& graph, const DistanceMatrix& exact,
    const DistanceOracle& oracle, const std::vector<VertexPair>& pairs);

}  // namespace dpsp

#endif  // DPSP_CORE_DISTANCE_ORACLE_H_
