// The common interface all distance-release mechanisms implement, plus the
// error-evaluation harness the experiments share. Every mechanism in this
// library (exact, baselines, tree recursion, path hierarchy, bounded-weight
// covering) is a DistanceOracle, so benches can sweep them uniformly.

#ifndef DPSP_CORE_DISTANCE_ORACLE_H_
#define DPSP_CORE_DISTANCE_ORACLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/all_pairs.h"
#include "graph/graph.h"

namespace dpsp {

/// A released all-pairs distance estimator. Queries are post-processing of
/// an already-released private object, so calling Distance() any number of
/// times consumes no additional privacy budget.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Estimated distance between u and v.
  virtual Result<double> Distance(VertexId u, VertexId v) const = 0;

  /// Mechanism name for reports.
  virtual std::string Name() const = 0;
};

/// Aggregate error of an oracle against exact distances.
struct OracleErrorReport {
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  double p50_abs_error = 0.0;
  double p95_abs_error = 0.0;
  int num_pairs = 0;
};

/// Compares the oracle against the exact distance matrix over all ordered
/// pairs u < v (skipping unreachable pairs).
Result<OracleErrorReport> EvaluateOracleAllPairs(const Graph& graph,
                                                 const DistanceMatrix& exact,
                                                 const DistanceOracle& oracle);

/// Compares the oracle against exact distances over an explicit pair list.
Result<OracleErrorReport> EvaluateOraclePairs(
    const Graph& graph, const DistanceMatrix& exact,
    const DistanceOracle& oracle,
    const std::vector<std::pair<VertexId, VertexId>>& pairs);

}  // namespace dpsp

#endif  // DPSP_CORE_DISTANCE_ORACLE_H_
