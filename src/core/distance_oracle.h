// The common interface all distance-release mechanisms implement, plus the
// error-evaluation harness the experiments share. Every mechanism in this
// library (exact, baselines, tree recursion, HLD, path hierarchy,
// bounded-weight covering, MST/matching releases) is a DistanceOracle
// registered in core/oracle_registry.h, so benches and serving pipelines
// sweep them uniformly.

#ifndef DPSP_CORE_DISTANCE_ORACLE_H_
#define DPSP_CORE_DISTANCE_ORACLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/all_pairs.h"
#include "graph/graph.h"

namespace dpsp {

class ReleaseContext;
class UpdatableDistanceOracle;

/// One (u, v) distance query.
using VertexPair = std::pair<VertexId, VertexId>;

/// One flat released buffer of an oracle, exposed for memory placement:
/// the NUMA-aware executor binds or interleaves these pages so shard
/// workers stream node-local memory. Pointers remain owned by the oracle
/// and are only valid while it lives and is not mutated.
struct ReleasedBuffer {
  /// What the buffer holds ("estimates", "lca-table", "dyadic-blocks",
  /// "zz-table", ...), for diagnostics.
  const char* label = "";
  const void* data = nullptr;
  size_t bytes = 0;
};

/// One edge of the private weight map drifting to a new value — the unit
/// of a continual-release update epoch. The topology is public and never
/// changes; only the private weights do.
struct EdgeWeightDelta {
  EdgeId edge = 0;
  double new_weight = 0.0;
};

/// One owning labeled byte section of an oracle's released state — the
/// unit the src/store snapshot format persists. Released state is post-DP
/// output: it may be copied and stored in plaintext. Raw private values
/// (e.g. the retained value vectors the incremental-update machinery
/// keeps) must NEVER appear in a section.
struct ReleasedSection {
  std::string label;
  std::vector<uint8_t> bytes;
};

/// A non-owning view of a section, as handed to restore factories by the
/// snapshot reader (zero-copy views into the mapped file).
struct ReleasedSectionView {
  std::string_view label;
  std::span<const uint8_t> bytes;
};

/// A released all-pairs distance estimator. Queries are post-processing of
/// an already-released private object, so calling Distance() or
/// DistanceBatch() any number of times consumes no additional privacy
/// budget. Query methods are const and safe to call concurrently.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Estimated distance between u and v.
  virtual Result<double> Distance(VertexId u, VertexId v) const = 0;

  /// Serial fused kernel: answers `pairs` into out[0 .. pairs.size()) on
  /// the calling thread, one virtual dispatch for the whole span. This is
  /// the unit of work the parallel DistanceBatch fan-out and the sharded
  /// serve::BatchExecutor both schedule, so every execution strategy
  /// produces bit-identical results. Oracles override it with a flat-array
  /// loop (released estimates + O(1) LCA, dense table rows, dyadic
  /// prefixes); the default loops Distance(). On error nothing is
  /// guaranteed about out.
  virtual Status DistanceInto(std::span<const VertexPair> pairs,
                              double* out) const;

  /// Estimated distances for a batch of pairs, in order — the hot path a
  /// query-serving deployment uses. The default implementation chunks the
  /// span across worker threads (valid because this interface requires
  /// const query methods to be concurrency-safe) and runs the
  /// DistanceInto kernel per chunk.
  virtual Result<std::vector<double>> DistanceBatch(
      std::span<const VertexPair> pairs) const;

  /// Mechanism name for reports.
  virtual std::string Name() const = 0;

  /// Appends this oracle's flat released buffers (the arrays its
  /// DistanceInto kernel streams) to `out`, for NUMA placement by the
  /// serving layer. The default appends nothing — placement is then a
  /// no-op for that mechanism, never an error. Returned pointers are
  /// invalidated by destruction or by a weight-update epoch; callers
  /// re-query after updates.
  virtual void AppendReleasedBuffers(std::vector<ReleasedBuffer>* out) const {
    (void)out;
  }

  /// Appends this oracle's complete released state as owning labeled
  /// sections — everything a same-mechanism restore factory needs, given
  /// the public topology and the workload weights, to reconstruct an
  /// oracle whose queries are bit-identical to this one. Mechanisms that
  /// have not opted into persistence return Unimplemented and the caller
  /// skips them (never an error path for serving).
  virtual Status SaveReleasedState(std::vector<ReleasedSection>* out) const {
    (void)out;
    return Status::Unimplemented(Name() + " does not persist released state");
  }

  /// The incremental-update capability, or nullptr for build-once
  /// mechanisms. Callers route through this instead of dynamic_cast so
  /// the serving layers (executor, network server) can advertise and
  /// dispatch updatability uniformly.
  virtual UpdatableDistanceOracle* AsUpdatable() { return nullptr; }
  virtual const UpdatableDistanceOracle* AsUpdatable() const {
    return nullptr;
  }
};

/// A released oracle that supports incremental weight-update epochs: when
/// few edges drift between epochs, only the released blocks covering the
/// dirty edges are redrawn and only their share of the budget is charged,
/// instead of re-releasing the whole structure at full cost.
///
/// Concurrency: ApplyWeightUpdates mutates the released structure and is
/// NOT safe against concurrent queries — callers must exclude queries for
/// the duration of an update (the network server holds a per-handle
/// writer lock). Queries remain const and concurrency-safe between
/// updates, per the DistanceOracle contract.
class UpdatableDistanceOracle : public DistanceOracle {
 public:
  /// What the last ApplyWeightUpdates epoch did, for telemetry, wire
  /// responses, and the ledger-equality tests. Zeroed at the start of
  /// every epoch (an empty epoch reports all zeros).
  struct UpdateStats {
    /// Distinct edges whose weight changed this epoch.
    int dirty_edges = 0;
    /// Noisy values redrawn (dirty dyadic blocks plus dirty scalars).
    int dirty_blocks = 0;
    /// The epoch's sensitivity multiplier: the largest number of redrawn
    /// blocks any single dirty edge appears in. The epoch charges
    /// loss = (sensitivity / full-release sensitivity) x one release of
    /// the context's params — the dirty fraction in the release's own
    /// sensitivity currency.
    int sensitivity = 0;
    /// The PrivacyLoss epsilon actually charged to the ledger.
    double charged_epsilon = 0.0;
  };

  /// Applies one epoch of weight updates in place through the release
  /// pipeline: plans the dirty-block set, meters the partial release
  /// (check-before-apply — an exhausted budget refuses BEFORE any block
  /// is touched, leaving the oracle unchanged), redraws fresh noise for
  /// only the dirty blocks, and commits the charge plus telemetry.
  /// Duplicate edges in one epoch: the last delta wins. An empty epoch is
  /// a no-op that charges nothing.
  virtual Status ApplyWeightUpdates(std::span<const EdgeWeightDelta> deltas,
                                    ReleaseContext& ctx) = 0;

  const UpdateStats& last_update() const { return update_stats_; }

  UpdatableDistanceOracle* AsUpdatable() final { return this; }
  const UpdatableDistanceOracle* AsUpdatable() const final { return this; }

 protected:
  UpdateStats update_stats_;
};

/// Answers `pairs` by running oracle.DistanceInto() chunk-wise across
/// worker threads (the default DistanceBatch body, exposed so callers can
/// cap the thread count). `max_threads` = 1 is the strictly serial
/// reference path the sharded executor tests compare against.
Result<std::vector<double>> DistanceBatchOf(const DistanceOracle& oracle,
                                            std::span<const VertexPair> pairs,
                                            int max_threads = 0);

/// Aggregate error of an oracle against exact distances.
struct OracleErrorReport {
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  double p50_abs_error = 0.0;
  double p95_abs_error = 0.0;
  int num_pairs = 0;
};

/// Compares the oracle against the exact distance matrix over all ordered
/// pairs u < v (skipping unreachable pairs). Queries go through
/// DistanceBatch.
Result<OracleErrorReport> EvaluateOracleAllPairs(const Graph& graph,
                                                 const DistanceMatrix& exact,
                                                 const DistanceOracle& oracle);

/// Compares the oracle against exact distances over an explicit pair list.
Result<OracleErrorReport> EvaluateOraclePairs(
    const Graph& graph, const DistanceMatrix& exact,
    const DistanceOracle& oracle, const std::vector<VertexPair>& pairs);

}  // namespace dpsp

#endif  // DPSP_CORE_DISTANCE_ORACLE_H_
