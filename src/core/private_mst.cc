#include "core/private_mst.h"

#include <cmath>

#include "dp/laplace_mechanism.h"
#include "graph/spanning_tree.h"

namespace dpsp {

Result<PrivateMstResult> PrivateMst(const Graph& graph, const EdgeWeights& w,
                                    const PrivacyParams& params, Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateWeights(w));
  DPSP_ASSIGN_OR_RETURN(double scale, LaplaceScale(1.0, params));
  DPSP_ASSIGN_OR_RETURN(EdgeWeights noisy,
                        LaplaceMechanism(w, 1.0, params, rng));
  DPSP_ASSIGN_OR_RETURN(std::vector<EdgeId> tree, KruskalMst(graph, noisy));
  return PrivateMstResult{std::move(tree), std::move(noisy), scale};
}

double PrivateMstErrorBound(int num_vertices, int num_edges,
                            const PrivacyParams& params, double gamma) {
  DPSP_CHECK_MSG(num_vertices >= 2 && num_edges >= 1 && gamma > 0.0 &&
                     gamma < 1.0,
                 "invalid error bound arguments");
  double scale = params.neighbor_l1_bound / params.epsilon;
  return 2.0 * static_cast<double>(num_vertices - 1) * scale *
         std::log(static_cast<double>(num_edges) / gamma);
}

Result<double> PrivateMstCost(const Graph& graph, const EdgeWeights& w,
                              const PrivacyParams& params, Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_ASSIGN_OR_RETURN(std::vector<EdgeId> tree, KruskalMst(graph, w));
  DPSP_ASSIGN_OR_RETURN(double scale, LaplaceScale(1.0, params));
  return TotalWeight(w, tree) + rng->Laplace(scale);
}

double MstLowerBound(int num_vertices, double epsilon, double delta) {
  DPSP_CHECK_MSG(num_vertices >= 2 && epsilon >= 0.0 && delta >= 0.0,
                 "invalid lower bound arguments");
  double numer = 1.0 - (1.0 + std::exp(epsilon)) * delta;
  if (numer < 0.0) numer = 0.0;
  return static_cast<double>(num_vertices - 1) * numer /
         (1.0 + std::exp(2.0 * epsilon));
}

}  // namespace dpsp
