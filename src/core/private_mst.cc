#include "core/private_mst.h"

#include <cmath>
#include <utility>

#include "common/table.h"
#include "core/released_state.h"
#include "dp/laplace_mechanism.h"
#include "graph/spanning_tree.h"

namespace dpsp {

Result<PrivateMstResult> PrivateMst(const Graph& graph, const EdgeWeights& w,
                                    const PrivacyParams& params, Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateWeights(w));
  DPSP_ASSIGN_OR_RETURN(double scale, LaplaceScale(1.0, params));
  DPSP_ASSIGN_OR_RETURN(EdgeWeights noisy,
                        LaplaceMechanism(w, 1.0, params, rng));
  DPSP_ASSIGN_OR_RETURN(std::vector<EdgeId> tree, KruskalMst(graph, noisy));
  return PrivateMstResult{std::move(tree), std::move(noisy), scale};
}

MstDistanceOracle::MstDistanceOracle(PrivateMstResult released,
                                     RootedTree tree,
                                     std::vector<double> root_dist)
    : released_(std::move(released)),
      tree_(std::move(tree)),
      lca_(tree_),
      root_dist_(std::move(root_dist)) {}

Result<std::unique_ptr<MstDistanceOracle>> MstDistanceOracle::Build(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng) {
  DPSP_ASSIGN_OR_RETURN(PrivateMstResult released,
                        PrivateMst(graph, w, params, rng));
  // Re-index the released tree as its own graph; tree edge i carries the
  // noisy weight of original edge released.tree_edges[i].
  std::vector<EdgeEndpoints> endpoints;
  EdgeWeights tree_weights;
  endpoints.reserve(released.tree_edges.size());
  tree_weights.reserve(released.tree_edges.size());
  for (EdgeId e : released.tree_edges) {
    endpoints.push_back(graph.edge(e));
    tree_weights.push_back(released.noisy_weights[static_cast<size_t>(e)]);
  }
  DPSP_ASSIGN_OR_RETURN(
      Graph tree_graph,
      Graph::Create(graph.num_vertices(), std::move(endpoints)));
  DPSP_ASSIGN_OR_RETURN(RootedTree tree,
                        RootedTree::FromGraph(tree_graph, 0));
  std::vector<double> root_dist = tree.RootDistances(tree_weights);
  return std::unique_ptr<MstDistanceOracle>(new MstDistanceOracle(
      std::move(released), std::move(tree), std::move(root_dist)));
}

Result<std::unique_ptr<MstDistanceOracle>> MstDistanceOracle::Build(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx) {
  return ctx.MeteredBuild(
      kName, [&] { return Build(graph, w, ctx.params(), ctx.rng()); },
      [&graph](const MstDistanceOracle& oracle, ReleaseTelemetry& t) {
        t.sensitivity = 1.0;  // identity query on the weight vector
        t.noise_scale = oracle.released().noise_scale;
        t.noise_draws = graph.num_edges();
      });
}

Status MstDistanceOracle::SaveReleasedState(
    std::vector<ReleasedSection>* out) const {
  out->push_back(released_state::Pack<EdgeId>(
      "tree-edges", std::span<const EdgeId>(released_.tree_edges)));
  out->push_back(released_state::Pack<double>(
      "noisy-weights", std::span<const double>(released_.noisy_weights)));
  out->push_back(
      released_state::PackScalars("meta", {released_.noise_scale}));
  return Status::Ok();
}

Result<std::unique_ptr<DistanceOracle>> MstDistanceOracle::FromReleasedState(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections) {
  (void)w;
  DPSP_ASSIGN_OR_RETURN(std::span<const double> meta,
                        released_state::Require<double>(sections, "meta", 1));
  DPSP_ASSIGN_OR_RETURN(
      std::span<const EdgeId> tree_edges,
      released_state::Require<EdgeId>(sections, "tree-edges",
                                      graph.num_vertices() - 1));
  DPSP_ASSIGN_OR_RETURN(
      std::span<const double> noisy,
      released_state::Require<double>(sections, "noisy-weights",
                                      graph.num_edges()));
  PrivateMstResult released;
  released.tree_edges.assign(tree_edges.begin(), tree_edges.end());
  released.noisy_weights.assign(noisy.begin(), noisy.end());
  released.noise_scale = meta[0];

  // Replay the deterministic post-processing of Build: re-index the
  // released tree as its own graph and compute root distances under the
  // released noisy weights. Graph::Create + RootedTree::FromGraph reject
  // edge ids or edge sets that do not form a spanning tree of the public
  // graph.
  std::vector<EdgeEndpoints> endpoints;
  EdgeWeights tree_weights;
  endpoints.reserve(released.tree_edges.size());
  tree_weights.reserve(released.tree_edges.size());
  for (EdgeId e : released.tree_edges) {
    if (e < 0 || e >= graph.num_edges()) {
      return Status::InvalidArgument(
          StrFormat("snapshot tree edge %d is out of range", e));
    }
    endpoints.push_back(graph.edge(e));
    tree_weights.push_back(released.noisy_weights[static_cast<size_t>(e)]);
  }
  DPSP_ASSIGN_OR_RETURN(
      Graph tree_graph,
      Graph::Create(graph.num_vertices(), std::move(endpoints)));
  DPSP_ASSIGN_OR_RETURN(RootedTree tree,
                        RootedTree::FromGraph(tree_graph, 0));
  std::vector<double> root_dist = tree.RootDistances(tree_weights);
  return std::unique_ptr<DistanceOracle>(new MstDistanceOracle(
      std::move(released), std::move(tree), std::move(root_dist)));
}

Result<double> MstDistanceOracle::Distance(VertexId u, VertexId v) const {
  if (u < 0 || u >= tree_.num_vertices() || v < 0 ||
      v >= tree_.num_vertices()) {
    return Status::InvalidArgument("vertex out of range");
  }
  VertexId z = lca_.Lca(u, v);
  return root_dist_[static_cast<size_t>(u)] +
         root_dist_[static_cast<size_t>(v)] -
         2.0 * root_dist_[static_cast<size_t>(z)];
}

Status MstDistanceOracle::DistanceInto(std::span<const VertexPair> pairs,
                                       double* out) const {
  const unsigned n = static_cast<unsigned>(tree_.num_vertices());
  const double* dist = root_dist_.data();
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [u, v] = pairs[i];
    if (static_cast<unsigned>(u) >= n || static_cast<unsigned>(v) >= n) {
      return Status::InvalidArgument("vertex out of range");
    }
    VertexId z = lca_.LcaUnchecked(u, v);
    out[i] = dist[static_cast<size_t>(u)] + dist[static_cast<size_t>(v)] -
             2.0 * dist[static_cast<size_t>(z)];
  }
  return Status::Ok();
}

double PrivateMstErrorBound(int num_vertices, int num_edges,
                            const PrivacyParams& params, double gamma) {
  DPSP_CHECK_MSG(num_vertices >= 2 && num_edges >= 1 && gamma > 0.0 &&
                     gamma < 1.0,
                 "invalid error bound arguments");
  double scale = params.neighbor_l1_bound / params.epsilon;
  return 2.0 * static_cast<double>(num_vertices - 1) * scale *
         std::log(static_cast<double>(num_edges) / gamma);
}

Result<double> PrivateMstCost(const Graph& graph, const EdgeWeights& w,
                              const PrivacyParams& params, Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_ASSIGN_OR_RETURN(std::vector<EdgeId> tree, KruskalMst(graph, w));
  DPSP_ASSIGN_OR_RETURN(double scale, LaplaceScale(1.0, params));
  return TotalWeight(w, tree) + rng->Laplace(scale);
}

double MstLowerBound(int num_vertices, double epsilon, double delta) {
  DPSP_CHECK_MSG(num_vertices >= 2 && epsilon >= 0.0 && delta >= 0.0,
                 "invalid lower bound arguments");
  double numer = 1.0 - (1.0 + std::exp(epsilon)) * delta;
  if (numer < 0.0) numer = 0.0;
  return static_cast<double>(num_vertices - 1) * numer /
         (1.0 + std::exp(2.0 * epsilon));
}

}  // namespace dpsp
