#include "core/oracle_registry.h"

#include <utility>

#include "core/baselines.h"
#include "core/bounded_weight.h"
#include "core/hld_oracle.h"
#include "core/path_graph.h"
#include "core/private_matching.h"
#include "core/private_mst.h"
#include "core/tree_distance.h"

namespace dpsp {

namespace {

// Adapts a factory returning a concrete oracle type to OracleFactory.
template <typename Builder>
OracleFactory Erase(Builder builder) {
  return [builder = std::move(builder)](
             const Graph& graph, const EdgeWeights& w,
             ReleaseContext& ctx) -> Result<std::unique_ptr<DistanceOracle>> {
    auto built = builder(graph, w, ctx);
    if (!built.ok()) return built.status();
    return std::unique_ptr<DistanceOracle>(std::move(built).value());
  };
}

void RegisterBuiltins(OracleRegistry& registry) {
  auto must = [&registry](OracleSpec spec) {
    Status status = registry.Register(std::move(spec));
    DPSP_CHECK_MSG(status.ok(), "builtin oracle registration failed");
  };

  must({kExactOracleName, "non-private ground truth for evaluation",
        OracleInput::kAnyConnected, /*consumes_budget=*/false,
        LossKind::kPure, /*updatable=*/false,
        [](const Graph& g, const EdgeWeights& w, ReleaseContext& ctx) {
          return MakeExactOracle(g, w, ctx);
        },
        RestoreExactOracle});
  must({kPerPairLaplaceOracleName,
        "Section 4 baseline: Laplace noise per pair, basic/advanced "
        "composition",
        OracleInput::kAnyConnected, true, LossKind::kPure,
        /*updatable=*/false,
        [](const Graph& g, const EdgeWeights& w, ReleaseContext& ctx) {
          return MakePerPairLaplaceOracle(g, w, ctx);
        },
        RestorePerPairLaplaceOracle});
  must({kSyntheticGraphOracleName,
        "Section 4 baseline: release noisy weights, answer by Dijkstra",
        OracleInput::kAnyConnected, true, LossKind::kPure,
        /*updatable=*/false,
        [](const Graph& g, const EdgeWeights& w, ReleaseContext& ctx) {
          return MakeSyntheticGraphOracle(g, w, ctx);
        },
        RestoreSyntheticGraphOracle});
  must({TreeAllPairsOracle::kName,
        "Theorem 4.2: balanced-separator recursion + LCA combination",
        OracleInput::kTree, true, LossKind::kPure, /*updatable=*/false,
        Erase([](const Graph& g, const EdgeWeights& w, ReleaseContext& ctx) {
          return TreeAllPairsOracle::Build(g, w, ctx);
        }),
        TreeAllPairsOracle::FromReleasedState});
  must({HldTreeOracle::kName,
        "heavy-light chains over the Appendix-A dyadic structure; "
        "supports incremental weight-update epochs",
        OracleInput::kTree, true, LossKind::kPure, /*updatable=*/true,
        Erase([](const Graph& g, const EdgeWeights& w, ReleaseContext& ctx) {
          return HldTreeOracle::Build(g, w, ctx);
        }),
        HldTreeOracle::FromReleasedState});
  must({PathGraphOracle::kName,
        "Theorem A.1: binary hub hierarchy on the path graph",
        OracleInput::kPath, true, LossKind::kPure, /*updatable=*/false,
        Erase([](const Graph& g, const EdgeWeights& w, ReleaseContext& ctx) {
          return PathGraphOracle::Build(g, w, ctx);
        }),
        PathGraphOracle::FromReleasedState});
  must({BoundedWeightOracle::kName,
        "Algorithm 2: noisy distances between covering centers",
        OracleInput::kAnyConnected, true, LossKind::kPure,
        /*updatable=*/false,
        Erase([](const Graph& g, const EdgeWeights& w, ReleaseContext& ctx) {
          return BoundedWeightOracle::Build(g, w, ctx);
        }),
        BoundedWeightOracle::FromReleasedState});
  must({MstDistanceOracle::kName,
        "Theorem B.3 release: distances within the released spanning tree",
        OracleInput::kAnyConnected, true, LossKind::kPure,
        /*updatable=*/false,
        Erase([](const Graph& g, const EdgeWeights& w, ReleaseContext& ctx) {
          return MstDistanceOracle::Build(g, w, ctx);
        }),
        MstDistanceOracle::FromReleasedState});
  must({MatchingDistanceOracle::kName,
        "Theorem B.6 release: matching + distances on the noisy graph",
        OracleInput::kPerfectMatching, true, LossKind::kPure,
        /*updatable=*/false,
        Erase([](const Graph& g, const EdgeWeights& w, ReleaseContext& ctx) {
          return MatchingDistanceOracle::Build(g, w, ctx);
        }),
        MatchingDistanceOracle::FromReleasedState});
  must({BoundedWeightOracle::kGaussianName,
        "Algorithm 2 ablation: Gaussian noise between covering centers, "
        "metered at its natural zCDP rate",
        OracleInput::kAnyConnected, true, LossKind::kZcdp,
        /*updatable=*/false,
        Erase([](const Graph& g, const EdgeWeights& w, ReleaseContext& ctx) {
          BoundedWeightOptions options;
          options.noise = BoundedWeightOptions::NoiseKind::kGaussian;
          return BoundedWeightOracle::Build(g, w, ctx, options);
        }),
        // Shared with the Laplace entry: the gaussian flag travels in the
        // snapshot metadata and reconstructs the right Name().
        BoundedWeightOracle::FromReleasedState});
}

}  // namespace

const char* OracleInputName(OracleInput input) {
  switch (input) {
    case OracleInput::kAnyConnected:
      return "any-connected";
    case OracleInput::kTree:
      return "tree";
    case OracleInput::kPath:
      return "path";
    case OracleInput::kPerfectMatching:
      return "perfect-matching";
  }
  return "unknown";
}

OracleRegistry& OracleRegistry::Global() {
  static OracleRegistry* registry = [] {
    auto* r = new OracleRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

Status OracleRegistry::Register(OracleSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("oracle name must not be empty");
  }
  if (spec.factory == nullptr) {
    return Status::InvalidArgument("oracle factory must not be null");
  }
  if (Contains(spec.name)) {
    return Status::InvalidArgument("oracle '" + spec.name +
                                   "' is already registered");
  }
  specs_.push_back(std::move(spec));
  return Status::Ok();
}

Result<std::unique_ptr<DistanceOracle>> OracleRegistry::Create(
    const std::string& name, const Graph& graph, const EdgeWeights& w,
    ReleaseContext& ctx) const {
  const OracleSpec* spec = Find(name);
  if (spec == nullptr) {
    return Status::NotFound("no oracle registered under '" + name + "'");
  }
  return spec->factory(graph, w, ctx);
}

Result<std::unique_ptr<DistanceOracle>> OracleRegistry::Restore(
    const std::string& name, const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections) const {
  const OracleSpec* spec = Find(name);
  if (spec == nullptr) {
    return Status::NotFound("no oracle registered under '" + name + "'");
  }
  if (spec->loader == nullptr) {
    return Status::Unimplemented("oracle '" + name +
                                 "' has no snapshot loader");
  }
  return spec->loader(graph, w, sections);
}

const OracleSpec* OracleRegistry::Find(const std::string& name) const {
  for (const OracleSpec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

bool OracleRegistry::Contains(const std::string& name) const {
  return Find(name) != nullptr;
}

std::vector<std::string> OracleRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const OracleSpec& spec : specs_) names.push_back(spec.name);
  return names;
}

std::vector<std::string> OracleRegistry::NamesForInput(
    OracleInput input, bool has_perfect_matching) const {
  auto satisfies = [&](OracleInput requirement) {
    if (requirement == input) return true;
    switch (requirement) {
      case OracleInput::kAnyConnected:
        return true;
      case OracleInput::kTree:
        return input == OracleInput::kPath;
      case OracleInput::kPath:
        return false;
      case OracleInput::kPerfectMatching:
        return has_perfect_matching;
    }
    return false;
  };
  std::vector<std::string> names;
  for (const OracleSpec& spec : specs_) {
    if (satisfies(spec.input)) names.push_back(spec.name);
  }
  return names;
}

}  // namespace dpsp
