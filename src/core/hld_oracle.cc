#include "core/hld_oracle.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/cpu.h"
#include "common/table.h"
#include "core/released_state.h"
#include "core/simd_kernels.h"
#include "dp/laplace_mechanism.h"

namespace dpsp {

Result<std::unique_ptr<HldTreeOracle>> HldTreeOracle::Build(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng, VertexId root) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  if (root == -1) root = 0;
  DPSP_ASSIGN_OR_RETURN(RootedTree tree, RootedTree::FromGraph(graph, root));

  auto oracle = std::unique_ptr<HldTreeOracle>(new HldTreeOracle());
  int n = tree.num_vertices();
  oracle->chain_of_.assign(static_cast<size_t>(n), -1);
  oracle->pos_in_chain_.assign(static_cast<size_t>(n), 0);

  // Heavy child of each vertex: the child with the largest subtree.
  std::vector<VertexId> heavy(static_cast<size_t>(n), -1);
  for (VertexId v = 0; v < n; ++v) {
    int best = 0;
    for (VertexId c : tree.children(v)) {
      if (tree.subtree_size(c) > best) {
        best = tree.subtree_size(c);
        heavy[static_cast<size_t>(v)] = c;
      }
    }
  }

  // Assign chains in BFS order (parents first).
  std::vector<std::vector<VertexId>> members;  // chain -> vertices by pos
  for (VertexId v : tree.bfs_order()) {
    VertexId p = tree.parent(v);
    if (p == -1 || heavy[static_cast<size_t>(p)] != v) {
      oracle->chain_of_[static_cast<size_t>(v)] =
          static_cast<int>(members.size());
      oracle->pos_in_chain_[static_cast<size_t>(v)] = 0;
      oracle->chain_head_.push_back(v);
      members.emplace_back(1, v);
    } else {
      int c = oracle->chain_of_[static_cast<size_t>(p)];
      oracle->chain_of_[static_cast<size_t>(v)] = c;
      oracle->pos_in_chain_[static_cast<size_t>(v)] =
          oracle->pos_in_chain_[static_cast<size_t>(p)] + 1;
      members[static_cast<size_t>(c)].push_back(v);
    }
  }

  // Joint sensitivity: an edge is either heavy (one block per level of its
  // chain's structure) or light (one released scalar), so the release's
  // sensitivity is max over chains of #levels, at least 1.
  int max_levels = 1;
  for (const auto& chain : members) {
    max_levels = std::max(
        max_levels, NoisyDyadicRangeSums::LevelsForSize(
                        static_cast<int>(chain.size()) - 1));
  }
  DPSP_ASSIGN_OR_RETURN(
      double scale,
      LaplaceScale(static_cast<double>(max_levels), params));
  oracle->noise_scale_ = scale;
  oracle->sensitivity_ = max_levels;
  oracle->release_epsilon_ = params.epsilon;

  // Released structures: per-chain dyadic sums over the heavy edges, plus
  // one noisy scalar per light (chain-head parent) edge.
  oracle->light_noisy_.assign(members.size(), 0.0);
  for (size_t c = 0; c < members.size(); ++c) {
    const std::vector<VertexId>& chain = members[c];
    std::vector<double> values;
    values.reserve(chain.size() - 1);
    for (size_t p = 1; p < chain.size(); ++p) {
      values.push_back(
          w[static_cast<size_t>(tree.parent_edge(chain[p]))]);
    }
    oracle->chains_.emplace_back(values, scale, rng);
    VertexId head = chain[0];
    if (tree.parent(head) != -1) {
      oracle->light_noisy_[c] =
          w[static_cast<size_t>(tree.parent_edge(head))] +
          rng->Laplace(scale);
    }
  }

  for (const NoisyDyadicRangeSums& chain : oracle->chains_) {
    oracle->num_noisy_values_ += chain.num_blocks();
  }
  for (size_t c = 0; c < members.size(); ++c) {
    if (tree.parent(oracle->chain_head_[c]) != -1) {
      ++oracle->num_noisy_values_;
    }
  }

  oracle->tree_ = std::make_unique<RootedTree>(std::move(tree));
  oracle->lca_ = std::make_unique<EulerTourLca>(*oracle->tree_);

  // Update-path indexes: dirty edge -> child endpoint, and flat chain
  // membership (for recomputing ascent caches of dirty chains).
  oracle->edge_child_.assign(static_cast<size_t>(graph.num_edges()), -1);
  for (VertexId v = 0; v < n; ++v) {
    EdgeId e = oracle->tree_->parent_edge(v);
    if (e != -1) oracle->edge_child_[static_cast<size_t>(e)] = v;
  }
  oracle->chain_member_offset_.assign(members.size() + 1, 0);
  for (size_t c = 0; c < members.size(); ++c) {
    oracle->chain_member_offset_[c + 1] =
        oracle->chain_member_offset_[c] +
        static_cast<uint32_t>(members[c].size());
  }
  oracle->chain_member_list_.reserve(static_cast<size_t>(n));
  for (const std::vector<VertexId>& chain : members) {
    oracle->chain_member_list_.insert(oracle->chain_member_list_.end(),
                                      chain.begin(), chain.end());
  }

  // Ascent caches (post-processing of the released blocks, no new noise):
  // climbing off the top of v's chain costs the chain prefix up to v plus
  // the light edge above the head, and lands on the head's parent.
  oracle->head_parent_.resize(members.size());
  for (size_t c = 0; c < members.size(); ++c) {
    oracle->head_parent_[c] = oracle->tree_->parent(oracle->chain_head_[c]);
  }
  oracle->ascent_cost_.assign(static_cast<size_t>(n), 0.0);
  for (size_t c = 0; c < members.size(); ++c) {
    oracle->RecomputeAscentCosts(static_cast<int>(c));
  }
  return oracle;
}

Result<std::unique_ptr<HldTreeOracle>> HldTreeOracle::Build(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx,
    VertexId root) {
  return ctx.MeteredBuild(
      kName, [&] { return Build(graph, w, ctx.params(), ctx.rng(), root); },
      [](const HldTreeOracle& oracle, ReleaseTelemetry& t) {
        t.sensitivity = oracle.sensitivity();
        t.noise_scale = oracle.noise_scale();
        t.noise_draws = oracle.num_noisy_values();
      });
}

Status HldTreeOracle::ApplyWeightUpdates(
    std::span<const EdgeWeightDelta> deltas, ReleaseContext& ctx) {
  update_stats_ = UpdateStats{};
  if (deltas.empty()) return Status::Ok();
  const int num_edges = tree_->num_vertices() - 1;

  // Final weight per dirty edge (last delta wins), then grouped by chain
  // in ascending (chain, position) order so the redraw walk — and with it
  // the noise stream — is deterministic for a given epoch.
  std::map<EdgeId, double> final_weight;
  for (const EdgeWeightDelta& d : deltas) {
    if (d.edge < 0 || d.edge >= num_edges) {
      return Status::InvalidArgument(StrFormat(
          "update edge %d out of range [0, %d)", d.edge, num_edges));
    }
    if (!(d.new_weight >= 0.0) || std::isinf(d.new_weight)) {
      return Status::InvalidArgument(
          "updated edge weights must be finite and non-negative");
    }
    final_weight[d.edge] = d.new_weight;
  }

  std::map<int, std::vector<std::pair<int, double>>> heavy;  // chain -> ups
  std::map<int, double> light;  // chain -> new light-edge weight
  for (const auto& [edge, weight] : final_weight) {
    VertexId v = edge_child_[static_cast<size_t>(edge)];
    int c = chain_of_[static_cast<size_t>(v)];
    int pos = pos_in_chain_[static_cast<size_t>(v)];
    if (pos == 0) {
      light[c] = weight;  // the edge above the chain head: one scalar
    } else {
      heavy[c].emplace_back(pos - 1, weight);
    }
  }

  // Planning pass (no mutation): the epoch's sensitivity g is the deepest
  // dirty stack — every dirty heavy edge sits in one block per level of
  // its chain, a dirty light edge in exactly one scalar — and the dirty
  // block count prices the redraw. Charged in the release's natural
  // currency: the redraw at the build-time Laplace scale L*l1/eps is
  // exactly (eps * g / L)-DP.
  int g = light.empty() ? 0 : 1;
  int dirty_blocks = static_cast<int>(light.size());
  for (const auto& [c, updates] : heavy) {
    const NoisyDyadicRangeSums& chain = chains_[static_cast<size_t>(c)];
    g = std::max(g, chain.num_levels());
    std::vector<int> indices;
    indices.reserve(updates.size());
    for (const auto& [index, weight] : updates) indices.push_back(index);
    dirty_blocks += chain.DirtyBlockCount(indices);
  }
  double charged_epsilon =
      release_epsilon_ * static_cast<double>(g) / sensitivity_;
  PrivacyLoss loss = PrivacyLoss::Pure(charged_epsilon);

  Status metered = ctx.MeteredUpdate(
      std::string(kName) + "-update", loss,
      [&] {
        for (const auto& [c, updates] : heavy) {
          chains_[static_cast<size_t>(c)].ApplyPointUpdates(updates,
                                                            ctx.rng());
        }
        for (const auto& [c, weight] : light) {
          light_noisy_[static_cast<size_t>(c)] =
              weight + ctx.rng()->Laplace(noise_scale_);
        }
        // Ascent caches of the dirty chains: post-processing of the
        // redrawn blocks, no new noise. (std::map iteration keeps the
        // chain walk ordered; a chain dirty in both ways is recomputed
        // once — the second pass overwrites with identical values.)
        for (const auto& [c, updates] : heavy) RecomputeAscentCosts(c);
        for (const auto& [c, weight] : light) {
          if (heavy.find(c) == heavy.end()) RecomputeAscentCosts(c);
        }
        return Status::Ok();
      },
      [&](ReleaseTelemetry& t) {
        t.sensitivity = g;
        t.noise_scale = noise_scale_;
        t.noise_draws = dirty_blocks;
      });
  DPSP_RETURN_IF_ERROR(metered);
  update_stats_.dirty_edges = static_cast<int>(final_weight.size());
  update_stats_.dirty_blocks = dirty_blocks;
  update_stats_.sensitivity = g;
  update_stats_.charged_epsilon = charged_epsilon;
  return Status::Ok();
}

void HldTreeOracle::RecomputeAscentCosts(int c) {
  const uint32_t begin = chain_member_offset_[static_cast<size_t>(c)];
  const uint32_t end = chain_member_offset_[static_cast<size_t>(c) + 1];
  const int m = static_cast<int>(end - begin);
  if (m == 0) return;
  // Chain member p sits at position p, so the whole chain's ascent
  // prefixes are the batched prefix sums over 0..m-1 — one call into the
  // (SIMD-dispatched, bit-identical) vector walk instead of m scalar
  // walks.
  std::vector<int> prefixes(static_cast<size_t>(m));
  for (int p = 0; p < m; ++p) prefixes[static_cast<size_t>(p)] = p;
  std::vector<double> sums(static_cast<size_t>(m));
  chains_[static_cast<size_t>(c)].PrefixSumsUnchecked(prefixes, sums.data());
  const double light = light_noisy_[static_cast<size_t>(c)];
  for (int p = 0; p < m; ++p) {
    VertexId v = chain_member_list_[begin + static_cast<uint32_t>(p)];
    ascent_cost_[static_cast<size_t>(v)] =
        sums[static_cast<size_t>(p)] + light;
  }
}

Status HldTreeOracle::DistanceInto(std::span<const VertexPair> pairs,
                                   double* out) const {
  // Single fused pass: bounds checks fold into the loop, and each query is
  // an O(1) LCA lookup plus two unchecked chain ascents — no per-query
  // Result or virtual dispatch.
  const unsigned n = static_cast<unsigned>(tree_->num_vertices());
  const EulerTourLca& lca = *lca_;
#if defined(DPSP_HAVE_AVX2)
  if (SimdKernelsEnabled() && pairs.size() >= 8 && lca.SimdCompatible()) {
    static_assert(sizeof(VertexPair) == 2 * sizeof(int32_t),
                  "kernels reinterpret VertexPair as two packed int32s");
    // Blocked two-phase kernel: the LCA lookups of a block vectorize
    // (gather over the packed sparse table), then the irregular chain
    // ascents run scalar with the next pair's first touches prefetched.
    constexpr size_t kBlock = 256;
    int32_t z[kBlock];
    for (size_t done = 0; done < pairs.size(); done += kBlock) {
      const size_t chunk = std::min(kBlock, pairs.size() - done);
      int bad = simd::LcaBatchAvx2(
          lca.Flat(), reinterpret_cast<const int32_t*>(pairs.data() + done),
          static_cast<int>(chunk), z);
      if (bad >= 0) return Status::InvalidArgument("vertex out of range");
      for (size_t j = 0; j < chunk; ++j) {
        if (j + 1 < chunk) {
          const auto& [pu, pv] = pairs[done + j + 1];
          __builtin_prefetch(&chain_of_[static_cast<size_t>(pu)]);
          __builtin_prefetch(&chain_of_[static_cast<size_t>(pv)]);
          __builtin_prefetch(&ascent_cost_[static_cast<size_t>(pu)]);
          __builtin_prefetch(&ascent_cost_[static_cast<size_t>(pv)]);
        }
        const auto& [u, v] = pairs[done + j];
        out[done + j] =
            DistanceToAncestor(u, z[j]) + DistanceToAncestor(v, z[j]);
      }
    }
    return Status::Ok();
  }
#endif
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [u, v] = pairs[i];
    if (static_cast<unsigned>(u) >= n || static_cast<unsigned>(v) >= n) {
      return Status::InvalidArgument("vertex out of range");
    }
    VertexId z = lca.LcaUnchecked(u, v);
    out[i] = DistanceToAncestor(u, z) + DistanceToAncestor(v, z);
  }
  return Status::Ok();
}

double HldTreeOracle::DistanceToAncestor(VertexId v, VertexId z) const {
  // Each crossing is two flat loads: the precomputed ascent cost (chain
  // prefix + light edge, cached at build as post-processing of the same
  // released blocks) and the landing vertex.
  double sum = 0.0;
  const int chain_z = chain_of_[static_cast<size_t>(z)];
  while (chain_of_[static_cast<size_t>(v)] != chain_z) {
    int c = chain_of_[static_cast<size_t>(v)];
    VertexId next = head_parent_[static_cast<size_t>(c)];
    DPSP_CHECK_MSG(next != -1, "climbed past the root during HLD ascent");
    // The landing vertex's loads miss almost always on large trees; issue
    // them now so they overlap the current crossing's add.
    __builtin_prefetch(&chain_of_[static_cast<size_t>(next)]);
    __builtin_prefetch(&ascent_cost_[static_cast<size_t>(next)]);
    sum += ascent_cost_[static_cast<size_t>(v)];
    v = next;
  }
  return sum +
         chains_[static_cast<size_t>(chain_z)]
             .RangeSumUnchecked(pos_in_chain_[static_cast<size_t>(z)],
                                pos_in_chain_[static_cast<size_t>(v)]);
}

void HldTreeOracle::AppendReleasedBuffers(
    std::vector<ReleasedBuffer>* out) const {
  out->push_back({"chain-of", chain_of_.data(),
                  chain_of_.size() * sizeof(int)});
  out->push_back({"pos-in-chain", pos_in_chain_.data(),
                  pos_in_chain_.size() * sizeof(int)});
  out->push_back({"ascent-cost", ascent_cost_.data(),
                  ascent_cost_.size() * sizeof(double)});
  out->push_back({"head-parent", head_parent_.data(),
                  head_parent_.size() * sizeof(VertexId)});
  out->push_back({"light-noisy", light_noisy_.data(),
                  light_noisy_.size() * sizeof(double)});
  EulerTourLca::FlatView flat = lca_->Flat();
  out->push_back({"lca-table", flat.table, lca_->table_bytes()});
  out->push_back({"lca-first-visit", flat.first_visit,
                  lca_->first_visit_bytes()});
  for (const NoisyDyadicRangeSums& chain : chains_) {
    NoisyDyadicRangeSums::FlatView view = chain.Flat();
    if (view.num_levels == 0) continue;
    out->push_back(
        {"dyadic-blocks", view.blocks,
         static_cast<size_t>(view.level_offset[view.num_levels]) *
             sizeof(double)});
  }
}

Status HldTreeOracle::SaveReleasedState(
    std::vector<ReleasedSection>* out) const {
  // Every noisy value of the release: the per-chain dyadic blocks
  // (concatenated in chain order, with per-chain counts so restore can
  // slice them back), and the light-edge scalars. Everything else —
  // chains, LCA, membership, ascent caches — is deterministic
  // post-processing of the public topology and the blocks.
  std::vector<double> blocks;
  std::vector<double> counts;
  counts.reserve(chains_.size());
  for (const NoisyDyadicRangeSums& chain : chains_) {
    NoisyDyadicRangeSums::FlatView view = chain.Flat();
    const size_t count =
        view.num_levels == 0
            ? 0
            : static_cast<size_t>(view.level_offset[view.num_levels]);
    counts.push_back(static_cast<double>(count));
    blocks.insert(blocks.end(), view.blocks, view.blocks + count);
  }
  out->push_back(released_state::Pack<double>(
      "chain-blocks", std::span<const double>(blocks)));
  out->push_back(released_state::Pack<double>(
      "chain-block-counts", std::span<const double>(counts)));
  out->push_back(released_state::Pack<double>(
      "light-noisy",
      std::span<const double>(light_noisy_.data(), light_noisy_.size())));
  out->push_back(released_state::PackScalars(
      "meta", {static_cast<double>(chain_head_[0]), noise_scale_,
               static_cast<double>(sensitivity_),
               static_cast<double>(num_noisy_values_), release_epsilon_}));
  return Status::Ok();
}

Result<std::unique_ptr<DistanceOracle>> HldTreeOracle::FromReleasedState(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections) {
  DPSP_ASSIGN_OR_RETURN(std::span<const double> meta,
                        released_state::Require<double>(sections, "meta", 5));
  VertexId root;
  DPSP_ASSIGN_OR_RETURN(root, released_state::AsInt(meta[0], "hld root"));
  if (root < 0 || root >= graph.num_vertices()) {
    return Status::InvalidArgument("snapshot hld root is out of range");
  }
  const double noise_scale = meta[1];
  int sensitivity;
  DPSP_ASSIGN_OR_RETURN(sensitivity,
                        released_state::AsInt(meta[2], "hld sensitivity"));
  int num_noisy_values;
  DPSP_ASSIGN_OR_RETURN(num_noisy_values,
                        released_state::AsInt(meta[3], "hld noise draws"));
  const double release_epsilon = meta[4];
  if (!(release_epsilon > 0.0)) {
    return Status::InvalidArgument("snapshot hld release epsilon must be > 0");
  }

  // Rebuild the deterministic skeleton (chains, LCA, membership) with a
  // throwaway noise stream, then overwrite every noisy value with the
  // persisted image. The decomposition depends only on the public
  // topology, never on the noise, so this is exact.
  Rng scratch_rng(0);
  PrivacyParams scratch_params;
  scratch_params.epsilon = release_epsilon;
  DPSP_ASSIGN_OR_RETURN(
      std::unique_ptr<HldTreeOracle> oracle,
      Build(graph, w, scratch_params, &scratch_rng, root));

  const size_t num_chains = oracle->chains_.size();
  DPSP_ASSIGN_OR_RETURN(
      std::span<const double> counts,
      released_state::Require<double>(sections, "chain-block-counts",
                                      static_cast<long>(num_chains)));
  DPSP_ASSIGN_OR_RETURN(
      std::span<const double> light,
      released_state::Require<double>(sections, "light-noisy",
                                      static_cast<long>(num_chains)));
  DPSP_ASSIGN_OR_RETURN(std::span<const double> blocks,
                        released_state::Require<double>(sections,
                                                        "chain-blocks"));

  size_t offset = 0;
  for (size_t c = 0; c < num_chains; ++c) {
    int count;
    DPSP_ASSIGN_OR_RETURN(
        count, released_state::AsInt(counts[c], "chain block count"));
    NoisyDyadicRangeSums& chain = oracle->chains_[c];
    NoisyDyadicRangeSums::FlatView view = chain.Flat();
    const size_t expected =
        view.num_levels == 0
            ? 0
            : static_cast<size_t>(view.level_offset[view.num_levels]);
    if (count < 0 || static_cast<size_t>(count) != expected) {
      return Status::InvalidArgument(StrFormat(
          "snapshot chain %zu has %d blocks, the graph implies %zu", c,
          count, expected));
    }
    if (offset + expected > blocks.size()) {
      return Status::InvalidArgument(
          "snapshot chain-blocks section is shorter than its counts imply");
    }
    DPSP_RETURN_IF_ERROR(
        chain.RestoreBlocks(blocks.subspan(offset, expected)));
    offset += expected;
  }
  if (offset != blocks.size()) {
    return Status::InvalidArgument(
        "snapshot chain-blocks section is longer than its counts imply");
  }
  std::copy(light.begin(), light.end(), oracle->light_noisy_.begin());
  oracle->noise_scale_ = noise_scale;
  oracle->sensitivity_ = sensitivity;
  oracle->num_noisy_values_ = num_noisy_values;
  oracle->release_epsilon_ = release_epsilon;
  for (size_t c = 0; c < num_chains; ++c) {
    oracle->RecomputeAscentCosts(static_cast<int>(c));
  }
  return std::unique_ptr<DistanceOracle>(std::move(oracle));
}

Result<double> HldTreeOracle::Distance(VertexId u, VertexId v) const {
  if (u < 0 || u >= tree_->num_vertices() || v < 0 ||
      v >= tree_->num_vertices()) {
    return Status::InvalidArgument("vertex out of range");
  }
  VertexId z = lca_->Lca(u, v);
  return DistanceToAncestor(u, z) + DistanceToAncestor(v, z);
}

double HldTreeOracle::ErrorBound(int num_vertices,
                                 const PrivacyParams& params, double gamma) {
  DPSP_CHECK_MSG(num_vertices >= 1 && gamma > 0.0 && gamma < 1.0,
                 "invalid error bound arguments");
  int levels = std::max(
      1, NoisyDyadicRangeSums::LevelsForSize(num_vertices - 1));
  double scale = static_cast<double>(levels) * params.neighbor_l1_bound /
                 params.epsilon;
  // Two ascents, each crossing <= levels chains, each chain costing
  // <= 2 levels blocks plus one light edge.
  int summands = 2 * levels * (2 * levels + 1);
  return LaplaceSumBound(scale, summands, gamma).value();
}

}  // namespace dpsp
