#include "core/hld_oracle.h"

#include <algorithm>

#include "common/table.h"
#include "dp/laplace_mechanism.h"

namespace dpsp {

Result<std::unique_ptr<HldTreeOracle>> HldTreeOracle::Build(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng, VertexId root) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  if (root == -1) root = 0;
  DPSP_ASSIGN_OR_RETURN(RootedTree tree, RootedTree::FromGraph(graph, root));

  auto oracle = std::unique_ptr<HldTreeOracle>(new HldTreeOracle());
  int n = tree.num_vertices();
  oracle->chain_of_.assign(static_cast<size_t>(n), -1);
  oracle->pos_in_chain_.assign(static_cast<size_t>(n), 0);

  // Heavy child of each vertex: the child with the largest subtree.
  std::vector<VertexId> heavy(static_cast<size_t>(n), -1);
  for (VertexId v = 0; v < n; ++v) {
    int best = 0;
    for (VertexId c : tree.children(v)) {
      if (tree.subtree_size(c) > best) {
        best = tree.subtree_size(c);
        heavy[static_cast<size_t>(v)] = c;
      }
    }
  }

  // Assign chains in BFS order (parents first).
  std::vector<std::vector<VertexId>> members;  // chain -> vertices by pos
  for (VertexId v : tree.bfs_order()) {
    VertexId p = tree.parent(v);
    if (p == -1 || heavy[static_cast<size_t>(p)] != v) {
      oracle->chain_of_[static_cast<size_t>(v)] =
          static_cast<int>(members.size());
      oracle->pos_in_chain_[static_cast<size_t>(v)] = 0;
      oracle->chain_head_.push_back(v);
      members.emplace_back(1, v);
    } else {
      int c = oracle->chain_of_[static_cast<size_t>(p)];
      oracle->chain_of_[static_cast<size_t>(v)] = c;
      oracle->pos_in_chain_[static_cast<size_t>(v)] =
          oracle->pos_in_chain_[static_cast<size_t>(p)] + 1;
      members[static_cast<size_t>(c)].push_back(v);
    }
  }

  // Joint sensitivity: an edge is either heavy (one block per level of its
  // chain's structure) or light (one released scalar), so the release's
  // sensitivity is max over chains of #levels, at least 1.
  int max_levels = 1;
  for (const auto& chain : members) {
    max_levels = std::max(
        max_levels, NoisyDyadicRangeSums::LevelsForSize(
                        static_cast<int>(chain.size()) - 1));
  }
  DPSP_ASSIGN_OR_RETURN(
      double scale,
      LaplaceScale(static_cast<double>(max_levels), params));
  oracle->noise_scale_ = scale;
  oracle->sensitivity_ = max_levels;

  // Released structures: per-chain dyadic sums over the heavy edges, plus
  // one noisy scalar per light (chain-head parent) edge.
  oracle->light_noisy_.assign(members.size(), 0.0);
  for (size_t c = 0; c < members.size(); ++c) {
    const std::vector<VertexId>& chain = members[c];
    std::vector<double> values;
    values.reserve(chain.size() - 1);
    for (size_t p = 1; p < chain.size(); ++p) {
      values.push_back(
          w[static_cast<size_t>(tree.parent_edge(chain[p]))]);
    }
    oracle->chains_.emplace_back(values, scale, rng);
    VertexId head = chain[0];
    if (tree.parent(head) != -1) {
      oracle->light_noisy_[c] =
          w[static_cast<size_t>(tree.parent_edge(head))] +
          rng->Laplace(scale);
    }
  }

  for (const NoisyDyadicRangeSums& chain : oracle->chains_) {
    oracle->num_noisy_values_ += chain.num_blocks();
  }
  for (size_t c = 0; c < members.size(); ++c) {
    if (tree.parent(oracle->chain_head_[c]) != -1) {
      ++oracle->num_noisy_values_;
    }
  }

  oracle->tree_ = std::make_unique<RootedTree>(std::move(tree));
  oracle->lca_ = std::make_unique<EulerTourLca>(*oracle->tree_);

  // Ascent caches (post-processing of the released blocks, no new noise):
  // climbing off the top of v's chain costs the chain prefix up to v plus
  // the light edge above the head, and lands on the head's parent.
  oracle->head_parent_.resize(members.size());
  for (size_t c = 0; c < members.size(); ++c) {
    oracle->head_parent_[c] = oracle->tree_->parent(oracle->chain_head_[c]);
  }
  oracle->ascent_cost_.assign(static_cast<size_t>(n), 0.0);
  for (VertexId v = 0; v < n; ++v) {
    int c = oracle->chain_of_[static_cast<size_t>(v)];
    oracle->ascent_cost_[static_cast<size_t>(v)] =
        oracle->chains_[static_cast<size_t>(c)].PrefixSumUnchecked(
            oracle->pos_in_chain_[static_cast<size_t>(v)]) +
        oracle->light_noisy_[static_cast<size_t>(c)];
  }
  return oracle;
}

Result<std::unique_ptr<HldTreeOracle>> HldTreeOracle::Build(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx,
    VertexId root) {
  return ctx.MeteredBuild(
      kName, [&] { return Build(graph, w, ctx.params(), ctx.rng(), root); },
      [](const HldTreeOracle& oracle, ReleaseTelemetry& t) {
        t.sensitivity = oracle.sensitivity();
        t.noise_scale = oracle.noise_scale();
        t.noise_draws = oracle.num_noisy_values();
      });
}

Status HldTreeOracle::DistanceInto(std::span<const VertexPair> pairs,
                                   double* out) const {
  // Single fused pass: bounds checks fold into the loop, and each query is
  // an O(1) LCA lookup plus two unchecked chain ascents — no per-query
  // Result or virtual dispatch.
  const unsigned n = static_cast<unsigned>(tree_->num_vertices());
  const EulerTourLca& lca = *lca_;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [u, v] = pairs[i];
    if (static_cast<unsigned>(u) >= n || static_cast<unsigned>(v) >= n) {
      return Status::InvalidArgument("vertex out of range");
    }
    VertexId z = lca.LcaUnchecked(u, v);
    out[i] = DistanceToAncestor(u, z) + DistanceToAncestor(v, z);
  }
  return Status::Ok();
}

double HldTreeOracle::DistanceToAncestor(VertexId v, VertexId z) const {
  // Each crossing is two flat loads: the precomputed ascent cost (chain
  // prefix + light edge, cached at build as post-processing of the same
  // released blocks) and the landing vertex.
  double sum = 0.0;
  const int chain_z = chain_of_[static_cast<size_t>(z)];
  while (chain_of_[static_cast<size_t>(v)] != chain_z) {
    int c = chain_of_[static_cast<size_t>(v)];
    sum += ascent_cost_[static_cast<size_t>(v)];
    v = head_parent_[static_cast<size_t>(c)];
    DPSP_CHECK_MSG(v != -1, "climbed past the root during HLD ascent");
  }
  return sum +
         chains_[static_cast<size_t>(chain_z)]
             .RangeSumUnchecked(pos_in_chain_[static_cast<size_t>(z)],
                                pos_in_chain_[static_cast<size_t>(v)]);
}

Result<double> HldTreeOracle::Distance(VertexId u, VertexId v) const {
  if (u < 0 || u >= tree_->num_vertices() || v < 0 ||
      v >= tree_->num_vertices()) {
    return Status::InvalidArgument("vertex out of range");
  }
  VertexId z = lca_->Lca(u, v);
  return DistanceToAncestor(u, z) + DistanceToAncestor(v, z);
}

double HldTreeOracle::ErrorBound(int num_vertices,
                                 const PrivacyParams& params, double gamma) {
  DPSP_CHECK_MSG(num_vertices >= 1 && gamma > 0.0 && gamma < 1.0,
                 "invalid error bound arguments");
  int levels = std::max(
      1, NoisyDyadicRangeSums::LevelsForSize(num_vertices - 1));
  double scale = static_cast<double>(levels) * params.neighbor_l1_bound /
                 params.epsilon;
  // Two ascents, each crossing <= levels chains, each chain costing
  // <= 2 levels blocks plus one light edge.
  int summands = 2 * levels * (2 * levels + 1);
  return LaplaceSumBound(scale, summands, gamma).value();
}

}  // namespace dpsp
