#include "core/hld_oracle.h"

#include <algorithm>
#include <atomic>

#include "common/parallel.h"
#include "common/table.h"
#include "dp/laplace_mechanism.h"

namespace dpsp {

Result<std::unique_ptr<HldTreeOracle>> HldTreeOracle::Build(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng, VertexId root) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  if (root == -1) root = 0;
  DPSP_ASSIGN_OR_RETURN(RootedTree tree, RootedTree::FromGraph(graph, root));

  auto oracle = std::unique_ptr<HldTreeOracle>(new HldTreeOracle());
  int n = tree.num_vertices();
  oracle->chain_of_.assign(static_cast<size_t>(n), -1);
  oracle->pos_in_chain_.assign(static_cast<size_t>(n), 0);

  // Heavy child of each vertex: the child with the largest subtree.
  std::vector<VertexId> heavy(static_cast<size_t>(n), -1);
  for (VertexId v = 0; v < n; ++v) {
    int best = 0;
    for (VertexId c : tree.children(v)) {
      if (tree.subtree_size(c) > best) {
        best = tree.subtree_size(c);
        heavy[static_cast<size_t>(v)] = c;
      }
    }
  }

  // Assign chains in BFS order (parents first).
  std::vector<std::vector<VertexId>> members;  // chain -> vertices by pos
  for (VertexId v : tree.bfs_order()) {
    VertexId p = tree.parent(v);
    if (p == -1 || heavy[static_cast<size_t>(p)] != v) {
      oracle->chain_of_[static_cast<size_t>(v)] =
          static_cast<int>(members.size());
      oracle->pos_in_chain_[static_cast<size_t>(v)] = 0;
      oracle->chain_head_.push_back(v);
      members.emplace_back(1, v);
    } else {
      int c = oracle->chain_of_[static_cast<size_t>(p)];
      oracle->chain_of_[static_cast<size_t>(v)] = c;
      oracle->pos_in_chain_[static_cast<size_t>(v)] =
          oracle->pos_in_chain_[static_cast<size_t>(p)] + 1;
      members[static_cast<size_t>(c)].push_back(v);
    }
  }

  // Joint sensitivity: an edge is either heavy (one block per level of its
  // chain's structure) or light (one released scalar), so the release's
  // sensitivity is max over chains of #levels, at least 1.
  int max_levels = 1;
  for (const auto& chain : members) {
    max_levels = std::max(
        max_levels, NoisyDyadicRangeSums::LevelsForSize(
                        static_cast<int>(chain.size()) - 1));
  }
  DPSP_ASSIGN_OR_RETURN(
      double scale,
      LaplaceScale(static_cast<double>(max_levels), params));
  oracle->noise_scale_ = scale;
  oracle->sensitivity_ = max_levels;

  // Released structures: per-chain dyadic sums over the heavy edges, plus
  // one noisy scalar per light (chain-head parent) edge.
  oracle->light_noisy_.assign(members.size(), 0.0);
  for (size_t c = 0; c < members.size(); ++c) {
    const std::vector<VertexId>& chain = members[c];
    std::vector<double> values;
    values.reserve(chain.size() - 1);
    for (size_t p = 1; p < chain.size(); ++p) {
      values.push_back(
          w[static_cast<size_t>(tree.parent_edge(chain[p]))]);
    }
    oracle->chains_.emplace_back(values, scale, rng);
    VertexId head = chain[0];
    if (tree.parent(head) != -1) {
      oracle->light_noisy_[c] =
          w[static_cast<size_t>(tree.parent_edge(head))] +
          rng->Laplace(scale);
    }
  }

  for (const NoisyDyadicRangeSums& chain : oracle->chains_) {
    oracle->num_noisy_values_ += chain.num_blocks();
  }
  for (size_t c = 0; c < members.size(); ++c) {
    if (tree.parent(oracle->chain_head_[c]) != -1) {
      ++oracle->num_noisy_values_;
    }
  }

  oracle->tree_ = std::make_unique<RootedTree>(std::move(tree));
  oracle->lca_ = std::make_unique<EulerTourLca>(*oracle->tree_);
  return oracle;
}

Result<std::unique_ptr<HldTreeOracle>> HldTreeOracle::Build(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx,
    VertexId root) {
  WallTimer timer;
  DPSP_RETURN_IF_ERROR(ctx.CheckBudgetFor(kName));
  DPSP_ASSIGN_OR_RETURN(auto oracle,
                        Build(graph, w, ctx.params(), ctx.rng(), root));
  ReleaseTelemetry t;
  t.mechanism = kName;
  t.sensitivity = oracle->sensitivity();
  t.noise_scale = oracle->noise_scale();
  t.noise_draws = oracle->num_noisy_values();
  t.wall_ms = timer.Ms();
  DPSP_RETURN_IF_ERROR(ctx.CommitRelease(std::move(t)));
  return oracle;
}

Result<std::vector<double>> HldTreeOracle::DistanceBatch(
    std::span<const VertexPair> pairs) const {
  // Single fused pass: bounds checks fold into the chunk loop, and each
  // query is an O(1) LCA lookup plus two unchecked chain ascents — no
  // per-query Result or virtual dispatch.
  const unsigned n = static_cast<unsigned>(tree_->num_vertices());
  const EulerTourLca& lca = *lca_;
  std::vector<double> out(pairs.size());
  std::atomic<bool> bad{false};
  ParallelFor(pairs.size(), /*max_threads=*/0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const auto& [u, v] = pairs[i];
      if (static_cast<unsigned>(u) >= n || static_cast<unsigned>(v) >= n) {
        bad.store(true, std::memory_order_relaxed);
        return;
      }
      VertexId z = lca.Lca(u, v);
      out[i] = DistanceToAncestor(u, z) + DistanceToAncestor(v, z);
    }
  });
  if (bad.load()) return Status::InvalidArgument("vertex out of range");
  return out;
}

double HldTreeOracle::DistanceToAncestor(VertexId v, VertexId z) const {
  double sum = 0.0;
  while (chain_of_[static_cast<size_t>(v)] !=
         chain_of_[static_cast<size_t>(z)]) {
    int c = chain_of_[static_cast<size_t>(v)];
    sum += chains_[static_cast<size_t>(c)].RangeSumUnchecked(
               0, pos_in_chain_[static_cast<size_t>(v)]) +
           light_noisy_[static_cast<size_t>(c)];
    VertexId head = chain_head_[static_cast<size_t>(c)];
    v = tree_->parent(head);
    DPSP_CHECK_MSG(v != -1, "climbed past the root during HLD ascent");
  }
  return sum +
         chains_[static_cast<size_t>(chain_of_[static_cast<size_t>(v)])]
             .RangeSumUnchecked(pos_in_chain_[static_cast<size_t>(z)],
                                pos_in_chain_[static_cast<size_t>(v)]);
}

Result<double> HldTreeOracle::Distance(VertexId u, VertexId v) const {
  if (u < 0 || u >= tree_->num_vertices() || v < 0 ||
      v >= tree_->num_vertices()) {
    return Status::InvalidArgument("vertex out of range");
  }
  VertexId z = lca_->Lca(u, v);
  return DistanceToAncestor(u, z) + DistanceToAncestor(v, z);
}

double HldTreeOracle::ErrorBound(int num_vertices,
                                 const PrivacyParams& params, double gamma) {
  DPSP_CHECK_MSG(num_vertices >= 1 && gamma > 0.0 && gamma < 1.0,
                 "invalid error bound arguments");
  int levels = std::max(
      1, NoisyDyadicRangeSums::LevelsForSize(num_vertices - 1));
  double scale = static_cast<double>(levels) * params.neighbor_l1_bound /
                 params.epsilon;
  // Two ascents, each crossing <= levels chains, each chain costing
  // <= 2 levels blocks plus one light edge.
  int summands = 2 * levels * (2 * levels + 1);
  return LaplaceSumBound(scale, summands, gamma).value();
}

}  // namespace dpsp
