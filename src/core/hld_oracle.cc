#include "core/hld_oracle.h"

#include <algorithm>

#include "dp/laplace_mechanism.h"

namespace dpsp {

Result<std::unique_ptr<HldTreeOracle>> HldTreeOracle::Build(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng, VertexId root) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  if (root == -1) root = 0;
  DPSP_ASSIGN_OR_RETURN(RootedTree tree, RootedTree::FromGraph(graph, root));

  auto oracle = std::unique_ptr<HldTreeOracle>(new HldTreeOracle());
  int n = tree.num_vertices();
  oracle->chain_of_.assign(static_cast<size_t>(n), -1);
  oracle->pos_in_chain_.assign(static_cast<size_t>(n), 0);

  // Heavy child of each vertex: the child with the largest subtree.
  std::vector<VertexId> heavy(static_cast<size_t>(n), -1);
  for (VertexId v = 0; v < n; ++v) {
    int best = 0;
    for (VertexId c : tree.children(v)) {
      if (tree.subtree_size(c) > best) {
        best = tree.subtree_size(c);
        heavy[static_cast<size_t>(v)] = c;
      }
    }
  }

  // Assign chains in BFS order (parents first).
  std::vector<std::vector<VertexId>> members;  // chain -> vertices by pos
  for (VertexId v : tree.bfs_order()) {
    VertexId p = tree.parent(v);
    if (p == -1 || heavy[static_cast<size_t>(p)] != v) {
      oracle->chain_of_[static_cast<size_t>(v)] =
          static_cast<int>(members.size());
      oracle->pos_in_chain_[static_cast<size_t>(v)] = 0;
      oracle->chain_head_.push_back(v);
      members.emplace_back(1, v);
    } else {
      int c = oracle->chain_of_[static_cast<size_t>(p)];
      oracle->chain_of_[static_cast<size_t>(v)] = c;
      oracle->pos_in_chain_[static_cast<size_t>(v)] =
          oracle->pos_in_chain_[static_cast<size_t>(p)] + 1;
      members[static_cast<size_t>(c)].push_back(v);
    }
  }

  // Joint sensitivity: an edge is either heavy (one block per level of its
  // chain's structure) or light (one released scalar), so the release's
  // sensitivity is max over chains of #levels, at least 1.
  int max_levels = 1;
  for (const auto& chain : members) {
    max_levels = std::max(
        max_levels, NoisyDyadicRangeSums::LevelsForSize(
                        static_cast<int>(chain.size()) - 1));
  }
  DPSP_ASSIGN_OR_RETURN(
      double scale,
      LaplaceScale(static_cast<double>(max_levels), params));
  oracle->noise_scale_ = scale;

  // Released structures: per-chain dyadic sums over the heavy edges, plus
  // one noisy scalar per light (chain-head parent) edge.
  oracle->light_noisy_.assign(members.size(), 0.0);
  for (size_t c = 0; c < members.size(); ++c) {
    const std::vector<VertexId>& chain = members[c];
    std::vector<double> values;
    values.reserve(chain.size() - 1);
    for (size_t p = 1; p < chain.size(); ++p) {
      values.push_back(
          w[static_cast<size_t>(tree.parent_edge(chain[p]))]);
    }
    oracle->chains_.emplace_back(values, scale, rng);
    VertexId head = chain[0];
    if (tree.parent(head) != -1) {
      oracle->light_noisy_[c] =
          w[static_cast<size_t>(tree.parent_edge(head))] +
          rng->Laplace(scale);
    }
  }

  oracle->tree_ = std::make_unique<RootedTree>(std::move(tree));
  oracle->lca_ = std::make_unique<LcaIndex>(*oracle->tree_);
  return oracle;
}

Result<double> HldTreeOracle::DistanceToAncestor(VertexId v,
                                                 VertexId z) const {
  double sum = 0.0;
  while (chain_of_[static_cast<size_t>(v)] !=
         chain_of_[static_cast<size_t>(z)]) {
    int c = chain_of_[static_cast<size_t>(v)];
    DPSP_ASSIGN_OR_RETURN(
        double range,
        chains_[static_cast<size_t>(c)].RangeSum(
            0, pos_in_chain_[static_cast<size_t>(v)]));
    sum += range + light_noisy_[static_cast<size_t>(c)];
    VertexId head = chain_head_[static_cast<size_t>(c)];
    v = tree_->parent(head);
    DPSP_CHECK_MSG(v != -1, "climbed past the root during HLD ascent");
  }
  DPSP_ASSIGN_OR_RETURN(
      double range,
      chains_[static_cast<size_t>(chain_of_[static_cast<size_t>(v)])]
          .RangeSum(pos_in_chain_[static_cast<size_t>(z)],
                    pos_in_chain_[static_cast<size_t>(v)]));
  return sum + range;
}

Result<double> HldTreeOracle::Distance(VertexId u, VertexId v) const {
  if (u < 0 || u >= tree_->num_vertices() || v < 0 ||
      v >= tree_->num_vertices()) {
    return Status::InvalidArgument("vertex out of range");
  }
  VertexId z = lca_->Lca(u, v);
  DPSP_ASSIGN_OR_RETURN(double du, DistanceToAncestor(u, z));
  DPSP_ASSIGN_OR_RETURN(double dv, DistanceToAncestor(v, z));
  return du + dv;
}

double HldTreeOracle::ErrorBound(int num_vertices,
                                 const PrivacyParams& params, double gamma) {
  DPSP_CHECK_MSG(num_vertices >= 1 && gamma > 0.0 && gamma < 1.0,
                 "invalid error bound arguments");
  int levels = std::max(
      1, NoisyDyadicRangeSums::LevelsForSize(num_vertices - 1));
  double scale = static_cast<double>(levels) * params.neighbor_l1_bound /
                 params.epsilon;
  // Two ascents, each crossing <= levels chains, each chain costing
  // <= 2 levels blocks plus one light edge.
  int summands = 2 * levels * (2 * levels + 1);
  return LaplaceSumBound(scale, summands, gamma);
}

}  // namespace dpsp
