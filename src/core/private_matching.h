// Private low-weight perfect matchings (Appendix B.2, Theorem B.6).
//
// Add Lap(1/eps) noise to every edge weight and release the exact minimum-
// weight perfect matching of the noisy graph (post-processing, hence
// eps-DP). Conditioned on all |noise| <= (1/eps) log(E/gamma), the released
// matching weighs at most (V/eps) log(E/gamma) more than the optimum.
// Weights may be negative.

#ifndef DPSP_CORE_PRIVATE_MATCHING_H_
#define DPSP_CORE_PRIVATE_MATCHING_H_

#include "common/random.h"
#include "dp/privacy.h"
#include "graph/graph.h"
#include "graph/matching.h"

namespace dpsp {

/// The released matching plus the noisy weights it was computed from.
struct PrivateMatchingResult {
  Matching matching;
  EdgeWeights noisy_weights;
  double noise_scale = 0.0;
};

/// Theorem B.6 mechanism. Graph must contain a perfect matching findable by
/// the solvers in graph/matching.h (see DESIGN.md §1.3).
Result<PrivateMatchingResult> PrivateMatching(const Graph& graph,
                                              const EdgeWeights& w,
                                              const PrivacyParams& params,
                                              Rng* rng);

/// The Theorem B.6 high-probability error bound
/// (V/eps) log(E/gamma) * rho.
double PrivateMatchingErrorBound(int num_vertices, int num_edges,
                                 const PrivacyParams& params, double gamma);

/// The Theorem B.4 lower bound on expected matching error for any
/// (eps, delta)-DP algorithm on the hourglass gadget:
/// (V/4) (1 - (1+e^eps) delta) / (1 + e^{2 eps}).
double MatchingLowerBound(int num_vertices, double epsilon, double delta);

/// The minimum perfect-matching *cost*: like the MST cost, a sensitivity-1
/// scalar in this model (a unit l1 weight change moves every matching's
/// weight by at most 1), releasable with a single Laplace draw — no
/// Omega(V) barrier, unlike the matching itself (Theorem B.4).
Result<double> PrivateMatchingCost(const Graph& graph, const EdgeWeights& w,
                                   const PrivacyParams& params, Rng* rng);

}  // namespace dpsp

#endif  // DPSP_CORE_PRIVATE_MATCHING_H_
