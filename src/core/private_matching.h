// Private low-weight perfect matchings (Appendix B.2, Theorem B.6).
//
// Add Lap(1/eps) noise to every edge weight and release the exact minimum-
// weight perfect matching of the noisy graph (post-processing, hence
// eps-DP). Conditioned on all |noise| <= (1/eps) log(E/gamma), the released
// matching weighs at most (V/eps) log(E/gamma) more than the optimum.
// Weights may be negative.

#ifndef DPSP_CORE_PRIVATE_MATCHING_H_
#define DPSP_CORE_PRIVATE_MATCHING_H_

#include <memory>

#include "common/random.h"
#include "core/distance_oracle.h"
#include "dp/privacy.h"
#include "dp/release_context.h"
#include "graph/graph.h"
#include "graph/matching.h"

namespace dpsp {

/// The released matching plus the noisy weights it was computed from.
struct PrivateMatchingResult {
  Matching matching;
  EdgeWeights noisy_weights;
  double noise_scale = 0.0;
};

/// Theorem B.6 mechanism. Graph must contain a perfect matching findable by
/// the solvers in graph/matching.h (see DESIGN.md §1.3).
Result<PrivateMatchingResult> PrivateMatching(const Graph& graph,
                                              const EdgeWeights& w,
                                              const PrivacyParams& params,
                                              Rng* rng);

/// The Theorem B.6 high-probability error bound
/// (V/eps) log(E/gamma) * rho.
double PrivateMatchingErrorBound(int num_vertices, int num_edges,
                                 const PrivacyParams& params, double gamma);

/// The Theorem B.4 lower bound on expected matching error for any
/// (eps, delta)-DP algorithm on the hourglass gadget:
/// (V/4) (1 - (1+e^eps) delta) / (1 + e^{2 eps}).
double MatchingLowerBound(int num_vertices, double epsilon, double delta);

/// Distance oracle over the Theorem B.6 release. The mechanism's released
/// object is the noisy weight function (the matching is post-processing of
/// it); further post-processing yields all-pairs distances on the noisy
/// graph, clamped at zero so Dijkstra applies. One eps-DP release thus
/// serves both the matching structure and distance queries. Registered as
/// "private-matching".
class MatchingDistanceOracle final : public DistanceOracle {
 public:
  /// Registry name of this mechanism.
  static constexpr const char* kName = "private-matching";

  /// Builds through the release pipeline: draws one release of
  /// ctx.params() from the accountant and records telemetry.
  static Result<std::unique_ptr<MatchingDistanceOracle>> Build(
      const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx);

  /// Legacy entry point without budget accounting.
  static Result<std::unique_ptr<MatchingDistanceOracle>> Build(
      const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
      Rng* rng);

  Result<double> Distance(VertexId u, VertexId v) const override;
  /// Fused serial kernel: one dense-matrix load per pair.
  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override;
  std::string Name() const override { return kName; }

  /// The underlying release (matching + noisy weights).
  const PrivateMatchingResult& released() const { return released_; }

  /// Persists the release: the noisy weight function and its scale. The
  /// matching and the distance matrix are deterministic post-processing of
  /// the noisy weights and are recomputed at restore.
  Status SaveReleasedState(std::vector<ReleasedSection>* out) const override;

  /// OracleLoader counterpart: replays the deterministic post-processing
  /// (matching solver + clamped all-pairs Dijkstra) over the persisted
  /// noisy weights. Bit-identical queries, no budget consumed.
  static Result<std::unique_ptr<DistanceOracle>> FromReleasedState(
      const Graph& graph, const EdgeWeights& w,
      std::span<const ReleasedSectionView> sections);

 private:
  MatchingDistanceOracle(PrivateMatchingResult released,
                         DistanceMatrix distances);

  PrivateMatchingResult released_;
  DistanceMatrix distances_;
};

/// The minimum perfect-matching *cost*: like the MST cost, a sensitivity-1
/// scalar in this model (a unit l1 weight change moves every matching's
/// weight by at most 1), releasable with a single Laplace draw — no
/// Omega(V) barrier, unlike the matching itself (Theorem B.4).
Result<double> PrivateMatchingCost(const Graph& graph, const EdgeWeights& w,
                                   const PrivacyParams& params, Rng* rng);

}  // namespace dpsp

#endif  // DPSP_CORE_PRIVATE_MATCHING_H_
