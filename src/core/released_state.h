// Pack/unpack helpers shared by every mechanism's SaveReleasedState /
// restore-factory pair. A section is a raw little-endian byte image of a
// flat array (we only target little-endian hosts, like the rest of the
// wire protocol); scalar metadata travels as a small array of doubles so
// one helper covers every family. Unpack validates sizes and returns typed
// errors — snapshot bytes are untrusted input (see tests/store_fuzz_test).

#ifndef DPSP_CORE_RELEASED_STATE_H_
#define DPSP_CORE_RELEASED_STATE_H_

#include <cstring>
#include <initializer_list>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/table.h"
#include "core/distance_oracle.h"

namespace dpsp {
namespace released_state {

/// Byte image of a flat trivially-copyable array.
template <typename T>
ReleasedSection Pack(std::string label, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  ReleasedSection section;
  section.label = std::move(label);
  section.bytes.resize(values.size() * sizeof(T));
  if (!values.empty()) {
    std::memcpy(section.bytes.data(), values.data(), section.bytes.size());
  }
  return section;
}

inline ReleasedSection PackScalars(std::string label,
                                   std::initializer_list<double> scalars) {
  return Pack<double>(std::move(label),
                      std::span<const double>(scalars.begin(), scalars.size()));
}

/// The section labeled `label`, or NotFound.
inline Result<ReleasedSectionView> Find(
    std::span<const ReleasedSectionView> sections, std::string_view label) {
  for (const ReleasedSectionView& section : sections) {
    if (section.label == label) return section;
  }
  return Status::NotFound(
      StrFormat("snapshot is missing section '%s'",
                std::string(label).c_str()));
}

/// Reinterprets a section as a span of T; rejects byte counts that are not
/// a multiple of sizeof(T). The returned span aliases the section bytes.
template <typename T>
Result<std::span<const T>> As(const ReleasedSectionView& section) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (section.bytes.size() % sizeof(T) != 0) {
    return Status::InvalidArgument(
        StrFormat("section '%s' holds %zu bytes, not a multiple of %zu",
                  std::string(section.label).c_str(), section.bytes.size(),
                  sizeof(T)));
  }
  return std::span<const T>(
      reinterpret_cast<const T*>(section.bytes.data()),
      section.bytes.size() / sizeof(T));
}

/// Find + As, additionally enforcing an exact element count when
/// `expected_count` >= 0.
template <typename T>
Result<std::span<const T>> Require(
    std::span<const ReleasedSectionView> sections, std::string_view label,
    long expected_count = -1) {
  DPSP_ASSIGN_OR_RETURN(ReleasedSectionView section, Find(sections, label));
  DPSP_ASSIGN_OR_RETURN(std::span<const T> values, As<T>(section));
  if (expected_count >= 0 &&
      values.size() != static_cast<size_t>(expected_count)) {
    return Status::InvalidArgument(
        StrFormat("section '%s' holds %zu values, expected %ld",
                  std::string(label).c_str(), values.size(), expected_count));
  }
  return values;
}

/// An int stored as a double in a scalar-metadata section; rejects values
/// that do not round-trip (corrupt or lying metadata).
inline Result<int> AsInt(double value, const char* what) {
  int as_int = static_cast<int>(value);
  if (static_cast<double>(as_int) != value) {
    return Status::InvalidArgument(
        StrFormat("%s is not an integer (%g)", what, value));
  }
  return as_int;
}

}  // namespace released_state
}  // namespace dpsp

#endif  // DPSP_CORE_RELEASED_STATE_H_
