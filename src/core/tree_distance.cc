#include "core/tree_distance.h"

#include <cmath>

#include "common/cpu.h"
#include "common/table.h"
#include "core/released_state.h"
#include "core/simd_kernels.h"
#include "dp/laplace_mechanism.h"
#include "graph/tree_partition.h"

namespace dpsp {

namespace {

// ceil(log2 n) for n >= 1.
int CeilLog2(int n) {
  int log = 0;
  int pow = 1;
  while (pow < n) {
    pow *= 2;
    ++log;
  }
  return log;
}

// Recursive worker for Algorithm 1. `base` is the (noisy) estimate of the
// distance from the global root to view.root; exact root distances within
// the original tree are in `root_dist` (private intermediates — only the
// noised combinations below are ever released).
struct Recursion {
  const RootedTree& tree;
  const EdgeWeights& w;
  const std::vector<double>& root_dist;
  double scale;
  Rng* rng;
  AlignedVector<double>& estimates;
  int noisy_count = 0;

  void Run(const SubtreeView& view, double base) {
    estimates[static_cast<size_t>(view.root)] = base;
    if (view.size() == 1) return;

    TreeSplit split = SplitSubtree(tree, view).value();

    // Released value 1: distance view.root -> v* (exact value is the
    // difference of root distances because v* descends from view.root).
    double d_vstar = base;
    if (split.v_star != view.root) {
      double exact = root_dist[static_cast<size_t>(split.v_star)] -
                     root_dist[static_cast<size_t>(view.root)];
      d_vstar = base + exact + rng->Laplace(scale);
      ++noisy_count;
    }

    // Released values 2..t+1: the edges (v*, v_i).
    std::vector<double> child_estimates(split.child_roots.size());
    for (size_t i = 0; i < split.child_roots.size(); ++i) {
      VertexId child = split.child_roots[i];
      EdgeId e = tree.parent_edge(child);
      DPSP_CHECK_MSG(e >= 0 && tree.parent(child) == split.v_star,
                     "split child is not a tree child of v*");
      child_estimates[i] =
          d_vstar + w[static_cast<size_t>(e)] + rng->Laplace(scale);
      ++noisy_count;
    }

    // Recurse: T_0 keeps the current base; each T_i starts from its own
    // noisy estimate.
    Run(split.rest, base);
    for (size_t i = 0; i < split.child_subtrees.size(); ++i) {
      Run(split.child_subtrees[i], child_estimates[i]);
    }
  }
};

}  // namespace

Result<TreeSingleSourceRelease> ReleaseTreeSingleSourceDistances(
    const Graph& graph, const EdgeWeights& w, VertexId root,
    const PrivacyParams& params, Rng* rng) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  DPSP_ASSIGN_OR_RETURN(RootedTree tree, RootedTree::FromGraph(graph, root));

  int n = graph.num_vertices();
  // Recursion-depth bound = sensitivity of the full released vector: the
  // subtree sizes shrink to <= ceil(n/2) per level, so the depth is at most
  // ceil(log2 n) + 1; each level's released values have joint sensitivity 1.
  int sensitivity = CeilLog2(n) + 1;
  DPSP_ASSIGN_OR_RETURN(
      double scale,
      LaplaceScale(static_cast<double>(sensitivity), params));

  TreeSingleSourceRelease release;
  release.root = root;
  release.noise_scale = scale;
  release.sensitivity = sensitivity;
  release.estimates.assign(static_cast<size_t>(n), 0.0);

  std::vector<double> root_dist = tree.RootDistances(w);
  Recursion recursion{tree,  w,  root_dist, scale,
                      rng,   release.estimates};
  recursion.Run(FullTreeView(tree), 0.0);
  release.num_noisy_values = recursion.noisy_count;
  return release;
}

double TreeSingleSourceErrorBound(int num_vertices,
                                  const PrivacyParams& params, double gamma) {
  DPSP_CHECK_MSG(num_vertices >= 1 && gamma > 0.0 && gamma < 1.0,
                 "invalid error bound arguments");
  int sensitivity = CeilLog2(num_vertices) + 1;
  double scale = static_cast<double>(sensitivity) * params.neighbor_l1_bound /
                 params.epsilon;
  int summands = 2 * CeilLog2(num_vertices) + 2;
  return LaplaceSumBound(scale, summands, gamma).value();
}

double TreeAllPairsErrorBound(int num_vertices, const PrivacyParams& params,
                              double gamma) {
  return 4.0 * TreeSingleSourceErrorBound(num_vertices, params, gamma);
}

TreeAllPairsOracle::TreeAllPairsOracle(RootedTree tree,
                                       TreeSingleSourceRelease release)
    : tree_(std::move(tree)), lca_(tree_), release_(std::move(release)) {}

Result<std::unique_ptr<TreeAllPairsOracle>> TreeAllPairsOracle::Build(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng, VertexId root) {
  if (root == -1) root = 0;
  DPSP_ASSIGN_OR_RETURN(
      TreeSingleSourceRelease release,
      ReleaseTreeSingleSourceDistances(graph, w, root, params, rng));
  DPSP_ASSIGN_OR_RETURN(RootedTree tree, RootedTree::FromGraph(graph, root));
  return std::unique_ptr<TreeAllPairsOracle>(
      new TreeAllPairsOracle(std::move(tree), std::move(release)));
}

Result<std::unique_ptr<TreeAllPairsOracle>> TreeAllPairsOracle::Build(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx,
    VertexId root) {
  return ctx.MeteredBuild(
      kName, [&] { return Build(graph, w, ctx.params(), ctx.rng(), root); },
      [](const TreeAllPairsOracle& oracle, ReleaseTelemetry& t) {
        t.sensitivity = oracle.release().sensitivity;
        t.noise_scale = oracle.release().noise_scale;
        t.noise_draws = oracle.release().num_noisy_values;
      });
}

void TreeAllPairsOracle::AppendReleasedBuffers(
    std::vector<ReleasedBuffer>* out) const {
  out->push_back({"estimates", release_.estimates.data(),
                  release_.estimates.size() * sizeof(double)});
  EulerTourLca::FlatView flat = lca_.Flat();
  out->push_back({"lca-table", flat.table, lca_.table_bytes()});
  out->push_back({"lca-first-visit", flat.first_visit,
                  lca_.first_visit_bytes()});
}

Status TreeAllPairsOracle::SaveReleasedState(
    std::vector<ReleasedSection>* out) const {
  out->push_back(released_state::Pack<double>(
      "estimates", std::span<const double>(release_.estimates.data(),
                                           release_.estimates.size())));
  out->push_back(released_state::PackScalars(
      "meta", {static_cast<double>(release_.root), release_.noise_scale,
               static_cast<double>(release_.num_noisy_values),
               static_cast<double>(release_.sensitivity)}));
  return Status::Ok();
}

Result<std::unique_ptr<DistanceOracle>> TreeAllPairsOracle::FromReleasedState(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections) {
  (void)w;
  DPSP_ASSIGN_OR_RETURN(std::span<const double> meta,
                        released_state::Require<double>(sections, "meta", 4));
  TreeSingleSourceRelease release;
  DPSP_ASSIGN_OR_RETURN(release.root,
                        released_state::AsInt(meta[0], "tree root"));
  release.noise_scale = meta[1];
  DPSP_ASSIGN_OR_RETURN(release.num_noisy_values,
                        released_state::AsInt(meta[2], "noise draw count"));
  DPSP_ASSIGN_OR_RETURN(release.sensitivity,
                        released_state::AsInt(meta[3], "sensitivity"));
  if (release.root < 0 || release.root >= graph.num_vertices()) {
    return Status::InvalidArgument("snapshot tree root is out of range");
  }
  DPSP_ASSIGN_OR_RETURN(std::span<const double> estimates,
                        released_state::Require<double>(
                            sections, "estimates", graph.num_vertices()));
  release.estimates.assign(estimates.begin(), estimates.end());
  DPSP_ASSIGN_OR_RETURN(RootedTree tree,
                        RootedTree::FromGraph(graph, release.root));
  return std::unique_ptr<DistanceOracle>(
      new TreeAllPairsOracle(std::move(tree), std::move(release)));
}

Result<double> TreeAllPairsOracle::Distance(VertexId u, VertexId v) const {
  if (u < 0 || u >= tree_.num_vertices() || v < 0 ||
      v >= tree_.num_vertices()) {
    return Status::InvalidArgument("vertex out of range");
  }
  VertexId z = lca_.Lca(u, v);
  const auto& est = release_.estimates;
  return est[static_cast<size_t>(u)] + est[static_cast<size_t>(v)] -
         2.0 * est[static_cast<size_t>(z)];
}

Status TreeAllPairsOracle::DistanceInto(std::span<const VertexPair> pairs,
                                        double* out) const {
  // Single fused pass: bounds checks fold into the loop (no separate
  // validation sweep) and the per-pair work is three array reads around an
  // O(1) LCA lookup — no per-query Result or virtual dispatch.
  const unsigned n = static_cast<unsigned>(tree_.num_vertices());
  const double* est = release_.estimates.data();
#if defined(DPSP_HAVE_AVX2)
  if (SimdKernelsEnabled() && pairs.size() >= 8 && lca_.SimdCompatible()) {
    static_assert(sizeof(VertexPair) == 2 * sizeof(int32_t),
                  "kernels reinterpret VertexPair as two packed int32s");
    int bad = simd::TreeCombineAvx2(
        lca_.Flat(), est, reinterpret_cast<const int32_t*>(pairs.data()),
        static_cast<int>(pairs.size()), out);
    if (bad < 0) return Status::Ok();
    return Status::InvalidArgument("vertex out of range");
  }
#endif
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [u, v] = pairs[i];
    if (static_cast<unsigned>(u) >= n || static_cast<unsigned>(v) >= n) {
      return Status::InvalidArgument("vertex out of range");
    }
    VertexId z = lca_.LcaUnchecked(u, v);
    out[i] = est[static_cast<size_t>(u)] + est[static_cast<size_t>(v)] -
             2.0 * est[static_cast<size_t>(z)];
  }
  return Status::Ok();
}

}  // namespace dpsp
