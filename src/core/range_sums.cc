#include "core/range_sums.h"

#include <algorithm>
#include <bit>

#include "common/cpu.h"
#include "common/table.h"
#include "core/simd_kernels.h"

namespace dpsp {

int NoisyDyadicRangeSums::LevelsForSize(int size) {
  DPSP_CHECK_MSG(size >= 0, "size must be non-negative");
  if (size == 0) return 0;
  int levels = 1;
  while ((1 << (levels - 1)) < size) ++levels;
  return levels;
}

NoisyDyadicRangeSums::NoisyDyadicRangeSums(const std::vector<double>& values,
                                           double noise_scale, Rng* rng)
    : size_(static_cast<int>(values.size())),
      noise_scale_(noise_scale),
      values_(values) {
  if (size_ == 0) return;
  DPSP_CHECK_MSG(noise_scale > 0.0, "noise scale must be positive");

  std::vector<double> prefix(values.size() + 1, 0.0);
  for (size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }

  // One flat level-major buffer: level_offset_ first (block counts per
  // level), then every block sum + Laplace draw in (level, block) order —
  // the same Rng walk as a per-level layout, so fixed seeds reproduce.
  int num_levels = LevelsForSize(size_);
  level_offset_.assign(static_cast<size_t>(num_levels) + 1, 0);
  for (int l = 0; l < num_levels; ++l) {
    int width = 1 << l;
    int count = (size_ + width - 1) / width;
    level_offset_[static_cast<size_t>(l) + 1] =
        level_offset_[static_cast<size_t>(l)] + static_cast<uint32_t>(count);
  }
  blocks_.resize(level_offset_.back());
  for (int l = 0; l < num_levels; ++l) {
    int width = 1 << l;
    int count = static_cast<int>(level_offset_[static_cast<size_t>(l) + 1] -
                                 level_offset_[static_cast<size_t>(l)]);
    for (int j = 0; j < count; ++j) {
      int lo = j * width;
      int hi = std::min(size_, lo + width);
      blocks_[BlockSlot(l, j)] =
          prefix[static_cast<size_t>(hi)] - prefix[static_cast<size_t>(lo)] +
          rng->Laplace(noise_scale);
    }
  }
}

namespace {

// Distinct block ids `i >> level` of the (sorted, deduplicated) dirty
// indices, ascending.
std::vector<int> DirtyBlocksAtLevel(const std::vector<int>& indices,
                                    int level) {
  std::vector<int> blocks;
  blocks.reserve(indices.size());
  for (int i : indices) {
    int j = i >> level;
    if (blocks.empty() || blocks.back() != j) blocks.push_back(j);
  }
  return blocks;
}

}  // namespace

int NoisyDyadicRangeSums::ApplyPointUpdates(
    std::span<const std::pair<int, double>> updates, Rng* rng) {
  if (updates.empty()) return 0;
  DPSP_CHECK_MSG(size_ > 0, "cannot update an empty structure");
  std::vector<int> indices;
  indices.reserve(updates.size());
  for (const auto& [i, v] : updates) {
    DPSP_CHECK_MSG(i >= 0 && i < size_, "update index out of range");
    values_[static_cast<size_t>(i)] = v;  // duplicates: last value wins
    indices.push_back(i);
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());

  // Redraw in (level, block) order — the deterministic walk the planning
  // pass counts, so a fixed Rng stream replays to an identical structure.
  int redrawn = 0;
  for (int l = 0; l < num_levels(); ++l) {
    int width = 1 << l;
    for (int j : DirtyBlocksAtLevel(indices, l)) {
      int lo = j * width;
      int hi = std::min(size_, lo + width);
      double sum = 0.0;
      for (int i = lo; i < hi; ++i) sum += values_[static_cast<size_t>(i)];
      blocks_[BlockSlot(l, j)] = sum + rng->Laplace(noise_scale_);
      ++redrawn;
    }
  }
  return redrawn;
}

int NoisyDyadicRangeSums::DirtyBlockCount(std::span<const int> indices) const {
  if (indices.empty() || size_ == 0) return 0;
  std::vector<int> sorted(indices.begin(), indices.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  DPSP_CHECK_MSG(sorted.front() >= 0 && sorted.back() < size_,
                 "dirty index out of range");
  int count = 0;
  for (int l = 0; l < num_levels(); ++l) {
    count += static_cast<int>(DirtyBlocksAtLevel(sorted, l).size());
  }
  return count;
}

int NoisyDyadicRangeSums::num_blocks() const {
  return level_offset_.empty() ? 0 : static_cast<int>(level_offset_.back());
}

Result<double> NoisyDyadicRangeSums::RangeSum(int lo, int hi,
                                              int* segments) const {
  if (lo < 0 || hi > size_ || lo > hi) {
    return Status::InvalidArgument(
        StrFormat("range [%d, %d) out of bounds [0, %d)", lo, hi, size_));
  }
  return SumRange(lo, hi, segments);
}

double NoisyDyadicRangeSums::RangeSumUnchecked(int lo, int hi) const {
  return SumRange(lo, hi, nullptr);
}

double NoisyDyadicRangeSums::PrefixSumUnchecked(int hi) const {
  // Clearing the lowest set bit each round walks the blocks back to front:
  // the block of width 2^l ending at i starts at i - 2^l, which is
  // 2^l-aligned, so it is dyadic block (i >> l) - 1 of level l.
  double sum = 0.0;
  for (unsigned i = static_cast<unsigned>(hi); i != 0; i &= i - 1) {
    int l = std::countr_zero(i);
    sum += blocks_[BlockSlot(l, static_cast<int>((i >> l) - 1))];
  }
  return sum;
}

void NoisyDyadicRangeSums::PrefixSumsUnchecked(std::span<const int> his,
                                               double* out) const {
#if defined(DPSP_HAVE_AVX2)
  if (SimdKernelsEnabled() && his.size() >= 4) {
    simd::DyadicPrefixSumsAvx2(Flat(), his.data(),
                               static_cast<int>(his.size()), out);
    return;
  }
#endif
  for (size_t i = 0; i < his.size(); ++i) {
    out[i] = PrefixSumUnchecked(his[i]);
  }
}

double NoisyDyadicRangeSums::SumRange(int lo, int hi, int* segments) const {
  double sum = 0.0;
  int levels = num_levels();
  while (lo < hi) {
    int level = 0;
    while (level + 1 < levels && lo % (1 << (level + 1)) == 0 &&
           lo + (1 << (level + 1)) <= hi) {
      ++level;
    }
    sum += blocks_[BlockSlot(level, lo >> level)];
    if (segments != nullptr) ++(*segments);
    lo += 1 << level;
  }
  return sum;
}

}  // namespace dpsp
