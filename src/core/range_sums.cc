#include "core/range_sums.h"

#include <algorithm>
#include <bit>

#include "common/table.h"

namespace dpsp {

int NoisyDyadicRangeSums::LevelsForSize(int size) {
  DPSP_CHECK_MSG(size >= 0, "size must be non-negative");
  if (size == 0) return 0;
  int levels = 1;
  while ((1 << (levels - 1)) < size) ++levels;
  return levels;
}

NoisyDyadicRangeSums::NoisyDyadicRangeSums(const std::vector<double>& values,
                                           double noise_scale, Rng* rng)
    : size_(static_cast<int>(values.size())) {
  if (size_ == 0) return;
  DPSP_CHECK_MSG(noise_scale > 0.0, "noise scale must be positive");

  std::vector<double> prefix(values.size() + 1, 0.0);
  for (size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }

  int num_levels = LevelsForSize(size_);
  levels_.resize(static_cast<size_t>(num_levels));
  for (int l = 0; l < num_levels; ++l) {
    int width = 1 << l;
    int count = (size_ + width - 1) / width;
    auto& row = levels_[static_cast<size_t>(l)];
    row.resize(static_cast<size_t>(count));
    for (int j = 0; j < count; ++j) {
      int lo = j * width;
      int hi = std::min(size_, lo + width);
      row[static_cast<size_t>(j)] =
          prefix[static_cast<size_t>(hi)] - prefix[static_cast<size_t>(lo)] +
          rng->Laplace(noise_scale);
    }
  }
}

int NoisyDyadicRangeSums::num_blocks() const {
  int total = 0;
  for (const auto& row : levels_) total += static_cast<int>(row.size());
  return total;
}

Result<double> NoisyDyadicRangeSums::RangeSum(int lo, int hi,
                                              int* segments) const {
  if (lo < 0 || hi > size_ || lo > hi) {
    return Status::InvalidArgument(
        StrFormat("range [%d, %d) out of bounds [0, %d)", lo, hi, size_));
  }
  return SumRange(lo, hi, segments);
}

double NoisyDyadicRangeSums::RangeSumUnchecked(int lo, int hi) const {
  return SumRange(lo, hi, nullptr);
}

double NoisyDyadicRangeSums::PrefixSumUnchecked(int hi) const {
  // Clearing the lowest set bit each round walks the blocks back to front:
  // the block of width 2^l ending at i starts at i - 2^l, which is
  // 2^l-aligned, so it is dyadic block (i >> l) - 1 of level l.
  double sum = 0.0;
  for (unsigned i = static_cast<unsigned>(hi); i != 0; i &= i - 1) {
    int l = std::countr_zero(i);
    sum += levels_[static_cast<size_t>(l)][(i >> l) - 1];
  }
  return sum;
}

double NoisyDyadicRangeSums::SumRange(int lo, int hi, int* segments) const {
  double sum = 0.0;
  while (lo < hi) {
    int level = 0;
    while (level + 1 < static_cast<int>(levels_.size()) &&
           lo % (1 << (level + 1)) == 0 && lo + (1 << (level + 1)) <= hi) {
      ++level;
    }
    sum += levels_[static_cast<size_t>(level)][static_cast<size_t>(
        lo >> level)];
    if (segments != nullptr) ++(*segments);
    lo += 1 << level;
  }
  return sum;
}

}  // namespace dpsp
