// Private distances on trees (Section 4.1).
//
// Theorem 4.1 / Algorithm 1 — single-source distances on a rooted tree:
// recursively split the tree at the balanced separator v* (Figure 1),
// release the noisy distance root->v* and the noisy weights of the edges
// (v*, child), and recurse into the parts. Each edge participates in at
// most one released value per recursion depth and the depth is at most
// ceil(log2 V) + 1, so the whole released vector has sensitivity
// <= ceil(log2 V) + 1 and a single Laplace mechanism invocation with scale
// (ceil(log2 V)+1)/eps makes the algorithm eps-DP. Every root-to-vertex
// distance is a sum of at most 2 log2 V released values, giving per-vertex
// error O(log^1.5 V log(1/gamma))/eps (Lemma 3.1).
//
// Theorem 4.2 — all-pairs distances: root anywhere, release single-source
// estimates d~(v0, .), and answer d(x, y) by the tree identity
//     d(x,y) = d(v0,x) + d(v0,y) - 2 d(v0, lca(x,y)).

#ifndef DPSP_CORE_TREE_DISTANCE_H_
#define DPSP_CORE_TREE_DISTANCE_H_

#include <memory>
#include <vector>

#include "common/aligned.h"
#include "common/random.h"
#include "core/distance_oracle.h"
#include "dp/privacy.h"
#include "dp/release_context.h"
#include "graph/tree.h"

namespace dpsp {

/// The released single-source estimates plus release metadata.
struct TreeSingleSourceRelease {
  VertexId root = 0;
  /// estimate[v] ~ dw(root, v); estimate[root] == 0 exactly. Cache-line
  /// aligned: this is the flat buffer the batch kernels gather from.
  AlignedVector<double> estimates;
  /// Laplace scale used for each released value.
  double noise_scale = 0.0;
  /// Number of Laplace draws (<= 2V).
  int num_noisy_values = 0;
  /// The recursion-depth bound used as the sensitivity (ceil(log2 V) + 1).
  int sensitivity = 0;
};

/// Theorem 4.1: eps-DP single-source distance estimates on a tree.
/// `graph` must be an undirected tree; weights non-negative.
Result<TreeSingleSourceRelease> ReleaseTreeSingleSourceDistances(
    const Graph& graph, const EdgeWeights& w, VertexId root,
    const PrivacyParams& params, Rng* rng);

/// High-probability per-vertex error bound of Theorem 4.1 with explicit
/// constants as proved (Lemma 3.1 over at most 2 log2 V summands of scale
/// (ceil(log2 V)+1) rho / eps):
///   4 * scale * sqrt(2 log2 V * ln(2/gamma)).
double TreeSingleSourceErrorBound(int num_vertices,
                                  const PrivacyParams& params, double gamma);

/// Theorem 4.2: eps-DP all-pairs tree distance oracle (LCA combination of
/// a single-source release).
class TreeAllPairsOracle final : public DistanceOracle {
 public:
  /// Registry name of this mechanism.
  static constexpr const char* kName = "tree-recursive";

  /// Builds the oracle through the release pipeline: draws one release of
  /// ctx.params() from the accountant and records telemetry. `root` = -1
  /// picks vertex 0.
  static Result<std::unique_ptr<TreeAllPairsOracle>> Build(
      const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx,
      VertexId root = -1);

  /// Legacy entry point without budget accounting.
  static Result<std::unique_ptr<TreeAllPairsOracle>> Build(
      const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
      Rng* rng, VertexId root = -1);

  // Not copyable/movable: lca_ holds an interior pointer to tree_.
  TreeAllPairsOracle(const TreeAllPairsOracle&) = delete;
  TreeAllPairsOracle& operator=(const TreeAllPairsOracle&) = delete;

  Result<double> Distance(VertexId u, VertexId v) const override;
  /// Fused serial kernel: three flat-array reads around an O(1) Euler-tour
  /// LCA per pair, bounds checks folded into the loop. DistanceBatch and
  /// the sharded executor fan this out.
  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override;
  std::string Name() const override { return kName; }
  /// The flat buffers the batch kernel streams: the released estimates
  /// plus the packed LCA structure.
  void AppendReleasedBuffers(std::vector<ReleasedBuffer>* out) const override;

  /// Persists the released single-source estimates + release metadata.
  /// The tree orientation and LCA structure are deterministic
  /// post-processing of the public topology and are rebuilt at restore.
  Status SaveReleasedState(std::vector<ReleasedSection>* out) const override;

  /// OracleLoader counterpart of SaveReleasedState: re-orients the public
  /// tree at the persisted root and installs the released estimates.
  /// Bit-identical queries, no budget consumed.
  static Result<std::unique_ptr<DistanceOracle>> FromReleasedState(
      const Graph& graph, const EdgeWeights& w,
      std::span<const ReleasedSectionView> sections);

  const TreeSingleSourceRelease& release() const { return release_; }

 private:
  TreeAllPairsOracle(RootedTree tree, TreeSingleSourceRelease release);

  RootedTree tree_;
  EulerTourLca lca_;
  TreeSingleSourceRelease release_;
};

/// High-probability per-pair error bound of Theorem 4.2: four times the
/// single-source bound (three estimates combine, one doubled).
double TreeAllPairsErrorBound(int num_vertices, const PrivacyParams& params,
                              double gamma);

}  // namespace dpsp

#endif  // DPSP_CORE_TREE_DISTANCE_H_
