#include "core/reconstruction.h"

#include <cmath>

#include "common/table.h"
#include "core/private_matching.h"
#include "core/private_mst.h"
#include "core/private_shortest_path.h"
#include "dp/randomized_response.h"

namespace dpsp {

double ReconstructionLowerBound(int n, double epsilon, double delta) {
  DPSP_CHECK_MSG(n >= 1 && epsilon >= 0.0 && delta >= 0.0,
                 "invalid lower bound arguments");
  double numer = 1.0 - (1.0 + std::exp(epsilon)) * delta;
  if (numer < 0.0) numer = 0.0;
  return static_cast<double>(n) * numer / (1.0 + std::exp(2.0 * epsilon));
}

Result<std::vector<int>> DecodePathBits(
    const BitGadgetGraph& gadget, const std::vector<EdgeId>& path_edges) {
  if (static_cast<int>(path_edges.size()) != gadget.n) {
    return Status::InvalidArgument(
        StrFormat("path has %zu edges, expected %d", path_edges.size(),
                  gadget.n));
  }
  std::vector<int> bits(static_cast<size_t>(gadget.n), 1);
  std::vector<bool> position_seen(static_cast<size_t>(gadget.n), false);
  for (EdgeId e : path_edges) {
    if (e < 0 || e >= gadget.graph.num_edges()) {
      return Status::InvalidArgument("path edge id out of range");
    }
    int position = e / 2;
    int bit = e % 2;
    if (position_seen[static_cast<size_t>(position)]) {
      return Status::InvalidArgument("path uses a gadget position twice");
    }
    position_seen[static_cast<size_t>(position)] = true;
    bits[static_cast<size_t>(position)] = bit;
  }
  return bits;
}

Result<std::vector<int>> DecodeTreeBits(const BitGadgetGraph& gadget,
                                        const std::vector<EdgeId>& tree_edges) {
  if (static_cast<int>(tree_edges.size()) != gadget.n) {
    return Status::InvalidArgument(
        StrFormat("tree has %zu edges, expected %d", tree_edges.size(),
                  gadget.n));
  }
  std::vector<int> bits(static_cast<size_t>(gadget.n), 1);
  std::vector<bool> position_seen(static_cast<size_t>(gadget.n), false);
  for (EdgeId e : tree_edges) {
    if (e < 0 || e >= gadget.graph.num_edges()) {
      return Status::InvalidArgument("tree edge id out of range");
    }
    int position = e / 2;
    int bit = e % 2;
    if (position_seen[static_cast<size_t>(position)]) {
      return Status::InvalidArgument("tree uses both parallel edges");
    }
    position_seen[static_cast<size_t>(position)] = true;
    bits[static_cast<size_t>(position)] = bit;
  }
  return bits;
}

Result<std::vector<int>> DecodeMatchingBits(
    const HourglassGadgetGraph& gadget, const std::vector<EdgeId>& matching) {
  if (static_cast<int>(matching.size()) != 2 * gadget.n) {
    return Status::InvalidArgument(
        StrFormat("matching has %zu edges, expected %d", matching.size(),
                  2 * gadget.n));
  }
  // y_c = 0 iff edge (0,1,c)-(1,0,c) — i.e. EdgeFor(c, 1, 0) — is matched.
  std::vector<int> bits(static_cast<size_t>(gadget.n), 1);
  for (EdgeId e : matching) {
    if (e < 0 || e >= gadget.graph.num_edges()) {
      return Status::InvalidArgument("matching edge id out of range");
    }
    int c = e / 4;
    int b_left = (e % 4) / 2;
    int b_right = e % 2;
    if (b_left == 1 && b_right == 0) bits[static_cast<size_t>(c)] = 0;
  }
  return bits;
}

namespace {

Result<AttackOutcome> FinishOutcome(const std::vector<int>& x,
                                    const std::vector<int>& y,
                                    double object_error) {
  DPSP_ASSIGN_OR_RETURN(int hamming, HammingDistance(x, y));
  AttackOutcome outcome;
  outcome.hamming_distance = hamming;
  outcome.object_error = object_error;
  return outcome;
}

}  // namespace

Result<AttackOutcome> AttackShortestPath(const BitGadgetGraph& gadget,
                                         const std::vector<int>& x,
                                         const PrivacyParams& params,
                                         double gamma, Rng* rng) {
  EdgeWeights wx = gadget.EncodeBits(x);
  PrivateShortestPathOptions options;
  options.params = params;
  options.gamma = gamma;
  DPSP_ASSIGN_OR_RETURN(
      PrivateShortestPaths release,
      PrivateShortestPaths::Release(gadget.graph, wx, options, rng));
  DPSP_ASSIGN_OR_RETURN(std::vector<EdgeId> path,
                        release.Path(0, gadget.n));
  DPSP_ASSIGN_OR_RETURN(std::vector<int> y, DecodePathBits(gadget, path));
  // Shortest path under w_x has weight 0, so the released path's weight is
  // exactly its approximation error.
  return FinishOutcome(x, y, TotalWeight(wx, path));
}

Result<AttackOutcome> AttackMst(const BitGadgetGraph& gadget,
                                const std::vector<int>& x,
                                const PrivacyParams& params, Rng* rng) {
  EdgeWeights wx = gadget.EncodeBits(x);
  DPSP_ASSIGN_OR_RETURN(PrivateMstResult result,
                        PrivateMst(gadget.graph, wx, params, rng));
  DPSP_ASSIGN_OR_RETURN(std::vector<int> y,
                        DecodeTreeBits(gadget, result.tree_edges));
  return FinishOutcome(x, y, TotalWeight(wx, result.tree_edges));
}

Result<AttackOutcome> AttackMatching(const HourglassGadgetGraph& gadget,
                                     const std::vector<int>& x,
                                     const PrivacyParams& params, Rng* rng) {
  EdgeWeights wx = gadget.EncodeBits(x);
  DPSP_ASSIGN_OR_RETURN(PrivateMatchingResult result,
                        PrivateMatching(gadget.graph, wx, params, rng));
  DPSP_ASSIGN_OR_RETURN(std::vector<int> y,
                        DecodeMatchingBits(gadget, result.matching.edges));
  return FinishOutcome(x, y, TotalWeight(wx, result.matching.edges));
}

Result<AttackReport> RunReconstructionExperiment(AttackKind kind, int n,
                                                 const PrivacyParams& params,
                                                 int trials, Rng* rng) {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  if (trials < 1) return Status::InvalidArgument("trials must be >= 1");
  DPSP_RETURN_IF_ERROR(params.Validate());

  AttackReport report;
  report.n = n;
  report.trials = trials;
  report.alpha = ReconstructionLowerBound(n, params.epsilon, params.delta);
  report.randomized_response_expectation =
      static_cast<double>(n) *
      RandomizedResponseFlipProbability(params.epsilon);

  Result<BitGadgetGraph> bit_gadget = Status::Internal("unused");
  Result<HourglassGadgetGraph> hourglass = Status::Internal("unused");
  switch (kind) {
    case AttackKind::kShortestPath:
      bit_gadget = MakeShortestPathGadget(n);
      if (!bit_gadget.ok()) return bit_gadget.status();
      break;
    case AttackKind::kMst:
      bit_gadget = MakeMstGadget(n);
      if (!bit_gadget.ok()) return bit_gadget.status();
      break;
    case AttackKind::kMatching:
      hourglass = MakeMatchingGadget(n);
      if (!hourglass.ok()) return hourglass.status();
      break;
  }

  double total_hamming = 0.0;
  double total_error = 0.0;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> x(static_cast<size_t>(n));
    for (int& b : x) b = rng->Bernoulli(0.5) ? 1 : 0;
    Result<AttackOutcome> outcome = Status::Internal("unset");
    switch (kind) {
      case AttackKind::kShortestPath:
        outcome = AttackShortestPath(*bit_gadget, x, params, 0.05, rng);
        break;
      case AttackKind::kMst:
        outcome = AttackMst(*bit_gadget, x, params, rng);
        break;
      case AttackKind::kMatching:
        outcome = AttackMatching(*hourglass, x, params, rng);
        break;
    }
    if (!outcome.ok()) return outcome.status();
    total_hamming += outcome->hamming_distance;
    total_error += outcome->object_error;
  }
  report.mean_hamming = total_hamming / trials;
  report.mean_object_error = total_error / trials;
  return report;
}

}  // namespace dpsp
