#include "core/path_graph.h"

#include <algorithm>
#include <cmath>

#include "common/table.h"
#include "core/released_state.h"
#include "dp/laplace_mechanism.h"

namespace dpsp {

namespace {

Status ValidatePathShape(const Graph& graph) {
  if (graph.directed()) {
    return Status::InvalidArgument("path oracle requires undirected graph");
  }
  if (graph.num_edges() != graph.num_vertices() - 1) {
    return Status::InvalidArgument("not a path graph: E != V - 1");
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const EdgeEndpoints& ep = graph.edge(e);
    if (std::min(ep.u, ep.v) != e || std::max(ep.u, ep.v) != e + 1) {
      return Status::InvalidArgument(
          "not in canonical path layout (edge i must join i and i+1)");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<PathGraphOracle>> PathGraphOracle::Build(
    const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
    Rng* rng, int branching) {
  DPSP_RETURN_IF_ERROR(params.Validate());
  DPSP_RETURN_IF_ERROR(ValidatePathShape(graph));
  DPSP_RETURN_IF_ERROR(graph.ValidateNonNegativeWeights(w));
  if (branching < 2) {
    return Status::InvalidArgument("branching factor must be >= 2");
  }

  auto oracle = std::unique_ptr<PathGraphOracle>(new PathGraphOracle());
  oracle->branching_ = branching;
  oracle->num_vertices_ = graph.num_vertices();
  oracle->num_edges_ = graph.num_edges();
  int m = oracle->num_edges_;

  if (m == 0) {
    oracle->noise_scale_ = 0.0;
    return oracle;
  }

  // Levels 0 .. L where branching^L >= m.
  oracle->widths_.push_back(1);
  while (oracle->widths_.back() < m) {
    oracle->widths_.push_back(oracle->widths_.back() * branching);
  }
  int num_levels = static_cast<int>(oracle->widths_.size());

  // Every edge lies in exactly one block per level, so the joint release
  // has sensitivity num_levels.
  DPSP_ASSIGN_OR_RETURN(
      double scale,
      LaplaceScale(static_cast<double>(num_levels), params));
  oracle->noise_scale_ = scale;

  // Exact prefix sums (private intermediate).
  std::vector<double> prefix(static_cast<size_t>(m + 1), 0.0);
  for (int i = 0; i < m; ++i) {
    prefix[static_cast<size_t>(i + 1)] =
        prefix[static_cast<size_t>(i)] + w[static_cast<size_t>(i)];
  }

  oracle->levels_.resize(static_cast<size_t>(num_levels));
  for (int l = 0; l < num_levels; ++l) {
    int64_t width = oracle->widths_[static_cast<size_t>(l)];
    int64_t count = (m + width - 1) / width;
    auto& row = oracle->levels_[static_cast<size_t>(l)];
    row.resize(static_cast<size_t>(count));
    for (int64_t j = 0; j < count; ++j) {
      int64_t lo = j * width;
      int64_t hi = std::min<int64_t>(m, lo + width);
      double exact = prefix[static_cast<size_t>(hi)] -
                     prefix[static_cast<size_t>(lo)];
      row[static_cast<size_t>(j)] = exact + rng->Laplace(scale);
    }
  }
  return oracle;
}

Result<std::unique_ptr<PathGraphOracle>> PathGraphOracle::Build(
    const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx,
    int branching) {
  return ctx.MeteredBuild(
      kName,
      [&] { return Build(graph, w, ctx.params(), ctx.rng(), branching); },
      [](const PathGraphOracle& oracle, ReleaseTelemetry& t) {
        t.sensitivity = oracle.num_levels();
        t.noise_scale = oracle.noise_scale();
        t.noise_draws = oracle.num_noisy_values();
      });
}

Status PathGraphOracle::SaveReleasedState(
    std::vector<ReleasedSection>* out) const {
  std::vector<double> flat;
  std::vector<double> counts;
  counts.reserve(levels_.size());
  for (const std::vector<double>& row : levels_) {
    counts.push_back(static_cast<double>(row.size()));
    flat.insert(flat.end(), row.begin(), row.end());
  }
  out->push_back(released_state::Pack<double>(
      "levels", std::span<const double>(flat)));
  out->push_back(released_state::Pack<double>(
      "level-counts", std::span<const double>(counts)));
  out->push_back(released_state::PackScalars(
      "meta", {static_cast<double>(branching_),
               static_cast<double>(num_vertices_),
               static_cast<double>(num_edges_), noise_scale_}));
  return Status::Ok();
}

Result<std::unique_ptr<DistanceOracle>> PathGraphOracle::FromReleasedState(
    const Graph& graph, const EdgeWeights& w,
    std::span<const ReleasedSectionView> sections) {
  (void)w;
  DPSP_RETURN_IF_ERROR(ValidatePathShape(graph));
  DPSP_ASSIGN_OR_RETURN(std::span<const double> meta,
                        released_state::Require<double>(sections, "meta", 4));
  int branching;
  DPSP_ASSIGN_OR_RETURN(branching,
                        released_state::AsInt(meta[0], "branching factor"));
  int num_vertices;
  DPSP_ASSIGN_OR_RETURN(num_vertices,
                        released_state::AsInt(meta[1], "vertex count"));
  int num_edges;
  DPSP_ASSIGN_OR_RETURN(num_edges,
                        released_state::AsInt(meta[2], "edge count"));
  if (branching < 2) {
    return Status::InvalidArgument("snapshot branching factor must be >= 2");
  }
  if (num_vertices != graph.num_vertices() ||
      num_edges != graph.num_edges()) {
    return Status::InvalidArgument(StrFormat(
        "snapshot path has %d vertices / %d edges, the graph has %d / %d",
        num_vertices, num_edges, graph.num_vertices(), graph.num_edges()));
  }

  auto oracle = std::unique_ptr<PathGraphOracle>(new PathGraphOracle());
  oracle->branching_ = branching;
  oracle->num_vertices_ = num_vertices;
  oracle->num_edges_ = num_edges;
  oracle->noise_scale_ = meta[3];
  const int m = num_edges;
  if (m == 0) return std::unique_ptr<DistanceOracle>(std::move(oracle));

  // Rebuild the deterministic width table, then slice the persisted rows
  // against the block counts it implies.
  oracle->widths_.push_back(1);
  while (oracle->widths_.back() < m) {
    oracle->widths_.push_back(oracle->widths_.back() * branching);
  }
  const size_t num_levels = oracle->widths_.size();
  DPSP_ASSIGN_OR_RETURN(
      std::span<const double> counts,
      released_state::Require<double>(sections, "level-counts",
                                      static_cast<long>(num_levels)));
  DPSP_ASSIGN_OR_RETURN(
      std::span<const double> flat,
      released_state::Require<double>(sections, "levels"));
  size_t offset = 0;
  oracle->levels_.resize(num_levels);
  for (size_t l = 0; l < num_levels; ++l) {
    int64_t width = oracle->widths_[l];
    size_t expected = static_cast<size_t>((m + width - 1) / width);
    int count;
    DPSP_ASSIGN_OR_RETURN(count,
                          released_state::AsInt(counts[l], "level count"));
    if (count < 0 || static_cast<size_t>(count) != expected) {
      return Status::InvalidArgument(StrFormat(
          "snapshot level %zu has %d blocks, the path implies %zu", l, count,
          expected));
    }
    if (offset + expected > flat.size()) {
      return Status::InvalidArgument(
          "snapshot levels section is shorter than its counts imply");
    }
    oracle->levels_[l].assign(flat.begin() + static_cast<long>(offset),
                              flat.begin() + static_cast<long>(offset) +
                                  static_cast<long>(expected));
    offset += expected;
  }
  if (offset != flat.size()) {
    return Status::InvalidArgument(
        "snapshot levels section is longer than its counts imply");
  }
  return std::unique_ptr<DistanceOracle>(std::move(oracle));
}

int PathGraphOracle::num_noisy_values() const {
  int total = 0;
  for (const auto& row : levels_) total += static_cast<int>(row.size());
  return total;
}

double PathGraphOracle::QueryRange(int lo, int hi, int* segments) const {
  // Greedy aligned decomposition: repeatedly take the largest level block
  // that starts at `lo` and fits in [lo, hi). At most 2(branching-1) blocks
  // per level are consumed, i.e. <= 2(b-1) log_b V noisy values per query.
  double sum = 0.0;
  while (lo < hi) {
    int level = 0;
    while (level + 1 < static_cast<int>(levels_.size()) &&
           lo % widths_[static_cast<size_t>(level + 1)] == 0 &&
           lo + widths_[static_cast<size_t>(level + 1)] <=
               static_cast<int64_t>(hi)) {
      ++level;
    }
    int64_t width = widths_[static_cast<size_t>(level)];
    sum += levels_[static_cast<size_t>(level)]
                  [static_cast<size_t>(lo / width)];
    if (segments != nullptr) ++(*segments);
    lo += static_cast<int>(width);
  }
  return sum;
}

Result<double> PathGraphOracle::Distance(VertexId u, VertexId v) const {
  if (u < 0 || u >= num_vertices_ || v < 0 || v >= num_vertices_) {
    return Status::InvalidArgument("vertex out of range");
  }
  int lo = std::min(u, v);
  int hi = std::max(u, v);
  return QueryRange(lo, hi, nullptr);
}

Status PathGraphOracle::DistanceInto(std::span<const VertexPair> pairs,
                                     double* out) const {
  const unsigned n = static_cast<unsigned>(num_vertices_);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [u, v] = pairs[i];
    if (static_cast<unsigned>(u) >= n || static_cast<unsigned>(v) >= n) {
      return Status::InvalidArgument("vertex out of range");
    }
    out[i] = QueryRange(std::min(u, v), std::max(u, v), nullptr);
  }
  return Status::Ok();
}

Result<int> PathGraphOracle::QuerySegmentCount(VertexId u, VertexId v) const {
  if (u < 0 || u >= num_vertices_ || v < 0 || v >= num_vertices_) {
    return Status::InvalidArgument("vertex out of range");
  }
  int segments = 0;
  QueryRange(std::min(u, v), std::max(u, v), &segments);
  return segments;
}

double PathGraphErrorBound(int num_vertices, const PrivacyParams& params,
                           double gamma) {
  DPSP_CHECK_MSG(num_vertices >= 1 && gamma > 0.0 && gamma < 1.0,
                 "invalid error bound arguments");
  int m = num_vertices - 1;
  if (m == 0) return 0.0;
  int num_levels = 1;
  while ((1 << (num_levels - 1)) < m) ++num_levels;
  double scale = static_cast<double>(num_levels) * params.neighbor_l1_bound /
                 params.epsilon;
  return LaplaceSumBound(scale, 2 * num_levels, gamma).value();
}

}  // namespace dpsp
