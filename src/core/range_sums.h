// Noisy dyadic range sums: the releasable data structure underlying the
// Appendix-A path hierarchy, factored out so other mechanisms (the
// heavy-light tree oracle) can compose it.
//
// Given a value vector x[0..m), the structure stores, for every dyadic
// block [j 2^l, min(m, (j+1) 2^l)), the block sum plus one Laplace draw of
// a caller-chosen scale. Each index lies in exactly one block per level,
// so releasing the whole structure is a single Laplace-mechanism
// invocation with l1 sensitivity (#levels) * (per-index sensitivity of x).
// Any range sum over [lo, hi) is answered from at most 2 #levels noisy
// blocks.
//
// The structure is incrementally releasable: a point update x[i] = v
// invalidates exactly one block per level (the #levels blocks containing
// i), and ApplyPointUpdates redraws fresh noise for only those blocks.
// Because each dirty index re-releases at most #levels blocks — the same
// stack the sensitivity argument counts — an update epoch is itself one
// Laplace invocation over the dirty blocks, at the same per-block cost as
// the original release. The raw value vector is retained internally to
// recompute dirty block sums; it is PRIVATE state of the holder, never
// part of the released object.

#ifndef DPSP_CORE_RANGE_SUMS_H_
#define DPSP_CORE_RANGE_SUMS_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/random.h"
#include "common/status.h"

namespace dpsp {

/// Noisy dyadic block sums over a fixed value vector.
class NoisyDyadicRangeSums {
 public:
  /// Builds the structure, adding Lap(noise_scale) to every block sum.
  /// An empty value vector is allowed (all queries return 0).
  NoisyDyadicRangeSums(const std::vector<double>& values, double noise_scale,
                       Rng* rng);

  /// Number of levels (0 for an empty vector). The release's sensitivity
  /// multiplier.
  int num_levels() const {
    return level_offset_.empty()
               ? 0
               : static_cast<int>(level_offset_.size()) - 1;
  }

  /// Number of stored (noisy) block sums.
  int num_blocks() const;

  /// Noisy sum over indices [lo, hi). Requires 0 <= lo <= hi <= size.
  /// `segments`, if non-null, receives the number of blocks summed.
  Result<double> RangeSum(int lo, int hi, int* segments = nullptr) const;

  /// RangeSum without validation or segment counting; the caller must
  /// guarantee 0 <= lo <= hi <= size. The batched-query hot path.
  double RangeSumUnchecked(int lo, int hi) const;

  /// Specialized RangeSumUnchecked(0, hi): a prefix [0, hi) decomposes
  /// into exactly one dyadic block per set bit of hi (the popcount(hi)
  /// blocks a Fenwick walk would visit), found by std::countr_zero instead
  /// of the level-probing loop the general decomposition pays per block.
  /// The HLD oracle's full-chain ascents are all prefix queries, so this
  /// cuts the chain-ascent constant in the batch hot path. Caller must
  /// guarantee 0 <= hi <= size.
  double PrefixSumUnchecked(int hi) const;

  /// Batched PrefixSumUnchecked: out[i] = noisy sum over [0, his[i]) for
  /// every i. Dispatches to the AVX2 lowest-set-bit walk when available;
  /// the vector path adds blocks in the same per-query order as the scalar
  /// walk, so results are bit-identical either way. Callers must guarantee
  /// 0 <= his[i] <= size.
  void PrefixSumsUnchecked(std::span<const int> his, double* out) const;

  /// Number of stored values.
  int size() const { return size_; }

  /// Raw pointers into the flat released structure, for the batch SIMD
  /// kernels: level l's noisy block sums occupy
  /// blocks[level_offset[l] .. level_offset[l + 1]).
  struct FlatView {
    const double* blocks;
    const uint32_t* level_offset;
    int num_levels;
  };
  FlatView Flat() const {
    return {blocks_.data(), level_offset_.data(), num_levels()};
  }

  /// Point updates (index, new value): sets each value, then recomputes
  /// and redraws Lap(noise_scale) for every dyadic block containing a
  /// dirty index — one block per level per distinct index, deduplicated,
  /// redrawn in (level, block) order so a fixed Rng stream gives a
  /// deterministic result. Blocks containing no dirty index keep their
  /// original noisy sums bit-for-bit. Duplicate indices: the last value
  /// wins. Indices must lie in [0, size()). Returns the number of blocks
  /// redrawn (== DirtyBlockCount of the distinct indices).
  int ApplyPointUpdates(std::span<const std::pair<int, double>> updates,
                        Rng* rng);

  /// How many blocks ApplyPointUpdates would redraw for these indices —
  /// the per-block privacy planning pass, with no mutation. Duplicates
  /// are deduplicated; indices must lie in [0, size()).
  int DirtyBlockCount(std::span<const int> indices) const;

  /// Overwrites the released noisy block sums with a persisted image (a
  /// snapshot of another same-shape structure's Flat() blocks). The
  /// private value vector is untouched: a later update epoch recomputes
  /// dirty block sums from the holder's current values, which is the
  /// documented warm-restart semantic. Fails unless the image holds
  /// exactly num_blocks() values.
  Status RestoreBlocks(std::span<const double> blocks) {
    if (blocks.size() != blocks_.size()) {
      return Status::InvalidArgument(
          "dyadic block image does not match the structure's block count");
    }
    std::copy(blocks.begin(), blocks.end(), blocks_.begin());
    return Status::Ok();
  }

  /// How many dyadic levels a vector of `size` values needs.
  static int LevelsForSize(int size);

 private:
  // The shared greedy dyadic decomposition behind both query paths.
  double SumRange(int lo, int hi, int* segments) const;

  // blocks_ slot of dyadic block j at level l.
  size_t BlockSlot(int level, int j) const {
    return static_cast<size_t>(level_offset_[static_cast<size_t>(level)]) +
           static_cast<size_t>(j);
  }

  int size_ = 0;
  double noise_scale_ = 0.0;
  // The private value vector, retained to recompute dirty block sums on
  // updates. Not part of the released structure.
  std::vector<double> values_;
  // The released structure, flattened level-major into one cache-aligned
  // buffer: the noisy sum of block j at level l — dyadic range
  // [j 2^l, min(size, (j+1) 2^l)) — lives at BlockSlot(l, j).
  AlignedVector<double> blocks_;
  // num_levels + 1 offsets into blocks_ (empty for an empty vector).
  AlignedVector<uint32_t> level_offset_;
};

}  // namespace dpsp

#endif  // DPSP_CORE_RANGE_SUMS_H_
