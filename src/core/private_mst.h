// Private almost-minimum spanning trees (Appendix B.1, Theorem B.3).
//
// Add Lap(1/eps) noise to every edge weight (one Laplace mechanism
// invocation, sensitivity 1) and release the exact MST of the noisy graph;
// the tree structure is post-processing, hence eps-DP. Conditioned on all
// |noise| <= (1/eps) log(E/gamma), the released tree weighs at most
// 2(V-1)/eps * log(E/gamma) more than the true MST. Edge weights may be
// negative (per the appendix).

#ifndef DPSP_CORE_PRIVATE_MST_H_
#define DPSP_CORE_PRIVATE_MST_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/distance_oracle.h"
#include "dp/privacy.h"
#include "dp/release_context.h"
#include "graph/graph.h"
#include "graph/tree.h"

namespace dpsp {

/// The released tree plus the noisy weights it was computed from.
struct PrivateMstResult {
  std::vector<EdgeId> tree_edges;
  /// The noisy weight function (itself eps-DP and publishable).
  EdgeWeights noisy_weights;
  double noise_scale = 0.0;
};

/// Theorem B.3 mechanism. Requires a connected undirected graph; weights
/// may be negative.
Result<PrivateMstResult> PrivateMst(const Graph& graph, const EdgeWeights& w,
                                    const PrivacyParams& params, Rng* rng);

/// The Theorem B.3 high-probability error bound
/// 2 (V-1)/eps * log(E/gamma) * rho.
double PrivateMstErrorBound(int num_vertices, int num_edges,
                            const PrivacyParams& params, double gamma);

/// The Theorem B.1 lower bound on expected MST error for any (eps, delta)-
/// DP algorithm on the Figure-3 gadget:
/// (V-1) * (1 - (1+e^eps) delta) / (1 + e^{2 eps}).
double MstLowerBound(int num_vertices, double epsilon, double delta);

/// Distance oracle over the Theorem B.3 release: answers d(u, v) as the
/// path length between u and v *in the released spanning tree* under the
/// released noisy weights — pure post-processing of the PrivateMstResult,
/// so queries are free. This is the "routing backbone" view of the MST
/// release: one eps-DP release yields both the tree structure and an
/// all-pairs distance table over it. Registered as "private-mst".
class MstDistanceOracle final : public DistanceOracle {
 public:
  /// Registry name of this mechanism.
  static constexpr const char* kName = "private-mst";

  /// Builds through the release pipeline: draws one release of
  /// ctx.params() from the accountant and records telemetry.
  static Result<std::unique_ptr<MstDistanceOracle>> Build(
      const Graph& graph, const EdgeWeights& w, ReleaseContext& ctx);

  /// Legacy entry point without budget accounting.
  static Result<std::unique_ptr<MstDistanceOracle>> Build(
      const Graph& graph, const EdgeWeights& w, const PrivacyParams& params,
      Rng* rng);

  // Not copyable/movable: lca_ holds an interior pointer to tree_.
  MstDistanceOracle(const MstDistanceOracle&) = delete;
  MstDistanceOracle& operator=(const MstDistanceOracle&) = delete;

  /// Path length u -> v in the released tree (noisy weights; may be
  /// negative since the release permits negative noisy edges). O(1) via
  /// the shared Euler-tour LCA.
  Result<double> Distance(VertexId u, VertexId v) const override;
  /// Fused serial kernel: three root-distance reads around an O(1) LCA.
  Status DistanceInto(std::span<const VertexPair> pairs,
                      double* out) const override;
  std::string Name() const override { return kName; }

  /// The underlying release (tree edges + noisy weights).
  const PrivateMstResult& released() const { return released_; }

  /// Persists the release verbatim: the tree edge ids, the full noisy
  /// weight function (itself eps-DP and publishable), and the noise
  /// scale. The rooted tree and root distances are deterministic
  /// post-processing, rebuilt at restore.
  Status SaveReleasedState(std::vector<ReleasedSection>* out) const override;

  /// OracleLoader counterpart: revalidates the released tree against the
  /// public graph and replays the deterministic post-processing.
  static Result<std::unique_ptr<DistanceOracle>> FromReleasedState(
      const Graph& graph, const EdgeWeights& w,
      std::span<const ReleasedSectionView> sections);

 private:
  MstDistanceOracle(PrivateMstResult released, RootedTree tree,
                    std::vector<double> root_dist);

  PrivateMstResult released_;
  RootedTree tree_;
  EulerTourLca lca_;
  // Root-to-vertex path sums in the released tree under noisy weights.
  std::vector<double> root_dist_;
};

/// The MST *cost* (the query studied by [NRS07] under a different privacy
/// model, discussed in §1.3). In the private edge-weight model the cost
/// c(w) = min_T sum_{e in T} w(e) is a sensitivity-1 scalar: a unit l1
/// change in w moves every tree's weight by at most 1, hence the min by at
/// most 1. One Laplace draw suffices — error O(1/eps), with no Omega(V)
/// barrier, in contrast to releasing the tree itself (Theorem B.1). The
/// contrast is exercised in bench_mst.
Result<double> PrivateMstCost(const Graph& graph, const EdgeWeights& w,
                              const PrivacyParams& params, Rng* rng);

}  // namespace dpsp

#endif  // DPSP_CORE_PRIVATE_MST_H_
