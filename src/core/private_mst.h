// Private almost-minimum spanning trees (Appendix B.1, Theorem B.3).
//
// Add Lap(1/eps) noise to every edge weight (one Laplace mechanism
// invocation, sensitivity 1) and release the exact MST of the noisy graph;
// the tree structure is post-processing, hence eps-DP. Conditioned on all
// |noise| <= (1/eps) log(E/gamma), the released tree weighs at most
// 2(V-1)/eps * log(E/gamma) more than the true MST. Edge weights may be
// negative (per the appendix).

#ifndef DPSP_CORE_PRIVATE_MST_H_
#define DPSP_CORE_PRIVATE_MST_H_

#include <vector>

#include "common/random.h"
#include "dp/privacy.h"
#include "graph/graph.h"

namespace dpsp {

/// The released tree plus the noisy weights it was computed from.
struct PrivateMstResult {
  std::vector<EdgeId> tree_edges;
  /// The noisy weight function (itself eps-DP and publishable).
  EdgeWeights noisy_weights;
  double noise_scale = 0.0;
};

/// Theorem B.3 mechanism. Requires a connected undirected graph; weights
/// may be negative.
Result<PrivateMstResult> PrivateMst(const Graph& graph, const EdgeWeights& w,
                                    const PrivacyParams& params, Rng* rng);

/// The Theorem B.3 high-probability error bound
/// 2 (V-1)/eps * log(E/gamma) * rho.
double PrivateMstErrorBound(int num_vertices, int num_edges,
                            const PrivacyParams& params, double gamma);

/// The Theorem B.1 lower bound on expected MST error for any (eps, delta)-
/// DP algorithm on the Figure-3 gadget:
/// (V-1) * (1 - (1+e^eps) delta) / (1 + e^{2 eps}).
double MstLowerBound(int num_vertices, double epsilon, double delta);

/// The MST *cost* (the query studied by [NRS07] under a different privacy
/// model, discussed in §1.3). In the private edge-weight model the cost
/// c(w) = min_T sum_{e in T} w(e) is a sensitivity-1 scalar: a unit l1
/// change in w moves every tree's weight by at most 1, hence the min by at
/// most 1. One Laplace draw suffices — error O(1/eps), with no Omega(V)
/// barrier, in contrast to releasing the tree itself (Theorem B.1). The
/// contrast is exercised in bench_mst.
Result<double> PrivateMstCost(const Graph& graph, const EdgeWeights& w,
                              const PrivacyParams& params, Rng* rng);

}  // namespace dpsp

#endif  // DPSP_CORE_PRIVATE_MST_H_
