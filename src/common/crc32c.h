// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every on-disk structure in src/store. Chosen over the
// zlib CRC32 because its error-detection properties are strictly better for
// the short record sizes the budget WAL writes, and because it is the de
// facto storage-engine standard (snapshots written here stay verifiable by
// off-the-shelf tooling). Software slicing-by-4 implementation — the store
// paths checksum at write/open time, never on the query hot path, so a
// hardware SSE4.2 dispatch is not worth a third dispatch surface.

#ifndef DPSP_COMMON_CRC32C_H_
#define DPSP_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dpsp {

/// CRC32C of `len` bytes at `data`, continuing from `seed` (pass the
/// previous call's return value to checksum discontiguous pieces as one
/// stream; 0 starts a fresh checksum).
uint32_t Crc32c(const void* data, std::size_t len, uint32_t seed = 0);

}  // namespace dpsp

#endif  // DPSP_COMMON_CRC32C_H_
