#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace dpsp {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return count_ == 0 ? 0.0 : min_; }

double OnlineStats::max() const { return count_ == 0 ? 0.0 : max_; }

double Quantile(std::vector<double> values, double q) {
  DPSP_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double MaxAbs(const std::vector<double>& values) {
  double out = 0.0;
  for (double v : values) out = std::max(out, std::fabs(v));
  return out;
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), counts_(static_cast<size_t>(bins), 0) {
  DPSP_CHECK_MSG(bins > 0, "Histogram needs at least one bin");
  DPSP_CHECK_MSG(hi > lo, "Histogram range must be non-empty");
}

void Histogram::Add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  int bin = static_cast<int>(t * static_cast<double>(counts_.size()));
  bin = std::clamp(bin, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

double Histogram::SmoothedMass(int bin) const {
  double numer = static_cast<double>(counts_[static_cast<size_t>(bin)]) + 1.0;
  double denom =
      static_cast<double>(total_) + static_cast<double>(counts_.size());
  return numer / denom;
}

}  // namespace dpsp
