#include "common/numa.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <dirent.h>
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdio>
#endif

#if defined(DPSP_HAVE_LIBNUMA)
#include <numa.h>
#endif

namespace dpsp {

namespace {

#if defined(__linux__)
// mbind(2) policy constants (linux/mempolicy.h values, stable ABI);
// declared locally so the shim builds without libnuma-dev headers.
constexpr int kMpolBind = 2;
constexpr int kMpolInterleave = 3;
constexpr unsigned kMpolMfMove = 1 << 1;  // migrate already-touched pages

// Parses a sysfs cpulist ("0-3,8,10-11") into CPU ids.
std::vector<int> ParseCpuList(const char* list) {
  std::vector<int> cpus;
  const char* p = list;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    long lo = std::strtol(p, &end, 10);
    if (end == p) break;
    long hi = lo;
    p = end;
    if (*p == '-') {
      hi = std::strtol(p + 1, &end, 10);
      p = end;
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    if (*p == ',') ++p;
  }
  return cpus;
}

// Reads /sys/devices/system/node/node<N>/cpulist for every node directory.
// Returns false when the sysfs tree is absent (e.g. minimal containers).
bool ProbeSysfs(NumaTopology* topo) {
  DIR* dir = opendir("/sys/devices/system/node");
  if (dir == nullptr) return false;
  std::vector<int> nodes;
  for (dirent* entry = readdir(dir); entry != nullptr;
       entry = readdir(dir)) {
    int node = -1;
    if (std::sscanf(entry->d_name, "node%d", &node) == 1 && node >= 0) {
      nodes.push_back(node);
    }
  }
  closedir(dir);
  if (nodes.empty()) return false;
  int max_node = 0;
  for (int n : nodes) max_node = n > max_node ? n : max_node;
  topo->num_nodes = max_node + 1;
  topo->node_cpus.assign(static_cast<size_t>(topo->num_nodes), {});
  for (int n : nodes) {
    char path[96];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/node/node%d/cpulist", n);
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) continue;
    char buf[4096];
    if (std::fgets(buf, sizeof(buf), f) != nullptr) {
      topo->node_cpus[static_cast<size_t>(n)] = ParseCpuList(buf);
    }
    std::fclose(f);
  }
  topo->source = "sysfs";
  return true;
}

// One mbind call over the page-rounded range; `nodemask` is a bitmask of
// target nodes.
bool MbindRange(const void* ptr, size_t bytes, int mode,
                unsigned long nodemask) {
  if (ptr == nullptr || bytes == 0) return false;
  long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return false;
  auto addr = reinterpret_cast<uintptr_t>(ptr);
  uintptr_t start = addr & ~static_cast<uintptr_t>(page - 1);
  size_t len = (addr + bytes) - start;
  len = (len + static_cast<size_t>(page) - 1) &
        ~static_cast<size_t>(page - 1);
  // maxnode counts bits + 1 per the syscall contract.
  return syscall(SYS_mbind, start, len, mode, &nodemask,
                 sizeof(nodemask) * 8 + 1, kMpolMfMove) == 0;
}
#endif  // __linux__

NumaTopology Probe() {
  NumaTopology topo;
  const char* env = std::getenv("DPSP_NUMA");
  if (env != nullptr && std::strcmp(env, "0") == 0) {
    topo.source = "disabled";
    return topo;
  }
#if defined(DPSP_HAVE_LIBNUMA)
  if (numa_available() >= 0) {
    topo.num_nodes = numa_max_node() + 1;
    topo.node_cpus.assign(static_cast<size_t>(topo.num_nodes), {});
    int cpus = numa_num_configured_cpus();
    for (int cpu = 0; cpu < cpus; ++cpu) {
      int node = numa_node_of_cpu(cpu);
      if (node >= 0 && node < topo.num_nodes) {
        topo.node_cpus[static_cast<size_t>(node)].push_back(cpu);
      }
    }
    topo.source = "libnuma";
    topo.available = topo.num_nodes > 1;
    return topo;
  }
#endif
#if defined(__linux__)
  if (ProbeSysfs(&topo)) {
    topo.available = topo.num_nodes > 1;
    return topo;
  }
#endif
  return topo;  // single-node fallback
}

}  // namespace

const NumaTopology& NumaTopologyInfo() {
  static const NumaTopology topo = Probe();
  return topo;
}

bool PinCurrentThreadToNode(int node) {
  const NumaTopology& topo = NumaTopologyInfo();
  if (!topo.available || node < 0 || node >= topo.num_nodes) return false;
#if defined(__linux__)
  const std::vector<int>& cpus = topo.node_cpus[static_cast<size_t>(node)];
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  return false;
#endif
}

bool BindMemoryToNode(const void* ptr, size_t bytes, int node) {
  const NumaTopology& topo = NumaTopologyInfo();
  if (!topo.available || node < 0 || node >= topo.num_nodes ||
      node >= static_cast<int>(sizeof(unsigned long) * 8)) {
    return false;
  }
#if defined(__linux__)
  return MbindRange(ptr, bytes, kMpolBind, 1ul << node);
#else
  (void)ptr;
  (void)bytes;
  return false;
#endif
}

bool InterleaveMemory(const void* ptr, size_t bytes) {
  const NumaTopology& topo = NumaTopologyInfo();
  if (!topo.available) return false;
#if defined(__linux__)
  int nodes = topo.num_nodes < static_cast<int>(sizeof(unsigned long) * 8)
                  ? topo.num_nodes
                  : static_cast<int>(sizeof(unsigned long) * 8);
  unsigned long mask = nodes >= static_cast<int>(sizeof(unsigned long) * 8)
                           ? ~0ul
                           : (1ul << nodes) - 1;
  return MbindRange(ptr, bytes, kMpolInterleave, mask);
#else
  (void)ptr;
  (void)bytes;
  return false;
#endif
}

}  // namespace dpsp
