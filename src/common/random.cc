#include "common/random.h"

#include <cmath>
#include <numeric>

#include "common/status.h"

namespace dpsp {

double Rng::Uniform() {
  // Map to (0,1): never returns exactly 0 or 1, which keeps log() finite in
  // the inverse-CDF samplers below.
  uint64_t bits = engine_();
  double u = (static_cast<double>(bits >> 11) + 0.5) * 0x1.0p-53;
  return u;
}

double Rng::Uniform(double lo, double hi) {
  DPSP_CHECK_MSG(hi >= lo, "Uniform(lo, hi) requires hi >= lo");
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DPSP_CHECK_MSG(hi >= lo, "UniformInt(lo, hi) requires hi >= lo");
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  DPSP_CHECK_MSG(p >= 0.0 && p <= 1.0, "Bernoulli probability out of range");
  return Uniform() < p;
}

double Rng::Laplace(double scale) {
  DPSP_CHECK_MSG(scale > 0.0, "Laplace scale must be positive");
  // Inverse CDF: u uniform in (-1/2, 1/2), X = -b * sgn(u) * ln(1 - 2|u|).
  double u = Uniform() - 0.5;
  double sign = (u >= 0.0) ? 1.0 : -1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double Rng::Exponential(double rate) {
  DPSP_CHECK_MSG(rate > 0.0, "Exponential rate must be positive");
  return -std::log(Uniform()) / rate;
}

double Rng::Gaussian(double stddev) {
  DPSP_CHECK_MSG(stddev > 0.0, "Gaussian stddev must be positive");
  std::normal_distribution<double> dist(0.0, stddev);
  return dist(engine_);
}

uint64_t Rng::NextSeed() { return engine_(); }

std::vector<int> Rng::Permutation(int n) {
  DPSP_CHECK_MSG(n >= 0, "Permutation size must be non-negative");
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    int j = static_cast<int>(UniformInt(0, i));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

}  // namespace dpsp
