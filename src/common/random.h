// Deterministic random number generation for the library.
//
// All stochastic components (Laplace mechanisms, graph generators, attack
// harnesses) draw from an explicitly seeded Rng so that every test and bench
// run is reproducible. The Laplace sampler uses the inverse-CDF transform.
//
// NOTE ON SECURITY: mt19937_64 is *not* cryptographically secure, and
// inverse-CDF sampling of doubles is vulnerable to floating-point attacks in
// adversarial deployments (Mironov 2012). This repository reproduces the
// paper's statistical behaviour; a hardened deployment would substitute a
// CSPRNG and the snapping mechanism behind the same Rng interface.

#ifndef DPSP_COMMON_RANDOM_H_
#define DPSP_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace dpsp {

/// Seeded pseudo-random generator with the distributions the library needs.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Equal seeds give equal streams.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in the open interval (0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in the closed range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Laplace(0, scale): density (1/2b) exp(-|x|/b). Requires scale > 0.
  double Laplace(double scale);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  /// Standard normal via std::normal_distribution.
  double Gaussian(double stddev);

  /// A fresh seed derived from this generator's stream, for spawning
  /// independent child generators.
  uint64_t NextSeed();

  /// Random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Access to the raw engine for std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dpsp

#endif  // DPSP_COMMON_RANDOM_H_
