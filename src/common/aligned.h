// Cache-line-aligned storage for the released flat buffers.
//
// Every hot released structure (packed Euler-tour LCA sparse table, dyadic
// block arrays, CSR adjacency, the bounded-weight Z x Z table) is a flat
// array streamed by the DistanceInto kernels. Default std::vector storage
// only guarantees alignof(T); the SIMD gather paths and the NUMA placement
// shim both want the stronger guarantee that a buffer starts on its own
// cache line (and therefore never splits a 32-byte vector load across a
// line boundary at offset 0). AlignedVector is std::vector with a 64-byte
// aligned allocator, so every call site keeps vector semantics — the
// alignment is a property of the type, checked statically in tests.

#ifndef DPSP_COMMON_ALIGNED_H_
#define DPSP_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace dpsp {

/// One cache line / one AVX-512 lane: the alignment of every released flat
/// buffer.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal C++17 aligned allocator (operator new with align_val_t).
template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T),
                "alignment must not weaken the type's own requirement");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  bool operator==(const AlignedAllocator&) const noexcept { return true; }
  bool operator!=(const AlignedAllocator&) const noexcept { return false; }
};

/// std::vector whose data() is 64-byte aligned. Drop-in for the flat
/// released buffers; spans and raw pointers into it are unchanged.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True iff `p` sits on a cache-line boundary — the tests' static check.
inline bool IsCacheAligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kCacheLineBytes == 0;
}

}  // namespace dpsp

#endif  // DPSP_COMMON_ALIGNED_H_
