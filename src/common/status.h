// Lightweight Status / Result<T> error-handling primitives.
//
// The library does not use exceptions; fallible operations return a Status
// (for void results) or a Result<T>. This mirrors the idiom used by Arrow
// and RocksDB. Programming errors (violated preconditions inside the
// library) abort via DPSP_CHECK.

#ifndef DPSP_COMMON_STATUS_H_
#define DPSP_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace dpsp {

/// Canonical error categories. A small subset of the usual gRPC set — only
/// the ones the library actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  /// The operation was refused by load shedding / backpressure and is safe
  /// to retry later (the query-server admission controller uses this).
  kUnavailable = 7,
};

/// Human-readable name of a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// The result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  /// Default-constructed status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts, so callers must check ok() first (or use
/// DPSP_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* msg);
}  // namespace internal

/// Abort with a diagnostic if `expr` is false. For internal invariants only;
/// user-facing validation returns Status instead.
#define DPSP_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dpsp::internal::CheckFailed(__FILE__, __LINE__, #expr, "");     \
    }                                                                   \
  } while (0)

#define DPSP_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dpsp::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg));  \
    }                                                                   \
  } while (0)

/// Propagate a non-OK Status to the caller.
#define DPSP_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::dpsp::Status dpsp_status_ = (expr);     \
    if (!dpsp_status_.ok()) return dpsp_status_; \
  } while (0)

#define DPSP_CONCAT_IMPL(a, b) a##b
#define DPSP_CONCAT(a, b) DPSP_CONCAT_IMPL(a, b)

/// Evaluate a Result<T> expression; on error return its Status, otherwise
/// bind the value to `lhs`.
#define DPSP_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  DPSP_ASSIGN_OR_RETURN_IMPL(DPSP_CONCAT(dpsp_result_, __LINE__), lhs, rexpr)

#define DPSP_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

}  // namespace dpsp

#endif  // DPSP_COMMON_STATUS_H_
