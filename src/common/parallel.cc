#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace dpsp {

int ParallelWorkerCount(size_t n, int max_threads,
                        size_t min_items_per_worker) {
  if (n == 0) return 1;
  size_t by_size = std::max<size_t>(1, n / std::max<size_t>(
                                           1, min_items_per_worker));
  // An explicit max_threads overrides the hardware-concurrency default
  // (it may exceed it; tests use this to force real thread fan-out).
  size_t cap = max_threads > 0
                   ? static_cast<size_t>(max_threads)
                   : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<int>(std::min(by_size, cap));
}

void ParallelFor(size_t n, int max_threads,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_items_per_worker) {
  if (n == 0) return;
  int workers = ParallelWorkerCount(n, max_threads, min_items_per_worker);
  if (workers <= 1) {
    fn(0, n);
    return;
  }
  size_t chunk = (n + static_cast<size_t>(workers) - 1) /
                 static_cast<size_t>(workers);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers) - 1);
  size_t begin = chunk;  // the calling thread takes [0, chunk)
  for (int t = 1; t < workers && begin < n; ++t) {
    size_t end = std::min(n, begin + chunk);
    threads.emplace_back(fn, begin, end);
    begin = end;
  }
  fn(0, std::min(n, chunk));
  for (std::thread& thread : threads) thread.join();
}

Status ParallelForStatus(size_t n, int max_threads,
                         const std::function<Status(size_t, size_t)>& fn,
                         size_t min_items_per_worker) {
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mutex;
  ParallelFor(
      n, max_threads,
      [&](size_t begin, size_t end) {
        Status status = fn(begin, end);
        if (!status.ok()) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!failed.exchange(true)) first_error = std::move(status);
        }
      },
      min_items_per_worker);
  if (failed.load()) return first_error;
  return Status::Ok();
}

}  // namespace dpsp
