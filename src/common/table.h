// ASCII table printer. Every bench harness renders its experiment results
// through this so the output is uniform and diffable against EXPERIMENTS.md.

#ifndef DPSP_COMMON_TABLE_H_
#define DPSP_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace dpsp {

/// Accumulates rows of string/numeric cells and renders an aligned ASCII
/// table with a title and column headers.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Starts a new row. Subsequent Add* calls append cells to it.
  Table& Row();

  Table& Add(const std::string& cell);
  Table& Add(const char* cell);
  /// Formats with %.*g (default 5 significant digits).
  Table& Add(double value, int precision = 5);
  Table& Add(int64_t value);
  Table& Add(int value);

  /// Renders the table (title, header, separator, rows).
  std::string ToString() const;

  /// Renders to stdout.
  void Print() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...);

}  // namespace dpsp

#endif  // DPSP_COMMON_TABLE_H_
