// ASCII table printer plus the shared timing/CSV reporting utilities. Every
// bench harness and registry sweep renders its results through this so the
// output is uniform and diffable against EXPERIMENTS.md.

#ifndef DPSP_COMMON_TABLE_H_
#define DPSP_COMMON_TABLE_H_

#include <chrono>
#include <string>
#include <vector>

namespace dpsp {

/// Accumulates rows of string/numeric cells and renders an aligned ASCII
/// table with a title and column headers.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Starts a new row. Subsequent Add* calls append cells to it.
  Table& Row();

  Table& Add(const std::string& cell);
  Table& Add(const char* cell);
  /// Formats with %.*g (default 5 significant digits).
  Table& Add(double value, int precision = 5);
  Table& Add(int64_t value);
  Table& Add(int value);

  /// Renders the table (title, header, separator, rows).
  std::string ToString() const;

  /// Renders the same rows as RFC-4180-style CSV (header line + rows;
  /// cells containing commas or quotes are quoted). The title is omitted.
  std::string ToCsv() const;

  /// Renders to stdout.
  void Print() const;

  /// Writes the CSV rendering to `path` (truncating). Returns false when
  /// the file cannot be opened.
  bool WriteCsv(const std::string& path) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...);

/// Wall-clock stopwatch for release telemetry and bench rows. Starts on
/// construction.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Milliseconds since construction (or the last Reset).
  double Ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dpsp

#endif  // DPSP_COMMON_TABLE_H_
