#include "common/cpu.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace dpsp {

namespace {

// -1 = no programmatic override (environment decides), 0 = off, 1 = on.
std::atomic<int> g_force_scalar_override{-1};

bool EnvForcesScalar() {
  static const bool forced = [] {
    const char* env = std::getenv("DPSP_FORCE_SCALAR");
    return env != nullptr && std::strcmp(env, "0") != 0 &&
           std::strcmp(env, "") != 0;
  }();
  return forced;
}

}  // namespace

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

bool SimdKernelsCompiled() {
#if defined(DPSP_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool ForceScalarKernels() {
  int override_state = g_force_scalar_override.load(std::memory_order_relaxed);
  if (override_state >= 0) return override_state != 0;
  return EnvForcesScalar();
}

void SetForceScalarKernels(bool force) {
  g_force_scalar_override.store(force ? 1 : 0, std::memory_order_relaxed);
}

void ClearForceScalarKernels() {
  g_force_scalar_override.store(-1, std::memory_order_relaxed);
}

bool SimdKernelsEnabled() {
  return SimdKernelsCompiled() && CpuHasAvx2() && !ForceScalarKernels();
}

const char* SimdDispatchDescription() {
  if (!SimdKernelsCompiled()) return "scalar (not compiled)";
  if (!CpuHasAvx2()) return "scalar (cpu lacks avx2)";
  if (ForceScalarKernels()) return "scalar (forced)";
  return "avx2";
}

ScopedForceScalar::ScopedForceScalar(bool force)
    : previous_(g_force_scalar_override.load(std::memory_order_relaxed)) {
  SetForceScalarKernels(force);
}

ScopedForceScalar::~ScopedForceScalar() {
  g_force_scalar_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace dpsp
