#include "common/crc32c.h"

#include <array>

namespace dpsp {
namespace {

// Four slicing tables, generated once at compile time. table[0] is the
// classic byte-at-a-time table; table[k][b] extends a byte processed k
// positions earlier.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t{};
};

constexpr Crc32cTables MakeTables() {
  Crc32cTables tables{};
  constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables.t[0][i];
    for (std::size_t k = 1; k < 4; ++k) {
      crc = tables.t[0][crc & 0xFFu] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

constexpr Crc32cTables kTables = MakeTables();

}  // namespace

uint32_t Crc32c(const void* data, std::size_t len, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFFu] ^ kTables.t[2][(crc >> 8) & 0xFFu] ^
          kTables.t[1][(crc >> 16) & 0xFFu] ^ kTables.t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace dpsp
