// Fault-injection points for the durability paths.
//
// A failpoint is a named site in the snapshot/WAL/commit code that can be
// armed to fail: either returning an error Status (exercising the error
// handling) or SIGKILLing the process on the spot (exercising crash
// recovery — SIGKILL, not abort, so no destructor, flush, or atexit runs,
// exactly like power loss). Disarmed failpoints cost one relaxed atomic
// load, so the hooks stay in release builds and the recovery tests drive
// the same binaries that ship.
//
// Activation is programmatic (SetFailpoint) or via the environment:
//   DPSP_FAILPOINT=store.snapshot.after_temp_write:crash,store.wal.before_commit:error
// The env form is parsed once, on first evaluation, and composes with later
// programmatic arming (programmatic wins per name).

#ifndef DPSP_COMMON_FAILPOINT_H_
#define DPSP_COMMON_FAILPOINT_H_

#include <string>

#include "common/status.h"

namespace dpsp {

enum class FailpointAction {
  kOff = 0,
  kError,  // EvalFailpoint returns Status::Internal("failpoint <name>")
  kCrash,  // EvalFailpoint raises SIGKILL (no cleanup, like power loss)
};

/// Arms `name` with `action` (kOff disarms). Thread-safe.
void SetFailpoint(const std::string& name, FailpointAction action);

/// Disarms one failpoint / all failpoints (including env-armed ones).
void ClearFailpoint(const std::string& name);
void ClearAllFailpoints();

/// The hook the durability paths call. Ok when disarmed (the common case:
/// one relaxed atomic load, no lock).
Status EvalFailpoint(const char* name);

namespace failpoints {

// Central registry of every injection site, so the crash-recovery harness
// can enumerate them instead of chasing string literals.
inline constexpr const char kSnapshotAfterTempWrite[] =
    "store.snapshot.after_temp_write";
inline constexpr const char kSnapshotBeforeRename[] =
    "store.snapshot.before_rename";
inline constexpr const char kWalBeforeIntent[] = "store.wal.before_intent";
inline constexpr const char kWalAfterIntent[] = "store.wal.after_intent";
inline constexpr const char kWalBeforeCommit[] = "store.wal.before_commit";
inline constexpr const char kWalAfterCommit[] = "store.wal.after_commit";

// kAll enumerates the durability sites the crash-recovery harness drives
// through its single-process WAL/snapshot workload.
inline constexpr const char* kAll[] = {
    kSnapshotAfterTempWrite, kSnapshotBeforeRename, kWalBeforeIntent,
    kWalAfterIntent,         kWalBeforeCommit,      kWalAfterCommit,
};

// Replication sites: every ship (coordinator) and install (replica) step,
// so cluster tests can fail or SIGKILL a node mid-transfer. Enumerated
// separately from kAll because they only fire inside a live
// coordinator/replica pair, which the cluster harness provides.
inline constexpr const char kClusterShipSnapshot[] = "cluster.ship.snapshot";
inline constexpr const char kClusterShipDelta[] = "cluster.ship.delta";
inline constexpr const char kClusterInstallSnapshot[] =
    "cluster.install.snapshot";
inline constexpr const char kClusterInstallDelta[] = "cluster.install.delta";

inline constexpr const char* kClusterAll[] = {
    kClusterShipSnapshot,
    kClusterShipDelta,
    kClusterInstallSnapshot,
    kClusterInstallDelta,
};

}  // namespace failpoints

}  // namespace dpsp

#endif  // DPSP_COMMON_FAILPOINT_H_
