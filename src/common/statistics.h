// Small statistics toolkit used by the experiment harnesses and tests:
// online moments, order statistics, and error-aggregation helpers.

#ifndef DPSP_COMMON_STATISTICS_H_
#define DPSP_COMMON_STATISTICS_H_

#include <cstdint>
#include <vector>

namespace dpsp {

/// Streaming mean / variance / extremes (Welford's algorithm).
class OnlineStats {
 public:
  /// Incorporates one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 if fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact sample quantile with linear interpolation; q in [0, 1].
/// Copies and sorts the data — intended for harness-sized samples.
double Quantile(std::vector<double> values, double q);

/// Mean of a sample; 0 for an empty sample.
double Mean(const std::vector<double>& values);

/// Maximum absolute value of a sample; 0 for an empty sample.
double MaxAbs(const std::vector<double>& values);

/// Fixed-width histogram over [lo, hi] with `bins` buckets. Out-of-range
/// observations are clamped into the first/last bucket. Used by the
/// empirical privacy verifier.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void Add(double x);

  int bins() const { return static_cast<int>(counts_.size()); }
  int64_t count(int bin) const { return counts_[bin]; }
  int64_t total() const { return total_; }

  /// Probability mass of a bin with add-one (Laplace) smoothing, so that
  /// log-ratios between two histograms stay finite.
  double SmoothedMass(int bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace dpsp

#endif  // DPSP_COMMON_STATISTICS_H_
