#include "common/failpoint.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string_view>

namespace dpsp {
namespace {

std::atomic<int> g_armed_count{0};

struct Registry {
  std::mutex mutex;
  std::map<std::string, FailpointAction> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// DPSP_FAILPOINT=name:action[,name:action...]; unknown actions are
// ignored rather than fatal (a typo in the env must not crash production).
void ParseEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("DPSP_FAILPOINT");
    if (env == nullptr || *env == '\0') return;
    std::string_view rest(env);
    while (!rest.empty()) {
      size_t comma = rest.find(',');
      std::string_view entry = rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view()
                                             : rest.substr(comma + 1);
      size_t colon = entry.rfind(':');
      if (colon == std::string_view::npos) continue;
      std::string_view action = entry.substr(colon + 1);
      FailpointAction parsed = FailpointAction::kOff;
      if (action == "error") parsed = FailpointAction::kError;
      if (action == "crash") parsed = FailpointAction::kCrash;
      if (parsed == FailpointAction::kOff) continue;
      SetFailpoint(std::string(entry.substr(0, colon)), parsed);
    }
  });
}

}  // namespace

void SetFailpoint(const std::string& name, FailpointAction action) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.points.find(name);
  if (action == FailpointAction::kOff) {
    if (it != registry.points.end()) {
      registry.points.erase(it);
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  if (it == registry.points.end()) {
    registry.points.emplace(name, action);
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  } else {
    it->second = action;
  }
}

void ClearFailpoint(const std::string& name) {
  SetFailpoint(name, FailpointAction::kOff);
}

void ClearAllFailpoints() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  g_armed_count.fetch_sub(static_cast<int>(registry.points.size()),
                          std::memory_order_relaxed);
  registry.points.clear();
}

Status EvalFailpoint(const char* name) {
  ParseEnvOnce();
  if (g_armed_count.load(std::memory_order_relaxed) == 0) {
    return Status::Ok();
  }
  FailpointAction action = FailpointAction::kOff;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.points.find(name);
    if (it != registry.points.end()) action = it->second;
  }
  switch (action) {
    case FailpointAction::kOff:
      return Status::Ok();
    case FailpointAction::kError:
      return Status::Internal(std::string("failpoint ") + name);
    case FailpointAction::kCrash:
      kill(getpid(), SIGKILL);
      _exit(137);  // unreachable unless SIGKILL delivery is deferred
  }
  return Status::Ok();
}

}  // namespace dpsp
