// Minimal data-parallel loop used by the batched oracle query paths.
//
// The released objects behind every DistanceOracle are immutable after
// construction, so answering a batch of queries is embarrassingly parallel.
// ParallelFor splits an index range into contiguous chunks, one per worker
// thread; small batches run inline to avoid paying thread start-up on the
// latency path.

#ifndef DPSP_COMMON_PARALLEL_H_
#define DPSP_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/status.h"

namespace dpsp {

/// Workers ParallelFor would use for `n` items: capped so each worker gets
/// at least `min_items_per_worker` items, and by `max_threads` when
/// positive (which overrides the hardware-concurrency default). Always
/// >= 1.
int ParallelWorkerCount(size_t n, int max_threads = 0,
                        size_t min_items_per_worker = 2048);

/// Runs fn(begin, end) over a partition of [0, n) using up to `max_threads`
/// workers (0 = hardware concurrency; a positive value overrides it). With
/// one worker, runs inline on the calling thread. `fn` must be safe to
/// call concurrently on disjoint ranges. `min_items_per_worker` tunes the
/// fan-out threshold: batched pair queries keep the default so tiny
/// batches stay on the latency path, while coarse units (one Dijkstra
/// source, one shard) pass 1.
void ParallelFor(size_t n, int max_threads,
                 const std::function<void(size_t begin, size_t end)>& fn,
                 size_t min_items_per_worker = 2048);

/// ParallelFor for fallible chunks: runs fn(begin, end) over a partition
/// of [0, n) and returns the first error any chunk reported (other chunks
/// still run to completion). The single home of the cross-thread error
/// aggregation both the batched oracle paths and the sharded executor
/// fan-outs use.
Status ParallelForStatus(
    size_t n, int max_threads,
    const std::function<Status(size_t begin, size_t end)>& fn,
    size_t min_items_per_worker = 2048);

}  // namespace dpsp

#endif  // DPSP_COMMON_PARALLEL_H_
