// Runtime CPU feature detection and the SIMD kernel dispatch switch.
//
// The fused DistanceInto kernels come in two flavours: the portable scalar
// loops (always compiled, the reference semantics) and AVX2 batch kernels
// (compiled only when the toolchain supports -mavx2, selected only when
// the running CPU reports AVX2). Dispatch is a per-call branch on
// SimdKernelsEnabled(), so one binary serves every x86-64 machine and the
// scalar path stays exercised everywhere else.
//
// The two paths are bit-identical by construction (same IEEE operation
// order, gathers replacing scalar loads); tests/simd_conformance_test.cc
// enforces that invariant across every registry oracle. To pin the scalar
// path at runtime — sanitizer legs, A/B benches, debugging — set the
// DPSP_FORCE_SCALAR environment variable (any value but "0") or use
// SetForceScalarKernels / ScopedForceScalar.

#ifndef DPSP_COMMON_CPU_H_
#define DPSP_COMMON_CPU_H_

namespace dpsp {

/// True iff the running CPU reports AVX2 (cached CPUID probe). False on
/// non-x86 builds.
bool CpuHasAvx2();

/// True iff the AVX2 kernels were compiled into this binary.
bool SimdKernelsCompiled();

/// True iff scalar kernels are forced: DPSP_FORCE_SCALAR is set in the
/// environment (any value but "0") or SetForceScalarKernels(true) was
/// called. The programmatic override wins over the environment.
bool ForceScalarKernels();

/// Programmatic override of the force-scalar switch (tests, benches).
void SetForceScalarKernels(bool force);

/// Clears the programmatic override, restoring the environment setting.
void ClearForceScalarKernels();

/// The dispatch decision every vector-capable kernel makes: AVX2 compiled
/// in, reported by the CPU, and not forced off.
bool SimdKernelsEnabled();

/// Human-readable dispatch state for benches and logs: "avx2",
/// "scalar (forced)", "scalar (cpu lacks avx2)", or
/// "scalar (not compiled)".
const char* SimdDispatchDescription();

/// RAII force-scalar scope for the conformance tests: forces (or
/// unforces) scalar kernels for its lifetime, then restores the previous
/// state.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force);
  ~ScopedForceScalar();
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  int previous_;  // -1 = no override was active
};

}  // namespace dpsp

#endif  // DPSP_COMMON_CPU_H_
