// NUMA topology probe and placement shim for the serving hot path.
//
// On a multi-socket box the released flat buffers and the shard workers
// that stream them should live on the same node: a remote-node load costs
// 1.5-2x a local one, which is exactly the margin the memory-bound
// DistanceInto kernels run at. This shim gives the executor three
// primitives with graceful degradation:
//
//   * topology:  libnuma when compiled in (DPSP_HAVE_LIBNUMA), else the
//                sysfs nodes under /sys/devices/system/node, else a
//                single-node fallback;
//   * pinning:   sched_setaffinity of the calling worker thread onto one
//                node's CPU set;
//   * placement: mbind(2) of a released buffer's pages onto one node
//                (MPOL_BIND) or across all nodes (MPOL_INTERLEAVE) — the
//                raw syscall, so no libnuma dependency is required.
//
// On a single-node machine (or a non-Linux build) every primitive is a
// cheap no-op that reports success=false, so call sites never need their
// own platform guards. Set DPSP_NUMA=0 to disable the whole shim at
// runtime.

#ifndef DPSP_COMMON_NUMA_H_
#define DPSP_COMMON_NUMA_H_

#include <cstddef>
#include <vector>

namespace dpsp {

/// The machine's NUMA layout, probed once and cached.
struct NumaTopology {
  /// True iff more than one node was found and the shim is enabled —
  /// the precondition for every placement primitive to do real work.
  bool available = false;
  /// Number of memory nodes (1 on UMA machines and non-Linux builds).
  int num_nodes = 1;
  /// Where the layout came from: "libnuma", "sysfs", "single", or
  /// "disabled" (DPSP_NUMA=0).
  const char* source = "single";
  /// node -> CPU ids on that node (empty vectors on the fallback paths).
  std::vector<std::vector<int>> node_cpus;
};

/// The cached topology. First call probes; DPSP_NUMA=0 yields the
/// single-node fallback with source "disabled".
const NumaTopology& NumaTopologyInfo();

/// Pins the calling thread to the CPUs of `node`. Returns true on
/// success; false (no-op) on single-node machines, out-of-range nodes,
/// or unsupported platforms.
bool PinCurrentThreadToNode(int node);

/// Binds the pages of [ptr, ptr + bytes) to `node` (MPOL_BIND with page
/// migration). The range is rounded out to page boundaries. Returns true
/// iff the syscall succeeded on a multi-node machine.
bool BindMemoryToNode(const void* ptr, size_t bytes, int node);

/// Interleaves the pages of [ptr, ptr + bytes) across all nodes — the
/// right policy for one released structure streamed by workers on every
/// node. Returns true iff the syscall succeeded on a multi-node machine.
bool InterleaveMemory(const void* ptr, size_t bytes);

}  // namespace dpsp

#endif  // DPSP_COMMON_NUMA_H_
