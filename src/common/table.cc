#include "common/table.h"

#include <cstdarg>
#include <cstdio>

#include "common/status.h"

namespace dpsp {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  DPSP_CHECK_MSG(!columns_.empty(), "Table needs at least one column");
}

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Add(const std::string& cell) {
  DPSP_CHECK_MSG(!rows_.empty(), "call Row() before Add()");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::Add(const char* cell) { return Add(std::string(cell)); }

Table& Table::Add(double value, int precision) {
  return Add(StrFormat("%.*g", precision, value));
}

Table& Table::Add(int64_t value) {
  return Add(StrFormat("%lld", static_cast<long long>(value)));
}

Table& Table::Add(int value) { return Add(static_cast<int64_t>(value)); }

std::string Table::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < columns_.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out;
  out += "== " + title_ + " ==\n";
  out += render_row(columns_);
  std::string sep = "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::ToCsv() const {
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += ',';
    out += CsvEscape(columns_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += ',';
      if (c < row.size()) out += CsvEscape(row[c]);
    }
    out += '\n';
  }
  return out;
}

bool Table::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string csv = ToCsv();
  size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  // fclose flushes; a full disk surfaces there, not in fwrite.
  return (std::fclose(f) == 0) && written == csv.size();
}

}  // namespace dpsp
