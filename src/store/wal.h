// Append-only write-ahead log for the privacy-budget ledger.
//
// The ledger is the one piece of state that must survive a crash exactly:
// losing it would let spent epsilon be re-spent. Every MeteredBuild /
// MeteredUpdate charge writes two records around the in-memory ledger
// mutation:
//
//   intent (before the mechanism runs): the label and the full PrivacyLoss
//     in its natural currency (pure / approximate / zCDP);
//   commit (after the accountant records): the intent's LSN.
//
// Record layout (little-endian), one per append, fdatasync'd before the
// append returns:
//
//   u32 crc32c   — over everything after this field
//   u32 payload_len
//   u64 lsn      — strictly increasing from 1
//   u8  type     — 1 = intent, 2 = commit
//   payload:
//     intent: u32 label_len, label, u8 loss_kind, f64 eps, f64 delta, f64 rho
//     commit: u64 intent_lsn
//
// Recovery semantics (ReplayBudgetWal): a torn tail — an incomplete final
// record, or a final record whose checksum fails — is discarded and
// reported, because a crash mid-append legitimately leaves one; the same
// damage anywhere before the tail is a typed error (bytes after it parsed,
// so this is corruption, not a torn write). An intent without a commit is
// treated as SPENT: the mechanism may have run and released output before
// the crash, and double-charging is safe where resurrecting budget is not.
// Duplicate commits, commits for unknown intents, and LSN regressions are
// typed errors — a silently smaller ledger must be impossible.

#ifndef DPSP_STORE_WAL_H_
#define DPSP_STORE_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dp/privacy_loss.h"

namespace dpsp {

class ReleaseContext;

namespace store {

/// One recovered charge: an intent, and whether its commit made it down.
struct WalCharge {
  std::string label;
  PrivacyLoss loss;
  bool committed = false;
  uint64_t lsn = 0;
};

/// The result of replaying a WAL file.
struct WalRecovery {
  std::vector<WalCharge> charges;
  /// The LSN the next append should use (1 for an empty/missing log).
  uint64_t next_lsn = 1;
  /// Bytes of torn tail discarded (0 for a clean log).
  uint64_t discarded_tail_bytes = 0;
  /// Length of the valid record prefix. When discarded_tail_bytes > 0 the
  /// file MUST be truncated to this length before appending again —
  /// appending after torn bytes would turn a legitimate crash artifact
  /// into mid-file corruption on the next replay.
  uint64_t valid_bytes = 0;
  /// Complete records accepted.
  uint64_t records = 0;

  uint64_t committed_count() const {
    uint64_t n = 0;
    for (const WalCharge& c : charges) n += c.committed ? 1 : 0;
    return n;
  }
};

/// Replays the WAL at `path`. A missing file is an empty recovery, not an
/// error (first boot). See the header comment for the tail semantics.
Result<WalRecovery> ReplayBudgetWal(const std::string& path);

/// Records every recovered charge — committed or not, per the
/// intent-is-spent rule — into the context's accountant. Bypasses budget
/// admission deliberately: recovery must reconstruct the ledger even when
/// it already exceeds the configured budget (future charges will then be
/// refused, which is the conservative outcome).
Status ApplyWalRecovery(const WalRecovery& recovery, ReleaseContext& ctx);

/// The append handle. Thread-safe; every append is fdatasync'd before it
/// returns so a reported LSN is durable.
class BudgetWal {
 public:
  /// Opens (creating if absent) the log for appending, continuing at
  /// `next_lsn` (pass WalRecovery::next_lsn after a replay).
  static Result<std::unique_ptr<BudgetWal>> Open(const std::string& path,
                                                 uint64_t next_lsn);

  ~BudgetWal();
  BudgetWal(const BudgetWal&) = delete;
  BudgetWal& operator=(const BudgetWal&) = delete;

  /// Appends an intent record; returns its LSN.
  Result<uint64_t> AppendIntent(std::string_view label,
                                const PrivacyLoss& loss);

  /// Appends a commit record for a previously returned intent LSN.
  Status AppendCommit(uint64_t intent_lsn);

 private:
  BudgetWal(int fd, uint64_t next_lsn) : fd_(fd), next_lsn_(next_lsn) {}

  Status AppendRecord(uint8_t type, const std::vector<uint8_t>& payload,
                      uint64_t* lsn_out);

  std::mutex mutex_;
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
};

}  // namespace store
}  // namespace dpsp

#endif  // DPSP_STORE_WAL_H_
