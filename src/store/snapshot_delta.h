// Byte-range deltas between two released-state images — the replication
// diff for the read tier. A protocol-v3 update epoch redraws only the
// dirty dyadic blocks inside an oracle's released sections, so the
// byte-level difference between the pre- and post-epoch images is a
// handful of contiguous runs. ComputeSectionDelta extracts those runs;
// ApplySectionDelta patches them into a replica's copy and proves the
// result against a CRC32C of the coordinator's post-epoch section, so a
// replica that applies the same delta stream holds bit-identical images.
//
// Deltas deliberately cover only in-place mutation: an update epoch never
// changes a release's shape (labels, section count, section sizes). A
// shape change is a FailedPrecondition from ComputeSectionDelta — the
// shipper's signal to fall back to a full SnapshotChunk instead.

#ifndef DPSP_STORE_SNAPSHOT_DELTA_H_
#define DPSP_STORE_SNAPSHOT_DELTA_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/distance_oracle.h"

namespace dpsp {
namespace store {

/// One contiguous run of changed bytes within a section.
struct SectionRange {
  uint64_t offset = 0;
  std::vector<uint8_t> bytes;
};

/// All changes one epoch made to one labeled section, plus the CRC32C of
/// the complete post-patch section so the applier can verify it
/// reconstructed exactly the shipper's bytes.
struct SectionPatch {
  std::string label;
  /// Size of the section both before and after (deltas never resize).
  uint64_t section_bytes = 0;
  uint32_t post_crc32c = 0;
  std::vector<SectionRange> ranges;
};

/// Computes the patches that turn `before` into `after`. Sections must
/// agree in label order, labels, and sizes; any shape change fails with
/// FailedPrecondition (ship a full image instead). Unchanged sections
/// produce no patch; a fully unchanged image produces an empty vector.
Result<std::vector<SectionPatch>> ComputeSectionDelta(
    std::span<const ReleasedSection> before,
    std::span<const ReleasedSection> after);

/// Applies `patches` to `image` in place, then verifies every patched
/// section against its post_crc32c. InvalidArgument on an unknown label,
/// size mismatch, out-of-bounds range, or checksum mismatch — after which
/// the image must be considered corrupt (the replica's cue to resync from
/// a full snapshot).
Status ApplySectionDelta(std::vector<ReleasedSection>& image,
                         std::span<const SectionPatch> patches);

/// Total changed-payload bytes the patches carry (the replication
/// byte-accounting that proves update epochs ship deltas, not images).
uint64_t SectionDeltaBytes(std::span<const SectionPatch> patches);

}  // namespace store
}  // namespace dpsp

#endif  // DPSP_STORE_SNAPSHOT_DELTA_H_
