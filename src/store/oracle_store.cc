#include "store/oracle_store.h"

#include <cstring>

#include "common/table.h"

namespace dpsp {
namespace store {

namespace {

// The "__meta__" payload: three u32-length-prefixed strings
// (mechanism, workload, handle), little-endian.
void AppendString(std::vector<uint8_t>* out, const std::string& s) {
  uint32_t len = static_cast<uint32_t>(s.size());
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&len);
  out->insert(out->end(), p, p + sizeof(len));
  out->insert(out->end(), s.begin(), s.end());
}

Status ReadString(std::span<const uint8_t> bytes, size_t* pos,
                  std::string* out) {
  if (*pos + sizeof(uint32_t) > bytes.size()) {
    return Status::InvalidArgument("snapshot meta section is truncated");
  }
  uint32_t len;
  std::memcpy(&len, bytes.data() + *pos, sizeof(len));
  *pos += sizeof(len);
  if (len > bytes.size() - *pos) {
    return Status::InvalidArgument(
        "snapshot meta section string length exceeds the section");
  }
  out->assign(reinterpret_cast<const char*>(bytes.data() + *pos), len);
  *pos += len;
  return Status::Ok();
}

}  // namespace

Status SaveOracleSnapshot(const std::string& path,
                          const DistanceOracle& oracle,
                          const OracleSnapshotMeta& meta,
                          uint64_t epoch_lsn) {
  if (meta.mechanism.empty()) {
    return Status::InvalidArgument("snapshot meta needs a mechanism name");
  }
  std::vector<ReleasedSection> sections;
  ReleasedSection meta_section;
  meta_section.label = kOracleMetaLabel;
  AppendString(&meta_section.bytes, meta.mechanism);
  AppendString(&meta_section.bytes, meta.workload);
  AppendString(&meta_section.bytes, meta.handle);
  sections.push_back(std::move(meta_section));
  DPSP_RETURN_IF_ERROR(oracle.SaveReleasedState(&sections));
  for (size_t i = 1; i < sections.size(); ++i) {
    if (sections[i].label == kOracleMetaLabel) {
      return Status::InvalidArgument(
          StrFormat("oracle '%s' emitted the reserved section label '%s'",
                    meta.mechanism.c_str(), kOracleMetaLabel));
    }
  }
  return WriteSnapshot(path, sections, epoch_lsn);
}

Result<OracleSnapshotMeta> ReadOracleSnapshotMeta(
    const SnapshotReader& reader) {
  const ReleasedSectionView* section = reader.Find(kOracleMetaLabel);
  if (section == nullptr) {
    return Status::InvalidArgument(
        "snapshot has no __meta__ section (not an oracle snapshot)");
  }
  OracleSnapshotMeta meta;
  size_t pos = 0;
  DPSP_RETURN_IF_ERROR(ReadString(section->bytes, &pos, &meta.mechanism));
  DPSP_RETURN_IF_ERROR(ReadString(section->bytes, &pos, &meta.workload));
  DPSP_RETURN_IF_ERROR(ReadString(section->bytes, &pos, &meta.handle));
  if (pos != section->bytes.size()) {
    return Status::InvalidArgument(
        "snapshot meta section has trailing bytes");
  }
  if (meta.mechanism.empty()) {
    return Status::InvalidArgument("snapshot meta mechanism is empty");
  }
  return meta;
}

Result<std::unique_ptr<DistanceOracle>> LoadOracleSnapshot(
    const SnapshotReader& reader, const Graph& graph, const EdgeWeights& w) {
  DPSP_ASSIGN_OR_RETURN(OracleSnapshotMeta meta,
                        ReadOracleSnapshotMeta(reader));
  return OracleRegistry::Global().Restore(meta.mechanism, graph, w,
                                          reader.sections());
}

}  // namespace store
}  // namespace dpsp
