#include "store/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <utility>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/table.h"

namespace dpsp {
namespace store {
namespace {

constexpr size_t kHeaderBytes = 64;
constexpr size_t kAlign = 64;

size_t AlignUp(size_t offset) { return (offset + kAlign - 1) & ~(kAlign - 1); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

// Bounds-checked little-endian cursor over the mapped file.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU32(uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (size_ - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool ReadBytes(size_t n, const uint8_t** out) {
    if (size_ - pos_ < n) return false;
    *out = data_ + pos_;
    pos_ += n;
    return true;
  }
  size_t pos() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Internal(
      StrFormat("%s(%s): %s", op, path.c_str(), std::strerror(errno)));
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument(
      StrFormat("snapshot %s: %s", path.c_str(), what.c_str()));
}

Status WriteAllFd(int fd, const uint8_t* data, size_t len,
                  const std::string& path) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FsyncDirOf(const std::string& path) {
  size_t slash = path.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open", dir);
  int rc = fsync(fd);
  close(fd);
  if (rc != 0) return ErrnoStatus("fsync", dir);
  return Status::Ok();
}

}  // namespace

Status WriteSnapshot(const std::string& path,
                     std::span<const ReleasedSection> sections,
                     uint64_t epoch_lsn) {
  std::set<std::string_view> labels;
  for (const ReleasedSection& section : sections) {
    if (section.label.empty()) {
      return Status::InvalidArgument("snapshot section label must not be empty");
    }
    if (!labels.insert(section.label).second) {
      return Status::InvalidArgument("duplicate snapshot section label '" +
                                     section.label + "'");
    }
  }

  // Layout: header, aligned payloads, table at the end.
  std::vector<uint64_t> offsets;
  offsets.reserve(sections.size());
  size_t cursor = kHeaderBytes;
  for (const ReleasedSection& section : sections) {
    cursor = AlignUp(cursor);
    offsets.push_back(cursor);
    cursor += section.bytes.size();
  }
  const size_t table_offset = cursor;

  std::vector<uint8_t> table;
  for (size_t i = 0; i < sections.size(); ++i) {
    const ReleasedSection& section = sections[i];
    PutU32(&table, static_cast<uint32_t>(section.label.size()));
    table.insert(table.end(), section.label.begin(), section.label.end());
    PutU64(&table, offsets[i]);
    PutU64(&table, section.bytes.size());
    PutU32(&table, Crc32c(section.bytes.data(), section.bytes.size()));
  }

  std::vector<uint8_t> file(table_offset + table.size(), 0);
  std::vector<uint8_t> header;
  header.reserve(kHeaderBytes);
  PutU64(&header, kSnapshotMagic);
  PutU32(&header, kSnapshotFormatVersion);
  PutU32(&header, static_cast<uint32_t>(sections.size()));
  PutU64(&header, table_offset);
  PutU64(&header, table.size());
  PutU32(&header, Crc32c(table.data(), table.size()));
  PutU64(&header, epoch_lsn);
  PutU32(&header, Crc32c(header.data(), header.size()));  // first 44 bytes
  header.resize(kHeaderBytes, 0);
  std::memcpy(file.data(), header.data(), kHeaderBytes);
  for (size_t i = 0; i < sections.size(); ++i) {
    if (!sections[i].bytes.empty()) {
      std::memcpy(file.data() + offsets[i], sections[i].bytes.data(),
                  sections[i].bytes.size());
    }
  }
  std::memcpy(file.data() + table_offset, table.data(), table.size());

  const std::string tmp = path + ".tmp";
  int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  Status wrote = WriteAllFd(fd, file.data(), file.size(), tmp);
  if (wrote.ok()) {
    wrote = EvalFailpoint(failpoints::kSnapshotAfterTempWrite);
  }
  if (wrote.ok() && fsync(fd) != 0) wrote = ErrnoStatus("fsync", tmp);
  close(fd);
  if (wrote.ok()) wrote = EvalFailpoint(failpoints::kSnapshotBeforeRename);
  if (!wrote.ok()) {
    unlink(tmp.c_str());
    return wrote;
  }
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    Status renamed = ErrnoStatus("rename", tmp);
    unlink(tmp.c_str());
    return renamed;
  }
  return FsyncDirOf(path);
}

SnapshotReader& SnapshotReader::operator=(SnapshotReader&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) munmap(map_, map_bytes_);
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    epoch_lsn_ = std::exchange(other.epoch_lsn_, 0);
    sections_ = std::move(other.sections_);
    other.sections_.clear();
  }
  return *this;
}

SnapshotReader::~SnapshotReader() {
  if (map_ != nullptr) munmap(map_, map_bytes_);
}

const ReleasedSectionView* SnapshotReader::Find(std::string_view label) const {
  for (const ReleasedSectionView& section : sections_) {
    if (section.label == label) return &section;
  }
  return nullptr;
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot at " + path);
    }
    return ErrnoStatus("open", path);
  }
  struct stat st{};
  if (fstat(fd, &st) != 0) {
    Status status = ErrnoStatus("fstat", path);
    close(fd);
    return status;
  }
  const size_t file_bytes = static_cast<size_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    close(fd);
    return Corrupt(path, StrFormat("file is %zu bytes, smaller than the "
                                   "64-byte header",
                                   file_bytes));
  }
  void* map = mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  close(fd);
  if (map == MAP_FAILED) return ErrnoStatus("mmap", path);

  SnapshotReader reader;
  reader.map_ = map;
  reader.map_bytes_ = file_bytes;
  const uint8_t* data = static_cast<const uint8_t*>(map);

  Cursor header(data, kHeaderBytes);
  uint64_t magic = 0, table_offset = 0, table_bytes = 0, epoch_lsn = 0;
  uint32_t version = 0, num_sections = 0, table_crc = 0, header_crc = 0;
  header.ReadU64(&magic);
  header.ReadU32(&version);
  header.ReadU32(&num_sections);
  header.ReadU64(&table_offset);
  header.ReadU64(&table_bytes);
  header.ReadU32(&table_crc);
  if (magic != kSnapshotMagic) return Corrupt(path, "bad magic");
  // The version picks the header shape (v2 inserted the epoch LSN before
  // the header CRC), so it gates parsing; its own bytes are still under
  // the CRC checked right after.
  if (version < kMinSnapshotFormatVersion ||
      version > kSnapshotFormatVersion) {
    return Corrupt(path, StrFormat("unsupported format version %u", version));
  }
  if (version >= 2) header.ReadU64(&epoch_lsn);
  const size_t crc_covered = header.pos();
  header.ReadU32(&header_crc);
  if (header_crc != Crc32c(data, crc_covered)) {
    return Corrupt(path, "header checksum mismatch");
  }
  reader.epoch_lsn_ = epoch_lsn;
  if (table_offset < kHeaderBytes || table_offset > file_bytes ||
      table_bytes > file_bytes - table_offset) {
    return Corrupt(path, "section table lies outside the file");
  }
  if (table_crc != Crc32c(data + table_offset, table_bytes)) {
    return Corrupt(path, "section table checksum mismatch");
  }

  Cursor table(data + table_offset, table_bytes);
  reader.sections_.reserve(num_sections);
  for (uint32_t i = 0; i < num_sections; ++i) {
    uint32_t label_len = 0, payload_crc = 0;
    uint64_t payload_offset = 0, payload_bytes = 0;
    const uint8_t* label = nullptr;
    if (!table.ReadU32(&label_len) || !table.ReadBytes(label_len, &label) ||
        !table.ReadU64(&payload_offset) || !table.ReadU64(&payload_bytes) ||
        !table.ReadU32(&payload_crc)) {
      return Corrupt(path, StrFormat("truncated table entry %u", i));
    }
    if (payload_offset > file_bytes ||
        payload_bytes > file_bytes - payload_offset ||
        payload_offset % kAlign != 0) {
      return Corrupt(path,
                     StrFormat("section %u payload lies outside the file or "
                               "is misaligned",
                               i));
    }
    if (payload_crc != Crc32c(data + payload_offset, payload_bytes)) {
      return Corrupt(
          path, StrFormat("section '%.*s' payload checksum mismatch",
                          static_cast<int>(label_len), label));
    }
    reader.sections_.push_back(ReleasedSectionView{
        std::string_view(reinterpret_cast<const char*>(label), label_len),
        std::span<const uint8_t>(data + payload_offset, payload_bytes)});
  }
  if (table.pos() != table_bytes) {
    return Corrupt(path, "section table holds trailing bytes");
  }
  return reader;
}

}  // namespace store
}  // namespace dpsp
