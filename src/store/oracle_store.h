// Oracle-level glue over the snapshot container and the budget WAL:
//
//  * SaveOracleSnapshot / LoadOracleSnapshot round-trip a released oracle
//    through the snapshot format. The store prepends a "__meta__" section
//    (mechanism name, workload name, serving handle) so a recovering
//    server can rebind each file to its registry entry and workload
//    without trusting filenames.
//  * WalDurabilityHook adapts a BudgetWal to the
//    ReleaseContext::DurabilityHook interface, so every metered charge
//    writes an intent/commit pair around the in-memory ledger mutation.
//
// Restore trust boundary: snapshots persist ONLY released (post-DP)
// state. Loaders never see a ReleaseContext — a restore draws no noise
// and consumes no budget; the budget itself recovers separately through
// the WAL.

#ifndef DPSP_STORE_ORACLE_STORE_H_
#define DPSP_STORE_ORACLE_STORE_H_

#include <memory>
#include <string>

#include "core/distance_oracle.h"
#include "core/oracle_registry.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace dpsp {
namespace store {

/// Identity of a persisted oracle, stored in the "__meta__" section.
struct OracleSnapshotMeta {
  /// Registry name of the mechanism (OracleRegistry key).
  std::string mechanism;
  /// Name of the workload (graph + weights) the oracle serves.
  std::string workload;
  /// The serving handle the oracle was published under.
  std::string handle;
};

/// Label of the store-level metadata section. Reserved: mechanisms must
/// not emit a section with this label from SaveReleasedState.
inline constexpr const char* kOracleMetaLabel = "__meta__";

/// Saves `oracle`'s released state plus `meta` atomically at `path`,
/// stamping `epoch_lsn` (the curator's release/update epoch) on the
/// container header. Fails with Unimplemented for oracles that do not
/// persist released state, without touching the destination file.
Status SaveOracleSnapshot(const std::string& path,
                          const DistanceOracle& oracle,
                          const OracleSnapshotMeta& meta,
                          uint64_t epoch_lsn = 0);

/// Decodes the "__meta__" section of an open snapshot.
Result<OracleSnapshotMeta> ReadOracleSnapshotMeta(const SnapshotReader& reader);

/// Restores the oracle persisted in `reader` against the public
/// workload (graph, w) through the registry loader for its mechanism.
Result<std::unique_ptr<DistanceOracle>> LoadOracleSnapshot(
    const SnapshotReader& reader, const Graph& graph, const EdgeWeights& w);

/// DurabilityHook over a BudgetWal: LogIntent/LogCommit append the
/// corresponding records. Non-owning; the WAL must outlive the hook.
class WalDurabilityHook final : public ReleaseContext::DurabilityHook {
 public:
  explicit WalDurabilityHook(BudgetWal* wal) : wal_(wal) {}

  Result<uint64_t> LogIntent(const std::string& label,
                             const PrivacyLoss& loss) override {
    return wal_->AppendIntent(label, loss);
  }
  Status LogCommit(uint64_t intent_lsn) override {
    return wal_->AppendCommit(intent_lsn);
  }

 private:
  BudgetWal* wal_;
};

}  // namespace store
}  // namespace dpsp

#endif  // DPSP_STORE_ORACLE_STORE_H_
