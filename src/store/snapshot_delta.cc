#include "store/snapshot_delta.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/table.h"

namespace dpsp {
namespace store {

namespace {

// Two changed runs closer than this merge into one range: a fused range
// re-ships a few identical bytes but saves the 16-byte per-range framing
// and keeps patch tables short when an epoch dirties adjacent blocks.
constexpr size_t kCoalesceGapBytes = 32;

}  // namespace

Result<std::vector<SectionPatch>> ComputeSectionDelta(
    std::span<const ReleasedSection> before,
    std::span<const ReleasedSection> after) {
  if (before.size() != after.size()) {
    return Status::FailedPrecondition(
        StrFormat("section count changed across epoch (%zu -> %zu); a "
                  "delta cannot express a reshaped release",
                  before.size(), after.size()));
  }
  std::vector<SectionPatch> patches;
  for (size_t s = 0; s < before.size(); ++s) {
    const ReleasedSection& old_section = before[s];
    const ReleasedSection& new_section = after[s];
    if (old_section.label != new_section.label ||
        old_section.bytes.size() != new_section.bytes.size()) {
      return Status::FailedPrecondition(
          StrFormat("section '%s' changed shape across epoch; a delta "
                    "cannot express a reshaped release",
                    old_section.label.c_str()));
    }
    const uint8_t* a = old_section.bytes.data();
    const uint8_t* b = new_section.bytes.data();
    const size_t n = new_section.bytes.size();
    SectionPatch patch;
    size_t i = 0;
    while (i < n) {
      if (a[i] == b[i]) {
        ++i;
        continue;
      }
      // A changed run starts here; extend it across equal gaps shorter
      // than the coalescing threshold.
      const size_t start = i;
      size_t last_diff = i;
      while (i < n && i - last_diff <= kCoalesceGapBytes) {
        if (a[i] != b[i]) last_diff = i;
        ++i;
      }
      SectionRange range;
      range.offset = start;
      range.bytes.assign(b + start, b + last_diff + 1);
      patch.ranges.push_back(std::move(range));
    }
    if (patch.ranges.empty()) continue;
    patch.label = new_section.label;
    patch.section_bytes = n;
    patch.post_crc32c = Crc32c(b, n);
    patches.push_back(std::move(patch));
  }
  return patches;
}

Status ApplySectionDelta(std::vector<ReleasedSection>& image,
                         std::span<const SectionPatch> patches) {
  for (const SectionPatch& patch : patches) {
    ReleasedSection* section = nullptr;
    for (ReleasedSection& candidate : image) {
      if (candidate.label == patch.label) {
        section = &candidate;
        break;
      }
    }
    if (section == nullptr) {
      return Status::InvalidArgument(
          StrFormat("delta patches unknown section '%s'",
                    patch.label.c_str()));
    }
    if (section->bytes.size() != patch.section_bytes) {
      return Status::InvalidArgument(
          StrFormat("delta for section '%s' expects %llu bytes, image "
                    "holds %zu",
                    patch.label.c_str(),
                    static_cast<unsigned long long>(patch.section_bytes),
                    section->bytes.size()));
    }
    for (const SectionRange& range : patch.ranges) {
      if (range.bytes.empty()) continue;
      if (range.offset > section->bytes.size() ||
          range.bytes.size() > section->bytes.size() - range.offset) {
        return Status::InvalidArgument(
            StrFormat("delta range [%llu, +%zu) overruns section '%s'",
                      static_cast<unsigned long long>(range.offset),
                      range.bytes.size(), patch.label.c_str()));
      }
      std::memcpy(section->bytes.data() + range.offset, range.bytes.data(),
                  range.bytes.size());
    }
    const uint32_t crc = Crc32c(section->bytes.data(), section->bytes.size());
    if (crc != patch.post_crc32c) {
      return Status::InvalidArgument(
          StrFormat("section '%s' checksum mismatch after delta "
                    "(got %08x, want %08x); image is corrupt — resync",
                    patch.label.c_str(), crc, patch.post_crc32c));
    }
  }
  return Status::Ok();
}

uint64_t SectionDeltaBytes(std::span<const SectionPatch> patches) {
  uint64_t total = 0;
  for (const SectionPatch& patch : patches) {
    for (const SectionRange& range : patch.ranges) {
      total += range.bytes.size();
    }
  }
  return total;
}

}  // namespace store
}  // namespace dpsp
