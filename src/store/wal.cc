#include "store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <utility>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/table.h"
#include "dp/release_context.h"

namespace dpsp {
namespace store {
namespace {

constexpr uint8_t kIntentRecord = 1;
constexpr uint8_t kCommitRecord = 2;
// crc(4) + payload_len(4) + lsn(8) + type(1).
constexpr size_t kRecordHeaderBytes = 17;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}
void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}
double GetF64(const uint8_t* p) {
  uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Internal(
      StrFormat("%s(%s): %s", op, path.c_str(), std::strerror(errno)));
}

Status Corrupt(const std::string& path, uint64_t offset,
               const std::string& what) {
  return Status::InvalidArgument(StrFormat(
      "budget WAL %s at byte %llu: %s", path.c_str(),
      static_cast<unsigned long long>(offset), what.c_str()));
}

// Parses the payload of one checksum-verified record into `recovery`.
Status ApplyRecord(const std::string& path, uint64_t offset, uint64_t lsn,
                   uint8_t type, const uint8_t* payload, size_t len,
                   WalRecovery* recovery,
                   std::vector<size_t>* intent_index_by_order) {
  if (type == kIntentRecord) {
    if (len < 4) return Corrupt(path, offset, "intent payload truncated");
    uint32_t label_len = GetU32(payload);
    if (len != 4 + static_cast<size_t>(label_len) + 1 + 24) {
      return Corrupt(path, offset, "intent payload length mismatch");
    }
    const uint8_t* rest = payload + 4 + label_len;
    uint8_t kind = rest[0];
    if (kind > static_cast<uint8_t>(LossKind::kZcdp)) {
      return Corrupt(path, offset,
                     StrFormat("unknown loss kind %u", unsigned(kind)));
    }
    WalCharge charge;
    charge.label.assign(reinterpret_cast<const char*>(payload + 4), label_len);
    charge.loss.kind = static_cast<LossKind>(kind);
    charge.loss.epsilon = GetF64(rest + 1);
    charge.loss.delta = GetF64(rest + 9);
    charge.loss.rho = GetF64(rest + 17);
    charge.committed = false;
    charge.lsn = lsn;
    intent_index_by_order->push_back(recovery->charges.size());
    recovery->charges.push_back(std::move(charge));
    return Status::Ok();
  }
  if (type == kCommitRecord) {
    if (len != 8) return Corrupt(path, offset, "commit payload length mismatch");
    uint64_t intent_lsn = GetU64(payload);
    for (size_t i : *intent_index_by_order) {
      WalCharge& charge = recovery->charges[i];
      if (charge.lsn == intent_lsn) {
        if (charge.committed) {
          return Corrupt(path, offset,
                         StrFormat("duplicate commit for intent LSN %llu",
                                   static_cast<unsigned long long>(intent_lsn)));
        }
        charge.committed = true;
        return Status::Ok();
      }
    }
    return Corrupt(path, offset,
                   StrFormat("commit for unknown intent LSN %llu",
                             static_cast<unsigned long long>(intent_lsn)));
  }
  return Corrupt(path, offset, StrFormat("unknown record type %u",
                                         unsigned(type)));
}

}  // namespace

Result<WalRecovery> ReplayBudgetWal(const std::string& path) {
  WalRecovery recovery;
  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return recovery;  // first boot
    return ErrnoStatus("open", path);
  }
  std::vector<uint8_t> log;
  {
    struct stat st{};
    if (fstat(fd, &st) != 0) {
      Status status = ErrnoStatus("fstat", path);
      close(fd);
      return status;
    }
    log.resize(static_cast<size_t>(st.st_size));
    size_t done = 0;
    while (done < log.size()) {
      ssize_t n = read(fd, log.data() + done, log.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        Status status = ErrnoStatus("read", path);
        close(fd);
        return status;
      }
      if (n == 0) break;  // concurrent truncation; treat the rest as torn
      done += static_cast<size_t>(n);
    }
    log.resize(done);
  }
  close(fd);

  std::vector<size_t> intents;
  uint64_t last_lsn = 0;
  size_t offset = 0;
  while (offset < log.size()) {
    const size_t remaining = log.size() - offset;
    // An incomplete record can only be the torn tail of a crashed append.
    if (remaining < kRecordHeaderBytes) break;
    const uint8_t* rec = log.data() + offset;
    const uint32_t crc = GetU32(rec);
    const uint32_t payload_len = GetU32(rec + 4);
    if (remaining - kRecordHeaderBytes < payload_len) break;  // torn tail
    const size_t body_bytes = 9 + static_cast<size_t>(payload_len);
    if (crc != Crc32c(rec + 8, body_bytes)) {
      // A checksum-failed FINAL record is a torn tail (the crash landed
      // mid-payload after the length made it down). The same damage with
      // valid records after it is corruption, not a crash artifact.
      if (remaining == kRecordHeaderBytes + payload_len) break;
      return Corrupt(path, offset, "record checksum mismatch mid-log");
    }
    const uint64_t lsn = GetU64(rec + 8);
    const uint8_t type = rec[16];
    if (type == kIntentRecord) {
      if (lsn != last_lsn + 1) {
        return Corrupt(path, offset,
                       StrFormat("intent LSN %llu breaks the sequence "
                                 "(expected %llu)",
                                 static_cast<unsigned long long>(lsn),
                                 static_cast<unsigned long long>(last_lsn + 1)));
      }
      last_lsn = lsn;
    } else if (lsn <= last_lsn && type == kCommitRecord) {
      // Commits reuse their intent's LSN; they must not run ahead.
    } else if (type == kCommitRecord) {
      return Corrupt(path, offset, "commit LSN runs ahead of intents");
    }
    DPSP_RETURN_IF_ERROR(ApplyRecord(path, offset, lsn, type, rec + 17,
                                     payload_len, &recovery, &intents));
    ++recovery.records;
    offset += kRecordHeaderBytes + payload_len;
  }
  recovery.discarded_tail_bytes = log.size() - offset;
  recovery.valid_bytes = offset;
  recovery.next_lsn = last_lsn + 1;
  return recovery;
}

Status ApplyWalRecovery(const WalRecovery& recovery, ReleaseContext& ctx) {
  for (const WalCharge& charge : recovery.charges) {
    // Committed or not: an unresolved intent may have released output
    // before the crash, so it is charged (never resurrected).
    DPSP_RETURN_IF_ERROR(ctx.accountant().Record(charge.label, charge.loss));
  }
  return Status::Ok();
}

Result<std::unique_ptr<BudgetWal>> BudgetWal::Open(const std::string& path,
                                                   uint64_t next_lsn) {
  if (next_lsn == 0) {
    return Status::InvalidArgument("WAL LSNs start at 1");
  }
  int fd = open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  return std::unique_ptr<BudgetWal>(new BudgetWal(fd, next_lsn));
}

BudgetWal::~BudgetWal() {
  if (fd_ >= 0) close(fd_);
}

Status BudgetWal::AppendRecord(uint8_t type,
                               const std::vector<uint8_t>& payload,
                               uint64_t* lsn_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t lsn = type == kIntentRecord ? next_lsn_ : *lsn_out;
  std::vector<uint8_t> record;
  record.reserve(kRecordHeaderBytes + payload.size());
  PutU32(&record, 0);  // crc placeholder
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU64(&record, lsn);
  record.push_back(type);
  record.insert(record.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32c(record.data() + 8, record.size() - 8);
  record[0] = uint8_t(crc);
  record[1] = uint8_t(crc >> 8);
  record[2] = uint8_t(crc >> 16);
  record[3] = uint8_t(crc >> 24);

  size_t done = 0;
  while (done < record.size()) {
    ssize_t n = write(fd_, record.data() + done, record.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("budget WAL append: %s", std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  if (fdatasync(fd_) != 0) {
    return Status::Internal(
        StrFormat("budget WAL fdatasync: %s", std::strerror(errno)));
  }
  if (type == kIntentRecord) {
    *lsn_out = lsn;
    ++next_lsn_;
  }
  return Status::Ok();
}

Result<uint64_t> BudgetWal::AppendIntent(std::string_view label,
                                         const PrivacyLoss& loss) {
  DPSP_RETURN_IF_ERROR(EvalFailpoint(failpoints::kWalBeforeIntent));
  std::vector<uint8_t> payload;
  payload.reserve(4 + label.size() + 25);
  PutU32(&payload, static_cast<uint32_t>(label.size()));
  payload.insert(payload.end(), label.begin(), label.end());
  payload.push_back(static_cast<uint8_t>(loss.kind));
  PutF64(&payload, loss.epsilon);
  PutF64(&payload, loss.delta);
  PutF64(&payload, loss.rho);
  uint64_t lsn = 0;
  DPSP_RETURN_IF_ERROR(AppendRecord(kIntentRecord, payload, &lsn));
  DPSP_RETURN_IF_ERROR(EvalFailpoint(failpoints::kWalAfterIntent));
  return lsn;
}

Status BudgetWal::AppendCommit(uint64_t intent_lsn) {
  DPSP_RETURN_IF_ERROR(EvalFailpoint(failpoints::kWalBeforeCommit));
  std::vector<uint8_t> payload;
  PutU64(&payload, intent_lsn);
  uint64_t lsn = intent_lsn;
  DPSP_RETURN_IF_ERROR(AppendRecord(kCommitRecord, payload, &lsn));
  return EvalFailpoint(failpoints::kWalAfterCommit);
}

}  // namespace store
}  // namespace dpsp
