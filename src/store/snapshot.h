// Versioned, checksummed snapshot container for released oracle state.
//
// A snapshot is one file holding labeled byte sections (the output of
// DistanceOracle::SaveReleasedState plus a store-level meta section):
//
//   [ 64-byte header | section payloads, each 64-byte aligned | table ]
//
//   header  (64 bytes, little-endian):
//     u64 magic "DPSPSNP1"   u32 format_version (=2)   u32 num_sections
//     u64 table_offset       u64 table_bytes
//     u32 table_crc32c       u64 epoch_lsn (v2)
//     u32 header_crc32c (over the first 44 bytes)
//     16 zero pad bytes
//   (format v1 had no epoch_lsn: header_crc32c sat at offset 36 over the
//   first 36 bytes. Readers accept both; v1 snapshots read as epoch 0.)
//   table entry (variable, little-endian), num_sections times:
//     u32 label_len   label bytes
//     u64 payload_offset   u64 payload_bytes   u32 payload_crc32c
//
// Payload offsets are 64-byte aligned so a mapped section of doubles is
// cache-line aligned — the same guarantee AlignedVector gives the in-memory
// released buffers, which lets loaders hand mapped spans straight to the
// unpack helpers. Every region is covered by a CRC32C: the header protects
// the table location, the table CRC protects the entries, and each payload
// carries its own checksum, all verified eagerly at Open so a reader never
// serves bytes it has not validated.
//
// Durability: WriteSnapshot writes `path + ".tmp"`, fsyncs it, renames it
// over `path`, and fsyncs the directory — a crash at any point leaves
// either the old complete file or the new complete file, never a torn one.
// Stray .tmp files are dead partial writes; recovery ignores and removes
// them.

#ifndef DPSP_STORE_SNAPSHOT_H_
#define DPSP_STORE_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/distance_oracle.h"

namespace dpsp {
namespace store {

inline constexpr uint64_t kSnapshotMagic = 0x31504E5350535044ULL;  // DPSPSNP1
inline constexpr uint32_t kSnapshotFormatVersion = 2;
/// Oldest format this build still reads (v1 lacked the epoch LSN).
inline constexpr uint32_t kMinSnapshotFormatVersion = 1;

/// Atomically writes `sections` as a snapshot at `path` (temp file +
/// fsync + rename + directory fsync). Section labels must be non-empty
/// and unique. `epoch_lsn` stamps the replication epoch the image
/// corresponds to (0 for a standalone curator's releases).
Status WriteSnapshot(const std::string& path,
                     std::span<const ReleasedSection> sections,
                     uint64_t epoch_lsn = 0);

/// Maps a snapshot file read-only and validates every checksum eagerly.
/// sections() are zero-copy views into the mapping, valid while the
/// reader lives. Movable, not copyable.
class SnapshotReader {
 public:
  /// NotFound when the file does not exist; InvalidArgument for any
  /// malformed or corrupt content (bad magic/version, truncation, lying
  /// lengths, checksum mismatch) — corruption is always a typed error,
  /// never a crash or a silently partial read.
  static Result<SnapshotReader> Open(const std::string& path);

  SnapshotReader(SnapshotReader&& other) noexcept { *this = std::move(other); }
  SnapshotReader& operator=(SnapshotReader&& other) noexcept;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;
  ~SnapshotReader();

  std::span<const ReleasedSectionView> sections() const { return sections_; }

  /// The replication epoch stamped on the file (0 for format-v1 files and
  /// standalone curators).
  uint64_t epoch_lsn() const { return epoch_lsn_; }

  /// The section labeled `label`, or nullptr.
  const ReleasedSectionView* Find(std::string_view label) const;

 private:
  SnapshotReader() = default;

  void* map_ = nullptr;
  size_t map_bytes_ = 0;
  uint64_t epoch_lsn_ = 0;
  std::vector<ReleasedSectionView> sections_;
};

}  // namespace store
}  // namespace dpsp

#endif  // DPSP_STORE_SNAPSHOT_H_
