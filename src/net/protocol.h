// The length-prefixed binary wire protocol the query server and client
// speak — one frame per request or response over a TCP stream.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic 0x44505350 ("DPSP")
//   4       2     protocol version (kProtocolVersion)
//   6       2     message type (MessageType)
//   8       4     body size in bytes
//   12      ...   body (per-type encoding below)
//
// Bodies:
//   ReleaseRequest   str workload, str mechanism, str handle_name
//   ReleaseResponse  u32 handle_id, f64 epsilon, f64 delta, f64 wall_ms
//   QueryRequest     u32 handle_id, u32 num_pairs, num_pairs x (i32 u, i32 v)
//   QueryResponse    u32 num_pairs, num_pairs x f64 distance
//   StatsRequest     (empty)
//   StatsResponse    6 x u64 counters, u32 open_handles (ServerStats order);
//                    since v2, followed by the accounting extension:
//                    u16 policy (AccountingPolicy), f64 spent_epsilon,
//                    f64 spent_delta, f64 remaining_epsilon,
//                    f64 remaining_delta (+inf when no total budget);
//                    since v4, followed by the recovery extension:
//                    u32 warm_restart (0/1), u32 recovered_handles,
//                    u64 recovered_charges
//   UpdateRequest    u32 handle_id, u32 num_deltas,
//                    num_deltas x (i32 edge, f64 new_weight)   [since v3]
//   UpdateResponse   f64 charged_epsilon, f64 charged_delta,
//                    f64 remaining_epsilon, f64 remaining_delta,
//                    u32 dirty_blocks, f64 wall_ms             [since v3]
//   ReplicaSubscribe u64 last_epoch_lsn, str replica_name      [since v5]
//   SnapshotChunk    u32 handle_id, u64 epoch_lsn, str handle_name,
//                    str mechanism, str workload, u32 num_sections,
//                    num_sections x (str label, u64 bytes_len, raw bytes,
//                    u32 crc32c)                               [since v5]
//   DeltaFrame       u32 handle_id, u64 epoch_lsn, u32 num_patches,
//                    num_patches x (str label, u64 section_bytes,
//                    u32 post_crc32c, u32 num_ranges,
//                    num_ranges x (u64 offset, u64 len, raw bytes))
//                                                              [since v5]
//   ReplicaStats     u16 role (NodeRole), u64 last_epoch_lsn,
//                    u64 queries_served, u64 pairs_served      [since v5]
//   Error            u16 kind (ErrorKind), u16 status code (StatusCode),
//                    str message
//
// Versioning: v2 added the StatsResponse accounting extension; v3 added
// the UpdateWeights exchange (incremental weight-update epochs against an
// updatable release) and the kUnsupported error kind; v4 added the
// StatsResponse recovery extension (whether the server warm-restarted
// from a persistence directory and what it recovered); v5 added the
// replication exchange (ReplicaSubscribe / SnapshotChunk / DeltaFrame /
// ReplicaStats, spoken on a coordinator's replication listener) and the
// StatsResponse cluster extension (node role, last applied epoch LSN,
// replica fan-out and lag). Each bump is backward compatible in both
// directions of a rolling upgrade where servers are upgraded first:
//   * decode: ReadFrame accepts any version in [kMinProtocolVersion,
//     kProtocolVersion] and reports the peer's version on the Frame;
//     DecodeServerStats treats a body that ends after the v1 fields as a
//     v1 peer (has_accounting stays false).
//   * encode: the server echoes each REQUEST's version on its responses
//     (a v1 client never sees a v2+ header, whose equality check it would
//     reject) and encodes the v1 stats body for v1 peers.
//   * v3 requests from older peers: a server answers an UpdateRequest
//     stamped v1/v2 with a typed kMalformed error instead of acting on a
//     frame the peer's own protocol does not define.
// A v3 client against a not-yet-upgraded server still fails at the old
// server's version check — upgrade servers before clients.
//
// Strings are u32 length + raw bytes (no terminator). Every decoder
// validates length prefixes against the remaining body and rejects
// trailing bytes, so a malformed or truncated frame is a typed kMalformed
// error, never a crash. The error frame is "typed": `kind` tells clients
// WHY mechanically (budget exhausted vs. overloaded vs. unknown handle)
// while the embedded status code/message reproduce the server-side Status
// so Client can surface the same Result the in-process call would return.

#ifndef DPSP_NET_PROTOCOL_H_
#define DPSP_NET_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/distance_oracle.h"
#include "net/socket.h"
#include "store/snapshot_delta.h"

namespace dpsp {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x44505350u;  // "DPSP"
inline constexpr uint16_t kProtocolVersion = 5;
/// Oldest peer version this build still decodes (v1 lacked the
/// StatsResponse accounting extension, v2 the UpdateWeights exchange,
/// v3 the StatsResponse recovery extension, v4 the replication exchange
/// and the StatsResponse cluster extension; everything else is
/// identical).
inline constexpr uint16_t kMinProtocolVersion = 1;
/// First version whose StatsResponse carries the recovery extension.
inline constexpr uint16_t kRecoveryProtocolVersion = 4;
/// First version that defines the UpdateWeights exchange.
inline constexpr uint16_t kUpdateProtocolVersion = 3;
/// First version that defines the replication exchange and the
/// StatsResponse cluster extension.
inline constexpr uint16_t kReplicationProtocolVersion = 5;
/// Frames above this body size are rejected before allocation: 1M pairs.
inline constexpr uint32_t kMaxBodyBytes = 16u << 20;
/// Body-size ceiling on a replication stream, where one SnapshotChunk
/// carries a whole released image (ReadFrame callers on that stream pass
/// this instead of kMaxBodyBytes).
inline constexpr uint32_t kMaxReplicationBodyBytes = 256u << 20;

enum class MessageType : uint16_t {
  kReleaseRequest = 1,
  kReleaseResponse = 2,
  kQueryRequest = 3,
  kQueryResponse = 4,
  kStatsRequest = 5,
  kStatsResponse = 6,
  kError = 7,
  kUpdateRequest = 8,       // since v3
  kUpdateResponse = 9,      // since v3
  kReplicaSubscribe = 10,   // since v5
  kSnapshotChunk = 11,      // since v5
  kDeltaFrame = 12,         // since v5
  kReplicaStats = 13,       // since v5
};

/// Where a node sits in the replicated read tier (Stats v5 / the
/// ReplicaStats role field).
enum class NodeRole : uint16_t {
  /// A single node doing both releases and queries (no cluster).
  kStandalone = 0,
  /// The budget holder: the only node that executes releases/updates.
  kCoordinator = 1,
  /// A read replica: serves queries from replicated images, holds no
  /// budget, refuses releases/updates with kUnsupported.
  kReplica = 2,
};

const char* NodeRoleName(NodeRole role);

/// Machine-readable reason an Error frame was sent. The admission
/// controller's two rejection paths get distinct kinds so clients can
/// back off (kOverloaded: retry later) or stop (kBudgetExhausted: no
/// retry will ever succeed).
enum class ErrorKind : uint16_t {
  kMalformed = 0,
  kNotFound = 1,
  kBudgetExhausted = 2,
  kOverloaded = 3,
  kTooLarge = 4,
  kInternal = 5,
  /// The addressed release exists but does not support the requested
  /// operation (an UpdateRequest against a build-once mechanism). Since
  /// v3; older peers decode it as kInternal.
  kUnsupported = 6,
};

const char* ErrorKindName(ErrorKind kind);

/// One decoded frame.
struct Frame {
  MessageType type = MessageType::kError;
  /// The protocol version the peer stamped on the header; responders echo
  /// it so older peers never see a newer header.
  uint16_t version = kProtocolVersion;
  std::vector<uint8_t> body;
};

/// Writes one frame (header + body) at `version` (the responder passes
/// the request's version through).
Status WriteFrame(Socket& socket, MessageType type,
                  std::span<const uint8_t> body,
                  uint16_t version = kProtocolVersion);

/// Reads one frame, validating magic, version, and the body-size ceiling.
/// A clean EOF before the header surfaces as kNotFound (peer hung up).
Result<Frame> ReadFrame(Socket& socket, uint32_t max_body_bytes = kMaxBodyBytes);

// ------------------------------------------------------------- messages --

struct ReleaseRequest {
  /// Which loaded workload (graph + private weights) to release over.
  std::string workload;
  /// Registry name of the mechanism to build.
  std::string mechanism;
  /// Client-chosen name for the release; re-releasing an existing name is
  /// refused (a release is a budget spend, never silently repeated).
  std::string handle_name;
};

/// What the server returns for a granted release.
struct ReleaseInfo {
  uint32_t handle_id = 0;
  double epsilon = 0.0;
  double delta = 0.0;
  double wall_ms = 0.0;
};

struct QueryRequest {
  uint32_t handle_id = 0;
  std::vector<VertexPair> pairs;
};

/// One incremental weight-update epoch against a released handle
/// (protocol v3). The deltas are the continual-release drift: edge ids
/// into the workload's public topology plus their new private weights.
struct UpdateRequest {
  uint32_t handle_id = 0;
  std::vector<EdgeWeightDelta> deltas;
};

/// What the server returns for an applied update epoch: the partial-
/// release loss actually charged plus the ledger's remaining headroom, so
/// a remote updater can pace its epochs without a stats round trip.
struct UpdateInfo {
  double charged_epsilon = 0.0;
  double charged_delta = 0.0;
  double remaining_epsilon = 0.0;
  double remaining_delta = 0.0;
  /// Noisy values the epoch redrew (dirty dyadic blocks + scalars).
  uint32_t dirty_blocks = 0;
  double wall_ms = 0.0;
};

/// Server-side counters, exposed over StatsRequest for monitoring and the
/// load generator's sanity checks. Since protocol v2 the frame also
/// carries the budget position under the server's active accounting
/// policy (dp/accountant.h), so remote clients can pace their releases
/// without a server-side round trip per attempt.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t queries_served = 0;
  uint64_t pairs_served = 0;
  uint64_t releases_granted = 0;
  uint64_t budget_rejected = 0;
  uint64_t overload_rejected = 0;
  uint32_t open_handles = 0;

  /// False when decoded from a v1 peer (the fields below are defaults).
  /// Not on the wire; set by the decoder.
  bool has_accounting = false;
  /// The server ledger's AccountingPolicy, as its wire value.
  uint16_t accounting_policy = 0;
  /// The policy-certified total spent so far (ReleaseContext::SpentTotal).
  double spent_epsilon = 0.0;
  double spent_delta = 0.0;
  /// Headroom under the server's total budget before admission refuses
  /// (ReleaseContext::RemainingBudget); +infinity when none is installed.
  /// Derived from the admission rule's tightest sound bound, so
  /// spent + remaining may exceed the budget on ledgers where the
  /// reported total is looser than what admission certifies.
  double remaining_epsilon = 0.0;
  double remaining_delta = 0.0;

  /// False when decoded from a pre-v4 peer (the fields below are
  /// defaults). Not on the wire; set by the decoder.
  bool has_recovery = false;
  /// True when the server recovered state from a persistence directory at
  /// Start (ledger replayed from the WAL and/or snapshots reloaded),
  /// false for a fresh boot — a monitoring client's recovered-vs-fresh
  /// signal.
  bool warm_restart = false;
  /// Handles reloaded from snapshots at Start.
  uint32_t recovered_handles = 0;
  /// Budget charges replayed from the WAL at Start (intents; uncommitted
  /// ones count — intent-without-commit is spent).
  uint64_t recovered_charges = 0;

  /// False when decoded from a pre-v5 peer (the fields below are
  /// defaults). Not on the wire; set by the decoder.
  bool has_cluster = false;
  /// The node's NodeRole, as its wire value.
  uint16_t role = 0;
  /// Highest replication epoch this node has applied (a coordinator: the
  /// epoch it last assigned; a replica: the epoch it last installed).
  uint64_t last_epoch_lsn = 0;
  /// Coordinator only: replicas currently subscribed.
  uint32_t num_replicas = 0;
  /// Epochs behind: a coordinator reports its lag to the slowest
  /// subscribed replica; a replica reports how far it trails the
  /// coordinator epoch it last heard of.
  uint64_t replica_lag = 0;
  /// Coordinator only: queries/pairs served across subscribed replicas,
  /// summed from their ReplicaStats acks (the read tier's aggregate
  /// throughput next to the coordinator's own counters).
  uint64_t replica_queries_served = 0;
  uint64_t replica_pairs_served = 0;
};

// --------------------------------------------------- replication frames --

/// A replica's opening frame on the coordinator's replication listener.
struct ReplicaSubscribe {
  /// Highest epoch the replica has already applied; 0 subscribes from
  /// scratch. The coordinator replies with whatever closes the gap: base
  /// snapshot chunks + delta replay, or just the missed deltas.
  uint64_t last_epoch_lsn = 0;
  /// Operator-visible name for logs and lag reports.
  std::string replica_name;
};

/// One handle's complete released image: the PR 7 snapshot sections with
/// a per-section CRC32C the installer must verify before materializing.
struct SnapshotChunk {
  uint32_t handle_id = 0;
  uint64_t epoch_lsn = 0;
  std::string handle_name;
  std::string mechanism;
  std::string workload;
  std::vector<ReleasedSection> sections;
  /// Parallel to `sections`. The encoder recomputes these from the bytes;
  /// the decoder returns what the wire carried, so an installer comparing
  /// them against freshly computed CRCs catches in-flight corruption.
  std::vector<uint32_t> section_crcs;
};

/// One update epoch as byte-range patches against the previous image
/// (store/snapshot_delta.h) — only the dirty dyadic blocks travel.
struct DeltaFrame {
  uint32_t handle_id = 0;
  uint64_t epoch_lsn = 0;
  std::vector<store::SectionPatch> patches;
};

/// Bidirectional progress frame: a replica acks every applied epoch with
/// its role + serve counters (the coordinator's lag tracking and stats
/// aggregation input); the coordinator sends one after catch-up with its
/// own LSN so the replica knows the target it is converging to.
struct ReplicaStatsFrame {
  uint16_t role = 0;  // NodeRole wire value
  uint64_t last_epoch_lsn = 0;
  uint64_t queries_served = 0;
  uint64_t pairs_served = 0;
};

/// A decoded Error frame.
struct WireError {
  ErrorKind kind = ErrorKind::kInternal;
  StatusCode code = StatusCode::kInternal;
  std::string message;

  /// The server-side Status this error reproduces.
  Status ToStatus() const;
};

std::vector<uint8_t> EncodeReleaseRequest(const ReleaseRequest& request);
Result<ReleaseRequest> DecodeReleaseRequest(std::span<const uint8_t> body);

std::vector<uint8_t> EncodeReleaseInfo(const ReleaseInfo& info);
Result<ReleaseInfo> DecodeReleaseInfo(std::span<const uint8_t> body);

std::vector<uint8_t> EncodeQueryRequest(uint32_t handle_id,
                                        std::span<const VertexPair> pairs);
Result<QueryRequest> DecodeQueryRequest(std::span<const uint8_t> body);

std::vector<uint8_t> EncodeQueryResponse(std::span<const double> distances);
Result<std::vector<double>> DecodeQueryResponse(std::span<const uint8_t> body);

std::vector<uint8_t> EncodeUpdateRequest(uint32_t handle_id,
                                         std::span<const EdgeWeightDelta> deltas);
Result<UpdateRequest> DecodeUpdateRequest(std::span<const uint8_t> body);

std::vector<uint8_t> EncodeUpdateInfo(const UpdateInfo& info);
Result<UpdateInfo> DecodeUpdateInfo(std::span<const uint8_t> body);

/// Encodes the v1 counter fields, plus the accounting extension when
/// `version` >= 2 (v1 peers get the body their decoder expects).
std::vector<uint8_t> EncodeServerStats(const ServerStats& stats,
                                       uint16_t version = kProtocolVersion);
Result<ServerStats> DecodeServerStats(std::span<const uint8_t> body);

std::vector<uint8_t> EncodeError(ErrorKind kind, const Status& status);
Result<WireError> DecodeError(std::span<const uint8_t> body);

std::vector<uint8_t> EncodeReplicaSubscribe(const ReplicaSubscribe& sub);
Result<ReplicaSubscribe> DecodeReplicaSubscribe(std::span<const uint8_t> body);

/// Encodes the chunk, recomputing each section's CRC32C from its bytes
/// (the `section_crcs` field on the argument is ignored).
std::vector<uint8_t> EncodeSnapshotChunk(const SnapshotChunk& chunk);
Result<SnapshotChunk> DecodeSnapshotChunk(std::span<const uint8_t> body);

std::vector<uint8_t> EncodeDeltaFrame(const DeltaFrame& frame);
Result<DeltaFrame> DecodeDeltaFrame(std::span<const uint8_t> body);

std::vector<uint8_t> EncodeReplicaStatsFrame(const ReplicaStatsFrame& stats);
Result<ReplicaStatsFrame> DecodeReplicaStatsFrame(
    std::span<const uint8_t> body);

}  // namespace net
}  // namespace dpsp

#endif  // DPSP_NET_PROTOCOL_H_
