// The network query-server front end: a multi-threaded TCP server that
// loads graph workloads, releases distance oracles through the
// OracleRegistry + ReleaseContext pipeline, and serves distance batches by
// fanning each QueryRequest into the sharded serve::BatchExecutor.
//
// Admission control is budget-driven, mirroring the paper's serving
// asymmetry: a RELEASE is a privacy spend, so release requests pass
// through the ReleaseContext budget check and an exhausted budget is a
// typed kBudgetExhausted rejection BEFORE any construction work runs; a
// QUERY is free post-processing of an already-released structure, so
// query requests are only subject to queue-depth backpressure (a bounded
// in-flight gauge) and oversized-batch limits — the server sheds load with
// typed kOverloaded errors instead of queueing unboundedly. An UPDATE
// (protocol v3) sits in between: a partial re-release of one handle's
// dirty blocks, budget-checked like a release (at its dirty-fraction
// price) and applied under the handle's writer lock so concurrent query
// batches never observe a half-updated structure. Updates are
// handle-scoped: they mutate the addressed release, not the workload
// table (which stays the load-time snapshot other releases build from).
//
// Threading model: one acceptor thread polls the listener; each accepted
// connection gets a reader/writer thread running the frame dispatch loop.
// Releases are serialized on the single ReleaseContext ledger (its Rng is
// one stream); queries run concurrently — oracle query methods are const
// and concurrency-safe by the DistanceOracle contract, and the handle
// table hands out shared_ptrs so a handle stays alive for the duration of
// any in-flight batch.

// Replica mode (protocol v5): a QueryServer constructed WITHOUT a
// ReleaseContext is a read replica. It holds no ledger, no accountant,
// and no noise stream — it cannot release or update even by accident;
// both paths answer kUnsupported. Its handle table is fed by
// cluster::Replica installing images the coordinator shipped, and its
// query path is byte-for-byte the standalone one, so replicated answers
// are bit-identical to the coordinator's.

#ifndef DPSP_NET_SERVER_H_
#define DPSP_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/oracle_registry.h"
#include "dp/release_context.h"
#include "graph/graph.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "serve/batch_executor.h"
#include "store/oracle_store.h"

namespace dpsp {
namespace net {

struct QueryServerOptions {
  /// IPv4 address to bind. Loopback by default: exposing a private-data
  /// server beyond the host is a deployment decision, not a default.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start.
  uint16_t port = 0;
  /// Concurrent connections; further accepts are rejected kOverloaded.
  int max_connections = 64;
  /// Queue-depth backpressure: query batches executing at once. Requests
  /// beyond this are rejected kOverloaded (clients retry; the server never
  /// queues unboundedly). 0 derives 4x the hardware concurrency; negative
  /// is drain (lame-duck) mode — every query is shed, releases still run.
  int max_inflight_queries = 0;
  /// Largest pair count in one QueryRequest; larger is a kTooLarge error
  /// (clients split batches instead of the server buffering hugely).
  uint32_t max_pairs_per_query = 1u << 20;
  /// Admission pacing: sustained pairs-per-second ceiling on the query
  /// path (0 = unpaced). Batches over the rate are DELAYED, never shed —
  /// this is the per-node capacity model for a replicated read tier,
  /// where aggregate admitted throughput is endpoint count x this rate.
  /// Orthogonal to max_inflight_queries, which sheds bursts.
  double max_query_pairs_per_sec = 0.0;
  /// Sharding configuration for the per-request BatchExecutor fan-out.
  BatchExecutorOptions executor;
  /// Directory for crash-safe state (created if absent). When set, Start
  /// replays the budget WAL into the ledger (intent-without-commit counts
  /// as spent), reloads every oracle snapshot against its workload, and
  /// installs the WAL hook so each further charge is durably logged
  /// before the ledger moves; each granted release (and each applied
  /// update epoch) is snapshotted atomically. Empty disables persistence.
  std::string persistence_dir;
  /// A connection that sends no frame for this long is closed, so
  /// abandoned peers cannot pin connection slots forever. 0 disables
  /// (the pre-timeout behavior: wait on the peer indefinitely).
  int idle_timeout_ms = 60000;
};

/// The serving front end over one ReleaseContext ledger.
class QueryServer {
 public:
  /// Ordered feed of every granted release and applied update epoch, as
  /// the released image it produced. Called under the ledger lock, so
  /// invocations arrive in epoch-LSN order — exactly the stream replicas
  /// must apply to stay bit-identical. Oracles that do not implement
  /// SaveReleasedState produce no call (they cannot be replicated).
  class ReplicationObserver {
   public:
    virtual ~ReplicationObserver() = default;
    virtual void OnHandleImage(uint32_t handle_id, uint64_t epoch_lsn,
                               bool is_update, const std::string& name,
                               const std::string& mechanism,
                               const std::string& workload,
                               std::vector<ReleasedSection> sections) = 0;
  };

  /// The context is the server's single budget ledger: install a total
  /// budget (ReleaseContext::SetTotalBudget) before handing it over to
  /// make the admission controller enforce a hard release ceiling.
  QueryServer(QueryServerOptions options, ReleaseContext context);

  /// Replica mode: no ledger, no accountant, no releases. Handles arrive
  /// through InstallReplicaHandle (driven by cluster::Replica); release
  /// and update requests answer kUnsupported. Replicas never persist —
  /// they resync from the coordinator — so persistence_dir must be empty.
  explicit QueryServer(QueryServerOptions options);

  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Registers a named workload (public topology + private weights)
  /// clients can release oracles over. Call before Start; fails on a
  /// duplicate name or a weight/edge count mismatch.
  Status AddWorkload(std::string name, Graph graph, EdgeWeights weights);

  /// Binds the listener and starts the acceptor thread.
  Status Start();

  /// Stops accepting, shuts down live connections, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_.load(); }

  /// The bound port (useful with options.port = 0).
  uint16_t port() const { return listener_.port(); }

  /// Counter snapshot. The wire-level StatsResponse additionally carries
  /// the ledger's budget position (active AccountingPolicy, policy-
  /// certified spend, remaining headroom), served from a snapshot
  /// refreshed after every committed release so stats polls never wait
  /// out an in-flight build.
  ServerStats stats() const;

  /// The ledger after whatever the remote clients did — telemetry rows,
  /// composed totals. Not synchronized with in-flight releases; read it
  /// when the server is quiesced (tests) or treat it as a snapshot.
  /// Budget-holding servers only; a replica has no ledger to return.
  const ReleaseContext& context() const { return *context_; }

  /// True when constructed without a ledger (the replica-mode ctor).
  bool replica_mode() const { return !context_.has_value(); }

  /// This node's place in the read tier, for Stats v5. Defaults to
  /// kStandalone (kReplica for the replica ctor); cluster::Coordinator
  /// promotes its server to kCoordinator.
  void set_role(NodeRole role) { role_.store(role); }
  NodeRole role() const { return role_.load(); }

  /// Highest replication epoch this node has assigned (coordinator) or
  /// applied (replica). Monotone; 0 before any release.
  uint64_t last_epoch_lsn() const { return epoch_lsn_.load(); }

  /// Raises last_epoch_lsn to `lsn` (monotone max — replay of an older
  /// frame never moves it backwards). The replica install path.
  void BumpEpochLsn(uint64_t lsn);

  /// Subscribes `observer` to the release/update image stream (nullptr
  /// unsubscribes). The pointer is non-owning and must outlive the
  /// server or be cleared first.
  void SetReplicationObserver(ReplicationObserver* observer);

  /// Installs `fn` to fill the Stats v5 cluster aggregation fields
  /// (num_replicas, replica_lag, replica serve counters) on every stats
  /// snapshot — the coordinator/replica objects own that state.
  using ClusterStatsFn = std::function<void(ServerStats&)>;
  void SetClusterStatsProvider(ClusterStatsFn fn);

  /// Publishes (or atomically replaces) a replicated handle at
  /// `handle_id`, mirroring the coordinator's dense id assignment. Gaps
  /// up to the id are padded with empty entries that answer kNotFound.
  /// The swap happens under the handle-table lock only: in-flight query
  /// batches keep the old oracle alive through their shared_ptr, and the
  /// new oracle is never mutated in place, so no writer lock is needed.
  Status InstallReplicaHandle(uint32_t handle_id, const std::string& name,
                              const std::string& mechanism,
                              const std::string& workload,
                              std::shared_ptr<DistanceOracle> oracle);

  /// The named workload's topology/weights, or nullptr. Workloads are
  /// fixed after Start, so the returned pointers stay valid while the
  /// server lives (the replica materialization path reads them).
  const Graph* WorkloadGraph(const std::string& name) const;
  const EdgeWeights* WorkloadWeights(const std::string& name) const;

  /// The executor handles are placed/queried through (NUMA placement for
  /// freshly installed replica images).
  const BatchExecutor& executor() const { return executor_; }

 private:
  struct Workload {
    std::string name;
    Graph graph;
    EdgeWeights weights;
  };
  /// One granted release: the handle id is the index into this table.
  /// `guard` arbitrates queries (shared) against weight-update epochs
  /// (exclusive): the DistanceOracle contract only makes const queries
  /// concurrency-safe BETWEEN updates, never during one.
  struct HandleEntry {
    std::string name;
    std::string mechanism;
    /// Name of the workload the oracle was released over (snapshot meta).
    std::string workload;
    std::shared_ptr<DistanceOracle> oracle;
    std::shared_ptr<std::shared_mutex> guard;
    /// Where this handle's snapshot lives; empty when persistence is off
    /// (or the mechanism does not implement SaveReleasedState).
    std::string snapshot_path;
  };
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ReapFinishedConnections();
  /// Warm-restart recovery against options_.persistence_dir: replays the
  /// budget WAL through the accountant, reloads every handle snapshot
  /// against its named workload, removes stray .tmp files, and opens the
  /// WAL for appending with the durability hook installed. Runs once,
  /// before the listener binds; a corrupt snapshot or mid-file WAL damage
  /// fails Start loudly rather than serving silently smaller state.
  Status RecoverPersistentState();
  /// Resolves a handle id to its oracle + guard (both null when the id
  /// is unknown) — the one lookup the query and update paths share.
  void LookupHandle(uint32_t handle_id,
                    std::shared_ptr<DistanceOracle>* oracle,
                    std::shared_ptr<std::shared_mutex>* guard) const;
  /// Recomputes the cached budget position from the ledger. Call with
  /// ledger_mutex_ held (or before Start): HandleStats serves the cache
  /// so a stats poll never waits out a multi-second release build.
  void RefreshBudgetSnapshot();
  void ServeConnection(Connection* connection);
  /// Dispatches one frame; returns false when the connection must close
  /// (framing is broken and the stream cannot be resynchronized). Every
  /// response (errors included) echoes the request frame's protocol
  /// version so a v1 peer never sees a v2 header.
  bool DispatchFrame(Socket& socket, const Frame& frame);
  void HandleRelease(Socket& socket, std::span<const uint8_t> body,
                     uint16_t version);
  void HandleQuery(Socket& socket, std::span<const uint8_t> body,
                   uint16_t version);
  /// Sleeps the connection thread until the batch's admission slot under
  /// options_.max_query_pairs_per_sec (no-op when unpaced).
  void PaceQueryAdmission(size_t pairs);
  /// One incremental update epoch (v3): validated, budget-checked at its
  /// dirty-fraction price, applied under the handle's writer lock and the
  /// ledger lock (one noise stream), answered with the charged loss and
  /// remaining headroom.
  void HandleUpdate(Socket& socket, std::span<const uint8_t> body,
                    uint16_t version);
  void HandleStats(Socket& socket, uint16_t version);
  void SendError(Socket& socket, ErrorKind kind, const Status& status,
                 uint16_t version = kProtocolVersion);
  /// Extracts the oracle's released image and hands it to the observer
  /// (no-op without an observer or for non-persisting oracles). Call
  /// under ledger_mutex_ so the stream arrives in LSN order.
  void NotifyReplication(uint32_t handle_id, uint64_t epoch_lsn,
                         bool is_update, const std::string& name,
                         const std::string& mechanism,
                         const std::string& workload,
                         const DistanceOracle& oracle);

  const QueryServerOptions options_;
  const int inflight_limit_;

  // Releases serialize on this mutex: one ledger, one noise stream.
  std::mutex ledger_mutex_;
  // Absent in replica mode: a replica holds no budget, draws no noise.
  std::optional<ReleaseContext> context_;

  // The ledger's budget position, snapshotted after every committed
  // release. ledger_mutex_ is held across whole oracle builds, so stats
  // must not read context_ directly — they serve this cache instead.
  mutable std::mutex budget_mutex_;
  PrivacyParams spent_snapshot_;
  PrivacyParams remaining_snapshot_;

  std::vector<Workload> workloads_;  // fixed after Start

  mutable std::mutex handles_mutex_;
  std::vector<HandleEntry> handles_;

  // Durability state (null / zero when persistence is off). The WAL and
  // hook are created once by RecoverPersistentState and live until the
  // server is destroyed — the ledger's hook pointer is non-owning, so
  // order matters: wal_hook_ must outlive the last charge.
  std::unique_ptr<store::BudgetWal> wal_;
  std::unique_ptr<store::WalDurabilityHook> wal_hook_;
  /// Next handle-%06u.snap file index: past the largest recovered index,
  /// so a recovery with gaps never reuses a live handle's file.
  uint32_t next_snapshot_file_ = 0;
  // Set once during Start, read-only after (no lock needed).
  bool warm_restart_ = false;
  uint32_t recovered_handles_ = 0;
  uint64_t recovered_charges_ = 0;

  // Replication epoch clock: bumped under the ledger lock for every
  // granted release and applied update epoch; replicas set it from the
  // frames they install. Atomic so stats polls read it lock-free.
  std::atomic<uint64_t> epoch_lsn_{0};
  std::atomic<NodeRole> role_{NodeRole::kStandalone};
  // Set under ledger_mutex_, read under it (the notify path).
  ReplicationObserver* replication_observer_ = nullptr;
  // Fills the Stats v5 aggregation fields; guarded by its own mutex (the
  // provider is installed after Start, when stats may already be polled).
  mutable std::mutex cluster_stats_mutex_;
  ClusterStatsFn cluster_stats_fn_;

  BatchExecutor executor_;
  std::atomic<int> inflight_queries_{0};

  // Admission pacer: virtual start time of the next admitted batch.
  // Meaningful only when options_.max_query_pairs_per_sec > 0.
  std::mutex pace_mutex_;
  std::chrono::steady_clock::time_point pace_next_{};

  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  struct Counters {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> queries_served{0};
    std::atomic<uint64_t> pairs_served{0};
    std::atomic<uint64_t> releases_granted{0};
    std::atomic<uint64_t> budget_rejected{0};
    std::atomic<uint64_t> overload_rejected{0};
  };
  mutable Counters counters_;
};

}  // namespace net
}  // namespace dpsp

#endif  // DPSP_NET_SERVER_H_
