// Client library for the query-server wire protocol: one blocking
// request/response connection. Errors the server sends as typed Error
// frames surface as the same Status the in-process call would have
// returned (budget exhaustion is FailedPrecondition, backpressure is
// Unavailable), with the machine-readable ErrorKind retained in
// last_error() so callers can branch on WHY without parsing messages —
// kOverloaded means back off and retry, kBudgetExhausted means no retry
// will ever succeed.
//
// A Client is one connection and is NOT thread-safe; concurrent load uses
// one Client per thread (see bench/bench_server_loadgen.cc).

#ifndef DPSP_NET_CLIENT_H_
#define DPSP_NET_CLIENT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/distance_oracle.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace dpsp {
namespace net {

/// One server address a client can talk to.
struct Endpoint {
  std::string address;
  uint16_t port = 0;
};

/// Per-connection reliability knobs.
struct ClientOptions {
  /// Per-request deadline on waiting for the response, in milliseconds;
  /// <= 0 waits forever (the pre-deadline behavior). A timed-out request
  /// fails with kUnavailable and BREAKS the connection — a late response
  /// would desynchronize the framing, so the socket is shut down and
  /// every later call fails fast with FailedPrecondition.
  int request_timeout_ms = 0;

  /// Retries for requests the server refused with ErrorKind::kOverloaded
  /// (transient backpressure, explicitly safe to repeat). 0 disables.
  /// Nothing else is ever retried: kBudgetExhausted can never succeed,
  /// and a timeout/transport error leaves the request's fate unknown —
  /// blindly re-sending a Release or UpdateWeights could double-spend
  /// budget.
  int max_retries = 0;

  /// Capped exponential backoff between kOverloaded retries:
  /// initial * 2^attempt, clamped to max.
  int initial_backoff_ms = 10;
  int max_backoff_ms = 1000;

  /// Additional endpoints (read replicas) to fail over to when the
  /// current node is unusable. Failover reconnects round-robin and
  /// re-issues the request, so it only happens when re-issuing is safe:
  ///  - a typed kOverloaded rejection (after max_retries on the current
  ///    node) fails over for ANY request — the server refused before
  ///    doing work;
  ///  - a transport error or request timeout fails over only for
  ///    idempotent requests (Query, Stats) — a Release or UpdateWeights
  ///    whose fate is unknown is never re-sent (double-spend risk).
  /// Other typed errors (kBudgetExhausted above all) never fail over:
  /// every node shares one coordinator ledger, so the answer is the same
  /// everywhere.
  std::vector<Endpoint> failover_endpoints;
};

class Client {
 public:
  /// Connects to a running QueryServer.
  static Result<Client> Connect(const std::string& address, uint16_t port,
                                ClientOptions options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Asks the server to release `mechanism` over `workload` under the
  /// client-chosen `handle_name`. On success the returned handle id
  /// addresses the release in Query calls. Over-budget requests fail with
  /// FailedPrecondition and last_error()->kind == kBudgetExhausted.
  Result<ReleaseInfo> Release(const std::string& workload,
                              const std::string& mechanism,
                              const std::string& handle_name);

  /// Answers a batch of (u, v) pairs through a released handle. Results
  /// arrive in input order, bit-identical to a direct BatchExecutor run
  /// against the same release.
  Result<std::vector<double>> Query(uint32_t handle_id,
                                    std::span<const VertexPair> pairs);

  /// Applies one incremental weight-update epoch (protocol v3) to an
  /// updatable released handle. The response carries the partial-release
  /// loss actually charged and the ledger's remaining headroom. A build-
  /// once mechanism fails with FailedPrecondition and last_error()->kind
  /// == kUnsupported; an exhausted budget with kBudgetExhausted.
  Result<UpdateInfo> UpdateWeights(uint32_t handle_id,
                                   std::span<const EdgeWeightDelta> deltas);

  /// Server-side counters snapshot.
  Result<ServerStats> Stats();

  /// The last typed Error frame this connection received, if any. Reset
  /// by the next successful round trip.
  const std::optional<WireError>& last_error() const { return last_error_; }

  /// kOverloaded retries performed over the connection's lifetime.
  uint64_t retries_performed() const { return retries_performed_; }

  /// Reconnects to another endpoint performed over the client's lifetime.
  uint64_t failovers_performed() const { return failovers_performed_; }

  /// True once a request deadline expired: the stream may hold a stale
  /// response, so the connection is unusable. An idempotent request with
  /// failover endpoints configured recovers by reconnecting; anything
  /// else fails fast with FailedPrecondition.
  bool broken() const { return broken_; }

 private:
  Client(Socket socket, ClientOptions options)
      : socket_(std::move(socket)), options_(std::move(options)) {}

  /// Sends one request frame and reads the response, honoring the
  /// per-request deadline and the kOverloaded retry policy; an Error
  /// frame is decoded, stashed in last_error_, and returned as its
  /// Status.
  Result<Frame> RoundTrip(MessageType request_type,
                          std::span<const uint8_t> body,
                          MessageType expected_response);

  /// One send + deadline-bounded receive.
  Result<Frame> Attempt(MessageType request_type,
                        std::span<const uint8_t> body);

  /// Reconnects round-robin to the next reachable endpoint (skipping the
  /// current one), replacing the socket and clearing broken_. Fails with
  /// kUnavailable when no other endpoint answers.
  Status FailOver();

  Socket socket_;
  ClientOptions options_;
  /// The endpoint list: the address Connect() dialed first, then every
  /// options_.failover_endpoints entry. current_endpoint_ indexes it.
  std::vector<Endpoint> endpoints_;
  size_t current_endpoint_ = 0;
  std::optional<WireError> last_error_;
  uint64_t retries_performed_ = 0;
  uint64_t failovers_performed_ = 0;
  bool broken_ = false;
};

}  // namespace net
}  // namespace dpsp

#endif  // DPSP_NET_CLIENT_H_
