// Client library for the query-server wire protocol: one blocking
// request/response connection. Errors the server sends as typed Error
// frames surface as the same Status the in-process call would have
// returned (budget exhaustion is FailedPrecondition, backpressure is
// Unavailable), with the machine-readable ErrorKind retained in
// last_error() so callers can branch on WHY without parsing messages —
// kOverloaded means back off and retry, kBudgetExhausted means no retry
// will ever succeed.
//
// A Client is one connection and is NOT thread-safe; concurrent load uses
// one Client per thread (see bench/bench_server_loadgen.cc).

#ifndef DPSP_NET_CLIENT_H_
#define DPSP_NET_CLIENT_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/distance_oracle.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace dpsp {
namespace net {

class Client {
 public:
  /// Connects to a running QueryServer.
  static Result<Client> Connect(const std::string& address, uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Asks the server to release `mechanism` over `workload` under the
  /// client-chosen `handle_name`. On success the returned handle id
  /// addresses the release in Query calls. Over-budget requests fail with
  /// FailedPrecondition and last_error()->kind == kBudgetExhausted.
  Result<ReleaseInfo> Release(const std::string& workload,
                              const std::string& mechanism,
                              const std::string& handle_name);

  /// Answers a batch of (u, v) pairs through a released handle. Results
  /// arrive in input order, bit-identical to a direct BatchExecutor run
  /// against the same release.
  Result<std::vector<double>> Query(uint32_t handle_id,
                                    std::span<const VertexPair> pairs);

  /// Applies one incremental weight-update epoch (protocol v3) to an
  /// updatable released handle. The response carries the partial-release
  /// loss actually charged and the ledger's remaining headroom. A build-
  /// once mechanism fails with FailedPrecondition and last_error()->kind
  /// == kUnsupported; an exhausted budget with kBudgetExhausted.
  Result<UpdateInfo> UpdateWeights(uint32_t handle_id,
                                   std::span<const EdgeWeightDelta> deltas);

  /// Server-side counters snapshot.
  Result<ServerStats> Stats();

  /// The last typed Error frame this connection received, if any. Reset
  /// by the next successful round trip.
  const std::optional<WireError>& last_error() const { return last_error_; }

 private:
  explicit Client(Socket socket) : socket_(std::move(socket)) {}

  /// Sends one request frame and reads the response; an Error frame is
  /// decoded, stashed in last_error_, and returned as its Status.
  Result<Frame> RoundTrip(MessageType request_type,
                          std::span<const uint8_t> body,
                          MessageType expected_response);

  Socket socket_;
  std::optional<WireError> last_error_;
};

}  // namespace net
}  // namespace dpsp

#endif  // DPSP_NET_CLIENT_H_
