// Thin RAII wrappers over POSIX TCP sockets — the only file in the tree
// that talks to the BSD socket API. Everything above (protocol framing,
// the query server, the client library) works in terms of Socket's
// whole-buffer ReadAll/WriteAll and Listener's poll-based Accept, so the
// transport could be swapped (unix sockets, TLS) behind this header.
//
// Error handling follows the library convention: no exceptions, fallible
// calls return Status/Result. EOF mid-read is an error (the framing layer
// always knows how many bytes it expects); a clean EOF before the first
// byte of a frame is reported as kNotFound so connection loops can tell
// "peer hung up" from "peer sent garbage".

#ifndef DPSP_NET_SOCKET_H_
#define DPSP_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace dpsp {
namespace net {

/// A connected TCP stream socket. Movable, not copyable: one object owns
/// the file descriptor and closes it on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `n` bytes (looping over short writes). SIGPIPE is
  /// suppressed; a peer reset surfaces as a Status.
  Status WriteAll(const void* data, size_t n);

  /// Reads exactly `n` bytes (looping over short reads). EOF before the
  /// first byte returns kNotFound ("connection closed"); EOF mid-buffer
  /// returns kInternal (truncated stream).
  Status ReadAll(void* data, size_t n);

  /// Waits until the socket is readable (data or EOF pending, so the next
  /// ReadAll will not block). kUnavailable on timeout. `timeout_ms` < 0
  /// waits forever; signal interruptions restart the wait against a
  /// monotonic deadline, they never shorten or fail it.
  Status WaitReadable(int timeout_ms);

  /// Arms a kernel receive timeout (SO_RCVTIMEO): a ReadAll that stalls
  /// mid-buffer for longer than `timeout_ms` fails with kUnavailable
  /// instead of blocking forever. WaitReadable only guards the *first*
  /// byte of a frame; this guards every byte after it, so a peer that
  /// sends a frame header and then wedges (a torn replication frame)
  /// cannot hang the reader. `timeout_ms` <= 0 disables the timeout.
  Status SetRecvTimeout(int timeout_ms);

  /// Shuts down both directions without closing the fd: unblocks a peer
  /// (or another thread of this process) blocked in ReadAll.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to the loopback or a given IPv4 address.
class Listener {
 public:
  /// Binds and listens on `address:port` (IPv4 dotted quad; "0.0.0.0" for
  /// all interfaces). Port 0 picks an ephemeral port; read it back with
  /// port(). SO_REUSEADDR is set so restarting a server does not wait out
  /// TIME_WAIT.
  static Result<Listener> Bind(const std::string& address, uint16_t port,
                               int backlog = 128);

  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// The bound port (resolves port 0 to the kernel-assigned one).
  uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` for a connection and accepts it. Returns
  /// kUnavailable on timeout so accept loops can poll a stop flag between
  /// waits instead of blocking forever. TCP_NODELAY is set on the
  /// accepted socket (request/response protocol; Nagle only adds latency).
  Result<Socket> Accept(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to `address:port` (IPv4 dotted quad, or "localhost"). Sets
/// TCP_NODELAY on the connection.
Result<Socket> Connect(const std::string& address, uint16_t port);

}  // namespace net
}  // namespace dpsp

#endif  // DPSP_NET_SOCKET_H_
