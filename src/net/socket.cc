#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <utility>

#include "common/table.h"

namespace dpsp {
namespace net {

namespace {

Status ErrnoStatus(const char* op) {
  return Status::Internal(StrFormat("%s failed: %s", op, strerror(errno)));
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best-effort: a socket without TCP_NODELAY is slower, not broken.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// poll() restarted across EINTR against a monotonic deadline: a signal
// (SIGCHLD from a forked worker, a profiler tick) must neither fail the
// wait nor stretch it. Returns poll()'s result with errno preserved on a
// real failure. `timeout_ms` < 0 waits forever.
int PollRetryEintr(pollfd* pfd, int timeout_ms) {
  if (timeout_ms < 0) {
    for (;;) {
      int ready = poll(pfd, 1, -1);
      if (ready >= 0 || errno != EINTR) return ready;
    }
  }
  timespec start;
  clock_gettime(CLOCK_MONOTONIC, &start);
  int remaining_ms = timeout_ms;
  for (;;) {
    int ready = poll(pfd, 1, remaining_ms);
    if (ready >= 0 || errno != EINTR) return ready;
    timespec now;
    clock_gettime(CLOCK_MONOTONIC, &now);
    long elapsed_ms = (now.tv_sec - start.tv_sec) * 1000 +
                      (now.tv_nsec - start.tv_nsec) / 1000000;
    remaining_ms = timeout_ms - static_cast<int>(elapsed_ms);
    if (remaining_ms <= 0) return 0;  // deadline passed during the signal
  }
}

Result<sockaddr_in> ParseAddress(const std::string& address, uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* host = address == "localhost" ? "127.0.0.1" : address.c_str();
  if (inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: '" + address + "'");
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::WriteAll(const void* data, size_t n) {
  if (!valid()) return Status::FailedPrecondition("write on closed socket");
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a reset peer must surface as a Status, not SIGPIPE.
    ssize_t written = send(fd_, p, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
  return Status::Ok();
}

Status Socket::ReadAll(void* data, size_t n) {
  if (!valid()) return Status::FailedPrecondition("read on closed socket");
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < n) {
    ssize_t r = recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired (see SetRecvTimeout).
        return Status::Unavailable("recv timed out mid-message");
      }
      return ErrnoStatus("recv");
    }
    if (r == 0) {
      if (got == 0) return Status::NotFound("connection closed by peer");
      return Status::Internal("connection closed mid-message");
    }
    got += static_cast<size_t>(r);
  }
  return Status::Ok();
}

Status Socket::SetRecvTimeout(int timeout_ms) {
  if (!valid()) {
    return Status::FailedPrecondition("set timeout on closed socket");
  }
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
  }
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)");
  }
  return Status::Ok();
}

Status Socket::WaitReadable(int timeout_ms) {
  if (!valid()) return Status::FailedPrecondition("wait on closed socket");
  pollfd pfd{fd_, POLLIN, 0};
  int ready = PollRetryEintr(&pfd, timeout_ms);
  if (ready < 0) return ErrnoStatus("poll");
  if (ready == 0) {
    return Status::Unavailable(
        StrFormat("read timed out after %d ms", timeout_ms));
  }
  return Status::Ok();
}

void Socket::ShutdownBoth() {
  if (valid()) shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (valid()) {
    close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Listener> Listener::Bind(const std::string& address, uint16_t port,
                                int backlog) {
  DPSP_ASSIGN_OR_RETURN(sockaddr_in addr, ParseAddress(address, port));
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Listener listener;
  listener.fd_ = fd;  // owned from here; error paths close via destructor
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  if (listen(fd, backlog) != 0) return ErrnoStatus("listen");
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<Socket> Listener::Accept(int timeout_ms) {
  if (!valid()) return Status::FailedPrecondition("accept on closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  // EINTR restarts the poll against the deadline instead of surfacing as
  // a spurious kUnavailable: a server that forks workers (and so takes
  // SIGCHLD) was previously seeing phantom "accept timed out" results.
  int ready = PollRetryEintr(&pfd, timeout_ms);
  if (ready < 0) return ErrnoStatus("poll");
  if (ready == 0) return Status::Unavailable("accept timed out");
  int fd = accept(fd_, nullptr, nullptr);
  if (fd < 0) return ErrnoStatus("accept");
  SetNoDelay(fd);
  return Socket(fd);
}

void Listener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Connect(const std::string& address, uint16_t port) {
  DPSP_ASSIGN_OR_RETURN(sockaddr_in addr, ParseAddress(address, port));
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket sock(fd);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("connect");
  }
  SetNoDelay(fd);
  return sock;
}

}  // namespace net
}  // namespace dpsp
