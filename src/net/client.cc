#include "net/client.h"

#include <utility>

#include "common/table.h"

namespace dpsp {
namespace net {

Result<Client> Client::Connect(const std::string& address, uint16_t port) {
  DPSP_ASSIGN_OR_RETURN(Socket socket, net::Connect(address, port));
  return Client(std::move(socket));
}

Result<Frame> Client::RoundTrip(MessageType request_type,
                                std::span<const uint8_t> body,
                                MessageType expected_response) {
  DPSP_RETURN_IF_ERROR(WriteFrame(socket_, request_type, body));
  DPSP_ASSIGN_OR_RETURN(Frame response, ReadFrame(socket_));
  if (response.type == MessageType::kError) {
    DPSP_ASSIGN_OR_RETURN(WireError error, DecodeError(response.body));
    Status status = error.ToStatus();
    last_error_ = std::move(error);
    return status;
  }
  if (response.type != expected_response) {
    return Status::Internal(
        StrFormat("unexpected response type %u (wanted %u)",
                  static_cast<unsigned>(response.type),
                  static_cast<unsigned>(expected_response)));
  }
  last_error_.reset();
  return response;
}

Result<ReleaseInfo> Client::Release(const std::string& workload,
                                    const std::string& mechanism,
                                    const std::string& handle_name) {
  ReleaseRequest request{workload, mechanism, handle_name};
  std::vector<uint8_t> body = EncodeReleaseRequest(request);
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kReleaseRequest, body,
                MessageType::kReleaseResponse));
  return DecodeReleaseInfo(response.body);
}

Result<std::vector<double>> Client::Query(uint32_t handle_id,
                                          std::span<const VertexPair> pairs) {
  std::vector<uint8_t> body = EncodeQueryRequest(handle_id, pairs);
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kQueryRequest, body,
                MessageType::kQueryResponse));
  DPSP_ASSIGN_OR_RETURN(std::vector<double> distances,
                        DecodeQueryResponse(response.body));
  if (distances.size() != pairs.size()) {
    return Status::Internal(
        StrFormat("server answered %zu distances for %zu pairs",
                  distances.size(), pairs.size()));
  }
  return distances;
}

Result<UpdateInfo> Client::UpdateWeights(
    uint32_t handle_id, std::span<const EdgeWeightDelta> deltas) {
  std::vector<uint8_t> body = EncodeUpdateRequest(handle_id, deltas);
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kUpdateRequest, body,
                MessageType::kUpdateResponse));
  return DecodeUpdateInfo(response.body);
}

Result<ServerStats> Client::Stats() {
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kStatsRequest, {},
                MessageType::kStatsResponse));
  return DecodeServerStats(response.body);
}

}  // namespace net
}  // namespace dpsp
