#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/table.h"

namespace dpsp {
namespace net {

Result<Client> Client::Connect(const std::string& address, uint16_t port,
                               ClientOptions options) {
  DPSP_ASSIGN_OR_RETURN(Socket socket, net::Connect(address, port));
  return Client(std::move(socket), options);
}

Result<Frame> Client::Attempt(MessageType request_type,
                              std::span<const uint8_t> body) {
  DPSP_RETURN_IF_ERROR(WriteFrame(socket_, request_type, body));
  if (options_.request_timeout_ms > 0) {
    Status readable = socket_.WaitReadable(options_.request_timeout_ms);
    if (!readable.ok()) {
      // A response may still arrive later and desynchronize the framing;
      // the connection is done. Shut it down so the server's handler
      // unblocks too.
      broken_ = true;
      socket_.ShutdownBoth();
      return readable;
    }
  }
  return ReadFrame(socket_);
}

Result<Frame> Client::RoundTrip(MessageType request_type,
                                std::span<const uint8_t> body,
                                MessageType expected_response) {
  if (broken_) {
    return Status::FailedPrecondition(
        "connection broken by an earlier request timeout; reconnect");
  }
  for (int attempt = 0;; ++attempt) {
    Result<Frame> attempted = Attempt(request_type, body);
    if (!attempted.ok()) return attempted.status();
    Frame response = std::move(attempted).value();
    if (response.type == MessageType::kError) {
      DPSP_ASSIGN_OR_RETURN(WireError error, DecodeError(response.body));
      Status status = error.ToStatus();
      bool retryable = error.kind == ErrorKind::kOverloaded;
      last_error_ = std::move(error);
      // Only kOverloaded is safe to repeat: the server refused before
      // doing any work. In particular kBudgetExhausted is terminal — a
      // retry can never succeed and must surface immediately.
      if (!retryable || attempt >= options_.max_retries) return status;
      int backoff = options_.initial_backoff_ms;
      for (int i = 0; i < attempt && backoff < options_.max_backoff_ms; ++i) {
        backoff *= 2;
      }
      backoff = std::clamp(backoff, 0, options_.max_backoff_ms);
      ++retries_performed_;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      continue;
    }
    if (response.type != expected_response) {
      return Status::Internal(
          StrFormat("unexpected response type %u (wanted %u)",
                    static_cast<unsigned>(response.type),
                    static_cast<unsigned>(expected_response)));
    }
    last_error_.reset();
    return response;
  }
}

Result<ReleaseInfo> Client::Release(const std::string& workload,
                                    const std::string& mechanism,
                                    const std::string& handle_name) {
  ReleaseRequest request{workload, mechanism, handle_name};
  std::vector<uint8_t> body = EncodeReleaseRequest(request);
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kReleaseRequest, body,
                MessageType::kReleaseResponse));
  return DecodeReleaseInfo(response.body);
}

Result<std::vector<double>> Client::Query(uint32_t handle_id,
                                          std::span<const VertexPair> pairs) {
  std::vector<uint8_t> body = EncodeQueryRequest(handle_id, pairs);
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kQueryRequest, body,
                MessageType::kQueryResponse));
  DPSP_ASSIGN_OR_RETURN(std::vector<double> distances,
                        DecodeQueryResponse(response.body));
  if (distances.size() != pairs.size()) {
    return Status::Internal(
        StrFormat("server answered %zu distances for %zu pairs",
                  distances.size(), pairs.size()));
  }
  return distances;
}

Result<UpdateInfo> Client::UpdateWeights(
    uint32_t handle_id, std::span<const EdgeWeightDelta> deltas) {
  std::vector<uint8_t> body = EncodeUpdateRequest(handle_id, deltas);
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kUpdateRequest, body,
                MessageType::kUpdateResponse));
  return DecodeUpdateInfo(response.body);
}

Result<ServerStats> Client::Stats() {
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kStatsRequest, {},
                MessageType::kStatsResponse));
  return DecodeServerStats(response.body);
}

}  // namespace net
}  // namespace dpsp
