#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/table.h"

namespace dpsp {
namespace net {

Result<Client> Client::Connect(const std::string& address, uint16_t port,
                               ClientOptions options) {
  DPSP_ASSIGN_OR_RETURN(Socket socket, net::Connect(address, port));
  Client client(std::move(socket), std::move(options));
  client.endpoints_.push_back(Endpoint{address, port});
  client.endpoints_.insert(client.endpoints_.end(),
                           client.options_.failover_endpoints.begin(),
                           client.options_.failover_endpoints.end());
  return client;
}

Status Client::FailOver() {
  for (size_t i = 1; i < endpoints_.size(); ++i) {
    size_t next = (current_endpoint_ + i) % endpoints_.size();
    Result<Socket> socket =
        net::Connect(endpoints_[next].address, endpoints_[next].port);
    if (!socket.ok()) continue;
    socket_ = std::move(socket).value();
    current_endpoint_ = next;
    broken_ = false;
    ++failovers_performed_;
    return Status::Ok();
  }
  return Status::Unavailable("no failover endpoint reachable");
}

Result<Frame> Client::Attempt(MessageType request_type,
                              std::span<const uint8_t> body) {
  DPSP_RETURN_IF_ERROR(WriteFrame(socket_, request_type, body));
  if (options_.request_timeout_ms > 0) {
    Status readable = socket_.WaitReadable(options_.request_timeout_ms);
    if (!readable.ok()) {
      // A response may still arrive later and desynchronize the framing;
      // the connection is done. Shut it down so the server's handler
      // unblocks too.
      broken_ = true;
      socket_.ShutdownBoth();
      return readable;
    }
  }
  return ReadFrame(socket_);
}

Result<Frame> Client::RoundTrip(MessageType request_type,
                                std::span<const uint8_t> body,
                                MessageType expected_response) {
  // Re-issuing after a transport failure is only safe when the request
  // cannot change server state: a replayed Query or Stats at worst does
  // redundant reads, a replayed Release or UpdateWeights could spend
  // budget twice.
  const bool idempotent = request_type == MessageType::kQueryRequest ||
                          request_type == MessageType::kStatsRequest;
  // Each request gets one sweep over the other endpoints at most, so a
  // fully-down cluster fails instead of spinning.
  size_t failovers_left =
      endpoints_.size() > 1 ? endpoints_.size() - 1 : 0;
  if (broken_) {
    if (!idempotent || failovers_left == 0 || !FailOver().ok()) {
      return Status::FailedPrecondition(
          "connection broken by an earlier request timeout; reconnect");
    }
    --failovers_left;
  }
  for (int attempt = 0;; ++attempt) {
    Result<Frame> attempted = Attempt(request_type, body);
    if (!attempted.ok()) {
      // Transport failure or deadline: the request's fate on this node is
      // unknown. Idempotent requests move to the next endpoint; anything
      // else surfaces the error untouched.
      if (idempotent && failovers_left > 0 && FailOver().ok()) {
        --failovers_left;
        attempt = -1;  // fresh retry budget on the new node
        continue;
      }
      return attempted.status();
    }
    Frame response = std::move(attempted).value();
    if (response.type == MessageType::kError) {
      DPSP_ASSIGN_OR_RETURN(WireError error, DecodeError(response.body));
      Status status = error.ToStatus();
      bool retryable = error.kind == ErrorKind::kOverloaded;
      last_error_ = std::move(error);
      // Only kOverloaded is safe to repeat: the server refused before
      // doing any work. In particular kBudgetExhausted is terminal — a
      // retry can never succeed and must surface immediately (every node
      // answers for the same coordinator ledger, so no failover either).
      if (!retryable) return status;
      if (attempt >= options_.max_retries) {
        // This node stayed overloaded through the retry budget; since
        // the refusal happened before any work, moving ANY request to a
        // sibling is safe.
        if (failovers_left > 0 && FailOver().ok()) {
          --failovers_left;
          attempt = -1;
          continue;
        }
        return status;
      }
      int backoff = options_.initial_backoff_ms;
      for (int i = 0; i < attempt && backoff < options_.max_backoff_ms; ++i) {
        backoff *= 2;
      }
      backoff = std::clamp(backoff, 0, options_.max_backoff_ms);
      ++retries_performed_;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      continue;
    }
    if (response.type != expected_response) {
      return Status::Internal(
          StrFormat("unexpected response type %u (wanted %u)",
                    static_cast<unsigned>(response.type),
                    static_cast<unsigned>(expected_response)));
    }
    last_error_.reset();
    return response;
  }
}

Result<ReleaseInfo> Client::Release(const std::string& workload,
                                    const std::string& mechanism,
                                    const std::string& handle_name) {
  ReleaseRequest request{workload, mechanism, handle_name};
  std::vector<uint8_t> body = EncodeReleaseRequest(request);
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kReleaseRequest, body,
                MessageType::kReleaseResponse));
  return DecodeReleaseInfo(response.body);
}

Result<std::vector<double>> Client::Query(uint32_t handle_id,
                                          std::span<const VertexPair> pairs) {
  std::vector<uint8_t> body = EncodeQueryRequest(handle_id, pairs);
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kQueryRequest, body,
                MessageType::kQueryResponse));
  DPSP_ASSIGN_OR_RETURN(std::vector<double> distances,
                        DecodeQueryResponse(response.body));
  if (distances.size() != pairs.size()) {
    return Status::Internal(
        StrFormat("server answered %zu distances for %zu pairs",
                  distances.size(), pairs.size()));
  }
  return distances;
}

Result<UpdateInfo> Client::UpdateWeights(
    uint32_t handle_id, std::span<const EdgeWeightDelta> deltas) {
  std::vector<uint8_t> body = EncodeUpdateRequest(handle_id, deltas);
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kUpdateRequest, body,
                MessageType::kUpdateResponse));
  return DecodeUpdateInfo(response.body);
}

Result<ServerStats> Client::Stats() {
  DPSP_ASSIGN_OR_RETURN(
      Frame response,
      RoundTrip(MessageType::kStatsRequest, {},
                MessageType::kStatsResponse));
  return DecodeServerStats(response.body);
}

}  // namespace net
}  // namespace dpsp
