#include "net/server.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "common/table.h"

namespace dpsp {
namespace net {

namespace {

/// RAII slot in the in-flight query gauge; `admitted()` is false when the
/// gauge was already at the limit (the caller sheds the request).
class InflightSlot {
 public:
  InflightSlot(std::atomic<int>* gauge, int limit) : gauge_(gauge) {
    admitted_ = gauge_->fetch_add(1, std::memory_order_acq_rel) < limit;
    if (!admitted_) gauge_->fetch_sub(1, std::memory_order_acq_rel);
  }
  ~InflightSlot() {
    if (admitted_) gauge_->fetch_sub(1, std::memory_order_acq_rel);
  }
  InflightSlot(const InflightSlot&) = delete;
  InflightSlot& operator=(const InflightSlot&) = delete;

  bool admitted() const { return admitted_; }

 private:
  std::atomic<int>* gauge_;
  bool admitted_ = false;
};

int DeriveInflightLimit(int configured) {
  if (configured < 0) return 0;  // drain mode: shed every query
  if (configured > 0) return configured;
  return 4 * static_cast<int>(
                 std::max(1u, std::thread::hardware_concurrency()));
}

/// The error kind a failed release maps to: the budget ceiling is the one
/// FailedPrecondition the release path produces, and it must reach the
/// client as the typed "stop retrying" signal.
ErrorKind ReleaseErrorKind(const Status& status) {
  switch (status.code()) {
    case StatusCode::kFailedPrecondition:
      return ErrorKind::kBudgetExhausted;
    case StatusCode::kNotFound:
      return ErrorKind::kNotFound;
    case StatusCode::kInvalidArgument:
      return ErrorKind::kMalformed;
    default:
      return ErrorKind::kInternal;
  }
}

}  // namespace

QueryServer::QueryServer(QueryServerOptions options, ReleaseContext context)
    : options_(std::move(options)),
      inflight_limit_(DeriveInflightLimit(options_.max_inflight_queries)),
      context_(std::move(context)),
      executor_(options_.executor) {
  RefreshBudgetSnapshot();
}

QueryServer::QueryServer(QueryServerOptions options)
    : options_(std::move(options)),
      inflight_limit_(DeriveInflightLimit(options_.max_inflight_queries)),
      executor_(options_.executor) {
  role_.store(NodeRole::kReplica);
}

void QueryServer::RefreshBudgetSnapshot() {
  if (!context_.has_value()) return;  // replica: no ledger to snapshot
  PrivacyParams spent = context_->SpentTotal();
  PrivacyParams remaining = context_->RemainingBudget();
  std::lock_guard<std::mutex> lock(budget_mutex_);
  spent_snapshot_ = spent;
  remaining_snapshot_ = remaining;
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::AddWorkload(std::string name, Graph graph,
                                EdgeWeights weights) {
  if (running_.load()) {
    return Status::FailedPrecondition(
        "workloads must be added before Start()");
  }
  if (name.empty()) {
    return Status::InvalidArgument("workload name must not be empty");
  }
  for (const Workload& workload : workloads_) {
    if (workload.name == name) {
      return Status::InvalidArgument("workload '" + name +
                                     "' is already loaded");
    }
  }
  if (static_cast<int>(weights.size()) != graph.num_edges()) {
    return Status::InvalidArgument(
        "weight vector length disagrees with the edge count");
  }
  workloads_.push_back({std::move(name), std::move(graph),
                        std::move(weights)});
  return Status::Ok();
}

Status QueryServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server is already running");
  }
  if (replica_mode() && !options_.persistence_dir.empty()) {
    return Status::FailedPrecondition(
        "replicas do not persist (they resync from the coordinator); "
        "unset persistence_dir");
  }
  // Recover BEFORE the listener binds, so a client can never observe the
  // pre-recovery ledger; the wal_ guard makes a Stop/Start cycle skip the
  // replay (the ledger already holds the recovered charges).
  if (!options_.persistence_dir.empty() && wal_ == nullptr) {
    DPSP_RETURN_IF_ERROR(RecoverPersistentState());
  }
  DPSP_ASSIGN_OR_RETURN(
      listener_, Listener::Bind(options_.bind_address, options_.port));
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

Status QueryServer::RecoverPersistentState() {
  const std::string& dir = options_.persistence_dir;
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal(StrFormat("mkdir %s failed: %s", dir.c_str(),
                                      strerror(errno)));
  }
  const std::string wal_path = dir + "/budget.wal";
  DPSP_ASSIGN_OR_RETURN(store::WalRecovery recovery,
                        store::ReplayBudgetWal(wal_path));
  // Every recovered intent is spent — committed or not — so a crash
  // mid-build can only over-count the ledger, never resurrect budget.
  DPSP_RETURN_IF_ERROR(store::ApplyWalRecovery(recovery, *context_));
  recovered_charges_ = recovery.charges.size();
  if (recovery.discarded_tail_bytes > 0) {
    // Drop the torn tail before appending again: new records written
    // after garbage bytes would read as mid-file corruption (a hard
    // error) on the NEXT replay, not a discardable tail.
    if (truncate(wal_path.c_str(),
                 static_cast<off_t>(recovery.valid_bytes)) != 0) {
      return Status::Internal(StrFormat("truncating torn WAL tail: %s",
                                        strerror(errno)));
    }
  }

  // Scan for handle snapshots. Stray .tmp files are dead partial writes
  // (the atomic-rename protocol never publishes them); remove them so
  // they cannot accumulate.
  std::vector<std::string> snapshot_files;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return Status::Internal(StrFormat("opendir %s failed: %s", dir.c_str(),
                                      strerror(errno)));
  }
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      unlink((dir + "/" + name).c_str());
      continue;
    }
    unsigned index = 0;
    if (std::sscanf(name.c_str(), "handle-%u.snap", &index) == 1) {
      snapshot_files.push_back(name);
      next_snapshot_file_ = std::max(next_snapshot_file_, index + 1);
    }
  }
  closedir(d);
  // Sorted order restores handles with the ids they held before the
  // crash (snapshot files are written densely in release order).
  std::sort(snapshot_files.begin(), snapshot_files.end());

  for (const std::string& file : snapshot_files) {
    const std::string path = dir + "/" + file;
    // A corrupt snapshot fails Start loudly: silently skipping it would
    // shift every later handle id and serve smaller state than the
    // operator believes is durable.
    DPSP_ASSIGN_OR_RETURN(store::SnapshotReader reader,
                          store::SnapshotReader::Open(path));
    DPSP_ASSIGN_OR_RETURN(store::OracleSnapshotMeta meta,
                          store::ReadOracleSnapshotMeta(reader));
    const Workload* workload = nullptr;
    for (const Workload& candidate : workloads_) {
      if (candidate.name == meta.workload) workload = &candidate;
    }
    if (workload == nullptr) {
      return Status::FailedPrecondition(StrFormat(
          "snapshot %s was released over workload '%s', which is not "
          "loaded; AddWorkload it before Start",
          path.c_str(), meta.workload.c_str()));
    }
    for (const HandleEntry& handle : handles_) {
      if (handle.name == meta.handle) {
        return Status::FailedPrecondition(StrFormat(
            "snapshot %s duplicates recovered handle '%s'", path.c_str(),
            meta.handle.c_str()));
      }
    }
    DPSP_ASSIGN_OR_RETURN(
        std::unique_ptr<DistanceOracle> oracle,
        store::LoadOracleSnapshot(reader, workload->graph,
                                  workload->weights));
    handles_.push_back({meta.handle, meta.mechanism, workload->name,
                        std::shared_ptr<DistanceOracle>(std::move(oracle)),
                        std::make_shared<std::shared_mutex>(), path});
    // The epoch clock resumes past everything recovered, so post-restart
    // releases stamp fresh LSNs.
    BumpEpochLsn(reader.epoch_lsn());
  }
  recovered_handles_ = static_cast<uint32_t>(snapshot_files.size());
  warm_restart_ = recovery.records > 0 || recovered_handles_ > 0;

  // From here on, every metered charge is intent/commit-logged before the
  // in-memory ledger moves.
  DPSP_ASSIGN_OR_RETURN(wal_, store::BudgetWal::Open(wal_path,
                                                     recovery.next_lsn));
  wal_hook_ = std::make_unique<store::WalDurabilityHook>(wal_.get());
  context_->SetDurabilityHook(wal_hook_.get());
  RefreshBudgetSnapshot();
  return Status::Ok();
}

void QueryServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Unblock every connection thread stuck in ReadFrame, then join. The
  // acceptor is dead, so this thread is the only mutator of the list.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) connection->socket.ShutdownBoth();
  }
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  connections_.clear();
}

ServerStats QueryServer::stats() const {
  ServerStats stats;
  stats.connections_accepted = counters_.connections_accepted.load();
  stats.queries_served = counters_.queries_served.load();
  stats.pairs_served = counters_.pairs_served.load();
  stats.releases_granted = counters_.releases_granted.load();
  stats.budget_rejected = counters_.budget_rejected.load();
  stats.overload_rejected = counters_.overload_rejected.load();
  {
    std::lock_guard<std::mutex> lock(handles_mutex_);
    // Count live handles: a replica's table may hold empty gap entries
    // for ids it has not received yet.
    uint32_t open = 0;
    for (const HandleEntry& handle : handles_) {
      if (handle.oracle != nullptr) ++open;
    }
    stats.open_handles = open;
  }
  stats.has_recovery = true;
  stats.warm_restart = warm_restart_;
  stats.recovered_handles = recovered_handles_;
  stats.recovered_charges = recovered_charges_;
  stats.has_cluster = true;
  stats.role = static_cast<uint16_t>(role_.load());
  stats.last_epoch_lsn = epoch_lsn_.load();
  {
    std::lock_guard<std::mutex> lock(cluster_stats_mutex_);
    if (cluster_stats_fn_) cluster_stats_fn_(stats);
  }
  return stats;
}

void QueryServer::BumpEpochLsn(uint64_t lsn) {
  uint64_t current = epoch_lsn_.load();
  while (lsn > current &&
         !epoch_lsn_.compare_exchange_weak(current, lsn)) {
  }
}

void QueryServer::SetReplicationObserver(ReplicationObserver* observer) {
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  replication_observer_ = observer;
}

void QueryServer::SetClusterStatsProvider(ClusterStatsFn fn) {
  std::lock_guard<std::mutex> lock(cluster_stats_mutex_);
  cluster_stats_fn_ = std::move(fn);
}

void QueryServer::NotifyReplication(uint32_t handle_id, uint64_t epoch_lsn,
                                    bool is_update, const std::string& name,
                                    const std::string& mechanism,
                                    const std::string& workload,
                                    const DistanceOracle& oracle) {
  if (replication_observer_ == nullptr) return;
  std::vector<ReleasedSection> sections;
  // Unimplemented: the mechanism has no released-state serialization, so
  // it cannot be replicated (exactly the handles that also cannot be
  // snapshotted — replicas answer kNotFound for them).
  if (!oracle.SaveReleasedState(&sections).ok()) return;
  replication_observer_->OnHandleImage(handle_id, epoch_lsn, is_update,
                                       name, mechanism, workload,
                                       std::move(sections));
}

Status QueryServer::InstallReplicaHandle(
    uint32_t handle_id, const std::string& name,
    const std::string& mechanism, const std::string& workload,
    std::shared_ptr<DistanceOracle> oracle) {
  if (oracle == nullptr) {
    return Status::InvalidArgument("replica install needs an oracle");
  }
  // A coordinator assigns handle ids densely; a wildly sparse id is a
  // corrupt or hostile stream, not a gap to pad.
  constexpr uint32_t kMaxHandleId = 1u << 20;
  if (handle_id > kMaxHandleId) {
    return Status::OutOfRange(
        StrFormat("replicated handle id %u exceeds the sanity ceiling",
                  handle_id));
  }
  std::lock_guard<std::mutex> lock(handles_mutex_);
  while (handles_.size() <= handle_id) {
    handles_.push_back({"", "", "", nullptr,
                        std::make_shared<std::shared_mutex>(), ""});
  }
  HandleEntry& entry = handles_[handle_id];
  entry.name = name;
  entry.mechanism = mechanism;
  entry.workload = workload;
  // Swap, don't mutate: in-flight batches hold the old oracle via their
  // shared_ptr and finish against a consistent image; new batches pick up
  // the new one on their next LookupHandle.
  entry.oracle = std::move(oracle);
  return Status::Ok();
}

const Graph* QueryServer::WorkloadGraph(const std::string& name) const {
  for (const Workload& workload : workloads_) {
    if (workload.name == name) return &workload.graph;
  }
  return nullptr;
}

const EdgeWeights* QueryServer::WorkloadWeights(
    const std::string& name) const {
  for (const Workload& workload : workloads_) {
    if (workload.name == name) return &workload.weights;
  }
  return nullptr;
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load()) {
    Result<Socket> accepted = listener_.Accept(/*timeout_ms=*/100);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kUnavailable) {
        ReapFinishedConnections();
        continue;  // poll timeout: check the stop flag and wait again
      }
      break;  // listener failed or was closed underneath us
    }
    counters_.connections_accepted.fetch_add(1);
    ReapFinishedConnections();
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      counters_.overload_rejected.fetch_add(1);
      Socket socket = std::move(accepted).value();
      SendError(socket, ErrorKind::kOverloaded,
                Status::Unavailable("connection limit reached, retry later"));
      continue;  // socket closes on scope exit
    }
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(accepted).value();
    Connection* raw = connection.get();
    connections_.push_back(std::move(connection));
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void QueryServer::ReapFinishedConnections() {
  // Move finished connections out under the lock in ONE evaluation of the
  // done flag, then join outside it: re-checking the flag separately for
  // join and erase would let a connection finish in between and be
  // destroyed joinable (std::terminate).
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    auto live = std::partition(
        connections_.begin(), connections_.end(),
        [](const std::unique_ptr<Connection>& connection) {
          return !connection->done.load();
        });
    for (auto it = live; it != connections_.end(); ++it) {
      finished.push_back(std::move(*it));
    }
    connections_.erase(live, connections_.end());
  }
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void QueryServer::ServeConnection(Connection* connection) {
  Socket& socket = connection->socket;
  // The version the peer last spoke; best-effort errors for unreadable
  // frames echo it so an older peer can still decode them. Before the
  // first good frame, guess the OLDEST supported version: this build's
  // decoder accepts the whole range, so a v1-stamped error is readable
  // by every peer, where a v2 stamp would be rejected by a v1 client's
  // equality check.
  uint16_t peer_version = kMinProtocolVersion;
  while (!stopping_.load()) {
    if (options_.idle_timeout_ms > 0) {
      // Idle-connection timeout: a peer that sends nothing for the
      // window is hung up on without an error frame (it is not waiting
      // for one), freeing the connection slot. Stop() still unblocks
      // this wait — its shutdown makes the socket readable (EOF).
      if (!socket.WaitReadable(options_.idle_timeout_ms).ok()) break;
    }
    Result<Frame> frame = ReadFrame(socket);
    if (!frame.ok()) {
      // kNotFound is the peer hanging up cleanly; anything else is a
      // framing failure worth one best-effort typed error before closing
      // (the stream cannot be resynchronized either way).
      if (frame.status().code() != StatusCode::kNotFound &&
          !stopping_.load()) {
        SendError(socket, ErrorKind::kMalformed, frame.status(),
                  peer_version);
      }
      break;
    }
    peer_version = frame->version;
    if (!DispatchFrame(socket, *frame)) break;
  }
  connection->done.store(true);
}

bool QueryServer::DispatchFrame(Socket& socket, const Frame& frame) {
  switch (frame.type) {
    case MessageType::kReleaseRequest:
      HandleRelease(socket, frame.body, frame.version);
      return true;
    case MessageType::kQueryRequest:
      HandleQuery(socket, frame.body, frame.version);
      return true;
    case MessageType::kUpdateRequest:
      HandleUpdate(socket, frame.body, frame.version);
      return true;
    case MessageType::kStatsRequest:
      HandleStats(socket, frame.version);
      return true;
    default:
      SendError(socket, ErrorKind::kMalformed,
                Status::InvalidArgument(
                    "unexpected message type for a request"),
                frame.version);
      return false;
  }
}

void QueryServer::HandleRelease(Socket& socket,
                                std::span<const uint8_t> body,
                                uint16_t version) {
  if (replica_mode()) {
    // Not a budget rejection (budget_rejected stays untouched): this node
    // simply has no ledger. The failover-aware client routes releases to
    // the coordinator.
    SendError(socket, ErrorKind::kUnsupported,
              Status::FailedPrecondition(
                  "this node is a read replica; releases run on the "
                  "coordinator"), version);
    return;
  }
  Result<ReleaseRequest> request = DecodeReleaseRequest(body);
  if (!request.ok()) {
    SendError(socket, ErrorKind::kMalformed, request.status(), version);
    return;
  }
  const Workload* workload = nullptr;
  for (const Workload& candidate : workloads_) {
    if (candidate.name == request->workload) workload = &candidate;
  }
  if (workload == nullptr) {
    SendError(socket, ErrorKind::kNotFound,
              Status::NotFound("no workload loaded under '" +
                               request->workload + "'"), version);
    return;
  }
  const OracleRegistry& registry = OracleRegistry::Global();
  if (!registry.Contains(request->mechanism)) {
    SendError(socket, ErrorKind::kNotFound,
              Status::NotFound("no oracle registered under '" +
                               request->mechanism + "'"), version);
    return;
  }
  if (request->handle_name.empty()) {
    SendError(socket, ErrorKind::kMalformed,
              Status::InvalidArgument("handle name must not be empty"), version);
    return;
  }
  ReleaseInfo info;
  {
    // One ledger, one noise stream: releases serialize here, and the
    // ledger lock also spans the duplicate-name check AND the handle
    // insertion — two concurrent releases of the same name must not both
    // pass the check and double-charge the budget. (handles_mutex_ is
    // only ever taken inside ledger_mutex_ or alone, never the reverse.)
    std::lock_guard<std::mutex> ledger_lock(ledger_mutex_);
    {
      std::lock_guard<std::mutex> lock(handles_mutex_);
      for (const HandleEntry& handle : handles_) {
        if (handle.name == request->handle_name) {
          // A release is a budget spend: silently re-running it on a name
          // collision would double-charge, so the collision is an error.
          SendError(socket, ErrorKind::kMalformed,
                    Status::InvalidArgument("handle '" +
                                            request->handle_name +
                                            "' already exists"), version);
          return;
        }
      }
    }
    // The budget check inside the factory protocol (MeteredBuild) runs
    // BEFORE the build, so an over-budget request is refused without
    // construction cost — that check is the release half of admission
    // control.
    Result<std::unique_ptr<DistanceOracle>> built = registry.Create(
        request->mechanism, workload->graph, workload->weights, *context_);
    if (!built.ok()) {
      if (built.status().code() == StatusCode::kFailedPrecondition) {
        counters_.budget_rejected.fetch_add(1);
      }
      SendError(socket, ReleaseErrorKind(built.status()), built.status(),
                version);
      return;
    }
    if (const ReleaseTelemetry* t = context_->last_telemetry()) {
      info.epsilon = t->epsilon;
      info.delta = t->delta;
      info.wall_ms = t->wall_ms;
    }
    std::shared_ptr<DistanceOracle> oracle(std::move(built).value());
    // Each granted release is one replication epoch (bumped under the
    // ledger lock, so LSNs assign in the same order observers see them).
    const uint64_t epoch_lsn = epoch_lsn_.fetch_add(1) + 1;
    std::string snapshot_path;
    if (wal_ != nullptr) {
      snapshot_path = StrFormat("%s/handle-%06u.snap",
                                options_.persistence_dir.c_str(),
                                next_snapshot_file_++);
    }
    {
      std::lock_guard<std::mutex> lock(handles_mutex_);
      info.handle_id = static_cast<uint32_t>(handles_.size());
      handles_.push_back({request->handle_name, request->mechanism,
                          workload->name, oracle,
                          std::make_shared<std::shared_mutex>(),
                          snapshot_path});
    }
    if (!snapshot_path.empty()) {
      store::OracleSnapshotMeta meta{request->mechanism, workload->name,
                                     request->handle_name};
      Status saved = store::SaveOracleSnapshot(snapshot_path, *oracle, meta,
                                               epoch_lsn);
      if (saved.code() == StatusCode::kUnimplemented) {
        // The mechanism has no released-state serialization: serve it,
        // but it will not survive a restart (its budget charge, already
        // in the WAL, will — conservative).
        std::lock_guard<std::mutex> lock(handles_mutex_);
        handles_.back().snapshot_path.clear();
      } else if (!saved.ok()) {
        // Durability was promised and could not be delivered: withdraw
        // the handle. The budget stays spent (the intent is logged; the
        // noise was drawn) — over-charging is safe, resurrecting is not.
        {
          std::lock_guard<std::mutex> lock(handles_mutex_);
          handles_.pop_back();
        }
        RefreshBudgetSnapshot();
        SendError(socket, ErrorKind::kInternal, saved, version);
        return;
      }
    }
    // Durability first, then replication: the observer ships an image the
    // coordinator has already made crash-safe.
    NotifyReplication(info.handle_id, epoch_lsn, /*is_update=*/false,
                      request->handle_name, request->mechanism,
                      workload->name, *oracle);
    RefreshBudgetSnapshot();  // still under the ledger lock
  }
  counters_.releases_granted.fetch_add(1);
  std::vector<uint8_t> response = EncodeReleaseInfo(info);
  WriteFrame(socket, MessageType::kReleaseResponse, response, version);
}

void QueryServer::LookupHandle(
    uint32_t handle_id, std::shared_ptr<DistanceOracle>* oracle,
    std::shared_ptr<std::shared_mutex>* guard) const {
  std::lock_guard<std::mutex> lock(handles_mutex_);
  if (handle_id < handles_.size()) {
    *oracle = handles_[handle_id].oracle;
    *guard = handles_[handle_id].guard;
  }
}

void QueryServer::HandleQuery(Socket& socket, std::span<const uint8_t> body,
                              uint16_t version) {
  // Queue-depth backpressure first: shedding happens before the body is
  // even decoded, so an overloaded server does the minimum work per
  // rejected request.
  InflightSlot slot(&inflight_queries_, inflight_limit_);
  if (!slot.admitted()) {
    counters_.overload_rejected.fetch_add(1);
    SendError(socket, ErrorKind::kOverloaded,
              Status::Unavailable("query queue depth limit reached, "
                                  "retry later"), version);
    return;
  }
  Result<QueryRequest> request = DecodeQueryRequest(body);
  if (!request.ok()) {
    SendError(socket, ErrorKind::kMalformed, request.status(), version);
    return;
  }
  if (request->pairs.size() > options_.max_pairs_per_query) {
    SendError(socket, ErrorKind::kTooLarge,
              Status::OutOfRange(StrFormat(
                  "batch of %zu pairs exceeds the per-request limit of %u",
                  request->pairs.size(), options_.max_pairs_per_query)), version);
    return;
  }
  // Per-node capacity ceiling: the batch waits for its admission slot
  // (delayed, never shed), so sustained throughput tops out at the
  // configured pairs/sec no matter how hard the closed loop pushes.
  PaceQueryAdmission(request->pairs.size());
  std::shared_ptr<DistanceOracle> oracle;
  std::shared_ptr<std::shared_mutex> guard;
  LookupHandle(request->handle_id, &oracle, &guard);
  if (oracle == nullptr) {
    SendError(socket, ErrorKind::kNotFound,
              Status::NotFound(StrFormat("no released oracle with handle %u",
                                         request->handle_id)), version);
    return;
  }
  // Reader side of the handle guard: any number of query batches run
  // concurrently, but never across an in-flight update epoch.
  std::shared_lock<std::shared_mutex> read_lock(*guard);
  Result<std::vector<double>> distances =
      executor_.Execute(*oracle, request->pairs);
  if (!distances.ok()) {
    // Out-of-range vertices and the like: the client's fault, typed so.
    SendError(socket, ErrorKind::kMalformed, distances.status(), version);
    return;
  }
  counters_.queries_served.fetch_add(1);
  counters_.pairs_served.fetch_add(request->pairs.size());
  std::vector<uint8_t> response = EncodeQueryResponse(*distances);
  WriteFrame(socket, MessageType::kQueryResponse, response, version);
}

void QueryServer::PaceQueryAdmission(size_t pairs) {
  if (options_.max_query_pairs_per_sec <= 0) return;
  // Virtual-clock pacer: each batch reserves pairs/rate seconds behind
  // the previous admission and sleeps until its slot arrives. Admitted
  // starts are therefore spaced at exactly the configured rate; the
  // connection thread blocks, so no retry storm and no shed work.
  std::chrono::steady_clock::time_point slot;
  {
    std::lock_guard<std::mutex> lock(pace_mutex_);
    const auto now = std::chrono::steady_clock::now();
    if (pace_next_ < now) pace_next_ = now;
    slot = pace_next_;
    pace_next_ +=
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                static_cast<double>(pairs) /
                options_.max_query_pairs_per_sec));
  }
  std::this_thread::sleep_until(slot);
}

void QueryServer::HandleUpdate(Socket& socket, std::span<const uint8_t> body,
                               uint16_t version) {
  if (replica_mode()) {
    SendError(socket, ErrorKind::kUnsupported,
              Status::FailedPrecondition(
                  "this node is a read replica; update epochs run on the "
                  "coordinator"), version);
    return;
  }
  if (version < kUpdateProtocolVersion) {
    // The peer's own protocol does not define this exchange; acting on it
    // would be guessing at semantics the peer never agreed to.
    SendError(socket, ErrorKind::kMalformed,
              Status::InvalidArgument(StrFormat(
                  "UpdateWeights requires protocol v%u (peer spoke v%u)",
                  kUpdateProtocolVersion, version)), version);
    return;
  }
  Result<UpdateRequest> request = DecodeUpdateRequest(body);
  if (!request.ok()) {
    SendError(socket, ErrorKind::kMalformed, request.status(), version);
    return;
  }
  if (request->deltas.size() > options_.max_pairs_per_query) {
    SendError(socket, ErrorKind::kTooLarge,
              Status::OutOfRange(StrFormat(
                  "epoch of %zu deltas exceeds the per-request limit of %u",
                  request->deltas.size(), options_.max_pairs_per_query)),
              version);
    return;
  }
  std::shared_ptr<DistanceOracle> oracle;
  std::shared_ptr<std::shared_mutex> guard;
  LookupHandle(request->handle_id, &oracle, &guard);
  if (oracle == nullptr) {
    SendError(socket, ErrorKind::kNotFound,
              Status::NotFound(StrFormat("no released oracle with handle %u",
                                         request->handle_id)), version);
    return;
  }
  UpdatableDistanceOracle* updatable = oracle->AsUpdatable();
  if (updatable == nullptr) {
    SendError(socket, ErrorKind::kUnsupported,
              Status::FailedPrecondition(
                  "release '" + oracle->Name() +
                  "' is build-once: it does not support incremental "
                  "weight updates"), version);
    return;
  }
  UpdateInfo info;
  {
    // Updates serialize with releases on the ledger (one noise stream,
    // one budget) and exclude this handle's queries for the duration of
    // the in-place redraw. Lock order: ledger before handle guard,
    // matching HandleRelease's ledger-then-handles discipline.
    std::lock_guard<std::mutex> ledger_lock(ledger_mutex_);
    std::unique_lock<std::shared_mutex> write_lock(*guard);
    Status applied = updatable->ApplyWeightUpdates(request->deltas,
                                                   *context_);
    if (!applied.ok()) {
      if (applied.code() == StatusCode::kFailedPrecondition) {
        counters_.budget_rejected.fetch_add(1);
      }
      SendError(socket, ReleaseErrorKind(applied), applied, version);
      return;
    }
    const UpdatableDistanceOracle::UpdateStats& stats =
        updatable->last_update();
    info.charged_epsilon = stats.charged_epsilon;
    info.charged_delta = 0.0;  // partial releases charge in pure currency
    info.dirty_blocks = static_cast<uint32_t>(stats.dirty_blocks);
    if (const ReleaseTelemetry* t = context_->last_telemetry();
        t != nullptr && stats.dirty_edges > 0) {
      info.wall_ms = t->wall_ms;
    }
    PrivacyParams remaining = context_->RemainingBudget();
    info.remaining_epsilon = remaining.epsilon;
    info.remaining_delta = remaining.delta;
    RefreshBudgetSnapshot();  // still under the ledger lock
    const uint64_t epoch_lsn = epoch_lsn_.fetch_add(1) + 1;
    std::string snapshot_path;
    store::OracleSnapshotMeta meta;
    {
      std::lock_guard<std::mutex> lock(handles_mutex_);
      const HandleEntry& entry = handles_[request->handle_id];
      snapshot_path = entry.snapshot_path;
      meta = {entry.mechanism, entry.workload, entry.name};
    }
    if (!snapshot_path.empty()) {
      // Rewrite under the write lock so the snapshot is a consistent
      // post-epoch image. Failure is a durability DEGRADATION, not an
      // update failure: the atomic-write protocol leaves the previous
      // epoch's complete file, so a crash now recovers the pre-update
      // oracle while the WAL still charges the epoch — conservative, and
      // the client's update already took effect in memory.
      (void)store::SaveOracleSnapshot(snapshot_path, *oracle, meta,
                                      epoch_lsn);
    }
    // Ship the post-epoch image while the writer lock still excludes
    // queries: the observer diffs it against the previous epoch to build
    // the dirty-block delta replicas apply.
    NotifyReplication(request->handle_id, epoch_lsn, /*is_update=*/true,
                      meta.handle, meta.mechanism, meta.workload, *oracle);
  }
  std::vector<uint8_t> response = EncodeUpdateInfo(info);
  WriteFrame(socket, MessageType::kUpdateResponse, response, version);
}

void QueryServer::HandleStats(Socket& socket, uint16_t version) {
  ServerStats snapshot = stats();
  snapshot.has_accounting = true;
  if (context_.has_value()) {
    // The policy never changes after construction; the budget position is
    // served from the post-commit snapshot so a stats poll is O(1) even
    // while a release build holds the ledger lock for seconds.
    snapshot.accounting_policy = static_cast<uint16_t>(context_->policy());
    std::lock_guard<std::mutex> lock(budget_mutex_);
    snapshot.spent_epsilon = spent_snapshot_.epsilon;
    snapshot.spent_delta = spent_snapshot_.delta;
    snapshot.remaining_epsilon = remaining_snapshot_.epsilon;
    snapshot.remaining_delta = remaining_snapshot_.delta;
  }
  // Replica: the accounting fields stay zero — the budget lives on the
  // coordinator, and role (v5) tells the client which node it asked.
  std::vector<uint8_t> response = EncodeServerStats(snapshot, version);
  WriteFrame(socket, MessageType::kStatsResponse, response, version);
}

void QueryServer::SendError(Socket& socket, ErrorKind kind,
                            const Status& status, uint16_t version) {
  std::vector<uint8_t> body = EncodeError(kind, status);
  // Best-effort: the peer may already be gone; its read loop will notice.
  WriteFrame(socket, MessageType::kError, body, version);
}

}  // namespace net
}  // namespace dpsp
