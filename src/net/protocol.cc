#include "net/protocol.h"

#include <bit>
#include <cstring>

#include "common/crc32c.h"
#include "common/table.h"

namespace dpsp {
namespace net {

namespace {

// ---------------------------------------------------------- wire buffers --
// Explicit little-endian byte shifts: the encoding is the wire contract,
// not whatever the host happens to store.

class WireWriter {
 public:
  void U16(uint16_t v) {
    out_.push_back(static_cast<uint8_t>(v));
    out_.push_back(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      out_.push_back(static_cast<uint8_t>(v >> shift));
    }
  }
  void U64(uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      out_.push_back(static_cast<uint8_t>(v >> shift));
    }
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Str(const std::string& s) {
    // push_back loop, not insert(): strings on this protocol are short
    // names, and GCC 12 mis-diagnoses the inlined range insert.
    U32(static_cast<uint32_t>(s.size()));
    for (char c : s) out_.push_back(static_cast<uint8_t>(c));
  }
  /// Raw payload bytes with a u64 length prefix (replication sections can
  /// exceed the u32 string limit's comfort zone).
  void Bytes(std::span<const uint8_t> bytes) {
    U64(bytes.size());
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }
  void Reserve(size_t n) { out_.reserve(out_.size() + n); }

  std::vector<uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

  Status U16(uint16_t* v) {
    DPSP_RETURN_IF_ERROR(Need(2));
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return Status::Ok();
  }
  Status U32(uint32_t* v) {
    DPSP_RETURN_IF_ERROR(Need(4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos_ += 4;
    return Status::Ok();
  }
  Status U64(uint64_t* v) {
    DPSP_RETURN_IF_ERROR(Need(8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos_ += 8;
    return Status::Ok();
  }
  Status I32(int32_t* v) {
    uint32_t raw = 0;
    DPSP_RETURN_IF_ERROR(U32(&raw));
    *v = static_cast<int32_t>(raw);
    return Status::Ok();
  }
  Status F64(double* v) {
    uint64_t raw = 0;
    DPSP_RETURN_IF_ERROR(U64(&raw));
    *v = std::bit_cast<double>(raw);
    return Status::Ok();
  }
  Status Str(std::string* s) {
    uint32_t len = 0;
    DPSP_RETURN_IF_ERROR(U32(&len));
    DPSP_RETURN_IF_ERROR(Need(len));
    s->assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return Status::Ok();
  }
  /// u64-length-prefixed raw bytes. The length is validated against the
  /// remaining body BEFORE the vector allocates, so a lying prefix is a
  /// typed error rather than a multi-gigabyte resize.
  Status Bytes(std::vector<uint8_t>* bytes) {
    uint64_t len = 0;
    DPSP_RETURN_IF_ERROR(U64(&len));
    if (len > remaining()) {
      return Status::InvalidArgument(
          "byte-payload length exceeds remaining body");
    }
    bytes->assign(data_.begin() + static_cast<ptrdiff_t>(pos_),
                  data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return Status::Ok();
  }
  size_t remaining() const { return data_.size() - pos_; }

  /// Decoders call this last: trailing bytes mean the peer and we disagree
  /// about the encoding, which must not pass silently.
  Status ExpectEnd() const {
    if (pos_ != data_.size()) {
      return Status::InvalidArgument(
          StrFormat("%zu trailing bytes after message body",
                    data_.size() - pos_));
    }
    return Status::Ok();
  }

 private:
  Status Need(size_t n) const {
    if (data_.size() - pos_ < n) {
      return Status::InvalidArgument("truncated message body");
    }
    return Status::Ok();
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace

const char* ErrorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kMalformed:
      return "malformed";
    case ErrorKind::kNotFound:
      return "not-found";
    case ErrorKind::kBudgetExhausted:
      return "budget-exhausted";
    case ErrorKind::kOverloaded:
      return "overloaded";
    case ErrorKind::kTooLarge:
      return "too-large";
    case ErrorKind::kInternal:
      return "internal";
    case ErrorKind::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

const char* NodeRoleName(NodeRole role) {
  switch (role) {
    case NodeRole::kStandalone:
      return "standalone";
    case NodeRole::kCoordinator:
      return "coordinator";
    case NodeRole::kReplica:
      return "replica";
  }
  return "unknown";
}

// ------------------------------------------------------------- frame I/O --

Status WriteFrame(Socket& socket, MessageType type,
                  std::span<const uint8_t> body, uint16_t version) {
  WireWriter header;
  header.Reserve(12 + body.size());
  header.U32(kFrameMagic);
  header.U16(version);
  header.U16(static_cast<uint16_t>(type));
  header.U32(static_cast<uint32_t>(body.size()));
  // One send: header and body coalesce into as few packets as possible.
  std::vector<uint8_t> frame = header.Take();
  frame.insert(frame.end(), body.begin(), body.end());
  return socket.WriteAll(frame.data(), frame.size());
}

Result<Frame> ReadFrame(Socket& socket, uint32_t max_body_bytes) {
  uint8_t raw[12];
  DPSP_RETURN_IF_ERROR(socket.ReadAll(raw, sizeof(raw)));
  WireReader reader(raw);
  uint32_t magic = 0, body_size = 0;
  uint16_t version = 0, type = 0;
  DPSP_RETURN_IF_ERROR(reader.U32(&magic));
  DPSP_RETURN_IF_ERROR(reader.U16(&version));
  DPSP_RETURN_IF_ERROR(reader.U16(&type));
  DPSP_RETURN_IF_ERROR(reader.U32(&body_size));
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic (not a dpsp peer?)");
  }
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return Status::InvalidArgument(
        StrFormat("protocol version mismatch: peer speaks %u, this build "
                  "speaks %u-%u",
                  version, kMinProtocolVersion, kProtocolVersion));
  }
  if (body_size > max_body_bytes) {
    return Status::OutOfRange(
        StrFormat("frame body of %u bytes exceeds the %u-byte limit",
                  body_size, max_body_bytes));
  }
  Frame frame;
  frame.type = static_cast<MessageType>(type);
  frame.version = version;
  frame.body.resize(body_size);
  if (body_size > 0) {
    DPSP_RETURN_IF_ERROR(socket.ReadAll(frame.body.data(), body_size));
  }
  return frame;
}

// -------------------------------------------------------------- messages --

std::vector<uint8_t> EncodeReleaseRequest(const ReleaseRequest& request) {
  WireWriter w;
  w.Str(request.workload);
  w.Str(request.mechanism);
  w.Str(request.handle_name);
  return w.Take();
}

Result<ReleaseRequest> DecodeReleaseRequest(std::span<const uint8_t> body) {
  WireReader r(body);
  ReleaseRequest request;
  DPSP_RETURN_IF_ERROR(r.Str(&request.workload));
  DPSP_RETURN_IF_ERROR(r.Str(&request.mechanism));
  DPSP_RETURN_IF_ERROR(r.Str(&request.handle_name));
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  return request;
}

std::vector<uint8_t> EncodeReleaseInfo(const ReleaseInfo& info) {
  WireWriter w;
  w.U32(info.handle_id);
  w.F64(info.epsilon);
  w.F64(info.delta);
  w.F64(info.wall_ms);
  return w.Take();
}

Result<ReleaseInfo> DecodeReleaseInfo(std::span<const uint8_t> body) {
  WireReader r(body);
  ReleaseInfo info;
  DPSP_RETURN_IF_ERROR(r.U32(&info.handle_id));
  DPSP_RETURN_IF_ERROR(r.F64(&info.epsilon));
  DPSP_RETURN_IF_ERROR(r.F64(&info.delta));
  DPSP_RETURN_IF_ERROR(r.F64(&info.wall_ms));
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  return info;
}

std::vector<uint8_t> EncodeQueryRequest(uint32_t handle_id,
                                        std::span<const VertexPair> pairs) {
  WireWriter w;
  w.Reserve(8 + pairs.size() * 8);
  w.U32(handle_id);
  w.U32(static_cast<uint32_t>(pairs.size()));
  for (const VertexPair& p : pairs) {
    w.I32(p.first);
    w.I32(p.second);
  }
  return w.Take();
}

Result<QueryRequest> DecodeQueryRequest(std::span<const uint8_t> body) {
  WireReader r(body);
  QueryRequest request;
  uint32_t count = 0;
  DPSP_RETURN_IF_ERROR(r.U32(&request.handle_id));
  DPSP_RETURN_IF_ERROR(r.U32(&count));
  if (static_cast<size_t>(count) * 8 != r.remaining()) {
    return Status::InvalidArgument(
        "query pair count disagrees with body size");
  }
  request.pairs.resize(count);
  for (VertexPair& p : request.pairs) {
    int32_t u = 0, v = 0;
    DPSP_RETURN_IF_ERROR(r.I32(&u));
    DPSP_RETURN_IF_ERROR(r.I32(&v));
    p = {u, v};
  }
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  return request;
}

std::vector<uint8_t> EncodeQueryResponse(std::span<const double> distances) {
  WireWriter w;
  w.Reserve(4 + distances.size() * 8);
  w.U32(static_cast<uint32_t>(distances.size()));
  for (double d : distances) w.F64(d);
  return w.Take();
}

Result<std::vector<double>> DecodeQueryResponse(
    std::span<const uint8_t> body) {
  WireReader r(body);
  uint32_t count = 0;
  DPSP_RETURN_IF_ERROR(r.U32(&count));
  if (static_cast<size_t>(count) * 8 != r.remaining()) {
    return Status::InvalidArgument(
        "distance count disagrees with body size");
  }
  std::vector<double> distances(count);
  for (double& d : distances) DPSP_RETURN_IF_ERROR(r.F64(&d));
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  return distances;
}

std::vector<uint8_t> EncodeUpdateRequest(
    uint32_t handle_id, std::span<const EdgeWeightDelta> deltas) {
  WireWriter w;
  w.Reserve(8 + deltas.size() * 12);
  w.U32(handle_id);
  w.U32(static_cast<uint32_t>(deltas.size()));
  for (const EdgeWeightDelta& d : deltas) {
    w.I32(d.edge);
    w.F64(d.new_weight);
  }
  return w.Take();
}

Result<UpdateRequest> DecodeUpdateRequest(std::span<const uint8_t> body) {
  WireReader r(body);
  UpdateRequest request;
  uint32_t count = 0;
  DPSP_RETURN_IF_ERROR(r.U32(&request.handle_id));
  DPSP_RETURN_IF_ERROR(r.U32(&count));
  if (static_cast<size_t>(count) * 12 != r.remaining()) {
    return Status::InvalidArgument(
        "update delta count disagrees with body size");
  }
  request.deltas.resize(count);
  for (EdgeWeightDelta& d : request.deltas) {
    DPSP_RETURN_IF_ERROR(r.I32(&d.edge));
    DPSP_RETURN_IF_ERROR(r.F64(&d.new_weight));
  }
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  return request;
}

std::vector<uint8_t> EncodeUpdateInfo(const UpdateInfo& info) {
  WireWriter w;
  w.F64(info.charged_epsilon);
  w.F64(info.charged_delta);
  w.F64(info.remaining_epsilon);
  w.F64(info.remaining_delta);
  w.U32(info.dirty_blocks);
  w.F64(info.wall_ms);
  return w.Take();
}

Result<UpdateInfo> DecodeUpdateInfo(std::span<const uint8_t> body) {
  WireReader r(body);
  UpdateInfo info;
  DPSP_RETURN_IF_ERROR(r.F64(&info.charged_epsilon));
  DPSP_RETURN_IF_ERROR(r.F64(&info.charged_delta));
  DPSP_RETURN_IF_ERROR(r.F64(&info.remaining_epsilon));
  DPSP_RETURN_IF_ERROR(r.F64(&info.remaining_delta));
  DPSP_RETURN_IF_ERROR(r.U32(&info.dirty_blocks));
  DPSP_RETURN_IF_ERROR(r.F64(&info.wall_ms));
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  return info;
}

std::vector<uint8_t> EncodeServerStats(const ServerStats& stats,
                                       uint16_t version) {
  WireWriter w;
  w.U64(stats.connections_accepted);
  w.U64(stats.queries_served);
  w.U64(stats.pairs_served);
  w.U64(stats.releases_granted);
  w.U64(stats.budget_rejected);
  w.U64(stats.overload_rejected);
  w.U32(stats.open_handles);
  // v2 accounting extension; a v1 peer gets the body shape its decoder
  // expects (ExpectEnd would reject trailing bytes).
  if (version >= 2) {
    w.U16(stats.accounting_policy);
    w.F64(stats.spent_epsilon);
    w.F64(stats.spent_delta);
    w.F64(stats.remaining_epsilon);
    w.F64(stats.remaining_delta);
  }
  // v4 recovery extension.
  if (version >= kRecoveryProtocolVersion) {
    w.U32(stats.warm_restart ? 1 : 0);
    w.U32(stats.recovered_handles);
    w.U64(stats.recovered_charges);
  }
  // v5 cluster extension.
  if (version >= kReplicationProtocolVersion) {
    w.U16(stats.role);
    w.U64(stats.last_epoch_lsn);
    w.U32(stats.num_replicas);
    w.U64(stats.replica_lag);
    w.U64(stats.replica_queries_served);
    w.U64(stats.replica_pairs_served);
  }
  return w.Take();
}

Result<ServerStats> DecodeServerStats(std::span<const uint8_t> body) {
  WireReader r(body);
  ServerStats stats;
  DPSP_RETURN_IF_ERROR(r.U64(&stats.connections_accepted));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.queries_served));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.pairs_served));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.releases_granted));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.budget_rejected));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.overload_rejected));
  DPSP_RETURN_IF_ERROR(r.U32(&stats.open_handles));
  // A body that ends here is a v1 peer: the accounting extension stays at
  // its defaults and has_accounting records its absence.
  if (r.remaining() == 0) return stats;
  DPSP_RETURN_IF_ERROR(r.U16(&stats.accounting_policy));
  DPSP_RETURN_IF_ERROR(r.F64(&stats.spent_epsilon));
  DPSP_RETURN_IF_ERROR(r.F64(&stats.spent_delta));
  DPSP_RETURN_IF_ERROR(r.F64(&stats.remaining_epsilon));
  DPSP_RETURN_IF_ERROR(r.F64(&stats.remaining_delta));
  stats.has_accounting = true;
  // A body that ends here is a v2/v3 peer: no recovery extension.
  if (r.remaining() == 0) return stats;
  uint32_t warm = 0;
  DPSP_RETURN_IF_ERROR(r.U32(&warm));
  DPSP_RETURN_IF_ERROR(r.U32(&stats.recovered_handles));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.recovered_charges));
  stats.warm_restart = warm != 0;
  stats.has_recovery = true;
  // A body that ends here is a v4 peer: no cluster extension.
  if (r.remaining() == 0) return stats;
  DPSP_RETURN_IF_ERROR(r.U16(&stats.role));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.last_epoch_lsn));
  DPSP_RETURN_IF_ERROR(r.U32(&stats.num_replicas));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.replica_lag));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.replica_queries_served));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.replica_pairs_served));
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  stats.has_cluster = true;
  return stats;
}

std::vector<uint8_t> EncodeError(ErrorKind kind, const Status& status) {
  WireWriter w;
  w.U16(static_cast<uint16_t>(kind));
  w.U16(static_cast<uint16_t>(status.code()));
  w.Str(status.message());
  return w.Take();
}

Result<WireError> DecodeError(std::span<const uint8_t> body) {
  WireReader r(body);
  uint16_t kind = 0, code = 0;
  WireError error;
  DPSP_RETURN_IF_ERROR(r.U16(&kind));
  DPSP_RETURN_IF_ERROR(r.U16(&code));
  DPSP_RETURN_IF_ERROR(r.Str(&error.message));
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  if (kind > static_cast<uint16_t>(ErrorKind::kUnsupported)) {
    kind = static_cast<uint16_t>(ErrorKind::kInternal);
  }
  error.kind = static_cast<ErrorKind>(kind);
  if (code == static_cast<uint16_t>(StatusCode::kOk) ||
      code > static_cast<uint16_t>(StatusCode::kUnavailable)) {
    code = static_cast<uint16_t>(StatusCode::kInternal);
  }
  error.code = static_cast<StatusCode>(code);
  return error;
}

Status WireError::ToStatus() const {
  return Status(code, message);
}

// ---------------------------------------------------- replication frames --

std::vector<uint8_t> EncodeReplicaSubscribe(const ReplicaSubscribe& sub) {
  WireWriter w;
  w.U64(sub.last_epoch_lsn);
  w.Str(sub.replica_name);
  return w.Take();
}

Result<ReplicaSubscribe> DecodeReplicaSubscribe(
    std::span<const uint8_t> body) {
  WireReader r(body);
  ReplicaSubscribe sub;
  DPSP_RETURN_IF_ERROR(r.U64(&sub.last_epoch_lsn));
  DPSP_RETURN_IF_ERROR(r.Str(&sub.replica_name));
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  return sub;
}

std::vector<uint8_t> EncodeSnapshotChunk(const SnapshotChunk& chunk) {
  WireWriter w;
  size_t payload = 0;
  for (const ReleasedSection& s : chunk.sections) payload += s.bytes.size();
  w.Reserve(64 + payload);
  w.U32(chunk.handle_id);
  w.U64(chunk.epoch_lsn);
  w.Str(chunk.handle_name);
  w.Str(chunk.mechanism);
  w.Str(chunk.workload);
  w.U32(static_cast<uint32_t>(chunk.sections.size()));
  for (const ReleasedSection& s : chunk.sections) {
    w.Str(s.label);
    w.Bytes(s.bytes);
    w.U32(Crc32c(s.bytes.data(), s.bytes.size()));
  }
  return w.Take();
}

Result<SnapshotChunk> DecodeSnapshotChunk(std::span<const uint8_t> body) {
  WireReader r(body);
  SnapshotChunk chunk;
  uint32_t count = 0;
  DPSP_RETURN_IF_ERROR(r.U32(&chunk.handle_id));
  DPSP_RETURN_IF_ERROR(r.U64(&chunk.epoch_lsn));
  DPSP_RETURN_IF_ERROR(r.Str(&chunk.handle_name));
  DPSP_RETURN_IF_ERROR(r.Str(&chunk.mechanism));
  DPSP_RETURN_IF_ERROR(r.Str(&chunk.workload));
  DPSP_RETURN_IF_ERROR(r.U32(&count));
  // Each section costs at least label-len + bytes-len + crc on the wire,
  // so a lying count is refused before any per-section allocation.
  if (static_cast<size_t>(count) * 16 > r.remaining()) {
    return Status::InvalidArgument(
        "snapshot-chunk section count disagrees with body size");
  }
  chunk.sections.resize(count);
  chunk.section_crcs.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    DPSP_RETURN_IF_ERROR(r.Str(&chunk.sections[i].label));
    DPSP_RETURN_IF_ERROR(r.Bytes(&chunk.sections[i].bytes));
    DPSP_RETURN_IF_ERROR(r.U32(&chunk.section_crcs[i]));
  }
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  return chunk;
}

std::vector<uint8_t> EncodeDeltaFrame(const DeltaFrame& frame) {
  WireWriter w;
  w.Reserve(32 + store::SectionDeltaBytes(frame.patches));
  w.U32(frame.handle_id);
  w.U64(frame.epoch_lsn);
  w.U32(static_cast<uint32_t>(frame.patches.size()));
  for (const store::SectionPatch& patch : frame.patches) {
    w.Str(patch.label);
    w.U64(patch.section_bytes);
    w.U32(patch.post_crc32c);
    w.U32(static_cast<uint32_t>(patch.ranges.size()));
    for (const store::SectionRange& range : patch.ranges) {
      w.U64(range.offset);
      w.Bytes(range.bytes);
    }
  }
  return w.Take();
}

Result<DeltaFrame> DecodeDeltaFrame(std::span<const uint8_t> body) {
  WireReader r(body);
  DeltaFrame frame;
  uint32_t num_patches = 0;
  DPSP_RETURN_IF_ERROR(r.U32(&frame.handle_id));
  DPSP_RETURN_IF_ERROR(r.U64(&frame.epoch_lsn));
  DPSP_RETURN_IF_ERROR(r.U32(&num_patches));
  if (static_cast<size_t>(num_patches) * 20 > r.remaining()) {
    return Status::InvalidArgument(
        "delta-frame patch count disagrees with body size");
  }
  frame.patches.resize(num_patches);
  for (store::SectionPatch& patch : frame.patches) {
    uint32_t num_ranges = 0;
    DPSP_RETURN_IF_ERROR(r.Str(&patch.label));
    DPSP_RETURN_IF_ERROR(r.U64(&patch.section_bytes));
    DPSP_RETURN_IF_ERROR(r.U32(&patch.post_crc32c));
    DPSP_RETURN_IF_ERROR(r.U32(&num_ranges));
    if (static_cast<size_t>(num_ranges) * 16 > r.remaining()) {
      return Status::InvalidArgument(
          "delta-frame range count disagrees with body size");
    }
    patch.ranges.resize(num_ranges);
    for (store::SectionRange& range : patch.ranges) {
      DPSP_RETURN_IF_ERROR(r.U64(&range.offset));
      DPSP_RETURN_IF_ERROR(r.Bytes(&range.bytes));
    }
  }
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  return frame;
}

std::vector<uint8_t> EncodeReplicaStatsFrame(const ReplicaStatsFrame& stats) {
  WireWriter w;
  w.U16(stats.role);
  w.U64(stats.last_epoch_lsn);
  w.U64(stats.queries_served);
  w.U64(stats.pairs_served);
  return w.Take();
}

Result<ReplicaStatsFrame> DecodeReplicaStatsFrame(
    std::span<const uint8_t> body) {
  WireReader r(body);
  ReplicaStatsFrame stats;
  DPSP_RETURN_IF_ERROR(r.U16(&stats.role));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.last_epoch_lsn));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.queries_served));
  DPSP_RETURN_IF_ERROR(r.U64(&stats.pairs_served));
  DPSP_RETURN_IF_ERROR(r.ExpectEnd());
  return stats;
}

}  // namespace net
}  // namespace dpsp
