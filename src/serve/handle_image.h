// A replica's in-memory copy of one released handle: the snapshot
// sections the coordinator shipped, the epoch they correspond to, and
// the install/apply entry points that turn them into a serving oracle.
//
// The image is the replication ground truth — a full SnapshotChunk
// replaces it wholesale (InstallFull) and a DeltaFrame patches it in
// place (ApplyDelta, CRC-verified per section), after which Materialize
// rebuilds the oracle through the registry loader. Loaders never see a
// ReleaseContext: a replica draws no noise and consumes no budget, it
// only re-hosts released (post-DP) bytes, which is the whole trust
// argument for scaling the read tier horizontally.

#ifndef DPSP_SERVE_HANDLE_IMAGE_H_
#define DPSP_SERVE_HANDLE_IMAGE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/distance_oracle.h"
#include "graph/graph.h"
#include "serve/batch_executor.h"
#include "store/snapshot_delta.h"

namespace dpsp {
namespace serve {

class HandleImage {
 public:
  HandleImage() = default;

  /// Replaces the whole image (a full snapshot install or a resync).
  void InstallFull(std::string name, std::string mechanism,
                   std::string workload,
                   std::vector<ReleasedSection> sections,
                   uint64_t epoch_lsn);

  /// Applies one epoch's byte-range patches in place
  /// (store::ApplySectionDelta; post-CRC verified). On failure the image
  /// is corrupt and the caller must resync from a full snapshot.
  Status ApplyDelta(std::span<const store::SectionPatch> patches,
                    uint64_t epoch_lsn);

  /// Rebuilds the serving oracle from the current sections through the
  /// registry loader for `mechanism()`. When `executor` is non-null its
  /// NUMA placement runs on the fresh oracle (the same call the
  /// coordinator makes after its own installs and update epochs).
  Result<std::shared_ptr<DistanceOracle>> Materialize(
      const Graph& graph, const EdgeWeights& weights,
      const BatchExecutor* executor = nullptr) const;

  const std::string& name() const { return name_; }
  const std::string& mechanism() const { return mechanism_; }
  const std::string& workload() const { return workload_; }
  uint64_t epoch_lsn() const { return epoch_lsn_; }
  std::span<const ReleasedSection> sections() const { return sections_; }

  /// Total payload bytes held (the full-image cost a delta avoids).
  uint64_t image_bytes() const;

 private:
  std::string name_;
  std::string mechanism_;
  std::string workload_;
  uint64_t epoch_lsn_ = 0;
  std::vector<ReleasedSection> sections_;
};

}  // namespace serve
}  // namespace dpsp

#endif  // DPSP_SERVE_HANDLE_IMAGE_H_
