// Sharded batch execution over released distance oracles — the serving
// layer between a query stream and the DistanceOracle kernels.
//
// A released oracle answers queries by pure reads of an immutable
// structure, so a batch of pairs can be partitioned arbitrarily. The
// executor exploits that freedom for cache residency: it splits an
// incoming span into shards — contiguous chunks by default, or groups
// keyed by a per-vertex cell id (connected component for forests, covering
// cell for the bounded-weight oracle) — pins each shard to a worker via
// the common ParallelFor pool, runs the oracle's fused serial DistanceInto
// kernel shard-locally, and merges results back in input order. Keyed
// shards keep each worker's reads inside one region of the released
// structure (one component's estimate range, one covering row block)
// instead of striding the whole table.
//
// Every execution strategy runs the same serial kernel over the same
// pairs, so sharded, chunk-parallel, and serial results are bit-identical.
//
// Privacy composition: serving consumes no budget (queries are
// post-processing), but a sharded *build* pipeline constructs per-shard
// oracles through ReleaseContext::Fork children and composes their spend
// into the single parent ledger with ReleaseContext::AbsorbShard.
//
// Continual updates: ApplyUpdates propagates a weight-update epoch into a
// released updatable oracle WITHOUT re-sharding — the topology is public
// and static, so the installed per-vertex cells stay valid across epochs.
// The executor routes each delta to its covering cell (the same keys the
// query path shards by) to report which shard regions were dirtied, and
// applies the whole epoch through the oracle in one input-ordered call:
// the update draws from the single ledger's noise stream, so serialized
// application is exactly what keeps sharded and serial query execution
// bit-identical before and after every epoch.

#ifndef DPSP_SERVE_BATCH_EXECUTOR_H_
#define DPSP_SERVE_BATCH_EXECUTOR_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/distance_oracle.h"
#include "graph/covering.h"
#include "graph/graph.h"

namespace dpsp {

/// Tuning knobs for the executor.
struct BatchExecutorOptions {
  /// Target shard count; 0 derives one shard per available worker.
  int num_shards = 0;
  /// Worker threads the shards are pinned across (0 = hardware
  /// concurrency, 1 = serial execution of every shard).
  int max_threads = 0;
  /// Minimum pairs per shard: small batches collapse to fewer shards so
  /// the latency path never pays fan-out overhead for a handful of
  /// queries.
  size_t min_shard_pairs = 2048;
  /// NUMA-aware scheduling (common/numa.h): shard workers pin to the CPU
  /// set of node (shard % nodes), and PlaceReleasedBuffers interleaves an
  /// installed oracle's flat buffers across nodes so every worker streams
  /// at uniform distance. A cheap no-op on single-node machines, non-Linux
  /// builds, and under DPSP_NUMA=0; results are bit-identical regardless —
  /// placement moves pages, never work.
  bool numa_aware = true;
};

/// Partitions query batches into shards and runs them across workers.
class BatchExecutor {
 public:
  BatchExecutor() = default;
  explicit BatchExecutor(BatchExecutorOptions options) : options_(options) {}

  /// Installs per-vertex cell ids: queries whose *first* endpoint shares a
  /// cell are grouped into the same shard (cells are packed into shards
  /// largest-first to balance load). Vertices outside [0, cells.size())
  /// fall into a catch-all shard and fail inside the oracle kernel with
  /// the usual out-of-range error. An empty vector restores contiguous
  /// chunking.
  void SetShardCells(std::vector<int> cells);

  /// Answers `pairs` through `oracle`, sharded per the options, results in
  /// input order. Bit-identical to DistanceBatchOf(oracle, pairs, 1).
  Result<std::vector<double>> Execute(const DistanceOracle& oracle,
                                      std::span<const VertexPair> pairs) const;

  /// What one propagated update epoch touched, for telemetry and the
  /// serving dashboards.
  struct UpdateReport {
    /// Distinct installed shard cells containing a dirty edge (0 when the
    /// executor shards contiguously — there is no cell map to consult).
    int dirty_cells = 0;
    /// Noisy values the oracle redrew for the epoch.
    int dirty_blocks = 0;
    /// The epoch's sensitivity multiplier (UpdateStats::sensitivity).
    int update_sensitivity = 0;
    /// Privacy loss the epoch charged to the ledger.
    double charged_epsilon = 0.0;
  };

  /// Propagates one weight-update epoch into a released oracle: routes
  /// each delta to its shard cell via the installed per-vertex keys (the
  /// edge's `graph` endpoints pick the cell; no re-shard happens — the
  /// public topology is unchanged), then applies the epoch through the
  /// oracle's update capability in input order under `ctx`'s ledger.
  /// Fails with FailedPrecondition for a build-once oracle and passes
  /// through the oracle's own budget/validation errors; on failure the
  /// released structure is untouched.
  Result<UpdateReport> ApplyUpdates(DistanceOracle& oracle,
                                    const Graph& graph,
                                    std::span<const EdgeWeightDelta> deltas,
                                    ReleaseContext& ctx) const;

  /// Places an installed oracle's released flat buffers for NUMA-balanced
  /// streaming: interleaves each buffer's pages across nodes (workers on
  /// every node then pay the same average distance). Call once after
  /// installing an oracle and again after an update epoch. Returns the
  /// number of buffers actually moved — 0 on single-node machines, when
  /// numa_aware is off, or for oracles that expose no buffers.
  int PlaceReleasedBuffers(const DistanceOracle& oracle) const;

  /// Shards Execute would use for a batch of `num_pairs` (for reports).
  int PlannedShardCount(size_t num_pairs) const;

  const BatchExecutorOptions& options() const { return options_; }

 private:
  BatchExecutorOptions options_;
  std::vector<int> cells_;  // vertex -> cell id; empty = contiguous
  int num_cells_ = 0;
};

/// Per-vertex connected-component ids of `graph`, for component sharding
/// of forest workloads.
std::vector<int> ComponentCells(const Graph& graph);

/// Per-vertex covering-cell ids (the Algorithm 2 center assignment), for
/// cell sharding of bounded-weight workloads.
std::vector<int> CoveringCells(const Covering& covering);

}  // namespace dpsp

#endif  // DPSP_SERVE_BATCH_EXECUTOR_H_
