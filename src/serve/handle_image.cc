#include "serve/handle_image.h"

#include <utility>

#include "core/oracle_registry.h"

namespace dpsp {
namespace serve {

void HandleImage::InstallFull(std::string name, std::string mechanism,
                              std::string workload,
                              std::vector<ReleasedSection> sections,
                              uint64_t epoch_lsn) {
  name_ = std::move(name);
  mechanism_ = std::move(mechanism);
  workload_ = std::move(workload);
  sections_ = std::move(sections);
  epoch_lsn_ = epoch_lsn;
}

Status HandleImage::ApplyDelta(std::span<const store::SectionPatch> patches,
                               uint64_t epoch_lsn) {
  if (mechanism_.empty()) {
    return Status::FailedPrecondition(
        "delta against an empty image (no snapshot installed yet)");
  }
  DPSP_RETURN_IF_ERROR(store::ApplySectionDelta(sections_, patches));
  epoch_lsn_ = epoch_lsn;
  return Status::Ok();
}

Result<std::shared_ptr<DistanceOracle>> HandleImage::Materialize(
    const Graph& graph, const EdgeWeights& weights,
    const BatchExecutor* executor) const {
  std::vector<ReleasedSectionView> views;
  views.reserve(sections_.size());
  for (const ReleasedSection& section : sections_) {
    views.push_back(ReleasedSectionView{
        std::string_view(section.label),
        std::span<const uint8_t>(section.bytes)});
  }
  DPSP_ASSIGN_OR_RETURN(std::unique_ptr<DistanceOracle> oracle,
                        OracleRegistry::Global().Restore(mechanism_, graph,
                                                         weights, views));
  std::shared_ptr<DistanceOracle> shared = std::move(oracle);
  if (executor != nullptr) executor->PlaceReleasedBuffers(*shared);
  return shared;
}

uint64_t HandleImage::image_bytes() const {
  uint64_t total = 0;
  for (const ReleasedSection& section : sections_) {
    total += section.bytes.size();
  }
  return total;
}

}  // namespace serve
}  // namespace dpsp
