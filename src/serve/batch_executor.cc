#include "serve/batch_executor.h"

#include <algorithm>
#include <utility>

#include "common/numa.h"
#include "common/parallel.h"
#include "common/table.h"
#include "graph/connectivity.h"

namespace dpsp {

namespace {

// Pins the calling shard worker to the CPUs of node (shard % nodes).
// No-op (and no syscall) on single-node machines or when the option is
// off. ParallelFor spawns fresh threads per call, so the affinity never
// outlives the batch.
void MaybePinShardWorker(bool numa_aware, int shard) {
  if (!numa_aware) return;
  const NumaTopology& topo = NumaTopologyInfo();
  if (!topo.available) return;
  PinCurrentThreadToNode(shard % topo.num_nodes);
}

}  // namespace

void BatchExecutor::SetShardCells(std::vector<int> cells) {
  cells_ = std::move(cells);
  num_cells_ = 0;
  for (int c : cells_) num_cells_ = std::max(num_cells_, c + 1);
}

int BatchExecutor::PlannedShardCount(size_t num_pairs) const {
  if (num_pairs == 0) return 1;
  size_t by_size = std::max<size_t>(
      1, num_pairs / std::max<size_t>(1, options_.min_shard_pairs));
  if (options_.num_shards > 0) {
    return static_cast<int>(
        std::min(by_size, static_cast<size_t>(options_.num_shards)));
  }
  return ParallelWorkerCount(num_pairs, options_.max_threads,
                             std::max<size_t>(1, options_.min_shard_pairs));
}

namespace {

// Runs `fn(shard)` for every shard index, one shard pinned to a worker at
// a time, and returns the first error any shard reported.
Status RunShards(int num_shards, int max_threads,
                 const std::function<Status(int shard)>& fn) {
  return ParallelForStatus(
      static_cast<size_t>(num_shards), max_threads,
      [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          DPSP_RETURN_IF_ERROR(fn(static_cast<int>(s)));
        }
        return Status::Ok();
      },
      /*min_items_per_worker=*/1);
}

}  // namespace

Result<std::vector<double>> BatchExecutor::Execute(
    const DistanceOracle& oracle, std::span<const VertexPair> pairs) const {
  std::vector<double> out(pairs.size(), 0.0);
  // Empty and single-pair batches bypass shard planning entirely: no
  // worker spawn, no bucket scatter — the empty result is well-defined and
  // one pair runs the serial kernel inline on the calling thread.
  if (pairs.empty()) return out;
  if (pairs.size() == 1) {
    DPSP_RETURN_IF_ERROR(oracle.DistanceInto(pairs, out.data()));
    return out;
  }
  int num_shards = PlannedShardCount(pairs.size());

  if (cells_.empty() || num_shards <= 1) {
    // Contiguous policy: shard s owns one chunk of the input span, so the
    // merge is the identity — each kernel writes its slice of `out`.
    size_t chunk = (pairs.size() + static_cast<size_t>(num_shards) - 1) /
                   static_cast<size_t>(num_shards);
    DPSP_RETURN_IF_ERROR(RunShards(
        num_shards, options_.max_threads, [&](int s) {
          size_t lo = static_cast<size_t>(s) * chunk;
          size_t hi = std::min(pairs.size(), lo + chunk);
          if (lo >= hi) return Status::Ok();
          MaybePinShardWorker(options_.numa_aware, s);
          return oracle.DistanceInto(pairs.subspan(lo, hi - lo),
                                     out.data() + lo);
        }));
    return out;
  }

  // Keyed policy. Bucket query indices by the cell of the first endpoint
  // (counting sort keeps input order within a bucket), then pack cells
  // into shards largest-first so shard loads balance.
  const int catch_all = num_cells_;  // out-of-range endpoints
  const int num_buckets = num_cells_ + 1;
  auto bucket_of = [&](const VertexPair& p) {
    return p.first >= 0 && static_cast<size_t>(p.first) < cells_.size()
               ? cells_[static_cast<size_t>(p.first)]
               : catch_all;
  };
  std::vector<uint32_t> bucket_count(static_cast<size_t>(num_buckets), 0);
  for (const VertexPair& p : pairs) {
    ++bucket_count[static_cast<size_t>(bucket_of(p))];
  }
  std::vector<uint32_t> bucket_offset(static_cast<size_t>(num_buckets) + 1,
                                      0);
  for (int b = 0; b < num_buckets; ++b) {
    bucket_offset[static_cast<size_t>(b) + 1] =
        bucket_offset[static_cast<size_t>(b)] +
        bucket_count[static_cast<size_t>(b)];
  }
  std::vector<uint32_t> order(pairs.size());
  std::vector<uint32_t> cursor(bucket_offset.begin(),
                               bucket_offset.end() - 1);
  for (size_t i = 0; i < pairs.size(); ++i) {
    order[cursor[static_cast<size_t>(bucket_of(pairs[i]))]++] =
        static_cast<uint32_t>(i);
  }

  // Longest-processing-time packing: non-empty cells, largest first, each
  // into the currently lightest shard.
  std::vector<int> by_size;
  for (int b = 0; b < num_buckets; ++b) {
    if (bucket_count[static_cast<size_t>(b)] > 0) by_size.push_back(b);
  }
  std::sort(by_size.begin(), by_size.end(), [&](int a, int b) {
    return bucket_count[static_cast<size_t>(a)] >
           bucket_count[static_cast<size_t>(b)];
  });
  num_shards = std::min(num_shards, static_cast<int>(by_size.size()));
  std::vector<std::vector<int>> shard_buckets(
      static_cast<size_t>(num_shards));
  std::vector<size_t> shard_load(static_cast<size_t>(num_shards), 0);
  for (int b : by_size) {
    size_t lightest = 0;
    for (size_t s = 1; s < shard_load.size(); ++s) {
      if (shard_load[s] < shard_load[lightest]) lightest = s;
    }
    shard_buckets[lightest].push_back(b);
    shard_load[lightest] += bucket_count[static_cast<size_t>(b)];
  }

  // Each shard gathers its pairs into a contiguous local batch (cache-
  // resident kernel input), runs the serial kernel, and scatters results
  // back to input positions.
  DPSP_RETURN_IF_ERROR(RunShards(
      num_shards, options_.max_threads, [&](int s) {
        MaybePinShardWorker(options_.numa_aware, s);
        const std::vector<int>& buckets =
            shard_buckets[static_cast<size_t>(s)];
        size_t local_size = shard_load[static_cast<size_t>(s)];
        std::vector<VertexPair> local_pairs;
        std::vector<uint32_t> local_index;
        local_pairs.reserve(local_size);
        local_index.reserve(local_size);
        for (int b : buckets) {
          for (uint32_t k = bucket_offset[static_cast<size_t>(b)];
               k < bucket_offset[static_cast<size_t>(b) + 1]; ++k) {
            uint32_t i = order[k];
            local_pairs.push_back(pairs[i]);
            local_index.push_back(i);
          }
        }
        std::vector<double> local_out(local_pairs.size());
        DPSP_RETURN_IF_ERROR(
            oracle.DistanceInto(local_pairs, local_out.data()));
        for (size_t j = 0; j < local_out.size(); ++j) {
          out[local_index[j]] = local_out[j];
        }
        return Status::Ok();
      }));
  return out;
}

Result<BatchExecutor::UpdateReport> BatchExecutor::ApplyUpdates(
    DistanceOracle& oracle, const Graph& graph,
    std::span<const EdgeWeightDelta> deltas, ReleaseContext& ctx) const {
  UpdatableDistanceOracle* updatable = oracle.AsUpdatable();
  if (updatable == nullptr) {
    return Status::FailedPrecondition(
        "oracle '" + oracle.Name() +
        "' is build-once: it does not support incremental weight updates");
  }
  // Dirty-cell routing: the same per-vertex keys the query path shards by
  // decide which shard regions this epoch touches. An edge belongs to the
  // cell of its first endpoint (matching the query-side bucket rule); the
  // cell map itself never changes — the topology is public and static, so
  // no re-shard happens.
  UpdateReport report;
  if (!cells_.empty()) {
    std::vector<uint8_t> dirty(static_cast<size_t>(num_cells_) + 1, 0);
    for (const EdgeWeightDelta& d : deltas) {
      if (d.edge < 0 || d.edge >= graph.num_edges()) {
        return Status::InvalidArgument(
            StrFormat("update edge %d out of range [0, %d)", d.edge,
                      graph.num_edges()));
      }
      VertexId u = graph.edge(d.edge).u;
      size_t cell = u >= 0 && static_cast<size_t>(u) < cells_.size()
                        ? static_cast<size_t>(cells_[static_cast<size_t>(u)])
                        : static_cast<size_t>(num_cells_);  // catch-all
      if (!dirty[cell]) {
        dirty[cell] = 1;
        ++report.dirty_cells;
      }
    }
  }
  // One input-ordered application: the epoch draws from ctx's single
  // noise stream, so serialized application here is what keeps sharded
  // and serial query execution bit-identical across epochs.
  DPSP_RETURN_IF_ERROR(updatable->ApplyWeightUpdates(deltas, ctx));
  const UpdatableDistanceOracle::UpdateStats& stats =
      updatable->last_update();
  report.dirty_blocks = stats.dirty_blocks;
  report.update_sensitivity = stats.sensitivity;
  report.charged_epsilon = stats.charged_epsilon;
  // Re-place after the epoch: updates can touch pages first-written by
  // the updating thread, pulling them onto its node.
  PlaceReleasedBuffers(oracle);
  return report;
}

int BatchExecutor::PlaceReleasedBuffers(const DistanceOracle& oracle) const {
  if (!options_.numa_aware) return 0;
  const NumaTopology& topo = NumaTopologyInfo();
  if (!topo.available) return 0;
  std::vector<ReleasedBuffer> buffers;
  oracle.AppendReleasedBuffers(&buffers);
  int placed = 0;
  for (const ReleasedBuffer& b : buffers) {
    if (InterleaveMemory(b.data, b.bytes)) ++placed;
  }
  return placed;
}

std::vector<int> ComponentCells(const Graph& graph) {
  return FindConnectedComponents(graph).component;
}

std::vector<int> CoveringCells(const Covering& covering) {
  return {covering.assignment.begin(), covering.assignment.end()};
}

}  // namespace dpsp
