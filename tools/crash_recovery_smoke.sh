#!/usr/bin/env bash
# Crash-recovery smoke: drives the built binaries through the durability
# paths the way an operator would meet them.
#
#   1. examples/warm_restart — fork a persistent curator, kill -9 it
#      between the WAL intent and commit of a release, warm-restart, and
#      verify the recovered handle answers bit-identically with the
#      ledger monotone (the example exits non-zero on any violated
#      invariant).
#   2. The failpoint suites — crash_recovery_test SIGKILLs a child at
#      every registered injection site and recovers; store_fuzz_test
#      feeds the recovery paths truncations, bit flips, and lying
#      lengths; store_durability_test round-trips every registered
#      mechanism through the snapshot container.
#   3. An env-armed failpoint (DPSP_FAILPOINT=...:error) against the
#      warm-restart example must fail it — proving the injection sites
#      are live in the shipped binaries, not compiled away.
#
# Usage: tools/crash_recovery_smoke.sh [build-dir]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"

if [[ ! -x "${BUILD_DIR}/examples/warm_restart" ]]; then
  echo "error: ${BUILD_DIR}/examples/warm_restart not built" >&2
  exit 1
fi

echo "== warm-restart example (kill -9 mid-release, recover, verify) =="
"${BUILD_DIR}/examples/warm_restart"

echo "== failpoint crash matrix + store corruption tables =="
for t in crash_recovery_test store_fuzz_test store_durability_test; do
  if [[ -x "${BUILD_DIR}/${t}" ]]; then
    "${BUILD_DIR}/${t}" --gtest_brief=1
  else
    echo "note: ${BUILD_DIR}/${t} not built; skipping" >&2
  fi
done

echo "== env-armed failpoint is live in the shipped binary =="
if DPSP_FAILPOINT=store.wal.before_intent:error \
    "${BUILD_DIR}/examples/warm_restart" >/dev/null 2>&1; then
  echo "error: armed failpoint did not fire (injection compiled away?)" >&2
  exit 1
fi
echo "   armed store.wal.before_intent:error failed the curator, as it must"

echo "OK: crash-recovery smoke passed"
