#!/usr/bin/env python3
"""Perf-trajectory check: compare prior/current bench JSON artifacts.

CI downloads the artifact from the previous successful run on main and
runs this against the ones the current run just produced. Every ops/sec
series the benches emit is compared per mechanism and series:

  BENCH_registry.json  (bench_registry)      R1 sweep batch throughput,
                                             R3 serving throughput (plain-
                                             batch and sharded), R4 update
                                             epochs, and the R5 scalar/
                                             AVX2/NUMA dispatch series
  BENCH_server.json    (bench_server_loadgen) end-to-end wire ops/sec and
                                             the in-process direct baseline

A drop beyond the threshold (default 20%) is flagged with the GitHub
Actions ::warning:: syntax so it surfaces on the run summary. Exit status
is 0 unless --strict is given (shared CI runners are noisy; the default
mode annotates instead of failing the build).

Both artifacts diff in ONE invocation via repeated --pair flags. A pair
whose PRIOR file is missing is skipped with a note (first run on a
branch, artifact expired); a missing CURRENT file means the bench this
run should have produced never materialized and is an error (exit 2).
The two-positional form is kept for compatibility.

Usage:
  check_perf_trajectory.py PRIOR.json CURRENT.json [--threshold 0.20]
                           [--strict]
  check_perf_trajectory.py --pair prior/BENCH_registry.json BENCH_registry.json \
                           --pair prior/BENCH_server.json BENCH_server.json
"""

import argparse
import json
import os
import sys


def ops_series(doc):
    """Yields (series_name, mechanism, ops_per_sec) from a bench JSON."""
    bench = doc.get("bench", "?")
    if bench == "bench_registry":
        for row in doc.get("sweep", {}).get("mechanisms", []):
            if row.get("ok") and row.get("ops_per_sec"):
                yield "sweep", row["name"], float(row["ops_per_sec"])
        for row in doc.get("throughput", {}).get("mechanisms", []):
            if row.get("batch_ops_per_sec"):
                yield "batch", row["name"], float(row["batch_ops_per_sec"])
            if row.get("sharded_ops_per_sec"):
                yield ("sharded", row["name"],
                       float(row["sharded_ops_per_sec"]))
        updates = doc.get("updates", {})
        for row in updates.get("epochs", []):
            if row.get("deltas_per_sec"):
                name = (f"{updates.get('name', '?')}"
                        f"@{row.get('drift', 'uniform')}"
                        f"-{row.get('dirty_fraction', '?')}")
                yield "update", name, float(row["deltas_per_sec"])
        # R5: the scalar/AVX2 dispatch A/B and the NUMA-aware executor.
        # Both legs are tracked independently — a scalar regression is a
        # kernel-semantics change, an avx2-only regression is a dispatch
        # or vectorization change.
        for row in doc.get("simd", {}).get("runs", []):
            tag = f"{row.get('name', '?')}@V{row.get('V', '?')}"
            if row.get("scalar_ops_per_sec"):
                yield "simd", f"{tag}-scalar", float(row["scalar_ops_per_sec"])
            if row.get("avx2_ops_per_sec"):
                yield "simd", f"{tag}-avx2", float(row["avx2_ops_per_sec"])
        for row in doc.get("numa", {}).get("runs", []):
            tag = f"{row.get('name', '?')}@V{row.get('V', '?')}"
            if row.get("ops_per_sec"):
                yield "numa", tag, float(row["ops_per_sec"])
    elif bench == "bench_server_loadgen":
        for row in doc.get("mechanisms", []):
            if row.get("ops_per_sec"):
                yield "net", row["name"], float(row["ops_per_sec"])
            if row.get("direct_ops_per_sec"):
                yield ("direct", row["name"],
                       float(row["direct_ops_per_sec"]))
        mixed = doc.get("mixed", {})
        if mixed.get("ops_per_sec"):
            yield "mixed", mixed.get("name", "?"), float(mixed["ops_per_sec"])
        # S3: read-tier scale-out — one series point per replica count, so
        # a lost scaling win (x4 regressing to x1 throughput) is flagged
        # even when the single-node numbers hold steady.
        for row in doc.get("replica", []):
            if row.get("ops_per_sec"):
                yield ("replica", f"x{row.get('replicas', '?')}",
                       float(row["ops_per_sec"]))
    else:
        print(f"::warning::unrecognized bench JSON ('{bench}'), skipping")


def load_series(path):
    with open(path) as f:
        return {(series, name): ops
                for series, name, ops in ops_series(json.load(f))}


def compare_pair(prior_path, current_path, threshold):
    """Prints the comparison table; returns the list of regressions."""
    print(f"\n== {prior_path} -> {current_path} ==")
    prior = load_series(prior_path)
    current = load_series(current_path)

    if not prior:
        print("no ops/sec series in the prior artifact; nothing to compare")
        return []

    regressions = []
    print(f"{'series':<8} {'mechanism':<24} {'prior':>14} {'current':>14} "
          f"{'delta':>8}")
    for key in sorted(current):
        series, name = key
        if key not in prior:
            print(f"{series:<8} {name:<24} {'(new)':>14} "
                  f"{current[key]:>14.0f} {'':>8}")
            continue
        delta = current[key] / prior[key] - 1.0
        print(f"{series:<8} {name:<24} {prior[key]:>14.0f} "
              f"{current[key]:>14.0f} {delta:>+7.1%}")
        if delta < -threshold:
            regressions.append((series, name, delta))
    for key in sorted(set(prior) - set(current)):
        print(f"{key[0]:<8} {key[1]:<24} {prior[key]:>14.0f} "
              f"{'(gone)':>14} {'':>8}")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("prior", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--pair", nargs=2, action="append", default=[],
                        metavar=("PRIOR", "CURRENT"),
                        help="a prior/current artifact pair to diff; "
                             "repeatable. A missing PRIOR is skipped, a "
                             "missing CURRENT is an error")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="flag drops beyond this fraction (default .20)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any regression is flagged")
    args = parser.parse_args()

    pairs = list(args.pair)
    if args.prior and args.current:
        pairs.insert(0, [args.prior, args.current])
    elif args.prior or args.current:
        parser.error("positional artifacts must come as a PRIOR CURRENT "
                     "pair (or use --pair)")
    if not pairs:
        parser.error("give PRIOR CURRENT positionally or at least one --pair")

    regressions = []
    compared = 0
    for prior_path, current_path in pairs:
        # A missing PRIOR is normal (first run on a branch, artifact
        # expired); a missing CURRENT means the bench this run was
        # supposed to produce never materialized — that is a broken bench
        # pipeline, not a clean skip, and must fail the step visibly.
        if not os.path.exists(current_path):
            print(f"::error::current bench artifact {current_path} was not "
                  f"produced by this run")
            return 2
        if not os.path.exists(prior_path):
            print(f"skipping {prior_path} -> {current_path}: "
                  f"no prior artifact")
            continue
        regressions += compare_pair(prior_path, current_path, args.threshold)
        compared += 1

    if compared == 0:
        print("no artifact pair present (first run on this branch?); "
              "nothing to compare")
        return 0

    for series, name, delta in regressions:
        print(f"::warning::ops/sec regression: {name} ({series}) "
              f"dropped {-delta:.1%} vs the previous run "
              f"(threshold {args.threshold:.0%})")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}")
        return 1 if args.strict else 0
    print("\nno ops/sec regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
