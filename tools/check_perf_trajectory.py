#!/usr/bin/env python3
"""Perf-trajectory check: compare two BENCH_registry.json artifacts.

CI downloads the artifact from the previous successful run on main and
runs this against the one the current run just produced. Every ops/sec
series the registry bench emits (R1 sweep batch throughput, R3 serving
throughput both plain-batch and sharded) is compared per mechanism; a
drop beyond the threshold (default 20%) is flagged. BENCH_server.json
from the network loadgen is accepted with the same flag when present.

Exit status is 0 unless --strict is given (shared CI runners are noisy;
the default mode annotates instead of failing the build). Flags use the
GitHub Actions ::warning:: syntax so they surface on the run summary.

Usage:
  check_perf_trajectory.py PRIOR.json CURRENT.json [--threshold 0.20]
                           [--strict]
"""

import argparse
import json
import sys


def ops_series(doc):
    """Yields (series_name, mechanism, ops_per_sec) from a bench JSON."""
    bench = doc.get("bench", "?")
    if bench == "bench_registry":
        for row in doc.get("sweep", {}).get("mechanisms", []):
            if row.get("ok") and row.get("ops_per_sec"):
                yield "sweep", row["name"], float(row["ops_per_sec"])
        for row in doc.get("throughput", {}).get("mechanisms", []):
            if row.get("batch_ops_per_sec"):
                yield "batch", row["name"], float(row["batch_ops_per_sec"])
            if row.get("sharded_ops_per_sec"):
                yield ("sharded", row["name"],
                       float(row["sharded_ops_per_sec"]))
    elif bench == "bench_server_loadgen":
        for row in doc.get("mechanisms", []):
            if row.get("ops_per_sec"):
                yield "net", row["name"], float(row["ops_per_sec"])
            if row.get("direct_ops_per_sec"):
                yield ("direct", row["name"],
                       float(row["direct_ops_per_sec"]))
    else:
        print(f"::warning::unrecognized bench JSON ('{bench}'), skipping")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("prior")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="flag drops beyond this fraction (default .20)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any regression is flagged")
    args = parser.parse_args()

    with open(args.prior) as f:
        prior = dict()
        for series, name, ops in ops_series(json.load(f)):
            prior[(series, name)] = ops
    with open(args.current) as f:
        current = dict()
        for series, name, ops in ops_series(json.load(f)):
            current[(series, name)] = ops

    if not prior:
        print("no ops/sec series in the prior artifact; nothing to compare")
        return 0

    regressions = []
    print(f"{'series':<8} {'mechanism':<20} {'prior':>14} {'current':>14} "
          f"{'delta':>8}")
    for key in sorted(current):
        series, name = key
        if key not in prior:
            print(f"{series:<8} {name:<20} {'(new)':>14} "
                  f"{current[key]:>14.0f} {'':>8}")
            continue
        delta = current[key] / prior[key] - 1.0
        print(f"{series:<8} {name:<20} {prior[key]:>14.0f} "
              f"{current[key]:>14.0f} {delta:>+7.1%}")
        if delta < -args.threshold:
            regressions.append((series, name, delta))
    for key in sorted(set(prior) - set(current)):
        print(f"{key[0]:<8} {key[1]:<20} {prior[key]:>14.0f} "
              f"{'(gone)':>14} {'':>8}")

    for series, name, delta in regressions:
        print(f"::warning::ops/sec regression: {name} ({series}) "
              f"dropped {-delta:.1%} vs the previous run "
              f"(threshold {args.threshold:.0%})")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}")
        return 1 if args.strict else 0
    print("\nno ops/sec regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
