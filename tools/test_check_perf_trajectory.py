#!/usr/bin/env python3
"""Unit tests for check_perf_trajectory.py, focused on the --pair plumbing
the CI perf-trajectory step depends on: a missing PRIOR artifact must be a
clean skip (first run on a branch), a missing CURRENT artifact must fail
loudly (the bench that should have produced it never ran), regressions
must be flagged (and only fail under --strict), and the R4 update, R5
scalar/AVX2/NUMA, and loadgen mixed and replica scale-out series must be
picked up from the bench JSON.

Run directly (python3 tools/test_check_perf_trajectory.py) or via ctest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_perf_trajectory.py")


def registry_doc(sweep_ops, update_ops, simd_ops=4000.0):
    return {
        "bench": "bench_registry",
        "sweep": {"mechanisms": [
            {"name": "tree-hld", "ok": True, "ops_per_sec": sweep_ops},
        ]},
        "throughput": {"mechanisms": [
            {"name": "tree-hld", "batch_ops_per_sec": 2.0 * sweep_ops,
             "sharded_ops_per_sec": 3.0 * sweep_ops},
        ]},
        "updates": {"name": "tree-hld", "epochs": [
            {"drift": "uniform", "dirty_fraction": 0.01,
             "deltas_per_sec": update_ops},
        ]},
        "simd": {"dispatch": "avx2", "queries": 200000, "runs": [
            {"name": "tree-hld", "V": 131072,
             "scalar_ops_per_sec": simd_ops,
             "avx2_ops_per_sec": 2.0 * simd_ops, "speedup": 2.0},
        ]},
        "numa": {"nodes": 1, "source": "single", "runs": [
            {"name": "tree-hld", "V": 131072,
             "ops_per_sec": 3.0 * simd_ops, "placed_buffers": 0},
        ]},
    }


def server_doc(net_ops, mixed_ops, replica_x2_ops=None):
    doc = {
        "bench": "bench_server_loadgen",
        "mechanisms": [
            {"name": "tree-hld", "ops_per_sec": net_ops,
             "direct_ops_per_sec": 2.0 * net_ops},
        ],
        "mixed": {"name": "tree-hld", "ops_per_sec": mixed_ops},
    }
    if replica_x2_ops is not None:
        doc["replica"] = [
            {"replicas": 1, "ops_per_sec": 400000.0},
            {"replicas": 2, "ops_per_sec": replica_x2_ops},
        ]
    return doc


class CheckPerfTrajectoryTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def path(self, name, doc=None):
        p = os.path.join(self.dir.name, name)
        if doc is not None:
            os.makedirs(os.path.dirname(p), exist_ok=True)
            with open(p, "w") as f:
                json.dump(doc, f)
        return p

    def run_tool(self, *args):
        return subprocess.run([sys.executable, TOOL, *args],
                              capture_output=True, text=True)

    def test_missing_prior_is_a_clean_skip(self):
        current = self.path("BENCH_registry.json",
                            registry_doc(1000.0, 500.0))
        result = self.run_tool("--pair", self.path("prior/nope.json"),
                               current)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("skipping", result.stdout)
        self.assertIn("nothing to compare", result.stdout)

    def test_missing_current_fails_loudly(self):
        prior = self.path("prior/BENCH_registry.json",
                          registry_doc(1000.0, 500.0))
        result = self.run_tool("--pair", prior,
                               self.path("never_produced.json"))
        self.assertEqual(result.returncode, 2, result.stdout)
        self.assertIn("::error::", result.stdout)

    def test_regression_warns_but_passes_without_strict(self):
        prior = self.path("prior/BENCH_registry.json",
                          registry_doc(1000.0, 500.0))
        current = self.path("BENCH_registry.json",
                            registry_doc(1000.0, 100.0))  # update -80%
        result = self.run_tool("--pair", prior, current)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("::warning::", result.stdout)
        self.assertIn("update", result.stdout)

    def test_regression_fails_under_strict(self):
        prior = self.path("prior/BENCH_registry.json",
                          registry_doc(1000.0, 500.0))
        current = self.path("BENCH_registry.json",
                            registry_doc(100.0, 500.0))  # sweep -90%
        result = self.run_tool("--pair", prior, current, "--strict")
        self.assertEqual(result.returncode, 1, result.stdout)

    def test_update_and_mixed_series_are_compared(self):
        prior_r = self.path("prior/BENCH_registry.json",
                            registry_doc(1000.0, 500.0))
        current_r = self.path("BENCH_registry.json",
                              registry_doc(1000.0, 505.0))
        prior_s = self.path("prior/BENCH_server.json",
                            server_doc(900.0, 800.0))
        current_s = self.path("BENCH_server.json", server_doc(910.0, 790.0))
        result = self.run_tool("--pair", prior_r, current_r,
                               "--pair", prior_s, current_s)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("tree-hld@uniform-0.01", result.stdout)
        self.assertIn("mixed", result.stdout)
        self.assertIn("no ops/sec regressions", result.stdout)

    def test_simd_and_numa_series_are_compared(self):
        # Both dispatch legs are independent series; a drop in the avx2
        # leg alone must be flagged while the scalar leg stays green.
        prior = self.path("prior/BENCH_registry.json",
                          registry_doc(1000.0, 500.0, simd_ops=4000.0))
        current_doc = registry_doc(1000.0, 500.0, simd_ops=4000.0)
        current_doc["simd"]["runs"][0]["avx2_ops_per_sec"] = 2000.0  # -75%
        current = self.path("BENCH_registry.json", current_doc)
        result = self.run_tool("--pair", prior, current)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("tree-hld@V131072-scalar", result.stdout)
        self.assertIn("tree-hld@V131072-avx2", result.stdout)
        self.assertIn("tree-hld@V131072", result.stdout)  # numa series
        self.assertIn("::warning::", result.stdout)
        self.assertIn("avx2", result.stdout)
        # Only the avx2 leg regressed.
        warnings = [line for line in result.stdout.splitlines()
                    if line.startswith("::warning::")]
        self.assertEqual(len(warnings), 1, result.stdout)
        self.assertIn("-avx2", warnings[0])

    def test_replica_scaleout_series_is_compared_per_replica_count(self):
        # The read-tier scaling curve is per-replica-count series points:
        # x2 collapsing to x1 throughput is a lost scaling win and must be
        # flagged even though the single-node (x1) series holds steady.
        prior = self.path("prior/BENCH_server.json",
                          server_doc(900.0, 800.0, replica_x2_ops=800000.0))
        current = self.path("BENCH_server.json",
                            server_doc(900.0, 800.0, replica_x2_ops=400000.0))
        result = self.run_tool("--pair", prior, current)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("x1", result.stdout)
        self.assertIn("x2", result.stdout)
        warnings = [line for line in result.stdout.splitlines()
                    if line.startswith("::warning::")]
        self.assertEqual(len(warnings), 1, result.stdout)
        self.assertIn("x2", warnings[0])
        self.assertIn("replica", warnings[0])

    def test_positional_pair_still_works(self):
        prior = self.path("prior/BENCH_server.json", server_doc(900.0, 800.0))
        current = self.path("BENCH_server.json", server_doc(900.0, 800.0))
        result = self.run_tool(prior, current)
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_mixed_missing_and_present_pairs_compose(self):
        # One pair skipped (no prior), one compared: exit 0 and the
        # compared pair's table is printed.
        current_r = self.path("BENCH_registry.json",
                              registry_doc(1000.0, 500.0))
        prior_s = self.path("prior/BENCH_server.json",
                            server_doc(900.0, 800.0))
        current_s = self.path("BENCH_server.json", server_doc(905.0, 805.0))
        result = self.run_tool("--pair", self.path("prior/absent.json"),
                               current_r, "--pair", prior_s, current_s)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("skipping", result.stdout)
        self.assertIn("net", result.stdout)


if __name__ == "__main__":
    unittest.main()
