#!/usr/bin/env bash
# Replicated-read-tier smoke: drives examples/cluster_node the way an
# operator would run the tier, and checks the properties the design
# promises.
#
#   1. Start a coordinator and two replicas on ephemeral ports.
#   2. Release an updatable oracle on the coordinator; wait until both
#      replicas report the epoch applied; `drive query` all three nodes
#      and diff the hex-float answers — bit-identity, not approximation.
#   3. Apply a weight-update epoch (ships as a delta) and re-check
#      three-way bit-identity at the new epoch.
#   4. kill -9 one replica mid-service, run another update epoch while
#      it is down, restart it (late joiner: base chunk + delta replay),
#      and check bit-identity again.
#
# Usage: tools/replica_smoke.sh [build-dir]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
NODE="${BUILD_DIR}/examples/cluster_node"

if [[ ! -x "${NODE}" ]]; then
  echo "error: ${NODE} not built" >&2
  exit 1
fi

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "${pid}" 2>/dev/null || true
  done
  rm -rf "${WORK}"
}
trap cleanup EXIT

# Waits for a node's READY line and echoes it.
ready_line() {  # <logfile>
  for _ in $(seq 1 100); do
    if grep -q '^READY' "$1" 2>/dev/null; then
      grep '^READY' "$1" | head -n1
      return 0
    fi
    sleep 0.1
  done
  echo "error: node never printed READY ($1)" >&2
  exit 1
}

echo "== start coordinator + two replicas =="
"${NODE}" coordinator >"${WORK}/coord.log" 2>&1 &
PIDS+=($!); disown
COORD_READY="$(ready_line "${WORK}/coord.log")"
COORD_QUERY="$(sed -n 's/.*query=\([0-9]*\).*/\1/p' <<<"${COORD_READY}")"
COORD_REPL="$(sed -n 's/.*repl=\([0-9]*\).*/\1/p' <<<"${COORD_READY}")"
echo "   coordinator: query=${COORD_QUERY} repl=${COORD_REPL}"

"${NODE}" replica "${COORD_REPL}" r1 >"${WORK}/r1.log" 2>&1 &
R1_PID=$!
PIDS+=("${R1_PID}"); disown
R1_QUERY="$(ready_line "${WORK}/r1.log" | sed -n 's/.*query=\([0-9]*\).*/\1/p')"

"${NODE}" replica "${COORD_REPL}" r2 >"${WORK}/r2.log" 2>&1 &
R2_PID=$!
PIDS+=("${R2_PID}"); disown
R2_QUERY="$(ready_line "${WORK}/r2.log" | sed -n 's/.*query=\([0-9]*\).*/\1/p')"
echo "   replicas: r1 query=${R1_QUERY}  r2 query=${R2_QUERY}"

echo "== release on the coordinator; replicas must converge =="
HANDLE="$("${NODE}" drive "${COORD_QUERY}" release live | awk '{print $2}')"
"${NODE}" drive "${R1_QUERY}" wait_lsn 1 >/dev/null
"${NODE}" drive "${R2_QUERY}" wait_lsn 1 >/dev/null

check_identity() {  # <label>
  "${NODE}" drive "${COORD_QUERY}" query "${HANDLE}" >"${WORK}/coord.q"
  "${NODE}" drive "${R1_QUERY}" query "${HANDLE}" >"${WORK}/r1.q"
  "${NODE}" drive "${R2_QUERY}" query "${HANDLE}" >"${WORK}/r2.q"
  diff "${WORK}/coord.q" "${WORK}/r1.q" >/dev/null || {
    echo "error: r1 diverges from the coordinator ($1)" >&2; exit 1; }
  diff "${WORK}/coord.q" "${WORK}/r2.q" >/dev/null || {
    echo "error: r2 diverges from the coordinator ($1)" >&2; exit 1; }
  echo "   bit-identical across all three nodes ($1)"
}
check_identity "post-release"

echo "== update epoch ships as a delta; identity must hold at LSN 2 =="
"${NODE}" drive "${COORD_QUERY}" update "${HANDLE}" >/dev/null
"${NODE}" drive "${R1_QUERY}" wait_lsn 2 >/dev/null
"${NODE}" drive "${R2_QUERY}" wait_lsn 2 >/dev/null
check_identity "post-update"

echo "== kill -9 r2, update while it is down, restart as late joiner =="
kill -9 "${R2_PID}"
wait "${R2_PID}" 2>/dev/null || true
"${NODE}" drive "${COORD_QUERY}" update "${HANDLE}" >/dev/null
"${NODE}" drive "${R1_QUERY}" wait_lsn 3 >/dev/null

"${NODE}" replica "${COORD_REPL}" r2-reborn >"${WORK}/r2b.log" 2>&1 &
PIDS+=($!); disown
R2_QUERY="$(ready_line "${WORK}/r2b.log" | sed -n 's/.*query=\([0-9]*\).*/\1/p')"
"${NODE}" drive "${R2_QUERY}" wait_lsn 3 >/dev/null
check_identity "late-joiner"

echo "OK: replica smoke passed"
