// One binary, three roles — the replicated read tier as an operator
// meets it:
//
//   cluster_node coordinator
//     Budget-holding QueryServer plus a cluster::Coordinator. Prints
//     "READY query=<port> repl=<port>" and serves until killed.
//
//   cluster_node replica <repl_port> [name]
//     Ledger-less replica-mode QueryServer kept in sync by a
//     cluster::Replica subscribed to <repl_port>. Prints
//     "READY query=<port>" and serves until killed.
//
//   cluster_node drive <query_port> release <handle_name>
//     Releases tree-hld under <handle_name>; prints "HANDLE <id>".
//   cluster_node drive <query_port> update <handle_id>
//     Applies one deterministic weight-update epoch.
//   cluster_node drive <query_port> query <handle_id>
//     Prints a fixed query batch's answers in hex-float — byte-exact,
//     so `diff` across nodes IS the bit-identity check.
//   cluster_node drive <query_port> wait_lsn <lsn>
//     Polls Stats until the node's applied epoch LSN reaches <lsn>.
//
// Every node builds the same deterministic workload, so replicas can
// re-materialize shipped images locally. tools/replica_smoke.sh drives
// this binary end to end in CI.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/replica.h"
#include "common/random.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"

namespace {

constexpr int kNumVertices = 64;
constexpr uint64_t kSeed = 0x5ea1f00d2016ULL;

template <typename T>
T OrDie(dpsp::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "cluster_node: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void OrDie(const dpsp::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "cluster_node: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

struct Workload {
  dpsp::Graph graph;
  dpsp::EdgeWeights weights;
};

Workload MakeWorkload() {
  dpsp::Rng rng(kSeed);
  dpsp::Graph graph = OrDie(dpsp::MakePathGraph(kNumVertices));
  dpsp::EdgeWeights weights =
      dpsp::MakeUniformWeights(graph, 0.1, 0.9, &rng);
  return {std::move(graph), std::move(weights)};
}

[[noreturn]] void ServeForever() {
  for (;;) sleep(3600);
}

int RunCoordinator() {
  using namespace dpsp;
  Workload workload = MakeWorkload();
  ReleaseContext ctx = OrDie(
      ReleaseContext::Create(PrivacyParams{0.5, 1e-6, 1.0}, kSeed));
  ctx.SetTotalBudget(PrivacyParams{1e9, 0.5, 1.0});
  net::QueryServer server({}, std::move(ctx));
  OrDie(server.AddWorkload("path", workload.graph, workload.weights));
  OrDie(server.Start());
  cluster::Coordinator coordinator(cluster::CoordinatorOptions{}, &server);
  OrDie(coordinator.Start());
  std::printf("READY query=%u repl=%u\n", server.port(),
              coordinator.replication_port());
  std::fflush(stdout);
  ServeForever();
}

int RunReplica(uint16_t repl_port, const char* name) {
  using namespace dpsp;
  Workload workload = MakeWorkload();
  net::QueryServer server{net::QueryServerOptions{}};  // no ledger
  OrDie(server.AddWorkload("path", workload.graph, workload.weights));
  OrDie(server.Start());
  cluster::ReplicaOptions options;
  options.coordinator_port = repl_port;
  options.name = name;
  cluster::Replica replica(options, &server);
  OrDie(replica.Start());
  std::printf("READY query=%u\n", server.port());
  std::fflush(stdout);
  ServeForever();
}

int RunDrive(uint16_t port, const std::string& verb,
             const std::string& arg) {
  using namespace dpsp;
  net::Client client =
      OrDie(net::Client::Connect("127.0.0.1", port));
  if (verb == "release") {
    net::ReleaseInfo info = OrDie(client.Release("path", "tree-hld", arg));
    std::printf("HANDLE %u\n", info.handle_id);
    return 0;
  }
  if (verb == "update") {
    uint32_t handle_id = static_cast<uint32_t>(std::stoul(arg));
    // Deterministic epoch: the same edges get the same new weights no
    // matter which invocation this is.
    std::vector<EdgeWeightDelta> deltas = {{3, 0.42}, {17, 0.58}};
    OrDie(client.UpdateWeights(handle_id, deltas).status());
    std::printf("UPDATED %u\n", handle_id);
    return 0;
  }
  if (verb == "query") {
    uint32_t handle_id = static_cast<uint32_t>(std::stoul(arg));
    Rng rng(kSeed ^ 0xd21e);
    std::vector<VertexPair> pairs;
    for (int i = 0; i < 64; ++i) {
      pairs.emplace_back(
          static_cast<VertexId>(rng.UniformInt(0, kNumVertices - 1)),
          static_cast<VertexId>(rng.UniformInt(0, kNumVertices - 1)));
    }
    std::vector<double> distances = OrDie(client.Query(handle_id, pairs));
    for (size_t i = 0; i < distances.size(); ++i) {
      // %a is exact: equal output lines mean bit-identical doubles.
      std::printf("%zu %a\n", i, distances[i]);
    }
    return 0;
  }
  if (verb == "wait_lsn") {
    uint64_t target = std::stoull(arg);
    for (int i = 0; i < 200; ++i) {
      net::ServerStats stats = OrDie(client.Stats());
      if (stats.has_cluster && stats.last_epoch_lsn >= target) {
        std::printf("LSN %llu\n",
                    static_cast<unsigned long long>(stats.last_epoch_lsn));
        return 0;
      }
      usleep(50000);
    }
    std::fprintf(stderr, "cluster_node: node never reached LSN %s\n",
                 arg.c_str());
    return 1;
  }
  std::fprintf(stderr, "cluster_node: unknown drive verb '%s'\n",
               verb.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "coordinator") == 0) {
    return RunCoordinator();
  }
  if (argc >= 3 && std::strcmp(argv[1], "replica") == 0) {
    return RunReplica(static_cast<uint16_t>(std::stoul(argv[2])),
                      argc >= 4 ? argv[3] : "replica");
  }
  if (argc >= 5 && std::strcmp(argv[1], "drive") == 0) {
    return RunDrive(static_cast<uint16_t>(std::stoul(argv[2])), argv[3],
                    argv[4]);
  }
  std::fprintf(stderr,
               "usage: cluster_node coordinator\n"
               "       cluster_node replica <repl_port> [name]\n"
               "       cluster_node drive <query_port> "
               "release|update|query|wait_lsn <arg>\n");
  return 2;
}
