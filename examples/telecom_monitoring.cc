// Telecom latency monitoring: bounded-weight distances (Section 4.2).
//
// An ISP's backbone topology is public; per-link latencies are business-
// sensitive (they reveal customer load). Link latencies are bounded by an
// SLA cap M, which is exactly the bounded-weight setting: release all-pairs
// latencies with error O~(sqrt(V M / eps)) instead of ~V/eps.
//
// The demo builds a geometric backbone, releases the covering-based oracle
// under (eps, delta)-DP, and prints measured error vs the generic
// per-pair baseline.

#include <cstdio>

#include "common/random.h"
#include "common/table.h"
#include "core/baselines.h"
#include "core/bounded_weight.h"
#include "graph/generators.h"

using namespace dpsp;  // NOLINT — example brevity

int main() {
  Rng rng(/*seed=*/4242);
  const double sla_cap_ms = 8.0;

  GeometricGraph backbone = MakeRandomGeometricGraph(150, 0.16, &rng).value();
  EdgeWeights latency =
      MakeUniformWeights(backbone.graph, 0.5, sla_cap_ms, &rng);
  std::printf("backbone: %s, latency cap %.1f ms\n",
              backbone.graph.ToString().c_str(), sla_cap_ms);

  BoundedWeightOptions options;
  options.params = PrivacyParams{/*epsilon=*/2.0, /*delta=*/1e-6, 1.0};
  options.max_weight = sla_cap_ms;
  auto oracle =
      BoundedWeightOracle::Build(backbone.graph, latency, options, &rng)
          .value();
  std::printf("covering: radius k=%d, |Z|=%d of %d routers\n",
              oracle->covering().k, oracle->covering().size(),
              backbone.graph.num_vertices());

  DistanceMatrix exact = AllPairsDijkstra(backbone.graph, latency).value();
  OracleErrorReport covering_report =
      EvaluateOracleAllPairs(backbone.graph, exact, *oracle).value();

  auto baseline =
      MakePerPairLaplaceOracle(backbone.graph, latency, options.params, &rng)
          .value();
  OracleErrorReport baseline_report =
      EvaluateOracleAllPairs(backbone.graph, exact, *baseline).value();

  Table table("all-pairs latency release, eps=2, delta=1e-6",
              {"mechanism", "mean|err| ms", "p95|err| ms", "max|err| ms"});
  table.Row()
      .Add(oracle->Name())
      .Add(covering_report.mean_abs_error, 4)
      .Add(covering_report.p95_abs_error, 4)
      .Add(covering_report.max_abs_error, 4);
  table.Row()
      .Add(baseline->Name())
      .Add(baseline_report.mean_abs_error, 4)
      .Add(baseline_report.p95_abs_error, 4)
      .Add(baseline_report.max_abs_error, 4);
  table.Print();
  std::printf("\nproved per-query bound for the covering oracle: %.2f ms\n",
              oracle->ErrorBound(0.05));
  return 0;
}
