// Continual release: full re-release vs incremental dirty-subtree epochs.
//
// A telecom operator serves private distance queries over a backbone tree
// with leaf access links. Congestion drifts every quarter hour — but only
// on a handful of access links; the backbone is stable. The service must
// bound its TOTAL privacy loss over the day.
//
// Two ways to run that day, side by side on identical drift:
//   * FULL:        re-release the whole tree-hld structure every epoch.
//     Each refresh is one full release of eps, so the daily ledger grows
//     by eps per epoch and the budget dies by mid-morning.
//   * INCREMENTAL: build once, then ApplyWeightUpdates per epoch. Only
//     the dyadic blocks containing the drifted edges are redrawn, and the
//     ledger is charged the dirty fraction eps * g / L — for access-link
//     drift the dirty stack g collapses to 1, so an epoch costs eps / L
//     and the same budget lasts the whole day with room to spare.
//
// The cumulative-epsilon table is the economics of the whole PR in one
// printout; the wall-clock totals show the same asymmetry in time.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/table.h"
#include "core/hld_oracle.h"
#include "dp/release_context.h"
#include "graph/generators.h"

using namespace dpsp;  // NOLINT — example brevity

int main() {
  // Backbone of 512 routers, 7 access links each: V = 4096. The last
  // spine router's access links are skipped by the drift sampler — with
  // no further spine, its heaviest child IS an access link, the one leg
  // that would reinstate the full sensitivity.
  const int spine = 512, legs = 7;
  Rng rng(/*seed=*/24);
  Graph network = MakeCaterpillarTree(spine, legs).value();
  EdgeWeights load = MakeUniformWeights(network, 0.2, 1.0, &rng);
  const EdgeId first_leg = spine - 1;
  const EdgeId last_leg = network.num_edges() - legs;  // exclusive

  const double per_release_eps = 0.25;
  const PrivacyParams params{per_release_eps, 0.0, 1.0};
  const PrivacyParams daily_budget{4.0, 1e-5, 1.0};
  const int epochs = 96;  // one day, quarter-hourly
  const int drift_edges = 8;

  // Two ledgers, one drift. Each gets the same hard daily ceiling, which
  // stops a refresh BEFORE it would overspend.
  ReleaseContext full_ctx =
      ReleaseContext::Create(params, /*seed=*/24).value();
  full_ctx.SetTotalBudget(daily_budget, /*delta_slack=*/1e-6);
  ReleaseContext inc_ctx =
      ReleaseContext::Create(params, /*seed=*/25).value();
  inc_ctx.SetTotalBudget(daily_budget, /*delta_slack=*/1e-6);

  WallTimer inc_build_timer;
  std::unique_ptr<HldTreeOracle> incremental =
      HldTreeOracle::Build(network, load, inc_ctx).value();
  double inc_wall_ms = inc_build_timer.Ms();
  double full_wall_ms = 0.0;
  int full_blocked_at = -1;

  Table table(
      StrFormat("%d quarter-hourly epochs, %d access links drifting each, "
                "eps=%g per full release",
                epochs, drift_edges, per_release_eps),
      {"epoch", "full cumulative eps", "incremental cumulative eps",
       "epoch charge (inc)"});
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // Congestion drifts on a few access links.
    std::vector<EdgeWeightDelta> drift;
    for (int i = 0; i < drift_edges; ++i) {
      EdgeId e = static_cast<EdgeId>(rng.UniformInt(first_leg, last_leg - 1));
      double w = rng.Uniform(0.2, 2.0);
      drift.push_back({e, w});
      load[static_cast<size_t>(e)] = w;
    }

    // FULL: one whole release per epoch, until the ceiling refuses.
    if (full_blocked_at < 0) {
      WallTimer timer;
      auto rebuilt = HldTreeOracle::Build(network, load, full_ctx);
      full_wall_ms += timer.Ms();
      if (!rebuilt.ok()) {
        full_blocked_at = epoch;
        std::printf(
            "full re-release blocked at epoch %d: daily budget exhausted\n",
            epoch);
      }
    }

    // INCREMENTAL: redraw only the dirty blocks, charge the dirty
    // fraction.
    inc_build_timer.Reset();
    if (!incremental->ApplyWeightUpdates(drift, inc_ctx).ok()) {
      std::printf("incremental epoch %d blocked (unexpected)\n", epoch);
      break;
    }
    inc_wall_ms += inc_build_timer.Ms();

    if (epoch % 16 == 0 || epoch == epochs - 1) {
      table.Row()
          .Add(epoch)
          .Add(full_ctx.SpentTotal().epsilon, 4)
          .Add(inc_ctx.SpentTotal().epsilon, 4)
          .Add(incremental->last_update().charged_epsilon, 4);
    }
  }
  table.Print();

  std::printf(
      "\nfull rebuilds:   %5.1f ms of release work, budget died at epoch "
      "%d of %d\n",
      full_wall_ms, full_blocked_at, epochs);
  std::printf(
      "incremental:     %5.1f ms of release work, finished the day at "
      "eps=%.3f of %.1f\n",
      inc_wall_ms, inc_ctx.SpentTotal().epsilon, daily_budget.epsilon);
  std::printf(
      "per-epoch charge: full re-release pays eps=%.3f; access-link drift "
      "pays eps=%.4f\n(sensitivity 1 of %d levels) — the Theorem 4.2 "
      "recursion rebuilt on dirty subtrees only.\n",
      per_release_eps, incremental->last_update().charged_epsilon,
      incremental->sensitivity());

  // The ledger tells the same story in its own words.
  std::printf("\nincremental ledger: %d releases recorded, within daily "
              "budget? %s\n",
              static_cast<int>(inc_ctx.telemetry().size()),
              inc_ctx.accountant().WithinBudget(daily_budget, 1e-6)
                  ? "yes" : "no");
  return 0;
}
