// Continual release with budget accounting.
//
// A navigation service refreshes its private weight map every epoch as
// congestion evolves. Each refresh is one Algorithm-3 release; the service
// must bound the TOTAL privacy loss over a day. This example runs 96
// quarter-hourly refreshes at a small per-release epsilon, tracks the
// spend with PrivacyAccountant, and shows that advanced composition
// (Lemma 3.4) certifies a much smaller total epsilon than naive summation
// — the difference between exhausting a daily budget by mid-morning and
// lasting the whole day. (Advanced composition only wins once the number
// of releases exceeds ~2 ln(1/delta'); at 96 releases it clearly does.)

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "common/table.h"
#include "core/private_shortest_path.h"
#include "dp/release_context.h"
#include "graph/generators.h"

using namespace dpsp;  // NOLINT — example brevity

int main() {
  Rng rng(/*seed=*/24);
  RoadNetwork city = MakeSyntheticRoadNetwork(8, 8, 0.3, &rng).value();

  // One ReleaseContext is the service's daily ledger: per-release budget,
  // seeded randomness, accountant, and a hard daily ceiling that stops a
  // refresh BEFORE it would overspend.
  const double per_release_eps = 0.05;
  ReleaseContext ctx =
      ReleaseContext::Create(PrivacyParams{per_release_eps, 0.0, 1.0},
                             /*seed=*/24)
          .value();
  PrivacyParams daily_budget{4.0, 1e-5, 1.0};
  ctx.SetTotalBudget(daily_budget, /*delta_slack=*/1e-6);

  PrivateShortestPathOptions options;
  options.params = ctx.params();
  options.gamma = 0.05;

  Table table("96 quarter-hourly weight-map refreshes at eps=0.05 each",
              {"refresh", "route 0->63 true time", "basic total eps",
               "advanced total eps (d'=1e-6)"});
  for (int epoch = 0; epoch < 96; ++epoch) {
    // Congestion drifts through the day.
    EdgeWeights traffic =
        MakeCongestionWeights(city, 3 + epoch % 3, 1.0 + 0.2 * (epoch % 5),
                              &rng);
    // Draw the budget first: if the day's ceiling would be exceeded, no
    // noise is drawn and nothing is released.
    if (!ctx.ChargeRelease(StrFormat("refresh-%02d", epoch)).ok()) {
      std::printf("refresh %d blocked: daily budget exhausted\n", epoch);
      break;
    }
    PrivateShortestPaths release =
        PrivateShortestPaths::Release(city.graph, traffic, options,
                                      ctx.rng())
            .value();
    std::vector<EdgeId> route = release.Path(0, 63).value();
    if (epoch % 24 == 0 || epoch == 95) {
      table.Row()
          .Add(epoch)
          .Add(TotalWeight(traffic, route), 4)
          .Add(ctx.accountant().BasicTotal().epsilon, 4)
          .Add(ctx.accountant().AdvancedTotal(1e-6).value().epsilon, 4);
    }
  }
  table.Print();

  std::printf("\nwithin daily budget (eps=4, delta=1e-5)? %s\n",
              ctx.accountant().WithinBudget(daily_budget, 1e-6) ? "yes"
                                                                : "no");
  std::printf(
      "naive summation says eps=%.2f (over budget); Lemma 3.4 certifies "
      "eps=%.2f.\n",
      ctx.accountant().BasicTotal().epsilon,
      ctx.accountant().AdvancedTotal(1e-6).value().epsilon);

  // The same ledger under the pluggable zCDP policy: every pure eps-DP
  // refresh is exactly (eps^2/2)-zCDP, and rho-sum composition certifies
  // a slightly tighter total than Lemma 3.4 at the same target delta.
  std::unique_ptr<Accountant> zcdp =
      Accountant::Create(AccountingPolicy::kZcdp);
  for (const AccountantEntry& entry : ctx.accountant().entries()) {
    if (!zcdp->Record(entry.label, entry.loss).ok()) {
      std::puts("zCDP accounting inapplicable to this ledger");
      return 0;
    }
  }
  std::printf(
      "zCDP accounting (rho-sum, converted at delta=1e-6) certifies "
      "eps=%.2f.\n",
      zcdp->Total(1e-6).epsilon);
  return 0;
}
