// Traffic navigation: the paper's §1.1 motivating scenario.
//
// A navigation provider knows the public road map and privately observed
// congestion (derived from individual drivers' GPS traces). It wants to
// answer routing queries without leaking any individual's contribution to
// the congestion data. Algorithm 3 releases a noisy+offset weight map once;
// every subsequent route query is post-processing.
//
// The demo compares, for a rush-hour snapshot:
//   * the exact fastest route (non-private),
//   * the private route, its true travel time, and the Theorem 5.5 bound.

#include <cstdio>

#include "common/random.h"
#include "common/table.h"
#include "core/private_shortest_path.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"

using namespace dpsp;  // NOLINT — example brevity

int main() {
  Rng rng(/*seed=*/77);

  // 12x12 street grid with diagonal shortcuts; congestion around 4
  // hotspots triples travel times nearby.
  RoadNetwork city = MakeSyntheticRoadNetwork(12, 12, 0.3, &rng).value();
  EdgeWeights rush_hour = MakeCongestionWeights(city, 4, 3.0, &rng);
  std::printf("city: %s\n", city.graph.ToString().c_str());

  PrivateShortestPathOptions options;
  options.params = PrivacyParams{/*epsilon=*/1.0, 0.0, 1.0};
  options.gamma = 0.05;
  PrivateShortestPaths release =
      PrivateShortestPaths::Release(city.graph, rush_hour, options, &rng)
          .value();

  Table table("routes under rush-hour congestion (eps=1)",
              {"from", "to", "exact time", "private time", "excess",
               "Thm 5.5 bound"});
  int n = city.graph.num_vertices();
  for (auto [s, t] : {std::pair<int, int>{0, n - 1},
                      {11, n - 12},
                      {5, n / 2},
                      {n / 3, 2 * n / 3}}) {
    ShortestPathTree exact = Dijkstra(city.graph, rush_hour, s).value();
    std::vector<EdgeId> exact_route =
        ExtractPathEdges(city.graph, exact, t).value();
    std::vector<EdgeId> private_route = release.Path(s, t).value();
    double exact_time = exact.distance[static_cast<size_t>(t)];
    double private_time = TotalWeight(rush_hour, private_route);
    table.Row()
        .Add(s)
        .Add(t)
        .Add(exact_time, 4)
        .Add(private_time, 4)
        .Add(private_time - exact_time, 3)
        .Add(release.ErrorBoundForHops(static_cast<int>(exact_route.size())),
             4);
  }
  table.Print();
  std::puts(
      "\nEvery route above is computed from ONE eps=1 private release; "
      "answering more\nqueries costs no additional privacy.");
  return 0;
}
