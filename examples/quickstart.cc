// Quickstart: the library in ~60 lines.
//
// 1. Build a public topology and a private weight function.
// 2. Create a ReleaseContext (validated budget + accountant + rng).
// 3. Release a private distance oracle through the OracleRegistry.
// 4. Release private shortest paths (Algorithm 3, any graph).
// 5. Query both — single or batched — as post-processing, free of
//    privacy cost; the context holds the ledger and telemetry.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/random.h"
#include "core/oracle_registry.h"
#include "core/private_shortest_path.h"
#include "core/tree_distance.h"
#include "graph/generators.h"

using namespace dpsp;  // NOLINT — example brevity

int main() {
  Rng rng(/*seed=*/2016);

  // --- A tree network with private edge weights. -------------------------
  Graph tree = MakeBalancedTree(/*n=*/31, /*branching=*/2).value();
  EdgeWeights tree_weights = MakeUniformWeights(tree, 1.0, 10.0, &rng);

  // One unit of l1 change in the weights is one "individual". The context
  // validates the budget once and meters every release built through it.
  PrivacyParams params{/*epsilon=*/1.0, /*delta=*/0.0,
                       /*neighbor_l1_bound=*/1.0};
  ReleaseContext ctx = ReleaseContext::Create(params, /*seed=*/2016).value();

  // eps-DP all-pairs distance oracle (error O(log^2.5 V)/eps, Thm 4.2).
  // Any registered mechanism is one name away; see OracleRegistry::Names().
  auto oracle = OracleRegistry::Global().Create(TreeAllPairsOracle::kName,
                                                tree, tree_weights, ctx);
  if (!oracle.ok()) {
    std::fprintf(stderr, "%s\n", oracle.status().ToString().c_str());
    return 1;
  }
  double d = (*oracle)->Distance(5, 27).value();
  std::printf("private distance(5, 27)  = %.3f\n", d);
  RootedTree rooted = RootedTree::FromGraph(tree, 0).value();
  std::printf("exact   distance(5, 27)  = %.3f\n",
              rooted.RootDistances(tree_weights)[5] +
                  rooted.RootDistances(tree_weights)[27] -
                  2 * rooted.RootDistances(tree_weights)[1]);

  // Batched queries share one call (and worker threads on big batches).
  std::vector<VertexPair> pairs = {{5, 27}, {3, 11}, {0, 30}};
  std::vector<double> batch = (*oracle)->DistanceBatch(pairs).value();
  std::printf("batched  distances       = %.3f %.3f %.3f\n", batch[0],
              batch[1], batch[2]);
  std::printf("budget spent so far: eps=%.2f over %d release(s)\n",
              ctx.accountant().BasicTotal().epsilon,
              ctx.accountant().num_releases());

  // --- Private shortest paths on a general graph (Algorithm 3). ----------
  Graph city = MakeGridGraph(6, 6).value();
  EdgeWeights travel_times = MakeUniformWeights(city, 1.0, 5.0, &rng);
  PrivateShortestPathOptions sp_options;
  sp_options.params = params;
  sp_options.gamma = 0.05;
  auto release =
      PrivateShortestPaths::Release(city, travel_times, sp_options, &rng);
  if (!release.ok()) {
    std::fprintf(stderr, "%s\n", release.status().ToString().c_str());
    return 1;
  }
  std::vector<EdgeId> route = release->Path(0, 35).value();
  std::printf("private route 0 -> 35 uses %zu edges, true travel time %.3f\n",
              route.size(), TotalWeight(travel_times, route));
  std::printf("error vs optimum bounded by %.3f for a %zu-hop competitor\n",
              release->ErrorBoundForHops(static_cast<int>(route.size())),
              route.size());
  return 0;
}
