// Network serving demo: starts a loopback QueryServer over a road-like
// path workload, then drives it through net::Client exactly the way a
// remote deployment would — release an oracle by name, stream query
// batches against the handle, and watch the admission controller refuse
// an over-budget release with a typed error.
//
// Also serves as the CI server smoke test: it exercises the full
// socket -> frame -> release -> sharded-batch -> response path and exits
// non-zero if any step fails.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"

namespace {

template <typename T>
T OrDie(dpsp::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "demo failure: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void OrDie(const dpsp::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "demo failure: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace dpsp;

  // --- server side: load a workload, install a hard total budget, serve.
  Rng rng(2016);
  Graph graph = OrDie(MakePathGraph(4096));
  EdgeWeights weights = MakeUniformWeights(graph, 0.2, 1.8, &rng);

  PrivacyParams per_release{/*epsilon=*/1.0, /*delta=*/0.0,
                            /*neighbor_l1_bound=*/1.0};
  ReleaseContext ctx = OrDie(ReleaseContext::Create(per_release, 0xfeed));
  ctx.SetTotalBudget(PrivacyParams{2.5, 0.0, 1.0});

  net::QueryServer server({}, std::move(ctx));
  OrDie(server.AddWorkload("roads", std::move(graph), std::move(weights)));
  OrDie(server.Start());
  std::printf("server listening on 127.0.0.1:%u\n", server.port());

  // --- client side: everything below only touches the wire API.
  net::Client client = OrDie(net::Client::Connect("127.0.0.1",
                                                  server.port()));

  net::ReleaseInfo hld =
      OrDie(client.Release("roads", "tree-hld", "hld-main"));
  std::printf("released tree-hld as handle %u (eps=%.1f, built in %.2fms)\n",
              hld.handle_id, hld.epsilon, hld.wall_ms);

  std::vector<VertexPair> pairs;
  for (int i = 0; i < 10; ++i) {
    pairs.emplace_back(rng.UniformInt(0, 4095), rng.UniformInt(0, 4095));
  }
  std::vector<double> distances = OrDie(client.Query(hld.handle_id, pairs));
  for (size_t i = 0; i < pairs.size(); ++i) {
    std::printf("  dist(%4d, %4d) ~ %8.3f\n", pairs[i].first,
                pairs[i].second, distances[i]);
  }

  // A second release fits the 2.5 budget...
  net::ReleaseInfo tree =
      OrDie(client.Release("roads", "tree-recursive", "tree-main"));
  std::printf("released tree-recursive as handle %u\n", tree.handle_id);

  // ...but a third (1+1+1 > 2.5) is refused by admission control before
  // any construction work, with a typed error the client can branch on.
  Result<net::ReleaseInfo> third =
      client.Release("roads", "path-hierarchy", "one-too-many");
  if (third.ok()) {
    std::fprintf(stderr, "over-budget release was granted?!\n");
    return 1;
  }
  // last_error() is empty when the failure was transport-level rather
  // than a typed Error frame — check before branching on the kind.
  if (!client.last_error().has_value() ||
      client.last_error()->kind != net::ErrorKind::kBudgetExhausted) {
    std::fprintf(stderr, "expected a budget-exhausted rejection, got: %s\n",
                 third.status().ToString().c_str());
    return 1;
  }
  std::printf("third release refused: [%s] %s\n",
              net::ErrorKindName(client.last_error()->kind),
              third.status().ToString().c_str());

  net::ServerStats stats = OrDie(client.Stats());
  std::printf(
      "server stats: %llu queries (%llu pairs), %llu releases granted, "
      "%llu budget-rejected\n",
      static_cast<unsigned long long>(stats.queries_served),
      static_cast<unsigned long long>(stats.pairs_served),
      static_cast<unsigned long long>(stats.releases_granted),
      static_cast<unsigned long long>(stats.budget_rejected));
  // The v5 cluster block. has_cluster is decoder-set: a v1-v4 server's
  // shorter stats body simply leaves it false, so this client stays
  // compatible with every protocol generation.
  if (stats.has_cluster) {
    const char* role = stats.role == 1   ? "coordinator"
                       : stats.role == 2 ? "replica"
                                         : "standalone";
    std::printf(
        "cluster: role=%s epoch_lsn=%llu replicas=%u replica_lag=%llu\n",
        role, static_cast<unsigned long long>(stats.last_epoch_lsn),
        stats.num_replicas,
        static_cast<unsigned long long>(stats.replica_lag));
  }

  server.Stop();
  std::puts("done: queries are free post-processing; releases are the "
            "metered, admission-controlled operation.");
  return 0;
}
