// Reconstruction attack demo: why Omega(V) error is unavoidable (§5.1).
//
// An analyst releases "the fastest route" between two hubs on a road whose
// per-segment delays encode commuters' private choices (the Figure-2
// gadget: each segment has two parallel lanes, one free and one congested,
// and WHICH lane is free is the secret bit). The demo plays the Lemma 5.2
// adversary against Algorithm 3 at several privacy levels and shows:
//   * weak privacy (large eps): the released route leaks almost every bit;
//   * strong privacy (small eps): the attack degrades to coin flipping,
//     but the released route is then Omega(V) longer than optimal —
//     the Theorem 5.1 trade-off, live.

#include <cstdio>

#include "common/random.h"
#include "common/table.h"
#include "core/reconstruction.h"
#include "dp/randomized_response.h"

using namespace dpsp;  // NOLINT — example brevity

int main() {
  Rng rng(/*seed=*/1511);
  const int n = 100;  // secret bits / road segments

  Table table("Lemma 5.2 adversary vs Algorithm 3, n=100 secret bits",
              {"eps", "bits recovered (of 100)", "route error",
               "alpha floor (Thm 5.1)", "best possible attack (RR)"});
  for (double eps : {8.0, 2.0, 1.0, 0.5, 0.1}) {
    PrivacyParams params{eps, 0.0, 1.0};
    AttackReport report =
        RunReconstructionExperiment(AttackKind::kShortestPath, n, params,
                                    25, &rng)
            .value();
    table.Row()
        .Add(eps, 3)
        .Add(100.0 - report.mean_hamming, 4)
        .Add(report.mean_object_error, 4)
        .Add(report.alpha, 4)
        .Add(100.0 - report.randomized_response_expectation, 4);
  }
  table.Print();
  std::puts(
      "\nReading the table: at eps=8 the \"private\" route reveals ~100/100 "
      "bits — the\nroute is near-optimal but privacy is vacuous. At eps=0.1 "
      "the attacker recovers\n~50/100 (coin flipping), and the released "
      "route is ~50 units worse than optimal:\nexactly the Omega(V) error "
      "floor of Theorem 5.1. No algorithm can do better —\ncolumn 2 can "
      "never exceed the final column (Lemma 5.3).");
  return 0;
}
