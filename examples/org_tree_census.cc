// Hierarchical census aggregation: tree distances (Section 4.1).
//
// A statistical agency publishes cumulative quantities along a fixed
// administrative hierarchy (country -> region -> district -> tract), where
// each edge weight is a privately aggregated count delta contributed by
// individuals. The hierarchy is public; the weights are private; any
// individual changes the weights by at most 1 in l1 — precisely the
// private edge-weight model on a tree.
//
// The demo releases all-pairs "hierarchy distances" (sums of private
// deltas along the unique connecting path) with the Theorem 4.2 mechanism
// and compares the single-release error against answering each of the
// ~V^2/2 queries independently with its own Laplace noise.

#include <cstdio>

#include "common/random.h"
#include "common/table.h"
#include "core/baselines.h"
#include "core/tree_distance.h"
#include "graph/generators.h"

using namespace dpsp;  // NOLINT — example brevity

int main() {
  Rng rng(/*seed=*/90210);
  // 4-level hierarchy: branching 6 -> 1 + 6 + 36 + 216 = 259 nodes.
  Graph hierarchy = MakeBalancedTree(259, 6).value();
  EdgeWeights deltas = MakeUniformWeights(hierarchy, 0.0, 100.0, &rng);
  PrivacyParams params{/*epsilon=*/0.5, 0.0, 1.0};

  auto oracle =
      TreeAllPairsOracle::Build(hierarchy, deltas, params, &rng).value();
  DistanceMatrix exact = AllPairsDijkstra(hierarchy, deltas).value();
  OracleErrorReport tree_report =
      EvaluateOracleAllPairs(hierarchy, exact, *oracle).value();

  auto per_pair =
      MakePerPairLaplaceOracle(hierarchy, deltas, params, &rng).value();
  OracleErrorReport baseline_report =
      EvaluateOracleAllPairs(hierarchy, exact, *per_pair).value();

  Table table("census hierarchy release, V=259, eps=0.5 total",
              {"mechanism", "mean|err|", "p95|err|", "max|err|"});
  table.Row()
      .Add(oracle->Name())
      .Add(tree_report.mean_abs_error, 4)
      .Add(tree_report.p95_abs_error, 4)
      .Add(tree_report.max_abs_error, 4);
  table.Row()
      .Add(per_pair->Name())
      .Add(baseline_report.mean_abs_error, 4)
      .Add(baseline_report.p95_abs_error, 4)
      .Add(baseline_report.max_abs_error, 4);
  table.Print();
  std::printf(
      "\nThe recursive release answers all %d pair queries from one eps=0.5 "
      "budget with\npolylog error; naive composition needs noise scaled by "
      "the number of pairs.\nProved bound for this configuration: %.1f.\n",
      tree_report.num_pairs,
      TreeAllPairsErrorBound(259, params, 0.05 / tree_report.num_pairs));
  return 0;
}
