// Crash-recovery demo: a persistent QueryServer survives a kill -9.
//
// Phase 1 forks a child curator that releases an oracle over a road-like
// workload, records its answers, then dies by SIGKILL mid-way through a
// second release — after the budget intent hits the WAL, before the
// commit (the worst-ordered crash: spent budget, no visible output).
// Phase 2 warm-restarts a fresh server over the same persistence
// directory and verifies the recovery invariants: the handle serves
// immediately with bit-identical answers, the ledger charges BOTH
// releases (an unresolved intent is spent, never resurrected), and the
// stats frame reports the restart as recovered rather than fresh.
//
// Also serves as the CI crash-recovery smoke test: it exercises
// WAL replay -> snapshot reload -> serve end to end and exits non-zero
// if any invariant fails.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"

namespace {

template <typename T>
T OrDie(dpsp::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "demo failure: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void OrDie(const dpsp::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "demo failure: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "invariant FAILED: %s\n", what);
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace dpsp;

  std::string dir = "/tmp/dpsp_warm_restart_XXXXXX";
  Require(mkdtemp(dir.data()) != nullptr, "mkdtemp");
  const std::string expected_path = dir + "/expected.bin";

  const int n = 512;
  Rng rng(2016);
  Graph graph = OrDie(MakePathGraph(n));
  EdgeWeights weights = MakeUniformWeights(graph, 0.2, 1.8, &rng);
  std::vector<VertexPair> pairs;
  for (VertexId u = 0; u < n; u += 7) {
    for (VertexId v = 0; v < n; v += 13) pairs.emplace_back(u, v);
  }

  auto make_server = [&] {
    net::QueryServerOptions options;
    options.persistence_dir = dir;
    ReleaseContext ctx =
        ReleaseContext::Create({1.0, 0.0, 1.0}, /*seed=*/2016).value();
    auto server = std::make_unique<net::QueryServer>(options,
                                                     std::move(ctx));
    OrDie(server->AddWorkload("roads", graph, weights));
    OrDie(server->Start());
    return server;
  };

  // ---- phase 1: the curator that will not survive ----------------------
  std::printf("phase 1: child curator releases, records, dies (kill -9)\n");
  pid_t pid = fork();
  Require(pid >= 0, "fork");
  if (pid == 0) {
    std::unique_ptr<net::QueryServer> server = make_server();
    net::Client client =
        OrDie(net::Client::Connect("127.0.0.1", server->port()));
    net::ReleaseInfo release =
        OrDie(client.Release("roads", "tree-hld", "roads-main"));
    std::vector<double> answers = OrDie(client.Query(release.handle_id,
                                                     pairs));
    int fd = open(expected_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                  0644);
    Require(fd >= 0, "open expected.bin");
    const size_t bytes = answers.size() * sizeof(double);
    Require(write(fd, answers.data(), bytes) ==
                static_cast<ssize_t>(bytes), "write expected.bin");
    Require(fsync(fd) == 0, "fsync expected.bin");
    close(fd);
    // Die between the WAL intent and commit of the second release —
    // exactly like power loss mid-build.
    SetFailpoint(failpoints::kWalBeforeCommit, FailpointAction::kCrash);
    (void)client.Release("roads", "per-pair-laplace", "roads-aux");
    std::fprintf(stderr, "failpoint never fired\n");
    _exit(1);
  }
  int wstatus = 0;
  Require(waitpid(pid, &wstatus, 0) == pid, "waitpid");
  Require(WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL,
          "child died by SIGKILL");
  std::printf("  child killed mid-release (intent logged, no commit)\n");

  // ---- phase 2: warm restart over the same directory -------------------
  std::printf("phase 2: warm restart over %s\n", dir.c_str());
  std::unique_ptr<net::QueryServer> server = make_server();
  net::Client client =
      OrDie(net::Client::Connect("127.0.0.1", server->port()));
  net::ServerStats stats = OrDie(client.Stats());
  Require(stats.has_recovery && stats.warm_restart,
          "stats report a warm restart");
  Require(stats.recovered_handles == 1, "one handle recovered");
  Require(stats.recovered_charges == 2,
          "two charges replayed (one an unresolved intent)");
  std::printf("  recovered %u handle(s), %llu ledger charge(s)\n",
              stats.recovered_handles,
              static_cast<unsigned long long>(stats.recovered_charges));

  const double spent = server->context().SpentTotal().epsilon;
  Require(std::abs(spent - 2.0) < 1e-12,
          "both releases stay spent (no budget resurrection)");
  std::printf("  ledger spend after replay: epsilon = %.1f "
              "(intent-without-commit is spent)\n", spent);

  std::vector<double> expected(pairs.size());
  {
    int fd = open(expected_path.c_str(), O_RDONLY);
    Require(fd >= 0, "open expected.bin");
    const size_t bytes = expected.size() * sizeof(double);
    Require(read(fd, expected.data(), bytes) ==
                static_cast<ssize_t>(bytes), "read expected.bin");
    close(fd);
  }
  std::vector<double> recovered = OrDie(client.Query(0, pairs));
  for (size_t i = 0; i < pairs.size(); ++i) {
    Require(recovered[i] == expected[i],
            "recovered answers bit-identical to pre-crash record");
  }
  std::printf("  %zu recovered answers bit-identical to the pre-crash "
              "record\n", pairs.size());
  std::printf("OK: crash-safe curator recovered cleanly\n");
  return 0;
}
