#include "graph/graph.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpsp {
namespace {

TEST(GraphTest, CreateTriangle) {
  ASSERT_OK_AND_ASSIGN(Graph g,
                       Graph::Create(3, {{0, 1}, {1, 2}, {0, 2}}));
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_FALSE(g.directed());
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(1), 2);
}

TEST(GraphTest, RejectsOutOfRangeEndpoints) {
  EXPECT_FALSE(Graph::Create(2, {{0, 2}}).ok());
  EXPECT_FALSE(Graph::Create(2, {{-1, 0}}).ok());
}

TEST(GraphTest, RejectsSelfLoops) {
  auto r = Graph::Create(3, {{1, 1}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsNegativeVertexCount) {
  EXPECT_FALSE(Graph::Create(-1, {}).ok());
}

TEST(GraphTest, EmptyGraphIsValid) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(0, {}));
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphTest, ParallelEdgesSupported) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}, {0, 1}}));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Neighbors(0).size(), 2u);
  EXPECT_NE(g.Neighbors(0)[0].edge, g.Neighbors(0)[1].edge);
}

TEST(GraphTest, UndirectedAdjacencyIsSymmetric) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}, {1, 2}}));
  EXPECT_EQ(g.Neighbors(1).size(), 2u);
  EXPECT_EQ(g.Neighbors(2).size(), 1u);
  EXPECT_EQ(g.Neighbors(2)[0].to, 1);
}

TEST(GraphTest, DirectedAdjacencyIsOneWay) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}, {1, 2}}, true));
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.Neighbors(0).size(), 1u);
  EXPECT_EQ(g.Neighbors(1).size(), 1u);
  EXPECT_TRUE(g.Neighbors(2).empty());
}

TEST(GraphTest, OtherEndpoint) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 2}}));
  EXPECT_EQ(g.OtherEndpoint(0, 0), 2);
  EXPECT_EQ(g.OtherEndpoint(0, 2), 0);
}

TEST(GraphTest, HasVertex) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {}));
  EXPECT_TRUE(g.HasVertex(0));
  EXPECT_TRUE(g.HasVertex(1));
  EXPECT_FALSE(g.HasVertex(2));
  EXPECT_FALSE(g.HasVertex(-1));
}

TEST(GraphTest, ValidateWeights) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}, {1, 2}}));
  EXPECT_OK(g.ValidateWeights({1.0, 2.0}));
  EXPECT_FALSE(g.ValidateWeights({1.0}).ok());
  EXPECT_OK(g.ValidateNonNegativeWeights({0.0, 5.0}));
  EXPECT_FALSE(g.ValidateNonNegativeWeights({-0.1, 5.0}).ok());
  // Negative weights are fine for the unsigned validator's counterpart.
  EXPECT_OK(g.ValidateWeights({-3.0, 5.0}));
}

TEST(GraphTest, ToStringMentionsCounts) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(4, {{0, 1}}));
  EXPECT_EQ(g.ToString(), "Graph(V=4, E=1, undirected)");
}

TEST(GraphTest, TotalWeight) {
  EdgeWeights w{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(TotalWeight(w, {0, 2}), 5.0);
  EXPECT_DOUBLE_EQ(TotalWeight(w, {}), 0.0);
}

}  // namespace
}  // namespace dpsp
