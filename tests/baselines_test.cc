#include "core/baselines.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/statistics.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(SinglePairDistanceTest, CentersOnTruthWithUnitSensitivityNoise) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(5));
  EdgeWeights w{1.0, 2.0, 3.0, 4.0};
  PrivacyParams params{2.0, 0.0, 1.0};
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_OK_AND_ASSIGN(double d,
                         PrivateSinglePairDistance(g, w, 0, 4, params, &rng));
    stats.Add(d);
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  // Lap(1/2): variance 2 * (1/2)^2 = 0.5.
  EXPECT_NEAR(stats.variance(), 0.5, 0.05);
}

TEST(SinglePairDistanceTest, DisconnectedFails) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}}));
  PrivacyParams params;
  EXPECT_FALSE(PrivateSinglePairDistance(g, {1.0}, 0, 2, params, &rng).ok());
}

TEST(ExactOracleTest, MatchesDistances) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(3, 3));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 2.0, &rng);
  ASSERT_OK_AND_ASSIGN(auto oracle, MakeExactOracle(g, w));
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  for (VertexId u = 0; u < 9; ++u) {
    for (VertexId v = 0; v < 9; ++v) {
      ASSERT_OK_AND_ASSIGN(double d, oracle->Distance(u, v));
      EXPECT_DOUBLE_EQ(d, exact.at(u, v));
    }
  }
  EXPECT_EQ(oracle->Name(), "exact");
}

TEST(PerPairLaplaceNoiseScaleTest, PureScalesWithPairCount) {
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(double scale, PerPairLaplaceNoiseScale(45, params));
  EXPECT_DOUBLE_EQ(scale, 45.0);
}

TEST(PerPairLaplaceNoiseScaleTest, ApproxBeatsPureForManyPairs) {
  PrivacyParams pure{1.0, 0.0, 1.0};
  PrivacyParams approx{1.0, 1e-6, 1.0};
  int pairs = 500 * 499 / 2;
  ASSERT_OK_AND_ASSIGN(double scale_pure,
                       PerPairLaplaceNoiseScale(pairs, pure));
  ASSERT_OK_AND_ASSIGN(double scale_approx,
                       PerPairLaplaceNoiseScale(pairs, approx));
  EXPECT_LT(scale_approx, scale_pure / 20.0);
}

TEST(PerPairLaplaceOracleTest, SymmetricAndRoughlyCentered) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(8));
  EdgeWeights w(8, 1.0);
  PrivacyParams params{50.0, 0.0, 1.0};  // large eps => tiny noise
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       MakePerPairLaplaceOracle(g, w, params, &rng));
  ASSERT_OK_AND_ASSIGN(double d01, oracle->Distance(0, 1));
  ASSERT_OK_AND_ASSIGN(double d10, oracle->Distance(1, 0));
  EXPECT_DOUBLE_EQ(d01, d10);
  // Noise scale = 28/50 < 1; estimate within a loose window of truth 1.
  EXPECT_NEAR(d01, 1.0, 6.0);
  EXPECT_EQ(oracle->Name(), "per-pair-laplace(pure)");
}

TEST(PerPairLaplaceOracleTest, ApproxNameAndBudget) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(6));
  EdgeWeights w(6, 1.0);
  PrivacyParams params{1.0, 1e-6, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       MakePerPairLaplaceOracle(g, w, params, &rng));
  EXPECT_EQ(oracle->Name(), "per-pair-laplace(approx)");
}

TEST(SyntheticGraphOracleTest, HighEpsilonNearExact) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(4, 4));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 3.0, &rng);
  PrivacyParams params{1000.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       MakeSyntheticGraphOracle(g, w, params, &rng));
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(g, exact, *oracle));
  EXPECT_LT(report.max_abs_error, 0.2);
}

TEST(SyntheticGraphOracleTest, TriangleInequalityHolds) {
  // Distances in a released graph are genuine graph distances, so they
  // satisfy the triangle inequality — unlike per-pair noise.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteGraph(8));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 5.0, &rng);
  PrivacyParams params{0.5, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       MakeSyntheticGraphOracle(g, w, params, &rng));
  for (VertexId a = 0; a < 8; ++a) {
    for (VertexId b = 0; b < 8; ++b) {
      for (VertexId c = 0; c < 8; ++c) {
        ASSERT_OK_AND_ASSIGN(double ab, oracle->Distance(a, b));
        ASSERT_OK_AND_ASSIGN(double bc, oracle->Distance(b, c));
        ASSERT_OK_AND_ASSIGN(double ac, oracle->Distance(a, c));
        EXPECT_LE(ac, ab + bc + 1e-9);
      }
    }
  }
}

TEST(SingleSourceBaselineTest, HighEpsilonNearExact) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(5, 5));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 2.0, &rng);
  PrivacyParams params{1e6, 1e-6, 1.0};
  ASSERT_OK_AND_ASSIGN(std::vector<double> noisy,
                       PrivateSingleSourceDistances(g, w, 0, params, &rng));
  ASSERT_OK_AND_ASSIGN(ShortestPathTree exact, Dijkstra(g, w, 0));
  EXPECT_DOUBLE_EQ(noisy[0], 0.0);
  for (VertexId v = 1; v < 25; ++v) {
    EXPECT_NEAR(noisy[static_cast<size_t>(v)],
                exact.distance[static_cast<size_t>(v)], 0.01);
  }
}

TEST(SingleSourceBaselineTest, ApproxBudgetUsesSqrtVNoise) {
  // With delta > 0 the per-query noise should scale ~sqrt(V), not V:
  // compare observed error magnitudes on a star (all distances equal).
  Rng rng(kTestSeed);
  int n = 401;
  ASSERT_OK_AND_ASSIGN(Graph g, MakeStarGraph(n));
  EdgeWeights w(static_cast<size_t>(n - 1), 1.0);
  PrivacyParams pure{1.0, 0.0, 1.0};
  PrivacyParams approx{1.0, 1e-6, 1.0};
  OnlineStats pure_err, approx_err;
  for (int trial = 0; trial < 5; ++trial) {
    ASSERT_OK_AND_ASSIGN(std::vector<double> p,
                         PrivateSingleSourceDistances(g, w, 0, pure, &rng));
    ASSERT_OK_AND_ASSIGN(std::vector<double> a,
                         PrivateSingleSourceDistances(g, w, 0, approx, &rng));
    for (VertexId v = 1; v < n; ++v) {
      pure_err.Add(std::fabs(p[static_cast<size_t>(v)] - 1.0));
      approx_err.Add(std::fabs(a[static_cast<size_t>(v)] - 1.0));
    }
  }
  // Pure noise scale = 400; approx ~ sqrt(2*400*ln 1e6) ~ 105: demand 2x.
  EXPECT_LT(approx_err.mean() * 2.0, pure_err.mean());
}

TEST(SingleSourceBaselineTest, DisconnectedStaysInfinite) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}}));
  PrivacyParams params;
  ASSERT_OK_AND_ASSIGN(std::vector<double> noisy,
                       PrivateSingleSourceDistances(g, {1.0}, 0, params,
                                                    &rng));
  EXPECT_EQ(noisy[2], kInfiniteDistance);
}

TEST(Drv10FormulaTest, GrowsWithNorm) {
  double small = Drv10ErrorFormula(100.0, 128, 1.0, 1e-6);
  double large = Drv10ErrorFormula(10000.0, 128, 1.0, 1e-6);
  EXPECT_NEAR(large / small, 10.0, 1e-9);
}

}  // namespace
}  // namespace dpsp
