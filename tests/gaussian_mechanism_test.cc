#include "dp/gaussian_mechanism.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "dp/dp_verifier.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(GaussianSigmaTest, Formula) {
  PrivacyParams params{0.5, 1e-6, 1.0};
  ASSERT_OK_AND_ASSIGN(double sigma, GaussianSigma(2.0, params));
  double expected = std::sqrt(2.0 * std::log(1.25e6)) * 2.0 / 0.5;
  EXPECT_NEAR(sigma, expected, 1e-12);
}

TEST(GaussianSigmaTest, RequiresApproxDpAndSmallEpsilon) {
  EXPECT_FALSE(GaussianSigma(1.0, PrivacyParams{0.5, 0.0, 1.0}).ok());
  EXPECT_FALSE(GaussianSigma(1.0, PrivacyParams{2.0, 1e-6, 1.0}).ok());
  EXPECT_FALSE(GaussianSigma(0.0, PrivacyParams{0.5, 1e-6, 1.0}).ok());
  EXPECT_TRUE(GaussianSigma(1.0, PrivacyParams{0.99, 1e-6, 1.0}).ok());
}

TEST(GaussianSigmaTest, ScalesWithNeighborBound) {
  PrivacyParams narrow{0.5, 1e-6, 0.1};
  PrivacyParams wide{0.5, 1e-6, 1.0};
  ASSERT_OK_AND_ASSIGN(double s_narrow, GaussianSigma(1.0, narrow));
  ASSERT_OK_AND_ASSIGN(double s_wide, GaussianSigma(1.0, wide));
  EXPECT_NEAR(s_wide / s_narrow, 10.0, 1e-9);
}

TEST(GaussianMechanismTest, CentersOnTruthWithCorrectVariance) {
  PrivacyParams params{0.5, 1e-3, 1.0};
  ASSERT_OK_AND_ASSIGN(double sigma, GaussianSigma(1.0, params));
  Rng rng(kTestSeed);
  OnlineStats stats;
  for (int i = 0; i < 40000; ++i) {
    ASSERT_OK_AND_ASSIGN(std::vector<double> out,
                         GaussianMechanism({7.0}, 1.0, params, &rng));
    stats.Add(out[0]);
  }
  EXPECT_NEAR(stats.mean(), 7.0, sigma * 0.02);
  EXPECT_NEAR(stats.stddev(), sigma, sigma * 0.02);
}

TEST(GaussianMechanismTest, EmpiricalPrivacyWithinBudget) {
  // Neighboring scalars 0 and 1 (l2 sensitivity 1).
  double eps = 0.5;
  PrivacyParams params{eps, 1e-3, 1.0};
  ASSERT_OK_AND_ASSIGN(double sigma, GaussianSigma(1.0, params));
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 40000;
  options.range_lo = -4.0 * sigma;
  options.range_hi = 4.0 * sigma;
  ScalarMechanism on_w = [&](Rng* r) { return r->Gaussian(sigma); };
  ScalarMechanism on_wp = [&](Rng* r) { return 1.0 + r->Gaussian(sigma); };
  ASSERT_OK_AND_ASSIGN(double eps_hat,
                       EstimatePrivacyLoss(on_w, on_wp, options, &rng));
  // The Gaussian mechanism's loss exceeds eps only on a delta-mass tail;
  // on the bulk bins it must stay within eps plus sampling slack.
  EXPECT_LE(eps_hat, eps + 0.3);
}

TEST(DistanceVectorL2SensitivityTest, Sqrt) {
  EXPECT_DOUBLE_EQ(DistanceVectorL2Sensitivity(0), 0.0);
  EXPECT_DOUBLE_EQ(DistanceVectorL2Sensitivity(1), 1.0);
  EXPECT_DOUBLE_EQ(DistanceVectorL2Sensitivity(100), 10.0);
}

TEST(GaussianMechanismTest, EmptyVector) {
  PrivacyParams params{0.5, 1e-6, 1.0};
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(std::vector<double> out,
                       GaussianMechanism({}, 1.0, params, &rng));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace dpsp
