// Tests for the byte-range section-delta codec the replication tier
// ships update epochs with: diff/apply round trips, gap coalescing,
// shape-change refusal (the full-chunk fallback signal), bounds checking
// against hostile patches, and post-apply CRC verification.

#include "store/snapshot_delta.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/crc32c.h"
#include "common/random.h"
#include "test_util.h"

namespace dpsp {
namespace store {
namespace {

ReleasedSection MakeSection(const std::string& label,
                            std::vector<uint8_t> bytes) {
  ReleasedSection section;
  section.label = label;
  section.bytes = std::move(bytes);
  return section;
}

TEST(SnapshotDeltaTest, IdenticalImagesProduceAnEmptyDelta) {
  std::vector<ReleasedSection> image = {
      MakeSection("a", {1, 2, 3, 4}),
      MakeSection("b", std::vector<uint8_t>(256, 7))};
  ASSERT_OK_AND_ASSIGN(std::vector<SectionPatch> patches,
                       ComputeSectionDelta(image, image));
  EXPECT_TRUE(patches.empty());
  EXPECT_EQ(SectionDeltaBytes(patches), 0u);
}

TEST(SnapshotDeltaTest, DiffApplyRoundTripsSparseEdits) {
  Rng rng(kTestSeed);
  std::vector<uint8_t> base(4096);
  for (uint8_t& b : base) {
    b = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  std::vector<ReleasedSection> before = {MakeSection("blocks", base)};
  // Sparse dirty ranges far enough apart not to coalesce.
  std::vector<uint8_t> edited = base;
  edited[10] ^= 0xff;
  edited[1000] ^= 0x01;
  edited[1001] ^= 0x80;
  edited[4095] ^= 0x42;
  std::vector<ReleasedSection> after = {MakeSection("blocks", edited)};

  ASSERT_OK_AND_ASSIGN(std::vector<SectionPatch> patches,
                       ComputeSectionDelta(before, after));
  ASSERT_EQ(patches.size(), 1u);
  EXPECT_EQ(patches[0].label, "blocks");
  EXPECT_EQ(patches[0].ranges.size(), 3u);
  // The delta moves far fewer payload bytes than the image.
  EXPECT_LT(SectionDeltaBytes(patches), base.size() / 4);

  std::vector<ReleasedSection> image = before;
  ASSERT_OK(ApplySectionDelta(image, patches));
  EXPECT_EQ(image[0].bytes, edited);
}

TEST(SnapshotDeltaTest, NearbyEditsCoalesceIntoOneRange) {
  std::vector<uint8_t> base(512, 0);
  std::vector<uint8_t> edited = base;
  edited[100] = 1;
  edited[110] = 2;  // 9 clean bytes apart: under the 32-byte gap, coalesce
  std::vector<ReleasedSection> before = {MakeSection("s", base)};
  std::vector<ReleasedSection> after = {MakeSection("s", edited)};
  ASSERT_OK_AND_ASSIGN(std::vector<SectionPatch> patches,
                       ComputeSectionDelta(before, after));
  ASSERT_EQ(patches.size(), 1u);
  EXPECT_EQ(patches[0].ranges.size(), 1u);
  std::vector<ReleasedSection> image = before;
  ASSERT_OK(ApplySectionDelta(image, patches));
  EXPECT_EQ(image[0].bytes, edited);
}

TEST(SnapshotDeltaTest, ShapeChangesAreFailedPrecondition) {
  std::vector<ReleasedSection> before = {MakeSection("a", {1, 2, 3})};
  // Different section size.
  std::vector<ReleasedSection> resized = {MakeSection("a", {1, 2, 3, 4})};
  Result<std::vector<SectionPatch>> r1 =
      ComputeSectionDelta(before, resized);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kFailedPrecondition);
  // Different label.
  std::vector<ReleasedSection> relabeled = {MakeSection("b", {1, 2, 3})};
  EXPECT_EQ(ComputeSectionDelta(before, relabeled).status().code(),
            StatusCode::kFailedPrecondition);
  // Different section count.
  std::vector<ReleasedSection> extended = {MakeSection("a", {1, 2, 3}),
                                           MakeSection("extra", {9})};
  EXPECT_EQ(ComputeSectionDelta(before, extended).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotDeltaTest, ApplyRejectsUnknownLabelAndOutOfBoundsRanges) {
  std::vector<ReleasedSection> image = {
      MakeSection("a", std::vector<uint8_t>(16, 0))};

  SectionPatch unknown;
  unknown.label = "nope";
  unknown.section_bytes = 16;
  EXPECT_FALSE(
      ApplySectionDelta(image, std::vector<SectionPatch>{unknown}).ok());

  SectionPatch oversized;
  oversized.label = "a";
  oversized.section_bytes = 16;
  oversized.ranges.push_back(SectionRange{12, {1, 2, 3, 4, 5, 6}});
  EXPECT_FALSE(
      ApplySectionDelta(image, std::vector<SectionPatch>{oversized}).ok());

  SectionPatch offset_overflow;
  offset_overflow.label = "a";
  offset_overflow.section_bytes = 16;
  offset_overflow.ranges.push_back(
      SectionRange{~uint64_t{0} - 1, {1, 2}});
  EXPECT_FALSE(
      ApplySectionDelta(image, std::vector<SectionPatch>{offset_overflow})
          .ok());

  // None of the rejected patches touched the image.
  EXPECT_EQ(image[0].bytes, std::vector<uint8_t>(16, 0));
}

TEST(SnapshotDeltaTest, ApplyVerifiesThePostImageCrc) {
  std::vector<uint8_t> base(64, 0), edited(64, 0);
  edited[5] = 1;
  std::vector<ReleasedSection> before = {MakeSection("a", base)};
  std::vector<ReleasedSection> after = {MakeSection("a", edited)};
  ASSERT_OK_AND_ASSIGN(std::vector<SectionPatch> patches,
                       ComputeSectionDelta(before, after));
  ASSERT_EQ(patches.size(), 1u);
  // A patch whose payload was corrupted in flight still applies its
  // ranges, but the post-image CRC catches it: the apply must fail and
  // signal resync.
  patches[0].ranges[0].bytes[0] ^= 0xff;
  std::vector<ReleasedSection> image = before;
  Status applied = ApplySectionDelta(image, patches);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotDeltaTest, EmptySectionsDiffCleanly) {
  std::vector<ReleasedSection> empty = {MakeSection("a", {})};
  ASSERT_OK_AND_ASSIGN(std::vector<SectionPatch> patches,
                       ComputeSectionDelta(empty, empty));
  EXPECT_TRUE(patches.empty());
}

}  // namespace
}  // namespace store
}  // namespace dpsp
