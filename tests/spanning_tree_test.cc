#include "graph/spanning_tree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(KruskalTest, SimpleTriangle) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}, {1, 2}, {0, 2}}));
  EdgeWeights w{1.0, 2.0, 3.0};
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> tree, KruskalMst(g, w));
  EXPECT_TRUE(IsSpanningTree(g, tree));
  EXPECT_DOUBLE_EQ(TotalWeight(w, tree), 3.0);
}

TEST(KruskalTest, NegativeWeightsAllowed) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}, {1, 2}, {0, 2}}));
  EdgeWeights w{-5.0, -1.0, 2.0};
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> tree, KruskalMst(g, w));
  EXPECT_DOUBLE_EQ(TotalWeight(w, tree), -6.0);
}

TEST(KruskalTest, DisconnectedFails) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(4, {{0, 1}, {2, 3}}));
  EXPECT_FALSE(KruskalMst(g, {1.0, 1.0}).ok());
}

TEST(KruskalTest, ParallelEdgesPickCheaper) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}, {0, 1}}));
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> tree, KruskalMst(g, {4.0, 1.0}));
  EXPECT_EQ(tree, std::vector<EdgeId>{1});
}

TEST(PrimTest, MatchesKruskalWeightOnRandomGraphs) {
  Rng rng(kTestSeed);
  for (int trial = 0; trial < 10; ++trial) {
    ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(40, 0.15, &rng));
    EdgeWeights w = MakeUniformWeights(g, -2.0, 5.0, &rng);
    ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> k, KruskalMst(g, w));
    ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> p, PrimMst(g, w));
    EXPECT_TRUE(IsSpanningTree(g, k));
    EXPECT_TRUE(IsSpanningTree(g, p));
    EXPECT_NEAR(TotalWeight(w, k), TotalWeight(w, p), 1e-9);
  }
}

TEST(PrimTest, SingleVertexTreeIsEmpty) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(1, {}));
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> tree, PrimMst(g, {}));
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(IsSpanningTree(g, tree));
}

TEST(MstTest, DirectedRejected) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}}, true));
  EXPECT_FALSE(KruskalMst(g, {1.0}).ok());
  EXPECT_FALSE(PrimMst(g, {1.0}).ok());
  EXPECT_FALSE(BfsSpanningTree(g, 0).ok());
}

TEST(MstTest, MstWeightIsMinimalAgainstRandomSpanningTrees) {
  // Sample random spanning trees (via random weights) and check the MST of
  // the true weights is never beaten.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(20, 0.3, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> best, KruskalMst(g, w));
  double best_weight = TotalWeight(w, best);
  for (int trial = 0; trial < 50; ++trial) {
    EdgeWeights random_w = MakeUniformWeights(g, 0.0, 1.0, &rng);
    ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> other, KruskalMst(g, random_w));
    EXPECT_GE(TotalWeight(w, other), best_weight - 1e-9);
  }
}

TEST(BfsSpanningTreeTest, SpansAndRespectsHops) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(5, 5));
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> tree, BfsSpanningTree(g, 12));
  EXPECT_TRUE(IsSpanningTree(g, tree));
}

TEST(BfsSpanningTreeTest, DisconnectedFails) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}}));
  EXPECT_FALSE(BfsSpanningTree(g, 0).ok());
}

TEST(IsSpanningTreeTest, RejectsCyclesAndWrongSizes) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}, {1, 2}, {0, 2}}));
  EXPECT_TRUE(IsSpanningTree(g, {0, 1}));
  EXPECT_FALSE(IsSpanningTree(g, {0}));          // too few
  EXPECT_FALSE(IsSpanningTree(g, {0, 1, 2}));    // too many
  ASSERT_OK_AND_ASSIGN(Graph g4, Graph::Create(4, {{0, 1}, {1, 2}, {0, 2}}));
  EXPECT_FALSE(IsSpanningTree(g4, {0, 1, 2}));   // cycle, vertex 3 isolated
}

}  // namespace
}  // namespace dpsp
