#include "graph/tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(RootedTreeTest, PathTreeStructure) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(4));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  EXPECT_EQ(tree.root(), 0);
  EXPECT_EQ(tree.parent(0), -1);
  EXPECT_EQ(tree.parent(3), 2);
  EXPECT_EQ(tree.depth(3), 3);
  EXPECT_EQ(tree.subtree_size(0), 4);
  EXPECT_EQ(tree.subtree_size(2), 2);
  ASSERT_EQ(tree.children(1).size(), 1u);
  EXPECT_EQ(tree.children(1)[0], 2);
}

TEST(RootedTreeTest, RootingAtInternalVertex) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(5));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 2));
  EXPECT_EQ(tree.depth(0), 2);
  EXPECT_EQ(tree.depth(4), 2);
  EXPECT_EQ(tree.subtree_size(2), 5);
  EXPECT_EQ(tree.children(2).size(), 2u);
}

TEST(RootedTreeTest, RejectsNonTrees) {
  ASSERT_OK_AND_ASSIGN(Graph cycle, MakeCycleGraph(4));
  EXPECT_FALSE(RootedTree::FromGraph(cycle, 0).ok());
  ASSERT_OK_AND_ASSIGN(Graph forest, Graph::Create(4, {{0, 1}, {2, 3}}));
  EXPECT_FALSE(RootedTree::FromGraph(forest, 0).ok());
  ASSERT_OK_AND_ASSIGN(Graph multi, Graph::Create(3, {{0, 1}, {0, 1}}));
  EXPECT_FALSE(RootedTree::FromGraph(multi, 0).ok());
}

TEST(RootedTreeTest, BfsOrderStartsAtRootAndCoversAll) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(30, &rng));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 7));
  EXPECT_EQ(tree.bfs_order().front(), 7);
  EXPECT_EQ(tree.bfs_order().size(), 30u);
  // Parents precede children in BFS order.
  std::vector<int> position(30, -1);
  for (size_t i = 0; i < tree.bfs_order().size(); ++i) {
    position[static_cast<size_t>(tree.bfs_order()[i])] = static_cast<int>(i);
  }
  for (VertexId v = 0; v < 30; ++v) {
    if (v == 7) continue;
    EXPECT_LT(position[static_cast<size_t>(tree.parent(v))],
              position[static_cast<size_t>(v)]);
  }
}

TEST(RootedTreeTest, SubtreeSizesSumCorrectly) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(50, &rng));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  for (VertexId v = 0; v < 50; ++v) {
    int sum = 1;
    for (VertexId c : tree.children(v)) sum += tree.subtree_size(c);
    EXPECT_EQ(tree.subtree_size(v), sum);
  }
}

TEST(RootedTreeTest, RootDistancesMatchDijkstra) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(40, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.1, 4.0, &rng);
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 5));
  std::vector<double> dist = tree.RootDistances(w);
  ASSERT_OK_AND_ASSIGN(ShortestPathTree spt, Dijkstra(g, w, 5));
  for (VertexId v = 0; v < 40; ++v) {
    EXPECT_NEAR(dist[static_cast<size_t>(v)],
                spt.distance[static_cast<size_t>(v)], 1e-9);
  }
}

// Naive LCA by walking parents, for cross-checking.
VertexId NaiveLca(const RootedTree& tree, VertexId u, VertexId v) {
  while (tree.depth(u) > tree.depth(v)) u = tree.parent(u);
  while (tree.depth(v) > tree.depth(u)) v = tree.parent(v);
  while (u != v) {
    u = tree.parent(u);
    v = tree.parent(v);
  }
  return u;
}

class LcaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LcaPropertyTest, MatchesNaiveOnRandomTrees) {
  Rng rng(kTestSeed + static_cast<uint64_t>(GetParam()));
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(GetParam(), &rng));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  LcaIndex lca(tree);
  for (int trial = 0; trial < 300; ++trial) {
    VertexId u = static_cast<VertexId>(rng.UniformInt(0, GetParam() - 1));
    VertexId v = static_cast<VertexId>(rng.UniformInt(0, GetParam() - 1));
    EXPECT_EQ(lca.Lca(u, v), NaiveLca(tree, u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LcaPropertyTest,
                         ::testing::Values(2, 3, 10, 33, 64, 129));

TEST(LcaIndexTest, HopDistanceMatchesBfs) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(60, &rng));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  LcaIndex lca(tree);
  ASSERT_OK_AND_ASSIGN(std::vector<int> hops, HopDistances(g, 13));
  for (VertexId v = 0; v < 60; ++v) {
    EXPECT_EQ(lca.HopDistance(13, v), hops[static_cast<size_t>(v)]);
  }
}

TEST(LcaIndexTest, LcaOfVertexWithItself) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeBalancedTree(15, 2));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  LcaIndex lca(tree);
  EXPECT_EQ(lca.Lca(7, 7), 7);
  EXPECT_EQ(lca.Lca(0, 9), 0);
}

TEST(EulerTourLcaTest, MatchesBinaryLiftingOnRandomTrees) {
  Rng rng(kTestSeed);
  for (int n : {2, 3, 17, 64, 200}) {
    ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(n, &rng));
    ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
    LcaIndex lifting(tree);
    EulerTourLca euler(tree);
    EXPECT_EQ(euler.tour_size(), 2 * n - 1);
    for (int trial = 0; trial < 200; ++trial) {
      VertexId u = static_cast<VertexId>(rng.UniformInt(0, n - 1));
      VertexId v = static_cast<VertexId>(rng.UniformInt(0, n - 1));
      EXPECT_EQ(euler.Lca(u, v), lifting.Lca(u, v))
          << "n=" << n << " u=" << u << " v=" << v;
      EXPECT_EQ(euler.HopDistance(u, v), lifting.HopDistance(u, v));
    }
  }
}

TEST(EulerTourLcaTest, SingleVertexAndSelfQueries) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(1));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  EulerTourLca euler(tree);
  EXPECT_EQ(euler.tour_size(), 1);
  EXPECT_EQ(euler.Lca(0, 0), 0);
  EXPECT_EQ(euler.HopDistance(0, 0), 0);

  ASSERT_OK_AND_ASSIGN(Graph path, MakePathGraph(5));
  ASSERT_OK_AND_ASSIGN(RootedTree rooted, RootedTree::FromGraph(path, 2));
  EulerTourLca lca(rooted);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(lca.Lca(v, v), v);
  EXPECT_EQ(lca.Lca(0, 4), 2);
  EXPECT_EQ(lca.HopDistance(0, 4), 4);
}

TEST(IsTreeTest, Classification) {
  ASSERT_OK_AND_ASSIGN(Graph path, MakePathGraph(6));
  EXPECT_TRUE(IsTree(path));
  ASSERT_OK_AND_ASSIGN(Graph cycle, MakeCycleGraph(6));
  EXPECT_FALSE(IsTree(cycle));
  ASSERT_OK_AND_ASSIGN(Graph star, MakeStarGraph(6));
  EXPECT_TRUE(IsTree(star));
  ASSERT_OK_AND_ASSIGN(Graph directed, Graph::Create(2, {{0, 1}}, true));
  EXPECT_FALSE(IsTree(directed));
}

}  // namespace
}  // namespace dpsp
