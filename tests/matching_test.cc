#include "graph/matching.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

// Brute force over all perfect matchings by recursion (reference solver).
double BruteForceMinMatching(const Graph& graph, const EdgeWeights& w) {
  int n = graph.num_vertices();
  std::vector<bool> used(static_cast<size_t>(n), false);
  double best = std::numeric_limits<double>::infinity();
  std::function<void(int, double)> recurse = [&](int count, double cost) {
    if (count == n) {
      best = std::min(best, cost);
      return;
    }
    int first = 0;
    while (used[static_cast<size_t>(first)]) ++first;
    used[static_cast<size_t>(first)] = true;
    for (const AdjacencyEntry& adj : graph.Neighbors(first)) {
      if (used[static_cast<size_t>(adj.to)]) continue;
      used[static_cast<size_t>(adj.to)] = true;
      recurse(count + 2, cost + w[static_cast<size_t>(adj.edge)]);
      used[static_cast<size_t>(adj.to)] = false;
    }
    used[static_cast<size_t>(first)] = false;
  };
  recurse(0, 0.0);
  return best;
}

TEST(MatchingDpTest, SingleEdge) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}}));
  ASSERT_OK_AND_ASSIGN(Matching m, MinWeightPerfectMatching(g, {3.0}));
  EXPECT_TRUE(IsPerfectMatching(g, m));
  EXPECT_DOUBLE_EQ(m.Weight({3.0}), 3.0);
}

TEST(MatchingDpTest, SquarePicksCheaperPairing) {
  // Square 0-1-2-3-0: pairings {01,23} cost 3, {03,12} cost 7.
  ASSERT_OK_AND_ASSIGN(Graph g,
                       Graph::Create(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
  EdgeWeights w{1.0, 5.0, 2.0, 2.0};
  ASSERT_OK_AND_ASSIGN(Matching m, MinWeightPerfectMatching(g, w));
  EXPECT_TRUE(IsPerfectMatching(g, m));
  EXPECT_DOUBLE_EQ(m.Weight(w), 3.0);
}

TEST(MatchingDpTest, NegativeWeights) {
  ASSERT_OK_AND_ASSIGN(Graph g,
                       Graph::Create(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
  EdgeWeights w{-4.0, -10.0, -1.0, -1.0};
  ASSERT_OK_AND_ASSIGN(Matching m, MinWeightPerfectMatching(g, w));
  // {12, 30} = -11 beats {01, 23} = -5.
  EXPECT_DOUBLE_EQ(m.Weight(w), -11.0);
}

TEST(MatchingDpTest, OddComponentFails) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(3));
  EXPECT_FALSE(MinWeightPerfectMatching(g, {1.0, 1.0}).ok());
}

TEST(MatchingDpTest, NoPerfectMatchingInStar) {
  // Star on 4 vertices: center can match only one leaf.
  ASSERT_OK_AND_ASSIGN(Graph g, MakeStarGraph(4));
  EXPECT_FALSE(MinWeightPerfectMatching(g, {1.0, 1.0, 1.0}).ok());
}

TEST(MatchingDpTest, ParallelEdgesPickCheaper) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}, {0, 1}}));
  ASSERT_OK_AND_ASSIGN(Matching m, MinWeightPerfectMatching(g, {9.0, 4.0}));
  EXPECT_EQ(m.edges, std::vector<EdgeId>{1});
}

TEST(MatchingDpTest, MatchesBruteForceOnRandomSmallGraphs) {
  Rng rng(kTestSeed);
  for (int trial = 0; trial < 20; ++trial) {
    ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(8, 0.5, &rng));
    EdgeWeights w = MakeUniformWeights(g, -1.0, 3.0, &rng);
    auto result = MinWeightPerfectMatching(g, w);
    double brute = BruteForceMinMatching(g, w);
    if (!result.ok()) {
      EXPECT_TRUE(std::isinf(brute));
      continue;
    }
    EXPECT_TRUE(IsPerfectMatching(g, *result));
    EXPECT_NEAR(result->Weight(w), brute, 1e-9);
  }
}

TEST(MatchingHungarianTest, MatchesDpOnCompleteBipartite) {
  Rng rng(kTestSeed);
  for (int trial = 0; trial < 10; ++trial) {
    ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteBipartiteGraph(6, 6));
    EdgeWeights w = MakeUniformWeights(g, -2.0, 2.0, &rng);
    std::vector<VertexId> left{0, 1, 2, 3, 4, 5};
    std::vector<VertexId> right{6, 7, 8, 9, 10, 11};
    ASSERT_OK_AND_ASSIGN(Matching hungarian,
                         MinWeightPerfectMatchingHungarian(g, w, left, right));
    std::vector<VertexId> all(12);
    std::iota(all.begin(), all.end(), 0);
    ASSERT_OK_AND_ASSIGN(Matching dp, MinWeightPerfectMatchingDp(g, w, all));
    EXPECT_TRUE(IsPerfectMatching(g, hungarian));
    EXPECT_NEAR(hungarian.Weight(w), dp.Weight(w), 1e-9);
  }
}

TEST(MatchingHungarianTest, UnequalSidesFail) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteBipartiteGraph(2, 3));
  EdgeWeights w(6, 1.0);
  EXPECT_FALSE(
      MinWeightPerfectMatchingHungarian(g, w, {0, 1}, {2, 3, 4}).ok());
}

TEST(MatchingHungarianTest, SparseInfeasibleDetected) {
  // Perfect bipartite graph minus enough edges that no perfect matching
  // exists: both left vertices adjacent only to right vertex 2.
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(4, {{0, 2}, {1, 2}}));
  EXPECT_FALSE(
      MinWeightPerfectMatchingHungarian(g, {1.0, 1.0}, {0, 1}, {2, 3}).ok());
}

TEST(MatchingDriverTest, LargeBipartiteUsesHungarian) {
  // 15 + 15 complete bipartite: 30 vertices > kMaxDpVertices.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteBipartiteGraph(15, 15));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  ASSERT_OK_AND_ASSIGN(Matching m, MinWeightPerfectMatching(g, w));
  EXPECT_TRUE(IsPerfectMatching(g, m));
}

TEST(MatchingDriverTest, LargeNonBipartiteUnimplemented) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteGraph(24));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  auto result = MinWeightPerfectMatching(g, w);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(MatchingDriverTest, HourglassGadgetComponentsSolvedExactly) {
  ASSERT_OK_AND_ASSIGN(HourglassGadgetGraph gadget, MakeMatchingGadget(6));
  std::vector<int> bits{1, 0, 1, 1, 0, 0};
  EdgeWeights w = gadget.EncodeBits(bits);
  ASSERT_OK_AND_ASSIGN(Matching m,
                       MinWeightPerfectMatching(gadget.graph, w));
  EXPECT_TRUE(IsPerfectMatching(gadget.graph, m));
  // The optimum avoids all weight-1 edges.
  EXPECT_DOUBLE_EQ(m.Weight(w), 0.0);
}

TEST(IsPerfectMatchingTest, RejectsOverlapsAndWrongCounts) {
  ASSERT_OK_AND_ASSIGN(Graph g,
                       Graph::Create(4, {{0, 1}, {1, 2}, {2, 3}}));
  EXPECT_TRUE(IsPerfectMatching(g, Matching{{0, 2}}));
  EXPECT_FALSE(IsPerfectMatching(g, Matching{{0}}));
  EXPECT_FALSE(IsPerfectMatching(g, Matching{{0, 1}}));  // share vertex 1
  EXPECT_FALSE(IsPerfectMatching(g, Matching{{0, 9}}));  // bad id
}

}  // namespace
}  // namespace dpsp
