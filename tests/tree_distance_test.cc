#include "core/tree_distance.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/statistics.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

Result<Graph> MakeFamilyTree(int family, int n, Rng* rng) {
  switch (family) {
    case 0:
      return MakePathGraph(n);
    case 1:
      return MakeBalancedTree(n, 2);
    case 2:
      return MakeRandomTree(n, rng);
    case 3:
      return MakeStarGraph(n);
    default:
      return MakeCaterpillarTree(std::max(1, n / 4), 3);
  }
}

TEST(TreeSingleSourceTest, RootEstimateIsExactlyZero) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(50, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(
      TreeSingleSourceRelease release,
      ReleaseTreeSingleSourceDistances(g, w, 3, params, &rng));
  EXPECT_DOUBLE_EQ(release.estimates[3], 0.0);
  EXPECT_EQ(release.root, 3);
}

TEST(TreeSingleSourceTest, HighEpsilonRecoversExactDistances) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(64, &rng));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 10.0, &rng);
  PrivacyParams params{1e7, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(
      TreeSingleSourceRelease release,
      ReleaseTreeSingleSourceDistances(g, w, 0, params, &rng));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  std::vector<double> exact = tree.RootDistances(w);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_NEAR(release.estimates[static_cast<size_t>(v)],
                exact[static_cast<size_t>(v)], 1e-3);
  }
}

TEST(TreeSingleSourceTest, NoiseCountWithinTwoV) {
  Rng rng(kTestSeed);
  for (int n : {2, 17, 100, 255}) {
    ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(n, &rng));
    EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
    PrivacyParams params;
    ASSERT_OK_AND_ASSIGN(
        TreeSingleSourceRelease release,
        ReleaseTreeSingleSourceDistances(g, w, 0, params, &rng));
    EXPECT_LE(release.num_noisy_values, 2 * n);
    EXPECT_GE(release.num_noisy_values, n - 1);
  }
}

TEST(TreeSingleSourceTest, SensitivityIsLogDepthBound) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(128, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 1.0, &rng);
  PrivacyParams params{2.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(
      TreeSingleSourceRelease release,
      ReleaseTreeSingleSourceDistances(g, w, 0, params, &rng));
  EXPECT_EQ(release.sensitivity, 8);  // ceil(log2 128) + 1
  EXPECT_DOUBLE_EQ(release.noise_scale, 8.0 / 2.0);
}

TEST(TreeSingleSourceTest, RejectsNonTreeAndBadWeights) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph cycle, MakeCycleGraph(5));
  PrivacyParams params;
  EdgeWeights w(5, 1.0);
  EXPECT_FALSE(
      ReleaseTreeSingleSourceDistances(cycle, w, 0, params, &rng).ok());
  ASSERT_OK_AND_ASSIGN(Graph path, MakePathGraph(3));
  EXPECT_FALSE(ReleaseTreeSingleSourceDistances(path, {-1.0, 1.0}, 0, params,
                                                &rng)
                   .ok());
}

TEST(TreeSingleSourceTest, SingleVertexTree) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(1, {}));
  PrivacyParams params;
  ASSERT_OK_AND_ASSIGN(TreeSingleSourceRelease release,
                       ReleaseTreeSingleSourceDistances(g, {}, 0, params,
                                                        &rng));
  EXPECT_EQ(release.estimates.size(), 1u);
  EXPECT_DOUBLE_EQ(release.estimates[0], 0.0);
}

// Statistical check of the Theorem 4.1 error bound across tree families.
class TreeErrorBoundTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreeErrorBoundTest, SingleSourceErrorWithinBound) {
  auto [family, n] = GetParam();
  Rng rng(kTestSeed + static_cast<uint64_t>(family * 1000 + n));
  ASSERT_OK_AND_ASSIGN(Graph g, MakeFamilyTree(family, n, &rng));
  int actual_n = g.num_vertices();
  EdgeWeights w = MakeUniformWeights(g, 0.0, 20.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  double gamma = 0.02;
  double bound = TreeSingleSourceErrorBound(actual_n, params, gamma);

  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(g, 0));
  std::vector<double> exact = tree.RootDistances(w);

  // Per-vertex failure probability is gamma; across repeated draws count
  // the fraction of vertices out of bound and require it to stay below a
  // slack multiple of gamma.
  int violations = 0;
  int total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    ASSERT_OK_AND_ASSIGN(
        TreeSingleSourceRelease release,
        ReleaseTreeSingleSourceDistances(g, w, 0, params, &rng));
    for (VertexId v = 0; v < actual_n; ++v) {
      double err = std::fabs(release.estimates[static_cast<size_t>(v)] -
                             exact[static_cast<size_t>(v)]);
      if (err > bound) ++violations;
      ++total;
    }
  }
  EXPECT_LT(violations, std::max(5, static_cast<int>(3 * gamma * total)))
      << "family " << family << " n " << actual_n;
}

INSTANTIATE_TEST_SUITE_P(
    Families, TreeErrorBoundTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(16, 64, 200)));

TEST(TreeAllPairsTest, HighEpsilonMatchesExactAllPairs) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(40, &rng));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 4.0, &rng);
  PrivacyParams params{1e7, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       TreeAllPairsOracle::Build(g, w, params, &rng));
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(g, exact, *oracle));
  EXPECT_LT(report.max_abs_error, 1e-2);
  EXPECT_EQ(oracle->Name(), "tree-recursive");
}

TEST(TreeAllPairsTest, ErrorWithinTheorem42Bound) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(128, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 50.0, &rng);
  PrivacyParams params{0.5, 0.0, 1.0};
  double gamma = 0.05;
  // Union bound over all pairs: use gamma / #pairs per released distance.
  double per_pair_gamma = gamma / (128.0 * 127.0 / 2.0);
  double bound = TreeAllPairsErrorBound(128, params, per_pair_gamma);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  int violations = 0;
  for (int trial = 0; trial < 5; ++trial) {
    ASSERT_OK_AND_ASSIGN(auto oracle,
                         TreeAllPairsOracle::Build(g, w, params, &rng));
    ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                         EvaluateOracleAllPairs(g, exact, *oracle));
    if (report.max_abs_error > bound) ++violations;
  }
  EXPECT_LE(violations, 1);
}

TEST(TreeAllPairsTest, SymmetricAndZeroOnDiagonal) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeBalancedTree(31, 2));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 2.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       TreeAllPairsOracle::Build(g, w, params, &rng));
  for (VertexId u = 0; u < 31; u += 5) {
    ASSERT_OK_AND_ASSIGN(double uu, oracle->Distance(u, u));
    EXPECT_DOUBLE_EQ(uu, 0.0);
    for (VertexId v = 0; v < 31; v += 3) {
      ASSERT_OK_AND_ASSIGN(double uv, oracle->Distance(u, v));
      ASSERT_OK_AND_ASSIGN(double vu, oracle->Distance(v, u));
      EXPECT_DOUBLE_EQ(uv, vu);
    }
  }
}

TEST(TreeAllPairsTest, ScalingKnobShrinksError) {
  // With rho = 0.01 the noise scale is 100x smaller than rho = 1.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(64));
  EdgeWeights w(63, 1.0);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));

  PrivacyParams coarse{1.0, 0.0, 1.0};
  PrivacyParams fine{1.0, 0.0, 0.01};
  OnlineStats coarse_err, fine_err;
  for (int trial = 0; trial < 10; ++trial) {
    ASSERT_OK_AND_ASSIGN(auto oc,
                         TreeAllPairsOracle::Build(g, w, coarse, &rng));
    ASSERT_OK_AND_ASSIGN(auto of, TreeAllPairsOracle::Build(g, w, fine, &rng));
    ASSERT_OK_AND_ASSIGN(OracleErrorReport rc,
                         EvaluateOracleAllPairs(g, exact, *oc));
    ASSERT_OK_AND_ASSIGN(OracleErrorReport rf,
                         EvaluateOracleAllPairs(g, exact, *of));
    coarse_err.Add(rc.mean_abs_error);
    fine_err.Add(rf.mean_abs_error);
  }
  EXPECT_LT(fine_err.mean() * 20.0, coarse_err.mean());
}

TEST(TreeErrorBoundsTest, GrowPolylogarithmically) {
  PrivacyParams params{1.0, 0.0, 1.0};
  double b64 = TreeSingleSourceErrorBound(64, params, 0.05);
  double b4096 = TreeSingleSourceErrorBound(4096, params, 0.05);
  // log^1.5 growth: 64 -> 4096 doubles log V, so the bound grows by about
  // 2^1.5 ~ 2.83 — far below linear growth (64x).
  EXPECT_LT(b4096 / b64, 4.0);
  EXPECT_GT(b4096, b64);
}

}  // namespace
}  // namespace dpsp
