#include "dp/dp_verifier.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpsp {
namespace {

// Neighboring scalar databases 0 and 1 (distance 1), mechanism = value +
// Lap(1/eps). The empirical loss must be <= eps (+ sampling slack), and a
// *broken* mechanism (noise scaled for eps but inputs actually farther
// apart) must exceed it — this shows the verifier has power to catch
// calibration bugs.

TEST(DpVerifierTest, CorrectLaplaceWithinBudget) {
  double eps = 1.0;
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 40000;
  ScalarMechanism on_w = [&](Rng* r) { return 0.0 + r->Laplace(1.0 / eps); };
  ScalarMechanism on_wp = [&](Rng* r) { return 1.0 + r->Laplace(1.0 / eps); };
  ASSERT_OK_AND_ASSIGN(double eps_hat,
                       EstimatePrivacyLoss(on_w, on_wp, options, &rng));
  EXPECT_LE(eps_hat, eps + 0.25);
  // And it should be clearly nonzero (the distributions do differ).
  EXPECT_GT(eps_hat, 0.3);
}

TEST(DpVerifierTest, UndernoisedMechanismFlagged) {
  // Mechanism claims eps = 1 but adds Lap(1/4): the true loss is 4.
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 40000;
  ScalarMechanism on_w = [&](Rng* r) { return 0.0 + r->Laplace(0.25); };
  ScalarMechanism on_wp = [&](Rng* r) { return 1.0 + r->Laplace(0.25); };
  ASSERT_OK_AND_ASSIGN(double eps_hat,
                       EstimatePrivacyLoss(on_w, on_wp, options, &rng));
  EXPECT_GT(eps_hat, 1.5);
}

TEST(DpVerifierTest, IdenticalDistributionsNearZero) {
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 40000;
  ScalarMechanism mech = [](Rng* r) { return r->Laplace(1.0); };
  ASSERT_OK_AND_ASSIGN(double eps_hat,
                       EstimatePrivacyLoss(mech, mech, options, &rng));
  EXPECT_LT(eps_hat, 0.3);
}

TEST(DpVerifierTest, SmallerEpsilonSmallerLoss) {
  Rng rng(kTestSeed);
  DpVerifierOptions options;
  options.num_samples = 40000;
  auto loss_for = [&](double eps) {
    ScalarMechanism on_w = [eps](Rng* r) { return r->Laplace(1.0 / eps); };
    ScalarMechanism on_wp = [eps](Rng* r) {
      return 1.0 + r->Laplace(1.0 / eps);
    };
    return EstimatePrivacyLoss(on_w, on_wp, options, &rng).value();
  };
  EXPECT_LT(loss_for(0.25), loss_for(2.0));
}

TEST(DpVerifierTest, RejectsInvalidOptions) {
  Rng rng(kTestSeed);
  ScalarMechanism mech = [](Rng* r) { return r->Uniform(); };
  DpVerifierOptions too_few;
  too_few.num_samples = 10;
  EXPECT_FALSE(EstimatePrivacyLoss(mech, mech, too_few, &rng).ok());
  DpVerifierOptions bad_bins;
  bad_bins.num_bins = 1;
  EXPECT_FALSE(EstimatePrivacyLoss(mech, mech, bad_bins, &rng).ok());
  DpVerifierOptions bad_range;
  bad_range.range_lo = 1.0;
  bad_range.range_hi = 0.0;
  EXPECT_FALSE(EstimatePrivacyLoss(mech, mech, bad_range, &rng).ok());
}

}  // namespace
}  // namespace dpsp
