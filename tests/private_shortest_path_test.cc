#include "core/private_shortest_path.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(PrivateShortestPathTest, ReleasedWeightsAreNonNegativeAndOffset) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(5, 5));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 2.0, &rng);
  PrivateShortestPathOptions options;
  options.params = PrivacyParams{1.0, 0.0, 1.0};
  options.gamma = 0.05;
  ASSERT_OK_AND_ASSIGN(PrivateShortestPaths release,
                       PrivateShortestPaths::Release(g, w, options, &rng));
  EXPECT_EQ(release.released_weights().size(),
            static_cast<size_t>(g.num_edges()));
  for (double x : release.released_weights()) EXPECT_GE(x, 0.0);
  double expected_offset =
      (1.0 / 1.0) * std::log(g.num_edges() / options.gamma);
  EXPECT_NEAR(release.offset(), expected_offset, 1e-9);
}

TEST(PrivateShortestPathTest, PathsAreValidWalks) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(40, 0.1, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 3.0, &rng);
  PrivateShortestPathOptions options;
  ASSERT_OK_AND_ASSIGN(PrivateShortestPaths release,
                       PrivateShortestPaths::Release(g, w, options, &rng));
  for (VertexId v = 1; v < 40; v += 3) {
    ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> path, release.Path(0, v));
    EXPECT_OK(ValidatePath(g, path, 0, v));
  }
}

TEST(PrivateShortestPathTest, HighEpsilonRecoversTrueShortestPaths) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(6, 6));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 5.0, &rng);
  PrivateShortestPathOptions options;
  options.params = PrivacyParams{1e8, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(PrivateShortestPaths release,
                       PrivateShortestPaths::Release(g, w, options, &rng));
  ASSERT_OK_AND_ASSIGN(ShortestPathTree exact, Dijkstra(g, w, 0));
  for (VertexId v : {5, 17, 35}) {
    ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> path, release.Path(0, v));
    EXPECT_NEAR(TotalWeight(w, path),
                exact.distance[static_cast<size_t>(v)], 1e-6);
  }
}

TEST(PrivateShortestPathTest, Theorem55BoundHolds) {
  // Against the true shortest path (k hops, weight W), the released path's
  // true weight is at most W + 2k * offset, with probability >= 1 - gamma.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeConnectedErdosRenyi(60, 0.08, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 4.0, &rng);
  PrivateShortestPathOptions options;
  options.params = PrivacyParams{0.5, 0.0, 1.0};
  options.gamma = 0.02;
  ASSERT_OK_AND_ASSIGN(ShortestPathTree exact, Dijkstra(g, w, 0));
  int violations = 0, total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    ASSERT_OK_AND_ASSIGN(PrivateShortestPaths release,
                         PrivateShortestPaths::Release(g, w, options, &rng));
    for (VertexId v = 1; v < 60; ++v) {
      ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> exact_path,
                           ExtractPathEdges(g, exact, v));
      int k = static_cast<int>(exact_path.size());
      ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> released_path,
                           release.Path(0, v));
      double err = TotalWeight(w, released_path) -
                   exact.distance[static_cast<size_t>(v)];
      EXPECT_GE(err, -1e-9);
      if (err > release.ErrorBoundForHops(k)) ++violations;
      ++total;
    }
  }
  // The theorem holds for ALL pairs jointly with prob 1 - gamma; allow a
  // small slack on the per-release failure count.
  EXPECT_LT(violations, std::max(5, total / 20));
}

TEST(PrivateShortestPathTest, HopPenaltyPrefersFewHopPaths) {
  // Two routes 0 -> 21: direct edge of weight 1.2, or a 20-hop path of
  // weight ~1.0. At eps = 1 the offset dominates 20 hops, so the private
  // algorithm should pick the direct edge essentially always.
  std::vector<EdgeEndpoints> edges;
  for (int i = 0; i < 20; ++i) edges.push_back({i, i + 1});
  edges.push_back({0, 20});  // direct shortcut, edge id 20
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(21, edges));
  EdgeWeights w(21, 0.05);
  w[20] = 1.2;  // slightly worse than the 20-hop total of 1.0
  Rng rng(kTestSeed);
  PrivateShortestPathOptions options;
  options.params = PrivacyParams{1.0, 0.0, 1.0};
  int direct = 0;
  for (int trial = 0; trial < 50; ++trial) {
    ASSERT_OK_AND_ASSIGN(PrivateShortestPaths release,
                         PrivateShortestPaths::Release(g, w, options, &rng));
    ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> path, release.Path(0, 20));
    if (path.size() == 1) ++direct;
  }
  EXPECT_GT(direct, 45);
}

TEST(PrivateShortestPathTest, WorksOnDirectedGraphs) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g,
                       Graph::Create(3, {{0, 1}, {1, 2}, {2, 0}}, true));
  EdgeWeights w{1.0, 1.0, 1.0};
  PrivateShortestPathOptions options;
  ASSERT_OK_AND_ASSIGN(PrivateShortestPaths release,
                       PrivateShortestPaths::Release(g, w, options, &rng));
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> path, release.Path(0, 2));
  EXPECT_EQ(path.size(), 2u);
}

TEST(PrivateShortestPathTest, InvalidArguments) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(3));
  PrivateShortestPathOptions options;
  options.gamma = 0.0;
  EXPECT_FALSE(
      PrivateShortestPaths::Release(g, {1.0, 1.0}, options, &rng).ok());
  options.gamma = 0.1;
  EXPECT_FALSE(
      PrivateShortestPaths::Release(g, {-1.0, 1.0}, options, &rng).ok());
}

TEST(PrivateShortestPathTest, ErrorBoundForHopsFormula) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(5));
  EdgeWeights w(4, 1.0);
  PrivateShortestPathOptions options;
  options.params = PrivacyParams{2.0, 0.0, 1.0};
  options.gamma = 0.01;
  ASSERT_OK_AND_ASSIGN(PrivateShortestPaths release,
                       PrivateShortestPaths::Release(g, w, options, &rng));
  EXPECT_DOUBLE_EQ(release.ErrorBoundForHops(3), 6.0 * release.offset());
  EXPECT_DOUBLE_EQ(release.ErrorBoundForHops(0), 0.0);
}

}  // namespace
}  // namespace dpsp
