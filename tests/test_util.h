// Shared helpers for the test suite.

#ifndef DPSP_TESTS_TEST_UTIL_H_
#define DPSP_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "common/status.h"

// Asserts that a Status (or the .status() of a Result) is OK.
#define ASSERT_OK(expr)                                 \
  do {                                                  \
    const ::dpsp::Status dpsp_test_status_ = (expr);    \
    ASSERT_TRUE(dpsp_test_status_.ok())                 \
        << dpsp_test_status_.ToString();                \
  } while (0)

#define EXPECT_OK(expr)                                 \
  do {                                                  \
    const ::dpsp::Status dpsp_test_status_ = (expr);    \
    EXPECT_TRUE(dpsp_test_status_.ok())                 \
        << dpsp_test_status_.ToString();                \
  } while (0)

// Unwraps a Result<T> into `lhs`, failing the test on error.
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                             \
  ASSERT_OK_AND_ASSIGN_IMPL(DPSP_CONCAT(dpsp_test_result_, __LINE__), \
                            lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(result, lhs, rexpr)         \
  auto result = (rexpr);                                      \
  ASSERT_TRUE(result.ok()) << result.status().ToString();     \
  lhs = std::move(result).value()

namespace dpsp {

/// Fixed seed used across the suite; tests that need multiple independent
/// streams derive child seeds from it.
inline constexpr uint64_t kTestSeed = 0x5ea1f00d2016ULL;

}  // namespace dpsp

#endif  // DPSP_TESTS_TEST_UTIL_H_
