#include "core/hld_oracle.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/tree_distance.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

Result<Graph> MakeFamilyTree(int family, int n, Rng* rng) {
  switch (family) {
    case 0:
      return MakePathGraph(n);
    case 1:
      return MakeBalancedTree(n, 2);
    case 2:
      return MakeRandomTree(n, rng);
    case 3:
      return MakeStarGraph(n);
    default:
      return MakeCaterpillarTree(std::max(1, n / 4), 3);
  }
}

TEST(HldOracleTest, HighEpsilonMatchesExactDistances) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(60, &rng));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 5.0, &rng);
  PrivacyParams params{1e7, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle, HldTreeOracle::Build(g, w, params, &rng));
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  for (VertexId u = 0; u < 60; u += 2) {
    for (VertexId v = 0; v < 60; v += 3) {
      ASSERT_OK_AND_ASSIGN(double d, oracle->Distance(u, v));
      EXPECT_NEAR(d, exact.at(u, v), 1e-2) << u << "," << v;
    }
  }
  EXPECT_EQ(oracle->Name(), "tree-hld");
}

class HldFamilyTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HldFamilyTest, AccurateAcrossFamiliesAtHighEpsilon) {
  auto [family, n] = GetParam();
  Rng rng(kTestSeed + static_cast<uint64_t>(family * 100 + n));
  ASSERT_OK_AND_ASSIGN(Graph g, MakeFamilyTree(family, n, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.5, 3.0, &rng);
  PrivacyParams params{1e7, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle, HldTreeOracle::Build(g, w, params, &rng));
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  int v_count = g.num_vertices();
  for (int trial = 0; trial < 100; ++trial) {
    VertexId u = static_cast<VertexId>(rng.UniformInt(0, v_count - 1));
    VertexId v = static_cast<VertexId>(rng.UniformInt(0, v_count - 1));
    ASSERT_OK_AND_ASSIGN(double d, oracle->Distance(u, v));
    EXPECT_NEAR(d, exact.at(u, v), 1e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, HldFamilyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(2, 17, 64, 200)));

TEST(HldOracleTest, ErrorWithinBound) {
  Rng rng(kTestSeed);
  int n = 256;
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(n, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 20.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  double gamma = 0.02;
  double bound = HldTreeOracle::ErrorBound(n, params, gamma);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  int violations = 0, total = 0;
  for (int trial = 0; trial < 3; ++trial) {
    ASSERT_OK_AND_ASSIGN(auto oracle,
                         HldTreeOracle::Build(g, w, params, &rng));
    for (int q = 0; q < 500; ++q) {
      VertexId u = static_cast<VertexId>(rng.UniformInt(0, n - 1));
      VertexId v = static_cast<VertexId>(rng.UniformInt(0, n - 1));
      ASSERT_OK_AND_ASSIGN(double d, oracle->Distance(u, v));
      if (std::fabs(d - exact.at(u, v)) > bound) ++violations;
      ++total;
    }
  }
  EXPECT_LT(violations, std::max(5, static_cast<int>(3 * gamma * total)));
}

TEST(HldOracleTest, ChainCountReasonable) {
  Rng rng(kTestSeed);
  // A path has 1 chain; a star has V-1 chains (one per light leaf, plus
  // the heavy one folded into the root chain).
  ASSERT_OK_AND_ASSIGN(Graph path, MakePathGraph(50));
  PrivacyParams params;
  ASSERT_OK_AND_ASSIGN(
      auto path_oracle,
      HldTreeOracle::Build(path, EdgeWeights(49, 1.0), params, &rng));
  EXPECT_EQ(path_oracle->num_chains(), 1);

  ASSERT_OK_AND_ASSIGN(Graph star, MakeStarGraph(50));
  ASSERT_OK_AND_ASSIGN(
      auto star_oracle,
      HldTreeOracle::Build(star, EdgeWeights(49, 1.0), params, &rng));
  EXPECT_EQ(star_oracle->num_chains(), 49);
}

TEST(HldOracleTest, SymmetricAndZeroDiagonal) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeBalancedTree(63, 2));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 2.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle, HldTreeOracle::Build(g, w, params, &rng));
  for (VertexId u = 0; u < 63; u += 7) {
    ASSERT_OK_AND_ASSIGN(double uu, oracle->Distance(u, u));
    EXPECT_DOUBLE_EQ(uu, 0.0);
    for (VertexId v = 0; v < 63; v += 5) {
      ASSERT_OK_AND_ASSIGN(double uv, oracle->Distance(u, v));
      ASSERT_OK_AND_ASSIGN(double vu, oracle->Distance(v, u));
      EXPECT_DOUBLE_EQ(uv, vu);
    }
  }
}

TEST(HldOracleTest, NoiseScaleAdaptsToChainDepth) {
  // The release's sensitivity is the max chain's level count, not log V:
  // a path of 1024 pays levels(1023) = 11, a star pays 1 — the mechanism
  // exploits public topology for free (bench_tree_all_pairs E2b).
  Rng rng(kTestSeed);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(Graph path, MakePathGraph(1024));
  ASSERT_OK_AND_ASSIGN(
      auto path_oracle,
      HldTreeOracle::Build(path, EdgeWeights(1023, 1.0), params, &rng));
  EXPECT_DOUBLE_EQ(path_oracle->noise_scale(), 11.0);
  ASSERT_OK_AND_ASSIGN(Graph star, MakeStarGraph(1024));
  ASSERT_OK_AND_ASSIGN(
      auto star_oracle,
      HldTreeOracle::Build(star, EdgeWeights(1023, 1.0), params, &rng));
  EXPECT_DOUBLE_EQ(star_oracle->noise_scale(), 1.0);
}

TEST(HldOracleTest, RejectsNonTrees) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph cycle, MakeCycleGraph(6));
  PrivacyParams params;
  EXPECT_FALSE(
      HldTreeOracle::Build(cycle, EdgeWeights(6, 1.0), params, &rng).ok());
}

TEST(HldOracleTest, ComparableErrorRegimeToRecursiveOracle) {
  // Both tree mechanisms are polylog; on the same input their mean errors
  // should be within an order of magnitude of each other.
  Rng rng(kTestSeed);
  int n = 512;
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(n, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  ASSERT_OK_AND_ASSIGN(auto hld, HldTreeOracle::Build(g, w, params, &rng));
  ASSERT_OK_AND_ASSIGN(auto recursive,
                       TreeAllPairsOracle::Build(g, w, params, &rng));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport hld_report,
                       EvaluateOracleAllPairs(g, exact, *hld));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport rec_report,
                       EvaluateOracleAllPairs(g, exact, *recursive));
  EXPECT_LT(hld_report.mean_abs_error, 10.0 * rec_report.mean_abs_error);
  EXPECT_LT(rec_report.mean_abs_error, 10.0 * hld_report.mean_abs_error);
}

}  // namespace
}  // namespace dpsp
