#include "core/distance_oracle.h"

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "core/baselines.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

// A fake oracle returning exact + constant bias, for testing the evaluator.
class BiasedOracle final : public DistanceOracle {
 public:
  BiasedOracle(const DistanceMatrix* exact, double bias)
      : exact_(exact), bias_(bias) {}
  Result<double> Distance(VertexId u, VertexId v) const override {
    return exact_->at(u, v) + bias_;
  }
  std::string Name() const override { return "biased"; }

 private:
  const DistanceMatrix* exact_;
  double bias_;
};

TEST(DistanceBatchTest, DefaultBatchMatchesSerialLoop) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(3, 3));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 2.0, &rng);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  BiasedOracle oracle(&exact, 0.5);  // no override: exercises the default

  std::vector<VertexPair> pairs = {{0, 8}, {3, 3}, {2, 5}, {8, 0}};
  ASSERT_OK_AND_ASSIGN(std::vector<double> batch,
                       oracle.DistanceBatch(pairs));
  ASSERT_EQ(batch.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(double serial,
                         oracle.Distance(pairs[i].first, pairs[i].second));
    EXPECT_EQ(batch[i], serial);
  }
}

TEST(DistanceBatchTest, ParallelHelperMatchesSerialAndPropagatesErrors) {
  Rng rng(kTestSeed);
  // 256 vertices -> 65536 pairs, enough that ParallelWorkerCount(.., 4)
  // actually fans out 4 workers (an explicit max_threads overrides the
  // hardware-concurrency cap, so this holds on single-core CI too).
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(16, 16));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 2.0, &rng);
  ASSERT_OK_AND_ASSIGN(auto oracle, MakeExactOracle(g, w));

  std::vector<VertexPair> pairs;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      pairs.emplace_back(u, v);
    }
  }
  ASSERT_EQ(ParallelWorkerCount(pairs.size(), /*max_threads=*/4), 4);
  ASSERT_OK_AND_ASSIGN(std::vector<double> batch,
                       DistanceBatchOf(*oracle, pairs, /*max_threads=*/4));
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(double serial,
                         oracle->Distance(pairs[i].first, pairs[i].second));
    EXPECT_EQ(batch[i], serial);
  }

  // An out-of-range pair in the last chunk surfaces as the batch error
  // even when another worker owns it.
  pairs.push_back({0, g.num_vertices() + 7});
  EXPECT_FALSE(DistanceBatchOf(*oracle, pairs, 4).ok());
  EXPECT_FALSE(oracle->DistanceBatch(pairs).ok());
}

TEST(EvaluateOracleTest, ExactOracleHasZeroError) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(4, 4));
  EdgeWeights w = MakeUniformWeights(g, 0.5, 2.0, &rng);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  ASSERT_OK_AND_ASSIGN(auto oracle, MakeExactOracle(g, w));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(g, exact, *oracle));
  EXPECT_EQ(report.num_pairs, 16 * 15 / 2);
  EXPECT_DOUBLE_EQ(report.max_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_abs_error, 0.0);
}

TEST(EvaluateOracleTest, BiasedOracleReportsBias) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(6));
  EdgeWeights w(5, 1.0);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  BiasedOracle oracle(&exact, 2.5);
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(g, exact, oracle));
  EXPECT_DOUBLE_EQ(report.max_abs_error, 2.5);
  EXPECT_DOUBLE_EQ(report.mean_abs_error, 2.5);
  EXPECT_DOUBLE_EQ(report.p50_abs_error, 2.5);
}

TEST(EvaluateOracleTest, SkipsUnreachablePairs) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}}));
  EdgeWeights w{1.0};
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  BiasedOracle oracle(&exact, 0.0);
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(g, exact, oracle));
  EXPECT_EQ(report.num_pairs, 1);  // only (0, 1) reachable
}

TEST(EvaluateOracleTest, ExplicitPairList) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(5));
  EdgeWeights w(4, 2.0);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  BiasedOracle oracle(&exact, 1.0);
  std::vector<std::pair<VertexId, VertexId>> pairs{{0, 4}, {1, 2}};
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOraclePairs(g, exact, oracle, pairs));
  EXPECT_EQ(report.num_pairs, 2);
  EXPECT_DOUBLE_EQ(report.max_abs_error, 1.0);
}

TEST(EvaluateOracleTest, OutOfRangePairFails) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(3));
  EdgeWeights w(2, 1.0);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  BiasedOracle oracle(&exact, 0.0);
  EXPECT_FALSE(EvaluateOraclePairs(g, exact, oracle, {{0, 99}}).ok());
}

}  // namespace
}  // namespace dpsp
