#include "core/distance_oracle.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/baselines.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

// A fake oracle returning exact + constant bias, for testing the evaluator.
class BiasedOracle final : public DistanceOracle {
 public:
  BiasedOracle(const DistanceMatrix* exact, double bias)
      : exact_(exact), bias_(bias) {}
  Result<double> Distance(VertexId u, VertexId v) const override {
    return exact_->at(u, v) + bias_;
  }
  std::string Name() const override { return "biased"; }

 private:
  const DistanceMatrix* exact_;
  double bias_;
};

TEST(EvaluateOracleTest, ExactOracleHasZeroError) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeGridGraph(4, 4));
  EdgeWeights w = MakeUniformWeights(g, 0.5, 2.0, &rng);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  ASSERT_OK_AND_ASSIGN(auto oracle, MakeExactOracle(g, w));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(g, exact, *oracle));
  EXPECT_EQ(report.num_pairs, 16 * 15 / 2);
  EXPECT_DOUBLE_EQ(report.max_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_abs_error, 0.0);
}

TEST(EvaluateOracleTest, BiasedOracleReportsBias) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(6));
  EdgeWeights w(5, 1.0);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  BiasedOracle oracle(&exact, 2.5);
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(g, exact, oracle));
  EXPECT_DOUBLE_EQ(report.max_abs_error, 2.5);
  EXPECT_DOUBLE_EQ(report.mean_abs_error, 2.5);
  EXPECT_DOUBLE_EQ(report.p50_abs_error, 2.5);
}

TEST(EvaluateOracleTest, SkipsUnreachablePairs) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(3, {{0, 1}}));
  EdgeWeights w{1.0};
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  BiasedOracle oracle(&exact, 0.0);
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(g, exact, oracle));
  EXPECT_EQ(report.num_pairs, 1);  // only (0, 1) reachable
}

TEST(EvaluateOracleTest, ExplicitPairList) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(5));
  EdgeWeights w(4, 2.0);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  BiasedOracle oracle(&exact, 1.0);
  std::vector<std::pair<VertexId, VertexId>> pairs{{0, 4}, {1, 2}};
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOraclePairs(g, exact, oracle, pairs));
  EXPECT_EQ(report.num_pairs, 2);
  EXPECT_DOUBLE_EQ(report.max_abs_error, 1.0);
}

TEST(EvaluateOracleTest, OutOfRangePairFails) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(3));
  EdgeWeights w(2, 1.0);
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  BiasedOracle oracle(&exact, 0.0);
  EXPECT_FALSE(EvaluateOraclePairs(g, exact, oracle, {{0, 99}}).ok());
}

}  // namespace
}  // namespace dpsp
