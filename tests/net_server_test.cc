// Tests for the network front end: wire-protocol round trips, loopback
// serving bit-identical to direct BatchExecutor calls, budget-driven
// admission control (typed over-budget rejection), queue-depth/connection
// backpressure, and survival under 8 concurrent client connections.

#include "net/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/oracle_registry.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/protocol.h"
#include "test_util.h"

namespace dpsp {
namespace {

constexpr int kNumVertices = 64;  // even path: satisfies every input family
constexpr uint64_t kServerSeed = kTestSeed ^ 0xd15c0;

std::vector<VertexPair> SampleTestPairs(int n, int count, Rng* rng) {
  std::vector<VertexPair> pairs;
  pairs.reserve(static_cast<size_t>(count));
  while (static_cast<int>(pairs.size()) < count) {
    auto u = static_cast<VertexId>(rng->UniformInt(0, n - 1));
    auto v = static_cast<VertexId>(rng->UniformInt(0, n - 1));
    pairs.emplace_back(u, v);
  }
  return pairs;
}

struct Workload {
  Graph graph;
  EdgeWeights weights;
};

Workload MakeWorkload() {
  Rng rng(kTestSeed);
  Graph g = MakePathGraph(kNumVertices).value();
  EdgeWeights w = MakeUniformWeights(g, 0.1, 0.9, &rng);
  return {std::move(g), std::move(w)};
}

/// A loopback server over the canonical path workload, plus the pieces a
/// test needs to reproduce its releases locally (same params, same seed =>
/// same noise stream => bit-identical released structures).
class ServerFixture {
 public:
  explicit ServerFixture(net::QueryServerOptions options = {},
                         PrivacyParams total_budget = {1e9, 0.0, 1.0})
      : workload_(MakeWorkload()) {
    ReleaseContext ctx =
        ReleaseContext::Create(params_, kServerSeed).value();
    ctx.SetTotalBudget(total_budget);
    server_ = std::make_unique<net::QueryServer>(options, std::move(ctx));
    EXPECT_OK(server_->AddWorkload("path", workload_.graph,
                                   workload_.weights));
    EXPECT_OK(server_->Start());
  }

  net::Client Connect() {
    return net::Client::Connect("127.0.0.1", server_->port()).value();
  }

  /// The oracle the server's Nth release built, reproduced locally:
  /// replays the same mechanisms in the same order through a context with
  /// the server's seed.
  std::unique_ptr<DistanceOracle> ReplayRelease(
      const std::vector<std::string>& mechanisms) {
    ReleaseContext ctx =
        ReleaseContext::Create(params_, kServerSeed).value();
    std::unique_ptr<DistanceOracle> last;
    for (const std::string& name : mechanisms) {
      last = OracleRegistry::Global()
                 .Create(name, workload_.graph, workload_.weights, ctx)
                 .value();
    }
    return last;
  }

  net::QueryServer& server() { return *server_; }
  const Workload& workload() const { return workload_; }
  const PrivacyParams& params() const { return params_; }

 private:
  PrivacyParams params_{1.0, 0.0, 1.0};
  Workload workload_;
  std::unique_ptr<net::QueryServer> server_;
};

// ------------------------------------------------------------- protocol --

TEST(NetProtocolTest, ReleaseRequestRoundTrips) {
  net::ReleaseRequest request{"path", "tree-hld", "main"};
  std::vector<uint8_t> body = net::EncodeReleaseRequest(request);
  ASSERT_OK_AND_ASSIGN(net::ReleaseRequest decoded,
                       net::DecodeReleaseRequest(body));
  EXPECT_EQ(decoded.workload, "path");
  EXPECT_EQ(decoded.mechanism, "tree-hld");
  EXPECT_EQ(decoded.handle_name, "main");
}

TEST(NetProtocolTest, QueryRequestRoundTripsAndRejectsTruncation) {
  std::vector<VertexPair> pairs = {{0, 5}, {3, 2}, {7, 7}};
  std::vector<uint8_t> body = net::EncodeQueryRequest(42, pairs);
  ASSERT_OK_AND_ASSIGN(net::QueryRequest decoded,
                       net::DecodeQueryRequest(body));
  EXPECT_EQ(decoded.handle_id, 42u);
  EXPECT_EQ(decoded.pairs, pairs);

  body.pop_back();  // truncated: count disagrees with body size
  EXPECT_FALSE(net::DecodeQueryRequest(body).ok());
  body.push_back(0);
  body.push_back(0);  // trailing byte
  EXPECT_FALSE(net::DecodeQueryRequest(body).ok());
}

TEST(NetProtocolTest, QueryResponsePreservesDoubleBits) {
  std::vector<double> distances = {0.0, -1.5, 1e300, 0.1 + 0.2};
  std::vector<uint8_t> body = net::EncodeQueryResponse(distances);
  ASSERT_OK_AND_ASSIGN(std::vector<double> decoded,
                       net::DecodeQueryResponse(body));
  ASSERT_EQ(decoded.size(), distances.size());
  for (size_t i = 0; i < distances.size(); ++i) {
    EXPECT_EQ(decoded[i], distances[i]);  // bit-exact, not approximate
  }
}

TEST(NetProtocolTest, ErrorFrameCarriesKindAndStatus) {
  std::vector<uint8_t> body = net::EncodeError(
      net::ErrorKind::kBudgetExhausted,
      Status::FailedPrecondition("privacy budget exhausted"));
  ASSERT_OK_AND_ASSIGN(net::WireError error, net::DecodeError(body));
  EXPECT_EQ(error.kind, net::ErrorKind::kBudgetExhausted);
  EXPECT_EQ(error.code, StatusCode::kFailedPrecondition);
  Status status = error.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.message(), "privacy budget exhausted");
}

// --------------------------------------------------------------- server --

TEST(NetServerTest, ServesBatchesBitIdenticalToDirectExecutor) {
  ServerFixture fixture;
  net::Client client = fixture.Connect();

  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "main"));
  EXPECT_EQ(info.epsilon, fixture.params().epsilon);

  Rng rng(kTestSeed ^ 1);
  std::vector<VertexPair> pairs =
      SampleTestPairs(kNumVertices, 3000, &rng);
  ASSERT_OK_AND_ASSIGN(std::vector<double> remote,
                       client.Query(info.handle_id, pairs));

  // The same release, reproduced locally, answered by a direct
  // BatchExecutor call: the network path must be bit-identical.
  std::unique_ptr<DistanceOracle> reference =
      fixture.ReplayRelease({"tree-hld"});
  BatchExecutor executor;
  ASSERT_OK_AND_ASSIGN(std::vector<double> direct,
                       executor.Execute(*reference, pairs));
  ASSERT_EQ(remote.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(remote[i], direct[i]) << "pair " << i;
  }
}

TEST(NetServerTest, SecondReleaseContinuesTheSameNoiseStream) {
  ServerFixture fixture;
  net::Client client = fixture.Connect();
  ASSERT_OK(client.Release("path", "tree-recursive", "first").status());
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo second,
                       client.Release("path", "tree-hld", "second"));

  Rng rng(kTestSeed ^ 2);
  std::vector<VertexPair> pairs = SampleTestPairs(kNumVertices, 500, &rng);
  ASSERT_OK_AND_ASSIGN(std::vector<double> remote,
                       client.Query(second.handle_id, pairs));
  // Local replay must run BOTH releases in order to advance the stream.
  std::unique_ptr<DistanceOracle> reference =
      fixture.ReplayRelease({"tree-recursive", "tree-hld"});
  BatchExecutor executor;
  ASSERT_OK_AND_ASSIGN(std::vector<double> direct,
                       executor.Execute(*reference, pairs));
  EXPECT_EQ(remote, direct);
}

TEST(NetServerTest, RejectsOverBudgetReleaseWithTypedError) {
  // eps=1 per release under a total of 1.5: the first fits, the second
  // must be refused before any construction work.
  ServerFixture fixture({}, PrivacyParams{1.5, 0.0, 1.0});
  net::Client client = fixture.Connect();
  ASSERT_OK(client.Release("path", "tree-hld", "first").status());

  Result<net::ReleaseInfo> second =
      client.Release("path", "tree-recursive", "second");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(client.last_error().has_value());
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kBudgetExhausted);

  net::ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.releases_granted, 1u);
  EXPECT_EQ(stats.budget_rejected, 1u);
  EXPECT_EQ(stats.open_handles, 1u);
  // The refused release left the ledger untouched: a third release that
  // fits (the free exact oracle) still goes through.
  ASSERT_OK(client.Release("path", "exact", "third").status());
}

TEST(NetServerTest, UnknownNamesAreTypedNotFound) {
  ServerFixture fixture;
  net::Client client = fixture.Connect();

  Result<net::ReleaseInfo> bad_workload =
      client.Release("nope", "tree-hld", "a");
  ASSERT_FALSE(bad_workload.ok());
  EXPECT_EQ(bad_workload.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kNotFound);

  Result<net::ReleaseInfo> bad_mechanism =
      client.Release("path", "nope", "a");
  ASSERT_FALSE(bad_mechanism.ok());
  EXPECT_EQ(bad_mechanism.status().code(), StatusCode::kNotFound);

  Result<std::vector<double>> bad_handle =
      client.Query(12345, std::vector<VertexPair>{{0, 1}});
  ASSERT_FALSE(bad_handle.ok());
  EXPECT_EQ(bad_handle.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kNotFound);
}

TEST(NetServerTest, DuplicateHandleNameIsRefusedWithoutSpending) {
  ServerFixture fixture;
  net::Client client = fixture.Connect();
  ASSERT_OK(client.Release("path", "tree-hld", "main").status());

  Result<net::ReleaseInfo> duplicate =
      client.Release("path", "tree-recursive", "main");
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kInvalidArgument);
  // Only the first release spent budget.
  EXPECT_EQ(fixture.server().stats().releases_granted, 1u);
  EXPECT_EQ(fixture.server().context().accountant().num_releases(), 1);
}

TEST(NetServerTest, EmptyQueryBatchIsWellDefined) {
  ServerFixture fixture;
  net::Client client = fixture.Connect();
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "main"));
  ASSERT_OK_AND_ASSIGN(std::vector<double> empty,
                       client.Query(info.handle_id, {}));
  EXPECT_TRUE(empty.empty());
  ASSERT_OK_AND_ASSIGN(std::vector<double> single,
                       client.Query(info.handle_id,
                                    std::vector<VertexPair>{{0, 5}}));
  EXPECT_EQ(single.size(), 1u);
}

TEST(NetServerTest, DrainModeShedsQueriesWithTypedOverload) {
  net::QueryServerOptions options;
  options.max_inflight_queries = -1;  // drain: shed every query
  ServerFixture fixture(options);
  net::Client client = fixture.Connect();
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "main"));

  Result<std::vector<double>> shed =
      client.Query(info.handle_id, std::vector<VertexPair>{{0, 1}});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kOverloaded);
  EXPECT_EQ(fixture.server().stats().overload_rejected, 1u);
}

TEST(NetServerTest, AdmissionPacerCapsSustainedQueryThroughput) {
  // 100k pairs/s ceiling, 1000-pair batches: admitted starts are spaced
  // 10ms apart, so after the first (unpaced) batch, five more must take
  // at least 50ms of wall clock. The lower bound is exact (sleep_until
  // never wakes early), so this cannot flake on a slow machine.
  net::QueryServerOptions options;
  options.max_query_pairs_per_sec = 100e3;
  ServerFixture fixture(options);
  net::Client client = fixture.Connect();
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "paced"));
  Rng rng(kServerSeed);
  std::vector<VertexPair> pairs =
      SampleTestPairs(kNumVertices, 1000, &rng);
  ASSERT_OK(client.Query(info.handle_id, pairs).status());  // seeds pacer
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(client.Query(info.handle_id, pairs).status());
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 50.0);
  // Paced batches are delayed, never shed: no overload rejections.
  EXPECT_EQ(fixture.server().stats().overload_rejected, 0u);
}

TEST(NetServerTest, ConnectionLimitRejectsWithTypedOverload) {
  net::QueryServerOptions options;
  options.max_connections = 1;
  ServerFixture fixture(options);
  net::Client first = fixture.Connect();
  // A round trip guarantees the first connection is registered before the
  // second one reaches the acceptor.
  ASSERT_OK(first.Stats().status());

  // The server sends the typed rejection immediately after accepting and
  // then hangs up, so read the frame without writing anything first.
  ASSERT_OK_AND_ASSIGN(net::Socket second,
                       net::Connect("127.0.0.1", fixture.server().port()));
  ASSERT_OK_AND_ASSIGN(net::Frame reply, net::ReadFrame(second));
  ASSERT_EQ(reply.type, net::MessageType::kError);
  ASSERT_OK_AND_ASSIGN(net::WireError error, net::DecodeError(reply.body));
  EXPECT_EQ(error.kind, net::ErrorKind::kOverloaded);
  EXPECT_EQ(error.code, StatusCode::kUnavailable);
  // The first connection keeps working.
  ASSERT_OK(first.Stats().status());
}

TEST(NetServerTest, MalformedFrameGetsTypedErrorAndCloses) {
  ServerFixture fixture;
  ASSERT_OK_AND_ASSIGN(net::Socket raw,
                       net::Connect("127.0.0.1", fixture.server().port()));
  uint8_t garbage[16] = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_OK(raw.WriteAll(garbage, sizeof(garbage)));
  ASSERT_OK_AND_ASSIGN(net::Frame reply, net::ReadFrame(raw));
  ASSERT_EQ(reply.type, net::MessageType::kError);
  ASSERT_OK_AND_ASSIGN(net::WireError error, net::DecodeError(reply.body));
  EXPECT_EQ(error.kind, net::ErrorKind::kMalformed);
  // The stream cannot be resynchronized: the server hangs up.
  Status closed = net::ReadFrame(raw).status();
  EXPECT_FALSE(closed.ok());
}

TEST(NetProtocolTest, ServerStatsV1BodyDecodesWithoutAccounting) {
  // Backward-compatible decode: a v1 peer's StatsResponse body ends after
  // the counters; the accounting extension stays at its defaults.
  net::ServerStats stats;
  stats.queries_served = 7;
  stats.open_handles = 2;
  stats.accounting_policy =
      static_cast<uint16_t>(AccountingPolicy::kZcdp);
  stats.spent_epsilon = 1.25;
  std::vector<uint8_t> body = net::EncodeServerStats(stats);
  constexpr size_t kV1BodyBytes = 6 * 8 + 4;
  body.resize(kV1BodyBytes);  // what a v1 peer would have sent
  ASSERT_OK_AND_ASSIGN(net::ServerStats decoded,
                       net::DecodeServerStats(body));
  EXPECT_EQ(decoded.queries_served, 7u);
  EXPECT_EQ(decoded.open_handles, 2u);
  EXPECT_FALSE(decoded.has_accounting);
  EXPECT_EQ(decoded.accounting_policy, 0u);
  EXPECT_DOUBLE_EQ(decoded.spent_epsilon, 0.0);

  // A truncated extension is still a malformed body, not a v1 peer.
  std::vector<uint8_t> torn = net::EncodeServerStats(stats);
  torn.pop_back();
  EXPECT_FALSE(net::DecodeServerStats(torn).ok());
}

TEST(NetProtocolTest, ServerStatsV2RoundTripsAccounting) {
  net::ServerStats stats;
  stats.releases_granted = 3;
  stats.has_accounting = true;
  stats.accounting_policy =
      static_cast<uint16_t>(AccountingPolicy::kAdvanced);
  stats.spent_epsilon = 0.75;
  stats.spent_delta = 1e-7;
  stats.remaining_epsilon = 1.25;
  stats.remaining_delta = 1e-5;
  std::vector<uint8_t> body = net::EncodeServerStats(stats);
  ASSERT_OK_AND_ASSIGN(net::ServerStats decoded,
                       net::DecodeServerStats(body));
  EXPECT_TRUE(decoded.has_accounting);
  EXPECT_EQ(decoded.accounting_policy,
            static_cast<uint16_t>(AccountingPolicy::kAdvanced));
  EXPECT_DOUBLE_EQ(decoded.spent_epsilon, 0.75);
  EXPECT_DOUBLE_EQ(decoded.spent_delta, 1e-7);
  EXPECT_DOUBLE_EQ(decoded.remaining_epsilon, 1.25);
  EXPECT_DOUBLE_EQ(decoded.remaining_delta, 1e-5);
}

TEST(NetServerTest, StatsRoundTripRemainingBudgetUnderActivePolicy) {
  // Acceptance: the Stats frame reports the remaining budget under the
  // server ledger's active policy, through net::Client.
  Workload workload = MakeWorkload();
  PrivacyParams per_release{0.5, 1e-6, 1.0};
  PrivacyParams budget{3.0, 1e-4, 1.0};
  const double kDeltaSlack = 1e-5;
  ReleaseContext ctx =
      ReleaseContext::Create(per_release, kServerSeed,
                             AccountingPolicy::kZcdp)
          .value();
  ctx.SetTotalBudget(budget, kDeltaSlack);
  net::QueryServer server({}, std::move(ctx));
  ASSERT_OK(server.AddWorkload("path", workload.graph, workload.weights));
  ASSERT_OK(server.Start());
  net::Client client = net::Client::Connect("127.0.0.1",
                                            server.port()).value();

  // Two Gaussian-calibrated releases, charged at their natural zCDP rate.
  ASSERT_OK(client.Release("path", "bounded-weight-gaussian", "g1").status());
  ASSERT_OK(client.Release("path", "bounded-weight-gaussian", "g2").status());

  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
  ASSERT_TRUE(stats.has_accounting);
  EXPECT_EQ(stats.accounting_policy,
            static_cast<uint16_t>(AccountingPolicy::kZcdp));
  // Reproduce the expected position: two GaussianFromParams charges under
  // rho-sum composition, converted at the server's delta slack.
  PrivacyLoss loss = PrivacyLoss::GaussianFromParams(per_release).value();
  double expected_eps = ZcdpEpsilon(2.0 * loss.rho, kDeltaSlack);
  EXPECT_DOUBLE_EQ(stats.spent_epsilon, expected_eps);
  EXPECT_DOUBLE_EQ(stats.spent_delta, kDeltaSlack);
  EXPECT_DOUBLE_EQ(stats.remaining_epsilon, budget.epsilon - expected_eps);
  EXPECT_DOUBLE_EQ(stats.remaining_delta, budget.delta - kDeltaSlack);
  server.Stop();
}

TEST(NetServerTest, V1PeerGetsV1HeaderAndV1StatsBody) {
  // Rolling-upgrade compatibility: a v1 client's frames carry version 1,
  // and its ReadFrame rejects anything but version 1 — so the server must
  // echo the request's version and encode the v1 stats body shape.
  ServerFixture fixture;
  ASSERT_OK_AND_ASSIGN(
      net::Socket socket,
      net::Connect("127.0.0.1", fixture.server().port()));
  ASSERT_OK(net::WriteFrame(socket, net::MessageType::kStatsRequest, {},
                            /*version=*/1));
  ASSERT_OK_AND_ASSIGN(net::Frame response, net::ReadFrame(socket));
  EXPECT_EQ(response.version, 1u);
  EXPECT_EQ(response.type, net::MessageType::kStatsResponse);
  EXPECT_EQ(response.body.size(), 6u * 8u + 4u);  // counters only
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats,
                       net::DecodeServerStats(response.body));
  EXPECT_FALSE(stats.has_accounting);

  // The same request at v2 gets the extension on the same server.
  ASSERT_OK(net::WriteFrame(socket, net::MessageType::kStatsRequest, {}));
  ASSERT_OK_AND_ASSIGN(net::Frame v2_response, net::ReadFrame(socket));
  EXPECT_EQ(v2_response.version, net::kProtocolVersion);
  ASSERT_OK_AND_ASSIGN(net::ServerStats v2_stats,
                       net::DecodeServerStats(v2_response.body));
  EXPECT_TRUE(v2_stats.has_accounting);
}

TEST(NetServerTest, StatsReportInfiniteHeadroomWithoutBudget) {
  ServerFixture fixture;  // fixture budget is huge but installed...
  Workload workload = MakeWorkload();
  ReleaseContext ctx =
      ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kServerSeed)
          .value();  // ...this one has none at all
  net::QueryServer server({}, std::move(ctx));
  ASSERT_OK(server.AddWorkload("path", workload.graph, workload.weights));
  ASSERT_OK(server.Start());
  net::Client client = net::Client::Connect("127.0.0.1",
                                            server.port()).value();
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
  ASSERT_TRUE(stats.has_accounting);
  EXPECT_EQ(stats.accounting_policy,
            static_cast<uint16_t>(AccountingPolicy::kBasic));
  EXPECT_TRUE(std::isinf(stats.remaining_epsilon));
  EXPECT_TRUE(std::isinf(stats.remaining_delta));
  server.Stop();
}

TEST(NetServerTest, Survives8ConcurrentClientConnections) {
  net::QueryServerOptions options;
  // The default limit derives from the core count; on a 1-core CI runner
  // that is below 8 and this test would (correctly) be shed. Survival
  // under concurrency is what is under test here, not admission.
  options.max_inflight_queries = 16;
  ServerFixture fixture(options);
  net::Client setup = fixture.Connect();
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       setup.Release("path", "tree-hld", "main"));

  std::unique_ptr<DistanceOracle> reference =
      fixture.ReplayRelease({"tree-hld"});
  BatchExecutor executor;

  constexpr int kClients = 8;
  constexpr int kBatchesPerClient = 5;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Result<net::Client> client =
          net::Client::Connect("127.0.0.1", fixture.server().port());
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      Rng rng(kTestSeed + static_cast<uint64_t>(c));
      for (int b = 0; b < kBatchesPerClient; ++b) {
        std::vector<VertexPair> pairs =
            SampleTestPairs(kNumVertices, 400, &rng);
        Result<std::vector<double>> remote =
            client->Query(info.handle_id, pairs);
        if (!remote.ok()) {
          failures[c] = remote.status().ToString();
          return;
        }
        Result<std::vector<double>> direct =
            executor.Execute(*reference, pairs);
        if (!direct.ok() || *remote != *direct) {
          failures[c] = "mismatch against direct executor";
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": "
                                     << failures[c];
  }
  net::ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.queries_served,
            static_cast<uint64_t>(kClients * kBatchesPerClient));
  EXPECT_EQ(stats.pairs_served,
            static_cast<uint64_t>(kClients * kBatchesPerClient * 400));
}

// -------------------------------------------------- v3 UpdateWeights --

TEST(NetServerTest, UpdateRoundTripMatchesLocalReplayBitForBit) {
  ServerFixture fixture;
  net::Client client = fixture.Connect();
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "live"));

  std::vector<EdgeWeightDelta> deltas = {{3, 1.5}, {40, 0.05}, {17, 0.8}};
  ASSERT_OK_AND_ASSIGN(net::UpdateInfo applied,
                       client.UpdateWeights(info.handle_id, deltas));
  EXPECT_GT(applied.charged_epsilon, 0.0);
  EXPECT_LE(applied.charged_epsilon, fixture.params().epsilon);
  EXPECT_GT(applied.dirty_blocks, 0u);

  Rng rng(kTestSeed ^ 3);
  std::vector<VertexPair> pairs = SampleTestPairs(kNumVertices, 1500, &rng);
  ASSERT_OK_AND_ASSIGN(std::vector<double> remote,
                       client.Query(info.handle_id, pairs));

  // Local replay: same seed, same build, same epoch through the same
  // ledger => the served post-update structure must be bit-identical.
  ReleaseContext ctx =
      ReleaseContext::Create(fixture.params(), kServerSeed).value();
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DistanceOracle> reference,
      OracleRegistry::Global().Create("tree-hld", fixture.workload().graph,
                                      fixture.workload().weights, ctx));
  ASSERT_OK(reference->AsUpdatable()->ApplyWeightUpdates(deltas, ctx));
  EXPECT_DOUBLE_EQ(applied.charged_epsilon,
                   reference->AsUpdatable()->last_update().charged_epsilon);
  ASSERT_OK_AND_ASSIGN(std::vector<double> direct,
                       DistanceBatchOf(*reference, pairs, 1));
  ASSERT_EQ(remote.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(remote[i], direct[i]) << "pair " << i;
  }
}

TEST(NetServerTest, UpdateAgainstBuildOnceReleaseIsTypedUnsupported) {
  ServerFixture fixture;
  net::Client client = fixture.Connect();
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-recursive", "static"));
  std::vector<EdgeWeightDelta> deltas = {{0, 0.5}};
  Result<net::UpdateInfo> refused =
      client.UpdateWeights(info.handle_id, deltas);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(client.last_error().has_value());
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kUnsupported);
  // The handle still serves queries.
  ASSERT_OK(
      client.Query(info.handle_id, std::vector<VertexPair>{{0, 1}})
          .status());
}

TEST(NetServerTest, OverBudgetUpdateIsTypedBudgetExhaustedAndMutatesNothing) {
  // Room for the build (1.0) but not a full-sensitivity epoch: the path
  // workload is one heavy chain, so any update epoch charges the full
  // per-release epsilon and must be refused.
  ServerFixture fixture({}, PrivacyParams{1.2, 0.0, 1.0});
  net::Client client = fixture.Connect();
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       client.Release("path", "tree-hld", "capped"));

  Rng rng(kTestSeed ^ 4);
  std::vector<VertexPair> pairs = SampleTestPairs(kNumVertices, 400, &rng);
  ASSERT_OK_AND_ASSIGN(std::vector<double> before,
                       client.Query(info.handle_id, pairs));

  std::vector<EdgeWeightDelta> deltas = {{5, 2.0}};
  Result<net::UpdateInfo> blocked =
      client.UpdateWeights(info.handle_id, deltas);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kBudgetExhausted);
  EXPECT_EQ(fixture.server().stats().budget_rejected, 1u);

  // The refused epoch left the release untouched: answers bit-identical.
  ASSERT_OK_AND_ASSIGN(std::vector<double> after,
                       client.Query(info.handle_id, pairs));
  EXPECT_EQ(before, after);
}

TEST(NetServerTest, UpdateOnUnknownHandleIsTypedNotFound) {
  ServerFixture fixture;
  net::Client client = fixture.Connect();
  std::vector<EdgeWeightDelta> deltas = {{0, 1.0}};
  Result<net::UpdateInfo> missing = client.UpdateWeights(321, deltas);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.last_error()->kind, net::ErrorKind::kNotFound);
}

TEST(NetServerTest, ConcurrentQueriesAndUpdatesStaySane) {
  // 4 query threads hammer while 32 update epochs interleave under the
  // handle's writer lock: every batch must be internally consistent (all
  // answers from one epoch's structure) and every round trip must
  // succeed — no torn reads, no deadlock, no protocol corruption.
  ServerFixture fixture;
  net::Client admin = fixture.Connect();
  ASSERT_OK_AND_ASSIGN(net::ReleaseInfo info,
                       admin.Release("path", "tree-hld", "mixed"));
  const int kQueryThreads = 4, kBatches = 25;
  std::vector<std::string> failures(kQueryThreads);
  std::vector<std::thread> threads;
  for (int c = 0; c < kQueryThreads; ++c) {
    threads.emplace_back([&, c] {
      Result<net::Client> client =
          net::Client::Connect("127.0.0.1", fixture.server().port());
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      Rng rng(kTestSeed + static_cast<uint64_t>(c));
      for (int b = 0; b < kBatches; ++b) {
        std::vector<VertexPair> pairs =
            SampleTestPairs(kNumVertices, 200, &rng);
        Result<std::vector<double>> remote =
            client->Query(info.handle_id, pairs);
        if (!remote.ok()) {
          failures[c] = remote.status().ToString();
          return;
        }
      }
    });
  }
  Rng update_rng(kTestSeed ^ 5);
  for (int epoch = 0; epoch < 32; ++epoch) {
    std::vector<EdgeWeightDelta> deltas = {
        {static_cast<EdgeId>(update_rng.UniformInt(0, kNumVertices - 2)),
         update_rng.Uniform(0.1, 0.9)}};
    ASSERT_OK(admin.UpdateWeights(info.handle_id, deltas).status());
  }
  for (std::thread& thread : threads) thread.join();
  for (int c = 0; c < kQueryThreads; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": "
                                     << failures[c];
  }
}

}  // namespace
}  // namespace dpsp
