#include "core/path_graph.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/statistics.h"
#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(PathGraphOracleTest, RejectsNonPathTopologies) {
  Rng rng(kTestSeed);
  PrivacyParams params;
  ASSERT_OK_AND_ASSIGN(Graph cycle, MakeCycleGraph(5));
  EXPECT_FALSE(
      PathGraphOracle::Build(cycle, EdgeWeights(5, 1.0), params, &rng).ok());
  ASSERT_OK_AND_ASSIGN(Graph star, MakeStarGraph(5));
  EXPECT_FALSE(
      PathGraphOracle::Build(star, EdgeWeights(4, 1.0), params, &rng).ok());
}

TEST(PathGraphOracleTest, HighEpsilonMatchesPrefixSums) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(37));  // non power of two
  EdgeWeights w = MakeUniformWeights(g, 0.5, 3.0, &rng);
  PrivacyParams params{1e7, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle, PathGraphOracle::Build(g, w, params,
                                                           &rng));
  for (VertexId u = 0; u < 37; u += 3) {
    for (VertexId v = u; v < 37; v += 5) {
      double exact = 0.0;
      for (int e = u; e < v; ++e) exact += w[static_cast<size_t>(e)];
      ASSERT_OK_AND_ASSIGN(double est, oracle->Distance(u, v));
      EXPECT_NEAR(est, exact, 1e-2) << u << "," << v;
    }
  }
}

TEST(PathGraphOracleTest, SegmentCountLogarithmic) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(1025));
  EdgeWeights w(1024, 1.0);
  PrivacyParams params;
  ASSERT_OK_AND_ASSIGN(auto oracle, PathGraphOracle::Build(g, w, params,
                                                           &rng));
  int max_segments = 0;
  for (int trial = 0; trial < 500; ++trial) {
    VertexId u = static_cast<VertexId>(rng.UniformInt(0, 1024));
    VertexId v = static_cast<VertexId>(rng.UniformInt(0, 1024));
    ASSERT_OK_AND_ASSIGN(int segments, oracle->QuerySegmentCount(u, v));
    max_segments = std::max(max_segments, segments);
  }
  // At most 2 * #levels = 2 * 11 for 1024 edges.
  EXPECT_LE(max_segments, 2 * oracle->num_levels());
  EXPECT_EQ(oracle->num_levels(), 11);
}

TEST(PathGraphOracleTest, AdjacentQueryIsSingleSegment) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(16));
  EdgeWeights w(15, 2.0);
  PrivacyParams params;
  ASSERT_OK_AND_ASSIGN(auto oracle, PathGraphOracle::Build(g, w, params,
                                                           &rng));
  ASSERT_OK_AND_ASSIGN(int segments, oracle->QuerySegmentCount(7, 8));
  EXPECT_EQ(segments, 1);
  ASSERT_OK_AND_ASSIGN(int zero, oracle->QuerySegmentCount(5, 5));
  EXPECT_EQ(zero, 0);
}

TEST(PathGraphOracleTest, SymmetricQueries) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(20));
  EdgeWeights w = MakeUniformWeights(g, 1.0, 2.0, &rng);
  PrivacyParams params;
  ASSERT_OK_AND_ASSIGN(auto oracle, PathGraphOracle::Build(g, w, params,
                                                           &rng));
  ASSERT_OK_AND_ASSIGN(double a, oracle->Distance(3, 15));
  ASSERT_OK_AND_ASSIGN(double b, oracle->Distance(15, 3));
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(PathGraphOracleTest, ErrorWithinTheoremA1Bound) {
  Rng rng(kTestSeed);
  int n = 512;
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(n));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 10.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  double gamma = 0.02;
  double bound = PathGraphErrorBound(n, params, gamma);

  std::vector<double> prefix(static_cast<size_t>(n), 0.0);
  for (int i = 1; i < n; ++i) {
    prefix[static_cast<size_t>(i)] =
        prefix[static_cast<size_t>(i - 1)] + w[static_cast<size_t>(i - 1)];
  }

  int violations = 0, total = 0;
  for (int trial = 0; trial < 5; ++trial) {
    ASSERT_OK_AND_ASSIGN(auto oracle, PathGraphOracle::Build(g, w, params,
                                                             &rng));
    for (int q = 0; q < 400; ++q) {
      VertexId u = static_cast<VertexId>(rng.UniformInt(0, n - 1));
      VertexId v = static_cast<VertexId>(rng.UniformInt(0, n - 1));
      double exact = std::fabs(prefix[static_cast<size_t>(v)] -
                               prefix[static_cast<size_t>(u)]);
      ASSERT_OK_AND_ASSIGN(double est, oracle->Distance(u, v));
      if (std::fabs(est - exact) > bound) ++violations;
      ++total;
    }
  }
  EXPECT_LT(violations, std::max(5, static_cast<int>(3 * gamma * total)));
}

TEST(PathGraphOracleTest, SingleVertexPath) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(1));
  PrivacyParams params;
  ASSERT_OK_AND_ASSIGN(auto oracle, PathGraphOracle::Build(g, {}, params,
                                                           &rng));
  ASSERT_OK_AND_ASSIGN(double d, oracle->Distance(0, 0));
  EXPECT_DOUBLE_EQ(d, 0.0);
}

class PathGraphBranchingTest : public ::testing::TestWithParam<int> {};

TEST_P(PathGraphBranchingTest, AllBranchingFactorsAccurateAtHighEpsilon) {
  int branching = GetParam();
  Rng rng(kTestSeed + static_cast<uint64_t>(branching));
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(100));
  EdgeWeights w = MakeUniformWeights(g, 0.5, 2.0, &rng);
  PrivacyParams params{1e7, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle, PathGraphOracle::Build(g, w, params,
                                                           &rng, branching));
  std::vector<double> prefix(100, 0.0);
  for (int i = 1; i < 100; ++i) {
    prefix[static_cast<size_t>(i)] =
        prefix[static_cast<size_t>(i - 1)] + w[static_cast<size_t>(i - 1)];
  }
  for (int q = 0; q < 200; ++q) {
    VertexId u = static_cast<VertexId>(rng.UniformInt(0, 99));
    VertexId v = static_cast<VertexId>(rng.UniformInt(0, 99));
    double exact = std::fabs(prefix[static_cast<size_t>(v)] -
                             prefix[static_cast<size_t>(u)]);
    ASSERT_OK_AND_ASSIGN(double est, oracle->Distance(u, v));
    EXPECT_NEAR(est, exact, 1e-2);
    // Segment bound: <= 2 (b-1) levels.
    ASSERT_OK_AND_ASSIGN(int segments, oracle->QuerySegmentCount(u, v));
    EXPECT_LE(segments, 2 * (branching - 1) * oracle->num_levels());
  }
}

INSTANTIATE_TEST_SUITE_P(Branching, PathGraphBranchingTest,
                         ::testing::Values(2, 3, 4, 10, 99));

TEST(PathGraphBranchingTest, FewerLevelsWithLargerBranching) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(1025));
  EdgeWeights w(1024, 1.0);
  PrivacyParams params;
  ASSERT_OK_AND_ASSIGN(auto binary, PathGraphOracle::Build(g, w, params,
                                                           &rng, 2));
  ASSERT_OK_AND_ASSIGN(auto wide, PathGraphOracle::Build(g, w, params,
                                                         &rng, 32));
  EXPECT_EQ(binary->num_levels(), 11);
  EXPECT_EQ(wide->num_levels(), 3);  // 1, 32, 1024
  EXPECT_LT(wide->noise_scale(), binary->noise_scale());
}

TEST(PathGraphBranchingTest, RejectsBranchingBelowTwo) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(8));
  PrivacyParams params;
  EXPECT_FALSE(
      PathGraphOracle::Build(g, EdgeWeights(7, 1.0), params, &rng, 1).ok());
}

TEST(PathGraphErrorBoundTest, GrowsPolylogarithmically) {
  PrivacyParams params{1.0, 0.0, 1.0};
  double b256 = PathGraphErrorBound(256, params, 0.05);
  double b65536 = PathGraphErrorBound(65536, params, 0.05);
  EXPECT_LT(b65536 / b256, 6.0);  // (16/8)^1.5 ~ 2.8, far below 256x
}

TEST(PathGraphOracleTest, MatchesTreeOracleAsymptotics) {
  // Appendix A promises the same bound as the tree algorithm; check the two
  // mechanisms land in the same error regime on the same input.
  Rng rng(kTestSeed);
  int n = 256;
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(n));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 5.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle, PathGraphOracle::Build(g, w, params,
                                                           &rng));
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(g, w));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(g, exact, *oracle));
  // Naive per-pair noise at eps=1 would be ~n^2/eps ~ 65536; the hierarchy
  // must be orders of magnitude below that and under the proved bound.
  EXPECT_LT(report.max_abs_error,
            PathGraphErrorBound(n, params, 0.05 / (n * n)));
}

}  // namespace
}  // namespace dpsp
