// The crash-recovery harness: fork a child, SIGKILL it at every
// registered failpoint mid-durability-operation (no destructors, no
// flushes — exactly power loss), then recover in the parent and assert
// the crash-safety invariants:
//
//   * the ledger is monotone — every charge durably committed before the
//     crash is recovered, and an unresolved intent recovers as SPENT
//     (double-charged, never resurrected);
//   * partial snapshots are never published — the target path either
//     does not exist or validates completely;
//   * state published before the crash survives bit-identically;
//   * the error-injection flavor of every site surfaces as a Status.
//
// A full-stack leg runs a persistent QueryServer in the child, kills it
// mid-release, warm-restarts in the parent, and requires the recovered
// handle to answer bit-identically to the distances the child recorded
// before dying.

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/random.h"
#include "dp/release_context.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "store/oracle_store.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "test_util.h"

namespace dpsp {
namespace {

std::string MakeTempDir() {
  std::string path = ::testing::TempDir() + "dpsp_crash_XXXXXX";
  EXPECT_NE(mkdtemp(path.data()), nullptr);
  return path;
}

/// The child's durability workload: one WAL charge then one snapshot
/// write, traversing every registered failpoint site in a fixed order.
/// With a crash armed, the process dies at the armed site; the sequence
/// after it never runs.
void RunCrashWorkload(const std::string& dir, uint64_t next_lsn) {
  auto wal = store::BudgetWal::Open(dir + "/budget.wal", next_lsn);
  if (!wal.ok()) _exit(10);
  Result<uint64_t> intent =
      (*wal)->AppendIntent("crash-op", PrivacyLoss::Pure(0.5));
  if (!intent.ok()) _exit(11);
  if (!(*wal)->AppendCommit(*intent).ok()) _exit(12);
  std::vector<ReleasedSection> sections = {{"payload", {9, 9, 9, 9}}};
  if (!store::WriteSnapshot(dir + "/crash.snap", sections).ok()) _exit(13);
}

/// Forks, arms `failpoint` as a crash in the child, runs the workload,
/// and asserts the child died by SIGKILL (exit code 42 = site never
/// reached, a dead failpoint).
void CrashChildAt(const char* failpoint, const std::string& dir,
                  uint64_t next_lsn) {
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    SetFailpoint(failpoint, FailpointAction::kCrash);
    RunCrashWorkload(dir, next_lsn);
    _exit(42);  // the armed site was never evaluated
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << failpoint << ": child exited with "
      << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1)
      << " instead of crashing";
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL) << failpoint;
}

TEST(CrashRecoveryTest, EveryFailpointRecoversWithInvariantsIntact) {
  for (const char* failpoint : failpoints::kAll) {
    SCOPED_TRACE(failpoint);
    const std::string dir = MakeTempDir();
    const std::string wal_path = dir + "/budget.wal";

    // Durable pre-crash state: one committed charge, one published
    // snapshot. Both must survive whatever the crash does.
    uint64_t next_lsn = 1;
    {
      ASSERT_OK_AND_ASSIGN(auto wal, store::BudgetWal::Open(wal_path, 1));
      ASSERT_OK_AND_ASSIGN(uint64_t lsn,
                           wal->AppendIntent("base", PrivacyLoss::Pure(1.0)));
      ASSERT_OK(wal->AppendCommit(lsn));
      next_lsn = lsn + 1;
    }
    std::vector<ReleasedSection> published = {{"payload", {1, 2, 3}}};
    ASSERT_OK(store::WriteSnapshot(dir + "/published.snap", published));

    CrashChildAt(failpoint, dir, next_lsn);

    // Invariant: a crash artifact never hard-fails WAL replay.
    ASSERT_OK_AND_ASSIGN(store::WalRecovery recovery,
                         store::ReplayBudgetWal(wal_path));

    // Invariant: the ledger is monotone — the committed pre-crash charge
    // is always there, and replaying into a fresh accountant never
    // yields LESS spend than was committed before the crash.
    ASSERT_GE(recovery.charges.size(), 1u);
    EXPECT_EQ(recovery.charges[0].label, "base");
    EXPECT_TRUE(recovery.charges[0].committed);
    ASSERT_OK_AND_ASSIGN(ReleaseContext ledger,
                         ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed));
    ASSERT_OK(store::ApplyWalRecovery(recovery, ledger));
    EXPECT_GE(ledger.SpentTotal().epsilon, 1.0);

    // Site-specific ledger shape: intents at or after the kill site are
    // spent-or-absent, never resurrected.
    const std::string site(failpoint);
    if (site == failpoints::kWalBeforeIntent) {
      EXPECT_EQ(recovery.charges.size(), 1u);  // crash before any write
    } else if (site == failpoints::kWalAfterIntent ||
               site == failpoints::kWalBeforeCommit) {
      ASSERT_EQ(recovery.charges.size(), 2u);
      EXPECT_EQ(recovery.charges[1].label, "crash-op");
      EXPECT_FALSE(recovery.charges[1].committed);
      EXPECT_GE(ledger.SpentTotal().epsilon, 1.5);  // intent is spent
    } else {
      // kWalAfterCommit and both snapshot sites: the charge completed.
      ASSERT_EQ(recovery.charges.size(), 2u);
      EXPECT_TRUE(recovery.charges[1].committed);
      EXPECT_GE(ledger.SpentTotal().epsilon, 1.5);
    }

    // Invariant: the crashed snapshot write never published a partial
    // file — the path is absent (both snapshot sites precede the
    // rename), and only WAL-site crashes leave it absent too (the
    // workload dies before reaching the snapshot step).
    Result<store::SnapshotReader> crashed =
        store::SnapshotReader::Open(dir + "/crash.snap");
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kNotFound);

    // Invariant: pre-crash published state is untouched.
    ASSERT_OK_AND_ASSIGN(store::SnapshotReader ok_reader,
                         store::SnapshotReader::Open(dir + "/published.snap"));
    const ReleasedSectionView* view = ok_reader.Find("payload");
    ASSERT_NE(view, nullptr);
    ASSERT_EQ(view->bytes.size(), 3u);
    EXPECT_EQ(view->bytes[0], 1);
    EXPECT_EQ(view->bytes[2], 3);
  }
}

TEST(CrashRecoveryTest, ErrorInjectionSurfacesAsStatusAtEverySite) {
  // The kError flavor: the same sites must turn into clean Status
  // failures with the process intact and no partial publication.
  for (const char* failpoint : failpoints::kAll) {
    SCOPED_TRACE(failpoint);
    const std::string dir = MakeTempDir();
    SetFailpoint(failpoint, FailpointAction::kError);
    const std::string site(failpoint);

    ASSERT_OK_AND_ASSIGN(auto wal,
                         store::BudgetWal::Open(dir + "/budget.wal", 1));
    Result<uint64_t> intent =
        wal->AppendIntent("op", PrivacyLoss::Pure(0.5));
    if (site == failpoints::kWalBeforeIntent ||
        site == failpoints::kWalAfterIntent) {
      EXPECT_FALSE(intent.ok());
      EXPECT_EQ(intent.status().code(), StatusCode::kInternal);
    } else {
      ASSERT_OK(intent.status());
      Status commit = wal->AppendCommit(*intent);
      if (site == failpoints::kWalBeforeCommit ||
          site == failpoints::kWalAfterCommit) {
        EXPECT_FALSE(commit.ok());
      } else {
        ASSERT_OK(commit);
        std::vector<ReleasedSection> sections = {{"payload", {1}}};
        Status snap = store::WriteSnapshot(dir + "/a.snap", sections);
        EXPECT_FALSE(snap.ok());
        // The failed write must not publish OR leave its temp file.
        EXPECT_NE(access((dir + "/a.snap").c_str(), F_OK), 0);
        EXPECT_NE(access((dir + "/a.snap.tmp").c_str(), F_OK), 0);
      }
    }
    ClearAllFailpoints();
  }
}

// ------------------------------------------------------ full-stack leg --

constexpr int kNumVertices = 16;

std::vector<VertexPair> AllPairs(int n) {
  std::vector<VertexPair> pairs;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) pairs.emplace_back(u, v);
  }
  return pairs;
}

std::unique_ptr<net::QueryServer> MakePersistentServer(
    const std::string& dir, const Graph& graph, const EdgeWeights& weights) {
  net::QueryServerOptions options;
  options.persistence_dir = dir;
  ReleaseContext ctx =
      ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed).value();
  auto server = std::make_unique<net::QueryServer>(options, std::move(ctx));
  EXPECT_OK(server->AddWorkload("path", graph, weights));
  return server;
}

TEST(CrashRecoveryTest, WarmRestartAfterMidReleaseKillAnswersBitIdentical) {
  const std::string dir = MakeTempDir();
  const std::string expected_path = dir + "/expected.bin";
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph graph, MakePathGraph(kNumVertices));
  EdgeWeights weights = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  const std::vector<VertexPair> pairs = AllPairs(kNumVertices);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // --- child: serve, record the truth durably, die mid-release ---
    std::unique_ptr<net::QueryServer> server =
        MakePersistentServer(dir, graph, weights);
    if (!server->Start().ok()) _exit(20);
    auto client = net::Client::Connect("127.0.0.1", server->port());
    if (!client.ok()) _exit(21);
    auto release = client->Release("path", "tree-hld", "h0");
    if (!release.ok()) _exit(22);
    auto distances = client->Query(release->handle_id, pairs);
    if (!distances.ok()) _exit(23);
    {
      int fd = open(expected_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
      if (fd < 0) _exit(24);
      const size_t bytes = distances->size() * sizeof(double);
      if (write(fd, distances->data(), bytes) !=
          static_cast<ssize_t>(bytes)) _exit(25);
      if (fsync(fd) != 0) _exit(26);
      close(fd);
    }
    // The second release dies between its WAL intent and commit: the
    // canonical torn charge.
    SetFailpoint(failpoints::kWalBeforeCommit, FailpointAction::kCrash);
    (void)client->Release("path", "per-pair-laplace", "h1");
    _exit(42);  // the failpoint never fired
  }

  // --- parent: require the SIGKILL, then warm-restart over the dir ---
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "child exited with "
      << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1);
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  std::unique_ptr<net::QueryServer> server =
      MakePersistentServer(dir, graph, weights);
  ASSERT_OK(server->Start());

  // Stats must report the recovery: one reloaded handle, two replayed
  // charges (h0 committed + h1's unresolved intent, spent).
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
  ASSERT_TRUE(stats.has_recovery);
  EXPECT_TRUE(stats.warm_restart);
  EXPECT_EQ(stats.recovered_handles, 1u);
  EXPECT_EQ(stats.recovered_charges, 2u);
  EXPECT_EQ(stats.open_handles, 1u);
  // No resurrection: both releases' epsilon stays spent on the ledger.
  EXPECT_EQ(server->context().SpentTotal().epsilon, 2.0);

  // The recovered handle answers bit-identically to the child's record.
  std::vector<double> expected(pairs.size());
  {
    int fd = open(expected_path.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);
    const size_t bytes = expected.size() * sizeof(double);
    ASSERT_EQ(read(fd, expected.data(), bytes),
              static_cast<ssize_t>(bytes));
    close(fd);
  }
  ASSERT_OK_AND_ASSIGN(std::vector<double> recovered,
                       client.Query(0, pairs));
  ASSERT_EQ(recovered.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(recovered[i], expected[i]) << "pair index " << i;
  }

  // The dead release's handle never materialized, but its NAME's budget
  // is spent; re-releasing under a fresh name still works against the
  // recovered ledger, and the recovered handle's name stays taken.
  Result<net::ReleaseInfo> duplicate =
      client.Release("path", "tree-hld", "h0");
  EXPECT_FALSE(duplicate.ok());
  ASSERT_OK(client.Release("path", "per-pair-laplace", "h1-retry").status());
}

}  // namespace
}  // namespace dpsp
