// End-to-end scenarios exercising the public API across modules, mirroring
// the examples/ programs: a navigation service over a synthetic road
// network, a telecom latency monitor on a bounded-weight backbone, and a
// full attack-vs-defense cycle on the lower-bound gadget.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/baselines.h"
#include "core/bounded_weight.h"
#include "core/private_shortest_path.h"
#include "core/reconstruction.h"
#include "core/tree_distance.h"
#include "dp/accountant.h"
#include "dp/composition.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(IntegrationTest, NavigationOverRoadNetwork) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(RoadNetwork network,
                       MakeSyntheticRoadNetwork(10, 10, 0.25, &rng));
  EdgeWeights traffic = MakeCongestionWeights(network, 4, 3.0, &rng);

  PrivateShortestPathOptions options;
  options.params = PrivacyParams{1.0, 0.0, 1.0};
  options.gamma = 0.05;
  ASSERT_OK_AND_ASSIGN(
      PrivateShortestPaths release,
      PrivateShortestPaths::Release(network.graph, traffic, options, &rng));

  ASSERT_OK_AND_ASSIGN(ShortestPathTree exact,
                       Dijkstra(network.graph, traffic, 0));
  int n = network.graph.num_vertices();
  int within_bound = 0, total = 0;
  for (VertexId v = 1; v < n; v += 9) {
    ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> path, release.Path(0, v));
    EXPECT_OK(ValidatePath(network.graph, path, 0, v));
    ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> exact_path,
                         ExtractPathEdges(network.graph, exact, v));
    double err = TotalWeight(traffic, path) -
                 exact.distance[static_cast<size_t>(v)];
    if (err <=
        release.ErrorBoundForHops(static_cast<int>(exact_path.size()))) {
      ++within_bound;
    }
    ++total;
  }
  EXPECT_GE(within_bound, total - 1);
}

TEST(IntegrationTest, TelecomBackboneLatencyOracle) {
  // Bounded-latency backbone links, all-pairs latency release via covering.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(GeometricGraph backbone,
                       MakeRandomGeometricGraph(120, 0.18, &rng));
  double max_latency = 5.0;
  EdgeWeights latency =
      MakeUniformWeights(backbone.graph, 0.5, max_latency, &rng);

  BoundedWeightOptions options;
  options.params = PrivacyParams{2.0, 1e-6, 1.0};
  options.max_weight = max_latency;
  ASSERT_OK_AND_ASSIGN(
      auto oracle, BoundedWeightOracle::Build(backbone.graph, latency,
                                              options, &rng));
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact,
                       AllPairsDijkstra(backbone.graph, latency));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(backbone.graph, exact,
                                              *oracle));
  EXPECT_LT(report.p95_abs_error, oracle->ErrorBound(0.05));
}

TEST(IntegrationTest, HierarchicalOrgChartSalaryDistances) {
  // A management tree where edge weights are private (e.g. compensation
  // deltas); all-pairs "distance" queries must stay accurate.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph org, MakeBalancedTree(255, 4));
  EdgeWeights w = MakeUniformWeights(org, 0.0, 10.0, &rng);
  PrivacyParams params{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       TreeAllPairsOracle::Build(org, w, params, &rng));
  ASSERT_OK_AND_ASSIGN(DistanceMatrix exact, AllPairsDijkstra(org, w));
  ASSERT_OK_AND_ASSIGN(OracleErrorReport report,
                       EvaluateOracleAllPairs(org, exact, *oracle));
  double bound = TreeAllPairsErrorBound(255, params, 0.05 / (255.0 * 127.0));
  EXPECT_LT(report.max_abs_error, bound);
}

TEST(IntegrationTest, BudgetSplitAcrossTwoReleases) {
  // Run two mechanisms on the same data under a split budget; basic
  // composition says the combination is (eps1 + eps2)-DP. Verify both
  // halves function and the budget arithmetic is exposed.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(100, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 2.0, &rng);
  double total_eps = 1.0;
  PrivacyParams half{total_eps / 2.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       TreeAllPairsOracle::Build(g, w, half, &rng));
  PrivateShortestPathOptions options;
  options.params = half;
  ASSERT_OK_AND_ASSIGN(PrivateShortestPaths paths,
                       PrivateShortestPaths::Release(g, w, options, &rng));
  EXPECT_DOUBLE_EQ(BasicCompositionEpsilon(2, total_eps / 2.0), total_eps);
  ASSERT_OK_AND_ASSIGN(double d, oracle->Distance(0, 99));
  EXPECT_TRUE(std::isfinite(d));
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> path, paths.Path(0, 99));
  EXPECT_OK(ValidatePath(g, path, 0, 99));
}

TEST(IntegrationTest, AttackDefenseCycle) {
  // The reconstruction attack succeeds against weak privacy and fails
  // against strong privacy — the lower bound story end to end.
  Rng rng(kTestSeed);
  int n = 80;
  PrivacyParams weak{8.0, 0.0, 1.0};
  PrivacyParams strong{0.1, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(
      AttackReport weak_report,
      RunReconstructionExperiment(AttackKind::kShortestPath, n, weak, 10,
                                  &rng));
  ASSERT_OK_AND_ASSIGN(
      AttackReport strong_report,
      RunReconstructionExperiment(AttackKind::kShortestPath, n, strong, 10,
                                  &rng));
  // Weak privacy: attacker recovers almost everything (small Hamming).
  EXPECT_LT(weak_report.mean_hamming, 0.1 * n);
  // Strong privacy: attacker is near random guessing (Hamming ~ n/2 *
  // (1 - small margin)); and always above the alpha bound.
  EXPECT_GT(strong_report.mean_hamming, 0.3 * n);
  EXPECT_GE(strong_report.mean_object_error, strong_report.alpha * 0.7);
}

TEST(IntegrationTest, PersistedTopologyAndReleasedWeightsRoundTrip) {
  // A deployment persists the public topology and the *released* (already
  // private) weights; a separate process reloads both and answers path
  // queries identically.
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(RoadNetwork network,
                       MakeSyntheticRoadNetwork(6, 6, 0.2, &rng));
  EdgeWeights traffic = MakeCongestionWeights(network, 2, 2.0, &rng);
  PrivateShortestPathOptions options;
  options.params = PrivacyParams{1.0, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(
      PrivateShortestPaths release,
      PrivateShortestPaths::Release(network.graph, traffic, options, &rng));

  std::string topo_text = SerializeGraph(network.graph);
  std::string weights_text = SerializeWeights(release.released_weights());

  ASSERT_OK_AND_ASSIGN(Graph reloaded_graph, DeserializeGraph(topo_text));
  ASSERT_OK_AND_ASSIGN(EdgeWeights reloaded_weights,
                       DeserializeWeights(weights_text));
  ASSERT_OK_AND_ASSIGN(ShortestPathTree reloaded_tree,
                       Dijkstra(reloaded_graph, reloaded_weights, 0));
  ASSERT_OK_AND_ASSIGN(ShortestPathTree original_tree, release.PathTree(0));
  for (VertexId v = 0; v < reloaded_graph.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(reloaded_tree.distance[static_cast<size_t>(v)],
                     original_tree.distance[static_cast<size_t>(v)]);
  }

  // And the released route renders for humans.
  ASSERT_OK_AND_ASSIGN(std::vector<EdgeId> route, release.Path(0, 35));
  DotOptions dot_options;
  dot_options.highlight = route;
  ASSERT_OK_AND_ASSIGN(std::string dot,
                       ToDot(network.graph, release.released_weights(),
                             dot_options));
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(IntegrationTest, AccountantTracksWholePipeline) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph g, MakeRandomTree(64, &rng));
  EdgeWeights w = MakeUniformWeights(g, 0.0, 2.0, &rng);
  BasicAccountant accountant;
  PrivacyParams slice{0.25, 0.0, 1.0};
  ASSERT_OK_AND_ASSIGN(auto oracle,
                       TreeAllPairsOracle::Build(g, w, slice, &rng));
  ASSERT_OK(accountant.Record("tree oracle", slice));
  PrivateShortestPathOptions options;
  options.params = slice;
  ASSERT_OK_AND_ASSIGN(PrivateShortestPaths paths,
                       PrivateShortestPaths::Release(g, w, options, &rng));
  ASSERT_OK(accountant.Record("path release", slice));
  EXPECT_DOUBLE_EQ(accountant.BasicTotal().epsilon, 0.5);
  EXPECT_TRUE(accountant.WithinBudget(PrivacyParams{1.0, 0.0, 1.0}, 1e-6));
}

TEST(IntegrationTest, MechanismsComposeOnSameGraphFamilyAcrossSeeds) {
  // Determinism: same seed → identical releases; different seeds → different.
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(32));
  EdgeWeights w(31, 1.0);
  PrivacyParams params{1.0, 0.0, 1.0};
  Rng rng_a(42), rng_b(42), rng_c(43);
  ASSERT_OK_AND_ASSIGN(
      TreeSingleSourceRelease a,
      ReleaseTreeSingleSourceDistances(g, w, 0, params, &rng_a));
  ASSERT_OK_AND_ASSIGN(
      TreeSingleSourceRelease b,
      ReleaseTreeSingleSourceDistances(g, w, 0, params, &rng_b));
  ASSERT_OK_AND_ASSIGN(
      TreeSingleSourceRelease c,
      ReleaseTreeSingleSourceDistances(g, w, 0, params, &rng_c));
  EXPECT_EQ(a.estimates, b.estimates);
  EXPECT_NE(a.estimates, c.estimates);
}

}  // namespace
}  // namespace dpsp
