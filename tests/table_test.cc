#include "common/table.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpsp {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(TableTest, RendersHeaderAndRows) {
  Table table("demo", {"a", "bb"});
  table.Row().Add(1).Add("x");
  table.Row().Add(22).Add("yy");
  std::string out = table.ToString();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| 22 |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2);
}

TEST(TableTest, AlignsColumnsToWidestCell) {
  Table table("t", {"col"});
  table.Row().Add("wide-cell-content");
  std::string out = table.ToString();
  // Header cell padded to the same width as the widest row cell.
  EXPECT_NE(out.find("| col              "), std::string::npos);
}

TEST(TableTest, DoubleFormattingUsesPrecision) {
  Table table("t", {"v"});
  table.Row().Add(1.23456789, 3);
  EXPECT_NE(table.ToString().find("1.23"), std::string::npos);
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table table("t", {"a", "b"});
  table.Row().Add("only-one");
  std::string out = table.ToString();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace dpsp
