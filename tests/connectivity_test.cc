#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_util.h"

namespace dpsp {
namespace {

TEST(ConnectivityTest, SingleComponent) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakePathGraph(5));
  ConnectedComponents cc = FindConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 1);
  EXPECT_TRUE(IsConnected(g));
}

TEST(ConnectivityTest, MultipleComponents) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(5, {{0, 1}, {2, 3}}));
  ConnectedComponents cc = FindConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 3);
  EXPECT_FALSE(IsConnected(g));
  EXPECT_EQ(cc.component[0], cc.component[1]);
  EXPECT_EQ(cc.component[2], cc.component[3]);
  EXPECT_NE(cc.component[0], cc.component[2]);
  EXPECT_NE(cc.component[0], cc.component[4]);
}

TEST(ConnectivityTest, MembersPartitionVertices) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(6, {{0, 3}, {1, 4}}));
  ConnectedComponents cc = FindConnectedComponents(g);
  auto members = cc.Members();
  size_t total = 0;
  for (const auto& m : members) total += m.size();
  EXPECT_EQ(total, 6u);
}

TEST(ConnectivityTest, EmptyAndSingletonAreConnected) {
  ASSERT_OK_AND_ASSIGN(Graph empty, Graph::Create(0, {}));
  EXPECT_TRUE(IsConnected(empty));
  ASSERT_OK_AND_ASSIGN(Graph single, Graph::Create(1, {}));
  EXPECT_TRUE(IsConnected(single));
}

TEST(ConnectivityTest, DirectedEdgesCountAsUndirectedForComponents) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}}, true));
  EXPECT_TRUE(IsConnected(g));
}

TEST(TwoColorTest, EvenCycleBipartite) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(6));
  ASSERT_OK_AND_ASSIGN(std::vector<int> colors, TwoColor(g));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NE(colors[static_cast<size_t>(g.edge(e).u)],
              colors[static_cast<size_t>(g.edge(e).v)]);
  }
  EXPECT_TRUE(IsBipartite(g));
}

TEST(TwoColorTest, OddCycleNotBipartite) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCycleGraph(5));
  EXPECT_FALSE(TwoColor(g).ok());
  EXPECT_FALSE(IsBipartite(g));
}

TEST(TwoColorTest, CompleteBipartiteIsBipartite) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeCompleteBipartiteGraph(3, 4));
  EXPECT_TRUE(IsBipartite(g));
}

TEST(TwoColorTest, TreesAreBipartite) {
  ASSERT_OK_AND_ASSIGN(Graph g, MakeBalancedTree(20, 3));
  EXPECT_TRUE(IsBipartite(g));
}

TEST(TwoColorTest, ParallelEdgesDoNotBreakBipartiteness) {
  ASSERT_OK_AND_ASSIGN(Graph g, Graph::Create(2, {{0, 1}, {0, 1}}));
  EXPECT_TRUE(IsBipartite(g));
}

}  // namespace
}  // namespace dpsp
