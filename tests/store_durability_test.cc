// Durability round trips for the src/store subsystem: the snapshot
// container (atomic write, eager validation, zero-copy sections), the
// oracle-level glue (EVERY registered mechanism reloads bit-identically
// from its released state — the persistence analogue of the SIMD
// conformance contract), and the budget WAL (intent/commit replay,
// intent-without-commit is spent, torn tails discarded and truncated).

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/oracle_registry.h"
#include "dp/release_context.h"
#include "graph/generators.h"
#include "store/oracle_store.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "test_util.h"

namespace dpsp {
namespace {

std::string MakeTempDir() {
  std::string path = ::testing::TempDir() + "dpsp_store_XXXXXX";
  EXPECT_NE(mkdtemp(path.data()), nullptr);
  return path;
}

PrivacyParams ParamsFor(const OracleSpec& spec) {
  return spec.loss == LossKind::kZcdp ? PrivacyParams{0.5, 1e-6, 1.0}
                                      : PrivacyParams{1.0, 0.0, 1.0};
}

std::vector<VertexPair> AllPairs(int n) {
  std::vector<VertexPair> pairs;
  pairs.reserve(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) pairs.emplace_back(u, v);
  }
  return pairs;
}

// ------------------------------------------------------------ snapshot --

TEST(SnapshotTest, RoundTripsLabeledSections) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/test.snap";
  std::vector<double> values = {0.0, -1.5, 1e300, 0.1 + 0.2};
  std::vector<ReleasedSection> sections;
  ReleasedSection doubles;
  doubles.label = "doubles";
  doubles.bytes.assign(
      reinterpret_cast<const uint8_t*>(values.data()),
      reinterpret_cast<const uint8_t*>(values.data() + values.size()));
  sections.push_back(doubles);
  sections.push_back({"raw", {1, 2, 3}});
  sections.push_back({"empty", {}});

  ASSERT_OK(store::WriteSnapshot(path, sections));
  ASSERT_OK_AND_ASSIGN(store::SnapshotReader reader,
                       store::SnapshotReader::Open(path));
  ASSERT_EQ(reader.sections().size(), 3u);
  const ReleasedSectionView* found = reader.Find("doubles");
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->bytes.size(), values.size() * sizeof(double));
  // 64-byte payload alignment: mapped doubles are directly usable.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(found->bytes.data()) % 64, 0u);
  const double* mapped = reinterpret_cast<const double*>(found->bytes.data());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(mapped[i], values[i]);  // bit-exact through the file
  }
  ASSERT_NE(reader.Find("raw"), nullptr);
  EXPECT_EQ(reader.Find("raw")->bytes.size(), 3u);
  ASSERT_NE(reader.Find("empty"), nullptr);
  EXPECT_EQ(reader.Find("empty")->bytes.size(), 0u);
  EXPECT_EQ(reader.Find("missing"), nullptr);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  Result<store::SnapshotReader> opened =
      store::SnapshotReader::Open(MakeTempDir() + "/absent.snap");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, RejectsBadSectionLabels) {
  const std::string dir = MakeTempDir();
  std::vector<ReleasedSection> duplicate = {{"a", {1}}, {"a", {2}}};
  EXPECT_FALSE(store::WriteSnapshot(dir + "/d.snap", duplicate).ok());
  std::vector<ReleasedSection> empty_label = {{"", {1}}};
  EXPECT_FALSE(store::WriteSnapshot(dir + "/e.snap", empty_label).ok());
}

TEST(SnapshotTest, AtomicOverwriteKeepsOldUntilNewIsComplete) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/test.snap";
  std::vector<ReleasedSection> first = {{"v", {1}}};
  std::vector<ReleasedSection> second = {{"v", {2}}};
  ASSERT_OK(store::WriteSnapshot(path, first));
  ASSERT_OK(store::WriteSnapshot(path, second));  // rename over the old
  ASSERT_OK_AND_ASSIGN(store::SnapshotReader reader,
                       store::SnapshotReader::Open(path));
  ASSERT_NE(reader.Find("v"), nullptr);
  EXPECT_EQ(reader.Find("v")->bytes[0], 2);
  // No stray temp file survives a successful write.
  EXPECT_NE(access((path + ".tmp").c_str(), F_OK), 0);
}

// -------------------------------------------------------- oracle store --

/// Every registered mechanism: save the released state, reload through
/// the registry loader, and require bit-identical all-pairs answers. The
/// loader never sees a ReleaseContext, so a reload that changed any
/// answer would mean the snapshot leaked or re-randomized released state.
class OracleStoreTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr int kNumVertices = 16;

  void SetUp() override {
    Rng rng(kTestSeed);
    ASSERT_OK_AND_ASSIGN(graph_, MakePathGraph(kNumVertices));
    weights_ = MakeUniformWeights(*graph_, 0.1, 0.9, &rng);
  }

  Result<Graph> graph_ = Status::Internal("unset");
  EdgeWeights weights_;
};

TEST_P(OracleStoreTest, SnapshotReloadsBitIdentical) {
  const std::string& name = GetParam();
  const OracleSpec* spec = OracleRegistry::Global().Find(name);
  ASSERT_NE(spec, nullptr);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(ParamsFor(*spec), kTestSeed));
  ASSERT_OK_AND_ASSIGN(
      auto oracle,
      OracleRegistry::Global().Create(name, *graph_, weights_, ctx));

  const std::string path = MakeTempDir() + "/oracle.snap";
  store::OracleSnapshotMeta meta{name, "path-16", "main"};
  ASSERT_OK(store::SaveOracleSnapshot(path, *oracle, meta));

  ASSERT_OK_AND_ASSIGN(store::SnapshotReader reader,
                       store::SnapshotReader::Open(path));
  ASSERT_OK_AND_ASSIGN(store::OracleSnapshotMeta decoded,
                       store::ReadOracleSnapshotMeta(reader));
  EXPECT_EQ(decoded.mechanism, name);
  EXPECT_EQ(decoded.workload, "path-16");
  EXPECT_EQ(decoded.handle, "main");

  ASSERT_OK_AND_ASSIGN(auto reloaded, store::LoadOracleSnapshot(
                                          reader, *graph_, weights_));
  std::vector<VertexPair> pairs = AllPairs(kNumVertices);
  ASSERT_OK_AND_ASSIGN(std::vector<double> before,
                       oracle->DistanceBatch(pairs));
  ASSERT_OK_AND_ASSIGN(std::vector<double> after,
                       reloaded->DistanceBatch(pairs));
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(before[i], after[i])
        << name << " reload mismatch at (" << pairs[i].first << ","
        << pairs[i].second << ")";
  }
}

TEST_P(OracleStoreTest, LoadAgainstWrongGraphIsTypedError) {
  const std::string& name = GetParam();
  const OracleSpec* spec = OracleRegistry::Global().Find(name);
  ASSERT_NE(spec, nullptr);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(ParamsFor(*spec), kTestSeed));
  ASSERT_OK_AND_ASSIGN(
      auto oracle,
      OracleRegistry::Global().Create(name, *graph_, weights_, ctx));
  const std::string path = MakeTempDir() + "/oracle.snap";
  ASSERT_OK(store::SaveOracleSnapshot(path, *oracle,
                                      {name, "path-16", "main"}));
  ASSERT_OK_AND_ASSIGN(store::SnapshotReader reader,
                       store::SnapshotReader::Open(path));
  // A different topology: the loader must refuse, not mis-bind sections.
  Rng rng(kTestSeed + 1);
  ASSERT_OK_AND_ASSIGN(Graph other, MakePathGraph(kNumVertices / 2));
  EdgeWeights other_w = MakeUniformWeights(other, 0.1, 0.9, &rng);
  EXPECT_FALSE(store::LoadOracleSnapshot(reader, other, other_w).ok())
      << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredOracles, OracleStoreTest,
    ::testing::ValuesIn(OracleRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string sanitized = info.param;
      for (char& c : sanitized) {
        if (c == '-') c = '_';
      }
      return sanitized;
    });

// ------------------------------------------------------------- the WAL --

TEST(BudgetWalTest, MissingFileIsEmptyRecovery) {
  ASSERT_OK_AND_ASSIGN(store::WalRecovery recovery,
                       store::ReplayBudgetWal(MakeTempDir() + "/absent.wal"));
  EXPECT_TRUE(recovery.charges.empty());
  EXPECT_EQ(recovery.next_lsn, 1u);
  EXPECT_EQ(recovery.records, 0u);
  EXPECT_EQ(recovery.discarded_tail_bytes, 0u);
}

TEST(BudgetWalTest, IntentCommitPairsReplay) {
  const std::string path = MakeTempDir() + "/budget.wal";
  {
    ASSERT_OK_AND_ASSIGN(auto wal, store::BudgetWal::Open(path, 1));
    ASSERT_OK_AND_ASSIGN(uint64_t first,
                         wal->AppendIntent("tree-hld", PrivacyLoss::Pure(1.0)));
    EXPECT_EQ(first, 1u);
    ASSERT_OK(wal->AppendCommit(first));
    ASSERT_OK_AND_ASSIGN(
        uint64_t second,
        wal->AppendIntent("bounded-weight-gaussian",
                          PrivacyLoss::Zcdp(0.125).value()));
    EXPECT_EQ(second, 2u);
    // No commit for `second`: simulates a crash mid-build.
  }
  ASSERT_OK_AND_ASSIGN(store::WalRecovery recovery,
                       store::ReplayBudgetWal(path));
  ASSERT_EQ(recovery.charges.size(), 2u);
  EXPECT_EQ(recovery.records, 3u);
  EXPECT_EQ(recovery.next_lsn, 3u);
  EXPECT_EQ(recovery.discarded_tail_bytes, 0u);
  EXPECT_EQ(recovery.charges[0].label, "tree-hld");
  EXPECT_EQ(recovery.charges[0].loss.kind, LossKind::kPure);
  EXPECT_EQ(recovery.charges[0].loss.epsilon, 1.0);
  EXPECT_TRUE(recovery.charges[0].committed);
  EXPECT_EQ(recovery.charges[1].label, "bounded-weight-gaussian");
  EXPECT_EQ(recovery.charges[1].loss.kind, LossKind::kZcdp);
  EXPECT_FALSE(recovery.charges[1].committed);
  EXPECT_EQ(recovery.committed_count(), 1u);

  // Intent-without-commit is SPENT: recovery charges both.
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed));
  ASSERT_OK(store::ApplyWalRecovery(recovery, ctx));
  EXPECT_EQ(ctx.telemetry().size(), 0u);  // recovery is not a new release
  EXPECT_GE(ctx.SpentTotal().epsilon, 1.0);
}

TEST(BudgetWalTest, TornTailIsDiscardedNotFatal) {
  const std::string path = MakeTempDir() + "/budget.wal";
  {
    ASSERT_OK_AND_ASSIGN(auto wal, store::BudgetWal::Open(path, 1));
    ASSERT_OK_AND_ASSIGN(uint64_t lsn,
                         wal->AppendIntent("a", PrivacyLoss::Pure(0.5)));
    ASSERT_OK(wal->AppendCommit(lsn));
    ASSERT_OK(wal->AppendIntent("b", PrivacyLoss::Pure(0.5)).status());
  }
  ASSERT_OK_AND_ASSIGN(store::WalRecovery clean,
                       store::ReplayBudgetWal(path));
  ASSERT_EQ(clean.records, 3u);
  // Tear the final record mid-payload, as a crash mid-append would.
  ASSERT_EQ(truncate(path.c_str(),
                     static_cast<off_t>(clean.valid_bytes - 5)), 0);
  ASSERT_OK_AND_ASSIGN(store::WalRecovery torn,
                       store::ReplayBudgetWal(path));
  EXPECT_EQ(torn.records, 2u);
  EXPECT_GT(torn.discarded_tail_bytes, 0u);
  ASSERT_EQ(torn.charges.size(), 1u);
  EXPECT_EQ(torn.charges[0].label, "a");
  EXPECT_EQ(torn.next_lsn, 2u);

  // The documented append-after-tear protocol: truncate to valid_bytes,
  // reopen at next_lsn, append — the log must replay cleanly again.
  ASSERT_EQ(truncate(path.c_str(),
                     static_cast<off_t>(torn.valid_bytes)), 0);
  {
    ASSERT_OK_AND_ASSIGN(auto wal,
                         store::BudgetWal::Open(path, torn.next_lsn));
    ASSERT_OK_AND_ASSIGN(uint64_t lsn,
                         wal->AppendIntent("c", PrivacyLoss::Pure(0.25)));
    EXPECT_EQ(lsn, 2u);
    ASSERT_OK(wal->AppendCommit(lsn));
  }
  ASSERT_OK_AND_ASSIGN(store::WalRecovery healed,
                       store::ReplayBudgetWal(path));
  EXPECT_EQ(healed.records, 4u);
  EXPECT_EQ(healed.discarded_tail_bytes, 0u);
  ASSERT_EQ(healed.charges.size(), 2u);
  EXPECT_EQ(healed.charges[1].label, "c");
  EXPECT_TRUE(healed.charges[1].committed);
}

TEST(BudgetWalTest, MeteredChargesFlowThroughTheHook) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/budget.wal";
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph graph, MakePathGraph(16));
  EdgeWeights weights = MakeUniformWeights(graph, 0.1, 0.9, &rng);

  PrivacyParams spent_before_crash{};
  {
    ASSERT_OK_AND_ASSIGN(auto wal, store::BudgetWal::Open(path, 1));
    store::WalDurabilityHook hook(wal.get());
    ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                         ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed));
    ctx.SetDurabilityHook(&hook);
    ASSERT_OK(OracleRegistry::Global()
                  .Create("tree-hld", graph, weights, ctx)
                  .status());
    ASSERT_OK(OracleRegistry::Global()
                  .Create("per-pair-laplace", graph, weights, ctx)
                  .status());
    spent_before_crash = ctx.SpentTotal();
  }

  // A fresh ledger rebuilt purely from the log must certify the same
  // spend — the WAL is the ledger's whole durability story.
  ASSERT_OK_AND_ASSIGN(store::WalRecovery recovery,
                       store::ReplayBudgetWal(path));
  EXPECT_EQ(recovery.charges.size(), 2u);
  EXPECT_EQ(recovery.committed_count(), 2u);
  ASSERT_OK_AND_ASSIGN(ReleaseContext recovered,
                       ReleaseContext::Create({1.0, 0.0, 1.0}, kTestSeed));
  ASSERT_OK(store::ApplyWalRecovery(recovery, recovered));
  EXPECT_EQ(recovered.SpentTotal().epsilon, spent_before_crash.epsilon);
  EXPECT_EQ(recovered.SpentTotal().delta, spent_before_crash.delta);
}

}  // namespace
}  // namespace dpsp
