// Dirty-subtree incremental release correctness: after update epochs the
// oracle's answers stay distributionally sound, the ledger equals the sum
// of the per-epoch dirty-fraction charges, clean regions keep their noise
// bit-for-bit, the update path is deterministic under fixed seeds, and
// sharded execution stays bit-identical to serial across epochs. Also the
// range-sums point-update primitive and the executor's update routing.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/hld_oracle.h"
#include "core/oracle_registry.h"
#include "core/range_sums.h"
#include "graph/generators.h"
#include "graph/tree.h"
#include "serve/batch_executor.h"
#include "test_util.h"

namespace dpsp {
namespace {

constexpr PrivacyParams kParams{1.0, 0.0, 1.0};

std::vector<VertexPair> SampleTreePairs(int n, int count, Rng* rng) {
  std::vector<VertexPair> pairs;
  pairs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<VertexId>(rng->UniformInt(0, n - 1)),
                       static_cast<VertexId>(rng->UniformInt(0, n - 1)));
  }
  return pairs;
}

std::vector<EdgeWeightDelta> RandomDeltas(int num_edges, int count,
                                          Rng* rng) {
  std::vector<EdgeWeightDelta> deltas;
  deltas.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    deltas.push_back(
        {static_cast<EdgeId>(rng->UniformInt(0, num_edges - 1)),
         rng->Uniform(0.1, 2.0)});
  }
  return deltas;
}

/// Exact tree distance between u and v from precomputed root distances.
double ExactTreeDistance(const std::vector<double>& root_dist, VertexId u,
                         VertexId v, const EulerTourLca& lca) {
  VertexId z = lca.Lca(u, v);
  return root_dist[static_cast<size_t>(u)] +
         root_dist[static_cast<size_t>(v)] -
         2.0 * root_dist[static_cast<size_t>(z)];
}

// ------------------------------------------------------- range sums unit --

TEST(RangeSumsUpdateTest, RedrawCountMatchesPlanAndCleanBlocksKeepBits) {
  Rng rng(kTestSeed);
  std::vector<double> values(37);
  for (double& v : values) v = rng.Uniform(0.0, 1.0);
  NoisyDyadicRangeSums sums(values, /*noise_scale=*/0.5, &rng);

  // Snapshot clean-region range sums far from the dirty indices.
  double clean_before = sums.RangeSumUnchecked(20, 37);

  std::vector<int> dirty = {3, 3, 5};  // duplicate index: counted once
  int planned = sums.DirtyBlockCount(dirty);
  std::vector<std::pair<int, double>> updates = {{3, 9.0}, {3, 2.5}, {5, 7.0}};
  int redrawn = sums.ApplyPointUpdates(updates, &rng);
  EXPECT_EQ(planned, redrawn);
  // Indices 3 and 5 share blocks from the level where 2^l spans both:
  // strictly fewer than 2 * num_levels blocks redraw.
  EXPECT_LT(redrawn, 2 * sums.num_levels());
  EXPECT_GE(redrawn, sums.num_levels());

  // Blocks not containing a dirty index are bit-identical.
  EXPECT_EQ(clean_before, sums.RangeSumUnchecked(20, 37));
}

TEST(RangeSumsUpdateTest, UpdatedPrefixTracksNewValues) {
  Rng rng(kTestSeed);
  std::vector<double> values(64, 1.0);
  NoisyDyadicRangeSums sums(values, /*noise_scale=*/1e-6, &rng);
  std::vector<std::pair<int, double>> updates = {{10, 100.0}};
  sums.ApplyPointUpdates(updates, &rng);
  // With negligible noise the prefix over the dirty index reflects the
  // new value and the prefix below it is untouched.
  EXPECT_NEAR(sums.PrefixSumUnchecked(11), 10.0 + 100.0, 1e-3);
  EXPECT_NEAR(sums.PrefixSumUnchecked(10), 10.0, 1e-3);
}

// ------------------------------------------------------ ledger equality --

TEST(IncrementalUpdateTest, LedgerEqualsSumOfPerEpochCharges) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph tree, MakeRandomTree(257, &rng));
  EdgeWeights w = MakeUniformWeights(tree, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(kParams, kTestSeed));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<HldTreeOracle> oracle,
                       HldTreeOracle::Build(tree, w, ctx));

  double expected_total = kParams.epsilon;  // the build
  for (int epoch = 0; epoch < 8; ++epoch) {
    std::vector<EdgeWeightDelta> deltas =
        RandomDeltas(tree.num_edges(), 1 + epoch, &rng);
    ASSERT_OK(oracle->ApplyWeightUpdates(deltas, ctx));
    const auto& stats = oracle->last_update();
    // The per-epoch charge is the dirty fraction in the release's own
    // sensitivity currency, never more than a full release.
    EXPECT_GT(stats.sensitivity, 0);
    EXPECT_LE(stats.sensitivity, oracle->sensitivity());
    EXPECT_DOUBLE_EQ(stats.charged_epsilon,
                     kParams.epsilon * stats.sensitivity /
                         oracle->sensitivity());
    expected_total += stats.charged_epsilon;
    // Ledger == build + sum of per-epoch charges, exactly.
    EXPECT_DOUBLE_EQ(ctx.accountant().BasicTotal().epsilon, expected_total);
    // Telemetry mirrors the epoch: per-block draw count recorded.
    ASSERT_NE(ctx.last_telemetry(), nullptr);
    EXPECT_EQ(ctx.last_telemetry()->noise_draws, stats.dirty_blocks);
    EXPECT_DOUBLE_EQ(ctx.last_telemetry()->epsilon, stats.charged_epsilon);
  }
}

TEST(IncrementalUpdateTest, LeafDriftChargesOneLevelOfTheSensitivity) {
  // Caterpillar: legs are light edges, so a legs-only epoch has
  // sensitivity 1 and charges exactly eps / L. (The last spine vertex's
  // legs are excluded: its heaviest child is a leg that extends the
  // deepest chain.)
  const int spine = 64, legs = 3;
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph tree, MakeCaterpillarTree(spine, legs));
  EdgeWeights w = MakeUniformWeights(tree, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(kParams, kTestSeed));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<HldTreeOracle> oracle,
                       HldTreeOracle::Build(tree, w, ctx));

  std::vector<EdgeWeightDelta> leg_drift = {
      {static_cast<EdgeId>(spine - 1 + 5), 1.5},
      {static_cast<EdgeId>(spine - 1 + 40), 0.7}};
  ASSERT_OK(oracle->ApplyWeightUpdates(leg_drift, ctx));
  EXPECT_EQ(oracle->last_update().sensitivity, 1);
  EXPECT_EQ(oracle->last_update().dirty_blocks, 2);  // two light scalars
  EXPECT_DOUBLE_EQ(oracle->last_update().charged_epsilon,
                   kParams.epsilon / oracle->sensitivity());

  // A spine edge sits in every level of the deepest chain: full charge.
  std::vector<EdgeWeightDelta> spine_drift = {{0, 0.4}};
  ASSERT_OK(oracle->ApplyWeightUpdates(spine_drift, ctx));
  EXPECT_EQ(oracle->last_update().sensitivity, oracle->sensitivity());
  EXPECT_DOUBLE_EQ(oracle->last_update().charged_epsilon, kParams.epsilon);
}

// -------------------------------------------------- answer correctness --

TEST(IncrementalUpdateTest, AnswersStayWithinErrorBoundAfterRandomEpochs) {
  const int n = 129;
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph graph, MakeRandomTree(n, &rng));
  EdgeWeights w = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(kParams, kTestSeed));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<HldTreeOracle> oracle,
                       HldTreeOracle::Build(graph, w, ctx));
  ASSERT_OK_AND_ASSIGN(RootedTree tree, RootedTree::FromGraph(graph, 0));
  EulerTourLca lca(tree);

  const double bound = HldTreeOracle::ErrorBound(n, kParams, /*gamma=*/1e-9);
  std::vector<VertexPair> pairs = SampleTreePairs(n, 400, &rng);
  for (int epoch = 0; epoch < 6; ++epoch) {
    std::vector<EdgeWeightDelta> deltas =
        RandomDeltas(graph.num_edges(), 5, &rng);
    for (const EdgeWeightDelta& d : deltas) {
      w[static_cast<size_t>(d.edge)] = d.new_weight;
    }
    ASSERT_OK(oracle->ApplyWeightUpdates(deltas, ctx));

    std::vector<double> root_dist = tree.RootDistances(w);
    ASSERT_OK_AND_ASSIGN(std::vector<double> estimates,
                         oracle->DistanceBatch(pairs));
    for (size_t i = 0; i < pairs.size(); ++i) {
      double exact = ExactTreeDistance(root_dist, pairs[i].first,
                                       pairs[i].second, lca);
      EXPECT_LE(std::abs(estimates[i] - exact), bound)
          << "epoch " << epoch << " pair " << i;
    }
  }
}

TEST(IncrementalUpdateTest, CleanRegionsKeepTheirNoiseBitForBit) {
  // Drift one access link near the spine's start; queries that never
  // cross it — pairs among far-away legs and spine vertices — must be
  // bit-identical before and after the epoch (their blocks and ascent
  // caches were never touched).
  const int spine = 64, legs = 2;
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph tree, MakeCaterpillarTree(spine, legs));
  EdgeWeights w = MakeUniformWeights(tree, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(kParams, kTestSeed));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<HldTreeOracle> oracle,
                       HldTreeOracle::Build(tree, w, ctx));

  // Vertices far from the dirty leg: spine tail and its legs.
  std::vector<VertexPair> clean_pairs = {
      {40, 60}, {50, 63}, {spine + 2 * 45, spine + 2 * 55 + 1}, {45, 55}};
  ASSERT_OK_AND_ASSIGN(std::vector<double> before,
                       oracle->DistanceBatch(clean_pairs));

  // The leg above spine vertex 3 drifts (edge spine-1+6 belongs to spine
  // vertex 3 at legs=2).
  std::vector<EdgeWeightDelta> drift = {
      {static_cast<EdgeId>(spine - 1 + 6), 2.0}};
  ASSERT_OK(oracle->ApplyWeightUpdates(drift, ctx));

  ASSERT_OK_AND_ASSIGN(std::vector<double> after,
                       oracle->DistanceBatch(clean_pairs));
  for (size_t i = 0; i < clean_pairs.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "pair " << i;
  }
}

TEST(IncrementalUpdateTest, FixedSeedsMakeUpdateSequencesBitIdentical) {
  // Two oracles built and updated under identical seeds answer every
  // query bit-for-bit identically: the incremental path is a
  // deterministic function of (seed, build input, epoch sequence).
  const int n = 200;
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph graph, MakeRandomTree(n, &rng));
  EdgeWeights w = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  std::vector<std::vector<EdgeWeightDelta>> epochs;
  for (int e = 0; e < 4; ++e) {
    epochs.push_back(RandomDeltas(graph.num_edges(), 7, &rng));
  }

  std::vector<VertexPair> pairs = SampleTreePairs(n, 300, &rng);
  auto build_and_update = [&](uint64_t seed) {
    ReleaseContext ctx = ReleaseContext::Create(kParams, seed).value();
    std::unique_ptr<HldTreeOracle> oracle =
        HldTreeOracle::Build(graph, w, ctx).value();
    for (const auto& deltas : epochs) {
      EXPECT_OK(oracle->ApplyWeightUpdates(deltas, ctx));
    }
    return DistanceBatchOf(*oracle, pairs, 1).value();
  };
  std::vector<double> first = build_and_update(kTestSeed ^ 7);
  std::vector<double> second = build_and_update(kTestSeed ^ 7);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "pair " << i;
  }
}

TEST(IncrementalUpdateTest, ShardedExecutionStaysBitIdenticalAcrossEpochs) {
  const int n = 300;
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph graph, MakeRandomTree(n, &rng));
  EdgeWeights w = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(kParams, kTestSeed));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<HldTreeOracle> oracle,
                       HldTreeOracle::Build(graph, w, ctx));

  BatchExecutorOptions options;
  options.min_shard_pairs = 8;  // force real fan-out on a small batch
  BatchExecutor executor(options);
  std::vector<VertexPair> pairs = SampleTreePairs(n, 512, &rng);
  for (int epoch = 0; epoch < 3; ++epoch) {
    ASSERT_OK(oracle->ApplyWeightUpdates(
        RandomDeltas(graph.num_edges(), 9, &rng), ctx));
    ASSERT_OK_AND_ASSIGN(std::vector<double> sharded,
                         executor.Execute(*oracle, pairs));
    ASSERT_OK_AND_ASSIGN(std::vector<double> serial,
                         DistanceBatchOf(*oracle, pairs, 1));
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(sharded[i], serial[i]) << "epoch " << epoch << " pair " << i;
    }
  }
}

// ------------------------------------------------------ failure modes --

TEST(IncrementalUpdateTest, ExhaustedBudgetRefusesWithoutMutating) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph graph, MakeRandomTree(64, &rng));
  EdgeWeights w = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(kParams, kTestSeed));
  // Room for the build and not one more full-sensitivity epoch.
  ctx.SetTotalBudget(PrivacyParams{1.2, 0.0, 1.0});
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<HldTreeOracle> oracle,
                       HldTreeOracle::Build(graph, w, ctx));

  std::vector<VertexPair> pairs = SampleTreePairs(64, 128, &rng);
  ASSERT_OK_AND_ASSIGN(std::vector<double> before,
                       DistanceBatchOf(*oracle, pairs, 1));
  double spent_before = ctx.accountant().BasicTotal().epsilon;

  // A full-sensitivity epoch (dirty edges everywhere) cannot fit in the
  // remaining 0.2: the update must refuse atomically.
  Status blocked = oracle->ApplyWeightUpdates(
      RandomDeltas(graph.num_edges(), 32, &rng), ctx);
  EXPECT_EQ(blocked.code(), StatusCode::kFailedPrecondition);

  // Nothing moved: ledger unchanged, answers bit-identical, stats zeroed.
  EXPECT_DOUBLE_EQ(ctx.accountant().BasicTotal().epsilon, spent_before);
  EXPECT_EQ(oracle->last_update().dirty_blocks, 0);
  ASSERT_OK_AND_ASSIGN(std::vector<double> after,
                       DistanceBatchOf(*oracle, pairs, 1));
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
}

TEST(IncrementalUpdateTest, InvalidDeltasAreRejectedWithoutCharge) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph graph, MakeRandomTree(32, &rng));
  EdgeWeights w = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(kParams, kTestSeed));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<HldTreeOracle> oracle,
                       HldTreeOracle::Build(graph, w, ctx));
  double spent = ctx.accountant().BasicTotal().epsilon;

  std::vector<EdgeWeightDelta> out_of_range = {{99, 1.0}};
  EXPECT_EQ(oracle->ApplyWeightUpdates(out_of_range, ctx).code(),
            StatusCode::kInvalidArgument);
  std::vector<EdgeWeightDelta> negative = {{0, -1.0}};
  EXPECT_EQ(oracle->ApplyWeightUpdates(negative, ctx).code(),
            StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(ctx.accountant().BasicTotal().epsilon, spent);

  // An empty epoch is a free no-op.
  EXPECT_OK(oracle->ApplyWeightUpdates({}, ctx));
  EXPECT_DOUBLE_EQ(ctx.accountant().BasicTotal().epsilon, spent);
  EXPECT_EQ(oracle->last_update().dirty_edges, 0);
}

// --------------------------------------------------- executor routing --

TEST(BatchExecutorUpdateTest, RoutesDeltasToShardCellsAndApplies) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph graph, MakeRandomTree(128, &rng));
  EdgeWeights w = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(kParams, kTestSeed));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<HldTreeOracle> oracle,
                       HldTreeOracle::Build(graph, w, ctx));

  // Artificial 4-cell map (vertex id mod 4): enough to exercise routing.
  BatchExecutor executor;
  std::vector<int> cells(128);
  for (size_t v = 0; v < cells.size(); ++v) cells[v] = static_cast<int>(v % 4);
  executor.SetShardCells(cells);

  std::vector<EdgeWeightDelta> deltas = RandomDeltas(graph.num_edges(), 6,
                                                     &rng);
  ASSERT_OK_AND_ASSIGN(
      BatchExecutor::UpdateReport report,
      executor.ApplyUpdates(*oracle, graph, deltas, ctx));
  EXPECT_GT(report.dirty_cells, 0);
  EXPECT_LE(report.dirty_cells, 4);
  EXPECT_EQ(report.dirty_blocks, oracle->last_update().dirty_blocks);
  EXPECT_DOUBLE_EQ(report.charged_epsilon,
                   oracle->last_update().charged_epsilon);

  // Queries through the keyed executor still match serial bit-for-bit.
  std::vector<VertexPair> pairs = SampleTreePairs(128, 256, &rng);
  ASSERT_OK_AND_ASSIGN(std::vector<double> sharded,
                       executor.Execute(*oracle, pairs));
  ASSERT_OK_AND_ASSIGN(std::vector<double> serial,
                       DistanceBatchOf(*oracle, pairs, 1));
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(sharded[i], serial[i]);
  }
}

TEST(BatchExecutorUpdateTest, BuildOnceOracleIsRefused) {
  Rng rng(kTestSeed);
  ASSERT_OK_AND_ASSIGN(Graph graph, MakePathGraph(16));
  EdgeWeights w = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  ASSERT_OK_AND_ASSIGN(ReleaseContext ctx,
                       ReleaseContext::Create(kParams, kTestSeed));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DistanceOracle> oracle,
      OracleRegistry::Global().Create("tree-recursive", graph, w, ctx));
  ASSERT_EQ(oracle->AsUpdatable(), nullptr);

  BatchExecutor executor;
  std::vector<EdgeWeightDelta> deltas = {{0, 1.0}};
  Status refused =
      executor.ApplyUpdates(*oracle, graph, deltas, ctx).status();
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
}

TEST(RegistrySpecTest, OnlyTreeHldAdvertisesUpdatability) {
  const OracleRegistry& registry = OracleRegistry::Global();
  const OracleSpec* hld = registry.Find(HldTreeOracle::kName);
  ASSERT_NE(hld, nullptr);
  EXPECT_TRUE(hld->updatable);
  for (const std::string& name : registry.Names()) {
    if (name == HldTreeOracle::kName) continue;
    EXPECT_FALSE(registry.Find(name)->updatable) << name;
  }
}

}  // namespace
}  // namespace dpsp
