// Malformed / truncated / wrong-version frame handling, protocol v1-v5:
// a fuzz-ish table of short, oversized, and mis-stamped bodies against
// every wire decoder — the v5 replication frames included — plus
// raw-socket abuse of a live server, a live coordinator listener, and a
// live replica sync loop. All of them must answer a typed Error (or hang
// up cleanly) and keep serving, never hang or crash. The wire decoders
// parse untrusted bytes; this file is their adversarial suite.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/coordinator.h"
#include "cluster/replica.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "store/snapshot_delta.h"
#include "test_util.h"

namespace dpsp {
namespace {

// --------------------------------------------------- decoder fuzz table --

/// One decoder under test: a name, a valid body, and an adapter that
/// returns the decode Status. Valid-prefix lengths (e.g. the v1 stats
/// body inside a v2 one) are listed explicitly.
struct DecoderCase {
  std::string name;
  std::vector<uint8_t> valid;
  std::function<Status(std::span<const uint8_t>)> decode;
  std::vector<size_t> valid_prefixes;  // lengths that legally decode
};

std::vector<DecoderCase> AllDecoderCases() {
  std::vector<DecoderCase> cases;
  cases.push_back(
      {"release-request",
       net::EncodeReleaseRequest({"workload", "mechanism", "handle"}),
       [](std::span<const uint8_t> b) {
         return net::DecodeReleaseRequest(b).status();
       },
       {}});
  net::ReleaseInfo info;
  info.handle_id = 3;
  info.epsilon = 0.5;
  cases.push_back({"release-info", net::EncodeReleaseInfo(info),
                   [](std::span<const uint8_t> b) {
                     return net::DecodeReleaseInfo(b).status();
                   },
                   {}});
  std::vector<VertexPair> pairs = {{0, 1}, {2, 3}, {4, 5}};
  cases.push_back({"query-request", net::EncodeQueryRequest(7, pairs),
                   [](std::span<const uint8_t> b) {
                     return net::DecodeQueryRequest(b).status();
                   },
                   {}});
  std::vector<double> distances = {1.0, 2.5, -0.0};
  cases.push_back({"query-response", net::EncodeQueryResponse(distances),
                   [](std::span<const uint8_t> b) {
                     return net::DecodeQueryResponse(b).status();
                   },
                   {}});
  std::vector<EdgeWeightDelta> deltas = {{0, 0.25}, {5, 1.75}};
  cases.push_back({"update-request", net::EncodeUpdateRequest(9, deltas),
                   [](std::span<const uint8_t> b) {
                     return net::DecodeUpdateRequest(b).status();
                   },
                   {}});
  net::UpdateInfo update;
  update.charged_epsilon = 0.125;
  update.dirty_blocks = 17;
  cases.push_back({"update-info", net::EncodeUpdateInfo(update),
                   [](std::span<const uint8_t> b) {
                     return net::DecodeUpdateInfo(b).status();
                   },
                   {}});
  net::ServerStats stats;
  stats.queries_served = 11;
  stats.has_accounting = true;
  std::vector<uint8_t> stats_v5 = net::EncodeServerStats(stats, 5);
  cases.push_back({"server-stats", stats_v5,
                   [](std::span<const uint8_t> b) {
                     return net::DecodeServerStats(b).status();
                   },
                   // Older stats bodies are legal prefixes of the v5 one:
                   // a truncation AT a version boundary is an old peer,
                   // not junk. Every other cut is.
                   {net::EncodeServerStats(stats, 1).size(),
                    net::EncodeServerStats(stats, 3).size(),
                    net::EncodeServerStats(stats, 4).size()}});
  cases.push_back(
      {"error", net::EncodeError(net::ErrorKind::kOverloaded,
                                 Status::Unavailable("busy")),
       [](std::span<const uint8_t> b) {
         return net::DecodeError(b).status();
       },
       {}});
  // -- the v5 replication frames --
  net::ReplicaSubscribe subscribe;
  subscribe.last_epoch_lsn = 41;
  subscribe.replica_name = "replica-a";
  cases.push_back({"replica-subscribe",
                   net::EncodeReplicaSubscribe(subscribe),
                   [](std::span<const uint8_t> b) {
                     return net::DecodeReplicaSubscribe(b).status();
                   },
                   {}});
  net::SnapshotChunk chunk;
  chunk.handle_id = 2;
  chunk.epoch_lsn = 7;
  chunk.handle_name = "live";
  chunk.mechanism = "tree-hld";
  chunk.workload = "path";
  ReleasedSection section;
  section.label = "blocks";
  section.bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  chunk.sections = {section};
  cases.push_back({"snapshot-chunk", net::EncodeSnapshotChunk(chunk),
                   [](std::span<const uint8_t> b) {
                     return net::DecodeSnapshotChunk(b).status();
                   },
                   {}});
  net::DeltaFrame delta;
  delta.handle_id = 2;
  delta.epoch_lsn = 8;
  store::SectionPatch patch;
  patch.label = "blocks";
  patch.section_bytes = 8;
  patch.ranges.push_back(store::SectionRange{4, {9, 9}});
  delta.patches = {patch};
  cases.push_back({"delta-frame", net::EncodeDeltaFrame(delta),
                   [](std::span<const uint8_t> b) {
                     return net::DecodeDeltaFrame(b).status();
                   },
                   {}});
  net::ReplicaStatsFrame ack;
  ack.role = 2;
  ack.last_epoch_lsn = 8;
  ack.queries_served = 100;
  ack.pairs_served = 4000;
  cases.push_back({"replica-stats", net::EncodeReplicaStatsFrame(ack),
                   [](std::span<const uint8_t> b) {
                     return net::DecodeReplicaStatsFrame(b).status();
                   },
                   {}});
  return cases;
}

TEST(NetProtocolFuzzTest, EveryTruncationOfEveryBodyIsATypedError) {
  for (const DecoderCase& c : AllDecoderCases()) {
    ASSERT_TRUE(c.decode(c.valid).ok()) << c.name;
    for (size_t len = 0; len < c.valid.size(); ++len) {
      bool legal = std::find(c.valid_prefixes.begin(),
                             c.valid_prefixes.end(),
                             len) != c.valid_prefixes.end();
      Status status = c.decode({c.valid.data(), len});
      if (legal) {
        EXPECT_TRUE(status.ok()) << c.name << " prefix " << len;
      } else {
        EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
            << c.name << " prefix " << len << ": " << status.ToString();
      }
    }
  }
}

TEST(NetProtocolFuzzTest, TrailingBytesAreRejectedEverywhere) {
  for (const DecoderCase& c : AllDecoderCases()) {
    std::vector<uint8_t> oversized = c.valid;
    oversized.push_back(0x5a);
    EXPECT_EQ(c.decode(oversized).code(), StatusCode::kInvalidArgument)
        << c.name;
  }
}

TEST(NetProtocolFuzzTest, CountFieldsLyingAboutTheBodyAreRejected) {
  // A count prefix larger or smaller than the actual payload must fail
  // before any allocation sized from it.
  std::vector<VertexPair> pairs = {{0, 1}, {2, 3}};
  std::vector<uint8_t> query = net::EncodeQueryRequest(1, pairs);
  query[4] = 0xff;  // count: 2 -> huge
  query[5] = 0xff;
  EXPECT_EQ(net::DecodeQueryRequest(query).status().code(),
            StatusCode::kInvalidArgument);
  query[4] = 1;  // count: huge -> fewer than present
  query[5] = 0;
  EXPECT_EQ(net::DecodeQueryRequest(query).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<EdgeWeightDelta> deltas = {{0, 1.0}, {1, 2.0}};
  std::vector<uint8_t> update = net::EncodeUpdateRequest(1, deltas);
  update[4] = 0xee;
  EXPECT_EQ(net::DecodeUpdateRequest(update).status().code(),
            StatusCode::kInvalidArgument);

  // A string length prefix pointing past the body.
  std::vector<uint8_t> release =
      net::EncodeReleaseRequest({"w", "m", "h"});
  release[0] = 0xff;  // workload length: 1 -> 255
  EXPECT_EQ(net::DecodeReleaseRequest(release).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------- live-server robustness --

class FuzzServerFixture {
 public:
  FuzzServerFixture() : graph_(MakePathGraph(32).value()) {
    Rng rng(kTestSeed);
    weights_ = MakeUniformWeights(graph_, 0.1, 0.9, &rng);
    ReleaseContext ctx =
        ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed)
            .value();
    server_ = std::make_unique<net::QueryServer>(net::QueryServerOptions{},
                                                 std::move(ctx));
    EXPECT_OK(server_->AddWorkload("path", graph_, weights_));
    EXPECT_OK(server_->Start());
  }

  uint16_t port() const { return server_->port(); }

  /// The liveness probe every scenario ends with: a fresh client can
  /// still run a full stats round trip — the server neither hung nor
  /// died.
  void ExpectServerAlive() {
    ASSERT_OK_AND_ASSIGN(net::Client client,
                         net::Client::Connect("127.0.0.1", port()));
    ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
    EXPECT_TRUE(stats.has_accounting);
  }

 private:
  Graph graph_;
  EdgeWeights weights_;
  std::unique_ptr<net::QueryServer> server_;
};

/// Little-endian frame header bytes, with every field caller-controlled.
std::vector<uint8_t> RawHeader(uint32_t magic, uint16_t version,
                               uint16_t type, uint32_t body_size) {
  std::vector<uint8_t> out;
  for (int s = 0; s < 32; s += 8) out.push_back(magic >> s);
  for (int s = 0; s < 16; s += 8) out.push_back(version >> s);
  for (int s = 0; s < 16; s += 8) out.push_back(type >> s);
  for (int s = 0; s < 32; s += 8) out.push_back(body_size >> s);
  return out;
}

/// Sends raw bytes and expects a typed Error frame back.
void ExpectTypedError(net::Socket& socket, std::span<const uint8_t> bytes,
                      net::ErrorKind kind) {
  ASSERT_OK(socket.WriteAll(bytes.data(), bytes.size()));
  ASSERT_OK_AND_ASSIGN(net::Frame reply, net::ReadFrame(socket));
  ASSERT_EQ(reply.type, net::MessageType::kError);
  ASSERT_OK_AND_ASSIGN(net::WireError error, net::DecodeError(reply.body));
  EXPECT_EQ(error.kind, kind);
}

TEST(NetServerFuzzTest, WrongVersionHeadersGetTypedErrorsAndServerSurvives) {
  FuzzServerFixture fixture;
  for (uint16_t version : {uint16_t{0}, uint16_t{99}}) {
    ASSERT_OK_AND_ASSIGN(net::Socket raw,
                         net::Connect("127.0.0.1", fixture.port()));
    std::vector<uint8_t> header = RawHeader(
        net::kFrameMagic, version,
        static_cast<uint16_t>(net::MessageType::kStatsRequest), 0);
    ExpectTypedError(raw, header, net::ErrorKind::kMalformed);
  }
  fixture.ExpectServerAlive();
}

TEST(NetServerFuzzTest, OversizedBodyDeclarationIsRefusedBeforeAllocation) {
  FuzzServerFixture fixture;
  ASSERT_OK_AND_ASSIGN(net::Socket raw,
                       net::Connect("127.0.0.1", fixture.port()));
  std::vector<uint8_t> header = RawHeader(
      net::kFrameMagic, net::kProtocolVersion,
      static_cast<uint16_t>(net::MessageType::kQueryRequest),
      net::kMaxBodyBytes + 1);
  ExpectTypedError(raw, header, net::ErrorKind::kMalformed);
  fixture.ExpectServerAlive();
}

TEST(NetServerFuzzTest, TruncatedBodyThenHangupDoesNotWedgeTheServer) {
  FuzzServerFixture fixture;
  {
    ASSERT_OK_AND_ASSIGN(net::Socket raw,
                         net::Connect("127.0.0.1", fixture.port()));
    std::vector<uint8_t> header = RawHeader(
        net::kFrameMagic, net::kProtocolVersion,
        static_cast<uint16_t>(net::MessageType::kQueryRequest), 100);
    uint8_t partial[10] = {0};
    ASSERT_OK(raw.WriteAll(header.data(), header.size()));
    ASSERT_OK(raw.WriteAll(partial, sizeof(partial)));
  }  // hang up mid-body
  fixture.ExpectServerAlive();
}

TEST(NetServerFuzzTest, UpdateRequestFromOlderProtocolIsTypedMalformed) {
  // A well-formed v3 body stamped v1/v2: the peer's own protocol does not
  // define the exchange, so the server answers a typed error — and the
  // connection stays usable (framing was intact).
  FuzzServerFixture fixture;
  std::vector<EdgeWeightDelta> deltas = {{0, 0.5}};
  std::vector<uint8_t> body = net::EncodeUpdateRequest(0, deltas);
  for (uint16_t version : {uint16_t{1}, uint16_t{2}}) {
    ASSERT_OK_AND_ASSIGN(net::Socket raw,
                         net::Connect("127.0.0.1", fixture.port()));
    ASSERT_OK(net::WriteFrame(raw, net::MessageType::kUpdateRequest, body,
                              version));
    ASSERT_OK_AND_ASSIGN(net::Frame reply, net::ReadFrame(raw));
    ASSERT_EQ(reply.type, net::MessageType::kError);
    ASSERT_OK_AND_ASSIGN(net::WireError error,
                         net::DecodeError(reply.body));
    EXPECT_EQ(error.kind, net::ErrorKind::kMalformed);
    // Same connection, correct version: still served.
    ASSERT_OK(net::WriteFrame(raw, net::MessageType::kStatsRequest, {},
                              version));
    ASSERT_OK_AND_ASSIGN(net::Frame stats, net::ReadFrame(raw));
    EXPECT_EQ(stats.type, net::MessageType::kStatsResponse);
  }
  fixture.ExpectServerAlive();
}

TEST(NetServerFuzzTest, TruncatedUpdateBodyIsTypedMalformed) {
  FuzzServerFixture fixture;
  ASSERT_OK_AND_ASSIGN(net::Socket raw,
                       net::Connect("127.0.0.1", fixture.port()));
  std::vector<EdgeWeightDelta> deltas = {{0, 0.5}, {1, 0.25}};
  std::vector<uint8_t> body = net::EncodeUpdateRequest(0, deltas);
  body.resize(body.size() - 5);  // tear the last delta
  ASSERT_OK(net::WriteFrame(raw, net::MessageType::kUpdateRequest, body));
  ASSERT_OK_AND_ASSIGN(net::Frame reply, net::ReadFrame(raw));
  ASSERT_EQ(reply.type, net::MessageType::kError);
  ASSERT_OK_AND_ASSIGN(net::WireError error, net::DecodeError(reply.body));
  EXPECT_EQ(error.kind, net::ErrorKind::kMalformed);
  fixture.ExpectServerAlive();
}

TEST(NetServerFuzzTest, UnknownMessageTypeGetsTypedErrorThenClose) {
  FuzzServerFixture fixture;
  ASSERT_OK_AND_ASSIGN(net::Socket raw,
                       net::Connect("127.0.0.1", fixture.port()));
  std::vector<uint8_t> header =
      RawHeader(net::kFrameMagic, net::kProtocolVersion, /*type=*/77, 0);
  ExpectTypedError(raw, header, net::ErrorKind::kMalformed);
  // Unknown types cannot be skipped safely: the server hangs up.
  EXPECT_FALSE(net::ReadFrame(raw).ok());
  fixture.ExpectServerAlive();
}

// ------------------------------------------- replication-tier robustness --

TEST(NetServerFuzzTest, ReplicationFrameOnTheQueryPortIsTypedMalformed) {
  // A subscribe frame aimed at the QUERY port — even a well-formed one —
  // is not a request the query plane defines.
  FuzzServerFixture fixture;
  ASSERT_OK_AND_ASSIGN(net::Socket raw,
                       net::Connect("127.0.0.1", fixture.port()));
  net::ReplicaSubscribe subscribe;
  subscribe.replica_name = "lost";
  std::vector<uint8_t> body = net::EncodeReplicaSubscribe(subscribe);
  ASSERT_OK(net::WriteFrame(raw, net::MessageType::kReplicaSubscribe, body,
                            /*version=*/4));
  ASSERT_OK_AND_ASSIGN(net::Frame reply, net::ReadFrame(raw));
  ASSERT_EQ(reply.type, net::MessageType::kError);
  ASSERT_OK_AND_ASSIGN(net::WireError error, net::DecodeError(reply.body));
  EXPECT_EQ(error.kind, net::ErrorKind::kMalformed);
  fixture.ExpectServerAlive();
}

/// A budget-holding server plus its coordinator, for abusing the
/// replication listener directly.
class FuzzCoordinatorFixture {
 public:
  FuzzCoordinatorFixture() : graph_(MakePathGraph(32).value()) {
    Rng rng(kTestSeed);
    weights_ = MakeUniformWeights(graph_, 0.1, 0.9, &rng);
    ReleaseContext ctx =
        ReleaseContext::Create(PrivacyParams{1.0, 0.0, 1.0}, kTestSeed)
            .value();
    server_ = std::make_unique<net::QueryServer>(net::QueryServerOptions{},
                                                 std::move(ctx));
    EXPECT_OK(server_->AddWorkload("path", graph_, weights_));
    EXPECT_OK(server_->Start());
    coordinator_ = std::make_unique<cluster::Coordinator>(
        cluster::CoordinatorOptions{}, server_.get());
    EXPECT_OK(coordinator_->Start());
  }

  ~FuzzCoordinatorFixture() {
    coordinator_->Stop();
    server_->Stop();
  }

  uint16_t replication_port() const {
    return coordinator_->replication_port();
  }

  void ExpectCoordinatorAlive() {
    // A well-formed v5 subscribe still gets a session (the catch-up
    // marker proves the stream is live).
    ASSERT_OK_AND_ASSIGN(net::Socket good,
                         net::Connect("127.0.0.1", replication_port()));
    net::ReplicaSubscribe subscribe;
    subscribe.replica_name = "probe";
    std::vector<uint8_t> body = net::EncodeReplicaSubscribe(subscribe);
    ASSERT_OK(net::WriteFrame(good, net::MessageType::kReplicaSubscribe,
                              body));
    ASSERT_OK_AND_ASSIGN(net::Frame reply, net::ReadFrame(good));
    EXPECT_EQ(reply.type, net::MessageType::kReplicaStats);
  }

 private:
  Graph graph_;
  EdgeWeights weights_;
  std::unique_ptr<net::QueryServer> server_;
  std::unique_ptr<cluster::Coordinator> coordinator_;
};

TEST(NetServerFuzzTest, OldVersionSubscribeToCoordinatorIsTypedMalformed) {
  // A v5-shaped subscribe body stamped with an older protocol version:
  // that peer's protocol has no replication frames, so acting on it
  // would be interpreting bytes the peer never defined. Typed refusal.
  FuzzCoordinatorFixture fixture;
  for (uint16_t version : {uint16_t{1}, uint16_t{4}}) {
    ASSERT_OK_AND_ASSIGN(net::Socket raw,
                         net::Connect("127.0.0.1",
                                      fixture.replication_port()));
    net::ReplicaSubscribe subscribe;
    subscribe.replica_name = "old-peer";
    std::vector<uint8_t> body = net::EncodeReplicaSubscribe(subscribe);
    ASSERT_OK(net::WriteFrame(raw, net::MessageType::kReplicaSubscribe,
                              body, version));
    ASSERT_OK_AND_ASSIGN(net::Frame reply, net::ReadFrame(raw));
    ASSERT_EQ(reply.type, net::MessageType::kError);
    ASSERT_OK_AND_ASSIGN(net::WireError error,
                         net::DecodeError(reply.body));
    EXPECT_EQ(error.kind, net::ErrorKind::kMalformed);
  }
  fixture.ExpectCoordinatorAlive();
}

TEST(NetServerFuzzTest, NonSubscribeFirstFrameToCoordinatorIsRefused) {
  FuzzCoordinatorFixture fixture;
  ASSERT_OK_AND_ASSIGN(net::Socket raw,
                       net::Connect("127.0.0.1",
                                    fixture.replication_port()));
  ASSERT_OK(net::WriteFrame(raw, net::MessageType::kStatsRequest, {}));
  ASSERT_OK_AND_ASSIGN(net::Frame reply, net::ReadFrame(raw));
  ASSERT_EQ(reply.type, net::MessageType::kError);
  ASSERT_OK_AND_ASSIGN(net::WireError error, net::DecodeError(reply.body));
  EXPECT_EQ(error.kind, net::ErrorKind::kMalformed);
  fixture.ExpectCoordinatorAlive();
}

TEST(NetServerFuzzTest, TornDeltaFrameNeverHangsALiveReplica) {
  // A fake coordinator that sends a delta-frame header claiming 100 body
  // bytes, delivers 10, and stalls. The replica's mid-frame receive
  // timeout must fail the read and resubscribe — the sync loop never
  // wedges, and the replica's query plane keeps answering throughout.
  ASSERT_OK_AND_ASSIGN(net::Listener fake,
                       net::Listener::Bind("127.0.0.1", 0));

  Graph graph = MakePathGraph(32).value();
  Rng rng(kTestSeed);
  EdgeWeights weights = MakeUniformWeights(graph, 0.1, 0.9, &rng);
  net::QueryServer replica_server{net::QueryServerOptions{}};
  ASSERT_OK(replica_server.AddWorkload("path", graph, weights));
  ASSERT_OK(replica_server.Start());
  cluster::ReplicaOptions options;
  options.coordinator_port = fake.port();
  options.read_timeout_ms = 200;  // fail the torn frame fast
  options.reconnect_backoff_ms = 10;
  cluster::Replica replica(options, &replica_server);
  ASSERT_OK(replica.Start());

  // Session 1: take the subscribe, then feed the torn frame and stall.
  ASSERT_OK_AND_ASSIGN(net::Socket session1, fake.Accept(5000));
  ASSERT_OK_AND_ASSIGN(net::Frame sub1, net::ReadFrame(session1));
  ASSERT_EQ(sub1.type, net::MessageType::kReplicaSubscribe);
  std::vector<uint8_t> torn_header = RawHeader(
      net::kFrameMagic, net::kProtocolVersion,
      static_cast<uint16_t>(net::MessageType::kDeltaFrame), 100);
  uint8_t partial[10] = {0};
  ASSERT_OK(session1.WriteAll(torn_header.data(), torn_header.size()));
  ASSERT_OK(session1.WriteAll(partial, sizeof(partial)));
  // Stall (no close): only the replica's own timeout can free it.

  // The replica must give up on the torn stream and dial again.
  ASSERT_OK_AND_ASSIGN(net::Socket session2, fake.Accept(5000));
  ASSERT_OK_AND_ASSIGN(net::Frame sub2, net::ReadFrame(session2));
  EXPECT_EQ(sub2.type, net::MessageType::kReplicaSubscribe);

  // The query plane never noticed.
  ASSERT_OK_AND_ASSIGN(net::Client client,
                       net::Client::Connect("127.0.0.1",
                                            replica_server.port()));
  ASSERT_OK_AND_ASSIGN(net::ServerStats stats, client.Stats());
  EXPECT_EQ(stats.role, static_cast<uint16_t>(net::NodeRole::kReplica));
  replica.Stop();
  replica_server.Stop();
}

}  // namespace
}  // namespace dpsp
